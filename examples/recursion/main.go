// Recursion folding (paper Sec. 3.2/4, Fig. 3 Example 2): the dynamic
// interprocedural iteration vector gives every recursive call chain a
// single loop dimension whose induction variable keeps increasing over
// calls *and* returns, so the representation depth never grows with the
// recursion depth and the folded domains match the paper's Fig. 3k:
//
//	{ M1 L1 B1 C0(i) : 0 <= i <= 2 }   (helper called while recursing)
//	{ M1 L1 B5(i)    : 3 <= i <= 4 }   (continuation after each return)
package main

import (
	"fmt"
	"log"

	"polyprof"
)

func main() {
	prog, err := polyprof.Workload("example2")
	if err != nil {
		log.Fatal(err)
	}
	p, err := polyprof.ProfileExecution(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Fig. 3 Example 2: recursion folded into one dimension ===")
	fmt.Println("\ntrace table (the paper's Fig. 3i):")
	fmt.Print(polyprof.TraceTable(prog))
	fmt.Println("\nfolded statement domains (stores only):")
	for _, s := range p.DDG.Stmts {
		blk := prog.Block(s.Block)
		hasStore := false
		for i := range blk.Code {
			if blk.Code[i].Op.IsMemWrite() {
				hasStore = true
			}
		}
		if !hasStore {
			continue
		}
		fmt.Printf("  %-12s depth=%d count=%-3d domain=%v\n",
			blk.Name, s.Depth, s.Count, s.Domain.Dom)
	}

	fmt.Println("\ndynamic schedule tree:")
	out := polyprof.RenderScheduleTree(p, 0)
	fmt.Print(out)

	fmt.Println("\nnote: B recursed to depth 3, yet no statement has more than")
	fmt.Println("one iteration-vector dimension — calling-context paths would")
	fmt.Println("have grown to length 3 (see BenchmarkAblationRecursionDepth).")
}
