// Case study II (paper Sec. 7, Table 4): the GemsFDTD twin.
//
// polyprof models the exact dependence structure of the 3D FDTD update
// kernels — not just presence/absence — and reports every spatial loop
// as parallel and the 3D band as fully tilable; tiling plus wavefront
// parallelization is the paper's suggested transformation (2.6x/1.9x on
// their testbed).
package main

import (
	"fmt"
	"log"

	"polyprof"
)

func main() {
	prog, err := polyprof.Workload("gemsfdtd")
	if err != nil {
		log.Fatal(err)
	}
	report, err := polyprof.Profile(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Case study II: GemsFDTD (paper Table 4) ===")
	fmt.Print(report.Summary())
	reg := report.Best
	if reg == nil {
		log.Fatal("no region of interest found")
	}

	cm := polyprof.DefaultCostModel()
	// The twins are laptop scale; scale the replay cache with them.
	cm.Cache.Sets = 16
	cm.TileSize = 8

	fmt.Println()
	fmt.Printf("%-18s %-10s %-28s %s\n", "fat region", "%ops", "tiling", "speedup estimate")
	for _, t := range reg.Transforms {
		if t.Nest.Depth() < 3 || t.Nest.Loops[len(t.Nest.Loops)-1].TotalOps*10 < reg.Ops {
			continue
		}
		inner := t.Nest.Loops[1]
		loc := prog.Block(inner.Elem.Loop.Header).Code[0].Loc
		pct := 100 * float64(t.Nest.Loops[len(t.Nest.Loops)-1].TotalOps) / float64(report.Profile.DDG.TotalOps)
		sp, err := report.EstimateSpeedup(t, cm)
		spStr := "n/a"
		if err == nil {
			spStr = fmt.Sprintf("%.1fx", sp.Factor)
		}
		fmt.Printf("%-18s %-10s %-28s %s\n", loc.String(),
			fmt.Sprintf("%.0f%%", pct), t.Describe(), spStr)
	}
	fmt.Println("\npaper: update.F90:106 -> tile {106,107,121}, 2.6x; update.F90:240 -> tile {240,241,244}, 1.9x")
}
