// Case study I (paper Sec. 7, Table 3, Fig. 7): the backprop twin.
//
// polyprof pinpoints that both 2D kernels (bpnn_layerforward and
// bpnn_adjust_weights) are fully permutable with the outer loop
// parallel, that stride-0/1 accesses dominate along the *outer*
// dimension (100% vs 67%), and therefore suggests an interchange that
// makes the parallel, stride-friendly dimension innermost (SIMD), plus
// 2D tiling.  The example also writes the annotated flame graph of
// Fig. 7 to backprop-flame.svg.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"polyprof"
)

func main() {
	prog, err := polyprof.Workload("backprop")
	if err != nil {
		log.Fatal(err)
	}
	report, err := polyprof.Profile(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Case study I: backprop (paper Table 3) ===")
	fmt.Print(report.Summary())

	reg := report.Best
	if reg == nil {
		log.Fatal("no region of interest found")
	}
	fmt.Println()
	fmt.Printf("%-24s %-34s %-12s %-12s %s\n", "fat region", "interchange", "parallel", "permutable", "stride 0/1")
	for _, t := range reg.Transforms {
		if t.Nest.Depth() != 2 || t.Nest.Loops[1].TotalOps*20 < reg.Ops {
			continue
		}
		par := make([]string, len(t.Parallel))
		st := make([]string, len(t.Stride01))
		for i := range t.Parallel {
			par[i] = map[bool]string{true: "yes", false: "no"}[t.Parallel[i]]
			st[i] = fmt.Sprintf("%.0f%%", 100*t.Stride01[i])
		}
		loc := prog.Block(t.Nest.Loops[1].Elem.Loop.Header).Code[0].Loc
		fmt.Printf("%-24s %-34s (%-9s) %-12v (%s)\n",
			loc.String(), t.Describe(), strings.Join(par, ","), t.FullyPermutable(), strings.Join(st, ","))
		if sp, err := report.EstimateSpeedup(t, polyprof.DefaultCostModel()); err == nil {
			fmt.Printf("%-24s estimated speedup: %.1fx\n", "", sp.Factor)
		}
	}

	svg := report.FlameGraph(1200, 18)
	if err := os.WriteFile("backprop-flame.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote backprop-flame.svg (%d bytes) — the paper's Fig. 7\n", len(svg))

	// Experiment II contrast: the static baseline cannot model the region.
	static := polyprof.AnalyzeStatic(prog)
	lf := prog.FuncByName("bpnn_layerforward")
	fmt.Printf("static baseline on bpnn_layerforward: modeled=%v reasons=%v (paper: A)\n",
		static.Funcs[lf.ID].Modeled, static.Funcs[lf.ID].Reasons)
}
