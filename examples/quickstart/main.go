// Quickstart: build a small program against the polyprof virtual ISA,
// profile it, and print the structured-transformation feedback.
//
// The kernel is a transposed matrix-vector product whose inner loop
// walks the matrix with a large stride — polyprof detects that the
// nest is fully permutable, that only the outer loop is parallel, and
// that interchanging the loops makes the accesses stride-1 and the
// innermost loop SIMDizable.
package main

import (
	"fmt"
	"log"

	"polyprof"
)

func main() {
	const n, m = 32, 48

	pb := polyprof.NewProgram("quickstart")
	mat := pb.Global("mat", n*m)
	x := pb.Global("x", m)
	y := pb.Global("y", n)

	f := pb.Func("main", 0)
	f.SetFile("quickstart.go")
	f.At(5)
	matB := f.IConst(mat.Base)
	xB := f.IConst(x.Base)
	yB := f.IConst(y.Base)

	// Initialize inputs: mat[i*m+j] = i+j, x[j] = j.
	f.At(10)
	f.Loop("init_x", f.IConst(0), f.IConst(m), 1, func(j polyprof.Reg) {
		f.FStoreIdx(xB, j, 0, f.I2F(j))
	})
	f.Loop("init_mat", f.IConst(0), f.IConst(n*m), 1, func(k polyprof.Reg) {
		f.FStoreIdx(matB, k, 0, f.I2F(k))
	})

	// y[i] = sum_j mat[j*n + i] * x[j]  (column-major walk: stride n).
	f.At(20)
	f.Loop("Li", f.IConst(0), f.IConst(n), 1, func(i polyprof.Reg) {
		sum := f.NewReg()
		f.At(21)
		f.SetF(sum, 0)
		f.Loop("Lj", f.IConst(0), f.IConst(m), 1, func(j polyprof.Reg) {
			f.At(22)
			v := f.FLoadIdx(matB, f.Add(f.Mul(j, f.IConst(n)), i), 0)
			f.FAddTo(sum, sum, f.FMul(v, f.FLoadIdx(xB, j, 0)))
		})
		f.At(24)
		f.FStoreIdx(yB, i, 0, sum)
	})
	f.Halt()
	pb.SetMain(f)

	report, err := polyprof.Profile(pb.MustBuild())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Summary())
	if report.Best != nil {
		fmt.Println()
		fmt.Print(report.AnnotatedAST(report.Best))
		for _, t := range report.Best.Transforms {
			if t.Nest.Depth() != 2 {
				continue
			}
			sp, err := report.EstimateSpeedup(t, polyprof.DefaultCostModel())
			if err == nil {
				fmt.Printf("\nestimated speedup after the transformation: %v\n", sp)
			}
		}
	}
}
