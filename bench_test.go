// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index):
//
//	Fig. 2   loop-nesting-tree / recursive-component-set construction
//	Fig. 3   dynamic IIV profiling of the two illustrating examples
//	Tab. 1/2 dependency stream folding of the backprop kernel
//	Fig. 6   pseudo-assembler listing of that kernel
//	Fig. 7   annotated flame graph for backprop
//	Tab. 3   backprop case study (interchange + SIMD, speedup estimate)
//	Tab. 4   GemsFDTD case study (3D tiling + wavefront, speedup estimate)
//	Tab. 5   full Rodinia suite summary (Experiments I and II)
//	+ ablation benches for the design decisions listed in DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package polyprof_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"polyprof"
	"polyprof/internal/cct"
	"polyprof/internal/core"
	"polyprof/internal/ddg"
	"polyprof/internal/evaluation"
	"polyprof/internal/feedback"
	"polyprof/internal/fold"
	"polyprof/internal/isa"
	"polyprof/internal/parddg"
	"polyprof/internal/sched"
	"polyprof/internal/staticpoly"
	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// --- Fig. 2: control-structure construction -----------------------------

func BenchmarkFig2LoopForest(b *testing.B) {
	prog := workloads.Example1()
	for i := 0; i < b.N; i++ {
		st, err := core.AnalyzeStructure(prog, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Forest.Loops) == 0 {
			b.Fatal("no loops recovered")
		}
	}
}

func BenchmarkFig2RecursiveComponents(b *testing.B) {
	prog := workloads.Example2()
	for i := 0; i < b.N; i++ {
		st, err := core.AnalyzeStructure(prog, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Comps.Components) != 1 {
			b.Fatal("recursive component not recovered")
		}
	}
}

// --- Fig. 3: dynamic interprocedural iteration vectors -------------------

func BenchmarkFig3Example1IIV(b *testing.B) {
	prog := workloads.Example1()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(prog, core.DefaultRunOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Example2Recursion(b *testing.B) {
	prog := workloads.Example2()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(prog, core.DefaultRunOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 1 & 2: dependency stream folding -----------------------------

// BenchmarkTable2Folding folds the three dependency streams of the
// paper's Table 1/2 (backprop layer-forward kernel, cj in [0,15], ck in
// [0,42]) and checks the affine results.
func BenchmarkTable2Folding(b *testing.B) {
	const nj, nk = 16, 43
	for i := 0; i < b.N; i++ {
		ident := fold.NewFolder(2, 2) // I1->I2, I2->I4
		acc := fold.NewFolder(2, 2)   // I4->I4
		for j := int64(0); j < nj; j++ {
			for k := int64(0); k < nk; k++ {
				ident.Add([]int64{j, k}, []int64{j, k})
				if k >= 1 {
					acc.Add([]int64{j, k}, []int64{j, k - 1})
				}
			}
		}
		if p := ident.Finish(); !p.Exact || p.Fn == nil {
			b.Fatal("identity dependence did not fold")
		}
		if p := acc.Finish(); !p.Exact || p.Fn == nil {
			b.Fatal("accumulation dependence did not fold")
		}
	}
}

// BenchmarkTable1DependencyStream profiles the backprop twin end to end
// and reports the dependence-edge statistics that feed Table 1.
func BenchmarkTable1DependencyStream(b *testing.B) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	var deps int
	for i := 0; i < b.N; i++ {
		p, err := core.Run(prog, core.DefaultRunOptions())
		if err != nil {
			b.Fatal(err)
		}
		deps = len(p.DDG.Deps)
	}
	b.ReportMetric(float64(deps), "folded-deps")
}

// --- Fig. 6: pseudo-assembler ---------------------------------------------

func BenchmarkFig6Disasm(b *testing.B) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	var n int
	for i := 0; i < b.N; i++ {
		n = len(prog.DisasmFunc(prog.FuncByName("bpnn_layerforward")))
	}
	b.ReportMetric(float64(n), "listing-bytes")
}

// --- Fig. 7: annotated flame graph ----------------------------------------

func BenchmarkFig7FlameGraph(b *testing.B) {
	rep, err := polyprof.Profile(workloads.Backprop(workloads.DefaultBackpropParams()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bytes int
	for i := 0; i < b.N; i++ {
		bytes = len(rep.FlameGraph(1200, 18))
	}
	b.ReportMetric(float64(bytes), "svg-bytes")
}

// --- Tables 3 & 4: case studies -------------------------------------------

func benchCaseStudy(b *testing.B, name string) {
	spec := workloads.ByName(name)
	var rows []evaluation.CaseStudyRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = evaluation.CaseStudy(*spec, 0.05)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range rows {
		b.Logf("nest %s: %s -> %.1fx", r.Region, r.Transform, r.SpeedupEst)
		if r.SpeedupEst > best {
			best = r.SpeedupEst
		}
	}
	b.ReportMetric(best, "max-speedup-x")
}

func BenchmarkTable3Backprop(b *testing.B) { benchCaseStudy(b, "backprop") }
func BenchmarkTable4GemsFDTD(b *testing.B) { benchCaseStudy(b, "gemsfdtd") }

// --- Table 5: full Rodinia suite (Experiments I and II) -------------------

var (
	suiteOnce sync.Once
	suiteRows []*evaluation.BenchResult
	suiteErr  error
)

func suite() ([]*evaluation.BenchResult, error) {
	suiteOnce.Do(func() { suiteRows, suiteErr = evaluation.RunRodinia() })
	return suiteRows, suiteErr
}

func BenchmarkTable5Rodinia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := evaluation.RunRodinia()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			fmt.Print(evaluation.RenderTable5(rows))
		}
	}
}

// BenchmarkTable5StaticBaseline times Experiment II alone: the
// Polly-like analyzer over the whole suite.
func BenchmarkTable5StaticBaseline(b *testing.B) {
	progs := make([]*isa.Program, 0, 19)
	for _, spec := range workloads.Rodinia() {
		progs = append(progs, spec.Build())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			res := staticpoly.Analyze(p)
			if len(res.Funcs) == 0 {
				b.Fatal("no verdicts")
			}
		}
	}
}

// BenchmarkProfilingOverhead reports the per-stage cost of the dynamic
// pipeline on one mid-size benchmark (the paper's Experiment I reports
// 3h06 of CPU time for the whole suite on their server; our twins are
// laptop scale).
func BenchmarkProfilingOverhead(b *testing.B) {
	prog := workloads.SradV2()

	// nsPerOp collects the final per-stage cost; each sub-benchmark runs
	// several times with growing b.N and the last recording wins.
	nsPerOp := map[string]int64{}
	record := func(name string, b *testing.B) {
		if b.N > 0 {
			nsPerOp[name] = b.Elapsed().Nanoseconds() / int64(b.N)
		}
	}

	b.Run("pass1-structure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeStructure(prog, nil); err != nil {
				b.Fatal(err)
			}
		}
		record("pass1-structure", b)
	})
	b.Run("pass2-iiv-only", func(b *testing.B) {
		st, _ := core.AnalyzeStructure(prog, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunPass2(prog, st, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
		record("pass2-iiv-only", b)
	})
	b.Run("pass2-full-ddg", func(b *testing.B) {
		st, _ := core.AnalyzeStructure(prog, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			builder := ddg.NewBuilder(prog, ddg.DefaultOptions())
			if _, _, err := core.RunPass2(prog, st, builder, nil); err != nil {
				b.Fatal(err)
			}
			builder.Finish()
		}
		record("pass2-full-ddg", b)
	})
	// The same stage on the sharded parallel engine at several shard
	// counts; compare against pass2-full-ddg for the speedup (expect
	// ~1x on a single-core runner — the engine pipelines across cores,
	// it cannot create them).
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		name := fmt.Sprintf("pass2-full-ddg-par%d", shards)
		b.Run(name, func(b *testing.B) {
			st, _ := core.AnalyzeStructure(prog, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := parddg.NewEngine(prog, parddg.Options{Shards: shards, DDG: ddg.DefaultOptions()})
				if _, _, err := core.RunPass2(prog, st, eng, nil); err != nil {
					eng.Close()
					b.Fatal(err)
				}
				if _, err := eng.FinishChecked(); err != nil {
					b.Fatal(err)
				}
			}
			record(name, b)
		})
	}
	b.Run("scheduler-feedback", func(b *testing.B) {
		p, err := core.Run(prog, core.DefaultRunOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rep := feedback.Analyze(p); rep.Best == nil {
				b.Fatal("no region")
			}
		}
		record("scheduler-feedback", b)
	})

	if path := benchJSONPath(); path != "" {
		out := struct {
			Meta   benchMeta        `json:"meta"`
			Stages map[string]int64 `json:"stages"`
		}{Meta: collectBenchMeta(), Stages: nsPerOp}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote per-stage ns/op to %s", path)
	}
}

// benchMeta pins the machine and revision a baseline was measured on,
// so `polyprof overhead -compare` can report apples-to-oranges runs
// (mirrors evaluation.BenchMeta).
type benchMeta struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Go         string `json:"go"`
	Rev        string `json:"rev,omitempty"`
	Timestamp  string `json:"timestamp"`
}

func collectBenchMeta() benchMeta {
	m := benchMeta{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Go:         runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.Rev = strings.TrimSpace(string(out))
	}
	return m
}

// benchJSONPath decides where BenchmarkProfilingOverhead writes its
// machine-readable per-stage results.  Unset/0/false disables the
// emission (the default), 1/true selects BENCH_overhead.json, and any
// other value is used as an explicit output path.
func benchJSONPath() string {
	switch v := os.Getenv("POLYPROF_BENCHJSON"); v {
	case "", "0", "false":
		return ""
	case "1", "true":
		return "BENCH_overhead.json"
	default:
		return v
	}
}

// --- Ablations (design decisions from DESIGN.md) ---------------------------

// BenchmarkAblationRecursionDepth shows the point of the
// recursive-component-set: IIV depth stays constant (one dimension)
// while the recursion deepens, whereas the calling-context tree —
// measured side by side — grows linearly with it.
func BenchmarkAblationRecursionDepth(b *testing.B) {
	for _, depth := range []int64{4, 16, 64} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			prog := recursionTower(depth)
			var maxDims, cctDepth int
			for i := 0; i < b.N; i++ {
				p, err := core.Run(prog, core.DefaultRunOptions())
				if err != nil {
					b.Fatal(err)
				}
				maxDims = 0
				for _, s := range p.DDG.Stmts {
					if s.Depth > maxDims {
						maxDims = s.Depth
					}
				}
				tree := cct.New(prog.Main)
				if err := vm.New(prog, tree).Run(); err != nil {
					b.Fatal(err)
				}
				cctDepth = tree.MaxDepth
			}
			b.ReportMetric(float64(maxDims), "iiv-dims")
			b.ReportMetric(float64(cctDepth), "cct-depth")
		})
	}
}

// recursionTower builds a program recursing to the given depth with a
// store at each level.
func recursionTower(depth int64) *isa.Program {
	pb := isa.NewProgram(fmt.Sprintf("tower-%d", depth))
	g := pb.Global("A", depth+1)
	f := pb.Func("rec", 1)
	d := f.Arg(0)
	base := f.IConst(g.Base)
	f.StoreIdx(base, f.MinI(d, f.IConst(depth)), 0, d)
	cond := f.CmpLT(d, f.IConst(depth))
	f.If(cond, func() {
		f.Call(f.ID(), f.Add(d, f.IConst(1)))
	}, nil)
	f.RetVoid()
	m := pb.Func("main", 0)
	m.Call(f.ID(), m.IConst(0))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// BenchmarkAblationSCEVRemoval compares the statement/dependence counts
// fed to the scheduler with and without SCEV elimination (Sec. 5: the
// removal is what shrinks thousand-statement programs to hundreds).
func BenchmarkAblationSCEVRemoval(b *testing.B) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		b.Fatal(err)
	}
	withSCEV := len(p.DDG.Deps)
	scevs := 0
	for _, in := range p.DDG.Instrs {
		if in.IsSCEV {
			scevs++
		}
	}
	b.ReportMetric(float64(withSCEV), "deps-after-removal")
	b.ReportMetric(float64(scevs), "scev-instrs-removed")
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(prog, core.DefaultRunOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFusionHeuristics compares smartfuse and maxfuse
// component counts over the suite (Table 5's fusion column).
func BenchmarkAblationFusionHeuristics(b *testing.B) {
	rows, err := suite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var smart, max int
	for i := 0; i < b.N; i++ {
		smart, max = 0, 0
		for _, r := range rows {
			if r.Report.Best == nil {
				continue
			}
			comps := r.Report.Model.Components(r.Report.Best.Node)
			smart += r.Report.Model.FuseComponents(comps, sched.SmartFuse)
			max += r.Report.Model.FuseComponents(comps, sched.MaxFuse)
		}
	}
	b.ReportMetric(float64(smart), "smartfuse-components")
	b.ReportMetric(float64(max), "maxfuse-components")
}

// BenchmarkAblationPiecewiseDeps compares transformable-region discovery
// with single-piece vs. piecewise dependence folding on the in-place
// hotspot stencil (DESIGN.md decision 3: over-approximation keeps
// irregular programs analyzable).
func BenchmarkAblationPiecewiseDeps(b *testing.B) {
	prog := workloads.Hotspot()
	var found bool
	for i := 0; i < b.N; i++ {
		p, err := core.Run(prog, core.DefaultRunOptions())
		if err != nil {
			b.Fatal(err)
		}
		rep := feedback.Analyze(p)
		found = rep.Best != nil
	}
	if !found {
		b.Fatal("piecewise folding must recover hotspot's wavefront region")
	}
}

// BenchmarkAblationLatticeFolding contrasts the lattice (stride)
// folding extension with the paper's published folder on a stride-2
// kernel: with lattices the statement domains stay exact; without, they
// over-approximate (the paper's stated limitation for hand-linearized
// programs).
func BenchmarkAblationLatticeFolding(b *testing.B) {
	prog := stridedKernel()
	for _, mode := range []struct {
		name      string
		noStrides bool
	}{{"with-lattices", false}, {"without-lattices", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var exactOps, totalOps uint64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultRunOptions()
				opts.DDG.NoStrideDetection = mode.noStrides
				p, err := core.Run(prog, opts)
				if err != nil {
					b.Fatal(err)
				}
				exactOps, totalOps = 0, 0
				for _, s := range p.DDG.Stmts {
					totalOps += s.Count
					if s.Domain.Exact {
						exactOps += s.Count
					}
				}
			}
			b.ReportMetric(100*float64(exactOps)/float64(totalOps), "%exact-stmt-instances")
		})
	}
}

// stridedKernel guards its statement with a modulo condition (the
// heartwall/lud pattern): the statement executes at every second
// canonical iteration, so its domain is a lattice.
func stridedKernel() *isa.Program {
	pb := isa.NewProgram("strided")
	g := pb.Global("A", 1024)
	m := pb.Func("main", 0)
	base := m.IConst(g.Base)
	m.Loop("Li", m.IConst(0), m.IConst(16), 1, func(i isa.Reg) {
		m.Loop("Lj", m.IConst(0), m.IConst(64), 1, func(j isa.Reg) {
			even := m.CmpEQ(m.Mod(j, m.IConst(2)), m.IConst(0))
			m.If(even, func() {
				idx := m.Add(m.Mul(i, m.IConst(64)), j)
				v := m.FLoadIdx(base, idx, 0)
				m.FStoreIdx(base, idx, 0, m.FAdd(v, v))
			}, nil)
		})
	})
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// BenchmarkFoldingThroughput measures raw folding speed (points/sec) on
// a large affine stream — the scalability claim of Sec. 5.
func BenchmarkFoldingThroughput(b *testing.B) {
	const n = 1 << 16
	coords := make([][2]int64, 0, n)
	for i := int64(0); i < 256; i++ {
		for j := int64(0); j < n/256; j++ {
			coords = append(coords, [2]int64{i, j})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fold.NewFolder(2, 1)
		lbl := make([]int64, 1)
		for _, c := range coords {
			lbl[0] = 3*c[0] + 5*c[1] + 7
			f.Add(c[:], lbl)
		}
		if p := f.Finish(); p.Fn == nil {
			b.Fatal("fold failed")
		}
	}
	b.SetBytes(int64(len(coords)) * 16)
}

// BenchmarkVM measures raw interpreter speed without instrumentation
// consumers (the QEMU-substitute's baseline overhead).
func BenchmarkVM(b *testing.B) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeStructure(prog, nil); err != nil {
			b.Fatal(err)
		}
	}
}
