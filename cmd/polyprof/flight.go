package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"polyprof/internal/obs/flight"
)

// cmdFlight inspects flight-recorder incident bundles written by
// `polyprof serve -data-dir`:
//
//	polyprof flight list -data-dir d            bundles, newest first
//	polyprof flight show <id> -data-dir d       human-readable incident timeline
//	polyprof flight export <id> -data-dir d     raw bundle JSON on stdout
//	polyprof flight gc -data-dir d -keep n      prune old bundles (oldest first)
//
// Bundles live under <data-dir>/flightrec; -dir points at a bundle
// directory directly.
func cmdFlight(args []string) error {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "daemon data directory (bundles under <data-dir>/flightrec)")
	dirFlag := fs.String("dir", "", "bundle directory (overrides -data-dir)")
	keep := fs.Int("keep", 16, "flight gc: newest bundles to keep (0 removes all)")
	maxBytes := fs.Int64("max-bytes", 0, "flight gc: also prune until kept bundles fit this many bytes (0 = no byte cap)")

	// Accept `flight list -data-dir d` and `flight -data-dir d list`
	// alike, matching the other subcommands' operand handling.
	var operands []string
	rest := args
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		operands = append(operands, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	operands = append(operands, fs.Args()...)

	verb := "list"
	if len(operands) > 0 {
		verb = operands[0]
	}

	dir := *dirFlag
	if dir == "" {
		if *dataDir == "" {
			return fmt.Errorf("flight: need -data-dir (or -dir) to locate bundles")
		}
		dir = filepath.Join(*dataDir, "flightrec")
	}

	switch verb {
	case "list":
		infos, err := flight.List(dir)
		if err != nil {
			return err
		}
		if len(infos) == 0 {
			fmt.Printf("no flight bundles under %s\n", dir)
			return nil
		}
		fmt.Print(flight.RenderList(infos))
		return nil
	case "show", "export":
		if len(operands) < 2 {
			return fmt.Errorf("flight %s: missing bundle id (see `polyprof flight list`)", verb)
		}
		b, err := flight.ReadBundle(dir, operands[1])
		if err != nil {
			return err
		}
		if verb == "show" {
			fmt.Print(flight.Render(b))
			return nil
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
		return nil
	case "gc":
		removed, err := flight.GC(dir, *keep, *maxBytes)
		for _, id := range removed {
			fmt.Printf("removed %s\n", id)
		}
		if err != nil {
			return err
		}
		infos, err := flight.List(dir)
		if err != nil {
			return err
		}
		fmt.Printf("flight gc: removed %d bundle(s), %d remain under %s\n", len(removed), len(infos), dir)
		return nil
	default:
		return fmt.Errorf("flight: unknown verb %q (want list, show, export, or gc)", verb)
	}
}
