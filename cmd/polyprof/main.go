// Command polyprof runs the POLY-PROF reproduction pipeline on the
// bundled workloads: profile a benchmark and print its feedback, render
// an annotated flame graph, regenerate the paper's evaluation tables,
// run the static baseline, or measure the profiler's own per-stage
// cost.
//
// Usage:
//
//	polyprof list
//	polyprof profile <workload>        full pipeline + feedback report
//	polyprof flame <workload> [-o f]   annotated flame graph SVG
//	polyprof static <workload>         Polly-like baseline verdicts
//	polyprof disasm <workload>         pseudo-assembler listing
//	polyprof table5                    Experiment I+II summary table
//	polyprof casestudy <backprop|gemsfdtd>   Table 3 / Table 4
//	polyprof overhead [workload|all]   per-stage profiling cost (Exp. I)
//	polyprof serve [-http :7070]       profiling-as-a-service daemon
//
// profile, report, table5 and overhead accept -metrics (append a
// metrics section), -http :addr (serve live Prometheus/JSON metrics +
// pprof), and -trace out.json (write the pipeline span tree as Chrome
// trace-event JSON for Perfetto).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"polyprof"
	"polyprof/internal/evaluation"
	"polyprof/internal/faultinject"
	"polyprof/internal/iiv"
	"polyprof/internal/obs"
	"polyprof/internal/serve"
	"polyprof/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// POLYPROF_FAULT=point=mode[:arg][:count],... arms the fault
	// injection registry for chaos testing (e.g.
	// POLYPROF_FAULT=vm.step=error:boom:3).
	if err := faultinject.ArmFromEnv(os.Getenv("POLYPROF_FAULT")); err != nil {
		fmt.Fprintln(os.Stderr, "polyprof:", err)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "flame":
		err = cmdFlame(os.Args[2:])
	case "static":
		err = cmdStatic(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "table5":
		err = cmdTable5(os.Args[2:])
	case "overhead":
		err = cmdOverhead(os.Args[2:])
	case "diag":
		err = cmdDiag(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "work":
		err = cmdWork(os.Args[2:])
	case "flight":
		err = cmdFlight(os.Args[2:])
	case "casestudy":
		err = cmdCaseStudy(os.Args[2:])
	case "ddg":
		err = cmdDDG(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyprof:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: polyprof <command> [args]

commands:
  list                    list bundled workloads
  profile <workload>      run the full pipeline and print feedback
  flame <workload> [-o f] write the annotated flame graph SVG
  static <workload>       run the Polly-like static baseline
  disasm <workload>       print the pseudo-assembler listing
  table5                  run the whole Rodinia suite (Experiment I+II)
  overhead [workload|all] per-stage profiling cost table (Experiment I)
  diag [workload|all]     parallel-engine utilization diagnosis: per-actor
                          busy fractions, sequencer occupancy, queue depths,
                          critical path and an Amdahl projected-speedup table
                          (-parallel-ddg n shards, default all cores; -json;
                          -trace adds per-actor timeline tracks)
  casestudy <name>        backprop (Table 3) or gemsfdtd (Table 4)
  ddg <workload>          dump the folded polyhedral DDG of the region
  report <workload> [-json]  full feedback document (or JSON)
  optimize <workload> [-json] [-tile n]
                          close the PGO loop: apply the suggested schedules
                          (interchange, rectangular tiling), verify output
                          equality, and print measured speedups; illegal or
                          unrecognizable schedules are refused with a reason
  serve [-http :7070]     profiling-as-a-service daemon (POST /v1/profile)
  work -coordinator URL   stateless remote worker: claim jobs from a
                          coordinator over the lease protocol, run them,
                          report under the fencing token (-workers n slots,
                          -lease-ttl d, -name id; budget/parallel flags apply)
  flight <list|show|export|gc> [id] -data-dir d
                          inspect or prune flight-recorder incident bundles
                          written by the daemon (under <data-dir>/flightrec;
                          gc takes -keep n and -max-bytes b, oldest removed
                          first)

overhead regression flags:
  -compare f.json  diff the fresh stage costs against a baseline
                   (BENCH_overhead.json bench emission, legacy flat map, or
                   overhead -json output); exits nonzero on regression
  -tolerance x     allowed slowdown before -compare fails (default 0.10 = +10%)

flags (profile, report, table5, overhead, diag):
  -metrics      append the metrics-registry section to the output
  -http :addr   serve /metrics (Prometheus or ?format=json) + pprof
  -trace f.json write the pipeline span tree as Chrome trace-event JSON

parallel engine (profile, report, overhead, serve):
  -parallel-ddg n  track dependences on the sharded parallel engine with
                   n shard workers (0 = one per core; default sequential);
                   reports are bit-for-bit identical to sequential runs

budget flags (profile, report, serve):
  -timeout d         abort after this wall-clock duration (0 = unlimited)
  -max-steps n       abort after n dynamic VM steps (0 = unlimited)
  -max-shadow-mb n   degrade (coarsen, soundly) DDG tracking past n MiB
  -max-ddg-edges n   degrade DDG folding past n distinct edges

streaming (profile, serve):
  -epoch-events n    fold state every n dynamic events instead of buffering
                     the whole trace: shadow memory is released per epoch
                     (bounded-memory runs under -max-shadow-mb), the daemon
                     checkpoints each epoch durably (crash/kill resumes from
                     the last committed epoch) and streams per-epoch
                     provisional reports on GET /v1/jobs/<id>?stream=1;
                     final reports are byte-identical to buffered runs

serve flags:
  -http :addr        listen address (default :7070)
  -max-inflight n    concurrent profile requests before 429 (default 2)
  -ring n            request summaries kept for /v1/requests (default 64)
  -request-timeout d per-request wall-clock limit, 408 on expiry (default 60s)
  -data-dir path     durable job store (enables POST /v1/jobs, GET /v1/jobs,
                     DELETE /v1/jobs/<id>, crash-safe results + request
                     history via WAL + snapshots)
  -workers n         concurrent local job executions (default 2; 0 runs no
                     jobs locally — a pure coordinator for polyprof work)
  -max-attempts n    attempts before a failing job is quarantined (default 3)
  -job-ttl d         delete terminal jobs this long after they finish
                     (WAL-logged; default 0 = keep forever)
  -slow-job-threshold d  freeze the flight recorder when a job attempt runs
                     longer than this (default request-timeout/2; negative
                     disables)
  -lease-ttl d       default lease TTL for remote workers (default 30s,
                     clamped to [200ms, 10m]); expired leases are reclaimed
                     and their jobs re-queued

POLYPROF_FAULT=point=mode[:arg][:count],... arms fault injection
(points: vm.step, ddg.shadow.insert, fold.finish, fold.epoch.merge,
sched.build, serve.handler, jobstore.wal.append, jobstore.wal.sync,
jobstore.snapshot, jobstore.replay, parddg.batch.dispatch,
parddg.shard.insert, parddg.merge, jobexec.attempt,
jobexec.checkpoint, jobapi.partition, jobapi.acquire,
jobapi.heartbeat, jobapi.result, transform.apply, transform.verify;
modes: panic, error, budget, delay; a
negative count is sticky — the fault fires on every hit, e.g.
jobapi.partition=error:net:-1 holds a partition)`)
}

func cmdList() error {
	fmt.Println("Rodinia 3.1 twins (Table 5):")
	for _, s := range polyprof.Rodinia() {
		fmt.Printf("  %-16s (paper Polly reasons: %s)\n", s.Name, s.PaperReasons)
	}
	fmt.Println("case studies: gemsfdtd (Table 4), backprop (Table 3)")
	fmt.Println("paper figures: example1, example2 (Fig. 3)")
	fmt.Println("PolyBench twins:")
	names := []string{}
	for _, s := range workloads.PolyBench() {
		names = append(names, s.Name)
	}
	for _, s := range workloads.PolyBenchExtra() {
		names = append(names, s.Name)
	}
	fmt.Println("  " + strings.Join(names, ", "))
	return nil
}

// parseWorkload parses a subcommand's flag set together with its
// workload operand, accepting the flags on either side of the name
// (`profile backprop -metrics` and `profile -metrics backprop` both
// work, matching the overhead subcommand).  It returns "" when no
// workload was given.
func parseWorkload(fs *flag.FlagSet, args []string) (string, error) {
	name := ""
	rest := args
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name = args[0]
		rest = args[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return "", err
	}
	if name == "" && fs.NArg() > 0 {
		name = fs.Arg(0)
	}
	return name, nil
}

// obsFlags holds the shared observability flags of the profiling
// commands: -metrics appends the registry snapshot to the output,
// -http serves live metrics (Prometheus or JSON) and pprof during the
// run, -trace writes the run's span tree as Chrome trace-event JSON.
type obsFlags struct {
	metrics bool
	http    string
	trace   string
	// jsonOut is set by commands emitting a machine-readable document
	// on stdout; the metrics section then goes to stderr so stdout
	// stays valid JSON for consumers piping it.
	jsonOut bool
	// extraSpans are appended to the Chrome trace alongside the span
	// tree (the diag command adds the sampler's per-actor timelines).
	extraSpans []obs.SpanRecord

	srv *obs.MetricsServer
}

// budgetFlags holds the shared resource-governance flags of the
// profiling commands.  Wall clock and steps are hard limits (the run
// aborts with a budget error); shadow memory and DDG edges are
// degrading limits (dependence tracking coarsens, soundly, instead of
// failing).
type budgetFlags struct {
	timeout     time.Duration
	maxSteps    uint64
	maxShadowMB uint64
	maxEdges    uint64
}

// addParallelFlag registers -parallel-ddg: the shard-worker count of
// the parallel dependence engine.  The default (negative) keeps the
// sequential builder; 0 uses one shard per core.
func addParallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel-ddg", -1,
		"shard workers for the parallel dependence engine (0 = all cores, negative = sequential)")
}

// resolveShards maps the -parallel-ddg flag value to an engine shard
// count: negative selects the sequential builder (0), zero one shard
// per core.
func resolveShards(n int) int {
	switch {
	case n < 0:
		return 0
	case n == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return n
	}
}

func addBudgetFlags(fs *flag.FlagSet) *budgetFlags {
	f := &budgetFlags{}
	fs.DurationVar(&f.timeout, "timeout", 0, "abort the run after this wall-clock duration (0 = unlimited)")
	fs.Uint64Var(&f.maxSteps, "max-steps", 0, "abort the run after this many dynamic VM steps (0 = unlimited)")
	fs.Uint64Var(&f.maxShadowMB, "max-shadow-mb", 0, "degrade dependence tracking past this much shadow memory, MiB (0 = unlimited)")
	fs.Uint64Var(&f.maxEdges, "max-ddg-edges", 0, "degrade dependence folding past this many distinct DDG edges (0 = unlimited)")
	return f
}

func (f *budgetFlags) limits() polyprof.BudgetLimits {
	return polyprof.BudgetLimits{
		Wall:           f.timeout,
		MaxSteps:       f.maxSteps,
		MaxShadowBytes: f.maxShadowMB << 20,
		MaxDDGEdges:    f.maxEdges,
	}
}

// noteDegraded warns on stderr when a run's DDG was coarsened by a
// resource budget.
func noteDegraded(rep *polyprof.Report) {
	if d := rep.Profile.DDG.Degraded; d != nil {
		fmt.Fprintf(os.Stderr, "polyprof: degraded run: budget(s) %v tripped; %d dependence(s) over-approximated (sound superset)\n",
			d.Budgets, d.CoarseDeps)
	}
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	f := &obsFlags{}
	fs.BoolVar(&f.metrics, "metrics", false, "append the metrics-registry section to the output")
	fs.StringVar(&f.http, "http", "", "serve metrics and pprof on this address (e.g. :6060)")
	fs.StringVar(&f.trace, "trace", "", "write the pipeline span tree as Chrome trace-event JSON to this file")
	return f
}

func (f *obsFlags) start() error {
	if f.metrics || f.http != "" || f.trace != "" {
		obs.Enable()
		obs.Reset()
	}
	if f.http != "" {
		srv, err := obs.Serve(f.http)
		if err != nil {
			return err
		}
		f.srv = srv
		fmt.Fprintf(os.Stderr, "polyprof: metrics on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}
	return nil
}

func (f *obsFlags) finish() error {
	if f.metrics {
		out := io.Writer(os.Stdout)
		if f.jsonOut {
			out = os.Stderr
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, "== metrics ==")
		fmt.Fprint(out, obs.TakeSnapshot().Text())
	}
	if f.trace != "" {
		spans := append(obs.Default.Spans(), f.extraSpans...)
		if err := obs.WriteChromeTrace(f.trace, spans); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "polyprof: wrote %s (%d spans; load in Perfetto or chrome://tracing)\n", f.trace, len(spans))
	}
	if f.srv != nil {
		fmt.Fprintln(os.Stderr, "polyprof: metrics server still running; Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		if err := f.srv.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "polyprof: metrics server stopped")
	}
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	of := addObsFlags(fs)
	bf := addBudgetFlags(fs)
	par := addParallelFlag(fs)
	epochEvents := fs.Uint64("epoch-events", 0,
		"streaming mode: fold state and release shadow memory every n dynamic events (0 = buffered)")
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("profile: missing workload name")
	}
	if err := of.start(); err != nil {
		return err
	}
	prog, err := polyprof.Workload(name)
	if err != nil {
		return err
	}
	popts := polyprof.ProfileOptions{
		Limits:      bf.limits(),
		ParallelDDG: resolveShards(*par),
		EpochEvents: *epochEvents,
	}
	if *epochEvents > 0 {
		popts.OnEpoch = func(ep *polyprof.Epoch) error {
			fmt.Fprintf(os.Stderr, "polyprof: epoch %d: %d events folded (%.1f MiB shadow released)\n",
				ep.N, ep.Events, float64(ep.ReleasedBytes)/(1<<20))
			return nil
		}
	}
	rep, err := polyprof.ProfileWith(context.Background(), prog, popts)
	if err != nil {
		return err
	}
	noteDegraded(rep)
	fmt.Print(rep.Summary())
	if rep.Best != nil {
		fmt.Println()
		fmt.Print(rep.AnnotatedAST(rep.Best))
		fmt.Println()
		for _, t := range rep.Best.Transforms {
			if len(t.Nest.Loops) == 0 || t.Nest.Loops[0].TotalOps*10 < rep.Best.Ops {
				continue
			}
			if sp, err := rep.EstimateSpeedup(t, polyprof.DefaultCostModel()); err == nil {
				fmt.Printf("estimated speedup (nest depth %d): %v\n", t.Nest.Depth(), sp)
			}
		}
	}
	fmt.Println()
	fmt.Println("dynamic schedule tree (hot paths):")
	fmt.Print(rep.Profile.Tree.Render(iiv.ProgramNamer(prog), rep.Profile.Tree.TotalOps()/50))
	return of.finish()
}

func cmdFlame(args []string) error {
	fs := flag.NewFlagSet("flame", flag.ExitOnError)
	out := fs.String("o", "", "output file (default <workload>.svg)")
	width := fs.Int("w", 1200, "SVG width")
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("flame: missing workload name")
	}
	prog, err := polyprof.Workload(name)
	if err != nil {
		return err
	}
	rep, err := polyprof.Profile(prog)
	if err != nil {
		return err
	}
	svg := rep.FlameGraph(*width, 18)
	path := *out
	if path == "" {
		path = name + ".svg"
	}
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(svg))
	return nil
}

func cmdStatic(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("static: missing workload name")
	}
	prog, err := polyprof.Workload(args[0])
	if err != nil {
		return err
	}
	res := polyprof.AnalyzeStatic(prog)
	fmt.Printf("%-26s %-8s %-8s %s\n", "function", "loops", "modeled", "failure reasons (RCBFAP)")
	for _, f := range prog.Funcs {
		fr := res.Funcs[f.ID]
		fmt.Printf("%-26s %-8v %-8v %v\n", f.Name, fr.HasLoops, fr.Modeled, fr.Reasons)
	}
	if spec := workloads.ByName(args[0]); spec != nil && len(spec.RegionFuncs) > 0 {
		fmt.Printf("\nregion %v: reasons %v (paper reported: %s)\n",
			spec.RegionFuncs, res.RegionReasons(prog, spec.RegionFuncs...), spec.PaperReasons)
	}
	return nil
}

func cmdDisasm(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("disasm: missing workload name")
	}
	prog, err := polyprof.Workload(args[0])
	if err != nil {
		return err
	}
	fmt.Print(prog.Disasm())
	return nil
}

func cmdDDG(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("ddg: missing workload name")
	}
	prog, err := polyprof.Workload(args[0])
	if err != nil {
		return err
	}
	rep, err := polyprof.Profile(prog)
	if err != nil {
		return err
	}
	if rep.Best == nil {
		return fmt.Errorf("no region of interest")
	}
	fmt.Print(rep.DomainReport(rep.Best, 0, -1))
	fmt.Println()
	fmt.Print(rep.DDGReport(rep.Best))
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the machine-readable report")
	of := addObsFlags(fs)
	bf := addBudgetFlags(fs)
	par := addParallelFlag(fs)
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("report: missing workload name")
	}
	of.jsonOut = *asJSON
	if err := of.start(); err != nil {
		return err
	}
	prog, err := polyprof.Workload(name)
	if err != nil {
		return err
	}
	rep, err := polyprof.ProfileWith(context.Background(), prog, polyprof.ProfileOptions{
		Limits:      bf.limits(),
		ParallelDDG: resolveShards(*par),
	})
	if err != nil {
		return err
	}
	noteDegraded(rep)
	if *asJSON {
		cm := polyprof.DefaultCostModel()
		data, err := rep.JSON(&cm)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return of.finish()
	}
	fmt.Print(rep.Document(polyprof.DefaultCostModel()))
	return of.finish()
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the full machine-readable report (feedback + optimization section)")
	tile := fs.Int("tile", 0, "rectangular tile edge (0 = engine default)")
	of := addObsFlags(fs)
	bf := addBudgetFlags(fs)
	par := addParallelFlag(fs)
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("optimize: missing workload name")
	}
	of.jsonOut = *asJSON
	if err := of.start(); err != nil {
		return err
	}
	prog, err := polyprof.Workload(name)
	if err != nil {
		return err
	}
	rep, opt, err := polyprof.OptimizeWith(context.Background(), prog, polyprof.ProfileOptions{
		Limits:      bf.limits(),
		ParallelDDG: resolveShards(*par),
	}, *tile)
	if err != nil {
		return err
	}
	noteDegraded(rep)
	if *asJSON {
		optJSON, err := json.Marshal(opt)
		if err != nil {
			return err
		}
		cm := polyprof.DefaultCostModel()
		data, err := rep.JSONWith(&cm, optJSON)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return of.finish()
	}
	printOptimizeReport(opt)
	return of.finish()
}

// printOptimizeReport renders the transform engine's result for a
// terminal: baseline, then per-nest variants with measured speedups or
// structured refusal reasons.
func printOptimizeReport(opt *polyprof.OptimizeReport) {
	fmt.Printf("== profile-guided optimization: %s ==\n", opt.Program)
	if opt.Refused != nil {
		fmt.Printf("refused: %s\n", opt.Refused)
		return
	}
	if opt.Baseline != nil {
		fmt.Printf("baseline: %d cycles (%d cache hits, %d misses; tile=%d)\n",
			opt.Baseline.Cycles, opt.Baseline.CacheHits, opt.Baseline.CacheMisses, opt.TileSize)
	}
	if len(opt.Candidates) == 0 {
		fmt.Println("no transformable nests suggested")
		return
	}
	for _, c := range opt.Candidates {
		fmt.Printf("\nnest %s (depth %d, %d dynamic ops, %d context(s)): %s\n",
			c.Nest, c.Depth, c.Ops, c.Contexts, c.Suggested)
		if c.Refused != nil {
			fmt.Printf("  refused: %s\n", c.Refused)
			continue
		}
		for _, v := range c.Variants {
			switch {
			case v.Refused != nil:
				fmt.Printf("  %-17s refused: %s\n", v.Kind, v.Refused)
			case v.Verified:
				fmt.Printf("  %-17s speedup %.3fx (%d cycles, %d hits, %d misses) [verified]\n",
					v.Kind, v.MeasuredSpeedup, v.Measured.Cycles,
					v.Measured.CacheHits, v.Measured.CacheMisses)
			default:
				fmt.Printf("  %-17s applied=%v verified=%v\n", v.Kind, v.Applied, v.Verified)
			}
		}
	}
	if opt.BestSpeedup > 0 {
		fmt.Printf("\nbest: %s, measured speedup %.3fx\n", opt.Best, opt.BestSpeedup)
	}
}

func cmdTable5(args []string) error {
	fs := flag.NewFlagSet("table5", flag.ExitOnError)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.start(); err != nil {
		return err
	}
	fmt.Println("running the Rodinia suite through the full pipeline (Experiment I+II)...")
	rows, err := polyprof.RunSuite()
	if err != nil {
		return err
	}
	fmt.Print(polyprof.RenderTable5(rows))
	fmt.Println("\nExperiment II (static baseline): per-benchmark failure reasons vs. the paper")
	fmt.Printf("%-16s %-10s %-10s %s\n", "benchmark", "ours", "paper", "whole region modeled?")
	for _, r := range rows {
		fmt.Printf("%-16s %-10s %-10s %v\n", r.Row.Name, r.Row.PollyReasons, r.Row.PaperReasons, r.Row.PollyModeled)
	}
	return of.finish()
}

// cmdOverhead measures the cost of the profiling pipeline itself, per
// stage, for one workload or the whole Rodinia suite (the shape of the
// paper's Experiment I).
func cmdOverhead(args []string) error {
	fs := flag.NewFlagSet("overhead", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit machine-readable stage costs")
	compare := fs.String("compare", "", "baseline to diff against (bench emission, flat stage map, or overhead -json output); exits nonzero on regression")
	tolerance := fs.Float64("tolerance", 0.10, "allowed slowdown before -compare fails (0.10 = +10%)")
	of := addObsFlags(fs)
	par := addParallelFlag(fs)
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		name = "all"
	}
	of.jsonOut = *asJSON
	if err := of.start(); err != nil {
		return err
	}
	shards := resolveShards(*par)
	var rs []*evaluation.OverheadReport
	var render func() string
	if name == "all" {
		fmt.Fprintln(os.Stderr, "measuring per-stage profiling cost across the Rodinia suite...")
		rs, err = evaluation.OverheadSuiteSharded(shards)
		if err != nil {
			return err
		}
		render = func() string { return evaluation.RenderOverheadSuite(rs) }
	} else {
		spec := workloads.ByName(name)
		if spec == nil {
			return fmt.Errorf("unknown workload %q", name)
		}
		r, err := evaluation.OverheadSharded(*spec, shards)
		if err != nil {
			return err
		}
		rs = []*evaluation.OverheadReport{r}
		render = func() string { return evaluation.RenderOverhead(r) }
	}
	if *asJSON {
		data, err := evaluation.OverheadJSON(rs)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(render())
	}
	var cmpErr error
	if *compare != "" {
		if len(rs) != 1 {
			return fmt.Errorf("overhead: -compare wants a single workload, not %q", name)
		}
		data, err := os.ReadFile(*compare)
		if err != nil {
			return err
		}
		base, err := evaluation.LoadBaseline(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *compare, err)
		}
		c := evaluation.CompareOverhead(rs[0], base, *tolerance)
		out := io.Writer(os.Stdout)
		if *asJSON {
			out = os.Stderr
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, evaluation.RenderCompare(c, base.Meta))
		cmpErr = c.Err()
	}
	if err := of.finish(); err != nil {
		return err
	}
	return cmpErr
}

// cmdDiag profiles one workload (or the suite) on the sharded parallel
// dependence engine with the utilization sampler attached and prints
// the parallel diagnosis: who is busy, who is blocked, what Amdahl
// says about adding shards.
func cmdDiag(args []string) error {
	fs := flag.NewFlagSet("diag", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit machine-readable diagnosis reports")
	of := addObsFlags(fs)
	par := addParallelFlag(fs)
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		name = "all"
	}
	of.jsonOut = *asJSON
	if err := of.start(); err != nil {
		return err
	}
	// diag is about the parallel engine, so an absent -parallel-ddg
	// means all cores rather than the sequential builder.
	shards := resolveShards(*par)
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	var rs []*evaluation.DiagReport
	if name == "all" {
		fmt.Fprintf(os.Stderr, "diagnosing the Rodinia suite on the %d-shard parallel engine...\n", shards)
		rs, err = evaluation.DiagnoseSuite(shards, obs.Scope{})
	} else {
		spec := workloads.ByName(name)
		if spec == nil {
			return fmt.Errorf("unknown workload %q", name)
		}
		var r *evaluation.DiagReport
		r, err = evaluation.Diagnose(*spec, shards, obs.Scope{})
		rs = []*evaluation.DiagReport{r}
	}
	if err != nil {
		return err
	}
	for _, r := range rs {
		of.extraSpans = append(of.extraSpans, r.Timeline...)
	}
	if *asJSON {
		data, err := evaluation.DiagJSON(rs)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return of.finish()
	}
	for i, r := range rs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(evaluation.RenderDiag(r))
	}
	return of.finish()
}

// cmdServe runs the profiling-as-a-service daemon: POST
// /v1/profile?workload=<name> runs the full pipeline per request with
// a per-request span tree; /metrics exposes the merged process
// registry.  SIGINT/SIGTERM drain in-flight profiles and exit.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("http", ":7070", "listen address")
	maxInFlight := fs.Int("max-inflight", 2, "max concurrently running profile requests (excess get 429)")
	ring := fs.Int("ring", 64, "recent-request summaries kept for /v1/requests")
	reqTimeout := fs.Duration("request-timeout", serve.DefaultRequestTimeout,
		"per-request wall-clock limit, 408 on expiry (negative disables)")
	dataDir := fs.String("data-dir", "", "durable job-store directory; enables POST /v1/jobs and persistent request history")
	workers := fs.Int("workers", 2, "concurrent local job executions; 0 = coordinator-only, jobs run on remote `polyprof work` workers (requires -data-dir)")
	maxAttempts := fs.Int("max-attempts", 3, "attempts before a failing job is quarantined (requires -data-dir)")
	jobTTL := fs.Duration("job-ttl", 0, "garbage-collect terminal jobs this long after they finish (0 = keep forever; requires -data-dir)")
	slowJob := fs.Duration("slow-job-threshold", 0, "write a flight bundle when a job attempt outlives this (0 = request-timeout/2, negative disables)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "default lease TTL granted to remote workers (clamped to [200ms, 10m])")
	epochEvents := fs.Uint64("epoch-events", 0,
		"default epoch grid for submitted jobs: stream, checkpoint, and emit provisional reports every n events (0 = buffered; per-job ?epoch-events overrides)")
	bf := addBudgetFlags(fs)
	par := addParallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The flag's 0 means "no local execution" (pure coordinator); the
	// pool reserves 0 for its own default, so translate to its negative
	// coordinator-only encoding.
	localWorkers := *workers
	if localWorkers == 0 {
		localWorkers = -1
	}
	s, err := serve.New(serve.Options{
		MaxInFlight:      *maxInFlight,
		RingSize:         *ring,
		RequestTimeout:   *reqTimeout,
		Limits:           bf.limits(),
		DataDir:          *dataDir,
		Workers:          localWorkers,
		MaxAttempts:      *maxAttempts,
		JobTTL:           *jobTTL,
		ParallelDDG:      resolveShards(*par),
		SlowJobThreshold: *slowJob,
		LeaseTTL:         *leaseTTL,
		EpochEvents:      *epochEvents,
		// Open after the listener is up so /readyz answers 503 during
		// WAL replay instead of the port refusing connections.
		DeferOpen: true,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Close()
		return err
	}
	srv := &http.Server{Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// Replay the WAL and start the pool/reclaimer while the listener
	// answers /readyz 503; the "serving profiles" line below is the
	// scriptable ready signal and must only print once Open succeeded.
	if err := s.Open(); err != nil {
		srv.Close()
		s.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "polyprof: serving profiles on http://%s (POST /v1/profile?workload=<name>)\n", ln.Addr())
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "polyprof: durable jobs enabled under %s (POST /v1/jobs)\n", *dataDir)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		s.Close()
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "polyprof: %v — draining in-flight profiles\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			s.Close()
			return err
		}
		// Stop the worker pool and compact+close the WAL after HTTP
		// drain, so in-flight jobs either finish or re-enqueue durably.
		if err := s.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "polyprof: drained, bye")
		return nil
	}
}

func cmdCaseStudy(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("casestudy: want backprop or gemsfdtd")
	}
	name := args[0]
	spec := workloads.ByName(name)
	if spec == nil {
		return fmt.Errorf("unknown workload %q", name)
	}
	res, rows, err := evaluation.CaseStudy(*spec, 0.05)
	if err != nil {
		return err
	}
	title := "case study"
	switch name {
	case "backprop":
		title = "Case study I (paper Table 3): backprop"
	case "gemsfdtd":
		title = "Case study II (paper Table 4): GemsFDTD"
	}
	fmt.Println(title)
	if res.Report.Best != nil {
		fmt.Printf("region: %s (%.0f%% of ops)\n\n", res.Report.Best.CodeRef, 100*res.Report.Best.PctOps)
	}
	for _, row := range rows {
		par := make([]string, len(row.Parallel))
		for i, p := range row.Parallel {
			par[i] = map[bool]string{true: "yes", false: "no"}[p]
		}
		st := make([]string, len(row.Stride01))
		for i, s := range row.Stride01 {
			st[i] = fmt.Sprintf("%.0f%%", 100*s)
		}
		fmt.Printf("nest %s: %.0f%% ops\n", row.Region, 100*row.PctOps)
		fmt.Printf("  transform:  %s\n", row.Transform)
		fmt.Printf("  parallel:   (%s)  permutable: %v  tile: %dD  stride01: (%s)\n",
			strings.Join(par, ","), row.Permutable, row.TileD, strings.Join(st, ","))
		fmt.Printf("  speedup:    %s\n\n", row.SpeedupNote)
	}
	return nil
}
