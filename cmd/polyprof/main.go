// Command polyprof runs the POLY-PROF reproduction pipeline on the
// bundled workloads: profile a benchmark and print its feedback, render
// an annotated flame graph, regenerate the paper's evaluation tables,
// run the static baseline, or measure the profiler's own per-stage
// cost.
//
// Usage:
//
//	polyprof list
//	polyprof profile <workload>        full pipeline + feedback report
//	polyprof flame <workload> [-o f]   annotated flame graph SVG
//	polyprof static <workload>         Polly-like baseline verdicts
//	polyprof disasm <workload>         pseudo-assembler listing
//	polyprof table5                    Experiment I+II summary table
//	polyprof casestudy <backprop|gemsfdtd>   Table 3 / Table 4
//	polyprof overhead [workload|all]   per-stage profiling cost (Exp. I)
//
// profile, report and table5 accept -metrics (append a metrics
// section) and -http :addr (serve live metrics JSON + pprof).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"polyprof"
	"polyprof/internal/evaluation"
	"polyprof/internal/iiv"
	"polyprof/internal/obs"
	"polyprof/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "flame":
		err = cmdFlame(os.Args[2:])
	case "static":
		err = cmdStatic(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "table5":
		err = cmdTable5(os.Args[2:])
	case "overhead":
		err = cmdOverhead(os.Args[2:])
	case "casestudy":
		err = cmdCaseStudy(os.Args[2:])
	case "ddg":
		err = cmdDDG(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyprof:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: polyprof <command> [args]

commands:
  list                    list bundled workloads
  profile <workload>      run the full pipeline and print feedback
  flame <workload> [-o f] write the annotated flame graph SVG
  static <workload>       run the Polly-like static baseline
  disasm <workload>       print the pseudo-assembler listing
  table5                  run the whole Rodinia suite (Experiment I+II)
  overhead [workload|all] per-stage profiling cost table (Experiment I)
  casestudy <name>        backprop (Table 3) or gemsfdtd (Table 4)
  ddg <workload>          dump the folded polyhedral DDG of the region
  report <workload> [-json]  full feedback document (or JSON)

flags (profile, report, table5):
  -metrics      append the metrics-registry section to the output
  -http :addr   serve /metrics JSON and /debug/pprof during the run`)
}

func cmdList() error {
	fmt.Println("Rodinia 3.1 twins (Table 5):")
	for _, s := range polyprof.Rodinia() {
		fmt.Printf("  %-16s (paper Polly reasons: %s)\n", s.Name, s.PaperReasons)
	}
	fmt.Println("case studies: gemsfdtd (Table 4), backprop (Table 3)")
	fmt.Println("paper figures: example1, example2 (Fig. 3)")
	fmt.Println("PolyBench twins:")
	names := []string{}
	for _, s := range workloads.PolyBench() {
		names = append(names, s.Name)
	}
	for _, s := range workloads.PolyBenchExtra() {
		names = append(names, s.Name)
	}
	fmt.Println("  " + strings.Join(names, ", "))
	return nil
}

// parseWorkload parses a subcommand's flag set together with its
// workload operand, accepting the flags on either side of the name
// (`profile backprop -metrics` and `profile -metrics backprop` both
// work, matching the overhead subcommand).  It returns "" when no
// workload was given.
func parseWorkload(fs *flag.FlagSet, args []string) (string, error) {
	name := ""
	rest := args
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name = args[0]
		rest = args[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return "", err
	}
	if name == "" && fs.NArg() > 0 {
		name = fs.Arg(0)
	}
	return name, nil
}

// obsFlags holds the shared observability flags of the profiling
// commands: -metrics appends the registry snapshot to the output,
// -http serves live metrics JSON and pprof during (and after) the run.
type obsFlags struct {
	metrics bool
	http    string
	// jsonOut is set by commands emitting a machine-readable document
	// on stdout; the metrics section then goes to stderr so stdout
	// stays valid JSON for consumers piping it.
	jsonOut bool
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	f := &obsFlags{}
	fs.BoolVar(&f.metrics, "metrics", false, "append the metrics-registry section to the output")
	fs.StringVar(&f.http, "http", "", "serve metrics JSON and pprof on this address (e.g. :6060)")
	return f
}

func (f *obsFlags) start() error {
	if f.metrics || f.http != "" {
		obs.Enable()
		obs.Reset()
	}
	if f.http != "" {
		ln, err := obs.Serve(f.http)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "polyprof: metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
	}
	return nil
}

func (f *obsFlags) finish() {
	if f.metrics {
		out := io.Writer(os.Stdout)
		if f.jsonOut {
			out = os.Stderr
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, "== metrics ==")
		fmt.Fprint(out, obs.TakeSnapshot().Text())
	}
	if f.http != "" {
		fmt.Fprintln(os.Stderr, "polyprof: metrics server still running; Ctrl-C to exit")
		select {}
	}
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	of := addObsFlags(fs)
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("profile: missing workload name")
	}
	if err := of.start(); err != nil {
		return err
	}
	prog, err := polyprof.Workload(name)
	if err != nil {
		return err
	}
	rep, err := polyprof.Profile(prog)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if rep.Best != nil {
		fmt.Println()
		fmt.Print(rep.AnnotatedAST(rep.Best))
		fmt.Println()
		for _, t := range rep.Best.Transforms {
			if len(t.Nest.Loops) == 0 || t.Nest.Loops[0].TotalOps*10 < rep.Best.Ops {
				continue
			}
			if sp, err := rep.EstimateSpeedup(t, polyprof.DefaultCostModel()); err == nil {
				fmt.Printf("estimated speedup (nest depth %d): %v\n", t.Nest.Depth(), sp)
			}
		}
	}
	fmt.Println()
	fmt.Println("dynamic schedule tree (hot paths):")
	fmt.Print(rep.Profile.Tree.Render(iiv.ProgramNamer(prog), rep.Profile.Tree.TotalOps()/50))
	of.finish()
	return nil
}

func cmdFlame(args []string) error {
	fs := flag.NewFlagSet("flame", flag.ExitOnError)
	out := fs.String("o", "", "output file (default <workload>.svg)")
	width := fs.Int("w", 1200, "SVG width")
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("flame: missing workload name")
	}
	prog, err := polyprof.Workload(name)
	if err != nil {
		return err
	}
	rep, err := polyprof.Profile(prog)
	if err != nil {
		return err
	}
	svg := rep.FlameGraph(*width, 18)
	path := *out
	if path == "" {
		path = name + ".svg"
	}
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(svg))
	return nil
}

func cmdStatic(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("static: missing workload name")
	}
	prog, err := polyprof.Workload(args[0])
	if err != nil {
		return err
	}
	res := polyprof.AnalyzeStatic(prog)
	fmt.Printf("%-26s %-8s %-8s %s\n", "function", "loops", "modeled", "failure reasons (RCBFAP)")
	for _, f := range prog.Funcs {
		fr := res.Funcs[f.ID]
		fmt.Printf("%-26s %-8v %-8v %v\n", f.Name, fr.HasLoops, fr.Modeled, fr.Reasons)
	}
	if spec := workloads.ByName(args[0]); spec != nil && len(spec.RegionFuncs) > 0 {
		fmt.Printf("\nregion %v: reasons %v (paper reported: %s)\n",
			spec.RegionFuncs, res.RegionReasons(prog, spec.RegionFuncs...), spec.PaperReasons)
	}
	return nil
}

func cmdDisasm(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("disasm: missing workload name")
	}
	prog, err := polyprof.Workload(args[0])
	if err != nil {
		return err
	}
	fmt.Print(prog.Disasm())
	return nil
}

func cmdDDG(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("ddg: missing workload name")
	}
	prog, err := polyprof.Workload(args[0])
	if err != nil {
		return err
	}
	rep, err := polyprof.Profile(prog)
	if err != nil {
		return err
	}
	if rep.Best == nil {
		return fmt.Errorf("no region of interest")
	}
	fmt.Print(rep.DomainReport(rep.Best, 0, -1))
	fmt.Println()
	fmt.Print(rep.DDGReport(rep.Best))
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the machine-readable report")
	of := addObsFlags(fs)
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("report: missing workload name")
	}
	of.jsonOut = *asJSON
	if err := of.start(); err != nil {
		return err
	}
	prog, err := polyprof.Workload(name)
	if err != nil {
		return err
	}
	rep, err := polyprof.Profile(prog)
	if err != nil {
		return err
	}
	if *asJSON {
		cm := polyprof.DefaultCostModel()
		data, err := rep.JSON(&cm)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		of.finish()
		return nil
	}
	fmt.Print(rep.Document(polyprof.DefaultCostModel()))
	of.finish()
	return nil
}

func cmdTable5(args []string) error {
	fs := flag.NewFlagSet("table5", flag.ExitOnError)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.start(); err != nil {
		return err
	}
	fmt.Println("running the Rodinia suite through the full pipeline (Experiment I+II)...")
	rows, err := polyprof.RunSuite()
	if err != nil {
		return err
	}
	fmt.Print(polyprof.RenderTable5(rows))
	fmt.Println("\nExperiment II (static baseline): per-benchmark failure reasons vs. the paper")
	fmt.Printf("%-16s %-10s %-10s %s\n", "benchmark", "ours", "paper", "whole region modeled?")
	for _, r := range rows {
		fmt.Printf("%-16s %-10s %-10s %v\n", r.Row.Name, r.Row.PollyReasons, r.Row.PaperReasons, r.Row.PollyModeled)
	}
	of.finish()
	return nil
}

// cmdOverhead measures the cost of the profiling pipeline itself, per
// stage, for one workload or the whole Rodinia suite (the shape of the
// paper's Experiment I).
func cmdOverhead(args []string) error {
	fs := flag.NewFlagSet("overhead", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit machine-readable stage costs")
	name, err := parseWorkload(fs, args)
	if err != nil {
		return err
	}
	if name == "" {
		name = "all"
	}
	emit := func(rs []*evaluation.OverheadReport, render func() string) error {
		if *asJSON {
			data, err := evaluation.OverheadJSON(rs)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			return nil
		}
		fmt.Print(render())
		return nil
	}
	if name == "all" {
		fmt.Fprintln(os.Stderr, "measuring per-stage profiling cost across the Rodinia suite...")
		rs, err := evaluation.OverheadSuite()
		if err != nil {
			return err
		}
		return emit(rs, func() string { return evaluation.RenderOverheadSuite(rs) })
	}
	spec := workloads.ByName(name)
	if spec == nil {
		return fmt.Errorf("unknown workload %q", name)
	}
	r, err := evaluation.Overhead(*spec)
	if err != nil {
		return err
	}
	return emit([]*evaluation.OverheadReport{r}, func() string { return evaluation.RenderOverhead(r) })
}

func cmdCaseStudy(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("casestudy: want backprop or gemsfdtd")
	}
	name := args[0]
	spec := workloads.ByName(name)
	if spec == nil {
		return fmt.Errorf("unknown workload %q", name)
	}
	res, rows, err := evaluation.CaseStudy(*spec, 0.05)
	if err != nil {
		return err
	}
	title := "case study"
	switch name {
	case "backprop":
		title = "Case study I (paper Table 3): backprop"
	case "gemsfdtd":
		title = "Case study II (paper Table 4): GemsFDTD"
	}
	fmt.Println(title)
	if res.Report.Best != nil {
		fmt.Printf("region: %s (%.0f%% of ops)\n\n", res.Report.Best.CodeRef, 100*res.Report.Best.PctOps)
	}
	for _, row := range rows {
		par := make([]string, len(row.Parallel))
		for i, p := range row.Parallel {
			par[i] = map[bool]string{true: "yes", false: "no"}[p]
		}
		st := make([]string, len(row.Stride01))
		for i, s := range row.Stride01 {
			st[i] = fmt.Sprintf("%.0f%%", 100*s)
		}
		fmt.Printf("nest %s: %.0f%% ops\n", row.Region, 100*row.PctOps)
		fmt.Printf("  transform:  %s\n", row.Transform)
		fmt.Printf("  parallel:   (%s)  permutable: %v  tile: %dD  stride01: (%s)\n",
			strings.Join(par, ","), row.Permutable, row.TileD, strings.Join(st, ","))
		fmt.Printf("  speedup:    %s\n\n", row.SpeedupNote)
	}
	return nil
}
