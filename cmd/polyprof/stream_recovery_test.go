package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"polyprof/internal/jobstore"
)

// submitProgram posts an isa-JSON program as a job and returns its ID.
func submitProgram(t *testing.T, base, query string, body []byte) string {
	t.Helper()
	url := base + "/v1/jobs"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %q = %d: %s", query, resp.StatusCode, data)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	return sum.ID
}

// waitTerminal polls until the job reaches a terminal state and
// returns it with its lifecycle trace.
func waitTerminal(t *testing.T, base, id string, timeout time.Duration) *jobstore.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := getJobTrace(t, base, id)
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// captureStream subscribes to the job's SSE stream and appends every
// provisional report to <dataDir>/stream-provisionals.jsonl — the
// artifact CI uploads when this test fails.  Best-effort by design:
// the daemon is about to be SIGKILLed mid-stream, so read errors are
// expected and swallowed.
func captureStream(base, id, dataDir string) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "?stream=1")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	f, err := os.OpenFile(filepath.Join(dataDir, "stream-provisionals.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			fmt.Fprintln(f, strings.TrimPrefix(line, "data: "))
		}
	}
}

// TestStreamingKillMinusNineResumes is the streaming tier's durability
// proof at the process level: a real daemon is SIGKILLed while a
// streaming job is mid-trace with committed epoch checkpoints,
// restarted on the same -data-dir, and the recovered attempt must
// resume past event zero (from the last committed epoch, per the
// checkpoint-resume trace event) and finish with a report
// byte-identical to a buffered run of the same program.
//
// Set POLYPROF_STREAM_DATA_DIR to pin the data directory (CI uploads
// it — WAL, checkpoints, and captured provisional reports — when the
// test fails).
func TestStreamingKillMinusNineResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real daemon; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "polyprof")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := os.Getenv("POLYPROF_STREAM_DATA_DIR")
	if dataDir == "" {
		dataDir = filepath.Join(t.TempDir(), "data")
	}

	proc, base := startServe(t, bin, dataDir)

	// ~40M VM steps on a 2M-event epoch grid: enough epochs that at
	// least one checkpoint commits quickly, enough trace left after it
	// that the SIGKILL lands mid-stream.
	prog := slowLoopProgram(8_000_000)
	id := submitProgram(t, base, "epoch-events=2000000", prog)
	go captureStream(base, id, dataDir)

	// Wait for a committed epoch: the checkpoint trace event is
	// observable over HTTP only after the fsynced ckpt WAL record, so
	// seeing it guarantees the restart will have an epoch to resume
	// from.
	committed := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j := getJobTrace(t, base, id)
		for _, ev := range j.Trace {
			if ev.Event == jobstore.TraceCheckpoint {
				committed = true
			}
		}
		if committed {
			break
		}
		if j.State.Terminal() {
			t.Fatalf("job finished before the kill (state %s); loop too fast for the epoch grid", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !committed {
		t.Fatal("no epoch checkpoint committed before the kill window")
	}

	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	proc2, base2 := startServe(t, bin, dataDir)
	defer func() {
		proc2.Process.Signal(syscall.SIGKILL)
		proc2.Wait()
	}()

	j := waitTerminal(t, base2, id, 120*time.Second)
	if j.State != jobstore.StateSucceeded {
		t.Fatalf("recovered streaming job = %s: %+v", j.State, j.Error)
	}
	if j.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (the SIGKILL must have cost attempt 1)", j.Attempts)
	}

	// The recovered attempt started past event zero: it logged a
	// checkpoint-resume from an epoch >= 1 committed by the dead
	// attempt.
	var resume *jobstore.TraceEvent
	for i, ev := range j.Trace {
		if ev.Event == jobstore.TraceResume {
			resume = &j.Trace[i]
		}
	}
	if resume == nil {
		var evs []string
		for _, ev := range j.Trace {
			evs = append(evs, ev.Event)
		}
		t.Fatalf("recovered attempt restarted from event zero: no %s in trace %v", jobstore.TraceResume, evs)
	}
	if !strings.Contains(resume.Detail, "resumed from committed epoch") ||
		strings.Contains(resume.Detail, "epoch 0 ") {
		t.Fatalf("resume detail = %q, want a resume from a committed epoch >= 1", resume.Detail)
	}

	// The resumed streamed report is byte-identical to a buffered run
	// of the same program on the restarted daemon.
	buffered := waitTerminal(t, base2, submitProgram(t, base2, "", prog), 120*time.Second)
	if buffered.State != jobstore.StateSucceeded {
		t.Fatalf("buffered reference = %s: %+v", buffered.State, buffered.Error)
	}
	if len(j.Result.Report) == 0 || !bytes.Equal(j.Result.Report, buffered.Result.Report) {
		t.Fatal("resumed streamed report differs from the buffered reference")
	}
	if t.Failed() {
		fmt.Printf("data dir kept for inspection: %s\n", dataDir)
	}
}
