package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"polyprof/internal/jobstore"
	"polyprof/internal/obs/flight"
)

// slowLoopProgram is a user-submitted program whose main loop runs long
// enough (hundreds of millions of VM steps) that the test can reliably
// SIGKILL the daemon while the job is inside pass1-structure.
func slowLoopProgram(iters int) []byte {
	return []byte(fmt.Sprintf(`{
	 "name": "slow-loop", "main": 0, "mem_words": 64,
	 "globals": {"a": {"base": 0, "size": 64}},
	 "funcs": [{"name": "main", "entry": 0, "blocks": [0, 1, 2], "num_args": 0, "num_regs": 8}],
	 "blocks": [
	  {"fn": 0, "name": "entry", "code": [
	    {"op": "consti", "dst": 0, "imm": 0},
	    {"op": "jmp", "then": 1}]},
	  {"fn": 0, "name": "loop", "code": [
	    {"op": "consti", "dst": 1, "imm": 1},
	    {"op": "add", "dst": 0, "a": 0, "b": 1},
	    {"op": "consti", "dst": 2, "imm": %d},
	    {"op": "cmplt", "dst": 3, "a": 0, "b": 2},
	    {"op": "br", "a": 3, "then": 1, "else": 2}]},
	  {"fn": 0, "name": "exit", "code": [{"op": "halt"}]}
	 ]
	}`, iters))
}

// getJobTrace fetches a job with its persisted lifecycle trace.
func getJobTrace(t *testing.T, base, id string) *jobstore.Job {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s?trace=1 = %d: %s", id, resp.StatusCode, body)
	}
	var j jobstore.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("job %s does not parse: %v", id, err)
	}
	return &j
}

// TestKillMinusNineWritesFlightBundle is the flight recorder's
// end-to-end proof: SIGKILL a real daemon while a job attempt is inside
// a pipeline stage, restart on the same -data-dir, and the restarted
// daemon must write a crash-recovery flight bundle that names the
// interrupted stage — and the job's persisted lifecycle trace must
// carry the crash marker.  The bundle is then rendered through the
// `polyprof flight` CLI the way an operator would read it.
//
// Set POLYPROF_FLIGHT_DATA_DIR to pin the data directory (CI uploads
// it as an artifact when the test fails).
func TestKillMinusNineWritesFlightBundle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real daemon; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "polyprof")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := os.Getenv("POLYPROF_FLIGHT_DATA_DIR")
	if dataDir == "" {
		dataDir = filepath.Join(t.TempDir(), "data")
	}

	proc, base := startServe(t, bin, dataDir)

	// ~400M VM steps: long enough to catch mid-stage on any machine,
	// under the 500M default step ceiling so the re-run can finish.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader(slowLoopProgram(80_000_000)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}

	// Wait until the attempt is demonstrably inside a stage: the stage
	// record rides the unsynced WAL, so once we have observed it over
	// HTTP it is in the OS page cache and survives SIGKILL.
	var stage string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j := getJobTrace(t, base, sum.ID)
		if j.State == jobstore.StateRunning {
			if st := j.InterruptedStage(); st != "" {
				stage = st
				break
			}
		}
		if j.State.Terminal() {
			t.Fatalf("job finished before the kill (state %s); slow-loop too fast", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stage == "" {
		t.Fatal("job never reached a pipeline stage")
	}

	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	proc2, base2 := startServe(t, bin, dataDir)
	defer func() {
		proc2.Process.Signal(syscall.SIGKILL)
		proc2.Wait()
	}()

	// The restarted daemon wrote the crash-recovery bundle during
	// startup recovery, before it began listening.
	resp, err = http.Get(base2 + "/v1/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/flight = %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Bundles []flight.BundleInfo `json:"bundles"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("flight list does not parse: %v: %s", err, body)
	}
	var info *flight.BundleInfo
	for i := range list.Bundles {
		if list.Bundles[i].Reason == "crash-recovery" {
			info = &list.Bundles[i]
			break
		}
	}
	if info == nil {
		t.Fatalf("no crash-recovery bundle after restart: %+v", list.Bundles)
	}

	// The bundle is self-contained and names the interrupted stage.
	resp, err = http.Get(base2 + "/v1/flight/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/flight/%s = %d", info.ID, resp.StatusCode)
	}
	var b flight.Bundle
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if b.Reason != "crash-recovery" || b.Job != sum.ID {
		t.Fatalf("bundle header = reason %q job %q, want crash-recovery for %s", b.Reason, b.Job, sum.ID)
	}
	if b.Stage != stage {
		t.Fatalf("bundle stage = %q, want interrupted stage %q", b.Stage, stage)
	}
	if len(b.Extra) == 0 || !strings.Contains(string(b.Extra), "crash-recovered") {
		t.Fatalf("bundle extra lacks the job lifecycle trace: %s", b.Extra)
	}

	// The job's persisted lifecycle trace carries the crash marker (the
	// re-leased attempt has already appended past it, so scan).
	j := getJobTrace(t, base2, sum.ID)
	var evs []string
	marked := false
	for _, ev := range j.Trace {
		evs = append(evs, ev.Event)
		if ev.Event == jobstore.TraceCrashRecovered {
			marked = true
		}
	}
	if !marked {
		t.Fatalf("job trace lost the crash-recovered marker: %v", evs)
	}

	// An operator reads the same incident through the CLI.
	out, err := exec.Command(bin, "flight", "list", "-data-dir", dataDir).CombinedOutput()
	if err != nil || !strings.Contains(string(out), info.ID) {
		t.Fatalf("flight list (%v):\n%s", err, out)
	}
	out, err = exec.Command(bin, "flight", "show", info.ID, "-data-dir", dataDir).CombinedOutput()
	if err != nil {
		t.Fatalf("flight show: %v\n%s", err, out)
	}
	for _, want := range []string{"crash-recovery", stage, sum.ID} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("flight show output missing %q:\n%s", want, out)
		}
	}

	// Triaged: the operator prunes everything with flight gc.
	out, err = exec.Command(bin, "flight", "gc", "-data-dir", dataDir, "-keep", "0").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "removed "+info.ID) {
		t.Fatalf("flight gc (%v):\n%s", err, out)
	}
	out, err = exec.Command(bin, "flight", "list", "-data-dir", dataDir).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "no flight bundles") {
		t.Fatalf("flight list after gc (%v):\n%s", err, out)
	}
	if t.Failed() {
		fmt.Printf("data dir kept for inspection: %s\n", dataDir)
	}
}
