package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polyprof/internal/jobapi"
	"polyprof/internal/jobexec"
	"polyprof/internal/serve"
)

// cmdWork runs a stateless remote worker: it claims jobs from a
// coordinator (`polyprof serve -data-dir ...`) over the lease
// protocol, executes them with the same attempt runner the coordinator
// uses locally, and reports results under its fencing token.  Workers
// hold no durable state — kill -9 one at any point and the coordinator
// reclaims its leases after the TTL and re-queues the jobs.
func cmdWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://localhost:7070", "coordinator base URL")
	slots := fs.Int("workers", 2, "concurrently leased attempts")
	name := fs.String("name", "", "worker name on claims (default <host>:<pid>)")
	leaseTTL := fs.Duration("lease-ttl", 0, "requested lease TTL, clamped by the coordinator (0 = coordinator default)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle sleep between claim attempts when the queue is empty")
	reqTimeout := fs.Duration("request-timeout", serve.DefaultRequestTimeout,
		"per-attempt wall-clock limit (negative disables)")
	bf := addBudgetFlags(fs)
	par := addParallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("work: missing -coordinator URL")
	}

	timeout := *reqTimeout
	if timeout < 0 {
		timeout = 0
	}
	w := jobapi.NewWorker(jobapi.WorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Slots:       *slots,
		LeaseTTL:    *leaseTTL,
		Poll:        *poll,
		Exec: jobexec.Options{
			Limits:      bf.limits(),
			Timeout:     timeout,
			ParallelDDG: resolveShards(*par),
		},
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "polyprof: worker %s claiming from %s with %d slot(s)\n",
		w.Name(), *coordinator, *slots)
	w.Run(ctx)
	fmt.Fprintln(os.Stderr, "polyprof: worker drained, bye")
	return nil
}
