package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"polyprof/internal/obs"
)

// TestProfileTraceFlag is the acceptance test for the -trace exporter:
// `polyprof profile example1 -trace out.json` must write a Chrome
// trace-event document with one complete event per pipeline stage.
func TestProfileTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")

	// The command prints the report to stdout; silence it for the test.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	err = cmdProfile([]string{"example1", "-trace", path})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatalf("cmdProfile: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file does not round-trip: %v", err)
	}
	complete := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete[ev.Name]++
		}
	}
	for _, stage := range []string{"pass1-structure", "pass2-ddg", "fold-finish", "sched-build", "feedback-analyze"} {
		if complete[stage] < 1 {
			t.Errorf("trace missing complete event for stage %q; got %v", stage, complete)
		}
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
}
