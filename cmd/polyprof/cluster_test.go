package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"polyprof/internal/jobstore"
)

// The multi-process chaos suite: a real coordinator process plus real
// `polyprof work` processes, with workers SIGKILLed mid-attempt,
// heartbeats partitioned until the lease reclaims, and the coordinator
// itself kill -9'd under live leases.  Every scenario must end in the
// bit-for-bit correct terminal state.
//
// Set POLYPROF_CLUSTER_DIR to pin the job-store directory (CI uses
// this to upload the WAL as an artifact when the suite fails).

var (
	clusterBuildOnce sync.Once
	clusterBin       string
	clusterBuildErr  error
)

func clusterBinary(t *testing.T) string {
	t.Helper()
	clusterBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "polyprof-cluster-bin")
		if err != nil {
			clusterBuildErr = err
			return
		}
		clusterBin = filepath.Join(dir, "polyprof")
		build := exec.Command("go", "build", "-o", clusterBin, ".")
		if out, err := build.CombinedOutput(); err != nil {
			clusterBuildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if clusterBuildErr != nil {
		t.Fatal(clusterBuildErr)
	}
	return clusterBin
}

func clusterDataDir(t *testing.T) string {
	t.Helper()
	if dir := os.Getenv("POLYPROF_CLUSTER_DIR"); dir != "" {
		sub := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return filepath.Join(t.TempDir(), "jobs")
}

// freePort reserves an ephemeral port and releases it for the child
// process.  The coordinator needs a FIXED address so workers can find
// it again after a kill -9 + restart.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startCoordinator launches `polyprof serve -workers 0`: a pure
// coordinator whose jobs only progress via the lease API.
func startCoordinator(t *testing.T, bin, dataDir, addr string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"serve", "-http", addr, "-data-dir", dataDir, "-workers", "0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("coord: %s", line)
			if i := strings.Index(line, "http://"); i >= 0 && strings.Contains(line, "serving profiles") {
				select {
				case urlCh <- strings.Fields(line[i:])[0]:
				default:
				}
			}
		}
	}()
	select {
	case url := <-urlCh:
		return cmd, url
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("coordinator never printed its listen address")
		return nil, ""
	}
}

// startWorker launches `polyprof work` against the coordinator.  The
// returned lines channel closes when the worker's stderr drains (i.e.
// the process died); faults inject via the POLYPROF_FAULT env.
func startWorker(t *testing.T, bin, coordinator, name string, slots int, faults string) (*exec.Cmd, <-chan string) {
	t.Helper()
	cmd := exec.Command(bin, "work",
		"-coordinator", coordinator,
		"-name", name,
		"-workers", fmt.Sprint(slots),
		"-poll", "50ms")
	cmd.Env = append(os.Environ(), "POLYPROF_FAULT="+faults)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 256)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("%s: %s", name, line)
			select {
			case lines <- line:
			default:
			}
		}
	}()
	return cmd, lines
}

func clusterSubmit(t *testing.T, base, query string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs?"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %q = %d: %s", query, resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	return sum.ID
}

func clusterJob(t *testing.T, base, id string) *jobstore.Job {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s = %d: %s", id, resp.StatusCode, body)
	}
	var j jobstore.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	return &j
}

// waitSucceeded polls until the job succeeds, tolerating a coordinator
// that is briefly down (restart scenarios).
func waitSucceeded(t *testing.T, base, id string, timeout time.Duration) *jobstore.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?trace=1")
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		var j jobstore.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		if j.State == jobstore.StateSucceeded {
			return &j
		}
		if j.State == jobstore.StateFailed {
			t.Fatalf("job %s failed: %+v", id, j.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never succeeded", id)
	return nil
}

// assertCleanCompletion checks the invariants every chaos scenario
// must uphold for a job: exactly one completion in the durable trace
// (no double-completion) and a report byte-identical to the reference.
func assertCleanCompletion(t *testing.T, j, ref *jobstore.Job) {
	t.Helper()
	if len(j.Result.Report) == 0 || string(j.Result.Report) != string(ref.Result.Report) {
		t.Errorf("job %s report differs from clean reference %s:\n%.200s\nvs\n%.200s",
			j.ID, ref.ID, j.Result.Report, ref.Result.Report)
	}
	completes := 0
	for _, ev := range j.Trace {
		if ev.Event == jobstore.TraceComplete {
			completes++
		}
	}
	if completes != 1 {
		t.Errorf("job %s completed %d times, want exactly 1", j.ID, completes)
	}
}

// TestClusterWorkerSIGKILL: kill -9 a worker mid-attempt.  The
// coordinator reclaims its lease after the TTL, a second worker picks
// the job up, and the terminal report is byte-identical to a clean run
// of the same workload.
func TestClusterWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos suite; skipped in -short")
	}
	bin := clusterBinary(t)
	dataDir := clusterDataDir(t)
	coord, base := startCoordinator(t, bin, dataDir, "127.0.0.1:0", "-lease-ttl", "500ms")
	defer func() {
		coord.Process.Signal(syscall.SIGTERM)
		coord.Wait()
	}()

	// Two copies of the same workload: whichever the doomed worker
	// grabs, the other is the clean reference.
	a := clusterSubmit(t, base, "workload=example1")
	b := clusterSubmit(t, base, "workload=example1&nocache=1")

	// Worker 1 runs attempts slowly (sticky delay) so the SIGKILL lands
	// mid-attempt with the lease live.
	w1, _ := startWorker(t, bin, base, "doomed", 1, "jobexec.attempt=delay:10s:-1")
	killed := false
	defer func() {
		if !killed {
			w1.Process.Kill()
			w1.Wait()
		}
	}()

	// Wait until it holds a lease (a job is running), then kill -9.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ja, jb := clusterJob(t, base, a), clusterJob(t, base, b); ja.State == jobstore.StateRunning || jb.State == jobstore.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never claimed a job")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := w1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	w1.Wait()
	killed = true

	// Worker 2 is healthy and finishes everything, including the job
	// the dead worker still nominally leased.
	w2, _ := startWorker(t, bin, base, "survivor", 2, "")
	defer func() {
		w2.Process.Signal(syscall.SIGTERM)
		w2.Wait()
	}()

	ja := waitSucceeded(t, base, a, 60*time.Second)
	jb := waitSucceeded(t, base, b, 60*time.Second)
	assertCleanCompletion(t, ja, jb)
	assertCleanCompletion(t, jb, ja)

	// One of the two was reclaimed from the dead worker.
	reclaims := 0
	for _, j := range []*jobstore.Job{ja, jb} {
		for _, ev := range j.Trace {
			if ev.Event == jobstore.TraceReclaim {
				reclaims++
			}
		}
	}
	if reclaims == 0 {
		t.Error("no lease-reclaimed event in either trace — the kill did not land mid-attempt")
	}
	if t.Failed() {
		fmt.Printf("job-store dir kept for inspection: %s\n", dataDir)
	}
}

// TestClusterHeartbeatPartition: a worker whose heartbeats never reach
// the coordinator loses its lease mid-attempt; its zombie result post
// is fenced (the worker logs it), a healthy worker completes the job,
// and the durable state shows exactly one completion.
func TestClusterHeartbeatPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos suite; skipped in -short")
	}
	bin := clusterBinary(t)
	dataDir := clusterDataDir(t)
	coord, base := startCoordinator(t, bin, dataDir, "127.0.0.1:0", "-lease-ttl", "300ms")
	defer func() {
		coord.Process.Signal(syscall.SIGTERM)
		coord.Wait()
	}()

	ref := clusterSubmit(t, base, "workload=example1")
	victim := clusterSubmit(t, base, "workload=example1&nocache=1")

	// The partitioned worker: attempts take 2s against a 300ms TTL, and
	// every heartbeat dies client-side — transport-shaped, sticky.
	wz, zlines := startWorker(t, bin, base, "zombie", 1,
		"jobexec.attempt=delay:2s:-1,jobapi.heartbeat=error:partition:-1")
	defer func() {
		wz.Process.Signal(syscall.SIGTERM)
		wz.Wait()
	}()
	// Let the zombie claim first so it is guaranteed to hold a lease
	// that the partition will kill.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if jr, jv := clusterJob(t, base, ref), clusterJob(t, base, victim); jr.State == jobstore.StateRunning || jv.State == jobstore.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("zombie worker never claimed a job")
		}
		time.Sleep(25 * time.Millisecond)
	}
	// The healthy worker completes whatever the zombie loses.
	wh, _ := startWorker(t, bin, base, "healthy", 2, "")
	defer func() {
		wh.Process.Signal(syscall.SIGTERM)
		wh.Wait()
	}()

	jr := waitSucceeded(t, base, ref, 60*time.Second)
	jv := waitSucceeded(t, base, victim, 60*time.Second)
	assertCleanCompletion(t, jr, jv)
	assertCleanCompletion(t, jv, jr)

	// The zombie must have actually been fenced at least once: either
	// its late result post or a post-reclaim heartbeat hit a 409.
	fenced := false
	drain := time.After(30 * time.Second)
	for !fenced {
		select {
		case line, ok := <-zlines:
			if !ok {
				t.Fatal("zombie worker exited without ever being fenced")
			}
			if strings.Contains(line, "fenced") {
				fenced = true
			}
		case <-drain:
			t.Fatal("zombie worker never reported a fenced call")
		}
	}
	if t.Failed() {
		fmt.Printf("job-store dir kept for inspection: %s\n", dataDir)
	}
}

// TestClusterCoordinatorKillRestart: kill -9 the coordinator while a
// worker holds a live lease.  The restarted coordinator (same WAL,
// same address) re-queues the leased job, fences the worker's stale
// token, and the surviving worker — which backed off while the
// coordinator was down — completes the job on a fresh lease.
func TestClusterCoordinatorKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos suite; skipped in -short")
	}
	bin := clusterBinary(t)
	dataDir := clusterDataDir(t)
	addr := freePort(t)

	coord1, base := startCoordinator(t, bin, dataDir, addr, "-lease-ttl", "60s")
	ref := clusterSubmit(t, base, "workload=example1")
	victim := clusterSubmit(t, base, "workload=example1&nocache=1")

	// Slow sticky attempts keep a lease live across the coordinator
	// kill; heartbeats are healthy so only the restart invalidates it.
	w, _ := startWorker(t, bin, base, "survivor", 2, "jobexec.attempt=delay:2s:-1")
	defer func() {
		w.Process.Signal(syscall.SIGTERM)
		w.Wait()
	}()

	// Wait for a live lease, then kill -9 the coordinator.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if jr, jv := clusterJob(t, base, ref), clusterJob(t, base, victim); jr.State == jobstore.StateRunning || jv.State == jobstore.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never claimed a job")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := coord1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	coord1.Wait()

	// Same WAL, same address: replay re-queues the leased jobs (their
	// leases died with the process — 60s TTL never gets a say).
	coord2, base2 := startCoordinator(t, bin, dataDir, addr, "-lease-ttl", "60s")
	defer func() {
		coord2.Process.Signal(syscall.SIGTERM)
		coord2.Wait()
	}()

	jr := waitSucceeded(t, base2, ref, 60*time.Second)
	jv := waitSucceeded(t, base2, victim, 60*time.Second)
	assertCleanCompletion(t, jr, jv)
	assertCleanCompletion(t, jv, jr)
	if t.Failed() {
		fmt.Printf("job-store dir kept for inspection: %s\n", dataDir)
	}
}
