package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"polyprof/internal/jobstore"
)

// startServe launches the built binary's serve command on an ephemeral
// port with the given job-store dir and returns the process plus the
// base URL parsed from its startup line.
func startServe(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-http", "127.0.0.1:0", "-data-dir", dataDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("serve: %s", line)
			if i := strings.Index(line, "http://"); i >= 0 && strings.Contains(line, "serving profiles") {
				addr := strings.Fields(line[i:])[0]
				select {
				case urlCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case url := <-urlCh:
		return cmd, url
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("serve never printed its listen address")
		return nil, ""
	}
}

func getJob(t *testing.T, base, id string) *jobstore.Job {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s = %d: %s", id, resp.StatusCode, body)
	}
	var j jobstore.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("job %s does not parse: %v", id, err)
	}
	return &j
}

// TestServeKillRestartRecovery is the end-to-end durability proof at
// the process level: a real daemon is SIGKILLed while jobs are in
// flight, restarted on the same -data-dir, and every job it had
// acknowledged must reach its correct terminal state — no acknowledged
// job lost, none double-completed, failures still terminal.
//
// Set POLYPROF_JOBSTORE_DIR to pin the job-store directory (CI uses
// this to upload the WAL as an artifact when the test fails).
func TestServeKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real daemon; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "polyprof")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := os.Getenv("POLYPROF_JOBSTORE_DIR")
	if dataDir == "" {
		dataDir = filepath.Join(t.TempDir(), "jobs")
	}

	proc, base := startServe(t, bin, dataDir)

	// Acknowledged submissions: every 202 is a durability promise.
	acked := map[string]string{} // id -> kind of submission
	submit := func(query string, body []byte, kind string) {
		t.Helper()
		url := base + "/v1/jobs"
		if query != "" {
			url += "?" + query
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d: %s", resp.StatusCode, data)
		}
		var sum jobstore.JobSummary
		if err := json.Unmarshal(data, &sum); err != nil {
			t.Fatal(err)
		}
		acked[sum.ID] = kind
	}
	// nocache=1: the test needs six independent in-flight jobs, not one
	// run plus five O(1) cache hits on its report.
	for i := 0; i < 6; i++ {
		submit("workload=example1&nocache=1", nil, "ok")
	}
	// A hostile body: acknowledged, then terminally failed — the failed
	// state must survive the crash too.
	submit("", []byte("this is not a program"), "hostile")

	// SIGKILL with jobs queued and running: no drain, no WAL close.
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	proc2, base2 := startServe(t, bin, dataDir)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()

	deadline := time.Now().Add(60 * time.Second)
	for id, kind := range acked {
		var j *jobstore.Job
		for time.Now().Before(deadline) {
			j = getJob(t, base2, id) // 404 here = an acknowledged job was lost
			if j.State.Terminal() {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		switch kind {
		case "ok":
			if j.State != jobstore.StateSucceeded || len(j.Result.Report) == 0 {
				t.Errorf("job %s after crash = state %s, want succeeded with report (%+v)", id, j.State, j.Error)
			}
		case "hostile":
			if j.State != jobstore.StateFailed || j.Error == nil || !j.Error.Terminal {
				t.Errorf("hostile job %s after crash = state %s error %+v, want terminal failure", id, j.State, j.Error)
			}
			// One terminal attempt, plus at most one the SIGKILL
			// interrupted (crash-interrupted attempts count toward the
			// quarantine limit by design).  More would mean the terminal
			// error was retried.
			if j.Attempts > 2 {
				t.Errorf("hostile job %s retried after terminal failure: attempts = %d", id, j.Attempts)
			}
		}
	}

	// No double-completion and no phantom successes: every listed job is
	// internally consistent and every acknowledged one is present
	// exactly once.
	resp, err := http.Get(base2 + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list struct {
		Jobs []jobstore.JobSummary `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list does not parse: %v: %s", err, body)
	}
	seen := map[string]int{}
	for _, sum := range list.Jobs {
		seen[sum.ID]++
		if sum.State == jobstore.StateSucceeded && sum.Attempts == 0 {
			t.Errorf("job %s succeeded with zero attempts", sum.ID)
		}
	}
	for id := range acked {
		if n := seen[id]; n != 1 {
			t.Errorf("acknowledged job %s appears %d times in the list", id, n)
		}
	}
	if t.Failed() {
		fmt.Printf("job-store dir kept for inspection: %s\n", dataDir)
	}
}
