package polyprof_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"polyprof"
	"polyprof/internal/fold"
)

// reportJSON profiles a workload with the given shard count (0 =
// sequential) and renders the full report JSON.
func reportJSON(t *testing.T, name string, shards int) []byte {
	t.Helper()
	prog, err := polyprof.Workload(name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := polyprof.ProfileWith(context.Background(), prog, polyprof.ProfileOptions{ParallelDDG: shards})
	if err != nil {
		t.Fatalf("%s shards=%d: %v", name, shards, err)
	}
	cm := polyprof.DefaultCostModel()
	data, err := rep.JSON(&cm)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// fastWorkloads get the full {1, 2, 8} shard matrix in every mode;
// the remaining workloads run it only in exhaustive mode (see below)
// to keep the default `go test ./...` within its timeout.
var fastWorkloads = map[string]bool{
	"backprop": true,
	"bfs":      true,
	"hotspot":  true,
	"lud":      true,
	"example1": true,
	"example2": true,
}

// shardMatrix returns the shard counts to verify for one workload.
// Every workload is verified at 8 shards — the acceptance
// configuration — in every mode; the full below/at/above-core-count
// matrix {1, 2, 8} runs for the fast subset by default and for every
// workload when POLYPROF_PARDDG_EXHAUSTIVE=1 (the dedicated CI leg,
// which raises the test timeout accordingly).
func shardMatrix(name string) []int {
	if os.Getenv("POLYPROF_PARDDG_EXHAUSTIVE") != "" || fastWorkloads[name] {
		return []int{1, 2, 8}
	}
	return []int{8}
}

// TestParallelDDGEquivalence: for every bundled workload, the sharded
// engine's report is byte-for-byte identical to the sequential one.
// Folder ownership assertions run throughout, so any stream touched by
// two goroutines fails loudly rather than silently folding wrong.
func TestParallelDDGEquivalence(t *testing.T) {
	defer fold.SetOwnershipChecks(fold.SetOwnershipChecks(true))
	names := polyprof.Workloads()
	if testing.Short() {
		names = []string{"backprop", "hotspot", "example1"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			want := reportJSON(t, name, 0)
			for _, n := range shardMatrix(name) {
				got := reportJSON(t, name, n)
				if !bytes.Equal(want, got) {
					t.Errorf("shards=%d: report differs from sequential (%d vs %d bytes)", n, len(got), len(want))
					for i := 0; i < len(want) && i < len(got); i++ {
						if want[i] != got[i] {
							lo := i - 120
							if lo < 0 {
								lo = 0
							}
							hi := i + 120
							if hi > len(want) {
								hi = len(want)
							}
							if hi > len(got) {
								hi = len(got)
							}
							t.Fatalf("first difference at byte %d:\nseq: %s\npar: %s", i, want[lo:hi], got[lo:hi])
						}
					}
					t.FailNow()
				}
			}
		})
	}
}

// TestParallelDDGEquivalenceStress re-runs one workload repeatedly at
// a high shard count; any scheduling-dependent divergence (a stream
// with two owners, a non-barriered slot read) shows up as flaky
// inequality here and as a race under -race.
func TestParallelDDGEquivalenceStress(t *testing.T) {
	defer fold.SetOwnershipChecks(fold.SetOwnershipChecks(true))
	want := reportJSON(t, "backprop", 0)
	iters := 10
	if testing.Short() {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		if got := reportJSON(t, "backprop", 8); !bytes.Equal(want, got) {
			t.Fatalf("iteration %d: parallel report diverged", i)
		}
	}
}

func ExampleProfileWith() {
	prog, err := polyprof.Workload("example1")
	if err != nil {
		panic(err)
	}
	rep, err := polyprof.ProfileWith(context.Background(), prog, polyprof.ProfileOptions{ParallelDDG: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(rep.Regions) > 0)
	// Output: true
}
