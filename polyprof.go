// Package polyprof is a reproduction of POLY-PROF, the data-flow /
// dependence profiling infrastructure for structured transformation
// feedback of Gruber et al. (PPoPP 2019, doi 10.1145/3293883.3295737).
//
// The library profiles programs written for a small binary-like virtual
// ISA (the substitute for the paper's QEMU-instrumented x86 binaries),
// recovers their interprocedural control structure dynamically, tags
// every dynamic instruction with a dynamic interprocedural iteration
// vector, folds the resulting dependence streams into a compact
// polyhedral program, and reports structured-transformation feedback:
// parallel and permutable loop dimensions, interchange / skewing /
// tiling / fusion suggestions, stride and reuse statistics, annotated
// flame graphs, and replay-based speedup estimates.
//
// Quick start:
//
//	pb := polyprof.NewProgram("saxpy")
//	x := pb.Global("x", 1024)
//	y := pb.Global("y", 1024)
//	f := pb.Func("main", 0)
//	a := f.FConst(2.0)
//	xB, yB := f.IConst(x.Base), f.IConst(y.Base)
//	f.Loop("L", f.IConst(0), f.IConst(1024), 1, func(i polyprof.Reg) {
//		v := f.FAdd(f.FMul(a, f.FLoadIdx(xB, i, 0)), f.FLoadIdx(yB, i, 0))
//		f.FStoreIdx(yB, i, 0, v)
//	})
//	f.Halt()
//	pb.SetMain(f)
//
//	report, err := polyprof.Profile(pb.MustBuild())
//	if err != nil { ... }
//	fmt.Print(report.Summary())
package polyprof

import (
	"context"
	"fmt"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/evaluation"
	"polyprof/internal/feedback"
	"polyprof/internal/iiv"
	"polyprof/internal/isa"
	"polyprof/internal/loopevents"
	"polyprof/internal/staticpoly"
	"polyprof/internal/transform"
	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// Re-exported program construction types: see the builder methods on
// ProgramBuilder and FuncBuilder for the full construction API.
type (
	// Program is an executable image for the polyprof virtual ISA.
	Program = isa.Program
	// ProgramBuilder assembles a Program.
	ProgramBuilder = isa.ProgramBuilder
	// FuncBuilder emits code into one function.
	FuncBuilder = isa.FuncBuilder
	// Reg names a virtual register.
	Reg = isa.Reg
	// Global describes a named memory region.
	Global = isa.Global

	// ExecutionProfile is the raw result of the two instrumented runs:
	// control structure, dynamic schedule tree, and folded DDG.
	ExecutionProfile = core.Profile
	// Report is the analyzed feedback (regions, metrics, transformations,
	// flame graph, speedup estimation).
	Report = feedback.Report
	// Region is one reported region of interest.
	Region = feedback.Region
	// Metrics are the per-region Table 5 statistics.
	Metrics = feedback.Metrics
	// CostModel parameterizes speedup estimation.
	CostModel = feedback.CostModel

	// StaticResult is the verdict of the Polly-like static baseline.
	StaticResult = staticpoly.Result

	// WorkloadSpec describes one bundled benchmark twin.
	WorkloadSpec = workloads.Spec

	// BenchResult bundles profile + report + static baseline + Table 5
	// row for one workload.
	BenchResult = evaluation.BenchResult

	// BudgetLimits are per-run resource limits (zero fields unlimited):
	// wall clock, VM steps, and trace events are hard limits that abort
	// with a *BudgetError; shadow bytes and DDG edges are degrading
	// limits that coarsen the dependence graph instead of failing.
	BudgetLimits = budget.Limits
	// BudgetError reports which resource a run exhausted, at which
	// stage; extract it from a pipeline error with errors.As.
	BudgetError = budget.Error

	// Epoch is one streaming epoch boundary: ordinal, event count,
	// provisional report state, and (sequential, non-degraded runs) a
	// serialized checkpoint.
	Epoch = core.Epoch
	// Checkpoint is the decoded pass-2 state of one epoch boundary; a
	// resumed run restores from it instead of replaying pass 2 from
	// event zero.
	Checkpoint = core.Checkpoint

	// OptimizeReport is the schedule-application engine's result: per
	// static nest, the attempted interchange/tiling variants with their
	// legality verdicts, output-equality verification, and measured
	// speedups under the VM cycle/cache model.
	OptimizeReport = transform.Report
	// OptimizeVariant is one attempted transformation of one nest.
	OptimizeVariant = transform.Variant
)

// NewProgram starts building a program.
func NewProgram(name string) *ProgramBuilder { return isa.NewProgram(name) }

// Profile runs the full POLY-PROF pipeline on a program: two
// instrumented executions, DDG folding, scheduling analysis, and
// feedback extraction.
func Profile(prog *Program) (*Report, error) {
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		return nil, err
	}
	return feedback.AnalyzeChecked(p)
}

// ProfileCtx is Profile under resource governance: the run aborts with
// a *BudgetError when ctx is canceled, its deadline (or limits.Wall)
// passes, or a hard step/event limit trips, and degrades — coarsening
// the DDG, still sound in the may-only-add-dependences direction —
// when a shadow-memory or edge limit trips.  A degraded run reports
// Degraded/Degradation in its JSON form.
func ProfileCtx(ctx context.Context, prog *Program, limits BudgetLimits) (*Report, error) {
	opts := core.DefaultRunOptions()
	opts.Budget = budget.New(ctx, limits)
	p, err := core.Run(prog, opts)
	if err != nil {
		return nil, err
	}
	return feedback.AnalyzeChecked(p)
}

// ProfileOptions tunes a governed profiling run beyond ProfileCtx.
type ProfileOptions struct {
	// Limits are the run's resource limits (zero fields unlimited).
	Limits BudgetLimits
	// ParallelDDG selects the sharded parallel dependence engine with
	// that many shard workers; 0 keeps the sequential builder.  The
	// parallel engine's report is bit-for-bit identical to the
	// sequential one on non-degraded runs.
	ParallelDDG int
	// EpochEvents, when positive, runs the pipeline in streaming mode:
	// pass 2 pauses every EpochEvents dynamic instructions, folds the
	// state seen so far, and (with OnEpoch set) emits a provisional
	// report plus a resume checkpoint.  The final report is
	// byte-identical to a buffered run.  With a shadow-memory limit set,
	// streaming also bounds memory: stale shadow records are folded and
	// released at every boundary.
	EpochEvents uint64
	// OnEpoch receives every epoch boundary; a non-nil error aborts the
	// run.
	OnEpoch func(*Epoch) error
	// Resume restarts pass 2 from a decoded checkpoint (see
	// DecodeCheckpoint) instead of event zero.  It forces the
	// sequential dependence engine.
	Resume *Checkpoint
}

// DecodeCheckpoint parses a checkpoint serialized by a streaming run
// (Epoch.Checkpoint).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	return core.DecodeCheckpoint(data)
}

// ProfileWith is ProfileCtx with engine selection: it runs the
// pipeline under resource governance and, when opts.ParallelDDG > 0,
// tracks dependences with the sharded parallel engine.
func ProfileWith(ctx context.Context, prog *Program, popts ProfileOptions) (*Report, error) {
	opts := core.DefaultRunOptions()
	opts.Budget = budget.New(ctx, popts.Limits)
	opts.ParallelDDG = popts.ParallelDDG
	opts.EpochEvents = popts.EpochEvents
	opts.OnEpoch = popts.OnEpoch
	opts.Resume = popts.Resume
	p, err := core.Run(prog, opts)
	if err != nil {
		return nil, err
	}
	return feedback.AnalyzeChecked(p)
}

// OptimizeWith closes the profile-guided-optimization loop on a
// program: run the profiling pipeline under popts, then hand the
// suggested schedules to the transform engine, which applies them
// (loop interchange and rectangular tiling on perfectly nested
// bands), checks legality against the folded DDG, verifies
// bit-identical outputs, and measures the cycle/cache-model speedup
// of every surviving variant.  tileSize <= 0 selects the default tile
// edge.  The profiling Report is returned alongside the optimize
// report; measurement re-executions charge the same budget as the
// profiled run, and degraded runs refuse all transformations.
func OptimizeWith(ctx context.Context, prog *Program, popts ProfileOptions, tileSize int) (*Report, *OptimizeReport, error) {
	opts := core.DefaultRunOptions()
	bud := budget.New(ctx, popts.Limits)
	opts.Budget = bud
	opts.ParallelDDG = popts.ParallelDDG
	p, err := core.Run(prog, opts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := feedback.AnalyzeChecked(p)
	if err != nil {
		return nil, nil, err
	}
	opt, err := transform.Optimize(p, rep.Model, rep.AllTransforms(), transform.Options{
		TileSize: tileSize,
		Budget:   bud,
	})
	return rep, opt, err
}

// ProfileExecution runs only the profiling stages (no feedback),
// returning the raw folded artifacts.
func ProfileExecution(prog *Program) (*ExecutionProfile, error) {
	return core.Run(prog, core.DefaultRunOptions())
}

// Workloads lists the names of every bundled workload twin.
func Workloads() []string { return workloads.Names() }

// AnalyzeStatic runs the Polly-like static affine-region baseline.
func AnalyzeStatic(prog *Program) *StaticResult { return staticpoly.Analyze(prog) }

// DefaultCostModel returns the replay cost model mirroring the paper's
// testbed (12 cores, SSE-width vectors, 32 KiB L1).
func DefaultCostModel() CostModel { return feedback.DefaultCostModel() }

// Rodinia returns the 19 bundled Rodinia 3.1 benchmark twins in the
// paper's Table 5 order.
func Rodinia() []WorkloadSpec { return workloads.Rodinia() }

// Workload builds a bundled workload by name ("backprop", "bfs", ...,
// "gemsfdtd", "example1", "example2").
func Workload(name string) (*Program, error) {
	spec := workloads.ByName(name)
	if spec == nil {
		return nil, fmt.Errorf("polyprof: unknown workload %q", name)
	}
	return spec.Build(), nil
}

// RunBenchmark profiles one bundled workload end-to-end, including the
// static baseline and the Table 5 row.
func RunBenchmark(name string) (*BenchResult, error) {
	spec := workloads.ByName(name)
	if spec == nil {
		return nil, fmt.Errorf("polyprof: unknown workload %q", name)
	}
	return evaluation.RunWorkload(*spec)
}

// RunSuite profiles the whole Rodinia suite (the paper's Experiment I
// and II) and returns per-benchmark results.
func RunSuite() ([]*BenchResult, error) { return evaluation.RunRodinia() }

// RenderTable5 prints suite results in the layout of the paper's
// Table 5.
func RenderTable5(rows []*BenchResult) string { return evaluation.RenderTable5(rows) }

// TraceTable re-executes the program and renders its loop-event stream
// with the evolving dynamic interprocedural iteration vector — the
// paper's Fig. 3(d)/(i) trace tables.
func TraceTable(prog *Program) string {
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		return "error: " + err.Error()
	}
	p2 := core.NewPass2(prog, st, nil)
	var events []loopevents.Event
	p2.Events = &events
	if err := vm.New(prog, p2).Run(); err != nil {
		return "error: " + err.Error()
	}
	return iiv.TraceTable(events, iiv.ProgramNamer(prog))
}

// RenderScheduleTree prints the dynamic schedule tree of a profiled
// execution (heaviest paths first), hiding nodes below minOps dynamic
// operations.
func RenderScheduleTree(p *ExecutionProfile, minOps uint64) string {
	return p.Tree.Render(iiv.ProgramNamer(p.Prog), minOps)
}
