module polyprof

go 1.22
