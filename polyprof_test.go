package polyprof_test

import (
	"strings"
	"testing"

	"polyprof"
)

// TestPublicAPIQuickstart exercises the documented public surface: build
// a program with the builder, profile it, read the feedback.
func TestPublicAPIQuickstart(t *testing.T) {
	pb := polyprof.NewProgram("api-demo")
	x := pb.Global("x", 256)
	y := pb.Global("y", 256)
	f := pb.Func("main", 0)
	a := f.FConst(2.0)
	xB, yB := f.IConst(x.Base), f.IConst(y.Base)
	f.Loop("L", f.IConst(0), f.IConst(256), 1, func(i polyprof.Reg) {
		v := f.FAdd(f.FMul(a, f.FLoadIdx(xB, i, 0)), f.FLoadIdx(yB, i, 0))
		f.FStoreIdx(yB, i, 0, v)
	})
	f.Halt()
	pb.SetMain(f)

	prog := pb.MustBuild()
	report, err := polyprof.Profile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil {
		t.Fatal("saxpy must yield a region of interest")
	}
	found := false
	for _, tr := range report.Best.Transforms {
		if tr.Nest.Depth() == 1 && tr.Parallel[0] && tr.SIMD {
			found = true
		}
	}
	if !found {
		t.Error("saxpy's loop must be parallel and SIMDizable")
	}
	if s := report.Summary(); !strings.Contains(s, "api-demo") {
		t.Errorf("summary missing program name: %s", s)
	}
	if svg := report.FlameGraph(800, 16); !strings.Contains(svg, "<svg") {
		t.Error("flame graph not SVG")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if len(polyprof.Rodinia()) != 19 {
		t.Fatalf("Rodinia() returned %d specs, want 19", len(polyprof.Rodinia()))
	}
	if _, err := polyprof.Workload("no-such"); err == nil {
		t.Error("unknown workload must error")
	}
	prog, err := polyprof.Workload("example1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := polyprof.ProfileExecution(prog)
	if err != nil {
		t.Fatal(err)
	}
	if p.DDG.TotalOps == 0 {
		t.Error("profile collected nothing")
	}
	if out := polyprof.RenderScheduleTree(p, 0); !strings.Contains(out, "iters=") {
		t.Errorf("schedule tree rendering malformed:\n%s", out)
	}
}

func TestPublicAPIStaticBaseline(t *testing.T) {
	prog, err := polyprof.Workload("backprop")
	if err != nil {
		t.Fatal(err)
	}
	res := polyprof.AnalyzeStatic(prog)
	lf := prog.FuncByName("bpnn_layerforward")
	fr := res.Funcs[lf.ID]
	if fr.Modeled {
		t.Error("static baseline must fail on the pointer-based kernel")
	}
	if got := fr.Reasons.String(); got != "A" {
		t.Errorf("reasons = %s, want A (the paper's backprop row)", got)
	}
}

func TestPublicAPIRunBenchmark(t *testing.T) {
	r, err := polyprof.RunBenchmark("pathfinder")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Row.HasTransform || r.Row.PollyModeled {
		t.Errorf("pathfinder row wrong: %+v", r.Row)
	}
	if out := polyprof.RenderTable5([]*polyprof.BenchResult{r}); !strings.Contains(out, "pathfinder") {
		t.Error("table rendering lost the row")
	}
}
