package flight

import (
	"fmt"
	"strings"
	"time"

	"polyprof/internal/obs"
)

// RenderList formats bundle infos as the `polyprof flight list` table.
func RenderList(infos []BundleInfo) string {
	if len(infos) == 0 {
		return "no flight bundles\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %-20s %-19s %7s %9s\n", "id", "reason", "at", "events", "bytes")
	for _, in := range infos {
		fmt.Fprintf(&sb, "%-42s %-20s %-19s %7d %9d\n",
			in.ID, in.Reason, in.At.Format("2006-01-02 15:04:05"), in.Events, in.Bytes)
		if in.Detail != "" {
			fmt.Fprintf(&sb, "    %s\n", in.Detail)
		}
	}
	return sb.String()
}

// Render formats a bundle as a human-readable incident report: header,
// event timeline with offsets relative to the trigger instant
// (negative = before the anomaly), headline metrics, and runtime
// state.  This is the `polyprof flight show` output.
func Render(b *Bundle) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "flight bundle %s\n", b.ID)
	fmt.Fprintf(&sb, "  reason:  %s\n", b.Reason)
	if b.Detail != "" {
		fmt.Fprintf(&sb, "  detail:  %s\n", b.Detail)
	}
	fmt.Fprintf(&sb, "  at:      %s\n", b.At.Format(time.RFC3339Nano))
	if b.Trace != "" {
		fmt.Fprintf(&sb, "  trace:   %s\n", b.Trace)
	}
	if b.Job != "" {
		fmt.Fprintf(&sb, "  job:     %s\n", b.Job)
	}
	if b.Stage != "" {
		fmt.Fprintf(&sb, "  stage:   %s\n", b.Stage)
	}
	fmt.Fprintf(&sb, "  process: pid=%d %s rev=%s gomaxprocs=%d\n",
		b.Meta.PID, b.Meta.Go, b.Meta.Rev, b.Meta.GoMaxProcs)
	if b.Mem != nil {
		fmt.Fprintf(&sb, "  runtime: %d goroutines, heap %s (%d objects), %d GCs\n",
			b.Mem.NumGoroutine, formatBytes(b.Mem.HeapAllocBytes), b.Mem.HeapObjects, b.Mem.NumGC)
	}

	if len(b.Events) > 0 {
		fmt.Fprintf(&sb, "\ntimeline (%d events, offsets relative to trigger):\n", len(b.Events))
		for _, ev := range b.Events {
			off := ev.At.Sub(b.At)
			fmt.Fprintf(&sb, "  %12s  %-8s %-24s", formatOffset(off), ev.Kind, ev.Name)
			if ev.Trace != "" {
				fmt.Fprintf(&sb, " [%s]", ev.Trace)
			}
			if ev.WallNS > 0 {
				fmt.Fprintf(&sb, " (%s)", obs.FormatDuration(time.Duration(ev.WallNS)))
			}
			if ev.Detail != "" {
				fmt.Fprintf(&sb, " %s", ev.Detail)
			}
			sb.WriteByte('\n')
		}
	}

	if b.Metrics != nil && len(b.Metrics.Counters) > 0 {
		sb.WriteString("\nheadline counters:\n")
		for _, c := range b.Metrics.Counters {
			fmt.Fprintf(&sb, "  %-40s %12d\n", c.Name, c.Value)
		}
	}
	if len(b.Sampler) > 0 {
		sb.WriteString("\nparallel diagnosis: present (see bundle JSON \"sampler\")\n")
	}
	if b.Goroutines != "" {
		if i := strings.IndexByte(b.Goroutines, '\n'); i > 0 {
			fmt.Fprintf(&sb, "\n%s (full dump in bundle JSON \"goroutines\")\n", b.Goroutines[:i])
		}
	}
	return sb.String()
}

// formatOffset renders an event's distance from the trigger instant as
// T-… / T+… (e.g. "T-1.2s", "T+0ms").
func formatOffset(d time.Duration) string {
	sign := "+"
	if d < 0 {
		sign = "-"
		d = -d
	}
	return "T" + sign + obs.FormatDuration(d)
}

func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
