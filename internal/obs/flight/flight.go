// Package flight is the always-on flight recorder: a bounded in-memory
// ring of recent observability events (finished stage spans, job
// lifecycle transitions, budget/degradation decisions, parallel-engine
// state, per-request metric deltas) that costs one atomic load per
// recording site while disabled, and on an anomaly trigger freezes the
// ring into a self-contained JSON bundle on disk — the last N seconds
// of process history, a goroutine and heap profile, the metrics
// snapshot, the latest parallel-sampler diagnosis, and build metadata —
// so a panic, budget blowout, quarantine, or slow job explains itself
// after the fact instead of leaving behind a terminal error string.
//
// The overhead discipline matches internal/obs and internal/faultinject:
// every Log/LogEvent site performs exactly one atomic load and returns
// when the recorder is disabled (the default; `polyprof serve` enables
// it when -data-dir is set).  When enabled, a recording site takes one
// short mutex hold to write a fixed-size slot in a preallocated ring —
// no allocation beyond the event's strings, no I/O.  Disk I/O happens
// only inside Trigger, which is off every hot path by definition (it
// fires on anomalies).
//
// Recording sites are stage/transition granularity — never per dynamic
// instruction — so the enabled cost is invisible next to the work the
// events describe.
package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"polyprof/internal/obs"
)

// Event is one ring-buffer entry.  Kind groups events for rendering
// ("span", "stage", "request", "job", "budget", "degrade", "parddg",
// "sampler", "trigger"); Trace carries the request/job trace ID when
// the site knows it.
type Event struct {
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Name   string    `json:"name,omitempty"`
	Trace  string    `json:"trace,omitempty"`
	Detail string    `json:"detail,omitempty"`
	WallNS int64     `json:"wall_ns,omitempty"`
}

// TriggerInfo carries what the trigger site knows about the anomaly.
type TriggerInfo struct {
	// Trace is the request/job trace ID the anomaly belongs to, when
	// known.  Triggers with a trace (or job) ID are deduplicated per
	// (reason, trace, job) within a short window; triggers without one
	// are the caller's responsibility to rate-limit.
	Trace string
	// Job is the job ID, for job-lifecycle anomalies.
	Job string
	// Stage names the pipeline stage implicated, when known.
	Stage string
	// Detail is a one-line human-readable description.
	Detail string
	// Extra is marshaled verbatim into the bundle (e.g. the full job
	// record with its lifecycle trace).
	Extra any
}

// Options configures a recorder at Enable time.
type Options struct {
	// RingSize is the event-ring capacity (default 1024).
	RingSize int
	// MaxBundles caps bundles kept on disk (default 32); older bundles
	// are garbage-collected oldest-first.
	MaxBundles int
	// MaxBytes caps total bundle bytes on disk (default 64 MiB).
	MaxBytes int64
	// Registry is snapshotted into each bundle (default obs.Default).
	Registry *obs.Registry
	// Logf receives operational messages (bundle written, GC, write
	// errors).  Nil discards them.
	Logf func(format string, args ...any)
}

// dedupeWindow suppresses repeat triggers for the same (reason, trace,
// job): one anomaly should produce one bundle even when several layers
// observe it.
const dedupeWindow = 15 * time.Second

// Recorder is one flight recorder.  The zero value is disabled and
// safe; use the package-level Default (enabled by the serving daemon)
// or NewRecorder in tests.
type Recorder struct {
	enabled atomic.Bool

	mu          sync.Mutex
	ring        []Event // preallocated to capacity once enabled
	next        int     // ring write index once len(ring) == cap
	total       uint64  // events ever recorded
	dir         string
	opts        Options
	seq         uint64
	lastTrigger map[string]time.Time
	diagnosis   json.RawMessage // latest parallel-sampler report
}

// Default is the process-wide recorder every instrumentation site in
// the pipeline logs to.  It stays disabled (one atomic load per site)
// until something — normally `polyprof serve -data-dir` — calls Enable.
var Default = NewRecorder()

// NewRecorder returns a disabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enable turns the recorder on, recording into a ring and writing
// trigger bundles under dir (created if absent).  Enabling an enabled
// recorder re-points it at dir.  Enabling Default also installs the
// obs span hook so every finished stage span lands in the ring.
func (r *Recorder) Enable(dir string, opts Options) error {
	if dir == "" {
		return fmt.Errorf("flight: empty bundle directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 1024
	}
	if opts.MaxBundles <= 0 {
		opts.MaxBundles = 32
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 64 << 20
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	r.mu.Lock()
	r.dir = dir
	r.opts = opts
	if cap(r.ring) != opts.RingSize {
		r.ring = make([]Event, 0, opts.RingSize)
		r.next = 0
	}
	// Each Enable is a new recorder incarnation: stale dedupe state from
	// a previous enablement must not suppress the first anomalies of the
	// new one (trace IDs restart per daemon, so keys would collide).
	r.lastTrigger = make(map[string]time.Time)
	r.mu.Unlock()
	r.enabled.Store(true)
	if r == Default {
		obs.SetSpanHook(func(rec obs.SpanRecord) {
			r.LogEvent(Event{
				At:     rec.Start.Add(rec.Wall),
				Kind:   "span",
				Name:   rec.Name,
				Detail: spanDetail(rec),
				WallNS: int64(rec.Wall),
			})
		})
	}
	return nil
}

func spanDetail(rec obs.SpanRecord) string {
	if rec.Status == "error" {
		return "ERROR: " + rec.Err
	}
	if rec.Events > 0 {
		return fmt.Sprintf("%d events", rec.Events)
	}
	return ""
}

// Disable stops recording (mainly for tests; the daemon keeps its
// recorder for the process lifetime).  Disabling Default also
// uninstalls the obs span hook.
func (r *Recorder) Disable() {
	if r == nil {
		return
	}
	r.enabled.Store(false)
	if r == Default {
		obs.SetSpanHook(nil)
	}
}

// Enabled reports whether the recorder is recording.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Dir returns the bundle directory ("" while disabled).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dir
}

// Log records one event; a single atomic load and return while
// disabled.
func (r *Recorder) Log(kind, name, detail string) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.LogEvent(Event{Kind: kind, Name: name, Detail: detail})
}

// LogEvent records a fully-specified event (zero At is stamped now).
func (r *Recorder) LogEvent(ev Event) {
	if r == nil || !r.enabled.Load() {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	r.mu.Lock()
	if cap(r.ring) != 0 {
		if len(r.ring) < cap(r.ring) {
			r.ring = append(r.ring, ev)
		} else {
			r.ring[r.next] = ev
			r.next = (r.next + 1) % len(r.ring)
		}
		r.total++
	}
	r.mu.Unlock()
}

// SetDiagnosis stores the latest parallel-sampler report (marshaled
// JSON) for inclusion in subsequent bundles.
func (r *Recorder) SetDiagnosis(report json.RawMessage) {
	if r == nil || !r.enabled.Load() {
		return
	}
	cp := append(json.RawMessage(nil), report...)
	r.mu.Lock()
	r.diagnosis = cp
	r.mu.Unlock()
}

// events returns the ring contents oldest-first.  Caller holds r.mu.
func (r *Recorder) eventsLocked() []Event {
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) == cap(r.ring) && cap(r.ring) > 0 {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// Trigger freezes the ring and writes an incident bundle, returning
// the bundle ID.  While disabled it is a no-op returning "".  Repeat
// triggers for the same (reason, trace, job) within dedupeWindow are
// suppressed (returning "") so one anomaly yields one bundle.
func (r *Recorder) Trigger(reason string, info TriggerInfo) (string, error) {
	if r == nil || !r.enabled.Load() {
		return "", nil
	}
	now := time.Now()
	r.mu.Lock()
	if info.Trace != "" || info.Job != "" {
		key := reason + "|" + info.Trace + "|" + info.Job
		if last, ok := r.lastTrigger[key]; ok && now.Sub(last) < dedupeWindow {
			r.mu.Unlock()
			return "", nil
		}
		r.lastTrigger[key] = now
		// Bound the dedupe map: it only ever grows on novel keys.
		if len(r.lastTrigger) > 4096 {
			for k, t := range r.lastTrigger {
				if now.Sub(t) >= dedupeWindow {
					delete(r.lastTrigger, k)
				}
			}
		}
	}
	r.seq++
	seq := r.seq
	events := r.eventsLocked()
	diagnosis := append(json.RawMessage(nil), r.diagnosis...)
	dir := r.dir
	opts := r.opts
	r.mu.Unlock()

	b := buildBundle(reason, info, now, seq, events, diagnosis, opts.Registry)
	id, err := writeBundle(dir, b)
	if err != nil {
		if opts.Logf != nil {
			opts.Logf("flight: writing bundle for %s: %v", reason, err)
		}
		return "", err
	}
	if opts.Registry != nil {
		opts.Registry.Add("flight.bundles", 1)
	}
	if opts.Logf != nil {
		opts.Logf("flight: %s -> bundle %s (%s)", reason, id, info.Detail)
	}
	if err := gcBundles(dir, opts.MaxBundles, opts.MaxBytes, opts.Logf); err != nil && opts.Logf != nil {
		opts.Logf("flight: bundle gc: %v", err)
	}
	// The incident itself becomes ring history for later bundles.
	r.LogEvent(Event{At: now, Kind: "trigger", Name: reason, Trace: info.Trace, Detail: info.Detail})
	return id, nil
}

// List returns the recorder's on-disk bundles, newest first.
func (r *Recorder) List() ([]BundleInfo, error) { return List(r.Dir()) }

// Read loads one of the recorder's bundles by ID.
func (r *Recorder) Read(id string) (*Bundle, error) { return ReadBundle(r.Dir(), id) }

// Remove deletes one of the recorder's bundles by ID.
func (r *Recorder) Remove(id string) error { return Remove(r.Dir(), id) }

// Package-level shorthands over Default, for deep-layer sites (budget,
// core, parddg) that should not carry a recorder handle.

// Log records an event on the Default recorder (one atomic load while
// disabled).
func Log(kind, name, detail string) { Default.Log(kind, name, detail) }

// LogEvent records a fully-specified event on the Default recorder.
func LogEvent(ev Event) { Default.LogEvent(ev) }

// Trigger writes an incident bundle via the Default recorder.
func Trigger(reason string, info TriggerInfo) (string, error) { return Default.Trigger(reason, info) }

// Enabled reports whether the Default recorder is recording.
func Enabled() bool { return Default.Enabled() }
