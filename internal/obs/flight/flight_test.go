package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polyprof/internal/obs"
)

func newTestRecorder(t *testing.T, opts Options) (*Recorder, string) {
	t.Helper()
	dir := t.TempDir()
	r := NewRecorder()
	if err := r.Enable(dir, opts); err != nil {
		t.Fatal(err)
	}
	return r, dir
}

func TestDisabledRecorderIsInert(t *testing.T) {
	r := NewRecorder()
	r.Log("span", "x", "y")
	r.LogEvent(Event{Kind: "job"})
	id, err := r.Trigger("anything", TriggerInfo{Detail: "ignored"})
	if err != nil || id != "" {
		t.Fatalf("disabled Trigger = (%q, %v), want no-op", id, err)
	}
	if r.Enabled() {
		t.Fatal("zero recorder reports enabled")
	}
	var nilRec *Recorder
	nilRec.Log("a", "b", "c") // must not panic
	if nilRec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r, _ := newTestRecorder(t, Options{RingSize: 4, Registry: obs.NewRegistry()})
	for i := 0; i < 10; i++ {
		r.LogEvent(Event{Kind: "job", Name: fmt.Sprintf("ev-%d", i)})
	}
	r.mu.Lock()
	evs := r.eventsLocked()
	r.mu.Unlock()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := fmt.Sprintf("ev-%d", 6+i)
		if ev.Name != want {
			t.Fatalf("ring[%d] = %s, want %s (oldest first)", i, ev.Name, want)
		}
	}
}

func TestTriggerWritesReadableBundle(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	reg.Add("test.counter", 7)
	r, dir := newTestRecorder(t, Options{RingSize: 8, Registry: reg})

	r.LogEvent(Event{Kind: "stage", Name: "pass2-ddg", Trace: "req-1", Detail: "job j-1"})
	r.SetDiagnosis(json.RawMessage(`{"shards":4}`))
	id, err := r.Trigger("stage-panic", TriggerInfo{
		Trace: "req-1", Job: "j-1", Stage: "pass2-ddg",
		Detail: "boom", Extra: map[string]int{"attempt": 2},
	})
	if err != nil || id == "" {
		t.Fatalf("Trigger = (%q, %v)", id, err)
	}

	b, err := r.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "stage-panic" || b.Trace != "req-1" || b.Job != "j-1" || b.Stage != "pass2-ddg" {
		t.Fatalf("bundle header = %+v", b)
	}
	if len(b.Events) != 1 || b.Events[0].Name != "pass2-ddg" {
		t.Fatalf("bundle events = %+v, want the ring contents", b.Events)
	}
	if b.Metrics == nil {
		t.Fatal("bundle without metrics snapshot")
	}
	var diag struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(b.Sampler, &diag); err != nil || diag.Shards != 4 {
		t.Fatalf("bundle sampler = %s (%v)", b.Sampler, err)
	}
	if !strings.Contains(string(b.Extra), `"attempt": 2`) && !strings.Contains(string(b.Extra), `"attempt":2`) {
		t.Fatalf("bundle extra = %s", b.Extra)
	}
	if b.Goroutines == "" || !strings.Contains(b.Goroutines, "goroutine profile") {
		t.Fatal("bundle without goroutine profile")
	}
	if b.Meta.Go == "" || b.Meta.PID == 0 {
		t.Fatalf("bundle meta = %+v", b.Meta)
	}
	if got := reg.Counter("flight.bundles").Value(); got != 1 {
		t.Fatalf("flight.bundles = %d, want 1", got)
	}

	// The trigger itself became ring history.
	r.mu.Lock()
	evs := r.eventsLocked()
	r.mu.Unlock()
	if last := evs[len(evs)-1]; last.Kind != "trigger" || last.Name != "stage-panic" {
		t.Fatalf("last ring event = %+v, want the trigger", last)
	}

	// Render produces a non-empty incident report naming the reason.
	text := Render(b)
	if !strings.Contains(text, "stage-panic") || !strings.Contains(text, "pass2-ddg") {
		t.Fatalf("Render missing incident facts:\n%s", text)
	}
	infos, err := List(dir)
	if err != nil || len(infos) != 1 {
		t.Fatalf("List = (%v, %v)", infos, err)
	}
	if RenderList(infos) == "" {
		t.Fatal("RenderList empty")
	}
}

func TestTriggerDedupe(t *testing.T) {
	r, dir := newTestRecorder(t, Options{Registry: obs.NewRegistry()})
	if id, _ := r.Trigger("slow-job", TriggerInfo{Job: "j-1", Detail: "first"}); id == "" {
		t.Fatal("first trigger suppressed")
	}
	if id, _ := r.Trigger("slow-job", TriggerInfo{Job: "j-1", Detail: "repeat"}); id != "" {
		t.Fatal("repeat trigger for the same (reason, job) not deduplicated")
	}
	// A different job is a different anomaly.
	if id, _ := r.Trigger("slow-job", TriggerInfo{Job: "j-2", Detail: "other"}); id == "" {
		t.Fatal("distinct job deduplicated")
	}
	// Triggers without trace/job IDs are never deduplicated.
	if id, _ := r.Trigger("stage-panic", TriggerInfo{Stage: "x"}); id == "" {
		t.Fatal("bare trigger suppressed")
	}
	if id, _ := r.Trigger("stage-panic", TriggerInfo{Stage: "x"}); id == "" {
		t.Fatal("second bare trigger suppressed")
	}
	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("bundles on disk = %d, want 4", len(infos))
	}
}

func TestBundleGC(t *testing.T) {
	r, dir := newTestRecorder(t, Options{MaxBundles: 3, Registry: obs.NewRegistry()})
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := r.Trigger("stage-panic", TriggerInfo{Detail: fmt.Sprintf("n%d", i)})
		if err != nil || id == "" {
			t.Fatalf("trigger %d = (%q, %v)", i, id, err)
		}
		ids = append(ids, id)
	}
	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("bundles after gc = %d, want MaxBundles=3", len(infos))
	}
	// Newest survive; List is newest-first.
	if infos[0].ID != ids[5] || infos[2].ID != ids[3] {
		t.Fatalf("gc kept %v, want the newest three of %v", infos, ids)
	}
}

func TestBundleGCByBytes(t *testing.T) {
	r, dir := newTestRecorder(t, Options{MaxBytes: 1, Registry: obs.NewRegistry()})
	for i := 0; i < 3; i++ {
		if id, err := r.Trigger("stage-panic", TriggerInfo{Detail: "x"}); err != nil || id == "" {
			t.Fatalf("trigger %d = (%q, %v)", i, id, err)
		}
	}
	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Every bundle exceeds 1 byte, but the newest is never deleted.
	if len(infos) != 1 {
		t.Fatalf("bundles after byte gc = %d, want 1 (newest kept)", len(infos))
	}
}

func TestReadBundleRejectsTraversal(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"../evil", "a/b", `a\b`} {
		if _, err := ReadBundle(dir, id); err == nil {
			t.Fatalf("ReadBundle(%q) accepted a traversal id", id)
		}
		if err := Remove(dir, id); err == nil {
			t.Fatalf("Remove(%q) accepted a traversal id", id)
		}
	}
}

// TestRemoveAndExplicitGC: operator-driven pruning — Remove deletes
// one bundle (missing is an error, for 404s), GC prunes oldest-first
// to a keep count and, unlike the retention gc, may empty the dir.
func TestRemoveAndExplicitGC(t *testing.T) {
	r, dir := newTestRecorder(t, Options{Registry: obs.NewRegistry()})
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := r.Trigger("stage-panic", TriggerInfo{Detail: fmt.Sprintf("n%d", i)})
		if err != nil || id == "" {
			t.Fatalf("trigger %d = (%q, %v)", i, id, err)
		}
		ids = append(ids, id)
	}

	if err := r.Remove(ids[2]); err != nil {
		t.Fatalf("Remove = %v", err)
	}
	if err := r.Remove(ids[2]); !os.IsNotExist(err) {
		t.Fatalf("second Remove = %v, want not-exist", err)
	}

	removed, err := GC(dir, 2, 0)
	if err != nil {
		t.Fatalf("GC = %v", err)
	}
	// Oldest first, and only down to keep=2 of the 4 remaining.
	if len(removed) != 2 || removed[0] != ids[0] || removed[1] != ids[1] {
		t.Fatalf("GC removed %v, want [%s %s]", removed, ids[0], ids[1])
	}
	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].ID != ids[4] || infos[1].ID != ids[3] {
		t.Fatalf("bundles after GC = %+v, want the newest two", infos)
	}

	// keep=0 is a full prune; a missing dir is a no-op.
	if removed, err := GC(dir, 0, 0); err != nil || len(removed) != 2 {
		t.Fatalf("GC(keep=0) = (%v, %v), want 2 removed", removed, err)
	}
	if removed, err := GC(filepath.Join(t.TempDir(), "nope"), 0, 0); err != nil || removed != nil {
		t.Fatalf("GC(missing) = (%v, %v), want (nil, nil)", removed, err)
	}
}

func TestListToleratesMissingDirAndJunk(t *testing.T) {
	if infos, err := List(filepath.Join(t.TempDir(), "nope")); err != nil || infos != nil {
		t.Fatalf("List(missing) = (%v, %v), want (nil, nil)", infos, err)
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "fr-notjson.json"), []byte("{"), 0o644)
	os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("x"), 0o644)
	if infos, err := List(dir); err != nil || len(infos) != 0 {
		t.Fatalf("List(junk) = (%v, %v), want empty", infos, err)
	}
}

func TestDefaultEnableInstallsSpanHook(t *testing.T) {
	dir := t.TempDir()
	if err := Default.Enable(dir, Options{Registry: obs.NewRegistry()}); err != nil {
		t.Fatal(err)
	}
	defer Default.Disable()
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	sp := reg.Scope().StartSpan("test-stage")
	time.Sleep(time.Millisecond)
	sp.End()

	Default.mu.Lock()
	evs := Default.eventsLocked()
	Default.mu.Unlock()
	found := false
	for _, ev := range evs {
		if ev.Kind == "span" && ev.Name == "test-stage" {
			found = true
		}
	}
	if !found {
		t.Fatalf("finished span not mirrored into the Default ring: %+v", evs)
	}
}
