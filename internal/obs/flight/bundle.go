package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"polyprof/internal/obs"
)

// Meta identifies the process that wrote a bundle.
type Meta struct {
	obs.BuildInfo
	PID      int    `json:"pid"`
	Hostname string `json:"hostname,omitempty"`
}

// MemSummary is the runtime.MemStats subset worth keeping alongside
// the heap profile.
type MemSummary struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	HeapObjects    uint64 `json:"heap_objects"`
	NumGC          uint32 `json:"num_gc"`
	NumGoroutine   int    `json:"num_goroutine"`
}

// Bundle is one self-contained incident record: everything needed to
// reconstruct what the process was doing when the anomaly fired,
// readable with nothing but a JSON parser.
type Bundle struct {
	ID     string    `json:"id"`
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
	Trace  string    `json:"trace,omitempty"`
	Job    string    `json:"job,omitempty"`
	Stage  string    `json:"stage,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Meta   Meta      `json:"meta"`

	// Events is the frozen ring, oldest first.
	Events []Event `json:"events"`
	// Metrics is the process metrics snapshot at trigger time.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Sampler is the latest parallel-engine diagnosis, when one ran.
	Sampler json.RawMessage `json:"sampler,omitempty"`
	// Extra is trigger-site payload (e.g. the job record with its
	// lifecycle trace).
	Extra json.RawMessage `json:"extra,omitempty"`
	// Goroutines and Heap are the debug=1 text pprof profiles,
	// truncated to profileCap bytes.
	Goroutines string      `json:"goroutines,omitempty"`
	Heap       string      `json:"heap,omitempty"`
	Mem        *MemSummary `json:"mem,omitempty"`
}

// BundleInfo is one List entry: the bundle header without its payload.
type BundleInfo struct {
	ID     string    `json:"id"`
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
	Trace  string    `json:"trace,omitempty"`
	Job    string    `json:"job,omitempty"`
	Stage  string    `json:"stage,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Events int       `json:"events"`
	Bytes  int64     `json:"bytes"`
}

// profileCap truncates the text pprof profiles embedded in a bundle;
// a daemon with thousands of goroutines should still produce a small
// bundle.
const profileCap = 256 << 10

func buildBundle(reason string, info TriggerInfo, at time.Time, seq uint64,
	events []Event, diagnosis json.RawMessage, reg *obs.Registry) *Bundle {
	host, _ := os.Hostname()
	b := &Bundle{
		ID:     bundleID(at, seq, reason),
		Reason: reason,
		At:     at,
		Trace:  info.Trace,
		Job:    info.Job,
		Stage:  info.Stage,
		Detail: info.Detail,
		Meta:   Meta{BuildInfo: obs.CollectBuildInfo(), PID: os.Getpid(), Hostname: host},
		Events: events,
	}
	if len(diagnosis) > 0 {
		b.Sampler = diagnosis
	}
	if reg != nil {
		snap := reg.Snapshot()
		// The process registry's span list grows with uptime; the ring
		// already carries the recent spans, so drop them here.
		snap.Spans = nil
		b.Metrics = &snap
	}
	if info.Extra != nil {
		if data, err := json.Marshal(info.Extra); err == nil {
			b.Extra = data
		}
	}
	b.Goroutines = textProfile("goroutine")
	b.Heap = textProfile("heap")
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.Mem = &MemSummary{
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		NumGC:          ms.NumGC,
		NumGoroutine:   runtime.NumGoroutine(),
	}
	return b
}

// bundleID builds a sortable, filesystem-safe ID: nanosecond timestamp
// (fixed width through 2262, so lexicographic order is chronological),
// a per-process sequence, and the reason slug.
func bundleID(at time.Time, seq uint64, reason string) string {
	return fmt.Sprintf("fr-%019d-%03d-%s", at.UnixNano(), seq%1000, slug(reason))
}

func slug(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "trigger"
	}
	return b.String()
}

func textProfile(name string) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return fmt.Sprintf("(profile %s failed: %v)", name, err)
	}
	if buf.Len() > profileCap {
		return buf.String()[:profileCap] + "\n... (truncated)"
	}
	return buf.String()
}

// writeBundle persists the bundle under dir via write-temp-then-rename
// so a concurrent List never observes a half-written file.
func writeBundle(dir string, b *Bundle) (string, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, b.ID+".json")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return b.ID, nil
}

// gcBundles deletes oldest bundles until at most maxBundles files
// totalling at most maxBytes remain (always keeping the newest one).
func gcBundles(dir string, maxBundles int, maxBytes int64, logf func(string, ...any)) error {
	names, sizes, err := bundleFiles(dir)
	if err != nil {
		return err
	}
	var total int64
	for _, sz := range sizes {
		total += sz
	}
	for i := 0; i < len(names)-1; i++ { // never delete the newest
		remaining := len(names) - i
		if remaining <= maxBundles && total <= maxBytes {
			break
		}
		path := filepath.Join(dir, names[i])
		if err := os.Remove(path); err != nil {
			return err
		}
		total -= sizes[i]
		if logf != nil {
			logf("flight: gc removed bundle %s", names[i])
		}
	}
	return nil
}

// bundleFiles returns the bundle file names in dir sorted oldest first
// (IDs sort chronologically), with sizes.
func bundleFiles(dir string) ([]string, []int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	var sizes []int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "fr-") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		names = append(names, e.Name())
		sizes = append(sizes, info.Size())
	}
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool { return names[idx[a]] < names[idx[c]] })
	outN := make([]string, len(idx))
	outS := make([]int64, len(idx))
	for i, j := range idx {
		outN[i], outS[i] = names[j], sizes[j]
	}
	return outN, outS, nil
}

// List returns the bundles under dir, newest first.  A missing dir is
// an empty list, not an error — the recorder may simply never have
// triggered.
func List(dir string) ([]BundleInfo, error) {
	if dir == "" {
		return nil, nil
	}
	names, sizes, err := bundleFiles(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []BundleInfo
	for i := len(names) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, names[i]))
		if err != nil {
			continue
		}
		var b struct {
			ID     string    `json:"id"`
			Reason string    `json:"reason"`
			At     time.Time `json:"at"`
			Trace  string    `json:"trace"`
			Job    string    `json:"job"`
			Stage  string    `json:"stage"`
			Detail string    `json:"detail"`
			Events []Event   `json:"events"`
		}
		if err := json.Unmarshal(data, &b); err != nil {
			continue
		}
		out = append(out, BundleInfo{
			ID: b.ID, Reason: b.Reason, At: b.At, Trace: b.Trace, Job: b.Job,
			Stage: b.Stage, Detail: b.Detail, Events: len(b.Events), Bytes: sizes[i],
		})
	}
	return out, nil
}

// bundlePath validates an ID (with or without the .json suffix) and
// resolves it to a path under dir.  IDs containing path separators are
// rejected — a bundle ID must never escape the bundle directory.
func bundlePath(dir, id string) (string, error) {
	if dir == "" {
		return "", fmt.Errorf("flight: no bundle directory")
	}
	if strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return "", fmt.Errorf("flight: invalid bundle id %q", id)
	}
	name := id
	if !strings.HasSuffix(name, ".json") {
		name += ".json"
	}
	return filepath.Join(dir, name), nil
}

// Remove deletes one bundle by ID.  Removing a bundle that does not
// exist is an error (os.IsNotExist) so callers can answer 404.
func Remove(dir, id string) error {
	path, err := bundlePath(dir, id)
	if err != nil {
		return err
	}
	return os.Remove(path)
}

// GC prunes bundles oldest-first until at most keep remain and (when
// maxBytes > 0) their total size fits maxBytes, returning the removed
// IDs.  keep == 0 removes everything — unlike the recorder's internal
// retention gc, an explicit prune may empty the directory.
func GC(dir string, keep int, maxBytes int64) ([]string, error) {
	if keep < 0 {
		keep = 0
	}
	names, sizes, err := bundleFiles(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var total int64
	for _, sz := range sizes {
		total += sz
	}
	var removed []string
	for i := 0; i < len(names); i++ {
		remaining := len(names) - i
		if remaining <= keep && (maxBytes <= 0 || total <= maxBytes) {
			break
		}
		if err := os.Remove(filepath.Join(dir, names[i])); err != nil {
			return removed, err
		}
		total -= sizes[i]
		removed = append(removed, strings.TrimSuffix(names[i], ".json"))
	}
	return removed, nil
}

// ReadBundle loads one bundle by ID (with or without the .json
// suffix).  IDs containing path separators are rejected.
func ReadBundle(dir, id string) (*Bundle, error) {
	path, err := bundlePath(dir, id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flight: bundle %s does not parse: %w", id, err)
	}
	return &b, nil
}
