package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Add("c", 3)
	r.Add("c", 4)
	if got := r.Counter("c").Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	r.SetGauge("g", 42)
	r.MaxGauge("g", 17) // lower: must not move
	if got := r.Gauge("g").Value(); got != 42 {
		t.Fatalf("gauge after lower Max = %d, want 42", got)
	}
	r.MaxGauge("g", 99)
	if got := r.Gauge("g").Value(); got != 99 {
		t.Fatalf("gauge after higher Max = %d, want 99", got)
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 5)
	r.SetGauge("g", 5)
	r.Observe("h", 5)
	sp := r.StartSpan("stage")
	sp.AddEvents(10)
	if rec := sp.End(); rec.Name != "" {
		t.Fatalf("disabled span recorded %+v", rec)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Spans) != 0 {
		t.Fatalf("disabled registry captured metrics: %+v", s)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 62, 63}, {^uint64(0), 64},
	}
	var h Histogram
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.bucket {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		h.Observe(c.v)
	}
	for _, c := range cases {
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside BucketBounds(%d) = [%d, %d]", c.v, c.bucket, lo, hi)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	// Bucket 2 received both 2 and 3.
	if h.Bucket(2) != 2 {
		t.Errorf("bucket 2 = %d, want 2", h.Bucket(2))
	}
	// Bounds are exact powers of two minus one.
	if lo, hi := BucketBounds(4); lo != 8 || hi != 15 {
		t.Errorf("BucketBounds(4) = [%d, %d], want [8, 15]", lo, hi)
	}
	if lo, hi := BucketBounds(64); lo != 1<<63 || hi != ^uint64(0) {
		t.Errorf("BucketBounds(64) = [%d, %d]", lo, hi)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run under -race it validates the synchronization story.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Add("shared.counter", 1)
				r.Observe("shared.hist", uint64(i))
				r.MaxGauge("shared.peak", int64(i))
				if i%100 == 0 {
					sp := r.StartSpan("stage")
					sp.AddEvents(1)
					sp.End()
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("shared.hist").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("shared.peak").Value(); got != perG-1 {
		t.Fatalf("peak gauge = %d, want %d", got, perG-1)
	}
}

// TestSnapshotDuringMetricCreation pins the race the first
// TestRegistryConcurrency version missed: Snapshot iterating the
// metric maps while other goroutines insert *new* names via first-use
// Counter/Gauge/Histogram lookups.  Run under -race (and without it,
// via the runtime's concurrent map iteration check) this fails if
// Snapshot ever reads the maps outside the registry lock.
func TestSnapshotDuringMetricCreation(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			suffix := string(rune('a' + i%26))
			r.Add("fresh.counter."+suffix+string(rune('a'+(i/26)%26)), 1)
			r.SetGauge("fresh.gauge."+suffix, int64(i))
			r.Observe("fresh.hist."+suffix, uint64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			if len(s.Counters) > 0 && s.Counters[0].Name == "" {
				t.Error("snapshot contains empty counter name")
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		_ = r.Snapshot()
	}
	close(done)
	wg.Wait()
}

// TestSpanConcurrentAddEventsEnd exercises AddEvents from several
// goroutines racing one End; under -race this validates the span's
// atomic event counter and close-once semantics.
func TestSpanConcurrentAddEventsEnd(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	sp := r.StartSpan("stage")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sp.AddEvents(1)
			}
		}()
	}
	wg.Wait()
	rec := sp.End()
	if rec.Events != 4000 {
		t.Fatalf("events = %d, want 4000", rec.Events)
	}
	// Racing Ends close the span exactly once: every further End is a
	// zero record and the registry holds a single span.
	var extra sync.WaitGroup
	sp2 := r.StartSpan("stage2")
	records := make([]SpanRecord, 4)
	for g := 0; g < 4; g++ {
		extra.Add(1)
		go func(g int) {
			defer extra.Done()
			sp2.AddEvents(1)
			records[g] = sp2.End()
		}(g)
	}
	extra.Wait()
	closed := 0
	for _, rec := range records {
		if rec.Name != "" {
			closed++
		}
	}
	if closed != 1 {
		t.Fatalf("%d Ends recorded the span, want exactly 1", closed)
	}
	if got := len(r.Spans()); got != 2 {
		t.Fatalf("registry holds %d spans, want 2", got)
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	outer := r.StartSpan("outer")
	inner := r.StartSpan("inner")
	innermost := r.StartSpan("innermost")
	innermost.AddEvents(100)
	innermost.End()
	inner.End()
	outerRec := outer.End()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// End order: innermost first; depths reflect nesting at start.
	want := []struct {
		name  string
		depth int
	}{{"innermost", 2}, {"inner", 1}, {"outer", 0}}
	for i, w := range want {
		if spans[i].Name != w.name || spans[i].Depth != w.depth {
			t.Errorf("span %d = %q depth %d, want %q depth %d",
				i, spans[i].Name, spans[i].Depth, w.name, w.depth)
		}
	}
	if spans[0].Events != 100 || spans[0].EventsPerSec <= 0 {
		t.Errorf("innermost events = %d rate %f, want 100 events and positive rate",
			spans[0].Events, spans[0].EventsPerSec)
	}
	if outerRec.Wall < spans[0].Wall {
		t.Errorf("outer wall %v shorter than innermost %v", outerRec.Wall, spans[0].Wall)
	}
	// Ending every span empties the active stack: a new span is depth 0.
	again := r.StartSpan("again")
	if rec := again.End(); rec.Depth != 0 {
		t.Errorf("post-nesting span depth = %d, want 0", rec.Depth)
	}
	// Double End is a no-op.
	if rec := innermost.End(); rec.Name != "" {
		t.Errorf("double End recorded %+v", rec)
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Add("a.counter", 12)
	r.SetGauge("b.gauge", -3)
	r.Observe("c.hist", 5)
	sp := r.StartSpan("stage1")
	sp.AddEvents(1000)
	time.Sleep(time.Millisecond)
	sp.End()

	text := r.Snapshot().Text()
	for _, want := range []string{"a.counter", "b.gauge", "c.hist", "stage1", "counters:", "spans:"} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, text)
		}
	}

	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(round.Counters) != 1 || round.Counters[0].Value != 12 {
		t.Errorf("round-tripped counters = %+v", round.Counters)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Add("served.counter", 9)
	srv := r.Handler()

	// Default representation is the Prometheus text exposition.
	req, _ := http.NewRequest("GET", "/metrics", nil)
	rec := &responseRecorder{header: http.Header{}}
	srv.ServeHTTP(rec, req)
	if rec.status != 0 && rec.status != http.StatusOK {
		t.Fatalf("status = %d", rec.status)
	}
	if !strings.Contains(rec.body.String(), "polyprof_served_counter 9") {
		t.Fatalf("prometheus body missing counter: %s", rec.body.String())
	}
	if ct := rec.header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("prometheus content type = %q", ct)
	}

	// Accept: application/json (or ?format=json) selects the snapshot.
	for _, mk := range []func() *http.Request{
		func() *http.Request {
			req, _ := http.NewRequest("GET", "/metrics", nil)
			req.Header.Set("Accept", "application/json")
			return req
		},
		func() *http.Request {
			req, _ := http.NewRequest("GET", "/metrics?format=json", nil)
			return req
		},
		func() *http.Request {
			req, _ := http.NewRequest("GET", "/debug/vars", nil)
			return req
		},
	} {
		rec := &responseRecorder{header: http.Header{}}
		srv.ServeHTTP(rec, mk())
		var snap Snapshot
		if err := json.Unmarshal([]byte(rec.body.String()), &snap); err != nil {
			t.Fatalf("JSON body does not parse: %v\n%s", err, rec.body.String())
		}
		if len(snap.Counters) != 1 || snap.Counters[0].Name != "served.counter" {
			t.Fatalf("JSON snapshot counters = %+v", snap.Counters)
		}
	}
}

// responseRecorder is a minimal http.ResponseWriter for the handler
// test (avoiding the httptest dependency keeps the package stdlib-lean
// in spirit; net/http/httptest is stdlib but unneeded here).
type responseRecorder struct {
	header http.Header
	body   strings.Builder
	status int
}

func (r *responseRecorder) Header() http.Header { return r.header }
func (r *responseRecorder) WriteHeader(s int)   { r.status = s }
func (r *responseRecorder) Write(b []byte) (int, error) {
	return r.body.Write(b)
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatRate(36_700_000); got != "36.7M" {
		t.Errorf("FormatRate = %q", got)
	}
	if got := FormatRate(0); got != "-" {
		t.Errorf("FormatRate(0) = %q", got)
	}
	if got := FormatDuration(1230 * time.Microsecond); got != "1.23ms" {
		t.Errorf("FormatDuration = %q", got)
	}
}
