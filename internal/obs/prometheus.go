package obs

import (
	"fmt"
	"strings"
)

// PromNamespace prefixes every metric in the Prometheus exposition.
const PromNamespace = "polyprof"

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, and
// histograms as cumulative le-bucket families with _sum and _count
// (the le bounds are the inclusive log2 bucket uppers), followed by a
// gauge family of p50/p90/p99 midpoint estimates so scrapes see
// latency percentiles directly.  Metric names are sanitized and
// prefixed with PromNamespace; spans are not exposed here (they belong
// to traces and the serving daemon's request ring).
func (s Snapshot) Prometheus() []byte {
	var sb strings.Builder
	if s.BuildInfo != nil {
		// The conventional always-1 info gauge: the interesting facts
		// ride in the labels, matching the BENCH meta block.
		n := PromNamespace + "_build_info"
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s{go=%q,rev=%q,gomaxprocs=\"%d\"} 1\n",
			n, n, s.BuildInfo.Go, s.BuildInfo.Rev, s.BuildInfo.GoMaxProcs)
	}
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", n)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Hi == ^uint64(0) {
				continue // covered by the +Inf bucket
			}
			fmt.Fprintf(&sb, "%s_bucket{le=\"%d\"} %d\n", n, b.Hi, cum)
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&sb, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(&sb, "%s_count %d\n", n, h.Count)
		if h.Count > 0 {
			qn := n + "_quantile"
			fmt.Fprintf(&sb, "# TYPE %s gauge\n", qn)
			fmt.Fprintf(&sb, "%s{q=\"0.5\"} %g\n", qn, h.P50)
			fmt.Fprintf(&sb, "%s{q=\"0.9\"} %g\n", qn, h.P90)
			fmt.Fprintf(&sb, "%s{q=\"0.99\"} %g\n", qn, h.P99)
		}
	}
	return []byte(sb.String())
}

// promName sanitizes a dotted metric name into a Prometheus metric
// name under the polyprof namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(PromNamespace)
	b.WriteByte('_')
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
