package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary and its host parallelism, the
// same facts the BENCH_overhead.json meta block records at bench time.
// It is exposed as the polyprof_build_info gauge on the Prometheus
// exposition, as the build_info section of the JSON snapshot, and in
// every flight-recorder bundle, so a scraped metric or an incident
// bundle can always be tied back to a revision.
type BuildInfo struct {
	Go         string `json:"go"`
	Rev        string `json:"rev,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// CollectBuildInfo returns the process build identity.  The revision
// comes from the vcs.revision build setting (stamped by `go build` in a
// git checkout); binaries built without VCS stamping report an empty
// Rev rather than shelling out to git, which a deployed daemon cannot
// assume exists.  The result is collected once and cached.
func CollectBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo = BuildInfo{
			Go:         runtime.Version(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			var rev string
			var dirty bool
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					rev = s.Value
				case "vcs.modified":
					dirty = s.Value == "true"
				}
			}
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if rev != "" && dirty {
				rev += "-dirty"
			}
			buildInfo.Rev = rev
		}
	})
	return buildInfo
}
