package obs

// Scope is the span-context handle threaded through the pipeline: it
// names the registry a run records into and the parent span new stage
// spans nest under.  The zero Scope targets the process-wide Default
// registry with no parent, so instrumented structs can carry a Scope
// field and behave, unconfigured, exactly like the package-level
// shorthands.
//
// The serving daemon gives every profile request its own enabled
// registry and a request-root span, passes the resulting scope into
// core.Run, and merges the registry into the process one when the
// request completes — per-request isolation without any global state.
//
// A Scope is an immutable value; copy it freely.
type Scope struct {
	r    *Registry
	span *Span
}

// Scope returns the root scope of a registry (no parent span).
func (r *Registry) Scope() Scope { return Scope{r: r} }

// WithSpan returns a scope whose new spans nest under sp.
func (s Scope) WithSpan(sp *Span) Scope { return Scope{r: s.r, span: sp} }

// Registry resolves the scope's registry (Default for the zero Scope).
func (s Scope) Registry() *Registry {
	if s.r == nil {
		return Default
	}
	return s.r
}

// Enabled reports whether the scope's registry is collecting.
func (s Scope) Enabled() bool { return s.Registry().Enabled() }

// Span returns the scope's parent span (nil for a root scope).
func (s Scope) Span() *Span { return s.span }

// StartSpan opens a span nested under the scope's parent span; with no
// parent in the scope it nests under the registry's innermost active
// span, like Registry.StartSpan.
func (s Scope) StartSpan(name string) *Span {
	r := s.Registry()
	if s.span != nil && s.span.id != 0 {
		return r.startSpan(name, s.span, true)
	}
	return r.startSpan(name, nil, false)
}

// Add increments the named counter when the scope's registry collects.
func (s Scope) Add(name string, n uint64) { s.Registry().Add(name, n) }

// SetGauge stores the named gauge value when the registry collects.
func (s Scope) SetGauge(name string, v int64) { s.Registry().SetGauge(name, v) }

// MaxGauge raises the named gauge when the registry collects.
func (s Scope) MaxGauge(name string, v int64) { s.Registry().MaxGauge(name, v) }

// Observe records a histogram sample when the registry collects.
func (s Scope) Observe(name string, v uint64) { s.Registry().Observe(name, v) }
