package obs

import "testing"

// TestQuantileClampedToObservedRange covers the narrow-distribution
// case the clamp exists for: samples all landing in one power-of-two
// bucket must report quantiles inside [Min, Max], not the bucket
// midpoint (which can sit up to 1.5x above the true maximum).
func TestQuantileClampedToObservedRange(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 100; i++ {
		h.Observe(1050) // bucket [1024, 2048): midpoint 1536
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Min != 1050 || hs.Max != 1050 {
		t.Fatalf("range = [%d, %d], want [1050, 1050]", hs.Min, hs.Max)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if v := hs.Quantile(q); v != 1050 {
			t.Fatalf("q%.2f = %v escaped observed range [1050, 1050]", q, v)
		}
	}

	// A spread distribution still clamps each side.
	h2 := r.Histogram("spread")
	h2.Observe(1030)
	h2.Observe(2040)
	snap = r.Snapshot()
	for _, hs := range snap.Histograms {
		if hs.Name != "spread" {
			continue
		}
		for _, q := range []float64{0.01, 0.5, 1} {
			v := hs.Quantile(q)
			if v < float64(hs.Min) || v > float64(hs.Max) {
				t.Fatalf("q%.2f = %v outside [%d, %d]", q, v, hs.Min, hs.Max)
			}
		}
	}

	// Hand-built snapshots without a recorded range keep the raw
	// midpoint estimate.
	raw := HistogramSnapshot{Count: 4, Buckets: []BucketCount{{Lo: 1024, Hi: 2048, Count: 4}}}
	if v := raw.Quantile(0.5); v != 1536 {
		t.Fatalf("unclamped midpoint = %v, want 1536", v)
	}
}
