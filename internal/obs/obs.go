// Package obs is polyprof's dependency-free observability layer: a
// metrics registry (counters, gauges, histograms with fixed log2
// buckets) and a stage-span tracer that records wall time, events
// processed, and events/sec for every pipeline stage.  It plays, for
// this reproduction, the role the paper's hand-maintained cost
// accounting plays for Experiment I: every profiling run can report
// where its own time went.
//
// Collection is disabled by default and enabled explicitly (the
// `polyprof overhead` subcommand, the -metrics / -http CLI flags, and
// the tests).  While disabled, every instrumentation entry point
// reduces to a single atomic load, so the pipeline's hot paths pay no
// measurable cost; instrumentation call sites are additionally kept at
// stage granularity (end of a VM run, folder finish, dependence
// analysis), never per dynamic instruction.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Max raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NumBuckets is the fixed bucket count of a Histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds zeros and
// bucket i >= 1 holds the range [2^(i-1), 2^i - 1].
const NumBuckets = 65

// Histogram counts observations into fixed log2 buckets and tracks the
// exact observed min/max so quantile estimates can be clamped to the
// true range (a log2 bucket midpoint overestimates badly when every
// sample lands in one bucket).
//
// notMin stores the bitwise complement of the minimum: its zero value
// (0 == ^MaxUint64) means "no sample below MaxUint64 yet", so a
// zero-valued Histogram needs no constructor and min updates reduce to
// the same lock-free CAS-max loop as max.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	notMin  atomic.Uint64
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

func casMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// BucketIndex returns the bucket an observation falls into.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive value range [lo, hi] of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i >= 64 {
		return lo, ^uint64(0)
	}
	return lo, (uint64(1) << i) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	casMax(&h.notMin, ^v)
	casMax(&h.max, v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Min returns the smallest observed sample (0 before any Observe —
// callers should gate on Count).
func (h *Histogram) Min() uint64 {
	if h.count.Load() == 0 {
		return 0
	}
	return ^h.notMin.Load()
}

// Max returns the largest observed sample (0 before any Observe).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Bucket returns the sample count of bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= NumBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Registry holds named metrics and finished stage spans.  All methods
// are safe for concurrent use.
type Registry struct {
	enabled    atomic.Bool
	nextSpanID atomic.Uint64

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanRecord
	active   []*Span
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry the pipeline instruments.
var Default = NewRegistry()

// SetEnabled switches metric collection on or off.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset drops every metric and span, keeping the enabled state.  Span
// IDs restart from 1 so successive runs on one registry trace
// identically.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.spans = nil
	r.active = nil
	r.nextSpanID.Store(0)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Add increments the named counter when collection is enabled.
func (r *Registry) Add(name string, n uint64) {
	if !r.enabled.Load() {
		return
	}
	r.Counter(name).Add(n)
}

// SetGauge stores the named gauge value when collection is enabled.
func (r *Registry) SetGauge(name string, v int64) {
	if !r.enabled.Load() {
		return
	}
	r.Gauge(name).Set(v)
}

// MaxGauge raises the named gauge when collection is enabled.
func (r *Registry) MaxGauge(name string, v int64) {
	if !r.enabled.Load() {
		return
	}
	r.Gauge(name).Max(v)
}

// Observe records a histogram sample when collection is enabled.
func (r *Registry) Observe(name string, v uint64) {
	if !r.enabled.Load() {
		return
	}
	r.Histogram(name).Observe(v)
}

// Merge folds another registry's metrics into r: counters add, gauges
// merge by maximum (the gauges in this codebase record peaks),
// histograms merge bucket-wise.  Spans are not merged — a span tree
// belongs to the run that produced it (the serving daemon keeps them
// in its per-request ring instead of the process registry).  Merge is
// a no-op while r is disabled.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r || !r.enabled.Load() {
		return
	}
	type histCopy struct {
		count, sum uint64
		min, max   uint64
		buckets    [NumBuckets]uint64
	}
	src.mu.Lock()
	counters := make(map[string]uint64, len(src.counters))
	for n, c := range src.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]int64, len(src.gauges))
	for n, g := range src.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]*histCopy, len(src.hists))
	for n, h := range src.hists {
		hc := &histCopy{count: h.Count(), sum: h.Sum(), min: h.Min(), max: h.Max()}
		for i := 0; i < NumBuckets; i++ {
			hc.buckets[i] = h.Bucket(i)
		}
		hists[n] = hc
	}
	src.mu.Unlock()

	for n, v := range counters {
		if v > 0 {
			r.Counter(n).Add(v)
		}
	}
	for n, v := range gauges {
		r.Gauge(n).Max(v)
	}
	for n, hc := range hists {
		h := r.Histogram(n)
		h.count.Add(hc.count)
		h.sum.Add(hc.sum)
		if hc.count > 0 {
			casMax(&h.notMin, ^hc.min)
			casMax(&h.max, hc.max)
		}
		for i, c := range hc.buckets {
			if c > 0 {
				h.buckets[i].Add(c)
			}
		}
	}
}

// sortedNames returns the keys of a metric map in stable order.
func sortedNames[M any](m map[string]M) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Package-level shorthands operating on Default.

// Enable switches the default registry on.
func Enable() { Default.SetEnabled(true) }

// Disable switches the default registry off.
func Disable() { Default.SetEnabled(false) }

// Enabled reports whether the default registry is collecting.
func Enabled() bool { return Default.Enabled() }

// Reset clears the default registry.
func Reset() { Default.Reset() }

// Add increments a counter on the default registry.
func Add(name string, n uint64) { Default.Add(name, n) }

// SetGauge sets a gauge on the default registry.
func SetGauge(name string, v int64) { Default.SetGauge(name, v) }

// MaxGauge raises a gauge on the default registry.
func MaxGauge(name string, v int64) { Default.MaxGauge(name, v) }

// Observe records a histogram sample on the default registry.
func Observe(name string, v uint64) { Default.Observe(name, v) }

// StartSpan opens a stage span on the default registry.
func StartSpan(name string) *Span { return Default.StartSpan(name) }
