package sampler

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"polyprof/internal/obs"
)

// ActorStat is one actor's accumulated utilization.
type ActorStat struct {
	Name        string  `json:"name"`
	Role        string  `json:"role"`
	RunningNS   int64   `json:"running_ns"`
	BlockSendNS int64   `json:"blocked_send_ns"`
	BlockRecvNS int64   `json:"blocked_recv_ns"`
	IdleNS      int64   `json:"idle_ns"`
	BusyFrac    float64 `json:"busy_frac"` // running / wall
	Transitions uint64  `json:"transitions"`
}

// QueueStat summarizes one sampled depth series.
type QueueStat struct {
	Name    string  `json:"name"`
	Samples uint64  `json:"samples"`
	Avg     float64 `json:"avg"`
	Max     int64   `json:"max"`
	Last    int64   `json:"last"`
}

// SpeedupRow is one entry of the Amdahl projection table.
type SpeedupRow struct {
	Shards    int     `json:"shards"`
	Projected float64 `json:"projected_speedup"`
}

// Report is the parallel diagnosis derived from one engine run's
// timelines.  All fractions are of the sampled wall interval.
type Report struct {
	WallNS int64 `json:"wall_ns"`
	Shards int   `json:"shards"`

	Actors []ActorStat `json:"actors"`
	Queues []QueueStat `json:"queues,omitempty"`

	// SequencerOccupancy is the fraction of wall the sequencer spent
	// running — the pipeline's measured serial fraction.  While it
	// exceeds every shard's busy fraction, adding shards cannot help.
	SequencerOccupancy float64 `json:"sequencer_occupancy"`
	// MaxShardBusy is the busiest shard's running fraction.
	MaxShardBusy float64 `json:"max_shard_busy"`
	// BackpressureNS totals sequencer blocked-send + blocked-recv time:
	// how long the serial stage itself was stalled on the pipeline.
	BackpressureNS int64 `json:"backpressure_ns"`
	// SerialFrac is the Amdahl serial fraction s estimated from useful
	// work: sequencer+merge running time over total running time.
	SerialFrac float64 `json:"serial_frac"`
	// CriticalPathNS lower-bounds the wall time at infinite shards:
	// the serial work plus the slowest shard's share.
	CriticalPathNS int64 `json:"critical_path_ns"`
	// Dominant names the actor with the highest busy fraction — the
	// first place to attack.
	Dominant string `json:"dominant"`
	// Amdahl projects speedup over a 1-worker run at various shard
	// counts, from SerialFrac: 1/(s + (1-s)/N).
	Amdahl []SpeedupRow `json:"amdahl"`

	// DroppedSegments counts timeline segments past the per-actor cap
	// (the accumulated totals above stay exact regardless).
	DroppedSegments uint64 `json:"dropped_segments,omitempty"`
}

// amdahlPoints is the projection table's shard axis.
var amdahlPoints = []int{1, 2, 4, 8, 16, 32}

// Report derives the diagnosis from the current timelines.  Call after
// Finish for a closed run; calling mid-run reports the live prefix.
func (s *Sampler) Report() *Report {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	actors := append([]*Actor(nil), s.actors...)
	queues := append([]*Queue(nil), s.queues...)
	now := s.finishNS
	s.mu.Unlock()
	if now == 0 {
		now = s.clock()
	}

	r := &Report{WallNS: now}
	var serialNS, parallelNS, maxShardNS int64
	for _, a := range actors {
		ns := a.stateNS(now)
		st := ActorStat{
			Name:        a.name,
			Role:        roleName(a.role),
			RunningNS:   ns[Running],
			BlockSendNS: ns[BlockedSend],
			BlockRecvNS: ns[BlockedRecv],
			IdleNS:      ns[Idle],
			Transitions: a.transitions.Load(),
		}
		if now > 0 {
			st.BusyFrac = frac(ns[Running], now)
		}
		r.Actors = append(r.Actors, st)
		a.mu.Lock()
		r.DroppedSegments += a.dropped
		a.mu.Unlock()

		switch a.role {
		case RoleSequencer:
			r.SequencerOccupancy = st.BusyFrac
			r.BackpressureNS += ns[BlockedSend] + ns[BlockedRecv]
			serialNS += ns[Running]
		case RoleMerge:
			serialNS += ns[Running]
		case RoleShard:
			r.Shards++
			parallelNS += ns[Running]
			if ns[Running] > maxShardNS {
				maxShardNS = ns[Running]
			}
			if st.BusyFrac > r.MaxShardBusy {
				r.MaxShardBusy = st.BusyFrac
			}
		}
	}

	// Serial fraction over useful work, not wall: wall double-counts
	// overlap (shards run while the sequencer runs), useful work does
	// not.  The merge phase counts as serial even though its internals
	// fan out again — it cannot overlap pass-2 execution.
	if total := serialNS + parallelNS; total > 0 {
		r.SerialFrac = frac(serialNS, total)
	}
	r.CriticalPathNS = serialNS + maxShardNS
	for _, n := range amdahlPoints {
		r.Amdahl = append(r.Amdahl, SpeedupRow{Shards: n, Projected: speedup(r.SerialFrac, n)})
	}

	// Dominant: the busiest pipeline actor.  Stable tie-break by name
	// keeps the golden test deterministic.
	best := -1.0
	for _, st := range r.Actors {
		if st.Role == "other" {
			continue
		}
		if st.BusyFrac > best {
			best = st.BusyFrac
			r.Dominant = st.Name
		}
	}

	for _, q := range queues {
		qs := QueueStat{
			Name:    q.name,
			Samples: q.samples.Load(),
			Max:     q.max.Load(),
			Last:    q.last.Load(),
		}
		if qs.Samples > 0 {
			qs.Avg = float64(q.sum.Load()) / float64(qs.Samples)
		}
		r.Queues = append(r.Queues, qs)
	}
	sort.Slice(r.Queues, func(i, j int) bool { return r.Queues[i].Name < r.Queues[j].Name })
	return r
}

func roleName(r Role) string {
	switch r {
	case RoleSequencer:
		return "sequencer"
	case RoleShard:
		return "shard"
	case RoleMerge:
		return "merge"
	}
	return "other"
}

func frac(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// speedup is Amdahl's law: serial fraction s, N-way parallel remainder.
func speedup(s float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	denom := s + (1-s)/float64(n)
	if denom <= 0 {
		return float64(n)
	}
	return 1 / denom
}

// Publish records the report's headline figures as obs metrics, so the
// serving daemon's /metrics endpoint exposes the shard-utilization
// families after every parallel run.  Fractions publish in basis
// points of percent times 100 — i.e. percent with two decimals — as
// integer gauges.
func (r *Report) Publish(sc obs.Scope) {
	if r == nil || !sc.Enabled() {
		return
	}
	sc.SetGauge("ddg.seq.busy_ratio_pct100", pct100(r.SequencerOccupancy))
	sc.MaxGauge("ddg.shard.busy_ratio_pct100.max", pct100(r.MaxShardBusy))
	sc.Add("ddg.seq.backpressure_ns", uint64(r.BackpressureNS))
	sc.SetGauge("ddg.par.serial_frac_pct100", pct100(r.SerialFrac))
	sc.SetGauge("ddg.par.critical_path_ns", r.CriticalPathNS)
	for _, st := range r.Actors {
		if st.Role == "shard" {
			sc.Observe("ddg.shard.busy_ratio_pct100", uint64(pct100(st.BusyFrac)))
			sc.Observe("ddg.shard.blocked_recv_ns", uint64(st.BlockRecvNS))
		}
	}
	for _, q := range r.Queues {
		if q.Samples > 0 {
			sc.Observe("ddg.queue.depth.max", uint64(q.Max))
			sc.Observe("ddg.queue.depth.avg", uint64(q.Avg))
		}
	}
}

func pct100(f float64) int64 { return int64(f * 10000) }

// Render formats the report as the human-readable diagnosis section of
// `polyprof diag`.
func (r *Report) Render() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "parallel diagnosis (%d shards, wall %s):\n",
		r.Shards, obs.FormatDuration(time.Duration(r.WallNS)))
	fmt.Fprintf(&sb, "  %-16s %-10s %8s %12s %12s %12s\n",
		"actor", "role", "busy", "running", "blk-send", "blk-recv")
	for _, a := range r.Actors {
		fmt.Fprintf(&sb, "  %-16s %-10s %7.1f%% %12s %12s %12s\n",
			a.Name, a.Role, 100*a.BusyFrac,
			obs.FormatDuration(time.Duration(a.RunningNS)),
			obs.FormatDuration(time.Duration(a.BlockSendNS)),
			obs.FormatDuration(time.Duration(a.BlockRecvNS)))
	}
	fmt.Fprintf(&sb, "  sequencer occupancy  %6.1f%%   max shard busy %6.1f%%   dominant: %s\n",
		100*r.SequencerOccupancy, 100*r.MaxShardBusy, r.Dominant)
	fmt.Fprintf(&sb, "  serial fraction      %6.1f%%   critical path  %s   backpressure %s\n",
		100*r.SerialFrac,
		obs.FormatDuration(time.Duration(r.CriticalPathNS)),
		obs.FormatDuration(time.Duration(r.BackpressureNS)))
	if len(r.Queues) > 0 {
		sb.WriteString("  queues (sampled depth):\n")
		for _, q := range r.Queues {
			fmt.Fprintf(&sb, "    %-24s samples=%-6d avg=%.2f max=%d last=%d\n",
				q.Name, q.Samples, q.Avg, q.Max, q.Last)
		}
	}
	sb.WriteString("  projected speedup (Amdahl, from measured serial fraction):\n   ")
	for _, row := range r.Amdahl {
		fmt.Fprintf(&sb, " N=%-2d %.2fx ", row.Shards, row.Projected)
	}
	sb.WriteByte('\n')
	return sb.String()
}
