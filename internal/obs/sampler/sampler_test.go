package sampler

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock installs a manually advanced epoch-relative clock.
func fakeClock(s *Sampler) *int64 {
	now := new(int64)
	s.clock = func() int64 { return *now }
	return now
}

func TestTransitionsAccumulate(t *testing.T) {
	s := New()
	now := fakeClock(s)
	s.SetEnabled(true)
	a := s.Actor("sequencer", RoleSequencer)

	*now = 10
	a.Transition(Running) // idle 0..10
	*now = 60
	a.Transition(BlockedSend) // running 10..60
	*now = 75
	a.Transition(Running) // blocked-send 60..75
	*now = 100
	s.Finish() // running 75..100

	ns := a.stateNS(100)
	if ns[Idle] != 10 || ns[Running] != 75 || ns[BlockedSend] != 15 || ns[BlockedRecv] != 0 {
		t.Fatalf("stateNS = %v, want [10 75 15 0]", ns)
	}
	if got := a.transitions.Load(); got != 3 {
		t.Fatalf("transitions = %d, want 3", got)
	}
}

func TestDisabledTransitionsAreNoOps(t *testing.T) {
	s := New()
	now := fakeClock(s)
	a := s.Actor("shard-0", RoleShard)
	q := s.Queue("backlog")

	*now = 50
	a.Transition(Running)
	q.Observe(7)
	if ns := a.stateNS(0); ns != ([numStates]int64{}) {
		t.Fatalf("disabled transition accumulated time: %v", ns)
	}
	if q.samples.Load() != 0 {
		t.Fatal("disabled queue observation recorded a sample")
	}
	if len(s.TimelineSpans()) != 0 {
		t.Fatal("disabled sampler recorded timeline segments")
	}
}

func TestNilReceiversAreSafe(t *testing.T) {
	var s *Sampler
	var a *Actor
	var q *Queue
	a.Transition(Running)
	q.Observe(1)
	s.StartPoll(time.Millisecond, func() {})
	s.StopPoll()
	s.Finish()
	if s.Enabled() {
		t.Fatal("nil sampler reports enabled")
	}
	if r := s.Report(); r != nil {
		t.Fatalf("nil sampler report = %+v", r)
	}
	if sp := s.TimelineSpans(); sp != nil {
		t.Fatalf("nil sampler timeline = %+v", sp)
	}
}

// TestReportDiagnosis drives a deterministic synthetic run in which the
// sequencer out-busies every shard and checks the derived diagnosis:
// dominance, occupancy, serial fraction, critical path, Amdahl.
func TestReportDiagnosis(t *testing.T) {
	s := New()
	now := fakeClock(s)
	s.SetEnabled(true)
	seq := s.Actor("sequencer", RoleSequencer)
	sh0 := s.Actor("shard-0", RoleShard)
	sh1 := s.Actor("shard-1", RoleShard)
	mrg := s.Actor("merge", RoleMerge)

	// Sequencer: running 0..90, blocked-recv 90..100 (backpressure).
	seq.Transition(Running)
	sh0.Transition(BlockedRecv)
	sh1.Transition(BlockedRecv)
	*now = 40
	sh0.Transition(Running) // shard-0 runs 40..100: busy 0.6
	*now = 70
	sh1.Transition(Running) // shard-1 runs 70..100: busy 0.3
	*now = 90
	seq.Transition(BlockedRecv)
	*now = 100
	sh0.Transition(Idle)
	sh1.Transition(Idle)
	seq.Transition(Idle)
	mrg.Transition(Running) // merge 100..110
	*now = 110
	s.Finish()

	r := s.Report()
	if r.WallNS != 110 || r.Shards != 2 {
		t.Fatalf("wall=%d shards=%d", r.WallNS, r.Shards)
	}
	occ := 90.0 / 110.0
	if diff := r.SequencerOccupancy - occ; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("occupancy = %v, want %v", r.SequencerOccupancy, occ)
	}
	if r.MaxShardBusy >= r.SequencerOccupancy {
		t.Fatalf("max shard busy %v >= occupancy %v", r.MaxShardBusy, r.SequencerOccupancy)
	}
	if r.Dominant != "sequencer" {
		t.Fatalf("dominant = %q, want sequencer", r.Dominant)
	}
	if r.BackpressureNS != 10 {
		t.Fatalf("backpressure = %d, want 10", r.BackpressureNS)
	}
	// serial = seq 90 + merge 10 = 100; parallel = 60 + 30 = 90.
	serial := 100.0 / 190.0
	if diff := r.SerialFrac - serial; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("serial frac = %v, want %v", r.SerialFrac, serial)
	}
	if r.CriticalPathNS != 100+60 {
		t.Fatalf("critical path = %d, want 160", r.CriticalPathNS)
	}
	if len(r.Amdahl) == 0 || r.Amdahl[0].Shards != 1 || r.Amdahl[0].Projected != 1 {
		t.Fatalf("amdahl = %+v", r.Amdahl)
	}
	for i := 1; i < len(r.Amdahl); i++ {
		if r.Amdahl[i].Projected <= r.Amdahl[i-1].Projected {
			t.Fatalf("amdahl not monotone: %+v", r.Amdahl)
		}
		if lim := 1 / r.SerialFrac; r.Amdahl[i].Projected >= lim {
			t.Fatalf("amdahl row %d exceeds the 1/s limit %v", i, lim)
		}
	}

	// The report must be JSON-serializable with stable keys.
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"sequencer_occupancy", "serial_frac", "critical_path_ns", "amdahl", "dominant"} {
		if !json.Valid(data) || !contains(string(data), `"`+key+`"`) {
			t.Fatalf("report JSON missing %q: %s", key, data)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestQueueStats(t *testing.T) {
	s := New()
	s.SetEnabled(true)
	q := s.Queue("parddg.inflight")
	for _, d := range []int64{1, 5, 3} {
		q.Observe(d)
	}
	r := s.Report()
	if len(r.Queues) != 1 {
		t.Fatalf("queues = %+v", r.Queues)
	}
	qs := r.Queues[0]
	if qs.Samples != 3 || qs.Max != 5 || qs.Last != 3 || qs.Avg != 3 {
		t.Fatalf("queue stat = %+v", qs)
	}
}

func TestTimelineSpansSkipIdle(t *testing.T) {
	s := New()
	now := fakeClock(s)
	s.SetEnabled(true)
	a := s.Actor("shard-1", RoleShard)
	*now = 5
	a.Transition(Running) // idle 0..5 (skipped)
	*now = 25
	a.Transition(BlockedRecv) // running 5..25
	*now = 30
	s.Finish() // blocked-recv 25..30

	spans := s.TimelineSpans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Name != "running" || spans[0].Wall != 20 || spans[0].Track != "parddg/shard-1" {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if spans[1].Name != "blocked-recv" || spans[1].Wall != 5 {
		t.Fatalf("span[1] = %+v", spans[1])
	}
}

func TestSegmentCapCountsDrops(t *testing.T) {
	s := New()
	now := fakeClock(s)
	s.SetEnabled(true)
	a := s.Actor("seq", RoleSequencer)
	for i := 0; i < maxSegments+10; i++ {
		*now++
		a.Transition(State(int32(i % 2)))
	}
	a.mu.Lock()
	dropped := a.dropped
	segs := len(a.segs)
	a.mu.Unlock()
	if segs != maxSegments || dropped != 10 {
		t.Fatalf("segs=%d dropped=%d", segs, dropped)
	}
	if r := s.Report(); r.DroppedSegments != 10 {
		t.Fatalf("report dropped = %d", r.DroppedSegments)
	}
}

// TestConcurrentScrapes exercises the lock-free transition path against
// concurrent Report/TimelineSpans scrapes and the poller; run under
// -race this is the sampler's data-race certification.
func TestConcurrentScrapes(t *testing.T) {
	s := New()
	s.SetEnabled(true)
	q := s.Queue("depth")
	s.StartPoll(50*time.Microsecond, func() { q.Observe(3) })

	const actors = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < actors; i++ {
		a := s.Actor("shard", RoleShard)
		wg.Add(1)
		go func() {
			defer wg.Done()
			states := []State{Running, BlockedRecv, BlockedSend, Idle}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
					a.Transition(states[j%len(states)])
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if r := s.Report(); r == nil || len(r.Actors) != actors {
			t.Fatalf("scrape %d: %+v", i, r)
		}
		s.TimelineSpans()
	}
	close(stop)
	wg.Wait()
	s.Finish()
	if r := s.Report(); r.WallNS <= 0 {
		t.Fatalf("final wall = %d", r.WallNS)
	}
}
