// Package sampler is the parallel-engine utilization profiler: each
// parddg actor (the sequencer, the N shard workers, the merge phase)
// owns an Actor handle and reports coarse state transitions — running,
// blocked on a channel send, blocked on a channel receive, idle — at
// pipeline-event granularity (batch dispatch, barrier wait, channel
// receive), never per dynamic instruction.  A background poller
// additionally samples queue depths (per-shard channel backlog,
// in-flight batch count) registered by the engine.
//
// From the accumulated per-state time the sampler derives the parallel
// diagnosis report (see report.go): per-actor busy fractions, sequencer
// occupancy, backpressure stall totals, a critical-path estimate, and
// an Amdahl-style projected-speedup table.
//
// The overhead discipline matches internal/obs: every transition site
// costs exactly one atomic load while the sampler is disabled (or one
// nil check when no sampler is attached at all), and when enabled one
// monotonic clock read plus three atomic stores.  Only the owning
// goroutine transitions an actor; state, timestamps and per-state
// accumulators are atomics so a concurrent Report scrape is race-free
// without any lock on the transition path.  Optional timeline segments
// (for the Chrome-trace export) are the one mutex-guarded structure,
// and the mutex is only touched while enabled.
package sampler

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polyprof/internal/obs"
)

// State is an actor's coarse execution state.
type State int32

const (
	// Idle: the actor exists but has no work (before its first batch,
	// after drain).
	Idle State = iota
	// Running: the actor is doing useful work (interning, stage 1/2,
	// merging).
	Running
	// BlockedSend: the actor is blocked shipping a batch downstream.
	BlockedSend
	// BlockedRecv: the actor is blocked waiting for upstream work (a
	// worker on its channel or the stage barrier, the sequencer on the
	// free list — i.e. pipeline backpressure).
	BlockedRecv

	numStates = 4
)

// String returns the state's report label.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Running:
		return "running"
	case BlockedSend:
		return "blocked-send"
	case BlockedRecv:
		return "blocked-recv"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Role tags an actor for the diagnosis arithmetic.
type Role int

const (
	// RoleSequencer is the order-sensitive goroutine every event funnels
	// through; its running time is the pipeline's serial fraction.
	RoleSequencer Role = iota
	// RoleShard is one of the N parallel shard workers.
	RoleShard
	// RoleMerge is the post-drain merge/fold phase.
	RoleMerge
	// RoleOther is an auxiliary actor excluded from the Amdahl model.
	RoleOther
)

// maxSegments caps the per-actor timeline kept for the Chrome-trace
// export; past it, segments are dropped (counted) but the per-state
// accumulators stay exact.
const maxSegments = 1 << 15

// segment is one closed state interval on an actor's timeline,
// nanosecond offsets from the sampler epoch.
type segment struct {
	state      State
	start, end int64
}

// Actor is one goroutine's reporting handle.  Transition must only be
// called by the goroutine that owns the actor; every other method is
// safe to call concurrently with transitions.
type Actor struct {
	s    *Sampler
	name string
	role Role

	state       atomic.Int32
	since       atomic.Int64 // epoch-relative nanos of the last transition
	accum       [numStates]atomic.Int64
	transitions atomic.Uint64

	mu       sync.Mutex
	segs     []segment
	dropped  uint64
	finished bool
}

// Sampler owns a set of actors and queue-depth series for one engine
// run.  The zero value is unusable; call New.
type Sampler struct {
	enabled atomic.Bool
	epoch   time.Time
	clock   func() int64 // epoch-relative nanos; swapped in tests

	mu       sync.Mutex
	actors   []*Actor
	queues   []*Queue
	finishNS int64 // 0 while running

	pollStop chan struct{}
	pollDone chan struct{}
}

// New returns a disabled sampler; call SetEnabled(true) before the
// engine starts to collect.
func New() *Sampler {
	s := &Sampler{epoch: time.Now()}
	s.clock = func() int64 { return int64(time.Since(s.epoch)) }
	return s
}

// SetEnabled switches collection on or off.
func (s *Sampler) SetEnabled(on bool) { s.enabled.Store(on) }

// Enabled reports whether the sampler is collecting.
func (s *Sampler) Enabled() bool { return s != nil && s.enabled.Load() }

// Actor registers a named actor in the given role, starting Idle.
func (s *Sampler) Actor(name string, role Role) *Actor {
	if s == nil {
		return nil
	}
	a := &Actor{s: s, name: name, role: role}
	a.since.Store(s.clock())
	s.mu.Lock()
	s.actors = append(s.actors, a)
	s.mu.Unlock()
	return a
}

// Transition moves the actor into st, charging the elapsed interval to
// the previous state.  Disabled path: one nil check (no sampler) or one
// atomic load (sampler attached but off).
func (a *Actor) Transition(st State) {
	if a == nil || !a.s.enabled.Load() {
		return
	}
	now := a.s.clock()
	prev := State(a.state.Swap(int32(st)))
	start := a.since.Swap(now)
	if d := now - start; d > 0 {
		a.accum[prev].Add(d)
	}
	a.transitions.Add(1)

	a.mu.Lock()
	if !a.finished {
		if len(a.segs) < maxSegments {
			a.segs = append(a.segs, segment{state: prev, start: start, end: now})
		} else {
			a.dropped++
		}
	}
	a.mu.Unlock()
}

// finish closes the actor's open interval at now and freezes its
// timeline.
func (a *Actor) finish(now int64) {
	if a == nil {
		return
	}
	prev := State(a.state.Swap(int32(Idle)))
	start := a.since.Swap(now)
	if d := now - start; d > 0 {
		a.accum[prev].Add(d)
	}
	a.mu.Lock()
	if !a.finished {
		a.finished = true
		if prev != Idle && now > start && len(a.segs) < maxSegments {
			a.segs = append(a.segs, segment{state: prev, start: start, end: now})
		}
	}
	a.mu.Unlock()
}

// stateNS returns the per-state accumulated nanos, charging the open
// interval (if any) through now.
func (a *Actor) stateNS(now int64) [numStates]int64 {
	var out [numStates]int64
	for i := range out {
		out[i] = a.accum[i].Load()
	}
	st := State(a.state.Load())
	if start := a.since.Load(); now > start {
		out[st] += now - start
	}
	return out
}

// Queue is one sampled depth series (a shard channel backlog, the
// in-flight batch count).  Observe may be called from any goroutine.
type Queue struct {
	s    *Sampler
	name string

	samples atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Int64
	last    atomic.Int64
}

// Queue registers a named depth series.
func (s *Sampler) Queue(name string) *Queue {
	if s == nil {
		return nil
	}
	q := &Queue{s: s, name: name}
	s.mu.Lock()
	s.queues = append(s.queues, q)
	s.mu.Unlock()
	return q
}

// Observe records one depth sample (single atomic load when disabled).
func (q *Queue) Observe(depth int64) {
	if q == nil || !q.s.enabled.Load() {
		return
	}
	q.samples.Add(1)
	q.sum.Add(uint64(depth))
	q.last.Store(depth)
	for {
		cur := q.max.Load()
		if depth <= cur || q.max.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// StartPoll launches a background goroutine invoking sample every
// interval until StopPoll (or Finish).  No-op while disabled or when a
// poller is already running.
func (s *Sampler) StartPoll(interval time.Duration, sample func()) {
	if s == nil || !s.enabled.Load() || sample == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pollStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.pollStop, s.pollDone = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
}

// StopPoll stops the background poller and waits for it to exit.
func (s *Sampler) StopPoll() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.pollStop, s.pollDone
	s.pollStop, s.pollDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Finish stops polling, closes every actor's open interval and records
// the wall endpoint the report uses.  Idempotent.
func (s *Sampler) Finish() {
	if s == nil {
		return
	}
	s.StopPoll()
	now := s.clock()
	s.mu.Lock()
	if s.finishNS != 0 {
		s.mu.Unlock()
		return
	}
	s.finishNS = now
	actors := append([]*Actor(nil), s.actors...)
	s.mu.Unlock()
	for _, a := range actors {
		a.finish(now)
	}
}

// TimelineSpans renders every actor's recorded state segments as span
// records on per-actor tracks ("parddg/<actor>"), for appending to a
// Chrome-trace export.  Idle segments are skipped — a gap reads better
// than an explicit idle slice in Perfetto.
func (s *Sampler) TimelineSpans() []obs.SpanRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	actors := append([]*Actor(nil), s.actors...)
	s.mu.Unlock()
	var out []obs.SpanRecord
	for _, a := range actors {
		a.mu.Lock()
		segs := append([]segment(nil), a.segs...)
		a.mu.Unlock()
		track := "parddg/" + a.name
		for _, sg := range segs {
			if sg.state == Idle {
				continue
			}
			out = append(out, obs.SpanRecord{
				Name:   sg.state.String(),
				Track:  track,
				Start:  s.epoch.Add(time.Duration(sg.start)),
				Wall:   time.Duration(sg.end - sg.start),
				Status: "ok",
			})
		}
	}
	return out
}
