package obs

import (
	"sync/atomic"
	"time"
)

// Span measures one pipeline stage: wall time between StartSpan and
// End, plus an event count the stage reports (dynamic instructions,
// folded streams, dependencies analyzed, ...), from which the record
// derives an events/sec throughput.  Spans form a tree: a span started
// from a Scope nests under the scope's parent span, and a span started
// directly on a registry nests under the registry's innermost active
// span, so the rendered trace shows the stage structure (pass1 under a
// workload, sched-build under a request root, ...).
//
// Like the registry, a Span is safe for concurrent use: AddEvents may
// be called from multiple goroutines, and a concurrent End closes the
// span exactly once (events added after End lose the race and are
// dropped).
//
// A span obtained from a disabled registry is a shared no-op; all its
// methods return immediately.
type Span struct {
	reg    atomic.Pointer[Registry]
	name   string
	id     uint64
	parent uint64
	depth  int
	start  time.Time
	events atomic.Uint64
	errMsg atomic.Pointer[string]
}

// SpanRecord is one finished stage span.  Track optionally names the
// Chrome-trace row the record renders on (defaulting to Name): the
// parddg utilization sampler emits many short state segments per actor
// and groups them on one "parddg/<actor>" row each, instead of one row
// per state name.
type SpanRecord struct {
	Name         string        `json:"name"`
	Track        string        `json:"track,omitempty"`
	ID           uint64        `json:"id,omitempty"`
	Parent       uint64        `json:"parent,omitempty"`
	Depth        int           `json:"depth"`
	Start        time.Time     `json:"start,omitzero"`
	Wall         time.Duration `json:"wall_ns"`
	Events       uint64        `json:"events,omitempty"`
	EventsPerSec float64       `json:"events_per_sec,omitempty"`
	// Status is "ok" or "error"; Err carries the message recorded by
	// Fail when Status is "error".
	Status string `json:"status,omitempty"`
	Err    string `json:"error,omitempty"`
}

var noopSpan = &Span{}

// spanHook, when installed, receives every finished span record from
// every registry in the process.  The flight recorder uses it to mirror
// stage spans into its ring buffer.  The cost on Span.End when no hook
// is installed is one atomic pointer load; spans are stage-granularity,
// never per dynamic instruction, so the enabled cost is off the hot
// path by construction.
var spanHook atomic.Pointer[func(SpanRecord)]

// SetSpanHook installs (or, with nil, removes) the process-wide
// finished-span hook.  The hook must be fast and must not start spans
// itself.
func SetSpanHook(f func(SpanRecord)) {
	if f == nil {
		spanHook.Store(nil)
		return
	}
	spanHook.Store(&f)
}

// StartSpan opens a span nested under the registry's innermost active
// span; call End on the returned span when the stage completes.
func (r *Registry) StartSpan(name string) *Span {
	return r.startSpan(name, nil, false)
}

// startSpan opens a span.  With explicit set, parent names the parent
// span (nil for a root); otherwise the innermost active span is the
// parent, preserving the implicit stack nesting of plain StartSpan.
func (r *Registry) startSpan(name string, parent *Span, explicit bool) *Span {
	if !r.enabled.Load() {
		return noopSpan
	}
	r.mu.Lock()
	if !explicit && len(r.active) > 0 {
		parent = r.active[len(r.active)-1]
	}
	s := &Span{name: name, id: r.nextSpanID.Add(1), start: time.Now()}
	if parent != nil && parent.id != 0 {
		s.parent = parent.id
		s.depth = parent.depth + 1
	}
	s.reg.Store(r)
	r.active = append(r.active, s)
	r.mu.Unlock()
	return s
}

// AddEvents accumulates the stage's processed-event count.
func (s *Span) AddEvents(n uint64) {
	if s.reg.Load() == nil {
		return
	}
	s.events.Add(n)
}

// Fail records an error status on the span; the span must still be
// Ended.  The last Fail before End wins.  A nil error, a no-op span,
// or an already-ended span is ignored.
func (s *Span) Fail(err error) {
	if err == nil || s.reg.Load() == nil {
		return
	}
	msg := err.Error()
	s.errMsg.Store(&msg)
}

// ID returns the span's registry-unique identifier (0 for a no-op
// span).
func (s *Span) ID() uint64 { return s.id }

// End closes the span, appends its record to the registry, and returns
// it.  Ending a span twice (or a no-op span) returns a zero record.
func (s *Span) End() SpanRecord {
	r := s.reg.Swap(nil)
	if r == nil {
		return SpanRecord{}
	}
	wall := time.Since(s.start)
	events := s.events.Load()
	rec := SpanRecord{
		Name: s.name, ID: s.id, Parent: s.parent, Depth: s.depth,
		Start: s.start, Wall: wall, Events: events, Status: "ok",
	}
	if wall > 0 && events > 0 {
		rec.EventsPerSec = float64(events) / wall.Seconds()
	}
	if msg := s.errMsg.Load(); msg != nil {
		rec.Status = "error"
		rec.Err = *msg
	}
	r.mu.Lock()
	for i := len(r.active) - 1; i >= 0; i-- {
		if r.active[i] == s {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	r.spans = append(r.spans, rec)
	r.mu.Unlock()
	if h := spanHook.Load(); h != nil {
		(*h)(rec)
	}
	return rec
}

// Spans returns the finished span records in end order.
func (r *Registry) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}
