package obs

import (
	"sync/atomic"
	"time"
)

// Span measures one pipeline stage: wall time between StartSpan and
// End, plus an event count the stage reports (dynamic instructions,
// folded streams, dependencies analyzed, ...), from which the record
// derives an events/sec throughput.  Spans nest: a span started while
// another is active records the enclosing depth, so the rendered trace
// shows the stage structure (pass1 under a workload, sched-build under
// feedback-analyze, ...).
//
// Like the registry, a Span is safe for concurrent use: AddEvents may
// be called from multiple goroutines, and a concurrent End closes the
// span exactly once (events added after End lose the race and are
// dropped).
//
// A span obtained from a disabled registry is a shared no-op; all its
// methods return immediately.
type Span struct {
	reg    atomic.Pointer[Registry]
	name   string
	depth  int
	start  time.Time
	events atomic.Uint64
}

// SpanRecord is one finished stage span.
type SpanRecord struct {
	Name         string        `json:"name"`
	Depth        int           `json:"depth"`
	Wall         time.Duration `json:"wall_ns"`
	Events       uint64        `json:"events,omitempty"`
	EventsPerSec float64       `json:"events_per_sec,omitempty"`
}

var noopSpan = &Span{}

// StartSpan opens a span; call End on the returned span when the stage
// completes.
func (r *Registry) StartSpan(name string) *Span {
	if !r.enabled.Load() {
		return noopSpan
	}
	r.mu.Lock()
	s := &Span{name: name, depth: len(r.active), start: time.Now()}
	s.reg.Store(r)
	r.active = append(r.active, s)
	r.mu.Unlock()
	return s
}

// AddEvents accumulates the stage's processed-event count.
func (s *Span) AddEvents(n uint64) {
	if s.reg.Load() == nil {
		return
	}
	s.events.Add(n)
}

// End closes the span, appends its record to the registry, and returns
// it.  Ending a span twice (or a no-op span) returns a zero record.
func (s *Span) End() SpanRecord {
	r := s.reg.Swap(nil)
	if r == nil {
		return SpanRecord{}
	}
	wall := time.Since(s.start)
	events := s.events.Load()
	rec := SpanRecord{Name: s.name, Depth: s.depth, Wall: wall, Events: events}
	if wall > 0 && events > 0 {
		rec.EventsPerSec = float64(events) / wall.Seconds()
	}
	r.mu.Lock()
	for i := len(r.active) - 1; i >= 0; i-- {
		if r.active[i] == s {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	r.spans = append(r.spans, rec)
	r.mu.Unlock()
	return rec
}

// Spans returns the finished span records in end order.
func (r *Registry) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}
