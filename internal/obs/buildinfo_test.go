package obs

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

func TestCollectBuildInfo(t *testing.T) {
	bi := CollectBuildInfo()
	if bi.Go != runtime.Version() {
		t.Fatalf("Go = %q, want %q", bi.Go, runtime.Version())
	}
	if bi.GoMaxProcs != runtime.GOMAXPROCS(0) || bi.NumCPU != runtime.NumCPU() {
		t.Fatalf("procs = %d/%d, want %d/%d", bi.GoMaxProcs, bi.NumCPU,
			runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	// Rev may be empty (test binaries carry no VCS stamp); when present
	// it is the short hash, possibly with a -dirty suffix.
	if bi.Rev != "" && len(strings.TrimSuffix(bi.Rev, "-dirty")) != 12 {
		t.Fatalf("Rev = %q, want 12-char short hash", bi.Rev)
	}
}

func TestSnapshotCarriesBuildInfo(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Add("x", 1)
	snap := r.Snapshot()
	if snap.BuildInfo == nil || snap.BuildInfo.Go != runtime.Version() {
		t.Fatalf("snapshot build info = %+v", snap.BuildInfo)
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"build_info"`) {
		t.Fatalf("snapshot JSON missing build_info: %s", data)
	}
}

func TestPrometheusBuildInfoGauge(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Add("x", 1)
	text := string(r.Snapshot().Prometheus())
	want := fmt.Sprintf(`%s_build_info{go=%q,rev=%q,gomaxprocs="%d"} 1`,
		PromNamespace, runtime.Version(), CollectBuildInfo().Rev, runtime.GOMAXPROCS(0))
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing %q:\n%s", want, text)
	}
	if !strings.Contains(text, "# TYPE "+PromNamespace+"_build_info gauge") {
		t.Fatalf("exposition missing build_info TYPE line:\n%s", text)
	}
}
