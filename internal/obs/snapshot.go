package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"
)

// NamedUint is one counter in a snapshot.
type NamedUint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// NamedInt is one gauge in a snapshot.
type NamedInt struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is one histogram in a snapshot.  P50/P90/P99 are
// quantile estimates derived from the log2 bucket midpoints clamped to
// the observed [Min, Max] range (see Quantile), so latency histograms
// report percentiles, not just count/sum.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Min     uint64        `json:"min,omitempty"`
	Max     uint64        `json:"max,omitempty"`
	P50     float64       `json:"p50,omitempty"`
	P90     float64       `json:"p90,omitempty"`
	P99     float64       `json:"p99,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// midpoints: it returns the midpoint of the bucket holding the sample
// of rank ceil(q*count), clamped to the observed [Min, Max].  The
// clamp matters most for narrow distributions: a histogram whose
// samples all land in one power-of-two bucket used to report the
// bucket midpoint (up to 1.5x above the true maximum) for every
// quantile; with the clamp the estimate can never leave the observed
// range.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			v := float64(b.Lo) + float64(b.Hi-b.Lo)/2
			// Hand-built snapshots may carry buckets but no range; only
			// clamp when a real [Min, Max] was recorded.
			if h.Max > 0 && h.Min <= h.Max {
				if v < float64(h.Min) {
					v = float64(h.Min)
				}
				if v > float64(h.Max) {
					v = float64(h.Max)
				}
			}
			return v
		}
	}
	return 0
}

// Snapshot is a consistent, sorted view of a registry, suitable for
// text reports and JSON serving.
type Snapshot struct {
	BuildInfo  *BuildInfo          `json:"build_info,omitempty"`
	Counters   []NamedUint         `json:"counters,omitempty"`
	Gauges     []NamedInt          `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanRecord        `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state.  The whole snapshot
// is built while holding the registry lock: the maps may gain entries
// from concurrent first-use lookups, so iterating them outside the
// lock would race.  The metric values themselves are atomics, making
// the reads under the lock cheap and tear-free.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()

	var s Snapshot
	bi := CollectBuildInfo()
	s.BuildInfo = &bi
	for _, name := range sortedNames(r.counters) {
		s.Counters = append(s.Counters, NamedUint{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedNames(r.gauges) {
		s.Gauges = append(s.Gauges, NamedInt{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		hs := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max()}
		for i := 0; i < NumBuckets; i++ {
			if c := h.Bucket(i); c > 0 {
				lo, hi := BucketBounds(i)
				hs.Buckets = append(hs.Buckets, BucketCount{Lo: lo, Hi: hi, Count: c})
			}
		}
		hs.P50 = hs.Quantile(0.50)
		hs.P90 = hs.Quantile(0.90)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms = append(s.Histograms, hs)
	}
	s.Spans = make([]SpanRecord, len(r.spans))
	copy(s.Spans, r.spans)
	return s
}

// TakeSnapshot captures the default registry.
func TakeSnapshot() Snapshot { return Default.Snapshot() }

// JSON serializes the snapshot (pretty-printed, matching the style of
// the feedback report's -json output).
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Text renders the snapshot as an aligned plain-text metrics section.
func (s Snapshot) Text() string {
	var sb strings.Builder
	if len(s.Counters) > 0 {
		sb.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&sb, "  %-36s %12d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		sb.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&sb, "  %-36s %12d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		sb.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&sb, "  %-36s count=%d sum=%d p50=%g p90=%g p99=%g\n",
				h.Name, h.Count, h.Sum, h.P50, h.P90, h.P99)
			for _, b := range h.Buckets {
				fmt.Fprintf(&sb, "    [%d,%d]: %d\n", b.Lo, b.Hi, b.Count)
			}
		}
	}
	if len(s.Spans) > 0 {
		sb.WriteString("spans:\n")
		for _, sp := range s.Spans {
			indent := strings.Repeat("  ", sp.Depth)
			fmt.Fprintf(&sb, "  %-36s %10s", indent+sp.Name, FormatDuration(sp.Wall))
			if sp.Events > 0 {
				fmt.Fprintf(&sb, " %12d events %10s ev/s", sp.Events, FormatRate(sp.EventsPerSec))
			}
			if sp.Status == "error" {
				fmt.Fprintf(&sb, "  ERROR: %s", sp.Err)
			}
			sb.WriteByte('\n')
		}
	}
	if sb.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return sb.String()
}

// FormatRate renders an events/sec figure compactly ("36.7M").
func FormatRate(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.1f", v)
}

// FormatDuration renders a wall time with three significant units at
// most ("1.23ms").
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%dns", d.Nanoseconds())
}
