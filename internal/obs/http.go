package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry as expvar-style
// JSON under /metrics and /debug/vars.
func (r *Registry) Handler() http.Handler {
	serve := func(w http.ResponseWriter, _ *http.Request) {
		data, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(data)
		w.Write([]byte("\n"))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", serve)
	mux.HandleFunc("/debug/vars", serve)
	return mux
}

// Serve starts an HTTP server on addr exposing the default registry's
// metrics JSON (/metrics, /debug/vars) and net/http/pprof
// (/debug/pprof/) for live inspection of long runs.  It returns the
// bound listener (whose Addr resolves ":0" requests); the server runs
// until the listener is closed or the process exits.
func Serve(addr string) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Default.Handler())
	mux.Handle("/debug/vars", Default.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, mux) //nolint:errcheck — server lives for the process
	return ln, nil
}
