package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns an http.Handler serving the registry: /metrics is
// content-negotiated between the Prometheus text exposition (the
// default, and what scrapers' Accept headers select) and the
// expvar-style JSON snapshot (Accept: application/json or
// ?format=json); /debug/vars always serves JSON.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", r.serveMetrics)
	mux.HandleFunc("/debug/vars", r.serveSnapshotJSON)
	return mux
}

func (r *Registry) serveMetrics(w http.ResponseWriter, req *http.Request) {
	if wantJSON(req) {
		r.serveSnapshotJSON(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(r.Snapshot().Prometheus())
}

func (r *Registry) serveSnapshotJSON(w http.ResponseWriter, _ *http.Request) {
	data, err := r.Snapshot().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(data)
	w.Write([]byte("\n"))
}

// wantJSON decides the /metrics representation: an explicit ?format=
// wins, then an Accept header naming application/json; everything
// else (including Prometheus scrapers' text/plain preferences) gets
// the Prometheus exposition.
func wantJSON(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "json":
		return true
	case "prometheus", "prom":
		return false
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

// MetricsServer is a running metrics endpoint: the bound listener plus
// the http.Server behind it, so callers can log the resolved address
// and shut the server down cleanly when the run finishes (Serve used
// to return a bare listener that nobody ever closed).
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (resolving ":0" requests).
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// Close gracefully shuts the server down, waiting briefly for
// in-flight scrapes, and closes the listener.
func (m *MetricsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return m.srv.Shutdown(ctx)
}

// Serve starts an HTTP server on addr exposing the default registry's
// metrics (/metrics Prometheus-or-JSON, /debug/vars JSON) and
// net/http/pprof (/debug/pprof/) for live inspection of long runs.
// The caller owns the returned server and should Close it on exit.
func Serve(addr string) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Default.Handler())
	mux.Handle("/debug/vars", Default.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck — Shutdown's ErrServerClosed is the normal exit
	return &MetricsServer{ln: ln, srv: srv}, nil
}
