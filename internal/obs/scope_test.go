package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestScopeZeroValueTargetsDefault(t *testing.T) {
	var sc Scope
	if sc.Registry() != Default {
		t.Fatalf("zero Scope registry = %p, want Default", sc.Registry())
	}
	// Default is disabled in tests: everything is a no-op.
	sc.Add("scope.zero.counter", 1)
	sp := sc.StartSpan("scope-zero")
	if rec := sp.End(); rec.Name != "" {
		t.Fatalf("disabled default recorded span %+v", rec)
	}
}

func TestScopeExplicitParenting(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	root := r.Scope().StartSpan("request")
	sc := r.Scope().WithSpan(root)

	// Children of the scope nest under the request root regardless of
	// what else is on the active stack.
	unrelated := r.StartSpan("unrelated")
	child := sc.StartSpan("stage-a")
	child.End()
	unrelated.End()
	root.End()

	byName := map[string]SpanRecord{}
	for _, rec := range r.Spans() {
		byName[rec.Name] = rec
	}
	rootRec := byName["request"]
	childRec := byName["stage-a"]
	if rootRec.ID == 0 {
		t.Fatalf("root span has no id: %+v", rootRec)
	}
	if childRec.Parent != rootRec.ID {
		t.Fatalf("child parent = %d, want root id %d", childRec.Parent, rootRec.ID)
	}
	if childRec.Depth != rootRec.Depth+1 {
		t.Fatalf("child depth = %d, want %d", childRec.Depth, rootRec.Depth+1)
	}
	// The unrelated stack span must not have adopted the child.
	if got := byName["unrelated"]; got.ID == childRec.Parent {
		t.Fatalf("child nested under the active stack, not the scope parent")
	}
}

func TestScopeIsolationBetweenRegistries(t *testing.T) {
	a := NewRegistry()
	a.SetEnabled(true)
	b := NewRegistry()
	b.SetEnabled(true)
	a.Scope().Add("iso.counter", 3)
	b.Scope().Add("iso.counter", 5)
	if got := a.Counter("iso.counter").Value(); got != 3 {
		t.Fatalf("registry a counter = %d, want 3", got)
	}
	if got := b.Counter("iso.counter").Value(); got != 5 {
		t.Fatalf("registry b counter = %d, want 5", got)
	}
}

func TestSpanFailStatus(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	sp := r.StartSpan("failing")
	sp.Fail(errors.New("boom"))
	rec := sp.End()
	if rec.Status != "error" || rec.Err != "boom" {
		t.Fatalf("record = %+v, want status=error err=boom", rec)
	}
	ok := r.StartSpan("fine")
	ok.Fail(nil) // ignored
	if rec := ok.End(); rec.Status != "ok" || rec.Err != "" {
		t.Fatalf("record = %+v, want status=ok", rec)
	}
	text := r.Snapshot().Text()
	if !strings.Contains(text, "ERROR: boom") {
		t.Fatalf("snapshot text missing error annotation:\n%s", text)
	}
}

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.SetEnabled(true)
	dst.Add("m.counter", 10)
	dst.SetGauge("m.peak", 7)
	dst.Observe("m.hist", 2)

	src := NewRegistry()
	src.SetEnabled(true)
	src.Add("m.counter", 5)
	src.Add("m.only", 1)
	src.SetGauge("m.peak", 9)
	src.Observe("m.hist", 100)
	sp := src.StartSpan("src-span")
	sp.End()

	dst.Merge(src)
	if got := dst.Counter("m.counter").Value(); got != 15 {
		t.Fatalf("merged counter = %d, want 15", got)
	}
	if got := dst.Counter("m.only").Value(); got != 1 {
		t.Fatalf("merged new counter = %d, want 1", got)
	}
	if got := dst.Gauge("m.peak").Value(); got != 9 {
		t.Fatalf("merged gauge = %d, want max 9", got)
	}
	h := dst.Histogram("m.hist")
	if h.Count() != 2 || h.Sum() != 102 {
		t.Fatalf("merged histogram count=%d sum=%d, want 2/102", h.Count(), h.Sum())
	}
	// Spans stay with their registry: the request ring owns them.
	if got := len(dst.Spans()); got != 0 {
		t.Fatalf("merge copied %d spans, want 0", got)
	}
	// Merging into a disabled registry is a no-op.
	off := NewRegistry()
	off.Merge(src)
	if got := off.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("disabled merge captured %+v", got.Counters)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	for i := 0; i < 90; i++ {
		r.Observe("q.hist", 1) // bucket [1,1]
	}
	for i := 0; i < 10; i++ {
		r.Observe("q.hist", 1000) // bucket [512,1023]
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	h := s.Histograms[0]
	if h.P50 != 1 || h.P90 != 1 {
		t.Fatalf("p50=%g p90=%g, want both 1", h.P50, h.P90)
	}
	// p99 lands in the [512,1023] bucket; the midpoint estimate is
	// 512 + 511/2.
	if h.P99 < 512 || h.P99 > 1023 {
		t.Fatalf("p99 = %g, want within [512,1023]", h.P99)
	}
	if got := h.Quantile(1); got != h.P99 {
		t.Fatalf("q1 = %g, want same bucket as p99 (%g)", got, h.P99)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Add("vm.runs", 2)
	r.SetGauge("ddg.shadow.words", 64)
	r.Observe("serve.request.wall_ns", 1)
	r.Observe("serve.request.wall_ns", 100)

	body := string(r.Snapshot().Prometheus())
	checks := []string{
		"# TYPE polyprof_vm_runs counter",
		"polyprof_vm_runs 2",
		"# TYPE polyprof_ddg_shadow_words gauge",
		"polyprof_ddg_shadow_words 64",
		"# TYPE polyprof_serve_request_wall_ns histogram",
		`polyprof_serve_request_wall_ns_bucket{le="+Inf"} 2`,
		"polyprof_serve_request_wall_ns_sum 101",
		"polyprof_serve_request_wall_ns_count 2",
		`polyprof_serve_request_wall_ns_quantile{q="0.5"}`,
		`polyprof_serve_request_wall_ns_quantile{q="0.99"}`,
	}
	for _, want := range checks {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	// Cumulative buckets: each le count is non-decreasing and the last
	// equals _count. Spot-check the le="1" bucket holds exactly 1.
	if !strings.Contains(body, `polyprof_serve_request_wall_ns_bucket{le="1"} 1`) {
		t.Errorf("exposition missing cumulative le=1 bucket:\n%s", body)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	root := r.Scope().StartSpan("request:test")
	sc := r.Scope().WithSpan(root)
	inner := sc.StartSpan("pass1-structure")
	inner.AddEvents(42)
	time.Sleep(time.Millisecond)
	inner.End()
	failed := sc.StartSpan("pass2-ddg")
	failed.Fail(errors.New("trap"))
	failed.End()
	root.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteChromeTrace(path, r.Spans()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	complete := map[string]TraceEvent{}
	meta := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete[ev.Name] = ev
		case "M":
			meta++
		}
	}
	if meta == 0 {
		t.Fatal("no metadata events emitted")
	}
	for _, name := range []string{"request:test", "pass1-structure", "pass2-ddg"} {
		if _, ok := complete[name]; !ok {
			t.Fatalf("no complete event for %q; trace:\n%s", name, data)
		}
	}
	if ev := complete["pass1-structure"]; ev.Dur <= 0 {
		t.Fatalf("pass1 event has no duration: %+v", ev)
	}
	if ev := complete["pass2-ddg"]; ev.Args["status"] != "error" {
		t.Fatalf("failed span status = %v, want error", ev.Args["status"])
	}
	// Empty input still produces a valid document.
	data, err = ChromeTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("empty trace does not parse: %v", err)
	}
}

func TestMetricsServerServeClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
