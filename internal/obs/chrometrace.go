package obs

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// TraceEvent is one event of the Chrome "Trace Event Format" — the
// JSON consumed by Perfetto and chrome://tracing.  Complete spans use
// phase "X" with microsecond timestamps; phase "M" carries the
// process/thread naming metadata.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceDoc is the trace-event JSON object form.
type TraceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// trackOf names the Perfetto row a span renders on.
func trackOf(sp SpanRecord) string {
	if sp.Track != "" {
		return sp.Track
	}
	return sp.Name
}

// ChromeTrace renders finished spans as a Chrome trace-event JSON
// document: one complete ("X") event per span and one track (tid) per
// distinct track name (Track when set, the span name otherwise), so
// every pipeline stage — and every parddg actor timeline — gets its
// own row in Perfetto.  Timestamps are microseconds relative to the
// earliest span start; span id/parent, event counts, throughput, and
// error status travel in the event args.
func ChromeTrace(spans []SpanRecord) ([]byte, error) {
	doc := TraceDoc{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{}}
	if len(spans) == 0 {
		return json.MarshalIndent(doc, "", " ")
	}
	var t0 time.Time
	for _, sp := range spans {
		if !sp.Start.IsZero() && (t0.IsZero() || sp.Start.Before(t0)) {
			t0 = sp.Start
		}
	}
	doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "polyprof"},
	})
	// Assign one track per span name, stable across runs: spans sorted
	// by start time name the tracks in first-seen order.
	order := make([]SpanRecord, len(spans))
	copy(order, spans)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Start.Before(order[j].Start) })
	tids := map[string]int{}
	for _, sp := range order {
		track := trackOf(sp)
		if _, ok := tids[track]; ok {
			continue
		}
		tid := len(tids) + 1
		tids[track] = tid
		doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": track},
		})
	}
	for _, sp := range order {
		args := map[string]any{"id": sp.ID, "status": sp.Status}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Events > 0 {
			args["events"] = sp.Events
			args["events_per_sec"] = sp.EventsPerSec
		}
		if sp.Err != "" {
			args["error"] = sp.Err
		}
		doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
			Name: sp.Name, Cat: "stage", Ph: "X",
			Ts:  float64(sp.Start.Sub(t0).Nanoseconds()) / 1e3,
			Dur: float64(sp.Wall.Nanoseconds()) / 1e3,
			Pid: 1, Tid: tids[trackOf(sp)],
			Args: args,
		})
	}
	return json.MarshalIndent(doc, "", " ")
}

// WriteChromeTrace writes the spans' trace-event document to path.
func WriteChromeTrace(path string, spans []SpanRecord) error {
	data, err := ChromeTrace(spans)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
