// Package faultinject is a registry of named fault points for
// deterministic chaos testing.  Pipeline stages declare points at
// package init:
//
//	var stepFault = faultinject.Point("vm.step")
//
// and call stepFault.Hit() (or HitPanic at sites that cannot return an
// error) on the governed path.  Disarmed — the default — a hit costs a
// single atomic load of a package-global counter, in the spirit of the
// obs registry's disabled gating, so fault points are free to leave in
// production binaries.
//
// Tests and operators arm points with Arm / ArmString, or via the
// POLYPROF_FAULT environment variable consumed by cmd/polyprof:
//
//	POLYPROF_FAULT="vm.step=error,serve.handler=panic:boom:3"
//
// Spec syntax per point: mode[:arg][:count] where mode is one of
// panic, error, budget, delay; arg is the message (panic/error), the
// budget resource name, or the sleep duration (delay); count fires the
// fault only on the count-th hit (default 1, i.e. the first).  A
// negative count makes the point sticky: it fires on every hit and
// never self-disarms, simulating a sustained condition (a network
// partition, a wedged disk) rather than a one-shot glitch.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polyprof/internal/budget"
)

// Mode selects what an armed point injects.
type Mode int

const (
	// ModePanic makes Hit panic with a *Fault.
	ModePanic Mode = iota
	// ModeError makes Hit return a *Fault error.
	ModeError
	// ModeBudget makes Hit return a *budget.Error, simulating resource
	// exhaustion at the point.
	ModeBudget
	// ModeDelay makes Hit sleep for the configured duration and return
	// nil — for exercising timeouts and watchdogs.
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeError:
		return "error"
	case ModeBudget:
		return "budget"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Spec configures an armed point.
type Spec struct {
	Mode Mode
	// Arg is mode-specific: the message for panic/error, the resource
	// name for budget (default vm-steps), ignored for delay.
	Arg string
	// Delay is the sleep for ModeDelay.
	Delay time.Duration
	// Count makes the point fire on the Count-th hit only (1 = first,
	// the default).  Earlier hits pass through; after firing the point
	// disarms itself so a recovered pipeline can run clean.  Negative
	// is sticky: fire on every hit, never self-disarm — a sustained
	// partition instead of a one-shot fault (clear with Disarm).
	Count int64
}

// Fault is the error/panic value an armed point injects.
type Fault struct {
	Point string
	Msg   string
}

func (f *Fault) Error() string {
	msg := f.Msg
	if msg == "" {
		msg = "injected fault"
	}
	return fmt.Sprintf("faultinject: %s at %s", msg, f.Point)
}

// armedCount gates every Hit: zero means no point anywhere is armed
// and Hit returns after one atomic load.
var armedCount atomic.Int64

var (
	mu     sync.Mutex
	points = map[string]*P{}
)

// P is one named fault point.  Obtain with Point; the zero value is
// not usable.
type P struct {
	name string
	spec atomic.Pointer[Spec]
	hits atomic.Int64
}

// Point registers (or returns the existing) fault point with the given
// name.  Call it from package-level var declarations so Names() is
// complete by the time tests enumerate it.
func Point(name string) *P {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &P{name: name}
	points[name] = p
	return p
}

// Name returns the point's registered name.
func (p *P) Name() string { return p.name }

// Hit is the governed-path call.  Disarmed it costs one atomic load.
// Armed, it counts the hit and — on the configured Count-th one —
// injects: panics (ModePanic), returns an error (ModeError/ModeBudget)
// or sleeps (ModeDelay).
func (p *P) Hit() error {
	if armedCount.Load() == 0 {
		return nil
	}
	spec := p.spec.Load()
	if spec == nil {
		return nil
	}
	n := p.hits.Add(1)
	if want := spec.Count; want >= 0 {
		if want == 0 {
			want = 1
		}
		if n != want {
			return nil
		}
		p.selfDisarm()
	}
	switch spec.Mode {
	case ModePanic:
		panic(&Fault{Point: p.name, Msg: spec.Arg})
	case ModeError:
		return &Fault{Point: p.name, Msg: spec.Arg}
	case ModeBudget:
		res := spec.Arg
		if res == "" {
			res = budget.ResourceSteps
		}
		return &budget.Error{Resource: res, Stage: p.name}
	case ModeDelay:
		time.Sleep(spec.Delay)
	}
	return nil
}

// HitPanic is Hit for sites that cannot return an error (fold, sched):
// error-shaped injections panic with the error value instead, to be
// converted back by the stage-boundary recover.
func (p *P) HitPanic() {
	if err := p.Hit(); err != nil {
		panic(err)
	}
}

// Arm installs spec on the point, replacing any previous arming.
func (p *P) Arm(spec Spec) {
	if prev := p.spec.Swap(&spec); prev == nil {
		armedCount.Add(1)
	}
	p.hits.Store(0)
}

// Disarm removes any arming from the point.
func (p *P) Disarm() {
	if prev := p.spec.Swap(nil); prev != nil {
		armedCount.Add(-1)
	}
	p.hits.Store(0)
}

// selfDisarm is the self-disarm after firing; unlike Disarm it keeps
// the hit counter (informational) and only drops the spec.
func (p *P) selfDisarm() {
	if prev := p.spec.Swap(nil); prev != nil {
		armedCount.Add(-1)
	}
}

// Armed reports whether the point currently has a spec installed.
func (p *P) Armed() bool { return p.spec.Load() != nil }

// Names lists every registered point, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DisarmAll clears every armed point (test cleanup).
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	for _, p := range points {
		p.Disarm()
	}
}

// ArmString arms one point from a "name=mode[:arg][:count]" spec.
func ArmString(s string) error {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("faultinject: bad spec %q (want name=mode[:arg][:count])", s)
	}
	parts := strings.Split(rest, ":")
	var spec Spec
	switch parts[0] {
	case "panic":
		spec.Mode = ModePanic
	case "error":
		spec.Mode = ModeError
	case "budget":
		spec.Mode = ModeBudget
	case "delay":
		spec.Mode = ModeDelay
		spec.Delay = 10 * time.Millisecond
	default:
		return fmt.Errorf("faultinject: unknown mode %q in %q", parts[0], s)
	}
	if len(parts) > 1 && parts[1] != "" {
		if spec.Mode == ModeDelay {
			d, err := time.ParseDuration(parts[1])
			if err != nil {
				return fmt.Errorf("faultinject: bad delay in %q: %v", s, err)
			}
			spec.Delay = d
		} else {
			spec.Arg = parts[1]
		}
	}
	if len(parts) > 2 && parts[2] != "" {
		n, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("faultinject: bad count in %q: %v", s, err)
		}
		spec.Count = n
	}
	Point(name).Arm(spec)
	return nil
}

// ArmFromEnv arms every comma-separated spec in the value (typically
// os.Getenv("POLYPROF_FAULT")).  An empty value is a no-op.
func ArmFromEnv(value string) error {
	if value == "" {
		return nil
	}
	for _, s := range strings.Split(value, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		if err := ArmString(s); err != nil {
			return err
		}
	}
	return nil
}
