package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"

	"polyprof/internal/budget"
)

func TestDisarmedHitIsNil(t *testing.T) {
	p := Point("test.disarmed")
	t.Cleanup(DisarmAll)
	for i := 0; i < 1000; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disarmed hit %d = %v", i, err)
		}
	}
}

func TestErrorModeFiresOnceThenDisarms(t *testing.T) {
	p := Point("test.error")
	t.Cleanup(DisarmAll)
	p.Arm(Spec{Mode: ModeError, Arg: "boom"})
	err := p.Hit()
	var f *Fault
	if !errors.As(err, &f) || f.Point != "test.error" || f.Msg != "boom" {
		t.Fatalf("armed hit = %v", err)
	}
	if p.Armed() {
		t.Fatal("point still armed after firing")
	}
	if err := p.Hit(); err != nil {
		t.Fatalf("hit after self-disarm = %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	p := Point("test.panic")
	t.Cleanup(DisarmAll)
	p.Arm(Spec{Mode: ModePanic, Arg: "kaboom"})
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok || f.Msg != "kaboom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	p.Hit()
	t.Fatal("armed panic point did not panic")
}

func TestBudgetMode(t *testing.T) {
	p := Point("test.budget")
	t.Cleanup(DisarmAll)
	p.Arm(Spec{Mode: ModeBudget, Arg: budget.ResourceShadowBytes})
	err := p.Hit()
	be, ok := budget.AsError(err)
	if !ok || be.Resource != budget.ResourceShadowBytes || be.Stage != "test.budget" {
		t.Fatalf("budget hit = %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	p := Point("test.delay")
	t.Cleanup(DisarmAll)
	p.Arm(Spec{Mode: ModeDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := p.Hit(); err != nil {
		t.Fatalf("delay hit = %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay only slept %v", d)
	}
}

func TestCountFiresOnNthHit(t *testing.T) {
	p := Point("test.count")
	t.Cleanup(DisarmAll)
	p.Arm(Spec{Mode: ModeError, Count: 3})
	if err := p.Hit(); err != nil {
		t.Fatalf("hit 1 = %v", err)
	}
	if err := p.Hit(); err != nil {
		t.Fatalf("hit 2 = %v", err)
	}
	if err := p.Hit(); err == nil {
		t.Fatal("hit 3 did not fire")
	}
}

func TestHitPanicConvertsErrors(t *testing.T) {
	p := Point("test.hitpanic")
	t.Cleanup(DisarmAll)
	p.Arm(Spec{Mode: ModeError, Arg: "converted"})
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok {
			t.Fatalf("recovered non-error %v", r)
		}
		var f *Fault
		if !errors.As(err, &f) || f.Msg != "converted" {
			t.Fatalf("recovered %v", err)
		}
	}()
	p.HitPanic()
	t.Fatal("HitPanic did not panic on error mode")
}

func TestArmString(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := ArmFromEnv("test.env1=error:oops, test.env2=delay:5ms:2"); err != nil {
		t.Fatal(err)
	}
	if !Point("test.env1").Armed() || !Point("test.env2").Armed() {
		t.Fatal("env specs did not arm")
	}
	spec := Point("test.env2").spec.Load()
	if spec.Mode != ModeDelay || spec.Delay != 5*time.Millisecond || spec.Count != 2 {
		t.Fatalf("parsed spec = %+v", spec)
	}
	for _, bad := range []string{"noequals", "x=", "x=wat", "x=delay:zz", "x=error:m:zz"} {
		if err := ArmString(bad); err == nil {
			t.Fatalf("ArmString(%q) accepted", bad)
		}
	}
}

func TestNamesSortedAndIdempotent(t *testing.T) {
	a := Point("test.names.b")
	b := Point("test.names.a")
	if Point("test.names.b") != a || Point("test.names.a") != b {
		t.Fatal("Point not idempotent")
	}
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		if n == "test.names.a" {
			ia = i
		}
		if n == "test.names.b" {
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("Names() = %v", names)
	}
}

func TestConcurrentHitsFireExactlyOnce(t *testing.T) {
	p := Point("test.concurrent")
	t.Cleanup(DisarmAll)
	p.Arm(Spec{Mode: ModeError})
	var fired sync.Map
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := p.Hit(); err != nil {
					fired.Store(i*1000+j, true)
				}
			}
		}(i)
	}
	wg.Wait()
	n := 0
	fired.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("fault fired %d times, want 1", n)
	}
}
