package sched

import (
	"polyprof/internal/iiv"
	"polyprof/internal/obs"
)

// LoopInfo is the dependence summary of one loop dimension (one loop
// node of the dynamic schedule tree).
type LoopInfo struct {
	Loop *iiv.TreeNode
	// Depth is the 0-based dimension index (number of enclosing loops).
	Depth int
	// Parallel: no dependence is carried by this dimension (all
	// relevant distances are exactly zero here).
	Parallel bool
	// NonNeg: all relevant distances are >= 0 here (the first-quadrant
	// condition for permutable bands and tiling).
	NonNeg bool
	// MinNeg is the most negative distance bound observed (0 when
	// NonNeg); used to compute skewing factors.
	MinNeg int64
	// HasStar: some dependence under this loop was over-approximated.
	HasStar bool
	// Ops is the dynamic operation count of the loop's subtree.
	Ops uint64
}

// AnalyzeLoop computes the dependence summary of one loop node.
func (m *Model) AnalyzeLoop(loop *iiv.TreeNode, depth int) *LoopInfo {
	m.obs.Add("sched.loops.analyzed", 1)
	info := &LoopInfo{Loop: loop, Depth: depth, Parallel: true, NonNeg: true, Ops: loop.TotalOps}
	for _, d := range m.DepsUnder(loop) {
		if d.Common <= depth {
			// Both endpoints under the loop always share it; guard
			// against degenerate paths.
			continue
		}
		if d.SatisfiedBefore(depth) {
			continue
		}
		if d.Star {
			info.Parallel = false
			info.NonNeg = false
			info.HasStar = true
			continue
		}
		db := d.Dist[depth]
		if !(db.Known() && db.Min == 0 && db.Max == 0) {
			info.Parallel = false
		}
		if !db.MinOK || db.Min < 0 {
			info.NonNeg = false
			if db.MinOK && db.Min < info.MinNeg {
				info.MinNeg = db.Min
			}
			if !db.MinOK {
				info.HasStar = true
			}
		}
	}
	return info
}

// Nest is a maximal loop path (outermost to innermost loop node) with
// its per-dimension analysis.
type Nest struct {
	Loops []*iiv.TreeNode
	Dims  []*LoopInfo
	// Stmts under the innermost loop of the path.
	Stmts []*Stmt

	// FirstPrivate is the outermost dimension whose loop contains only
	// this nest's statements.  Dimensions above it are shared with
	// other code (e.g. a time loop enclosing several kernels): they may
	// satisfy dependencies but must not join this nest's permutable
	// band — tiling a shared loop per-nest would reorder across the
	// sibling nests.
	FirstPrivate int

	// skewDeps[k] caches known-distance deps relevant to dimension k
	// (filled by fillSkewDeps before transformation).
	skewDeps [][]*Dep

	// obs is the model's span-context, inherited at Nests time so the
	// band search publishes into the same registry.
	obs obs.Scope
}

// Depth returns the nest depth.
func (n *Nest) Depth() int { return len(n.Loops) }

// Nests enumerates the maximal loop paths under (and including) the
// given root node, analyzing each dimension.  A nest is recorded for
// every innermost loop node (a loop with no loop descendants).  Loop
// paths always start at the tree root — ancestors of the walk root are
// included — so dimension indices line up with the dependence distance
// vectors regardless of which subtree is analyzed.
func (m *Model) Nests(root *iiv.TreeNode) []*Nest {
	cache := map[*iiv.TreeNode]*LoopInfo{}
	var nests []*Nest
	var walk func(n *iiv.TreeNode, path []*iiv.TreeNode)
	walk = func(n *iiv.TreeNode, path []*iiv.TreeNode) {
		here := path
		if !n.IsRoot() && n.Elem.IsLoop() {
			here = append(append([]*iiv.TreeNode(nil), path...), n)
		}
		hasLoopChild := false
		for _, c := range n.Children {
			if subtreeHasLoop(c) {
				hasLoopChild = true
			}
			walk(c, here)
		}
		if !n.IsRoot() && n.Elem.IsLoop() && !hasLoopChild {
			nest := &Nest{Loops: here, obs: m.obs}
			for d, l := range here {
				info := cache[l]
				if info == nil {
					info = m.AnalyzeLoop(l, d)
					cache[l] = info
				}
				nest.Dims = append(nest.Dims, info)
			}
			nest.Stmts = m.StmtsUnder(n)
			// A dimension is private when its loop contains no loops
			// other than this nest's own suffix — a shared loop (e.g. a
			// time loop enclosing several kernels) must not join the
			// band.
			onPath := map[*iiv.TreeNode]bool{}
			for _, l := range here {
				onPath[l] = true
			}
			nest.FirstPrivate = len(here)
			for d := len(here) - 1; d >= 0; d-- {
				if loopsWithin(here[d], onPath) {
					nest.FirstPrivate = d
				} else {
					break
				}
			}
			nests = append(nests, nest)
		}
	}
	// Seed the path with the root's loop ancestry (excluding the root
	// itself, which walk() adds when it is a loop).
	var seed []*iiv.TreeNode
	if root.Parent != nil {
		seed = loopPath(root.Parent)
	}
	walk(root, seed)
	return nests
}

// loopsWithin reports whether every loop node in n's subtree is in the
// allowed set (n itself included).
func loopsWithin(n *iiv.TreeNode, allowed map[*iiv.TreeNode]bool) bool {
	if !n.IsRoot() && n.Elem.IsLoop() && !allowed[n] {
		return false
	}
	for _, c := range n.Children {
		if !loopsWithin(c, allowed) {
			return false
		}
	}
	return true
}

func subtreeHasLoop(n *iiv.TreeNode) bool {
	if !n.IsRoot() && n.Elem.IsLoop() {
		return true
	}
	for _, c := range n.Children {
		if subtreeHasLoop(c) {
			return true
		}
	}
	return false
}

// strideWeights returns, per dimension of the nest, the dynamic count
// of memory accesses with stride 0 or ±1 along that dimension, plus the
// total access count.  Accesses without an affine address function
// count toward the total but no dimension.
func (n *Nest) strideWeights() (per []uint64, total uint64) {
	per = make([]uint64, n.Depth())
	for _, s := range n.Stmts {
		for _, in := range s.Instrs {
			if !in.HasAccess() {
				continue
			}
			total += in.Count
			if in.Access.Fn == nil {
				continue
			}
			addr := in.Access.Fn.Rows[0]
			for k := 0; k < n.Depth() && k < len(addr.C); k++ {
				c := addr.C[k]
				if c == 0 || c == 1 || c == -1 {
					per[k] += in.Count
				}
			}
		}
	}
	return per, total
}
