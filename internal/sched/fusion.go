package sched

import (
	"polyprof/internal/iiv"
	"polyprof/internal/poly"
)

// FusionHeuristic selects the fusion strategy of the proposed
// transformation (the paper's Table 5 "fusion" column).
type FusionHeuristic int

// Fusion strategies.
const (
	// SmartFuse fuses adjacent components only when they share data
	// (reuse benefit), the paper's balanced default.
	SmartFuse FusionHeuristic = iota
	// MaxFuse fuses whenever legal.
	MaxFuse
)

func (f FusionHeuristic) String() string {
	if f == MaxFuse {
		return "M"
	}
	return "S"
}

// Component is one top-level loop subtree of a region carrying a
// significant fraction of its operations.
type Component struct {
	Node *iiv.TreeNode
	Ops  uint64
}

// componentThreshold is the paper's 5% cut: any outermost loop with
// more than 5% of the region's operations counts as a component.
const componentThreshold = 0.05

// Components returns the region's components: outermost loop nodes in
// the subtree of root (loops not nested in another loop within the
// region) whose operation count exceeds 5% of the region's.
func (m *Model) Components(root *iiv.TreeNode) []*Component {
	regionOps := root.TotalOps
	var out []*Component
	var walk func(n *iiv.TreeNode)
	walk = func(n *iiv.TreeNode) {
		if n != root && n.Elem.IsLoop() {
			if float64(n.TotalOps) > componentThreshold*float64(regionOps) {
				out = append(out, &Component{Node: n, Ops: n.TotalOps})
			}
			return // outermost loop found; deeper loops are nested
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// FuseComponents groups a region's components under the given
// heuristic and returns the resulting component count ("Comp." in
// Table 5).  Fusing components A (earlier) and B (later) is legal when
// no dependence runs from B back to A and every A→B dependence would
// have a non-negative distance on the fused dimension; SmartFuse
// additionally requires the pair to be connected by at least one
// dependence (data reuse), otherwise fusion buys nothing.
func (m *Model) FuseComponents(comps []*Component, h FusionHeuristic) int {
	if len(comps) <= 1 {
		return len(comps)
	}
	groups := 1
	for i := 1; i < len(comps); i++ {
		prev, cur := comps[i-1], comps[i]
		legal, connected := m.fusable(prev.Node, cur.Node)
		switch h {
		case MaxFuse:
			if !legal {
				groups++
			}
		case SmartFuse:
			if !legal || !connected {
				groups++
			}
		}
	}
	return groups
}

// fusable decides whether the loop subtree b can be fused after/into a.
func (m *Model) fusable(a, b *iiv.TreeNode) (legal, connected bool) {
	legal = true
	for _, d := range m.Deps {
		srcInA := d.Src.Leaf != nil && underNode(d.Src.Leaf, a)
		srcInB := d.Src.Leaf != nil && underNode(d.Src.Leaf, b)
		dstInA := d.Dst.Leaf != nil && underNode(d.Dst.Leaf, a)
		dstInB := d.Dst.Leaf != nil && underNode(d.Dst.Leaf, b)
		switch {
		case srcInB && dstInA:
			// Backward dependence: fusion illegal.
			return false, true
		case srcInA && dstInB:
			connected = true
			if !m.forwardFusable(d) {
				legal = false
			}
		}
	}
	return legal, connected
}

// forwardFusable checks that an a→b dependence keeps a non-negative
// distance on the dimension the fusion would merge (the first
// dimension below the components' common ancestor), across every piece
// of the folded union.
func (m *Model) forwardFusable(d *Dep) bool {
	if len(d.D.Pieces) == 0 {
		return false
	}
	k := d.Common // first non-shared dimension: the fused one
	for _, piece := range d.D.Pieces {
		if piece.Fn == nil || piece.Dom == nil {
			return false
		}
		if k >= piece.Dom.Dim || k >= len(piece.Fn.Rows) {
			// Producer or consumer has no such dimension (e.g. scalar
			// code before the loop): this piece does not constrain the
			// fusion.
			continue
		}
		delta := poly.Var(piece.Dom.Dim, k).Sub(piece.Fn.Rows[k])
		lo, _, lok, _ := piece.Dom.IntBounds(delta)
		if !lok || lo < 0 {
			return false
		}
	}
	return true
}
