// Package sched analyzes the folded polyhedral DDG and proposes
// structured transformations, replacing the paper's customized
// PoCC/PluTo/PolyFeat back-end (Sec. 6).  The engine is a
// dependence-distance framework in the Wolf–Lam tradition (the paper's
// reference [75]): folded dependence maps are turned into per-dimension
// distance bounds via Fourier–Motzkin queries, from which it derives
// parallel dimensions, fully permutable bands (tiling opportunities),
// skewing factors that widen bands, interchange suggestions driven by
// the folded access strides, SIMDizable innermost loops, and loop
// fusion structures.
package sched

import (
	"sort"

	"polyprof/internal/core"
	"polyprof/internal/ddg"
	"polyprof/internal/faultinject"
	"polyprof/internal/iiv"
	"polyprof/internal/obs"
	"polyprof/internal/poly"
)

// Stmt is the scheduler's view of one folded DDG statement.
type Stmt struct {
	S    *ddg.Stmt
	Leaf *iiv.TreeNode
	// Loops is the loop path from outermost to innermost (length =
	// S.Depth).
	Loops []*iiv.TreeNode
	// Ops is the number of dynamic instructions executed by the
	// statement, Mem/FP the usual splits.
	Ops    uint64
	MemOps uint64
	FPOps  uint64
	// Instrs are the statement's folded instructions.
	Instrs []*ddg.Instr
	// Affine reports whether the statement folded exactly: exact domain
	// and affine access functions for all its memory instructions.
	Affine bool
}

// DistBound is the [min, max] range of one dependence distance
// component; either side may be unbounded.
type DistBound struct {
	Min, Max     int64
	MinOK, MaxOK bool
}

// Known reports whether both sides are bounded.
func (d DistBound) Known() bool { return d.MinOK && d.MaxOK }

// Dep is the scheduler's view of a folded dependence.
type Dep struct {
	D        *ddg.Dep
	Src, Dst *Stmt
	// Common is the number of loop dimensions shared by src and dst
	// (their longest common loop-path prefix).
	Common int
	// Dist holds, per common dimension, the bounds of
	// consumer[k] - producer[k] over the dependence domain.
	Dist []DistBound
	// Star marks dependencies whose map or domain was over-approximated:
	// every direction must be assumed.
	Star bool
}

// Model is the scheduler input: statements and dependencies organized
// over the dynamic schedule tree.
type Model struct {
	Profile *core.Profile
	Stmts   []*Stmt
	Deps    []*Dep

	byLeaf map[*iiv.TreeNode]*Stmt
	// obs is the span-context scheduler metrics publish into,
	// inherited from the profile (the zero Scope targets the default
	// registry).
	obs obs.Scope
}

// buildFault injects at scheduling-model construction; error-shaped
// injections panic here and are converted back to errors by the
// sched-build stage recovery in feedback.
var buildFault = faultinject.Point("sched.build")

// Build constructs the scheduling model from a profile.
func Build(p *core.Profile) *Model {
	buildFault.HitPanic()
	m := &Model{Profile: p, byLeaf: map[*iiv.TreeNode]*Stmt{}, obs: p.Obs}

	// Group instruction statistics per DDG statement.
	type agg struct {
		instrs  []*ddg.Instr
		mem, fp uint64
		ops     uint64
		affine  bool
	}
	byStmt := map[*ddg.Stmt]*agg{}
	for _, in := range p.DDG.Instrs {
		a := byStmt[in.Stmt]
		if a == nil {
			a = &agg{affine: true}
			byStmt[in.Stmt] = a
		}
		a.instrs = append(a.instrs, in)
		a.ops += in.Count
		if in.HasAccess() {
			a.mem += in.Count
			if in.Access.Fn == nil {
				a.affine = false
			}
		}
		if in.Op.IsFP() {
			a.fp += in.Count
		}
	}

	stmtOf := map[*ddg.Stmt]*Stmt{}
	for _, s := range p.DDG.Stmts {
		leaf := p.Tree.NodeByCtx(s.Ctx)
		st := &Stmt{S: s, Leaf: leaf}
		if leaf != nil {
			st.Loops = loopPath(leaf)
		}
		if a := byStmt[s]; a != nil {
			st.Instrs = a.instrs
			st.Ops = a.ops
			st.MemOps = a.mem
			st.FPOps = a.fp
			st.Affine = a.affine && s.Domain.Exact
		} else {
			st.Affine = s.Domain.Exact
		}
		m.Stmts = append(m.Stmts, st)
		stmtOf[s] = st
		if leaf != nil {
			m.byLeaf[leaf] = st
		}
	}

	for _, d := range p.DDG.Deps {
		src, dst := stmtOf[d.Src.Stmt], stmtOf[d.Dst.Stmt]
		if src == nil || dst == nil {
			continue
		}
		sd := &Dep{D: d, Src: src, Dst: dst}
		sd.Common = commonLoops(src.Loops, dst.Loops)
		sd.analyze(m.obs)
		m.Deps = append(m.Deps, sd)
	}
	sort.SliceStable(m.Deps, func(i, j int) bool {
		return m.Deps[i].D.Dst.ID < m.Deps[j].D.Dst.ID
	})
	m.obs.Add("sched.stmts", uint64(len(m.Stmts)))
	m.obs.Add("sched.deps", uint64(len(m.Deps)))
	return m
}

// loopPath returns the loop nodes on the path from the root to the
// leaf, outermost first.
func loopPath(leaf *iiv.TreeNode) []*iiv.TreeNode {
	var rev []*iiv.TreeNode
	for n := leaf; n != nil && !n.IsRoot(); n = n.Parent {
		if n.Elem.IsLoop() {
			rev = append(rev, n)
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func commonLoops(a, b []*iiv.TreeNode) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// analyze computes the distance bounds of a dependence on the common
// dimensions from its folded pieces (the union of per-piece ranges).
// An over-approximated (bounding-box) piece domain is still sound: the
// box contains every real point, so min/max of the distance over it
// bracket the true range — this is what makes the paper's
// over-approximation useful.  Only a piece with no affine map (or an
// unbounded distance) forces the all-directions assumption.
func (d *Dep) analyze(sc obs.Scope) {
	if d.Common == 0 {
		return
	}
	d.Dist = make([]DistBound, d.Common)
	if len(d.D.Pieces) == 0 {
		d.Star = true
		return
	}
	first := true
	fmQueries := uint64(0)
	defer func() { sc.Add("sched.fm.queries", fmQueries) }()
	for _, piece := range d.D.Pieces {
		if piece.Fn == nil || piece.Dom == nil {
			d.Star = true
			return
		}
		dim := piece.Dom.Dim
		for k := 0; k < d.Common; k++ {
			if k >= dim || k >= len(piece.Fn.Rows) {
				d.Star = true
				return
			}
			// distance_k = consumer_k - producer_k over the dependence
			// domain (domain coordinates are the consumer's).
			delta := poly.Var(dim, k).Sub(piece.Fn.Rows[k])
			fmQueries++
			lo, hi, lok, hok := piece.Dom.IntBounds(delta)
			if !lok || !hok {
				d.Star = true
				return
			}
			if first {
				d.Dist[k] = DistBound{Min: lo, Max: hi, MinOK: true, MaxOK: true}
			} else {
				if lo < d.Dist[k].Min {
					d.Dist[k].Min = lo
				}
				if hi > d.Dist[k].Max {
					d.Dist[k].Max = hi
				}
			}
		}
		first = false
	}
}

// SatisfiedBefore reports whether the dependence is definitely carried
// by a dimension strictly outer than k (distance >= 1 guaranteed
// there), making its distances at k and deeper irrelevant for
// legality.
func (d *Dep) SatisfiedBefore(k int) bool {
	if d.Star {
		return false
	}
	for j := 0; j < k && j < len(d.Dist); j++ {
		if d.Dist[j].MinOK && d.Dist[j].Min >= 1 {
			return true
		}
	}
	return false
}

// StmtsUnder returns the model statements whose leaf lies in the
// subtree rooted at n.
func (m *Model) StmtsUnder(n *iiv.TreeNode) []*Stmt {
	var out []*Stmt
	for _, s := range m.Stmts {
		if s.Leaf != nil && underNode(s.Leaf, n) {
			out = append(out, s)
		}
	}
	return out
}

func underNode(leaf, n *iiv.TreeNode) bool {
	for cur := leaf; cur != nil; cur = cur.Parent {
		if cur == n {
			return true
		}
	}
	return false
}

// DepsUnder returns dependencies with both endpoints under n.
func (m *Model) DepsUnder(n *iiv.TreeNode) []*Dep {
	var out []*Dep
	for _, d := range m.Deps {
		if d.Src.Leaf != nil && d.Dst.Leaf != nil &&
			underNode(d.Src.Leaf, n) && underNode(d.Dst.Leaf, n) {
			out = append(out, d)
		}
	}
	return out
}
