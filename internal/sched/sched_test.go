package sched_test

import (
	"strings"
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/isa"
	"polyprof/internal/sched"
	"polyprof/internal/workloads"
)

func buildModel(t *testing.T, prog *isa.Program) *sched.Model {
	t.Helper()
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sched.Build(p)
}

// findNest returns the transform of the nest whose innermost loop
// contains a block with the given substring and whose statement count
// matches.
func findNest(m *sched.Model, ts []*sched.NestTransform, prog *isa.Program, blockSub string, minOps uint64) *sched.NestTransform {
	for _, t := range ts {
		for _, s := range t.Nest.Stmts {
			if strings.Contains(prog.Block(s.S.Block).Name, blockSub) && t.Nest.Loops[0].TotalOps >= minOps {
				return t
			}
		}
	}
	return nil
}

// TestBackpropLayerforwardTransform reproduces the Table 3 feedback for
// L_layer: the 2D nest is fully permutable, only the outer (j) loop is
// parallel, stride-0/1 accesses are 100% along the outer dimension vs
// 67% along the inner, and the suggested transformation interchanges
// the loops so the parallel stride-friendly j dimension becomes
// innermost (SIMD).
func TestBackpropLayerforwardTransform(t *testing.T) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	m := buildModel(t, prog)
	ts := m.Transform(m.Profile.Tree.Root)

	lf := findNest(m, ts, prog, "bpnn_layerforward.Lk.body", 5000)
	if lf == nil {
		t.Fatal("layerforward nest not found")
	}
	if lf.Nest.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", lf.Nest.Depth())
	}
	if !lf.FullyPermutable() {
		t.Errorf("nest must be fully permutable (permutable = yes,yes)")
	}
	if !lf.Parallel[0] || lf.Parallel[1] {
		t.Errorf("parallel = (%v,%v), want (true,false)", lf.Parallel[0], lf.Parallel[1])
	}
	if lf.Stride01[0] < 0.99 {
		t.Errorf("outer stride01 = %.2f, want 1.0", lf.Stride01[0])
	}
	if lf.Stride01[1] < 0.60 || lf.Stride01[1] > 0.75 {
		t.Errorf("inner stride01 = %.2f, want ~0.67", lf.Stride01[1])
	}
	if !lf.Interchange {
		t.Error("interchange must be suggested")
	}
	if !lf.SIMD {
		t.Error("SIMD must be possible after interchange")
	}
	if lf.Perm[1] != 0 {
		t.Errorf("innermost dim after permutation = i%d, want i0 (the parallel stride-1 j loop)", lf.Perm[1])
	}
	if lf.SkewUsed {
		t.Error("no skewing expected for layerforward")
	}
	if !lf.Tilable() || lf.TileDepth() != 2 {
		t.Errorf("tilable=%v depth=%d, want true 2", lf.Tilable(), lf.TileDepth())
	}
}

// TestBackpropAdjustTransform: L_adjust has no loop-carried deps at
// all, so both dims are parallel and interchange + SIMD is suggested
// (Table 3 row 2).
func TestBackpropAdjustTransform(t *testing.T) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	m := buildModel(t, prog)
	ts := m.Transform(m.Profile.Tree.Root)

	adj := findNest(m, ts, prog, "bpnn_adjust_weights.Lk.body", 5000)
	if adj == nil {
		t.Fatal("adjust nest not found")
	}
	if !adj.Parallel[0] || !adj.Parallel[1] {
		t.Errorf("parallel = (%v,%v), want (true,true)", adj.Parallel[0], adj.Parallel[1])
	}
	if !adj.FullyPermutable() {
		t.Error("adjust nest must be fully permutable")
	}
	if !adj.Interchange || !adj.SIMD {
		t.Errorf("interchange=%v simd=%v, want both true", adj.Interchange, adj.SIMD)
	}
	if !adj.OuterParallel() {
		t.Error("outer parallelism must survive the permutation")
	}
}

// TestSkewedStencil: the classic wavefront stencil
// a[j] = a[j+1] + a[j] inside an i loop has distance vectors (1,-1),
// (1,0) and (0,1); the band requires skewing dimension 1 by dimension 0
// (factor 1), after which the 2D band is tilable with wavefront
// parallelism — the paper's "advanced feedback" shape from case study
// II.
func TestSkewedStencil(t *testing.T) {
	pb := isa.NewProgram("stencil")
	a := pb.Global("A", 64)
	m := pb.Func("main", 0)
	base := m.IConst(a.Base)
	n := m.IConst(16)
	steps := m.IConst(8)
	m.Loop("Li", m.IConst(0), steps, 1, func(i isa.Reg) {
		m.Loop("Lj", m.IConst(0), n, 1, func(j isa.Reg) {
			cur := m.FLoadIdx(base, j, 0)
			next := m.FLoadIdx(base, j, 1)
			m.FStoreIdx(base, j, 0, m.FAdd(cur, next))
		})
	})
	m.Halt()
	pb.SetMain(m)

	model := buildModel(t, pb.MustBuild())
	ts := model.Transform(model.Profile.Tree.Root)
	if len(ts) == 0 {
		t.Fatal("no nests found")
	}
	var st *sched.NestTransform
	for _, tr := range ts {
		if tr.Nest.Depth() == 2 {
			st = tr
		}
	}
	if st == nil {
		t.Fatal("2D nest not found")
	}
	if st.Parallel[0] || st.Parallel[1] {
		t.Errorf("no dimension should be parallel before skewing: %v", st.Parallel)
	}
	if !st.SkewUsed || len(st.Skews[1]) != 1 || st.Skews[1][0] != (sched.SkewTerm{Base: 0, Factor: 1}) {
		t.Errorf("skew terms = %v (used=%v), want i1 += 1*i0", st.Skews, st.SkewUsed)
	}
	if st.BandLen != 2 {
		t.Errorf("band length = %d, want 2 (tilable after skewing)", st.BandLen)
	}
	if !st.OuterParallel() {
		t.Error("tiled band must expose wavefront parallelism")
	}
}

// TestSequentialChainNotPermutable: a linear recurrence a[i] = a[i-1]
// leaves no transformation.
func TestSequentialChainNotPermutable(t *testing.T) {
	pb := isa.NewProgram("chain")
	a := pb.Global("A", 64)
	m := pb.Func("main", 0)
	base := m.IConst(a.Base)
	m.Loop("L", m.IConst(1), m.IConst(32), 1, func(i isa.Reg) {
		prev := m.FLoadIdx(base, i, -1)
		m.FStoreIdx(base, i, 0, m.FAdd(prev, prev))
	})
	m.Halt()
	pb.SetMain(m)

	model := buildModel(t, pb.MustBuild())
	ts := model.Transform(model.Profile.Tree.Root)
	for _, tr := range ts {
		if tr.Nest.Depth() != 1 {
			continue
		}
		if tr.Parallel[0] {
			t.Error("recurrence loop must not be parallel")
		}
		if tr.SIMD {
			t.Error("recurrence loop must not be SIMDizable")
		}
	}
}

// TestFusionComponents checks component counting and the two fusion
// heuristics on producer/consumer vs. independent loop pairs.
func TestFusionComponents(t *testing.T) {
	build := func(dep bool) *sched.Model {
		pb := isa.NewProgram("fusion")
		a := pb.Global("A", 64)
		b := pb.Global("B", 64)
		m := pb.Func("main", 0)
		aB := m.IConst(a.Base)
		bB := m.IConst(b.Base)
		n := m.IConst(32)
		m.Loop("L1", m.IConst(0), n, 1, func(i isa.Reg) {
			m.FStoreIdx(aB, i, 0, m.I2F(m.Mul(i, i)))
		})
		m.Loop("L2", m.IConst(0), n, 1, func(i isa.Reg) {
			var v isa.Reg
			if dep {
				v = m.FLoadIdx(aB, i, 0) // reads what L1 wrote: fusable + connected
			} else {
				v = m.FConst(1)
			}
			m.FStoreIdx(bB, i, 0, v)
		})
		m.Halt()
		pb.SetMain(m)
		return buildModel(t, pb.MustBuild())
	}

	withDep := build(true)
	comps := withDep.Components(withDep.Profile.Tree.Root)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if got := withDep.FuseComponents(comps, sched.MaxFuse); got != 1 {
		t.Errorf("maxfuse groups = %d, want 1", got)
	}
	if got := withDep.FuseComponents(comps, sched.SmartFuse); got != 1 {
		t.Errorf("smartfuse groups = %d, want 1 (connected by reuse)", got)
	}

	noDep := build(false)
	comps = noDep.Components(noDep.Profile.Tree.Root)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if got := noDep.FuseComponents(comps, sched.MaxFuse); got != 1 {
		t.Errorf("maxfuse groups = %d, want 1 (legal, fuse anyway)", got)
	}
	if got := noDep.FuseComponents(comps, sched.SmartFuse); got != 2 {
		t.Errorf("smartfuse groups = %d, want 2 (no reuse, keep apart)", got)
	}
}

// TestBackwardDepBlocksFusion: a consumer loop reading the producer's
// output in reverse still fuses (distances stay >= 0 under identity
// alignment only if non-negative) — here we build a true backward dep:
// the second loop writes what the first loop reads, scanned so that
// fusion would break it.
func TestBackwardDepBlocksFusion(t *testing.T) {
	pb := isa.NewProgram("antifusion")
	a := pb.Global("A", 70)
	b := pb.Global("B", 70)
	m := pb.Func("main", 0)
	aB := m.IConst(a.Base)
	bB := m.IConst(b.Base)
	n := m.IConst(32)
	// L1: b[i] = a[i]; L2: a[i+1] = b[i].  The write of a[i+1] in L2 at
	// iteration i must stay after L1's read of a[i+1] at iteration i+1,
	// an anti dependence with distance -1 on the fused dimension:
	// fusion must be rejected.
	m.Loop("L1", m.IConst(0), n, 1, func(i isa.Reg) {
		m.FStoreIdx(bB, i, 0, m.FLoadIdx(aB, i, 0))
	})
	m.Loop("L2", m.IConst(0), n, 1, func(i isa.Reg) {
		m.FStoreIdx(aB, i, 1, m.FLoadIdx(bB, i, 0))
	})
	m.Halt()
	pb.SetMain(m)

	model := buildModel(t, pb.MustBuild())
	comps := model.Components(model.Profile.Tree.Root)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if got := model.FuseComponents(comps, sched.MaxFuse); got != 2 {
		t.Errorf("maxfuse groups = %d, want 2 (anti dep must block fusion)", got)
	}
}
