package sched

import (
	"fmt"
	"sort"
	"strings"

	"polyprof/internal/iiv"
)

// NestTransform is the proposed structured transformation of one nest.
type NestTransform struct {
	Nest *Nest

	// Skews[k] lists the skewing terms applied to dimension k (empty =
	// none); each term adds Factor*i_Base to i_k.
	Skews [][]SkewTerm
	// Parallel[k] per original dimension (in the original loop order).
	Parallel []bool
	// BandStart/BandLen describe the maximal fully permutable band
	// (after skewing).
	BandStart, BandLen int
	// Perm is the suggested dimension order (indices into the original
	// dims); dims outside the band keep their place.
	Perm []int
	// Interchange is true when Perm differs from identity.
	Interchange bool
	// SIMD is true when the innermost dimension after Perm is parallel.
	SIMD bool
	// InnerStride01 / InnerStride01After: fraction (weighted by access
	// count) of stride-0/±1 accesses along the innermost dimension
	// before and after the proposed permutation.
	InnerStride01      float64
	InnerStride01After float64
	// Stride01 is the per-dimension stride-0/±1 fraction.
	Stride01 []float64
	// SkewUsed is true when any Skews[k] != 0.
	SkewUsed bool
}

// SkewTerm is one skewing summand: i_k += Factor * i_Base.
type SkewTerm struct {
	Base   int
	Factor int64
}

// TileDepth returns the tilable band depth.
func (t *NestTransform) TileDepth() int { return t.BandLen }

// Tilable reports whether tiling is worthwhile and legal: a permutable
// band of depth >= 2, or a parallel 1-dimensional band (strip-mining).
func (t *NestTransform) Tilable() bool {
	if t.BandLen >= 2 {
		return true
	}
	return t.BandLen == 1 && t.BandStart < len(t.Parallel) && t.Parallel[t.BandStart]
}

// OuterParallel reports whether the transformed nest exposes
// coarse-grain parallelism: a parallel non-innermost dimension after
// the permutation, or wavefront parallelism over a tilable band of
// depth >= 2 (paper Sec. 7, case study II).
func (t *NestTransform) OuterParallel() bool {
	for i := 0; i < len(t.Perm)-1; i++ {
		if t.Parallel[t.Perm[i]] {
			return true
		}
	}
	return t.BandLen >= 2
}

// InnerParallel reports whether the innermost dimension after the
// permutation is parallel (SIMDizable).
func (t *NestTransform) InnerParallel() bool { return t.SIMD }

// FullyPermutable reports whether the whole nest forms one permutable
// band.
func (t *NestTransform) FullyPermutable() bool {
	return t.BandLen == t.Nest.Depth()
}

// TransformNest derives the proposed transformation of one nest.  The
// nest must have been produced by Model.Transform (which caches the
// per-dimension dependence lists).
func TransformNest(n *Nest) *NestTransform {
	d := n.Depth()
	t := &NestTransform{
		Nest:     n,
		Skews:    make([][]SkewTerm, d),
		Parallel: make([]bool, d),
		Perm:     make([]int, d),
		Stride01: make([]float64, d),
	}
	for k := 0; k < d; k++ {
		t.Parallel[k] = n.Dims[k].Parallel
		t.Perm[k] = k
	}

	// Maximal fully permutable band (Wolf-Lam): a band [a, b] is fully
	// permutable iff every dependence not already satisfied by a
	// dimension outer than a has non-negative distance on every
	// dimension of the band.  Skewing a dimension against outer band
	// dimensions that carry the offending dependencies repairs negative
	// components; the search tracks per-dependence *effective* distances
	// so chained skews compose correctly.
	// The paper "tends to avoid skewing unless it really provides
	// improvements in parallelism and tilability": prefer the best
	// skew-free band and only fall back to skewed bands when no
	// skew-free band of depth >= 2 exists.
	bestStart, bestLen := 0, 0
	var bestSkews [][]SkewTerm
	for _, allowSkew := range []bool{false, true} {
		for a := n.FirstPrivate; a < d; a++ {
			skews, length := n.growBand(a, allowSkew)
			if length > bestLen {
				bestStart, bestLen, bestSkews = a, length, skews
			}
		}
		if bestLen >= 2 {
			break
		}
	}
	t.BandStart, t.BandLen = bestStart, bestLen
	if bestSkews != nil {
		for k, terms := range bestSkews {
			if len(terms) > 0 {
				t.Skews[k] = terms
				t.SkewUsed = true
				t.Parallel[k] = false // a skewed dimension is carried
			}
		}
	}

	// Stride profile per dimension.
	per, total := n.strideWeights()
	for k := 0; k < d; k++ {
		t.Stride01[k] = frac(per[k], total)
	}
	if d > 0 {
		t.InnerStride01 = t.Stride01[d-1]
	}

	// Interchange inside the band: the dimension with the best
	// SIMD profit (parallel, high stride-0/1 fraction) goes innermost;
	// among the remaining, parallel dimensions go outermost.
	if t.BandLen >= 2 {
		band := make([]int, 0, t.BandLen)
		for k := t.BandStart; k < t.BandStart+t.BandLen; k++ {
			band = append(band, k)
		}
		inner := band[0]
		for _, k := range band[1:] {
			if simdProfit(t, k) > simdProfit(t, inner) {
				inner = k
			}
		}
		rest := make([]int, 0, len(band)-1)
		for _, k := range band {
			if k != inner {
				rest = append(rest, k)
			}
		}
		sort.SliceStable(rest, func(i, j int) bool {
			pi, pj := t.Parallel[rest[i]], t.Parallel[rest[j]]
			if pi != pj {
				return pi
			}
			return rest[i] < rest[j]
		})
		for i, k := range append(rest, inner) {
			t.Perm[t.BandStart+i] = k
		}
	}
	for i, k := range t.Perm {
		if i != k {
			t.Interchange = true
		}
	}
	if d > 0 {
		inner := t.Perm[d-1]
		t.InnerStride01After = t.Stride01[inner]
		t.SIMD = t.Parallel[inner]
	}
	return t
}

// growBand extends a permutable band from start dimension a as far as
// possible, skewing as needed.  It returns the per-dimension skew terms
// and the band length.
func (n *Nest) growBand(a int, allowSkew bool) ([][]SkewTerm, int) {
	n.obs.Add("sched.bands.searched", 1)
	d := n.Depth()
	skews := make([][]SkewTerm, d)

	// Effective distance bounds per relevant dependence.
	type effDep struct {
		dep *Dep
		eff []DistBound
	}
	var deps []*effDep
	seen := map[*Dep]bool{}
	for k := a; k < d; k++ {
		for _, dp := range n.skewDeps[k] {
			if !seen[dp] && !dp.SatisfiedBefore(a) {
				seen[dp] = true
				eff := make([]DistBound, len(dp.Dist))
				copy(eff, dp.Dist)
				deps = append(deps, &effDep{dep: dp, eff: eff})
			}
		}
	}

	b := a
	for b < d {
		if n.Dims[b].HasStar {
			break
		}
		// Collect offenders at dimension b.
		factors := map[int]int64{} // base dim -> factor
		ok := true
		for _, ed := range deps {
			if b >= len(ed.eff) {
				continue
			}
			db := ed.eff[b]
			if !db.MinOK {
				ok = false
				break
			}
			if db.Min >= 0 {
				continue
			}
			// Find an outer band dimension carrying this dependence.
			found := false
			if !allowSkew {
				ok = false
				break
			}
			for j := a; j < b; j++ {
				if j >= len(ed.eff) {
					break
				}
				dj := ed.eff[j]
				if dj.MinOK && dj.Min >= 1 {
					f := ceilDiv64(-db.Min, dj.Min)
					if f > factors[j] {
						factors[j] = f
					}
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		// Apply the skews to every dependence's effective distance.
		for j, f := range factors {
			skews[b] = append(skews[b], SkewTerm{Base: j, Factor: f})
			for _, ed := range deps {
				if b >= len(ed.eff) || j >= len(ed.eff) {
					continue
				}
				ed.eff[b].Min += f * ed.eff[j].Min
				ed.eff[b].Max += f * ed.eff[j].Max
			}
		}
		b++
	}
	sortSkews(skews)
	return skews, b - a
}

func sortSkews(skews [][]SkewTerm) {
	for _, terms := range skews {
		sort.Slice(terms, func(i, j int) bool { return terms[i].Base < terms[j].Base })
	}
}

// simdProfit scores a dimension as the vectorization target.
func simdProfit(t *NestTransform, k int) float64 {
	p := t.Stride01[k]
	if t.Parallel[k] {
		p += 1
	}
	return p
}

func ceilDiv64(a, b int64) int64 {
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

func frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Transform analyzes and transforms every nest under root.
func (m *Model) Transform(root *iiv.TreeNode) []*NestTransform {
	nests := m.Nests(root)
	out := make([]*NestTransform, 0, len(nests))
	for _, n := range nests {
		n.fillSkewDeps(m)
		out = append(out, TransformNest(n))
	}
	m.obs.Add("sched.nests.transformed", uint64(len(out)))
	return out
}

// fillSkewDeps records, per dimension, the known-distance dependencies
// relevant to that dimension (star dependencies are already accounted
// for by the LoopInfo HasStar flag).
func (n *Nest) fillSkewDeps(m *Model) {
	n.skewDeps = make([][]*Dep, n.Depth())
	for k, l := range n.Loops {
		for _, d := range m.DepsUnder(l) {
			if !d.Star && d.Common > k {
				n.skewDeps[k] = append(n.skewDeps[k], d)
			}
		}
	}
}

// Describe renders the transformation compactly, e.g.
// "interchange(i1,i0) skew(i1+=2*i0) tile(2D) parallel(i0) simd".
func (t *NestTransform) Describe() string {
	var parts []string
	if t.Interchange {
		names := make([]string, len(t.Perm))
		for i, k := range t.Perm {
			names[i] = fmt.Sprintf("i%d", k)
		}
		parts = append(parts, "interchange("+strings.Join(names, ",")+")")
	}
	for k, terms := range t.Skews {
		for _, st := range terms {
			parts = append(parts, fmt.Sprintf("skew(i%d+=%d*i%d)", k, st.Factor, st.Base))
		}
	}
	if t.BandLen >= 2 {
		parts = append(parts, fmt.Sprintf("tile(%dD)", t.BandLen))
	}
	var par []string
	for k, p := range t.Parallel {
		if p {
			par = append(par, fmt.Sprintf("i%d", k))
		}
	}
	if len(par) > 0 {
		parts = append(parts, "parallel("+strings.Join(par, ",")+")")
	}
	if t.SIMD {
		parts = append(parts, "simd")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
