// Package cfg reconstructs per-function control-flow graphs from the
// dynamic event stream and builds their loop-nesting forests following
// the recursive SCC characterization of Ramalingam that the paper uses
// (Sec. 3.1): each SCC containing a cycle is an outermost loop, one
// entry node becomes its header, removing the back-edges that target the
// header uncovers the next nesting level.
//
// Only executed code is represented: blocks or edges never reached by
// the profiled run do not exist here, which is precisely the property
// the paper exploits to keep analysis proportional to the executed part
// of large programs.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"polyprof/internal/isa"
	"polyprof/internal/trace"
)

// Graph is the dynamic control-flow graph of a whole program, kept as
// one structure with per-function partitions (blocks of different
// functions are never connected by CFG edges; calls produce a
// call-continuation edge inside the caller instead).
type Graph struct {
	prog *isa.Program

	nodes map[isa.BlockID]bool
	succs map[isa.BlockID][]isa.BlockID
	seen  map[edge]bool

	// Entries records the observed entry block of each executed
	// function.
	Entries map[isa.FuncID]isa.BlockID
}

type edge struct{ src, dst isa.BlockID }

// NewGraph creates an empty dynamic CFG for prog.
func NewGraph(prog *isa.Program) *Graph {
	return &Graph{
		prog:    prog,
		nodes:   map[isa.BlockID]bool{},
		succs:   map[isa.BlockID][]isa.BlockID{},
		seen:    map[edge]bool{},
		Entries: map[isa.FuncID]isa.BlockID{},
	}
}

// AddNode records that a block executed.
func (g *Graph) AddNode(b isa.BlockID) {
	if b != isa.NoBlock {
		g.nodes[b] = true
	}
}

// AddEdge records a control transfer between two blocks of the same
// function (duplicates are ignored).
func (g *Graph) AddEdge(src, dst isa.BlockID) {
	g.AddNode(src)
	g.AddNode(dst)
	e := edge{src, dst}
	if g.seen[e] {
		return
	}
	g.seen[e] = true
	g.succs[src] = append(g.succs[src], dst)
}

// HasNode reports whether the block was executed.
func (g *Graph) HasNode(b isa.BlockID) bool { return g.nodes[b] }

// Succs returns the recorded successors of a block.
func (g *Graph) Succs(b isa.BlockID) []isa.BlockID { return g.succs[b] }

// FuncBlocks returns the executed blocks of one function, sorted.
func (g *Graph) FuncBlocks(fn isa.FuncID) []isa.BlockID {
	var out []isa.BlockID
	for b := range g.nodes {
		if g.prog.Block(b).Fn == fn {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Funcs returns the executed functions, sorted.
func (g *Graph) Funcs() []isa.FuncID {
	set := map[isa.FuncID]bool{}
	for b := range g.nodes {
		set[g.prog.Block(b).Fn] = true
	}
	var out []isa.FuncID
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recorder consumes the pass-1 control event stream ("Instrumentation
// I") and populates a Graph plus the dynamic call-graph edges.
type Recorder struct {
	G *Graph

	// CallEdges holds observed (caller, callee, call-site block)
	// triples for the call-graph stage.
	CallEdges []CallEdge

	callEdgeSeen map[CallEdge]bool
	// stack of pending call sites so a Return can be attributed to the
	// block that made the call (for the call-continuation CFG edge).
	sites []isa.BlockID
}

// CallEdge is one dynamic call-graph edge with its call site.
type CallEdge struct {
	Caller isa.FuncID
	Callee isa.FuncID
	Site   isa.BlockID
}

// NewRecorder creates a recorder feeding a fresh Graph for prog.
func NewRecorder(prog *isa.Program) *Recorder {
	return &Recorder{G: NewGraph(prog), callEdgeSeen: map[CallEdge]bool{}}
}

// Control implements trace.Hook.
func (r *Recorder) Control(ev trace.ControlEvent) {
	switch ev.Kind {
	case trace.Jump:
		if ev.Src == isa.NoBlock {
			// Program entry: record main's entry block.
			r.G.AddNode(ev.Dst)
			r.G.Entries[r.G.prog.Block(ev.Dst).Fn] = ev.Dst
			return
		}
		r.G.AddEdge(ev.Src, ev.Dst)
	case trace.Call:
		r.G.AddNode(ev.Src)
		r.G.AddNode(ev.Dst)
		r.G.Entries[ev.Callee] = ev.Dst
		ce := CallEdge{Caller: ev.Caller, Callee: ev.Callee, Site: ev.Src}
		if !r.callEdgeSeen[ce] {
			r.callEdgeSeen[ce] = true
			r.CallEdges = append(r.CallEdges, ce)
		}
		r.sites = append(r.sites, ev.Src)
	case trace.Return:
		if n := len(r.sites); n > 0 {
			site := r.sites[n-1]
			r.sites = r.sites[:n-1]
			// Call-continuation edge: the call behaves as an atomic
			// instruction inside the caller's CFG.
			r.G.AddEdge(site, ev.Dst)
		}
	}
}

// Instr implements trace.Hook as a no-op (pass 1 only watches control).
func (r *Recorder) Instr(trace.InstrEvent, *isa.Instr) {}

// Loop is one CFG loop: an SCC region with a designated header.
type Loop struct {
	ID     int
	Fn     isa.FuncID
	Header isa.BlockID
	// Blocks is the loop region including all nested sub-loop blocks.
	Blocks   map[isa.BlockID]bool
	Parent   *Loop
	Children []*Loop
	Depth    int // 1 for outermost loops
}

// Contains reports whether the block belongs to the loop region.
func (l *Loop) Contains(b isa.BlockID) bool { return l.Blocks[b] }

// String renders the loop for diagnostics.
func (l *Loop) String() string {
	var ids []int
	for b := range l.Blocks {
		ids = append(ids, int(b))
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return fmt.Sprintf("L%d(header=%d depth=%d blocks={%s})", l.ID, l.Header, l.Depth, strings.Join(parts, ","))
}

// Forest is the loop-nesting forest of a whole program (union of the
// per-function forests).
type Forest struct {
	Loops []*Loop
	// Roots holds outermost loops per function.
	Roots map[isa.FuncID][]*Loop
	// headerOf maps a header block to its loop.
	headerOf map[isa.BlockID]*Loop
	// loopOf maps a block to the innermost loop containing it.
	loopOf map[isa.BlockID]*Loop
}

// LoopOf returns the innermost loop containing b, or nil.
func (f *Forest) LoopOf(b isa.BlockID) *Loop { return f.loopOf[b] }

// HeaderLoop returns the loop headed by b, or nil.
func (f *Forest) HeaderLoop(b isa.BlockID) *Loop { return f.headerOf[b] }

// IsHeader reports whether b heads a loop.
func (f *Forest) IsHeader(b isa.BlockID) bool { return f.headerOf[b] != nil }

// BuildForest computes the loop-nesting forest of every executed
// function in the dynamic CFG.
func BuildForest(g *Graph) *Forest {
	f := &Forest{
		Roots:    map[isa.FuncID][]*Loop{},
		headerOf: map[isa.BlockID]*Loop{},
		loopOf:   map[isa.BlockID]*Loop{},
	}
	for _, fn := range g.Funcs() {
		nodes := g.FuncBlocks(fn)
		adj := map[isa.BlockID][]isa.BlockID{}
		for _, b := range nodes {
			adj[b] = append([]isa.BlockID(nil), g.Succs(b)...)
		}
		roots := buildLoops(f, fn, nodes, adj, nil)
		f.Roots[fn] = roots
	}
	// Resolve innermost-loop membership: visit loops outermost-first so
	// deeper loops overwrite.
	var visit func(l *Loop)
	visit = func(l *Loop) {
		for b := range l.Blocks {
			f.loopOf[b] = l
		}
		for _, c := range l.Children {
			visit(c)
		}
	}
	// Children overwrite parents only for their own blocks; ensure
	// parents first, then children: visit does exactly that, but block
	// sets of children are subsets assigned after the parent pass.
	for _, roots := range f.Roots {
		for _, r := range roots {
			visit(r)
		}
	}
	return f
}

// buildLoops applies the recursive SCC definition to the subgraph
// (nodes, adj) and returns the loops found at this level.
func buildLoops(f *Forest, fn isa.FuncID, nodes []isa.BlockID, adj map[isa.BlockID][]isa.BlockID, parent *Loop) []*Loop {
	sccs := stronglyConnected(nodes, adj)
	var loops []*Loop
	inNodes := map[isa.BlockID]bool{}
	for _, n := range nodes {
		inNodes[n] = true
	}
	for _, scc := range sccs {
		if !hasCycle(scc, adj) {
			continue
		}
		inSCC := map[isa.BlockID]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		header := chooseHeader(scc, inSCC, nodes, adj)
		l := &Loop{
			ID:     len(f.Loops),
			Fn:     fn,
			Header: header,
			Blocks: inSCC,
			Parent: parent,
			Depth:  1,
		}
		if parent != nil {
			l.Depth = parent.Depth + 1
			parent.Children = append(parent.Children, l)
		}
		f.Loops = append(f.Loops, l)
		if prev := f.headerOf[header]; prev != nil {
			// A block heading two loops would mean an irreducible region
			// our generator never produces; keep the outermost binding.
			continue
		}
		f.headerOf[header] = l

		// Remove back-edges (edges inside the SCC targeting the header)
		// and recurse to find sub-loops.
		sub := map[isa.BlockID][]isa.BlockID{}
		for _, n := range scc {
			for _, s := range adj[n] {
				if inSCC[s] && s != header {
					sub[n] = append(sub[n], s)
				}
			}
		}
		buildLoops(f, fn, scc, sub, l)
		loops = append(loops, l)
	}
	return loops
}

// chooseHeader picks the loop header among the SCC's entry nodes: the
// smallest-ID node with an incoming edge from outside the SCC (smallest
// ID gives deterministic results; in our generated code it is also the
// natural header since blocks are numbered in emission order).
func chooseHeader(scc []isa.BlockID, inSCC map[isa.BlockID]bool, allNodes []isa.BlockID, adj map[isa.BlockID][]isa.BlockID) isa.BlockID {
	entries := map[isa.BlockID]bool{}
	for _, n := range allNodes {
		if inSCC[n] {
			continue
		}
		for _, s := range adj[n] {
			if inSCC[s] {
				entries[s] = true
			}
		}
	}
	best := isa.NoBlock
	if len(entries) > 0 {
		for e := range entries {
			if best == isa.NoBlock || e < best {
				best = e
			}
		}
		return best
	}
	for _, n := range scc {
		if best == isa.NoBlock || n < best {
			best = n
		}
	}
	return best
}

func hasCycle(scc []isa.BlockID, adj map[isa.BlockID][]isa.BlockID) bool {
	if len(scc) > 1 {
		return true
	}
	n := scc[0]
	for _, s := range adj[n] {
		if s == n {
			return true
		}
	}
	return false
}

// stronglyConnected returns the SCCs of the subgraph using an iterative
// Tarjan algorithm (iterative so deep CFGs cannot overflow the Go
// stack).
func stronglyConnected(nodes []isa.BlockID, adj map[isa.BlockID][]isa.BlockID) [][]isa.BlockID {
	index := map[isa.BlockID]int{}
	low := map[isa.BlockID]int{}
	onStack := map[isa.BlockID]bool{}
	var stack []isa.BlockID
	var sccs [][]isa.BlockID
	next := 0

	type task struct {
		node isa.BlockID
		succ int
	}
	inNodes := map[isa.BlockID]bool{}
	for _, n := range nodes {
		inNodes[n] = true
	}

	for _, start := range nodes {
		if _, done := index[start]; done {
			continue
		}
		work := []task{{start, 0}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(work) > 0 {
			t := &work[len(work)-1]
			n := t.node
			succs := adj[n]
			advanced := false
			for t.succ < len(succs) {
				s := succs[t.succ]
				t.succ++
				if !inNodes[s] {
					continue
				}
				if _, seen := index[s]; !seen {
					index[s] = next
					low[s] = next
					next++
					stack = append(stack, s)
					onStack[s] = true
					work = append(work, task{s, 0})
					advanced = true
					break
				}
				if onStack[s] && index[s] < low[n] {
					low[n] = index[s]
				}
			}
			if advanced {
				continue
			}
			// Done with n.
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].node
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				var scc []isa.BlockID
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == n {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
