package cfg

import (
	"testing"

	"polyprof/internal/isa"
	"polyprof/internal/trace"
)

// fakeProgram builds a program shell with n blocks in a single function,
// enough for graph-level tests that never execute code.
func fakeProgram(n int) *isa.Program {
	p := &isa.Program{Name: "fake", Globals: map[string]isa.Global{}}
	f := &isa.Func{ID: 0, Name: "f", Entry: 0}
	p.Funcs = []*isa.Func{f}
	for i := 0; i < n; i++ {
		b := &isa.Block{ID: isa.BlockID(i), Fn: 0, Name: string(rune('A' + i)), Index: i}
		p.Blocks = append(p.Blocks, b)
		f.Blocks = append(f.Blocks, b.ID)
	}
	return p
}

// TestFig2LoopNestingTree reproduces the paper's Fig. 2a/2b: the CFG
// A→B→C→D with back-edges D→B and D→C and exit B→E must yield loop L1
// (header B, region {B,C,D}) containing loop L2 (header C, region
// {C,D}).
func TestFig2LoopNestingTree(t *testing.T) {
	p := fakeProgram(5)
	const (
		A = isa.BlockID(0)
		B = isa.BlockID(1)
		C = isa.BlockID(2)
		D = isa.BlockID(3)
		E = isa.BlockID(4)
	)
	g := NewGraph(p)
	g.AddEdge(A, B)
	g.AddEdge(B, C)
	g.AddEdge(C, D)
	g.AddEdge(D, C)
	g.AddEdge(D, B)
	g.AddEdge(B, E)

	f := BuildForest(g)
	if len(f.Loops) != 2 {
		t.Fatalf("got %d loops, want 2: %v", len(f.Loops), f.Loops)
	}
	l1 := f.HeaderLoop(B)
	l2 := f.HeaderLoop(C)
	if l1 == nil || l2 == nil {
		t.Fatalf("missing headers: L1=%v L2=%v", l1, l2)
	}
	if l1.Depth != 1 || l2.Depth != 2 {
		t.Errorf("depths: L1=%d L2=%d, want 1 and 2", l1.Depth, l2.Depth)
	}
	if l2.Parent != l1 {
		t.Errorf("L2.Parent = %v, want L1", l2.Parent)
	}
	wantL1 := map[isa.BlockID]bool{B: true, C: true, D: true}
	for b := range wantL1 {
		if !l1.Contains(b) {
			t.Errorf("L1 missing block %d", b)
		}
	}
	if l1.Contains(A) || l1.Contains(E) {
		t.Errorf("L1 contains blocks outside the SCC: %v", l1)
	}
	if !l2.Contains(C) || !l2.Contains(D) || l2.Contains(B) {
		t.Errorf("L2 region wrong: %v", l2)
	}
	if got := f.LoopOf(D); got != l2 {
		t.Errorf("innermost loop of D = %v, want L2", got)
	}
	if got := f.LoopOf(B); got != l1 {
		t.Errorf("innermost loop of B = %v, want L1", got)
	}
	if f.LoopOf(A) != nil || f.LoopOf(E) != nil {
		t.Errorf("A/E should be outside all loops")
	}
}

func TestSelfLoop(t *testing.T) {
	p := fakeProgram(3)
	g := NewGraph(p)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	g.AddEdge(1, 2)
	f := BuildForest(g)
	if len(f.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(f.Loops))
	}
	l := f.Loops[0]
	if l.Header != 1 || len(l.Blocks) != 1 || !l.Contains(1) {
		t.Errorf("self loop wrong: %v", l)
	}
}

func TestStraightLineHasNoLoops(t *testing.T) {
	p := fakeProgram(4)
	g := NewGraph(p)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	f := BuildForest(g)
	if len(f.Loops) != 0 {
		t.Fatalf("got %d loops, want 0", len(f.Loops))
	}
}

// TestTripleNesting checks three levels of nesting are discovered in
// order.
func TestTripleNesting(t *testing.T) {
	p := fakeProgram(7)
	// 0 -> 1 -> 2 -> 3 -> 3 (self), 3 -> 2' back, 2 -> 1 back via 4,5...
	// Simpler: headers 1, 2, 3 with latches 4, 5 around them:
	// 0→1, 1→2, 2→3, 3→3 (L3), 3→2 (L2 back), 2→... exit handled by 1,
	// 3→1 (L1 back), 1→6 exit.
	g := NewGraph(p)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 3)
	g.AddEdge(3, 2)
	g.AddEdge(3, 1)
	g.AddEdge(1, 6)
	f := BuildForest(g)
	if len(f.Loops) != 3 {
		t.Fatalf("got %d loops, want 3", len(f.Loops))
	}
	l1, l2, l3 := f.HeaderLoop(1), f.HeaderLoop(2), f.HeaderLoop(3)
	if l1 == nil || l2 == nil || l3 == nil {
		t.Fatalf("missing loops: %v %v %v", l1, l2, l3)
	}
	if l1.Depth != 1 || l2.Depth != 2 || l3.Depth != 3 {
		t.Errorf("depths %d/%d/%d, want 1/2/3", l1.Depth, l2.Depth, l3.Depth)
	}
	if l3.Parent != l2 || l2.Parent != l1 {
		t.Errorf("parent chain broken")
	}
}

// TestRecorderCallContinuation checks the recorder synthesizes the
// call-continuation CFG edge from a Call/Return pair, so loops whose
// body calls functions still form CFG cycles.
func TestRecorderCallContinuation(t *testing.T) {
	p := fakeProgram(3)
	// Pretend block 1 calls a function entered at block 2 (other fn in
	// reality; the recorder only uses the stack, not block ownership).
	r := NewRecorder(p)
	r.Control(trace.ControlEvent{Kind: trace.Jump, Src: isa.NoBlock, Dst: 0})
	r.Control(trace.ControlEvent{Kind: trace.Jump, Src: 0, Dst: 1})
	r.Control(trace.ControlEvent{Kind: trace.Call, Src: 1, Dst: 2, Caller: 0, Callee: 0})
	r.Control(trace.ControlEvent{Kind: trace.Return, Src: 2, Dst: 0, Caller: 0, Callee: 0})

	found := false
	for _, s := range r.G.Succs(1) {
		if s == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing call-continuation edge 1→0; succs(1)=%v", r.G.Succs(1))
	}
	if len(r.CallEdges) != 1 {
		t.Errorf("got %d call edges, want 1", len(r.CallEdges))
	}
}
