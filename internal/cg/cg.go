// Package cg builds the dynamic call graph and its
// recursive-component-set, the call-graph analogue of the loop-nesting
// forest (paper Sec. 3.2): every top-level SCC of the call graph that
// contains a cycle forms a recursive component with a set of entry
// functions and a set of header functions; calls to and returns from
// headers drive the recursive-loop events of Alg. 2.
package cg

import (
	"fmt"
	"sort"
	"strings"

	"polyprof/internal/cfg"
	"polyprof/internal/isa"
)

// Graph is the dynamic call graph.
type Graph struct {
	nodes map[isa.FuncID]bool
	succs map[isa.FuncID][]isa.FuncID
	seen  map[[2]isa.FuncID]bool
}

// NewGraph creates an empty call graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: map[isa.FuncID]bool{},
		succs: map[isa.FuncID][]isa.FuncID{},
		seen:  map[[2]isa.FuncID]bool{},
	}
}

// FromCallEdges builds the call graph from the recorder's observed call
// edges, adding main as an isolated node if it never calls.
func FromCallEdges(main isa.FuncID, edges []cfg.CallEdge) *Graph {
	g := NewGraph()
	g.AddNode(main)
	for _, e := range edges {
		g.AddEdge(e.Caller, e.Callee)
	}
	return g
}

// AddNode records an executed function.
func (g *Graph) AddNode(f isa.FuncID) { g.nodes[f] = true }

// AddEdge records a caller→callee edge (duplicates ignored).
func (g *Graph) AddEdge(caller, callee isa.FuncID) {
	g.AddNode(caller)
	g.AddNode(callee)
	k := [2]isa.FuncID{caller, callee}
	if g.seen[k] {
		return
	}
	g.seen[k] = true
	g.succs[caller] = append(g.succs[caller], callee)
}

// Nodes returns the executed functions, sorted.
func (g *Graph) Nodes() []isa.FuncID {
	var out []isa.FuncID
	for f := range g.nodes {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Succs returns the callees of a function.
func (g *Graph) Succs(f isa.FuncID) []isa.FuncID { return g.succs[f] }

// Component is one recursive component: a top-level call-graph SCC with
// at least one cycle.
type Component struct {
	ID      int
	Funcs   map[isa.FuncID]bool
	Entries map[isa.FuncID]bool // functions called from outside the SCC
	Headers map[isa.FuncID]bool // headers-set from the iterative unrolling
}

// Contains reports whether the function belongs to the component.
func (c *Component) Contains(f isa.FuncID) bool { return c.Funcs[f] }

// String renders the component for diagnostics.
func (c *Component) String() string {
	name := func(set map[isa.FuncID]bool) string {
		var ids []int
		for f := range set {
			ids = append(ids, int(f))
		}
		sort.Ints(ids)
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprint(id)
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return fmt.Sprintf("R%d(funcs=%s entries=%s headers=%s)",
		c.ID, name(c.Funcs), name(c.Entries), name(c.Headers))
}

// ComponentSet is the recursive-component-set of a call graph.
type ComponentSet struct {
	Components []*Component
	compOf     map[isa.FuncID]*Component
}

// ComponentOf returns the recursive component containing f, or nil.
func (s *ComponentSet) ComponentOf(f isa.FuncID) *Component { return s.compOf[f] }

// IsEntry reports whether f is an entry of some recursive component.
func (s *ComponentSet) IsEntry(f isa.FuncID) bool {
	c := s.compOf[f]
	return c != nil && c.Entries[f]
}

// IsHeader reports whether f is a header of some recursive component.
func (s *ComponentSet) IsHeader(f isa.FuncID) bool {
	c := s.compOf[f]
	return c != nil && c.Headers[f]
}

// BuildComponents computes the recursive-component-set:
//
//  1. find all top-level SCCs with at least one cycle — each is a
//     component;
//  2. record the component's entry nodes;
//  3. repeatedly choose an entry node of each remaining cyclic sub-SCC,
//     add it to the component's headers-set, and remove the edges inside
//     the SCC that target it, until no cycles remain.
func BuildComponents(g *Graph) *ComponentSet {
	s := &ComponentSet{compOf: map[isa.FuncID]*Component{}}
	nodes := g.Nodes()
	adj := map[isa.FuncID][]isa.FuncID{}
	for _, n := range nodes {
		adj[n] = append([]isa.FuncID(nil), g.succs[n]...)
	}
	for _, scc := range sccsFunc(nodes, adj) {
		if !cyclic(scc, adj) {
			continue
		}
		inSCC := map[isa.FuncID]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		c := &Component{
			ID:      len(s.Components),
			Funcs:   inSCC,
			Entries: map[isa.FuncID]bool{},
			Headers: map[isa.FuncID]bool{},
		}
		for _, n := range nodes {
			if inSCC[n] {
				continue
			}
			for _, callee := range adj[n] {
				if inSCC[callee] {
					c.Entries[callee] = true
				}
			}
		}
		if len(c.Entries) == 0 {
			// Recursion reachable only from inside (e.g. main itself is
			// recursive): the smallest function is the entry.
			c.Entries[scc[0]] = true
		}

		// Iteratively unroll: choose an entry of each remaining cyclic
		// sub-SCC as a header, drop its in-edges, repeat.
		sub := map[isa.FuncID][]isa.FuncID{}
		for _, n := range scc {
			for _, callee := range adj[n] {
				if inSCC[callee] {
					sub[n] = append(sub[n], callee)
				}
			}
		}
		work := append([]isa.FuncID(nil), scc...)
		for {
			changed := false
			for _, innerSCC := range sccsFunc(work, sub) {
				if !cyclic(innerSCC, sub) {
					continue
				}
				h := chooseComponentHeader(innerSCC, work, sub, c)
				c.Headers[h] = true
				for n, ss := range sub {
					kept := ss[:0]
					for _, t := range ss {
						if t != h {
							kept = append(kept, t)
						}
					}
					sub[n] = kept
				}
				changed = true
			}
			if !changed {
				break
			}
		}
		s.Components = append(s.Components, c)
		for f := range inSCC {
			s.compOf[f] = c
		}
	}
	return s
}

// chooseComponentHeader picks the header of a cyclic sub-SCC: prefer an
// entry node of the sub-SCC (a node reached from outside it), falling
// back to a declared component entry, then the smallest ID.
func chooseComponentHeader(scc []isa.FuncID, all []isa.FuncID, adj map[isa.FuncID][]isa.FuncID, c *Component) isa.FuncID {
	inSCC := map[isa.FuncID]bool{}
	for _, n := range scc {
		inSCC[n] = true
	}
	best := isa.NoFunc
	for _, n := range all {
		if inSCC[n] {
			continue
		}
		for _, s := range adj[n] {
			if inSCC[s] && (best == isa.NoFunc || s < best) {
				best = s
			}
		}
	}
	if best != isa.NoFunc {
		return best
	}
	for _, n := range scc {
		if c.Entries[n] && (best == isa.NoFunc || n < best) {
			best = n
		}
	}
	if best != isa.NoFunc {
		return best
	}
	best = scc[0]
	for _, n := range scc {
		if n < best {
			best = n
		}
	}
	return best
}

func cyclic(scc []isa.FuncID, adj map[isa.FuncID][]isa.FuncID) bool {
	if len(scc) > 1 {
		return true
	}
	for _, s := range adj[scc[0]] {
		if s == scc[0] {
			return true
		}
	}
	return false
}

// sccsFunc is Tarjan's algorithm over function nodes (iterative).
func sccsFunc(nodes []isa.FuncID, adj map[isa.FuncID][]isa.FuncID) [][]isa.FuncID {
	index := map[isa.FuncID]int{}
	low := map[isa.FuncID]int{}
	onStack := map[isa.FuncID]bool{}
	inNodes := map[isa.FuncID]bool{}
	for _, n := range nodes {
		inNodes[n] = true
	}
	var stack []isa.FuncID
	var out [][]isa.FuncID
	next := 0

	type task struct {
		node isa.FuncID
		succ int
	}
	for _, start := range nodes {
		if _, done := index[start]; done {
			continue
		}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		work := []task{{start, 0}}
		for len(work) > 0 {
			t := &work[len(work)-1]
			n := t.node
			succs := adj[n]
			advanced := false
			for t.succ < len(succs) {
				s := succs[t.succ]
				t.succ++
				if !inNodes[s] {
					continue
				}
				if _, seen := index[s]; !seen {
					index[s], low[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					work = append(work, task{s, 0})
					advanced = true
					break
				}
				if onStack[s] && index[s] < low[n] {
					low[n] = index[s]
				}
			}
			if advanced {
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].node
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				var scc []isa.FuncID
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == n {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
				out = append(out, scc)
			}
		}
	}
	return out
}
