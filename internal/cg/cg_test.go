package cg

import (
	"testing"

	"polyprof/internal/cfg"
	"polyprof/internal/isa"
	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// TestFig2RecursiveComponents reproduces the paper's Fig. 2c/2d: call
// graph A→B, B→C, C→B, C→C must yield one component with funcs {B,C},
// entries {B}, and headers {B,C} (after choosing B, the remaining C→C
// cycle forces C into the headers-set).
func TestFig2RecursiveComponents(t *testing.T) {
	g := NewGraph()
	const (
		A = isa.FuncID(0)
		B = isa.FuncID(1)
		C = isa.FuncID(2)
	)
	g.AddEdge(A, B)
	g.AddEdge(B, C)
	g.AddEdge(C, B)
	g.AddEdge(C, C)

	s := BuildComponents(g)
	if len(s.Components) != 1 {
		t.Fatalf("got %d components, want 1", len(s.Components))
	}
	c := s.Components[0]
	if !c.Funcs[B] || !c.Funcs[C] || c.Funcs[A] {
		t.Errorf("component funcs wrong: %v", c)
	}
	if !c.Entries[B] || c.Entries[C] {
		t.Errorf("entries wrong: %v", c)
	}
	if !c.Headers[B] || !c.Headers[C] {
		t.Errorf("headers wrong: %v", c)
	}
	if s.ComponentOf(A) != nil {
		t.Errorf("A must not belong to a component")
	}
	if !s.IsEntry(B) || !s.IsHeader(C) {
		t.Errorf("entry/header predicates wrong")
	}
}

func TestSelfRecursion(t *testing.T) {
	g := NewGraph()
	g.AddEdge(0, 1) // main -> f
	g.AddEdge(1, 1) // f -> f
	s := BuildComponents(g)
	if len(s.Components) != 1 {
		t.Fatalf("got %d components, want 1", len(s.Components))
	}
	c := s.Components[0]
	if !c.Entries[1] || !c.Headers[1] || len(c.Funcs) != 1 {
		t.Errorf("self recursion component wrong: %v", c)
	}
}

func TestAcyclicCallGraphHasNoComponents(t *testing.T) {
	g := NewGraph()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	s := BuildComponents(g)
	if len(s.Components) != 0 {
		t.Fatalf("got %d components, want 0", len(s.Components))
	}
}

func TestMutualRecursion(t *testing.T) {
	g := NewGraph()
	g.AddEdge(0, 1) // main -> f
	g.AddEdge(1, 2) // f -> g
	g.AddEdge(2, 1) // g -> f
	s := BuildComponents(g)
	if len(s.Components) != 1 {
		t.Fatalf("got %d components, want 1", len(s.Components))
	}
	c := s.Components[0]
	if !c.Funcs[1] || !c.Funcs[2] {
		t.Errorf("component misses functions: %v", c)
	}
	if !c.Entries[1] || c.Entries[2] {
		t.Errorf("entries wrong: %v", c)
	}
	// Choosing header 1 breaks the only cycle: headers = {1}.
	if !c.Headers[1] || c.Headers[2] {
		t.Errorf("headers wrong: %v", c)
	}
}

// TestExample2EndToEnd runs the paper's Fig. 3 Example 2 program and
// checks the dynamically recovered component: funcs {B}, entries {B},
// headers {B}; C and D stay outside.
func TestExample2EndToEnd(t *testing.T) {
	prog := workloads.Example2()
	rec := cfg.NewRecorder(prog)
	m := vm.New(prog, rec)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	g := FromCallEdges(prog.Main, rec.CallEdges)
	s := BuildComponents(g)
	if len(s.Components) != 1 {
		t.Fatalf("got %d components, want 1: %v", len(s.Components), s.Components)
	}
	c := s.Components[0]
	b := prog.FuncByName("B")
	if len(c.Funcs) != 1 || !c.Funcs[b.ID] {
		t.Errorf("component funcs wrong: %v", c)
	}
	if !c.Entries[b.ID] || !c.Headers[b.ID] {
		t.Errorf("entries/headers wrong: %v", c)
	}
	for _, name := range []string{"C", "D", "M"} {
		f := prog.FuncByName(name)
		if s.ComponentOf(f.ID) != nil {
			t.Errorf("%s must not be in a recursive component", name)
		}
	}
}
