package workloads

import "polyprof/internal/isa"

// BFS builds the Rodinia bfs twin: frontier-based breadth-first search
// over a CSR graph.  Structural features reproduced: a convergence
// while-loop whose trip count depends on data (non-affine bound, B),
// edge-list indirection (cost[edges[e]], non-affine accesses, F), and
// a low fully-affine fraction — the frontier conditionals give every
// hot statement a data-dependent iteration domain.
func BFS() *isa.Program {
	const (
		nodes = 192
		deg   = 4
		edges = nodes * deg
	)
	pb := isa.NewProgram("bfs")
	offs := pb.Global("offsets", nodes+1)
	elist := pb.Global("edges", edges)
	cost := pb.Global("cost", nodes)
	mask := pb.Global("mask", nodes)
	newMask := pb.Global("updating_mask", nodes)
	visited := pb.Global("visited", nodes)
	doneCell := pb.Global("done", 1)

	setup := pb.Func("graph_setup", 0)
	{
		f := setup
		f.SetFile("bfs.cpp")
		f.At(60)
		lcg := newLCG(f, 11)
		fillIota(f, "offs", offs, deg, 0)
		fillRandomI(f, lcg, "edges", elist, nodes)
		cB, mB, nB, vB := f.IConst(cost.Base), f.IConst(mask.Base), f.IConst(newMask.Base), f.IConst(visited.Base)
		f.Loop("reset", f.IConst(0), f.IConst(nodes), 1, func(i isa.Reg) {
			f.StoreIdx(cB, i, 0, f.IConst(-1))
			f.StoreIdx(mB, i, 0, f.IConst(0))
			f.StoreIdx(nB, i, 0, f.IConst(0))
			f.StoreIdx(vB, i, 0, f.IConst(0))
		})
		// Source node 0.
		f.Store(cB, 0, f.IConst(0))
		f.Store(mB, 0, f.IConst(1))
		f.Store(vB, 0, f.IConst(1))
		f.RetVoid()
	}

	kernel := pb.Func("bfs_kernel", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("bfs.cpp")
		f.At(137)
		oB := f.IConst(offs.Base)
		eB := f.IConst(elist.Base)
		cB := f.IConst(cost.Base)
		mB := f.IConst(mask.Base)
		nB := f.IConst(newMask.Base)
		vB := f.IConst(visited.Base)
		dB := f.IConst(doneCell.Base)
		f.Store(dB, 0, f.IConst(0))
		f.While("front", func() isa.Reg {
			return f.CmpEQ(f.Load(dB, 0), f.IConst(0))
		}, func() {
			f.Store(dB, 0, f.IConst(1))
			f.At(140)
			f.Loop("Ltid", f.IConst(0), f.IConst(nodes), 1, func(tid isa.Reg) {
				inFront := f.CmpEQ(f.LoadIdx(mB, tid, 0), f.IConst(1))
				f.If(inFront, func() {
					f.StoreIdx(mB, tid, 0, f.IConst(0))
					myCost := f.LoadIdx(cB, tid, 0)
					lo := f.LoadIdx(oB, tid, 0)
					hi := f.LoadIdx(oB, tid, 1)
					f.At(145)
					f.Loop("Ledge", lo, hi, 1, func(e isa.Reg) {
						id := f.LoadIdx(eB, e, 0)
						unseen := f.CmpEQ(f.LoadIdx(vB, id, 0), f.IConst(0))
						f.If(unseen, func() {
							f.StoreIdx(cB, id, 0, f.Add(myCost, f.IConst(1)))
							f.StoreIdx(nB, id, 0, f.IConst(1))
						}, nil)
					})
				}, nil)
			})
			f.At(155)
			f.Loop("Lupd", f.IConst(0), f.IConst(nodes), 1, func(tid isa.Reg) {
				pend := f.CmpEQ(f.LoadIdx(nB, tid, 0), f.IConst(1))
				f.If(pend, func() {
					f.StoreIdx(mB, tid, 0, f.IConst(1))
					f.StoreIdx(vB, tid, 0, f.IConst(1))
					f.StoreIdx(nB, tid, 0, f.IConst(0))
					f.Store(dB, 0, f.IConst(0))
				}, nil)
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("bfs.cpp")
	m.At(20)
	m.Call(setup.ID())
	m.At(137)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// BTree builds the Rodinia b+tree twin: point queries descending a
// statically packed order-4 B+tree.  Features: data-dependent descent
// (while loop, B), child-pointer indirection (F), and shallow affine
// fraction from the per-level key scans.
func BTree() *isa.Program {
	const (
		order   = 4
		levels  = 4
		nodes   = 1 + order + order*order + order*order*order
		queries = 150
	)
	pb := isa.NewProgram("b+tree")
	keys := pb.Global("node_keys", nodes*order)
	kids := pb.Global("node_children", nodes*order)
	leaves := pb.Global("leaf_values", nodes*order)
	qry := pb.Global("queries", queries)
	out := pb.Global("answers", queries)

	setup := pb.Func("tree_setup", 0)
	{
		f := setup
		f.SetFile("main.c")
		f.At(2000)
		lcg := newLCG(f, 3)
		// Keys ascending per node, children layered breadth-first.
		fillIota(f, "keys", keys, 7, 1)
		kB := f.IConst(kids.Base)
		f.Loop("kids", f.IConst(0), f.IConst(int64(nodes*order)), 1, func(i isa.Reg) {
			// child(node n, slot s) = n*order + s + 1, wrapped into range.
			f.StoreIdx(kB, i, 0, f.Mod(f.Add(i, f.IConst(1)), f.IConst(nodes)))
		})
		fillRandomF(f, lcg, "vals", leaves)
		fillRandomI(f, lcg, "qry", qry, nodes*order*7)
		f.RetVoid()
	}

	kernel := pb.Func("kernel_query", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("main.c")
		f.At(2345)
		kB := f.IConst(keys.Base)
		cB := f.IConst(kids.Base)
		lB := f.IConst(leaves.Base)
		qB := f.IConst(qry.Base)
		oB := f.IConst(out.Base)
		f.Loop("Lq", f.IConst(0), f.IConst(queries), 1, func(q isa.Reg) {
			target := f.LoadIdx(qB, q, 0)
			node := f.NewReg()
			f.SetI(node, 0)
			depth := f.NewReg()
			f.SetI(depth, 0)
			f.While("descend", func() isa.Reg {
				// Data-dependent descent: stop at sentinel children (B).
				inTree := f.CmpGE(node, f.IConst(0))
				return f.And(f.CmpLT(depth, f.IConst(levels)), inTree)
			}, func() {
				slot := f.NewReg()
				f.SetI(slot, 0)
				base := f.Mul(node, f.IConst(order))
				f.At(2350)
				f.Loop("Lscan", f.IConst(0), f.IConst(order), 1, func(s isa.Reg) {
					k := f.LoadIdx(kB, f.Add(base, s), 0)
					le := f.CmpLE(k, target)
					f.If(le, func() { f.Mov(slot, s) }, nil)
				})
				f.Mov(node, f.LoadIdx(cB, f.Add(base, slot), 0))
				f.AddTo(depth, depth, f.IConst(1))
			})
			v := f.LoadIdx(lB, f.Mod(node, f.IConst(int64(nodes))), 0)
			f.StoreIdx(oB, q, 0, v)
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("main.c")
	m.At(100)
	m.Call(setup.ID())
	m.At(2345)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// CFD builds the Rodinia cfd (euler3d_cpu) twin: flux computation over
// unstructured cells with neighbor indirection.  The neighbor loop is
// fully unrolled as the compiler does (declared source depth 5, binary
// depth 4 — the paper's ld-src/ld-bin gap), densities are updated via a
// Runge-Kutta stepping loop, and the only static-analysis defect is the
// non-affine neighbor access (F).
func CFD() *isa.Program {
	const (
		cells = 256
		nnb   = 4
		vars  = 5
		iters = 2
		rk    = 3
	)
	pb := isa.NewProgram("cfd")
	variables := pb.Global("variables", cells*vars)
	oldVars := pb.Global("old_variables", cells*vars)
	fluxes := pb.Global("fluxes", cells*vars)
	neigh := pb.Global("elements_surrounding_elements", cells*nnb)
	areas := pb.Global("areas", cells)

	setup := pb.Func("cfd_setup", 0)
	{
		f := setup
		f.SetFile("euler3d_cpu.cpp")
		f.At(100)
		lcg := newLCG(f, 5)
		fillRandomF(f, lcg, "vars", variables)
		fillRandomI(f, lcg, "nb", neigh, cells)
		fillRandomF(f, lcg, "areas", areas)
		f.RetVoid()
	}

	flux := pb.Func("compute_flux", 0)
	flux.SetSrcDepth(5) // source: iters, rk, cells, neighbors, vars
	{
		f := flux
		f.SetFile("euler3d_cpu.cpp")
		f.At(480)
		vB := f.IConst(variables.Base)
		fB := f.IConst(fluxes.Base)
		nB := f.IConst(neigh.Base)
		aB := f.IConst(areas.Base)
		f.Loop("Li", f.IConst(0), f.IConst(cells), 1, func(i isa.Reg) {
			area := f.FLoadIdx(aB, i, 0)
			f.At(484)
			f.Loop("Lv", f.IConst(0), f.IConst(vars), 1, func(v isa.Reg) {
				self := f.FLoadIdx(vB, f.Add(f.Mul(i, f.IConst(vars)), v), 0)
				acc := f.NewReg()
				f.FMovTo(acc, self)
				// Neighbor loop fully unrolled (binary loses one depth).
				for nb := int64(0); nb < nnb; nb++ {
					id := f.LoadIdx(nB, f.Add(f.Mul(i, f.IConst(nnb)), f.IConst(nb)), 0)
					nv := f.FLoadIdx(vB, f.Add(f.Mul(id, f.IConst(vars)), v), 0)
					f.FMovTo(acc, f.FAdd(acc, f.FMul(nv, area)))
				}
				f.FStoreIdx(fB, f.Add(f.Mul(i, f.IConst(vars)), v), 0, acc)
			})
		})
		f.RetVoid()
	}

	step := pb.Func("time_step", 0)
	{
		f := step
		f.SetFile("euler3d_cpu.cpp")
		f.At(510)
		vB := f.IConst(variables.Base)
		oB := f.IConst(oldVars.Base)
		fB := f.IConst(fluxes.Base)
		f.Loop("Ls", f.IConst(0), f.IConst(cells*vars), 1, func(i isa.Reg) {
			o := f.FLoadIdx(oB, i, 0)
			fl := f.FLoadIdx(fB, i, 0)
			f.FStoreIdx(vB, i, 0, f.FAdd(o, f.FMul(fl, f.FConst(0.05))))
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	{
		f := m
		f.SetFile("euler3d_cpu.cpp")
		f.At(20)
		f.Call(setup.ID())
		f.At(470)
		vB := f.IConst(variables.Base)
		oB := f.IConst(oldVars.Base)
		f.Loop("Liter", f.IConst(0), f.IConst(iters), 1, func(it isa.Reg) {
			f.Loop("Lcopy", f.IConst(0), f.IConst(cells*vars), 1, func(i isa.Reg) {
				f.FStoreIdx(oB, i, 0, f.FLoadIdx(vB, i, 0))
			})
			f.Loop("Lrk", f.IConst(0), f.IConst(rk), 1, func(r isa.Reg) {
				f.Call(flux.ID())
				f.Call(step.ID())
			})
		})
		f.Halt()
	}
	pb.SetMain(m)
	return pb.MustBuild()
}

// Heartwall builds the Rodinia heartwall twin: template matching of
// tracking points against video frames.  Features: a deep (5-level)
// nest, hand-linearized arrays indexed through modulo expressions (the
// reason the paper reports ~1% affine operations), point coordinates
// loaded from memory (non-affine bounds, B), an opaque libc call inside
// the kernel (R), an early-exit convergence helper (C), and indirect
// accesses (F).
func Heartwall() *isa.Program {
	const (
		frames = 8
		points = 8
		tmplH  = 6
		tmplW  = 6
		imgW   = 64
		imgH   = 32
	)
	pb := isa.NewProgram("heartwall")
	img := pb.Global("frame", imgW*imgH)
	tmpl := pb.Global("templates", points*tmplH*tmplW)
	px := pb.Global("point_x", points)
	py := pb.Global("point_y", points)
	score := pb.Global("scores", points)
	seed := pb.Global("rand_seed", 1)
	rand := libcRand(pb, seed)

	// check_convergence returns early from inside its scan loop (complex
	// CFG for the static baseline).
	conv := pb.Func("check_convergence", 1)
	{
		f := conv
		f.SetFile("main.c")
		f.At(500)
		sB := f.IConst(score.Base)
		limit := f.Arg(0)
		f.Loop("Lc", f.IConst(0), f.IConst(points), 1, func(p isa.Reg) {
			s := f.LoadIdx(sB, p, 0)
			over := f.CmpGT(s, limit)
			f.If(over, func() {
				f.Ret(f.IConst(0)) // early return inside the loop: C
			}, nil)
		})
		f.Ret(f.IConst(1))
	}

	kernel := pb.Func("heartwall_kernel", 0)
	kernel.SetSrcDepth(7)
	{
		f := kernel
		f.SetFile("main.c")
		f.At(536)
		iB := f.IConst(img.Base)
		tB := f.IConst(tmpl.Base)
		xB := f.IConst(px.Base)
		yB := f.IConst(py.Base)
		sB := f.IConst(score.Base)
		f.Loop("Lframe", f.IConst(0), f.IConst(frames), 1, func(fr isa.Reg) {
			// Per-frame jitter from an opaque libc call (R).
			jit := f.Mod(f.Call(rand), f.IConst(3))
			f.Loop("Lpoint", f.IConst(0), f.IConst(points), 1, func(p isa.Reg) {
				x0 := f.LoadIdx(xB, p, 0) // data-dependent window origin
				y0 := f.LoadIdx(yB, p, 0)
				acc := f.NewReg()
				f.SetI(acc, 0)
				f.At(540)
				f.Loop("Lr", f.IConst(0), f.IConst(tmplH), 1, func(r isa.Reg) {
					f.Loop("Lc", f.IConst(0), f.IConst(tmplW), 1, func(c isa.Reg) {
						// Hand-linearized + modulo wrapped image index: the
						// folded access is not affine.
						row := f.Add(y0, r)
						col := f.Add(f.Add(x0, c), jit)
						lin := f.Mod(f.Add(f.Mul(row, f.IConst(imgW)), col), f.IConst(imgW*imgH))
						pix := f.LoadIdx(iB, lin, 0)
						tIdx := f.Add(f.Mul(p, f.IConst(tmplH*tmplW)), f.Add(f.Mul(r, f.IConst(tmplW)), c))
						tv := f.LoadIdx(tB, tIdx, 0)
						d := f.Sub(pix, tv)
						f.AddTo(acc, acc, f.Mul(d, d))
					})
				})
				f.StoreIdx(sB, p, 0, acc)
			})
			f.Call(conv.ID(), f.IConst(1000000))
		})
		f.RetVoid()
	}

	setup := pb.Func("heartwall_setup", 0)
	{
		f := setup
		f.SetFile("main.c")
		f.At(100)
		lcg := newLCG(f, 17)
		fillRandomI(f, lcg, "img", img, 255)
		fillRandomI(f, lcg, "tmpl", tmpl, 255)
		fillRandomI(f, lcg, "px", px, imgW-tmplW-4)
		fillRandomI(f, lcg, "py", py, imgH-tmplH-4)
		f.Store(f.IConst(seed.Base), 0, f.IConst(99))
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("main.c")
	m.At(30)
	m.Call(setup.ID())
	m.At(536)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}
