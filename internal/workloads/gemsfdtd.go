package workloads

import "polyprof/internal/isa"

// GemsFDTD builds the twin of the SPEC CPU2006 GemsFDTD case study
// (paper Sec. 7, case study II): a 3D finite-difference time-domain
// solver whose updateH_homo and updateE_homo functions each contain a
// fully parallel, fully tilable 3D loop nest over the field grids.  The
// paper's feedback for all five hot nests is "parallel and tilable";
// tiling all dimensions (tile size 32) plus parallelizing the outermost
// loop gave 2.6x / 1.9x.  The grids here exceed the modeled L1 by a
// wide margin so the replay-based cost model reproduces the tiling
// benefit.
func GemsFDTD() *isa.Program {
	const (
		nx    = 20
		ny    = 20
		nz    = 20
		steps = 2
		vol   = nx * ny * nz
	)
	pb := isa.NewProgram("gemsfdtd")
	hx := pb.Global("Hx", vol)
	hy := pb.Global("Hy", vol)
	hz := pb.Global("Hz", vol)
	ex := pb.Global("Ex", vol)
	ey := pb.Global("Ey", vol)
	ez := pb.Global("Ez", vol)

	lin := func(f *isa.FuncBuilder, i, j, k isa.Reg) isa.Reg {
		return f.Add(f.Add(f.Mul(i, f.IConst(ny*nz)), f.Mul(j, f.IConst(nz))), k)
	}

	updateH := pb.Func("updateH_homo", 0)
	updateH.SetSrcDepth(3)
	{
		f := updateH
		f.SetFile("update.F90")
		f.At(106)
		hxB, hyB, hzB := f.IConst(hx.Base), f.IConst(hy.Base), f.IConst(hz.Base)
		exB, eyB, ezB := f.IConst(ex.Base), f.IConst(ey.Base), f.IConst(ez.Base)
		c := f.FConst(0.25)
		f.Loop("Li", f.IConst(0), f.IConst(nx-1), 1, func(i isa.Reg) {
			f.At(107)
			f.Loop("Lj", f.IConst(0), f.IConst(ny-1), 1, func(j isa.Reg) {
				f.At(121)
				f.Loop("Lk", f.IConst(0), f.IConst(nz-1), 1, func(k isa.Reg) {
					p := lin(f, i, j, k)
					// Hx -= c * ((Ez(i,j+1,k) - Ez) - (Ey(i,j,k+1) - Ey))
					ez0 := f.FLoadIdx(ezB, p, 0)
					ezJ := f.FLoadIdx(ezB, p, nz)
					ey0 := f.FLoadIdx(eyB, p, 0)
					eyK := f.FLoadIdx(eyB, p, 1)
					curlX := f.FSub(f.FSub(ezJ, ez0), f.FSub(eyK, ey0))
					f.FStoreIdx(hxB, p, 0, f.FSub(f.FLoadIdx(hxB, p, 0), f.FMul(c, curlX)))
					// Hy -= c * ((Ex(i,j,k+1) - Ex) - (Ez(i+1,j,k) - Ez))
					ex0 := f.FLoadIdx(exB, p, 0)
					exK := f.FLoadIdx(exB, p, 1)
					ezI := f.FLoadIdx(ezB, p, ny*nz)
					curlY := f.FSub(f.FSub(exK, ex0), f.FSub(ezI, ez0))
					f.FStoreIdx(hyB, p, 0, f.FSub(f.FLoadIdx(hyB, p, 0), f.FMul(c, curlY)))
					// Hz -= c * ((Ey(i+1,j,k) - Ey) - (Ex(i,j+1,k) - Ex))
					eyI := f.FLoadIdx(eyB, p, ny*nz)
					exJ := f.FLoadIdx(exB, p, nz)
					curlZ := f.FSub(f.FSub(eyI, ey0), f.FSub(exJ, ex0))
					f.FStoreIdx(hzB, p, 0, f.FSub(f.FLoadIdx(hzB, p, 0), f.FMul(c, curlZ)))
				})
			})
		})
		f.RetVoid()
	}

	updateE := pb.Func("updateE_homo", 0)
	updateE.SetSrcDepth(3)
	{
		f := updateE
		f.SetFile("update.F90")
		f.At(240)
		hxB, hyB, hzB := f.IConst(hx.Base), f.IConst(hy.Base), f.IConst(hz.Base)
		exB, eyB, ezB := f.IConst(ex.Base), f.IConst(ey.Base), f.IConst(ez.Base)
		c := f.FConst(0.25)
		f.Loop("Li", f.IConst(1), f.IConst(nx), 1, func(i isa.Reg) {
			f.At(241)
			f.Loop("Lj", f.IConst(1), f.IConst(ny), 1, func(j isa.Reg) {
				f.At(244)
				f.Loop("Lk", f.IConst(1), f.IConst(nz), 1, func(k isa.Reg) {
					p := lin(f, i, j, k)
					hz0 := f.FLoadIdx(hzB, p, 0)
					hzJ := f.FLoadIdx(hzB, p, -nz)
					hy0 := f.FLoadIdx(hyB, p, 0)
					hyK := f.FLoadIdx(hyB, p, -1)
					curlX := f.FSub(f.FSub(hz0, hzJ), f.FSub(hy0, hyK))
					f.FStoreIdx(exB, p, 0, f.FAdd(f.FLoadIdx(exB, p, 0), f.FMul(c, curlX)))
					hx0 := f.FLoadIdx(hxB, p, 0)
					hxK := f.FLoadIdx(hxB, p, -1)
					hzI := f.FLoadIdx(hzB, p, -ny*nz)
					curlY := f.FSub(f.FSub(hx0, hxK), f.FSub(hz0, hzI))
					f.FStoreIdx(eyB, p, 0, f.FAdd(f.FLoadIdx(eyB, p, 0), f.FMul(c, curlY)))
					hyI := f.FLoadIdx(hyB, p, -ny*nz)
					hxJ := f.FLoadIdx(hxB, p, -nz)
					curlZ := f.FSub(f.FSub(hy0, hyI), f.FSub(hx0, hxJ))
					f.FStoreIdx(ezB, p, 0, f.FAdd(f.FLoadIdx(ezB, p, 0), f.FMul(c, curlZ)))
				})
			})
		})
		f.RetVoid()
	}

	setup := pb.Func("gems_setup", 0)
	{
		f := setup
		f.SetFile("update.F90")
		f.At(40)
		lcg := newLCG(f, 73)
		for _, fg := range []struct {
			lbl string
			g   isa.Global
		}{{"hx", hx}, {"hy", hy}, {"hz", hz}, {"ex", ex}, {"ey", ey}, {"ez", ez}} {
			fillRandomF(f, lcg, fg.lbl, fg.g)
		}
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("update.F90")
	m.At(20)
	m.Call(setup.ID())
	m.At(100)
	m.Loop("Ltime", m.IConst(0), m.IConst(steps), 1, func(isa.Reg) {
		m.Call(updateH.ID())
		m.Call(updateE.ID())
	})
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}
