package workloads

import "polyprof/internal/isa"

// NW builds the Rodinia nw (Needleman–Wunsch) twin: the classic 2D
// dynamic-programming recurrence
//
//	score[i][j] = max(score[i-1][j-1] + ref, score[i-1][j] - p,
//	              score[i][j-1] - p)
//
// whose dependence distances (1,1), (1,0), (0,1) make neither loop
// parallel but the 2D band fully permutable — coarse-grain parallelism
// needs the wavefront (skewed) schedule, the paper's skew=Y entry.  The
// matrix is linearized with a parametric dimension (F) and the region
// initializes inputs through an opaque libc call (R).
func NW() *isa.Program {
	const n = 28
	pb := isa.NewProgram("nw")
	score := pb.Global("input_itemsets", n*n)
	ref := pb.Global("reference", n*n)
	seed := pb.Global("rand_seed", 1)
	rand := libcRand(pb, seed)

	kernel := pb.Func("nw_kernel", 2)
	kernel.SetSrcDepth(2)
	{
		f := kernel
		f.SetFile("needle.cpp")
		sB, dim := f.Arg(0), f.Arg(1)
		f.At(305)
		rB := f.IConst(ref.Base)
		// Opaque reference-matrix initialization (R).
		f.Loop("Lrand", f.IConst(0), f.IConst(n*n), 1, func(i isa.Reg) {
			f.StoreIdx(rB, i, 0, f.Mod(f.Call(rand), f.IConst(10)))
		})
		penalty := f.IConst(1)
		f.At(308)
		f.Loop("Li", f.IConst(1), dim, 1, func(i isa.Reg) {
			f.Loop("Lj", f.IConst(1), dim, 1, func(j isa.Reg) {
				lin := f.Add(f.Mul(i, dim), j) // parametric linearization (F)
				nwv := f.Add(f.LoadIdx(sB, f.Sub(lin, f.Add(dim, f.IConst(1))), 0),
					f.LoadIdx(rB, lin, 0))
				up := f.Sub(f.LoadIdx(sB, f.Sub(lin, dim), 0), penalty)
				left := f.Sub(f.LoadIdx(sB, f.Sub(lin, f.IConst(1)), 0), penalty)
				f.StoreIdx(sB, lin, 0, f.MaxI(f.MaxI(nwv, up), left))
			})
		})
		f.RetVoid()
	}

	setup := pb.Func("nw_setup", 0)
	{
		f := setup
		f.SetFile("needle.cpp")
		f.At(40)
		sB := f.IConst(score.Base)
		f.Loop("init", f.IConst(0), f.IConst(n*n), 1, func(i isa.Reg) {
			f.StoreIdx(sB, i, 0, f.IConst(0))
		})
		f.Store(f.IConst(seed.Base), 0, f.IConst(13))
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("needle.cpp")
	m.At(20)
	m.Call(setup.ID())
	m.At(308)
	m.Call(kernel.ID(), m.IConst(score.Base), m.IConst(n))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// ParticleFilter builds the Rodinia particlefilter twin: sequential
// Monte-Carlo tracking with a weight nest (affine) and a resampling
// step that walks the CDF with an early-exit helper (C) and scatters
// through an index array (F).
func ParticleFilter() *isa.Program {
	const (
		particles = 64
		steps     = 3
	)
	pb := isa.NewProgram("particlefilter")
	x := pb.Global("arrayX", particles)
	w := pb.Global("weights", particles)
	cdf := pb.Global("CDF", particles)
	idx := pb.Global("index", particles)
	xNew := pb.Global("xj", particles)

	// find_index(cdfBase, u): scans the CDF and returns early (C).
	find := pb.Func("find_index", 2)
	{
		f := find
		f.SetFile("ex_particle_seq.c")
		f.At(450)
		cB, u := f.Arg(0), f.Arg(1)
		f.Loop("Lfind", f.IConst(0), f.IConst(particles), 1, func(i isa.Reg) {
			ge := f.FCmpLE(u, f.FLoadIdx(cB, i, 0))
			f.If(ge, func() { f.Ret(i) }, nil)
		})
		f.Ret(f.IConst(particles - 1))
	}

	kernel := pb.Func("particle_kernel", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("ex_particle_seq.c")
		f.At(593)
		xB := f.IConst(x.Base)
		wB := f.IConst(w.Base)
		cB := f.IConst(cdf.Base)
		iB := f.IConst(idx.Base)
		nB := f.IConst(xNew.Base)
		f.Loop("Lt", f.IConst(0), f.IConst(steps), 1, func(t isa.Reg) {
			// Likelihood/weight update (affine, parallel).
			f.Loop("Lw", f.IConst(0), f.IConst(particles), 1, func(p isa.Reg) {
				xv := f.FLoadIdx(xB, p, 0)
				f.FStoreIdx(wB, p, 0, f.FDiv(f.FConst(1), f.FAdd(f.FConst(1), f.FMul(xv, xv))))
			})
			// Prefix-sum CDF (serial recurrence).
			run := f.NewReg()
			f.SetF(run, 0)
			f.Loop("Lcdf", f.IConst(0), f.IConst(particles), 1, func(p isa.Reg) {
				f.FMovTo(run, f.FAdd(run, f.FLoadIdx(wB, p, 0)))
				f.FStoreIdx(cB, p, 0, run)
			})
			total := f.NewReg()
			f.FMovTo(total, run)
			// Systematic resampling via the early-exit scan (C) and an
			// index-array gather (F).
			f.At(610)
			f.Loop("Lres", f.IConst(0), f.IConst(particles), 1, func(p isa.Reg) {
				u := f.FMul(f.FDiv(f.I2F(p), f.FConst(particles)), total)
				pick := f.Call(find.ID(), cB, u)
				f.StoreIdx(iB, p, 0, pick)
				v := f.FLoadIdx(xB, pick, 0)
				f.FStoreIdx(nB, p, 0, v)
			})
			f.Loop("Lcopy", f.IConst(0), f.IConst(particles), 1, func(p isa.Reg) {
				moved := f.FAdd(f.FLoadIdx(nB, p, 0), f.FConst(0.05))
				f.FStoreIdx(xB, p, 0, moved)
			})
		})
		f.RetVoid()
	}

	setup := pb.Func("pf_setup", 0)
	{
		f := setup
		f.SetFile("ex_particle_seq.c")
		f.At(40)
		lcg := newLCG(f, 59)
		fillRandomF(f, lcg, "x", x)
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("ex_particle_seq.c")
	m.At(20)
	m.Call(setup.ID())
	m.At(593)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Pathfinder builds the Rodinia pathfinder twin: a row-by-row
// grid DP using two result rows whose base pointers are swapped through
// a pointer table inside the time loop (P — base pointer not loop
// invariant) and a MIN-clamped trip count (B).  The carried row-to-row
// dependencies leave no parallel dimension; tiling requires the
// wavefront (skew=Y in the paper's table).
func Pathfinder() *isa.Program {
	const (
		cols = 64
		rows = 16
	)
	pb := isa.NewProgram("pathfinder")
	wall := pb.Global("wall", rows*cols)
	rowA := pb.Global("rowA", cols)
	rowB := pb.Global("rowB", cols)
	ptrs := pb.Global("row_ptrs", 2)

	// pathfinder_kernel(nrows): the trip count is clamped with MIN (B).
	kernel := pb.Func("pathfinder_kernel", 1)
	kernel.SetSrcDepth(2)
	{
		f := kernel
		f.SetFile("pathfinder.cpp")
		nrows := f.Arg(0)
		f.At(99)
		wB := f.IConst(wall.Base)
		pB := f.IConst(ptrs.Base)
		tEnd := f.MinI(nrows, f.IConst(rows)) // clamped bound (B)
		f.Loop("Lt", f.IConst(1), tEnd, 1, func(t isa.Reg) {
			src := f.LoadIdx(pB, f.IConst(0), 0)
			dst := f.LoadIdx(pB, f.IConst(1), 0)
			f.At(103)
			// Interior columns with halo padding: neighbor offsets stay
			// affine.
			f.Loop("Lc", f.IConst(1), f.IConst(cols-1), 1, func(c isa.Reg) {
				left := f.LoadIdx(src, c, -1)
				mid := f.LoadIdx(src, c, 0)
				right := f.LoadIdx(src, c, 1)
				best := f.MinI(f.MinI(left, mid), right)
				wv := f.LoadIdx(wB, f.Add(f.Mul(t, f.IConst(cols)), c), 0)
				f.StoreIdx(dst, c, 0, f.Add(best, wv))
			})
			// Swap the row pointers in place (P).
			a := f.LoadIdx(pB, f.IConst(0), 0)
			b := f.LoadIdx(pB, f.IConst(1), 0)
			f.StoreIdx(pB, f.IConst(0), 0, b)
			f.StoreIdx(pB, f.IConst(1), 0, a)
		})
		f.RetVoid()
	}

	setup := pb.Func("pathfinder_setup", 0)
	{
		f := setup
		f.SetFile("pathfinder.cpp")
		f.At(40)
		lcg := newLCG(f, 61)
		fillRandomI(f, lcg, "wall", wall, 10)
		aB := f.IConst(rowA.Base)
		wB := f.IConst(wall.Base)
		f.Loop("seed", f.IConst(0), f.IConst(cols), 1, func(c isa.Reg) {
			f.StoreIdx(aB, c, 0, f.LoadIdx(wB, c, 0))
		})
		p := f.IConst(ptrs.Base)
		f.Store(p, 0, f.IConst(rowA.Base))
		f.Store(p, 1, f.IConst(rowB.Base))
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("pathfinder.cpp")
	m.At(20)
	m.Call(setup.ID())
	m.At(99)
	m.Call(kernel.ID(), m.IConst(rows))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// sradCommon emits one SRAD-style diffusion program.  Both Rodinia srad
// versions share the shape: neighbor *index arrays* (iN/iS/jW/jE) that
// are affine at runtime — the showcase for dynamic profiling beating
// static analysis (paper: 99% affine dynamically, while the static
// baseline reports F for the loaded subscripts) — plus a diffusion
// coefficient computed through an opaque exp call (R).  Both 2D phase
// nests are fully parallel and tilable.
func sradCommon(name, file string, rows, cols, iters int64, split bool) *isa.Program {
	pb := isa.NewProgram(name)
	img := pb.Global("J", rows*cols)
	coef := pb.Global("c", rows*cols)
	iN := pb.Global("iN", rows)
	iS := pb.Global("iS", rows)
	jW := pb.Global("jW", cols)
	jE := pb.Global("jE", cols)
	expFn := libcExpF(pb)

	phase1 := func(f *isa.FuncBuilder) {
		jB := f.IConst(img.Base)
		cB := f.IConst(coef.Base)
		iNB, iSB := f.IConst(iN.Base), f.IConst(iS.Base)
		jWB, jEB := f.IConst(jW.Base), f.IConst(jE.Base)
		f.Loop("Lp1i", f.IConst(0), f.IConst(rows), 1, func(i isa.Reg) {
			f.Loop("Lp1j", f.IConst(0), f.IConst(cols), 1, func(j isa.Reg) {
				up := f.LoadIdx(iNB, i, 0)
				dn := f.LoadIdx(iSB, i, 0)
				lf := f.LoadIdx(jWB, j, 0)
				rt := f.LoadIdx(jEB, j, 0)
				lin := f.Add(f.Mul(i, f.IConst(cols)), j)
				c0 := f.FLoadIdx(jB, lin, 0)
				cu := f.FLoadIdx(jB, f.Add(f.Mul(up, f.IConst(cols)), j), 0)
				cd := f.FLoadIdx(jB, f.Add(f.Mul(dn, f.IConst(cols)), j), 0)
				cl := f.FLoadIdx(jB, f.Add(f.Mul(i, f.IConst(cols)), lf), 0)
				cr := f.FLoadIdx(jB, f.Add(f.Mul(i, f.IConst(cols)), rt), 0)
				g := f.FSub(f.FAdd(f.FAdd(cu, cd), f.FAdd(cl, cr)), f.FMul(f.FConst(4), c0))
				d := f.Call(expFn, f.FAbs(g)) // R: opaque exp in the kernel
				f.FStoreIdx(cB, lin, 0, d)
			})
		})
	}
	phase2 := func(f *isa.FuncBuilder) {
		jB := f.IConst(img.Base)
		cB := f.IConst(coef.Base)
		iSB := f.IConst(iS.Base)
		jEB := f.IConst(jE.Base)
		f.Loop("Lp2i", f.IConst(0), f.IConst(rows), 1, func(i isa.Reg) {
			f.Loop("Lp2j", f.IConst(0), f.IConst(cols), 1, func(j isa.Reg) {
				dn := f.LoadIdx(iSB, i, 0)
				rt := f.LoadIdx(jEB, j, 0)
				lin := f.Add(f.Mul(i, f.IConst(cols)), j)
				cc := f.FLoadIdx(cB, lin, 0)
				cs := f.FLoadIdx(cB, f.Add(f.Mul(dn, f.IConst(cols)), j), 0)
				ce := f.FLoadIdx(cB, f.Add(f.Mul(i, f.IConst(cols)), rt), 0)
				div := f.FAdd(cc, f.FAdd(cs, ce))
				old := f.FLoadIdx(jB, lin, 0)
				f.FStoreIdx(jB, lin, 0, f.FAdd(old, f.FMul(f.FConst(0.05), div)))
			})
		})
	}

	var region *isa.FuncBuilder
	if split {
		p1 := pb.Func("srad_phase1", 0)
		p1.SetFile(file)
		p1.At(250)
		phase1(p1)
		p1.RetVoid()
		p2 := pb.Func("srad_phase2", 0)
		p2.SetFile(file)
		p2.At(290)
		phase2(p2)
		p2.RetVoid()
		region = pb.Func("srad_main_loop", 0)
		region.SetFile(file)
		region.At(241)
		region.SetSrcDepth(3)
		region.Loop("Liter", region.IConst(0), region.IConst(iters), 1, func(isa.Reg) {
			region.Call(p1.ID())
			region.Call(p2.ID())
		})
		region.RetVoid()
	} else {
		region = pb.Func("srad_kernel", 0)
		region.SetFile(file)
		region.At(114)
		region.SetSrcDepth(3)
		region.Loop("Liter", region.IConst(0), region.IConst(iters), 1, func(isa.Reg) {
			phase1(region)
			phase2(region)
		})
		region.RetVoid()
	}

	setup := pb.Func("srad_setup", 0)
	{
		f := setup
		f.SetFile(file)
		f.At(40)
		lcg := newLCG(f, 67)
		fillRandomF(f, lcg, "img", img)
		// Clamped neighbor index arrays: iN[i] = max(i-1,0) etc. — affine
		// at runtime except at the border.
		iNB, iSB := f.IConst(iN.Base), f.IConst(iS.Base)
		f.Loop("nbi", f.IConst(0), f.IConst(rows), 1, func(i isa.Reg) {
			f.StoreIdx(iNB, i, 0, f.MaxI(f.Sub(i, f.IConst(1)), f.IConst(0)))
			f.StoreIdx(iSB, i, 0, f.MinI(f.Add(i, f.IConst(1)), f.IConst(rows-1)))
		})
		jWB, jEB := f.IConst(jW.Base), f.IConst(jE.Base)
		f.Loop("nbj", f.IConst(0), f.IConst(cols), 1, func(j isa.Reg) {
			f.StoreIdx(jWB, j, 0, f.MaxI(f.Sub(j, f.IConst(1)), f.IConst(0)))
			f.StoreIdx(jEB, j, 0, f.MinI(f.Add(j, f.IConst(1)), f.IConst(cols-1)))
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile(file)
	m.At(20)
	m.Call(setup.ID())
	m.At(241)
	m.Call(region.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// SradV1 builds the interprocedural SRAD variant (separate phase
// functions called from the iteration loop, region main.c:241).
func SradV1() *isa.Program { return sradCommon("srad_v1", "main.c", 20, 24, 2, true) }

// SradV2 builds the single-function SRAD variant (region srad.cpp:114).
func SradV2() *isa.Program { return sradCommon("srad_v2", "srad.cpp", 16, 32, 2, false) }

// Streamcluster builds the Rodinia streamcluster twin: online k-median
// clustering whose gain computation mixes every static defect (RCBFAP)
// and produces many distinct calling contexts — the benchmark whose
// scheduling stage exhausted memory in the paper.
func Streamcluster() *isa.Program {
	const (
		points  = 64
		dims    = 4
		centers = 6
	)
	pb := isa.NewProgram("streamcluster")
	coords := pb.Global("points", points*dims)
	ctrTbl := pb.Global("center_ptrs", centers)
	ctrData := pb.Global("center_data", centers*dims)
	assign := pb.Global("assignment", points)
	costs := pb.Global("costs", points)
	seed := pb.Global("rand_seed", 1)
	rand := libcRand(pb, seed)

	dist := pb.Func("d_dist", 2) // (pointBase, centerBase)
	{
		f := dist
		f.SetFile("streamcluster.cpp")
		f.At(1100)
		p, c := f.Arg(0), f.Arg(1)
		acc := f.NewReg()
		f.SetF(acc, 0)
		f.Loop("Ld", f.IConst(0), f.IConst(dims), 1, func(d isa.Reg) {
			diff := f.FSub(f.FLoadIdx(p, d, 0), f.FLoadIdx(c, d, 0))
			f.FAddTo(acc, acc, f.FMul(diff, diff))
		})
		f.Ret(acc)
	}

	// shuffle swaps two random center pointers (P: table rewritten).
	shuffle := pb.Func("shuffle_centers", 0)
	{
		f := shuffle
		f.SetFile("streamcluster.cpp")
		f.At(1200)
		tB := f.IConst(ctrTbl.Base)
		f.Loop("Lsh", f.IConst(0), f.IConst(centers/2), 1, func(i isa.Reg) {
			a := f.Mod(f.Call(rand), f.IConst(centers))
			b := f.Mod(f.Call(rand), f.IConst(centers))
			pa := f.LoadIdx(tB, a, 0)
			pc := f.LoadIdx(tB, b, 0)
			f.StoreIdx(tB, a, 0, pc)
			f.StoreIdx(tB, b, 0, pa)
		})
		f.RetVoid()
	}

	// cost scan with early exit (C), called from pgain's loop.
	costCheck := pb.Func("cost_check", 0)
	{
		f := costCheck
		f.SetFile("streamcluster.cpp")
		f.At(1350)
		coB := f.IConst(costs.Base)
		f.Loop("Lcc", f.IConst(0), f.IConst(points), 1, func(p isa.Reg) {
			over := f.FCmpLT(f.FConst(1e20), f.FLoadIdx(coB, p, 0))
			f.If(over, func() { f.Ret(f.IConst(0)) }, nil)
		})
		f.Ret(f.IConst(1))
	}

	// pgain(pointsBase, assignBase): the paper's hot function.
	pgain := pb.Func("pgain", 2)
	pgain.SetSrcDepth(3)
	{
		f := pgain
		f.SetFile("streamcluster.cpp")
		ptB, asB := f.Arg(0), f.Arg(1)
		f.At(1269)
		tB := f.IConst(ctrTbl.Base)
		coB := f.IConst(costs.Base)
		// In-place center-table rotation inside the loop below makes the
		// loaded center pointers non-invariant (P).
		converged := f.NewReg()
		f.SetI(converged, 0)
		rounds := f.NewReg()
		f.SetI(rounds, 0)
		f.While("Louter", func() isa.Reg {
			notDone := f.CmpEQ(converged, f.IConst(0))
			return f.And(notDone, f.CmpLT(rounds, f.IConst(3)))
		}, func() {
			f.Call(shuffle.ID())
			// Rotate the first two center pointers in place (P).
			c0 := f.LoadIdx(tB, f.IConst(0), 0)
			c1 := f.LoadIdx(tB, f.IConst(1), 0)
			f.StoreIdx(tB, f.IConst(0), 0, c1)
			f.StoreIdx(tB, f.IConst(1), 0, c0)
			improved := f.NewReg()
			f.SetI(improved, 0)
			f.Loop("Lp", f.IConst(0), f.IConst(points), 1, func(p isa.Reg) {
				bestC := f.NewReg()
				bestD := f.NewReg()
				f.SetI(bestC, 0)
				f.SetF(bestD, 1e30)
				f.Loop("Lc", f.IConst(0), f.IConst(centers), 1, func(c isa.Reg) {
					ctr := f.LoadIdx(tB, c, 0) // loaded center pointer (P)
					pt := f.Add(ptB, f.Mul(p, f.IConst(dims)))
					// Quick-reject on the first coordinate, read directly
					// through both pointers (A for the parameter base, P
					// for the mutated center table).
					gap := f.FAbs(f.FSub(f.FLoad(pt, 0), f.FLoad(ctr, 0)))
					d := f.Call(dist.ID(), pt, ctr)
					far := f.FCmpLT(bestD, f.FMul(gap, gap))
					better := f.And(f.CmpEQ(far, f.IConst(0)), f.FCmpLT(d, bestD))
					f.If(better, func() {
						f.FMovTo(bestD, d)
						f.Mov(bestC, c)
						f.Mov(improved, f.IConst(1))
					}, nil)
				})
				f.StoreIdx(asB, p, 0, bestC)
				f.FStoreIdx(coB, p, 0, bestD)
			})
			f.Call(costCheck.ID())
			f.If(f.CmpEQ(improved, f.IConst(0)), func() {
				f.Mov(converged, f.IConst(1))
			}, nil)
			f.AddTo(rounds, rounds, f.IConst(1))
		})
		f.RetVoid()
	}

	setup := pb.Func("sc_setup", 0)
	{
		f := setup
		f.SetFile("streamcluster.cpp")
		f.At(40)
		lcg := newLCG(f, 71)
		fillRandomF(f, lcg, "pts", coords)
		fillRandomF(f, lcg, "ctr", ctrData)
		tB := f.IConst(ctrTbl.Base)
		f.Loop("tbl", f.IConst(0), f.IConst(centers), 1, func(c isa.Reg) {
			f.StoreIdx(tB, c, 0, f.Add(f.IConst(ctrData.Base), f.Mul(c, f.IConst(dims))))
		})
		f.Store(f.IConst(seed.Base), 0, f.IConst(5))
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("streamcluster.cpp")
	m.At(20)
	m.Call(setup.ID())
	m.At(1269)
	m.Call(pgain.ID(), m.IConst(coords.Base), m.IConst(assign.Base))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}
