package workloads

import "polyprof/internal/isa"

// Spec describes one bundled workload for the evaluation harness.
type Spec struct {
	Name  string
	Build func() *isa.Program
	// RegionFuncs are the functions forming the paper's region of
	// interest, used to aggregate the static baseline's failure reasons.
	RegionFuncs []string
	// PaperReasons is the "Reasons why Polly failed" entry of Table 5
	// for the original benchmark, kept for side-by-side reporting.
	PaperReasons string
	// PaperAffine ("H"/"L") is the qualitative %Aff band of Table 5:
	// H >= 85%, L < 50%; "" when mid or unstated.
	PaperAffine string
	// PaperSkew is the Table 5 skew column.
	PaperSkew bool
}

// Rodinia returns the 19 Rodinia 3.1 twins in the paper's Table 5
// order.
func Rodinia() []Spec {
	return []Spec{
		{"backprop", func() *isa.Program { return Backprop(DefaultBackpropParams()) },
			[]string{"bpnn_layerforward", "bpnn_adjust_weights", "bpnn_hidden_error"}, "A", "H", false},
		{"bfs", BFS, []string{"bfs_kernel"}, "BF", "L", false},
		{"b+tree", BTree, []string{"kernel_query"}, "BF", "L", false},
		{"cfd", CFD, []string{"compute_flux"}, "F", "H", false},
		{"heartwall", Heartwall, []string{"heartwall_kernel"}, "RCBF", "L", false},
		{"hotspot", Hotspot, []string{"compute_tran_temp"}, "B", "L", true},
		{"hotspot3D", Hotspot3D, []string{"compute_tran_temp_3d"}, "BF", "H", false},
		{"kmeans", KMeans, []string{"kmeans_clustering"}, "RFA", "H", false},
		{"lavaMD", LavaMD, []string{"kernel_cpu"}, "BF", "L", false},
		{"leukocyte", Leukocyte, []string{"detect_kernel"}, "RCBFAP", "L", false},
		{"lud", LUD, []string{"lud_kernel"}, "BF", "L", false},
		{"myocyte", Myocyte, []string{"solver"}, "CBA", "H", false},
		{"nn", NN, []string{"nn_kernel"}, "RF", "L", false},
		{"nw", NW, []string{"nw_kernel"}, "RF", "H", true},
		{"particlefilter", ParticleFilter, []string{"particle_kernel"}, "CF", "L", false},
		{"pathfinder", Pathfinder, []string{"pathfinder_kernel"}, "BP", "", true},
		{"srad_v1", SradV1, []string{"srad_main_loop"}, "RF", "H", false},
		{"srad_v2", SradV2, []string{"srad_kernel"}, "RF", "H", false},
		{"streamcluster", Streamcluster, []string{"pgain"}, "RCBFAP", "H", false},
	}
}

// ByName returns the spec with the given name, or nil.
func ByName(name string) *Spec {
	for _, s := range Rodinia() {
		if s.Name == name {
			return &s
		}
	}
	for _, s := range PolyBench() {
		if s.Name == name {
			return &s
		}
	}
	for _, s := range PolyBenchExtra() {
		if s.Name == name {
			return &s
		}
	}
	switch name {
	case "matmul":
		// Convenience alias: the PolyBench matrix-multiply kernel.
		return ByName("gemm")
	case "gemsfdtd":
		s := &Spec{Name: "gemsfdtd", Build: GemsFDTD,
			RegionFuncs: []string{"updateH_homo", "updateE_homo"}}
		return s
	case "example1":
		return &Spec{Name: "example1", Build: Example1}
	case "example2":
		return &Spec{Name: "example2", Build: Example2}
	}
	return nil
}

// Names lists every workload ByName resolves, suite twins first.
func Names() []string {
	var out []string
	for _, s := range Rodinia() {
		out = append(out, s.Name)
	}
	for _, s := range PolyBench() {
		out = append(out, s.Name)
	}
	for _, s := range PolyBenchExtra() {
		out = append(out, s.Name)
	}
	return append(out, "gemsfdtd", "example1", "example2")
}

// lcgState threads a linear congruential generator through emitted
// code; every advance writes the seed register.
type lcgState struct {
	f    *isa.FuncBuilder
	seed isa.Reg
}

func newLCG(f *isa.FuncBuilder, seed int64) *lcgState {
	s := &lcgState{f: f, seed: f.NewReg()}
	f.SetI(s.seed, seed)
	return s
}

// next returns the register holding a fresh pseudo-random non-negative
// value.
func (s *lcgState) next() isa.Reg {
	f := s.f
	a := f.IConst(1103515245)
	c := f.IConst(12345)
	m := f.IConst(1 << 31)
	f.Mov(s.seed, f.Mod(f.Add(f.Mul(f.Mod(s.seed, m), a), c), m))
	return s.seed
}

// nextMod returns a register holding next() % mod.
func (s *lcgState) nextMod(mod int64) isa.Reg {
	return s.f.Mod(s.next(), s.f.IConst(mod))
}

// fillRandomF fills a global with pseudo-random floats in [0, 1).
func fillRandomF(f *isa.FuncBuilder, lcg *lcgState, label string, g isa.Global) {
	base := f.IConst(g.Base)
	f.Loop("init_"+label, f.IConst(0), f.IConst(g.Size), 1, func(i isa.Reg) {
		v := f.FDiv(f.I2F(lcg.nextMod(1000)), f.FConst(1000))
		f.FStoreIdx(base, i, 0, v)
	})
}

// fillRandomI fills a global with pseudo-random ints in [0, mod).
func fillRandomI(f *isa.FuncBuilder, lcg *lcgState, label string, g isa.Global, mod int64) {
	base := f.IConst(g.Base)
	f.Loop("init_"+label, f.IConst(0), f.IConst(g.Size), 1, func(i isa.Reg) {
		f.StoreIdx(base, i, 0, lcg.nextMod(mod))
	})
}

// fillIota fills a global with g[i] = i*scale + off.
func fillIota(f *isa.FuncBuilder, label string, g isa.Global, scale, off int64) {
	base := f.IConst(g.Base)
	f.Loop("iota_"+label, f.IConst(0), f.IConst(g.Size), 1, func(i isa.Reg) {
		f.StoreIdx(base, i, 0, f.Add(f.Mul(i, f.IConst(scale)), f.IConst(off)))
	})
}

// libcRand declares an opaque "libc" random function (the static
// baseline treats libc_* functions as unanalyzable, matching the
// paper's non-inlined libc calls).  It returns a value derived from a
// global seed cell.
func libcRand(pb *isa.ProgramBuilder, seedCell isa.Global) isa.FuncID {
	f := pb.Func("libc_rand", 0)
	base := f.IConst(seedCell.Base)
	s := f.Load(base, 0)
	a := f.IConst(1103515245)
	c := f.IConst(12345)
	m := f.IConst(1 << 31)
	v := f.Mod(f.Add(f.Mul(s, a), c), m)
	f.Store(base, 0, v)
	f.Ret(v)
	return f.ID()
}

// libcExpF declares an opaque "libc" float helper computing exp(-x).
func libcExpF(pb *isa.ProgramBuilder) isa.FuncID {
	f := pb.Func("libc_exp", 1)
	f.Ret(f.FExp(f.FNeg(f.Arg(0))))
	return f.ID()
}
