package workloads

import "polyprof/internal/isa"

// Leukocyte builds the Rodinia leukocyte twin: cell detection over
// video frames.  It concentrates every static-analysis defect of the
// paper's RCBFAP row: an opaque libc call in the kernel (R), an
// early-return helper inside the detection loop (C), data-dependent
// sample counts (B), double indirection through a per-cell row table
// (F and, because the row pointer is reloaded from a data-dependent
// slot inside the loop, P), and two writable pointer parameters (A).
func Leukocyte() *isa.Program {
	const (
		frames  = 6
		cells   = 6
		angles  = 10
		samples = 6
		imgW    = 48
		imgH    = 24
	)
	pb := isa.NewProgram("leukocyte")
	img := pb.Global("frame", imgW*imgH)
	rowTbl := pb.Global("row_table", imgH)
	cellIdx := pb.Global("cell_rows", cells)
	result := pb.Global("gicov", cells*angles)
	counts := pb.Global("sample_count", cells)
	seed := pb.Global("rand_seed", 1)
	rand := libcRand(pb, seed)

	// Early-exit quality check (C).
	quality := pb.Func("check_quality", 1)
	{
		f := quality
		f.SetFile("detect_main.c")
		f.At(200)
		rB := f.IConst(result.Base)
		lim := f.Arg(0)
		f.Loop("Lq", f.IConst(0), f.IConst(cells*angles), 1, func(i isa.Reg) {
			bad := f.CmpGT(f.LoadIdx(rB, i, 0), lim)
			f.If(bad, func() { f.Ret(f.IConst(0)) }, nil)
		})
		f.Ret(f.IConst(1))
	}

	// detect_kernel(imgBase, resultBase): two pointer params, result
	// written (A).
	kernel := pb.Func("detect_kernel", 2)
	kernel.SetSrcDepth(4)
	{
		f := kernel
		f.SetFile("detect_main.c")
		imgB, resB := f.Arg(0), f.Arg(1)
		f.At(51)
		rtB := f.IConst(rowTbl.Base)
		ciB := f.IConst(cellIdx.Base)
		cntB := f.IConst(counts.Base)
		f.Loop("Lframe", f.IConst(0), f.IConst(frames), 1, func(fr isa.Reg) {
			jitter := f.Mod(f.Call(rand), f.IConst(4)) // R
			f.Loop("Lcell", f.IConst(0), f.IConst(cells), 1, func(c isa.Reg) {
				n := f.LoadIdx(cntB, c, 0) // data-dependent bound (B)
				f.At(55)
				f.Loop("Lang", f.IConst(0), f.IConst(angles), 1, func(a isa.Reg) {
					acc := f.NewReg()
					f.SetI(acc, 0)
					f.Loop("Lsmp", f.IConst(0), n, 1, func(s isa.Reg) {
						// Double indirection: row pointer from a table slot
						// chosen by a loaded cell row (F + P).
						row := f.LoadIdx(ciB, c, 0)
						rowPtr := f.LoadIdx(rtB, f.Mod(f.Add(row, s), f.IConst(imgH)), 0)
						col := f.Mod(f.Add(f.Mul(a, f.IConst(samples)), f.Add(s, jitter)), f.IConst(imgW))
						pix := f.LoadIdx(rowPtr, col, 0)
						f.AddTo(acc, acc, pix)
					})
					// Direct background sample through the image parameter
					// (second aliasing base, A).
					bg := f.LoadIdx(imgB, f.Mod(f.Mul(a, f.IConst(7)), f.IConst(imgW*imgH)), 0)
					f.StoreIdx(resB, f.Add(f.Mul(c, f.IConst(angles)), a), 0, f.Add(acc, bg))
				})
			})
			f.Call(quality.ID(), f.IConst(1<<40))
		})
		f.RetVoid()
	}

	setup := pb.Func("leukocyte_setup", 0)
	{
		f := setup
		f.SetFile("detect_main.c")
		f.At(20)
		lcg := newLCG(f, 41)
		fillRandomI(f, lcg, "img", img, 255)
		fillRandomI(f, lcg, "cidx", cellIdx, imgH)
		cB := f.IConst(counts.Base)
		f.Loop("cnt", f.IConst(0), f.IConst(cells), 1, func(c isa.Reg) {
			f.StoreIdx(cB, c, 0, f.Add(lcg.nextMod(samples-2), f.IConst(2)))
		})
		rt := f.IConst(rowTbl.Base)
		f.Loop("rows", f.IConst(0), f.IConst(imgH), 1, func(r isa.Reg) {
			f.StoreIdx(rt, r, 0, f.Add(f.IConst(img.Base), f.Mul(r, f.IConst(imgW))))
		})
		f.Store(f.IConst(seed.Base), 0, f.IConst(3))
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("detect_main.c")
	m.At(10)
	m.Call(setup.ID())
	m.At(51)
	m.Call(kernel.ID(), m.IConst(img.Base), m.IConst(result.Base))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// LUD builds the Rodinia lud twin: blocked LU decomposition on a
// hand-linearized matrix.  The linearized index multiplies the loop
// counter by the (parametric) matrix dimension (F for the static
// baseline) and the blocked variant wraps offsets with modulo
// expressions, which also defeats dynamic folding — the paper reports
// only 4% affine operations despite the regular algorithm.  The
// triangular loop structure itself folds exactly (bounds affine in the
// outer iterator).
func LUD() *isa.Program {
	const n = 20
	pb := isa.NewProgram("lud")
	mat := pb.Global("matrix", n*n)

	// lud_kernel(matrixBase, dim): dim is a runtime parameter so the
	// linearized subscript is IV*param.
	kernel := pb.Func("lud_kernel", 2)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("lud.c")
		matB, dim := f.Arg(0), f.Arg(1)
		f.At(121)
		f.Loop("Lk", f.IConst(0), dim, 1, func(k isa.Reg) {
			pivotIdx := f.Add(f.Mul(k, dim), k)
			pivot := f.FLoadIdx(matB, pivotIdx, 0)
			f.At(125)
			iEnd := f.MinI(f.Add(k, f.IConst(16)), dim) // blocked bound (B)
			f.Loop("Li", f.Add(k, f.IConst(1)), iEnd, 1, func(i isa.Reg) {
				// Modulo-wrapped linearization, as in the blocked source.
				rowIdx := f.Mod(f.Add(f.Mul(i, dim), k), f.IConst(n*n))
				v := f.FDiv(f.FLoadIdx(matB, rowIdx, 0), pivot)
				f.FStoreIdx(matB, rowIdx, 0, v)
				f.Loop("Lj", f.Add(k, f.IConst(1)), dim, 1, func(j isa.Reg) {
					tIdx := f.Mod(f.Add(f.Mul(i, dim), j), f.IConst(n*n))
					uIdx := f.Mod(f.Add(f.Mul(k, dim), j), f.IConst(n*n))
					t := f.FLoadIdx(matB, tIdx, 0)
					u := f.FLoadIdx(matB, uIdx, 0)
					f.FStoreIdx(matB, tIdx, 0, f.FSub(t, f.FMul(v, u)))
				})
			})
		})
		f.RetVoid()
	}

	setup := pb.Func("lud_setup", 0)
	{
		f := setup
		f.SetFile("lud.c")
		f.At(40)
		lcg := newLCG(f, 43)
		mB := f.IConst(mat.Base)
		f.Loop("init", f.IConst(0), f.IConst(n*n), 1, func(i isa.Reg) {
			v := f.FAdd(f.FDiv(f.I2F(lcg.nextMod(100)), f.FConst(100)), f.FConst(1))
			f.FStoreIdx(mB, i, 0, v)
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("lud.c")
	m.At(20)
	m.Call(setup.ID())
	m.At(121)
	m.Call(kernel.ID(), m.IConst(mat.Base), m.IConst(n))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Myocyte builds the Rodinia myocyte twin: an ODE right-hand side of
// many straight-line equations advanced by a time-stepping solver with
// an adaptive convergence check.  Static defects per the paper's CBA
// row: early exit from the convergence scan (C), an error-derived
// adaptive bound (B), and writable pointer parameters (A).  Most
// operations are straight-line float math over affine subscripts, so
// the dynamic affine fraction is high (paper: 89%).
func Myocyte() *isa.Program {
	const (
		eqs   = 40
		steps = 12
	)
	pb := isa.NewProgram("myocyte")
	y := pb.Global("y", eqs+1) // +1: halo slot mirroring y[0]
	dy := pb.Global("dy", eqs)
	params := pb.Global("params", eqs)

	// convergence(yBase): early return inside the scan (C).
	conv := pb.Func("embedded_fehlberg_check", 1)
	{
		f := conv
		f.SetFile("main.c")
		f.At(260)
		yB := f.Arg(0)
		f.Loop("Lchk", f.IConst(0), f.IConst(eqs), 1, func(i isa.Reg) {
			big := f.FCmpLT(f.FConst(1e6), f.FAbs(f.FLoadIdx(yB, i, 0)))
			f.If(big, func() { f.Ret(f.IConst(0)) }, nil)
		})
		f.Ret(f.IConst(1))
	}

	// solver(yBase, dyBase, paramBase): A from the three pointer params.
	solver := pb.Func("solver", 3)
	solver.SetSrcDepth(4)
	{
		f := solver
		f.SetFile("main.c")
		yB, dyB, pB := f.Arg(0), f.Arg(1), f.Arg(2)
		f.At(283)
		f.Loop("Lt", f.IConst(0), f.IConst(steps), 1, func(t isa.Reg) {
			// Halo update keeps the neighbor subscript affine.
			f.FStore(yB, eqs, f.FLoad(yB, 0))
			// RHS evaluation: each equation couples with its neighbor.
			f.Loop("Leq", f.IConst(0), f.IConst(eqs), 1, func(e isa.Reg) {
				v := f.FLoadIdx(yB, e, 0)
				nb := f.FLoadIdx(yB, e, 1)
				p := f.FLoadIdx(pB, e, 0)
				r := f.FSub(f.FMul(p, nb), f.FMul(v, v))
				f.FStoreIdx(dyB, e, 0, r)
			})
			// Adaptive inner iterations: bound derived from the state (B).
			errv := f.FAbs(f.FLoad(yB, 0))
			inner := f.Add(f.Mod(f.F2I(f.FMul(errv, f.FConst(3))), f.IConst(3)), f.IConst(1))
			f.Loop("Ladapt", f.IConst(0), inner, 1, func(s isa.Reg) {
				f.Loop("Lupd", f.IConst(0), f.IConst(eqs), 1, func(e isa.Reg) {
					v := f.FLoadIdx(yB, e, 0)
					d := f.FLoadIdx(dyB, e, 0)
					f.FStoreIdx(yB, e, 0, f.FAdd(v, f.FMul(d, f.FConst(0.001))))
				})
			})
			f.Call(conv.ID(), yB)
		})
		f.RetVoid()
	}

	setup := pb.Func("myocyte_setup", 0)
	{
		f := setup
		f.SetFile("main.c")
		f.At(30)
		lcg := newLCG(f, 47)
		fillRandomF(f, lcg, "y", y)
		fillRandomF(f, lcg, "p", params)
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("main.c")
	m.At(20)
	m.Call(setup.ID())
	m.At(283)
	m.Call(solver.ID(), m.IConst(y.Base), m.IConst(dy.Base), m.IConst(params.Base))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// NN builds the Rodinia nn twin: nearest-neighbor search over records
// streamed through an opaque reader.  The hot loop calls libc_read for
// every record (R) — and the reader's field scan has a data-dependent
// trip count, so most dynamic operations sit in non-affine domains
// (paper: 1% affine) — then computes a distance and keeps the running
// minimum.  Field extraction goes through a loaded offset (F).
func NN() *isa.Program {
	const (
		records = 128
		recLen  = 8
	)
	pb := isa.NewProgram("nn")
	data := pb.Global("records", records*recLen)
	buf := pb.Global("buf", recLen)
	fieldOff := pb.Global("field_offsets", 2)
	best := pb.Global("best", 2)

	// libc_read(recIdx): copies one record into buf, scanning for a
	// data-dependent terminator like the original's fgets/sscanf.
	reader := pb.Func("libc_read", 1)
	{
		f := reader
		rec := f.Arg(0)
		dB := f.IConst(data.Base)
		bB := f.IConst(buf.Base)
		j := f.NewReg()
		f.SetI(j, 0)
		f.While("scan", func() isa.Reg {
			inRange := f.CmpLT(j, f.IConst(recLen))
			v := f.LoadIdx(dB, f.Add(f.Mul(rec, f.IConst(recLen)), f.MinI(j, f.IConst(recLen-1))), 0)
			return f.And(inRange, f.CmpNE(v, f.IConst(0)))
		}, func() {
			v := f.LoadIdx(dB, f.Add(f.Mul(rec, f.IConst(recLen)), j), 0)
			f.StoreIdx(bB, j, 0, v)
			f.AddTo(j, j, f.IConst(1))
		})
		f.Ret(j)
	}

	kernel := pb.Func("nn_kernel", 0)
	kernel.SetSrcDepth(1)
	{
		f := kernel
		f.SetFile("nn_openmp.c")
		f.At(119)
		bB := f.IConst(buf.Base)
		foB := f.IConst(fieldOff.Base)
		bestB := f.IConst(best.Base)
		tgtLat := f.IConst(30)
		tgtLng := f.IConst(50)
		bestD := f.NewReg()
		bestI := f.NewReg()
		f.SetI(bestD, 1<<40)
		f.SetI(bestI, -1)
		f.Loop("Lrec", f.IConst(0), f.IConst(records), 1, func(i isa.Reg) {
			f.Call(reader.ID(), i) // R: opaque libc call in the hot loop
			latOff := f.LoadIdx(foB, f.IConst(0), 0)
			lngOff := f.LoadIdx(foB, f.IConst(1), 0)
			lat := f.LoadIdx(bB, latOff, 0) // loaded field offset (F)
			lng := f.LoadIdx(bB, lngOff, 0)
			dlat := f.Sub(lat, tgtLat)
			dlng := f.Sub(lng, tgtLng)
			d := f.Add(f.Mul(dlat, dlat), f.Mul(dlng, dlng))
			// Register-only argmin: if-converted to selects by the
			// compiler, so the conditional costs no B.
			closer := f.CmpLT(d, bestD)
			f.If(closer, func() {
				f.Mov(bestD, d)
				f.Mov(bestI, i)
			}, nil)
		})
		f.Store(bestB, 0, bestD)
		f.Store(bestB, 1, bestI)
		f.RetVoid()
	}

	setup := pb.Func("nn_setup", 0)
	{
		f := setup
		f.SetFile("nn_openmp.c")
		f.At(30)
		lcg := newLCG(f, 53)
		dB := f.IConst(data.Base)
		f.Loop("init", f.IConst(0), f.IConst(records*recLen), 1, func(i isa.Reg) {
			f.StoreIdx(dB, i, 0, f.Add(lcg.nextMod(99), f.IConst(1)))
		})
		fo := f.IConst(fieldOff.Base)
		f.Store(fo, 0, f.IConst(2))
		f.Store(fo, 1, f.IConst(5))
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("nn_openmp.c")
	m.At(20)
	m.Call(setup.ID())
	m.At(119)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}
