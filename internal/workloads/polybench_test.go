package workloads_test

import (
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/feedback"
	"polyprof/internal/sched"
	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// TestPolyBenchBuildsAndRuns: every PolyBench twin validates, runs, and
// profiles with a very high affine fraction — the defining property of
// the suite.
func TestPolyBenchBuildsAndRuns(t *testing.T) {
	specs := append(workloads.PolyBench(), workloads.PolyBenchExtra()...)
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			prog := spec.Build()
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := vm.New(prog).Run(); err != nil {
				t.Fatal(err)
			}
			p, err := core.Run(prog, core.DefaultRunOptions())
			if err != nil {
				t.Fatal(err)
			}
			rep := feedback.Analyze(p)
			if rep.Best == nil {
				t.Fatalf("%s: no region of interest", spec.Name)
			}
			// The paper's observation holds even here: profiling the
			// *entire* program reveals non-regular parts (our LCG
			// initialization), but the kernel region itself must be
			// essentially fully affine.
			var regionOps, affineOps uint64
			for _, st := range rep.Best.Stmts {
				for _, in := range st.Instrs {
					regionOps += in.Count
					if !in.Stmt.Domain.Exact {
						continue
					}
					if in.HasAccess() && in.Access.Fn == nil {
						continue
					}
					if in.Op.IsIntALU() && !in.Op.IsCompare() && in.HasValue() && !in.IsSCEV {
						continue
					}
					affineOps += in.Count
				}
			}
			// The selected region may still include the random
			// initialization when the kernel dominates but does not
			// exhaust the subtree; for the O(n^2) kernels (mvt, bicg)
			// the LCG fills are a structural fraction of the trace, so
			// the bar is 80% rather than ~100%.
			if regionOps == 0 || float64(affineOps) < 0.8*float64(regionOps) {
				t.Errorf("%s: region affine fraction %.0f%%, want ~100%%",
					spec.Name, 100*float64(affineOps)/float64(regionOps))
			}
			if rep.PctAffine < 0.45 {
				t.Errorf("%s: whole-program %%Aff = %.0f%%, implausibly low", spec.Name, 100*rep.PctAffine)
			}
		})
	}
}

func transformsFor(t *testing.T, name string) (*feedback.Report, []*sched.NestTransform) {
	t.Helper()
	prog := workloads.ByName(name).Build()
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := feedback.Analyze(p)
	if rep.Best == nil {
		t.Fatalf("%s: no region", name)
	}
	return rep, rep.Best.Transforms
}

// TestGemmFeedback: the classic matmul — i and j parallel, k carries
// the reduction, the full 3D band is permutable and tilable.
func TestGemmFeedback(t *testing.T) {
	_, ts := transformsFor(t, "gemm")
	var mm *sched.NestTransform
	for _, tr := range ts {
		if tr.Nest.Depth() == 3 {
			mm = tr
		}
	}
	if mm == nil {
		t.Fatal("3D nest not found")
	}
	if !mm.Parallel[0] || !mm.Parallel[1] || mm.Parallel[2] {
		t.Errorf("parallel = %v, want (i,j parallel; k carried)", mm.Parallel)
	}
	if mm.TileDepth() != 3 {
		t.Errorf("tile depth = %d, want 3 (matmul is fully permutable)", mm.TileDepth())
	}
	if mm.SkewUsed {
		t.Error("gemm needs no skewing")
	}
}

// TestSeidelRequiresSkew: the in-place stencil tiles only after
// skewing; the scheduler must produce skew terms and a 3D band.
func TestSeidelRequiresSkew(t *testing.T) {
	_, ts := transformsFor(t, "seidel-2d")
	var st *sched.NestTransform
	for _, tr := range ts {
		if tr.Nest.Depth() == 3 {
			st = tr
		}
	}
	if st == nil {
		t.Fatal("3D nest not found")
	}
	if !st.SkewUsed {
		t.Fatal("seidel-2d must be skewed to tile")
	}
	if st.BandLen < 2 {
		t.Errorf("band length = %d, want >= 2 after skewing", st.BandLen)
	}
	for _, p := range st.Parallel {
		if p {
			t.Errorf("no dimension of seidel-2d is parallel as written: %v", st.Parallel)
		}
	}
	if !st.OuterParallel() {
		t.Error("skewed band must expose wavefront parallelism")
	}
}

// TestJacobiSpatialParallel: double buffering makes both spatial dims
// parallel once the time dimension carries.
func TestJacobiSpatialParallel(t *testing.T) {
	_, ts := transformsFor(t, "jacobi-2d")
	found := false
	for _, tr := range ts {
		if tr.Nest.Depth() != 3 {
			continue
		}
		found = true
		if !tr.Parallel[1] || !tr.Parallel[2] {
			t.Errorf("spatial dims must be parallel: %v", tr.Parallel)
		}
		if tr.Parallel[0] {
			t.Errorf("time dim must carry: %v", tr.Parallel)
		}
	}
	if !found {
		t.Fatal("3D nest not found")
	}
}

// TestTwoMMFusionStructure: two chained matmuls are two components and
// the producer→consumer dependence keeps them fusable.
func TestTwoMMFusionStructure(t *testing.T) {
	rep, _ := transformsFor(t, "2mm")
	comps := rep.Model.Components(rep.Best.Node)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if got := rep.Model.FuseComponents(comps, sched.SmartFuse); got != 1 {
		t.Errorf("smartfuse components = %d, want 1 (connected producer/consumer)", got)
	}
}

// TestTrisolvTriangularDomain: the inner statement's folded domain is
// the strict lower triangle.
func TestTrisolvTriangularDomain(t *testing.T) {
	prog := workloads.ByName("trisolv").Build()
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	found := false
	for _, s := range p.DDG.Stmts {
		if s.Depth != 2 || !s.Domain.Exact || s.Count != n*(n-1)/2 {
			continue
		}
		found = true
		if s.Domain.Dom.Contains([]int64{3, 3}) || s.Domain.Dom.Contains([]int64{3, 4}) {
			t.Errorf("triangular domain contains j >= i points: %v", s.Domain.Dom)
		}
		if !s.Domain.Dom.Contains([]int64{5, 2}) {
			t.Errorf("triangular domain misses (5,2): %v", s.Domain.Dom)
		}
	}
	if !found {
		t.Fatal("triangular statement not found")
	}
}

// TestTrisolvSequentialOuter: x[i] depends on all earlier x[j], so the
// outer loop must not be parallel.
func TestTrisolvSequentialOuter(t *testing.T) {
	_, ts := transformsFor(t, "trisolv")
	for _, tr := range ts {
		if tr.Nest.Depth() == 2 && tr.Parallel[0] {
			t.Error("trisolv outer loop is a forward substitution; it cannot be parallel")
		}
	}
}

// TestCholeskySequentialK: the factorization's k loop is sequential
// (each step consumes the previous step's trailing update), while the
// trailing-update statements keep a triangular exact domain.
func TestCholeskySequentialK(t *testing.T) {
	rep, ts := transformsFor(t, "cholesky")
	for _, tr := range ts {
		if tr.Nest.Depth() == 3 && tr.Parallel[0] {
			t.Error("cholesky k loop must be sequential")
		}
	}
	exact := 0
	for _, s := range rep.Best.Stmts {
		if s.S.Depth >= 2 && s.S.Domain.Exact {
			exact++
		}
	}
	if exact == 0 {
		t.Error("no exact triangular domains folded for cholesky")
	}
}

// TestHeat3DSpatialBand: the 4D space-time nest tiles its 3 spatial
// dims, all parallel.
func TestHeat3DSpatialBand(t *testing.T) {
	_, ts := transformsFor(t, "heat-3d")
	found := false
	for _, tr := range ts {
		if tr.Nest.Depth() != 4 {
			continue
		}
		found = true
		if tr.TileDepth() < 3 {
			t.Errorf("tile depth = %d, want >= 3", tr.TileDepth())
		}
		if !tr.Parallel[1] || !tr.Parallel[2] || !tr.Parallel[3] {
			t.Errorf("spatial dims must be parallel: %v", tr.Parallel)
		}
	}
	if !found {
		t.Fatal("4D nest not found")
	}
}

// TestBicgFusedProducts: one nest computes both products; the i loop
// carries the s[j] accumulation (scatter over j inside i), the j loop
// carries q's reduction register.
func TestBicgFusedProducts(t *testing.T) {
	_, ts := transformsFor(t, "bicg")
	for _, tr := range ts {
		if tr.Nest.Depth() == 2 && tr.Parallel[0] {
			t.Error("bicg i loop writes s[j] across iterations; not parallel")
		}
	}
}

// TestMVTTwoNests: mvt's two products are separate components over the
// same matrix; smart fusion keeps or merges them but never reports
// more components than C.
func TestMVTTwoNests(t *testing.T) {
	rep, _ := transformsFor(t, "mvt")
	comps := rep.Model.Components(rep.Best.Node)
	if len(comps) < 2 {
		t.Fatalf("components = %d, want >= 2", len(comps))
	}
	if got := rep.Model.FuseComponents(comps, sched.SmartFuse); got > len(comps) {
		t.Errorf("fusion increased components: %d -> %d", len(comps), got)
	}
}
