package workloads

import "polyprof/internal/isa"

// Second batch of PolyBench twins: triangular factorization (cholesky),
// two transposed-product kernels (mvt, bicg), a triangular update
// (syrk), a 4D tensor contraction (doitgen) and a 4D space-time stencil
// (heat-3d).  Together with polybench.go they cover every scheduling
// shape the paper's back-end distinguishes.

// PolyBenchExtra returns the second batch.
func PolyBenchExtra() []Spec {
	return []Spec{
		{Name: "cholesky", Build: Cholesky, RegionFuncs: []string{"kernel_cholesky"}},
		{Name: "mvt", Build: MVT, RegionFuncs: []string{"kernel_mvt"}},
		{Name: "bicg", Build: Bicg, RegionFuncs: []string{"kernel_bicg"}},
		{Name: "syrk", Build: Syrk, RegionFuncs: []string{"kernel_syrk"}},
		{Name: "doitgen", Build: Doitgen, RegionFuncs: []string{"kernel_doitgen"}},
		{Name: "heat-3d", Build: Heat3D, RegionFuncs: []string{"kernel_heat_3d"}},
	}
}

// Cholesky factorizes a symmetric positive-definite matrix in place:
// triangular domains at every level plus a sequential outer k loop.
func Cholesky() *isa.Program {
	const n = 12
	pb := isa.NewProgram("cholesky")
	aG := pb.Global("A", n*n)

	kernel := pb.Func("kernel_cholesky", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("cholesky.c")
		aB := f.IConst(aG.Base)
		at := func(i, j isa.Reg) isa.Reg { return f.Add(f.Mul(i, f.IConst(n)), j) }
		f.At(60)
		f.Loop("Lk", f.IConst(0), f.IConst(n), 1, func(k isa.Reg) {
			// A[k][k] = sqrt(A[k][k])
			dkk := f.FSqrt(f.FLoadIdx(aB, at(k, k), 0))
			f.FStoreIdx(aB, at(k, k), 0, dkk)
			// Column scale: A[i][k] /= A[k][k], i > k.
			f.Loop("Li1", f.Add(k, f.IConst(1)), f.IConst(n), 1, func(i isa.Reg) {
				v := f.FDiv(f.FLoadIdx(aB, at(i, k), 0), dkk)
				f.FStoreIdx(aB, at(i, k), 0, v)
			})
			// Trailing update: A[i][j] -= A[i][k]*A[j][k], k < j <= i.
			f.At(66)
			f.Loop("Li2", f.Add(k, f.IConst(1)), f.IConst(n), 1, func(i isa.Reg) {
				f.Loop("Lj", f.Add(k, f.IConst(1)), f.Add(i, f.IConst(1)), 1, func(j isa.Reg) {
					v := f.FSub(f.FLoadIdx(aB, at(i, j), 0),
						f.FMul(f.FLoadIdx(aB, at(i, k), 0), f.FLoadIdx(aB, at(j, k), 0)))
					f.FStoreIdx(aB, at(i, j), 0, v)
				})
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("cholesky.c")
	m.At(20)
	// Diagonally dominant SPD-ish input keeps sqrt real.
	aB := m.IConst(aG.Base)
	lcg := newLCG(m, 131)
	m.Loop("init", m.IConst(0), m.IConst(n*n), 1, func(k isa.Reg) {
		m.FStoreIdx(aB, k, 0, m.FDiv(m.I2F(lcg.nextMod(10)), m.FConst(100)))
	})
	m.Loop("diag", m.IConst(0), m.IConst(n), 1, func(i isa.Reg) {
		m.FStoreIdx(aB, m.Add(m.Mul(i, m.IConst(n)), i), 0, m.FConst(4))
	})
	m.At(60)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// MVT computes x1 += A*y1 and x2 += A^T*y2: two independent 2D nests
// over the same matrix — a fusion candidate with opposite stride
// preferences.
func MVT() *isa.Program {
	const n = 16
	pb := isa.NewProgram("mvt")
	aG := pb.Global("A", n*n)
	x1 := pb.Global("x1", n)
	x2 := pb.Global("x2", n)
	y1 := pb.Global("y1", n)
	y2 := pb.Global("y2", n)

	kernel := pb.Func("kernel_mvt", 0)
	kernel.SetSrcDepth(2)
	{
		f := kernel
		f.SetFile("mvt.c")
		aB := f.IConst(aG.Base)
		x1B, x2B := f.IConst(x1.Base), f.IConst(x2.Base)
		y1B, y2B := f.IConst(y1.Base), f.IConst(y2.Base)
		f.At(50)
		f.Loop("Li1", f.IConst(0), f.IConst(n), 1, func(i isa.Reg) {
			acc := f.NewReg()
			f.FMovTo(acc, f.FLoadIdx(x1B, i, 0))
			f.Loop("Lj1", f.IConst(0), f.IConst(n), 1, func(j isa.Reg) {
				av := f.FLoadIdx(aB, f.Add(f.Mul(i, f.IConst(n)), j), 0)
				f.FMovTo(acc, f.FAdd(acc, f.FMul(av, f.FLoadIdx(y1B, j, 0))))
			})
			f.FStoreIdx(x1B, i, 0, acc)
		})
		f.At(55)
		f.Loop("Li2", f.IConst(0), f.IConst(n), 1, func(i isa.Reg) {
			acc := f.NewReg()
			f.FMovTo(acc, f.FLoadIdx(x2B, i, 0))
			f.Loop("Lj2", f.IConst(0), f.IConst(n), 1, func(j isa.Reg) {
				av := f.FLoadIdx(aB, f.Add(f.Mul(j, f.IConst(n)), i), 0) // transposed
				f.FMovTo(acc, f.FAdd(acc, f.FMul(av, f.FLoadIdx(y2B, j, 0))))
			})
			f.FStoreIdx(x2B, i, 0, acc)
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("mvt.c")
	m.At(20)
	lcg := newLCG(m, 137)
	fillRandomF(m, lcg, "A", aG)
	fillRandomF(m, lcg, "x1", x1)
	fillRandomF(m, lcg, "x2", x2)
	fillRandomF(m, lcg, "y1", y1)
	fillRandomF(m, lcg, "y2", y2)
	m.At(50)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Bicg computes s = A^T*r and q = A*p in a single fused nest.
func Bicg() *isa.Program {
	const nRows, nCols = 14, 12
	pb := isa.NewProgram("bicg")
	aG := pb.Global("A", nRows*nCols)
	s := pb.Global("s", nCols)
	q := pb.Global("q", nRows)
	p := pb.Global("p", nCols)
	rV := pb.Global("r", nRows)

	kernel := pb.Func("kernel_bicg", 0)
	kernel.SetSrcDepth(2)
	{
		f := kernel
		f.SetFile("bicg.c")
		aB := f.IConst(aG.Base)
		sB, qB, pB, rB := f.IConst(s.Base), f.IConst(q.Base), f.IConst(p.Base), f.IConst(rV.Base)
		f.At(40)
		f.Loop("Lz", f.IConst(0), f.IConst(nCols), 1, func(j isa.Reg) {
			f.FStoreIdx(sB, j, 0, f.FConst(0))
		})
		f.At(43)
		f.Loop("Li", f.IConst(0), f.IConst(nRows), 1, func(i isa.Reg) {
			acc := f.NewReg()
			f.SetF(acc, 0)
			rv := f.FLoadIdx(rB, i, 0)
			f.Loop("Lj", f.IConst(0), f.IConst(nCols), 1, func(j isa.Reg) {
				av := f.FLoadIdx(aB, f.Add(f.Mul(i, f.IConst(nCols)), j), 0)
				// s[j] += r[i]*A[i][j]
				f.FStoreIdx(sB, j, 0, f.FAdd(f.FLoadIdx(sB, j, 0), f.FMul(rv, av)))
				// q[i] += A[i][j]*p[j]
				f.FMovTo(acc, f.FAdd(acc, f.FMul(av, f.FLoadIdx(pB, j, 0))))
			})
			f.FStoreIdx(qB, i, 0, acc)
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("bicg.c")
	m.At(20)
	lcg := newLCG(m, 139)
	fillRandomF(m, lcg, "A", aG)
	fillRandomF(m, lcg, "p", p)
	fillRandomF(m, lcg, "r", rV)
	m.At(40)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Syrk computes the symmetric rank-k update C = C + A*A^T on the lower
// triangle: a triangular write domain inside a 3D nest.
func Syrk() *isa.Program {
	const n, mDim = 12, 8
	pb := isa.NewProgram("syrk")
	aG := pb.Global("A", n*mDim)
	cG := pb.Global("C", n*n)

	kernel := pb.Func("kernel_syrk", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("syrk.c")
		aB, cB := f.IConst(aG.Base), f.IConst(cG.Base)
		f.At(50)
		f.Loop("Li", f.IConst(0), f.IConst(n), 1, func(i isa.Reg) {
			f.Loop("Lj", f.IConst(0), f.Add(i, f.IConst(1)), 1, func(j isa.Reg) {
				acc := f.NewReg()
				f.FMovTo(acc, f.FLoadIdx(cB, f.Add(f.Mul(i, f.IConst(n)), j), 0))
				f.Loop("Lk", f.IConst(0), f.IConst(mDim), 1, func(k isa.Reg) {
					ai := f.FLoadIdx(aB, f.Add(f.Mul(i, f.IConst(mDim)), k), 0)
					aj := f.FLoadIdx(aB, f.Add(f.Mul(j, f.IConst(mDim)), k), 0)
					f.FMovTo(acc, f.FAdd(acc, f.FMul(ai, aj)))
				})
				f.FStoreIdx(cB, f.Add(f.Mul(i, f.IConst(n)), j), 0, acc)
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("syrk.c")
	m.At(20)
	lcg := newLCG(m, 149)
	fillRandomF(m, lcg, "A", aG)
	fillRandomF(m, lcg, "C", cG)
	m.At(50)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Doitgen contracts a 3D tensor with a 2D matrix: a 4D nest with a
// temporary vector per (r, q) pair.
func Doitgen() *isa.Program {
	const nr, nq, np = 6, 6, 8
	pb := isa.NewProgram("doitgen")
	aG := pb.Global("A", nr*nq*np)
	c4 := pb.Global("C4", np*np)
	sum := pb.Global("sum", np)

	kernel := pb.Func("kernel_doitgen", 0)
	kernel.SetSrcDepth(4)
	{
		f := kernel
		f.SetFile("doitgen.c")
		aB, cB, sB := f.IConst(aG.Base), f.IConst(c4.Base), f.IConst(sum.Base)
		f.At(40)
		f.Loop("Lr", f.IConst(0), f.IConst(nr), 1, func(r isa.Reg) {
			f.Loop("Lq", f.IConst(0), f.IConst(nq), 1, func(q isa.Reg) {
				base := f.Add(f.Mul(r, f.IConst(nq*np)), f.Mul(q, f.IConst(np)))
				f.Loop("Lp", f.IConst(0), f.IConst(np), 1, func(p isa.Reg) {
					acc := f.NewReg()
					f.SetF(acc, 0)
					f.Loop("Ls", f.IConst(0), f.IConst(np), 1, func(s isa.Reg) {
						av := f.FLoadIdx(aB, f.Add(base, s), 0)
						cv := f.FLoadIdx(cB, f.Add(f.Mul(s, f.IConst(np)), p), 0)
						f.FMovTo(acc, f.FAdd(acc, f.FMul(av, cv)))
					})
					f.FStoreIdx(sB, p, 0, acc)
				})
				f.Loop("Lw", f.IConst(0), f.IConst(np), 1, func(p isa.Reg) {
					f.FStoreIdx(aB, f.Add(base, p), 0, f.FLoadIdx(sB, p, 0))
				})
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("doitgen.c")
	m.At(20)
	lcg := newLCG(m, 151)
	fillRandomF(m, lcg, "A", aG)
	fillRandomF(m, lcg, "C4", c4)
	m.At(40)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Heat3D advances a 3D heat stencil through double-buffered time steps:
// a 4D space-time nest whose spatial band is fully parallel and
// tilable.
func Heat3D() *isa.Program {
	const (
		n      = 8
		tsteps = 2
	)
	pb := isa.NewProgram("heat-3d")
	aG := pb.Global("A", n*n*n)
	bG := pb.Global("B", n*n*n)

	kernel := pb.Func("kernel_heat_3d", 0)
	kernel.SetSrcDepth(4)
	{
		f := kernel
		f.SetFile("heat-3d.c")
		aB, bB := f.IConst(aG.Base), f.IConst(bG.Base)
		eighth := f.FConst(0.125)
		stencil := func(line int, src, dst isa.Reg) {
			f.At(line)
			f.Loop("Li", f.IConst(1), f.IConst(n-1), 1, func(i isa.Reg) {
				f.Loop("Lj", f.IConst(1), f.IConst(n-1), 1, func(j isa.Reg) {
					f.Loop("Lk", f.IConst(1), f.IConst(n-1), 1, func(k isa.Reg) {
						lin := f.Add(f.Add(f.Mul(i, f.IConst(n*n)), f.Mul(j, f.IConst(n))), k)
						c := f.FLoadIdx(src, lin, 0)
						lap := f.FSub(
							f.FAdd(f.FAdd(f.FLoadIdx(src, lin, 1), f.FLoadIdx(src, lin, -1)),
								f.FAdd(f.FLoadIdx(src, lin, n), f.FLoadIdx(src, lin, -n))),
							f.FMul(f.FConst(4), c))
						lap = f.FAdd(lap, f.FAdd(f.FLoadIdx(src, lin, n*n), f.FLoadIdx(src, lin, -n*n)))
						f.FStoreIdx(dst, lin, 0, f.FAdd(c, f.FMul(eighth, lap)))
					})
				})
			})
		}
		f.Loop("Lt", f.IConst(0), f.IConst(tsteps), 1, func(t isa.Reg) {
			stencil(70, aB, bB)
			stencil(76, bB, aB)
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("heat-3d.c")
	m.At(20)
	lcg := newLCG(m, 157)
	fillRandomF(m, lcg, "A", aG)
	m.At(70)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}
