package workloads

import "polyprof/internal/isa"

// BackpropParams sizes the backprop twin.  The paper's Tables 1/2 show
// the layer-forward kernel with canonical iterators cj in [0,15] and
// ck in [0,42], i.e. 16 output and 43 input units for the profiled
// call.
type BackpropParams struct {
	In     int64 // input layer units (paper's n1 loop extent)
	Hidden int64 // hidden layer units (paper's n2 = 16)
	Out    int64 // output layer units
}

// DefaultBackpropParams matches the case-study instance.
func DefaultBackpropParams() BackpropParams {
	return BackpropParams{In: 42, Hidden: 16, Out: 4}
}

// Backprop builds the Rodinia backprop twin: a two-layer neural network
// doing one forward/backward training pass.  It reproduces the
// structural features the paper exploits:
//
//   - bpnn_layerforward (Fig. 6): 2D nest whose inner loop walks a
//     row-pointer indirection (conn[k][j] via a pointer load), with a
//     scalar sum accumulation and a call to squash() — the loop nest is
//     interprocedural and pointer-based, which defeats static analysis
//     but folds exactly under dynamic profiling;
//   - bpnn_adjust_weights: 2D nest updating weights and momenta;
//   - two calls to each kernel with different layer sizes, only the
//     bigger of which is worth transforming (the paper's flame graph
//     highlights "the first call (of two)").
//
// Weight matrices are stored row-per-k so the inner j loop is stride-1
// only after interchange — exactly the Table 3 situation (interchange +
// SIMD suggested; outer loop parallel; stride profile improves).
func Backprop(p BackpropParams) *isa.Program {
	pb := isa.NewProgram("backprop")

	// Layer value and delta arrays (index 0 unused, as in Rodinia).
	inUnits := pb.Global("input_units", p.In+1)
	hidUnits := pb.Global("hidden_units", p.Hidden+1)
	outUnits := pb.Global("output_units", p.Out+1)
	hidDelta := pb.Global("hidden_delta", p.Hidden+1)
	outDelta := pb.Global("output_delta", p.Out+1)
	target := pb.Global("target", p.Out+1)

	// Weight matrices with a row-pointer indirection table, mimicking
	// Rodinia's float** layout: w[k] points at row k.
	inHidRows := pb.Global("input_weights_rows", (p.In+1)*(p.Hidden+1))
	inHidPtrs := pb.Global("input_weights", p.In+1)
	hidOutRows := pb.Global("hidden_weights_rows", (p.Hidden+1)*(p.Out+1))
	hidOutPtrs := pb.Global("hidden_weights", p.Hidden+1)
	inHidPrev := pb.Global("input_prev_weights", (p.In+1)*(p.Hidden+1))
	hidOutPrev := pb.Global("hidden_prev_weights", (p.Hidden+1)*(p.Out+1))

	// squash(x) = 1 / (1 + exp(-x)).
	squash := pb.Func("squash", 1)
	{
		x := squash.Arg(0)
		squash.SetFile("backprop.c")
		squash.At(211)
		one := squash.FConst(1)
		e := squash.FExp(squash.FNeg(x))
		squash.Ret(squash.FDiv(one, squash.FAdd(one, e)))
	}

	// bpnn_layerforward(l1base, l2base, connPtrBase, n1, n2) — Fig. 6.
	layerforward := pb.Func("bpnn_layerforward", 5)
	layerforward.SetSrcDepth(2)
	{
		f := layerforward
		f.SetFile("backprop.c")
		l1, l2, conn := f.Arg(0), f.Arg(1), f.Arg(2)
		n1, n2 := f.Arg(3), f.Arg(4)
		f.At(250)
		one := f.IConst(1)
		sum := f.NewReg()
		n2end := f.Add(n2, one)
		f.At(253)
		f.Loop("Lj", one, n2end, 1, func(j isa.Reg) {
			f.At(254)
			f.SetF(sum, 0)
			n1end := f.Add(n1, one)
			f.Loop("Lk", f.IConst(0), n1end, 1, func(k isa.Reg) {
				f.At(255)
				rowPtr := f.LoadIdx(conn, k, 0)  // I1: tmp1 = load(&conn + k)
				w := f.FLoadIdx(rowPtr, j, 0)    // I2: tmp2 = load(tmp1 + j)
				x := f.FLoadIdx(l1, k, 0)        // I3: tmp3 = load(&l1 + k)
				f.FAddTo(sum, sum, f.FMul(w, x)) // I4: sum += tmp2 * tmp3
			})
			f.At(257)
			v := f.Call(squash.ID(), sum) // I6
			f.FStoreIdx(l2, j, 0, v)      // I7
		})
		f.RetVoid()
	}

	// bpnn_output_error / bpnn_hidden_error: 1D and 2D error kernels.
	outputError := pb.Func("bpnn_output_error", 0)
	{
		f := outputError
		f.SetFile("backprop.c")
		f.At(274)
		one := f.IConst(1)
		outBase := f.IConst(outUnits.Base)
		tgtBase := f.IConst(target.Base)
		dltBase := f.IConst(outDelta.Base)
		f.Loop("Lj", one, f.IConst(p.Out+1), 1, func(j isa.Reg) {
			o := f.FLoadIdx(outBase, j, 0)
			t := f.FLoadIdx(tgtBase, j, 0)
			oneF := f.FConst(1)
			err := f.FMul(f.FMul(o, f.FSub(oneF, o)), f.FSub(t, o))
			f.FStoreIdx(dltBase, j, 0, err)
		})
		f.RetVoid()
	}

	hiddenError := pb.Func("bpnn_hidden_error", 0)
	hiddenError.SetSrcDepth(2)
	{
		f := hiddenError
		f.SetFile("backprop.c")
		f.At(288)
		one := f.IConst(1)
		sum := f.NewReg()
		dltBase := f.IConst(outDelta.Base)
		ptrBase := f.IConst(hidOutPtrs.Base)
		hidBase := f.IConst(hidUnits.Base)
		hdltBase := f.IConst(hidDelta.Base)
		f.Loop("Lj", one, f.IConst(p.Hidden+1), 1, func(j isa.Reg) {
			f.SetF(sum, 0)
			f.Loop("Lk", one, f.IConst(p.Out+1), 1, func(k isa.Reg) {
				d := f.FLoadIdx(dltBase, k, 0)
				rowPtr := f.LoadIdx(ptrBase, j, 0)
				w := f.FLoadIdx(rowPtr, k, 0)
				f.FAddTo(sum, sum, f.FMul(d, w))
			})
			h := f.FLoadIdx(hidBase, j, 0)
			oneF := f.FConst(1)
			err := f.FMul(f.FMul(h, f.FSub(oneF, h)), sum)
			f.FStoreIdx(hdltBase, j, 0, err)
		})
		f.RetVoid()
	}

	// bpnn_adjust_weights(deltaBase, ndelta, lyBase, nly, wPtrBase,
	// oldwBase): weight update with momentum — Table 3's L_adjust.
	adjust := pb.Func("bpnn_adjust_weights", 6)
	adjust.SetSrcDepth(2)
	{
		f := adjust
		f.SetFile("backprop.c")
		delta, ndelta, ly, nly, wPtr, oldw := f.Arg(0), f.Arg(1), f.Arg(2), f.Arg(3), f.Arg(4), f.Arg(5)
		f.At(320)
		one := f.IConst(1)
		eta := f.FConst(0.3)
		mom := f.FConst(0.3)
		ndltEnd := f.Add(ndelta, one)
		nlyEnd := f.Add(nly, one)
		f.Loop("Lj", one, ndltEnd, 1, func(j isa.Reg) {
			f.At(322)
			f.Loop("Lk", f.IConst(0), nlyEnd, 1, func(k isa.Reg) {
				d := f.FLoadIdx(delta, j, 0)
				v := f.FLoadIdx(ly, k, 0)
				rowPtr := f.LoadIdx(wPtr, k, 0)
				// oldw is a flat (nly+1) x (ndelta+1) row-major array.
				oldIdx := f.Add(f.Mul(k, ndltEnd), j)
				ow := f.FLoadIdx(oldw, oldIdx, 0)
				upd := f.FAdd(f.FMul(f.FMul(eta, d), v), f.FMul(mom, ow))
				w := f.FLoadIdx(rowPtr, j, 0)
				f.FStoreIdx(rowPtr, j, 0, f.FAdd(w, upd))
				f.FStoreIdx(oldw, oldIdx, 0, upd)
			})
		})
		f.RetVoid()
	}

	// setup: fill inputs, weights and the row-pointer tables with an LCG.
	setup := pb.Func("bpnn_setup", 0)
	{
		f := setup
		f.SetFile("facetrain.c")
		f.At(10)
		seed := f.NewReg()
		f.SetI(seed, 7)
		lcg := func() isa.Reg {
			// seed = (seed*1103515245 + 12345) mod 2^31
			a := f.IConst(1103515245)
			c := f.IConst(12345)
			m := f.IConst(1 << 31)
			f.Mov(seed, f.Mod(f.Add(f.Mul(seed, a), c), m))
			return seed
		}
		fill := func(g isa.Global) {
			base := f.IConst(g.Base)
			f.Loop("init", f.IConst(0), f.IConst(g.Size), 1, func(i isa.Reg) {
				r := lcg()
				val := f.FDiv(f.I2F(f.Mod(r, f.IConst(1000))), f.FConst(1000))
				f.FStoreIdx(base, i, 0, val)
			})
		}
		fill(inUnits)
		fill(target)
		fill(inHidRows)
		fill(hidOutRows)
		fill(inHidPrev)
		fill(hidOutPrev)
		// Row pointer tables: w[k] = &rows[k*(rowlen)].
		ptr1 := f.IConst(inHidPtrs.Base)
		f.Loop("ptrs1", f.IConst(0), f.IConst(p.In+1), 1, func(k isa.Reg) {
			addr := f.Add(f.IConst(inHidRows.Base), f.Mul(k, f.IConst(p.Hidden+1)))
			f.StoreIdx(ptr1, k, 0, addr)
		})
		ptr2 := f.IConst(hidOutPtrs.Base)
		f.Loop("ptrs2", f.IConst(0), f.IConst(p.Hidden+1), 1, func(k isa.Reg) {
			addr := f.Add(f.IConst(hidOutRows.Base), f.Mul(k, f.IConst(p.Out+1)))
			f.StoreIdx(ptr2, k, 0, addr)
		})
		f.RetVoid()
	}

	// train: one forward/backward pass; calling it from a dedicated
	// call site groups the five kernel calls into a single region of
	// the schedule tree — the paper's facetrain.c:25 region.
	train := pb.Func("bpnn_train_kernel", 0)
	{
		f := train
		f.SetFile("facetrain.c")
		f.At(25)
		// Forward pass: the first (big) layerforward call is the paper's
		// region of interest; the second is small.
		f.Call(layerforward.ID(),
			f.IConst(inUnits.Base), f.IConst(hidUnits.Base), f.IConst(inHidPtrs.Base),
			f.IConst(p.In), f.IConst(p.Hidden))
		f.Call(layerforward.ID(),
			f.IConst(hidUnits.Base), f.IConst(outUnits.Base), f.IConst(hidOutPtrs.Base),
			f.IConst(p.Hidden), f.IConst(p.Out))
		f.Call(outputError.ID())
		f.Call(hiddenError.ID())
		// Backward pass: the second (big) adjust call is the region of
		// interest in Fig. 7.
		f.Call(adjust.ID(),
			f.IConst(outDelta.Base), f.IConst(p.Out),
			f.IConst(hidUnits.Base), f.IConst(p.Hidden),
			f.IConst(hidOutPtrs.Base), f.IConst(hidOutPrev.Base))
		f.Call(adjust.ID(),
			f.IConst(hidDelta.Base), f.IConst(p.Hidden),
			f.IConst(inUnits.Base), f.IConst(p.In),
			f.IConst(inHidPtrs.Base), f.IConst(inHidPrev.Base))
		f.RetVoid()
	}

	main := pb.Func("main", 0)
	{
		f := main
		f.SetFile("facetrain.c")
		f.At(20)
		f.Call(setup.ID())
		f.At(25)
		f.Call(train.ID())
		f.Halt()
	}
	pb.SetMain(main)
	return pb.MustBuild()
}
