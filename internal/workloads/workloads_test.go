package workloads_test

import (
	"strings"
	"testing"

	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// TestAllWorkloadsBuildAndRun: every bundled program validates and
// executes to completion under the plain VM.
func TestAllWorkloadsBuildAndRun(t *testing.T) {
	specs := workloads.Rodinia()
	for _, extra := range []string{"gemsfdtd", "example1", "example2"} {
		specs = append(specs, *workloads.ByName(extra))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			prog := spec.Build()
			if err := prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			m := vm.New(prog)
			if err := m.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if m.Stats().Ops == 0 {
				t.Fatal("program executed no instructions")
			}
		})
	}
}

// TestWorkloadsDeterministic: building and running a twin twice gives
// identical disassembly and memory, so profiles and golden outputs are
// stable.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"backprop", "bfs", "gemsfdtd", "streamcluster"} {
		spec := workloads.ByName(name)
		p1, p2 := spec.Build(), spec.Build()
		if p1.Disasm() != p2.Disasm() {
			t.Errorf("%s: two builds disassemble differently", name)
		}
		m1, m2 := vm.New(p1), vm.New(p2)
		if err := m1.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m2.Run(); err != nil {
			t.Fatal(err)
		}
		a, b := m1.Mem(), m2.Mem()
		if len(a) != len(b) {
			t.Fatalf("%s: memory sizes differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: memory differs at word %d", name, i)
			}
		}
	}
}

// TestFig6KernelListing: the layer-forward kernel disassembles to the
// paper's Fig. 6 shape — a pointer load (I1), two indexed data loads
// (I2, I3), the multiply-accumulate (I4), the squash call (I6) and the
// l2 store (I7).
func TestFig6KernelListing(t *testing.T) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	listing := prog.DisasmFunc(prog.FuncByName("bpnn_layerforward"))
	for _, want := range []string{
		"load(&",         // I1/I2/I3 loads
		"fmul",           // I4
		"fadd",           // I4
		"call squash",    // I6
		"fstore(&",       // I7
		"backprop.c:255", // debug info the feedback maps onto
	} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

// TestBackpropParamsScale: the kernel trip counts follow the parameters
// (guards the Table 1/2 instance sizes).
func TestBackpropParamsScale(t *testing.T) {
	p := workloads.DefaultBackpropParams()
	if p.In != 42 || p.Hidden != 16 {
		t.Fatalf("default params %+v; Tables 1/2 need In=42 (ck in [0,42]) and Hidden=16 (cj in [0,15])", p)
	}
	prog := workloads.Backprop(workloads.BackpropParams{In: 5, Hidden: 3, Out: 2})
	if err := vm.New(prog).Run(); err != nil {
		t.Fatalf("small instance: %v", err)
	}
}

// TestSpecsComplete: registry invariants.
func TestSpecsComplete(t *testing.T) {
	specs := workloads.Rodinia()
	if len(specs) != 19 {
		t.Fatalf("Rodinia registry has %d entries, want 19", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
		if s.Build == nil || len(s.RegionFuncs) == 0 || s.PaperReasons == "" {
			t.Errorf("%s: incomplete spec", s.Name)
		}
		prog := s.Build()
		for _, fn := range s.RegionFuncs {
			if prog.FuncByName(fn) == nil {
				t.Errorf("%s: region function %q does not exist", s.Name, fn)
			}
		}
	}
	if workloads.ByName("no-such-benchmark") != nil {
		t.Error("ByName must return nil for unknown names")
	}
}

// TestLibcFunctionsAreOpaqueNamed: the static baseline keys off the
// libc_ prefix; every opaque helper must carry it.
func TestLibcFunctionsAreOpaqueNamed(t *testing.T) {
	prog := workloads.NN()
	var found bool
	for _, f := range prog.Funcs {
		if strings.HasPrefix(f.Name, "libc_") {
			found = true
		}
	}
	if !found {
		t.Error("nn must contain a libc_-prefixed opaque reader")
	}
}
