package workloads

import "polyprof/internal/isa"

// Hotspot builds the Rodinia hotspot twin: thermal simulation on a 2D
// grid, updated in place Gauss–Seidel style with clamped (MIN/MAX)
// boundary indexing, which makes the loop bounds/conditionals
// non-affine to the static baseline (B) and leaves almost no exactly
// affine statements (the paper reports 0% %Aff from hand-linearized
// modulo addressing; our clamps have the same folding effect).  The
// time-carried in-place dependencies force skewing for tiling —
// hotspot is one of the paper's skew=Y rows.
func Hotspot() *isa.Program {
	const (
		rows  = 24
		cols  = 24
		steps = 3
	)
	pb := isa.NewProgram("hotspot")
	temp := pb.Global("temp", rows*cols)
	power := pb.Global("power", rows*cols)

	setup := pb.Func("hotspot_setup", 0)
	{
		f := setup
		f.SetFile("hotspot_openmp.cpp")
		f.At(90)
		lcg := newLCG(f, 23)
		fillRandomF(f, lcg, "temp", temp)
		fillRandomF(f, lcg, "power", power)
		f.RetVoid()
	}

	kernel := pb.Func("compute_tran_temp", 0)
	kernel.SetSrcDepth(4)
	{
		f := kernel
		f.SetFile("hotspot_openmp.cpp")
		f.At(318)
		tB := f.IConst(temp.Base)
		pB := f.IConst(power.Base)
		cap := f.FConst(0.5)
		f.Loop("Lt", f.IConst(0), f.IConst(steps), 1, func(t isa.Reg) {
			f.At(320)
			f.Loop("Lr", f.IConst(0), f.IConst(rows), 1, func(r isa.Reg) {
				f.Loop("Lc", f.IConst(1), f.IConst(cols-1), 1, func(c isa.Reg) {
					lin := f.Add(f.Mul(r, f.IConst(cols)), c)
					center := f.FLoadIdx(tB, lin, 0)
					west := f.FLoadIdx(tB, lin, -1)
					east := f.FLoadIdx(tB, lin, 1)
					// Clamped vertical scan: MIN/MAX bounds are opaque to
					// the static baseline (B) and break affine folding at
					// the borders, crushing the affine fraction as the
					// paper's hand-linearized variant does.
					rlo := f.MaxI(f.Sub(r, f.IConst(1)), f.IConst(0))
					rhi := f.MinI(f.Add(r, f.IConst(2)), f.IConst(rows))
					vsum := f.NewReg()
					f.SetF(vsum, 0)
					f.Loop("Lnb", rlo, rhi, 1, func(rr isa.Reg) {
						v := f.FLoadIdx(tB, f.Add(f.Mul(rr, f.IConst(cols)), c), 0)
						f.FAddTo(vsum, vsum, v)
					})
					pw := f.FLoadIdx(pB, lin, 0)
					sum := f.FAdd(f.FAdd(west, east), vsum)
					delta := f.FMul(cap, f.FAdd(pw, f.FSub(sum, f.FMul(f.FConst(5), center))))
					f.FStoreIdx(tB, lin, 0, f.FAdd(center, delta))
				})
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("hotspot_openmp.cpp")
	m.At(40)
	m.Call(setup.ID())
	m.At(318)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Hotspot3D builds the Rodinia hotspot3D twin: the same thermal update
// on a 3D grid with explicit double buffering (ping/pong arrays chosen
// through a pointer cell — the source of the static baseline's F) and
// interior-only loops, so the dynamic profile is almost entirely affine
// (paper: 99%) and the three spatial dimensions are fully parallel and
// tilable (TileD 3D).
func Hotspot3D() *isa.Program {
	const (
		nx    = 12
		ny    = 12
		nz    = 8
		steps = 4
	)
	pb := isa.NewProgram("hotspot3D")
	tIn := pb.Global("tIn", nx*ny*nz)
	tOut := pb.Global("tOut", nx*ny*nz)
	pw := pb.Global("power3d", nx*ny*nz)
	ptrs := pb.Global("bufptrs", 2)

	setup := pb.Func("hotspot3d_setup", 0)
	{
		f := setup
		f.SetFile("3D.c")
		f.At(100)
		lcg := newLCG(f, 29)
		fillRandomF(f, lcg, "tin", tIn)
		fillRandomF(f, lcg, "pw3", pw)
		b := f.IConst(ptrs.Base)
		f.Store(b, 0, f.IConst(tIn.Base))
		f.Store(b, 1, f.IConst(tOut.Base))
		f.RetVoid()
	}

	kernel := pb.Func("compute_tran_temp_3d", 0)
	kernel.SetSrcDepth(4)
	{
		f := kernel
		f.SetFile("3D.c")
		f.At(261)
		pB := f.IConst(pw.Base)
		bufs := f.IConst(ptrs.Base)
		f.Loop("Lt", f.IConst(0), f.IConst(steps), 1, func(t isa.Reg) {
			// Ping-pong buffer selection via the pointer table.
			sel := f.Mod(t, f.IConst(2))
			src := f.LoadIdx(bufs, sel, 0)
			dst := f.LoadIdx(bufs, f.Sub(f.IConst(1), sel), 0)
			f.At(263)
			f.Loop("Lz", f.IConst(1), f.IConst(nz-1), 1, func(z isa.Reg) {
				f.Loop("Ly", f.IConst(1), f.IConst(ny-1), 1, func(y isa.Reg) {
					f.Loop("Lx", f.IConst(1), f.IConst(nx-1), 1, func(x isa.Reg) {
						lin := f.Add(f.Add(f.Mul(z, f.IConst(nx*ny)), f.Mul(y, f.IConst(nx))), x)
						c := f.FLoadIdx(src, lin, 0)
						e := f.FLoadIdx(src, lin, 1)
						w := f.FLoadIdx(src, lin, -1)
						n := f.FLoadIdx(src, lin, nx)
						s := f.FLoadIdx(src, lin, -nx)
						u := f.FLoadIdx(src, lin, nx*ny)
						d := f.FLoadIdx(src, lin, -nx*ny)
						p := f.FLoadIdx(pB, lin, 0)
						sum := f.FAdd(f.FAdd(f.FAdd(e, w), f.FAdd(n, s)), f.FAdd(u, d))
						v := f.FAdd(c, f.FMul(f.FConst(0.125), f.FAdd(p, f.FSub(sum, f.FMul(f.FConst(6), c)))))
						f.FStoreIdx(dst, lin, 0, v)
					})
				})
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("3D.c")
	m.At(30)
	m.Call(setup.ID())
	m.At(261)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// KMeans builds the Rodinia kmeans twin: iterative clustering with a
// distance nest (points x clusters x features), argmin conditionals,
// indirect accumulation into the member cluster (F), opaque libc_rand
// initialization inside the clustering function (R), and writable
// pointer parameters (A) — the paper's RFA row.  The distance nest
// itself is fully affine and parallel, giving the high %Aff (97%) and
// 4D tiling of Table 5.
func KMeans() *isa.Program {
	const (
		npoints   = 96
		nfeatures = 4
		nclusters = 5
		iters     = 3
	)
	pb := isa.NewProgram("kmeans")
	feats := pb.Global("features", npoints*nfeatures)
	clusters := pb.Global("clusters", nclusters*nfeatures)
	member := pb.Global("membership", npoints)
	newCenters := pb.Global("new_centers", nclusters*nfeatures)
	newCount := pb.Global("new_centers_len", nclusters)
	seed := pb.Global("rand_seed", 1)
	rand := libcRand(pb, seed)

	// kmeans_clustering(featBase, clustBase, memberBase).
	clustering := pb.Func("kmeans_clustering", 3)
	clustering.SetSrcDepth(4)
	{
		f := clustering
		f.SetFile("kmeans_clustering.c")
		featB, clB, memB := f.Arg(0), f.Arg(1), f.Arg(2)
		f.At(160)
		ncB := f.IConst(newCenters.Base)
		nlB := f.IConst(newCount.Base)
		// Random initial centers through the opaque libc call (R).
		f.Loop("Linit", f.IConst(0), f.IConst(nclusters), 1, func(c isa.Reg) {
			p := f.Mod(f.Call(rand), f.IConst(npoints))
			f.Loop("Lf0", f.IConst(0), f.IConst(nfeatures), 1, func(ft isa.Reg) {
				v := f.FLoadIdx(featB, f.Add(f.Mul(p, f.IConst(nfeatures)), ft), 0)
				f.FStoreIdx(clB, f.Add(f.Mul(c, f.IConst(nfeatures)), ft), 0, v)
			})
		})
		f.Loop("Liter", f.IConst(0), f.IConst(iters), 1, func(it isa.Reg) {
			f.At(170)
			f.Loop("Li", f.IConst(0), f.IConst(npoints), 1, func(i isa.Reg) {
				bestC := f.NewReg()
				bestD := f.NewReg()
				f.SetI(bestC, 0)
				f.SetF(bestD, 1e30)
				f.Loop("Lc", f.IConst(0), f.IConst(nclusters), 1, func(c isa.Reg) {
					dist := f.NewReg()
					f.SetF(dist, 0)
					f.Loop("Lfeat", f.IConst(0), f.IConst(nfeatures), 1, func(ft isa.Reg) {
						a := f.FLoadIdx(featB, f.Add(f.Mul(i, f.IConst(nfeatures)), ft), 0)
						b := f.FLoadIdx(clB, f.Add(f.Mul(c, f.IConst(nfeatures)), ft), 0)
						d := f.FSub(a, b)
						f.FAddTo(dist, dist, f.FMul(d, d))
					})
					better := f.FCmpLT(dist, bestD)
					f.If(better, func() {
						f.FMovTo(bestD, dist)
						f.Mov(bestC, c)
					}, nil)
				})
				f.StoreIdx(memB, i, 0, bestC)
				// Indirect accumulation into the chosen cluster (F).
				f.StoreIdx(nlB, bestC, 0, f.Add(f.LoadIdx(nlB, bestC, 0), f.IConst(1)))
				f.Loop("Lacc", f.IConst(0), f.IConst(nfeatures), 1, func(ft isa.Reg) {
					addr := f.Add(f.Mul(bestC, f.IConst(nfeatures)), ft)
					v := f.FLoadIdx(featB, f.Add(f.Mul(i, f.IConst(nfeatures)), ft), 0)
					f.FStoreIdx(ncB, addr, 0, f.FAdd(f.FLoadIdx(ncB, addr, 0), v))
				})
			})
		})
		f.RetVoid()
	}

	setup := pb.Func("kmeans_setup", 0)
	{
		f := setup
		f.SetFile("kmeans.c")
		f.At(50)
		lcg := newLCG(f, 31)
		fillRandomF(f, lcg, "feat", feats)
		f.Store(f.IConst(seed.Base), 0, f.IConst(7))
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("kmeans.c")
	m.At(30)
	m.Call(setup.ID())
	m.At(160)
	m.Call(clustering.ID(), m.IConst(feats.Base), m.IConst(clusters.Base), m.IConst(member.Base))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// LavaMD builds the Rodinia lavaMD twin: particle interactions between
// a box and its neighbor boxes from an indirection list.  The neighbor
// box id is loaded from memory (non-affine accesses, F) and the
// neighbor count is data dependent (B), so almost nothing folds affine
// — the paper reports 0% %Aff for lavaMD.
func LavaMD() *isa.Program {
	const (
		boxes    = 27
		maxNeigh = 6
		parts    = 6
	)
	pb := isa.NewProgram("lavaMD")
	pos := pb.Global("rv", boxes*parts*4)
	frc := pb.Global("fv", boxes*parts*4)
	nbList := pb.Global("nei_list", boxes*maxNeigh)
	nbCount := pb.Global("nei_count", boxes)

	setup := pb.Func("lavamd_setup", 0)
	{
		f := setup
		f.SetFile("kernel_cpu.c")
		f.At(40)
		lcg := newLCG(f, 37)
		fillRandomF(f, lcg, "pos", pos)
		fillRandomI(f, lcg, "nbl", nbList, boxes)
		nc := f.IConst(nbCount.Base)
		f.Loop("nbc", f.IConst(0), f.IConst(boxes), 1, func(b isa.Reg) {
			f.StoreIdx(nc, b, 0, f.Add(lcg.nextMod(maxNeigh-1), f.IConst(1)))
		})
		f.RetVoid()
	}

	kernel := pb.Func("kernel_cpu", 0)
	kernel.SetSrcDepth(4)
	{
		f := kernel
		f.SetFile("kernel_cpu.c")
		f.At(123)
		posB := f.IConst(pos.Base)
		frcB := f.IConst(frc.Base)
		nlB := f.IConst(nbList.Base)
		ncB := f.IConst(nbCount.Base)
		f.Loop("Lbox", f.IConst(0), f.IConst(boxes), 1, func(b isa.Reg) {
			cnt := f.LoadIdx(ncB, b, 0) // data-dependent bound (B)
			f.Loop("Lnb", f.IConst(0), cnt, 1, func(nb isa.Reg) {
				other := f.LoadIdx(nlB, f.Add(f.Mul(b, f.IConst(maxNeigh)), nb), 0)
				f.At(127)
				f.Loop("Li", f.IConst(0), f.IConst(parts), 1, func(i isa.Reg) {
					selfIdx := f.Add(f.Mul(b, f.IConst(parts*4)), f.Mul(i, f.IConst(4)))
					ax := f.FLoadIdx(posB, selfIdx, 0)
					acc := f.NewReg()
					f.SetF(acc, 0)
					f.Loop("Lj", f.IConst(0), f.IConst(parts), 1, func(j isa.Reg) {
						otherIdx := f.Add(f.Mul(other, f.IConst(parts*4)), f.Mul(j, f.IConst(4)))
						bx := f.FLoadIdx(posB, otherIdx, 0) // indirect (F)
						d := f.FSub(ax, bx)
						r2 := f.FAdd(f.FMul(d, d), f.FConst(0.01))
						f.FAddTo(acc, acc, f.FDiv(d, r2))
					})
					f.FStoreIdx(frcB, selfIdx, 0, f.FAdd(f.FLoadIdx(frcB, selfIdx, 0), acc))
				})
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("kernel_cpu.c")
	m.At(20)
	m.Call(setup.ID())
	m.At(123)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}
