// Package workloads bundles every program the reproduction profiles:
// the paper's illustrating examples (Fig. 3), synthetic twins of the 19
// Rodinia 3.1 benchmarks used in Table 5, the backprop and GemsFDTD
// case-study kernels (Tables 3 and 4), and assorted microbenchmarks.
//
// The twins are written directly for the polyprof ISA.  They reproduce
// each original benchmark's *structural* profile — loop-nest shapes,
// call structure, affine and non-affine accesses, linearized loops,
// indirection — at laptop scale, which is what every metric in the
// paper's evaluation measures.
package workloads

import "polyprof/internal/isa"

// Example1 builds the paper's Fig. 3 Example 1: a function A whose loop
// L1 calls a function B that itself contains a loop L2, so the
// interprocedural region behaves as a two-dimensional nest.
// Trip counts: L1 runs twice, L2 runs twice.
func Example1() *isa.Program {
	pb := isa.NewProgram("fig3-example1")
	data := pb.Global("data", 64)

	b := pb.Func("B", 1) // arg: i (outer iteration)
	{
		i := b.Arg(0)
		lo := b.IConst(0)
		hi := b.IConst(2)
		b.Loop("L2", lo, hi, 1, func(j isa.Reg) {
			// data[2*i + j] = i + j: a visible statement inside the 2D nest.
			addr := b.Add(b.Add(b.IConst(data.Base), b.MulImm(i, 2)), j)
			b.Store(addr, 0, b.Add(i, j))
		})
		b.RetVoid()
	}

	a := pb.Func("A", 0)
	{
		lo := a.IConst(0)
		hi := a.IConst(2)
		a.Loop("L1", lo, hi, 1, func(i isa.Reg) {
			a.Call(b.ID(), i)
		})
		a.RetVoid()
	}

	m := pb.Func("M", 0)
	m.Call(a.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Example2 builds the paper's Fig. 3 Example 2: a recursive function B
// (the recursive component's single entry and header) that calls a
// shared helper C both inside and outside the recursion.  M first calls
// D, which calls C (outside any recursive loop), then calls B, which
// recurses twice.
func Example2() *isa.Program {
	pb := isa.NewProgram("fig3-example2")
	data := pb.Global("data", 64)

	c := pb.Func("C", 1) // arg: depth tag, stores it
	{
		d := c.Arg(0)
		addr := c.AddrOf(data, c.MinI(d, c.IConst(63)))
		c.Store(addr, 0, d)
		c.RetVoid()
	}

	d := pb.Func("D", 0)
	{
		d.Call(c.ID(), d.IConst(50))
		d.RetVoid()
	}

	b := pb.Func("B", 1) // arg: depth
	{
		depth := b.Arg(0)
		b.Call(c.ID(), depth)
		cond := b.CmpLT(depth, b.IConst(2))
		b.If(cond, func() {
			b.Call(b.ID(), b.Add(depth, b.IConst(1)))
			// This block (the call continuation) is the paper's B5: it
			// executes once per recursive call, i.e. it belongs to the
			// recursive loop.
			addr := b.AddrOf(data, b.AddImm(depth, 32))
			b.Store(addr, 0, depth)
		}, nil)
		b.RetVoid()
	}

	m := pb.Func("M", 0)
	m.Call(d.ID())
	m.Call(b.ID(), m.IConst(0))
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}
