package workloads

import "polyprof/internal/isa"

// PolyBench twins: the paper cites PolyBench [56] as the canonical
// fully affine suite ("even in programs where the hot region is affine
// such as in PolyBench, profiling the entire benchmark reveals a large
// amount of non-regular parts").  These kernels are the classic
// polyhedral test cases; they fold exactly and exercise the scheduler's
// textbook behaviours: reduction-carried innermost loops (gemm),
// producer/consumer fusion (2mm, atax), triangular domains (trisolv),
// double-buffered stencils (jacobi-2d) and the in-place stencil that
// *requires* skewing (seidel-2d).

// PolyBench returns the bundled PolyBench twins.
func PolyBench() []Spec {
	return []Spec{
		{Name: "gemm", Build: Gemm, RegionFuncs: []string{"kernel_gemm"}},
		{Name: "2mm", Build: TwoMM, RegionFuncs: []string{"kernel_2mm"}},
		{Name: "atax", Build: Atax, RegionFuncs: []string{"kernel_atax"}},
		{Name: "trisolv", Build: Trisolv, RegionFuncs: []string{"kernel_trisolv"}},
		{Name: "jacobi-2d", Build: Jacobi2D, RegionFuncs: []string{"kernel_jacobi_2d"}},
		{Name: "seidel-2d", Build: Seidel2D, RegionFuncs: []string{"kernel_seidel_2d"}},
	}
}

// Gemm builds C = alpha*A*B + beta*C (ni x nk x nj).
func Gemm() *isa.Program {
	const ni, nj, nk = 12, 14, 10
	pb := isa.NewProgram("gemm")
	a := pb.Global("A", ni*nk)
	bG := pb.Global("B", nk*nj)
	c := pb.Global("C", ni*nj)

	kernel := pb.Func("kernel_gemm", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("gemm.c")
		f.At(80)
		aB, bB, cB := f.IConst(a.Base), f.IConst(bG.Base), f.IConst(c.Base)
		alpha, beta := f.FConst(1.5), f.FConst(1.2)
		f.Loop("Li", f.IConst(0), f.IConst(ni), 1, func(i isa.Reg) {
			f.At(82)
			f.Loop("Lj", f.IConst(0), f.IConst(nj), 1, func(j isa.Reg) {
				cIdx := f.Add(f.Mul(i, f.IConst(nj)), j)
				acc := f.NewReg()
				f.FMovTo(acc, f.FMul(beta, f.FLoadIdx(cB, cIdx, 0)))
				f.At(84)
				f.Loop("Lk", f.IConst(0), f.IConst(nk), 1, func(k isa.Reg) {
					av := f.FLoadIdx(aB, f.Add(f.Mul(i, f.IConst(nk)), k), 0)
					bv := f.FLoadIdx(bB, f.Add(f.Mul(k, f.IConst(nj)), j), 0)
					f.FMovTo(acc, f.FAdd(acc, f.FMul(f.FMul(alpha, av), bv)))
				})
				f.FStoreIdx(cB, cIdx, 0, acc)
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("gemm.c")
	m.At(20)
	lcg := newLCG(m, 101)
	fillRandomF(m, lcg, "A", a)
	fillRandomF(m, lcg, "B", bG)
	fillRandomF(m, lcg, "C", c)
	m.At(80)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// TwoMM builds D = A*B; E = D*C — two chained matmuls whose fusion
// structure the component analysis must see (producer/consumer pair).
func TwoMM() *isa.Program {
	const n = 10
	pb := isa.NewProgram("2mm")
	a := pb.Global("A", n*n)
	bG := pb.Global("B", n*n)
	c := pb.Global("C", n*n)
	d := pb.Global("D", n*n)
	e := pb.Global("E", n*n)

	kernel := pb.Func("kernel_2mm", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("2mm.c")
		aB, bB, cB, dB, eB := f.IConst(a.Base), f.IConst(bG.Base), f.IConst(c.Base), f.IConst(d.Base), f.IConst(e.Base)
		matmul := func(line int, x, y, z isa.Reg) {
			f.At(line)
			f.Loop("Li", f.IConst(0), f.IConst(n), 1, func(i isa.Reg) {
				f.Loop("Lj", f.IConst(0), f.IConst(n), 1, func(j isa.Reg) {
					acc := f.NewReg()
					f.SetF(acc, 0)
					f.Loop("Lk", f.IConst(0), f.IConst(n), 1, func(k isa.Reg) {
						xv := f.FLoadIdx(x, f.Add(f.Mul(i, f.IConst(n)), k), 0)
						yv := f.FLoadIdx(y, f.Add(f.Mul(k, f.IConst(n)), j), 0)
						f.FMovTo(acc, f.FAdd(acc, f.FMul(xv, yv)))
					})
					f.FStoreIdx(z, f.Add(f.Mul(i, f.IConst(n)), j), 0, acc)
				})
			})
		}
		matmul(40, aB, bB, dB)
		matmul(50, dB, cB, eB)
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("2mm.c")
	m.At(20)
	lcg := newLCG(m, 103)
	fillRandomF(m, lcg, "A", a)
	fillRandomF(m, lcg, "B", bG)
	fillRandomF(m, lcg, "C", c)
	m.At(40)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Atax builds y = A^T (A x): a forward product followed by a transposed
// accumulation.
func Atax() *isa.Program {
	const n, mDim = 14, 12
	pb := isa.NewProgram("atax")
	a := pb.Global("A", mDim*n)
	x := pb.Global("x", n)
	y := pb.Global("y", n)
	tmp := pb.Global("tmp", mDim)

	kernel := pb.Func("kernel_atax", 0)
	kernel.SetSrcDepth(2)
	{
		f := kernel
		f.SetFile("atax.c")
		aB, xB, yB, tB := f.IConst(a.Base), f.IConst(x.Base), f.IConst(y.Base), f.IConst(tmp.Base)
		f.At(60)
		f.Loop("Lzero", f.IConst(0), f.IConst(n), 1, func(j isa.Reg) {
			f.FStoreIdx(yB, j, 0, f.FConst(0))
		})
		f.At(63)
		f.Loop("Li", f.IConst(0), f.IConst(mDim), 1, func(i isa.Reg) {
			acc := f.NewReg()
			f.SetF(acc, 0)
			f.Loop("Lj1", f.IConst(0), f.IConst(n), 1, func(j isa.Reg) {
				av := f.FLoadIdx(aB, f.Add(f.Mul(i, f.IConst(n)), j), 0)
				f.FMovTo(acc, f.FAdd(acc, f.FMul(av, f.FLoadIdx(xB, j, 0))))
			})
			f.FStoreIdx(tB, i, 0, acc)
			f.At(68)
			f.Loop("Lj2", f.IConst(0), f.IConst(n), 1, func(j isa.Reg) {
				av := f.FLoadIdx(aB, f.Add(f.Mul(i, f.IConst(n)), j), 0)
				old := f.FLoadIdx(yB, j, 0)
				f.FStoreIdx(yB, j, 0, f.FAdd(old, f.FMul(av, acc)))
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("atax.c")
	m.At(20)
	lcg := newLCG(m, 107)
	fillRandomF(m, lcg, "A", a)
	fillRandomF(m, lcg, "x", x)
	m.At(60)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Trisolv builds a lower-triangular solve Lx = b: the triangular
// iteration domain { 0 <= j < i < n } must fold exactly.
func Trisolv() *isa.Program {
	const n = 16
	pb := isa.NewProgram("trisolv")
	l := pb.Global("L", n*n)
	x := pb.Global("x", n)
	bV := pb.Global("b", n)

	kernel := pb.Func("kernel_trisolv", 0)
	kernel.SetSrcDepth(2)
	{
		f := kernel
		f.SetFile("trisolv.c")
		lB, xB, bB := f.IConst(l.Base), f.IConst(x.Base), f.IConst(bV.Base)
		f.At(50)
		f.Loop("Li", f.IConst(0), f.IConst(n), 1, func(i isa.Reg) {
			acc := f.NewReg()
			f.FMovTo(acc, f.FLoadIdx(bB, i, 0))
			f.Loop("Lj", f.IConst(0), i, 1, func(j isa.Reg) {
				lv := f.FLoadIdx(lB, f.Add(f.Mul(i, f.IConst(n)), j), 0)
				f.FMovTo(acc, f.FSub(acc, f.FMul(lv, f.FLoadIdx(xB, j, 0))))
			})
			diag := f.FLoadIdx(lB, f.Add(f.Mul(i, f.IConst(n)), i), 0)
			f.FStoreIdx(xB, i, 0, f.FDiv(acc, diag))
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("trisolv.c")
	m.At(20)
	lcg := newLCG(m, 109)
	fillRandomF(m, lcg, "b", bV)
	// Diagonally dominant L so the solve stays finite.
	lB := m.IConst(l.Base)
	m.Loop("initL", m.IConst(0), m.IConst(n*n), 1, func(k isa.Reg) {
		v := m.FAdd(m.FDiv(m.I2F(lcg.nextMod(100)), m.FConst(200)), m.FConst(1))
		m.FStoreIdx(lB, k, 0, v)
	})
	m.At(50)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Jacobi2D builds the double-buffered 2D Jacobi stencil over tsteps:
// spatial dimensions fully parallel, 2D tilable (plus the time loop,
// which carries).
func Jacobi2D() *isa.Program {
	const (
		n      = 16
		tsteps = 3
	)
	pb := isa.NewProgram("jacobi-2d")
	aG := pb.Global("A", n*n)
	bG := pb.Global("B", n*n)

	kernel := pb.Func("kernel_jacobi_2d", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("jacobi-2d.c")
		aB, bB := f.IConst(aG.Base), f.IConst(bG.Base)
		fifth := f.FConst(0.2)
		stencil := func(line int, src, dst isa.Reg) {
			f.At(line)
			f.Loop("Li", f.IConst(1), f.IConst(n-1), 1, func(i isa.Reg) {
				f.Loop("Lj", f.IConst(1), f.IConst(n-1), 1, func(j isa.Reg) {
					lin := f.Add(f.Mul(i, f.IConst(n)), j)
					sum := f.FAdd(
						f.FAdd(f.FLoadIdx(src, lin, 0), f.FLoadIdx(src, lin, -1)),
						f.FAdd(f.FLoadIdx(src, lin, 1),
							f.FAdd(f.FLoadIdx(src, lin, -n), f.FLoadIdx(src, lin, n))))
					f.FStoreIdx(dst, lin, 0, f.FMul(fifth, sum))
				})
			})
		}
		f.Loop("Lt", f.IConst(0), f.IConst(tsteps), 1, func(t isa.Reg) {
			stencil(75, aB, bB)
			stencil(80, bB, aB)
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("jacobi-2d.c")
	m.At(20)
	lcg := newLCG(m, 113)
	fillRandomF(m, lcg, "A", aG)
	m.At(75)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// Seidel2D builds the in-place Gauss–Seidel 2D stencil: the textbook
// kernel whose dependencies (distance vectors mixing (0,1,*), (1,*,*)
// and negative spatial components) admit tiling only after skewing —
// the scheduler must discover a skewed permutable band.
func Seidel2D() *isa.Program {
	const (
		n      = 14
		tsteps = 3
	)
	pb := isa.NewProgram("seidel-2d")
	aG := pb.Global("A", n*n)

	kernel := pb.Func("kernel_seidel_2d", 0)
	kernel.SetSrcDepth(3)
	{
		f := kernel
		f.SetFile("seidel-2d.c")
		aB := f.IConst(aG.Base)
		ninth := f.FConst(1.0 / 9.0)
		f.At(40)
		f.Loop("Lt", f.IConst(0), f.IConst(tsteps), 1, func(t isa.Reg) {
			f.Loop("Li", f.IConst(1), f.IConst(n-1), 1, func(i isa.Reg) {
				f.Loop("Lj", f.IConst(1), f.IConst(n-1), 1, func(j isa.Reg) {
					lin := f.Add(f.Mul(i, f.IConst(n)), j)
					sum := f.NewReg()
					f.SetF(sum, 0)
					for _, off := range []int64{-n - 1, -n, -n + 1, -1, 0, 1, n - 1, n, n + 1} {
						f.FMovTo(sum, f.FAdd(sum, f.FLoadIdx(aB, lin, off)))
					}
					f.FStoreIdx(aB, lin, 0, f.FMul(ninth, sum))
				})
			})
		})
		f.RetVoid()
	}

	m := pb.Func("main", 0)
	m.SetFile("seidel-2d.c")
	m.At(20)
	lcg := newLCG(m, 127)
	fillRandomF(m, lcg, "A", aG)
	m.At(40)
	m.Call(kernel.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}
