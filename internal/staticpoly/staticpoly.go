// Package staticpoly is the static affine-region analyzer polyprof is
// compared against in Experiment II — a stand-in for LLVM Polly.  It
// analyzes isa programs *without executing them*: static CFGs and loop
// forests, flow-insensitive symbolic classification of register values,
// and per-loop modelability checks.  When a region cannot be modeled as
// an affine program the analyzer reports the paper's failure taxonomy:
//
//	R  unhandled function call (opaque/"libc" callee or recursion)
//	C  complex CFG (early return / multi-level break inside a loop)
//	B  non-affine loop bound or conditional
//	F  non-affine access function (includes pointer indirection)
//	A  unhandled possible pointer aliasing
//	P  base pointer not loop invariant
//
// Like the paper's methodology, calls to analyzable user functions are
// treated as inlined (the callee's defects surface in the caller's
// report), while calls to opaque functions (names starting with
// "libc_", mirroring libc/OpenMP runtime calls) stay R.
package staticpoly

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"polyprof/internal/cfg"
	"polyprof/internal/isa"
)

// Reason is one failure cause.
type Reason uint8

// Failure reasons, in the paper's order.
const (
	R Reason = iota // unhandled call
	C               // complex CFG
	B               // non-affine bound/conditional
	F               // non-affine access
	A               // possible aliasing
	P               // base pointer not invariant
)

func (r Reason) String() string { return string("RCBFAP"[r]) }

// ReasonSet is a set of failure reasons.
type ReasonSet map[Reason]bool

// String renders the set in canonical order (e.g. "RCBF").
func (s ReasonSet) String() string {
	var rs []int
	for r := range s {
		rs = append(rs, int(r))
	}
	sort.Ints(rs)
	var sb strings.Builder
	for _, r := range rs {
		sb.WriteString(Reason(r).String())
	}
	if sb.Len() == 0 {
		return "-"
	}
	return sb.String()
}

// valClass is the flow-insensitive symbolic class of a register value,
// ordered as a lattice (higher = less analyzable).
type valClass uint8

const (
	vBottom        valClass = iota
	vConst                  // compile-time constant
	vParam                  // affine in the function's symbolic parameters
	vInvariant              // loop-invariant but not parameter-affine
	vIV                     // affine in loop induction variables (+ params)
	vNonAffine              // loop-variant, non-affine
	vMemStructured          // loaded through an affine address (structured
	// single-level indirection: modelable with runtime alias checks)
	vMemLoad // loaded through a non-affine or doubly-indirect address
)

func joinClass(a, b valClass) valClass {
	if a > b {
		return a
	}
	return b
}

// FuncResult is the analysis verdict for one function (with analyzable
// callees conceptually inlined).
type FuncResult struct {
	Fn      *isa.Func
	Reasons ReasonSet
	// Modeled: the function's loop region is a valid affine program.
	Modeled bool
	// HasLoops: the function contains at least one loop.
	HasLoops bool
}

// Result is the whole-program verdict.
type Result struct {
	Funcs map[isa.FuncID]*FuncResult
}

// RegionReasons aggregates reasons over the named functions (the
// profiled region of interest); unknown names are ignored.
func (res *Result) RegionReasons(prog *isa.Program, names ...string) ReasonSet {
	out := ReasonSet{}
	for _, n := range names {
		if f := prog.FuncByName(n); f != nil {
			if fr := res.Funcs[f.ID]; fr != nil {
				for r := range fr.Reasons {
					out[r] = true
				}
			}
		}
	}
	return out
}

// RegionModeled reports whether every named function modeled.
func (res *Result) RegionModeled(prog *isa.Program, names ...string) bool {
	for _, n := range names {
		if f := prog.FuncByName(n); f != nil {
			if fr := res.Funcs[f.ID]; fr != nil && !fr.Modeled {
				return false
			}
		}
	}
	return true
}

// Analyze runs the static analyzer on every function.
func Analyze(prog *isa.Program) *Result {
	res := &Result{Funcs: map[isa.FuncID]*FuncResult{}}

	// Static CFG for the whole program.
	g := cfg.NewGraph(prog)
	for _, f := range prog.Funcs {
		g.AddNode(f.Entry)
		for _, bid := range f.Blocks {
			for _, s := range prog.Successors(bid) {
				g.AddEdge(bid, s)
			}
		}
	}
	forest := cfg.BuildForest(g)

	// Static call graph for recursion detection.
	callees := map[isa.FuncID]map[isa.FuncID]bool{}
	for _, f := range prog.Funcs {
		callees[f.ID] = map[isa.FuncID]bool{}
		for _, bid := range f.Blocks {
			if t := prog.Block(bid).Terminator(); t.Op == isa.Call {
				callees[f.ID][t.Callee] = true
			}
		}
	}
	recursive := findRecursive(callees)

	for _, f := range prog.Funcs {
		res.Funcs[f.ID] = analyzeFunc(prog, f, forest, recursive)
	}
	// Inline propagation: a caller inherits the reasons of analyzable
	// callees called from inside its loops; opaque callees stay R.
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			fr := res.Funcs[f.ID]
			for callee := range callees[f.ID] {
				cf := prog.Func(callee)
				if isOpaque(cf) || recursive[callee] {
					continue
				}
				for r := range res.Funcs[callee].Reasons {
					if !fr.Reasons[r] {
						fr.Reasons[r] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fr := range res.Funcs {
		fr.Modeled = len(fr.Reasons) == 0 && fr.HasLoops
	}
	return res
}

func isOpaque(f *isa.Func) bool { return strings.HasPrefix(f.Name, "libc_") }

// debugReason prints reason attribution when POLYPROF_STATIC_DEBUG is
// set (development aid).
func debugReason(f *isa.Func, code, why string, blk *isa.Block) {
	if os.Getenv("POLYPROF_STATIC_DEBUG") != "" {
		fmt.Printf("static: %s: %s from %s at block %q (terminator %v -> %d/%d)\n",
			f.Name, code, why, blk.Name, blk.Terminator().Op, blk.Terminator().Then, blk.Terminator().Else)
	}
}

func findRecursive(callees map[isa.FuncID]map[isa.FuncID]bool) map[isa.FuncID]bool {
	rec := map[isa.FuncID]bool{}
	for start := range callees {
		seen := map[isa.FuncID]bool{}
		var dfs func(f isa.FuncID) bool
		dfs = func(f isa.FuncID) bool {
			if f == start && len(seen) > 0 {
				return true
			}
			if seen[f] {
				return false
			}
			seen[f] = true
			for c := range callees[f] {
				if dfs(c) {
					return true
				}
			}
			return false
		}
		for c := range callees[start] {
			if c == start || dfs(c) {
				rec[start] = true
			}
		}
	}
	return rec
}

// analyzeFunc classifies registers flow-insensitively and checks each
// loop of the function.
func analyzeFunc(prog *isa.Program, f *isa.Func, forest *cfg.Forest, recursive map[isa.FuncID]bool) *FuncResult {
	fr := &FuncResult{Fn: f, Reasons: ReasonSet{}}

	// Loop membership and induction-variable detection.
	loops := map[isa.BlockID]*cfg.Loop{}
	for _, bid := range f.Blocks {
		if l := forest.LoopOf(bid); l != nil {
			loops[bid] = l
			fr.HasLoops = true
		}
	}
	ivRegs := detectIVs(prog, f, forest)

	// Flow-insensitive class fixpoint.
	cls := make([]valClass, f.NumRegs)
	for i := 0; i < f.NumArgs; i++ {
		cls[i] = vParam
	}
	// loadInLoop records whether a register's defining load executed
	// inside a loop (for invariance of loaded base pointers).
	loadInLoop := make([]bool, f.NumRegs)

	update := func(r isa.Reg, v valClass) bool {
		if int(r) >= len(cls) || r == isa.NoReg {
			return false
		}
		nv := joinClass(cls[r], v)
		if nv != cls[r] {
			cls[r] = nv
			return true
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		for _, bid := range f.Blocks {
			inLoop := loops[bid] != nil
			blk := prog.Block(bid)
			for i := range blk.Code {
				in := &blk.Code[i]
				if !in.Op.WritesDst() || in.Dst == isa.NoReg {
					continue
				}
				var v valClass
				switch in.Op {
				case isa.ConstI, isa.ConstF:
					v = vConst
				case isa.Mov, isa.FMov:
					v = cls[in.A]
				case isa.Load, isa.FLoad:
					// Single-level indirection through an affine address
					// stays "structured" (Polly-style delinearization);
					// anything deeper or irregular is opaque.
					v = vMemLoad
					baseC := opClass(cls, in.A, ivRegs)
					idxC := vConst
					if in.Index != isa.NoReg {
						idxC = opClass(cls, in.Index, ivRegs)
					}
					if baseC <= vIV && idxC <= vIV {
						v = vMemStructured
					}
					if inLoop {
						loadInLoop[in.Dst] = true
					}
				case isa.Call:
					v = vInvariant
					if inLoop {
						v = vNonAffine
					}
				case isa.Add, isa.Sub:
					v = affineAdd(opClass(cls, in.A, ivRegs), opClass(cls, in.B, ivRegs))
				case isa.Mul:
					v = affineMul(opClass(cls, in.A, ivRegs), opClass(cls, in.B, ivRegs))
				case isa.Div, isa.Mod, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
					isa.MinI, isa.MaxI:
					v = nonAffineCombine(opClass(cls, in.A, ivRegs), opClass(cls, in.B, ivRegs))
				case isa.CmpEQ, isa.CmpNE, isa.CmpLT, isa.CmpLE, isa.CmpGT, isa.CmpGE,
					isa.FCmpEQ, isa.FCmpLT, isa.FCmpLE:
					// Affine comparisons stay affine: they gate loop exits
					// and conditionals.
					v = joinClass(opClass(cls, in.A, ivRegs), opClass(cls, in.B, ivRegs))
				default:
					// Comparisons, FP arithmetic, conversions: result
					// follows the worst operand, at least invariant-level
					// opacity for FP.
					v = joinClass(opClass(cls, in.A, ivRegs), opClass(cls, in.B, ivRegs))
					if v < vInvariant {
						v = vInvariant
					}
				}
				if update(in.Dst, v) {
					changed = true
				}
			}
		}
	}

	classOf := func(r isa.Reg) valClass {
		if r == isa.NoReg || int(r) >= len(cls) {
			return vNonAffine
		}
		return opClass(cls, r, ivRegs)
	}

	// Root-argument tracking: pointer arithmetic on a parameter still
	// aliases through that parameter.  rootArg[r] is the argument index
	// a register's value (transitively) derives from, or -1.
	rootArg := make([]int, f.NumRegs)
	for i := range rootArg {
		rootArg[i] = -1
	}
	for i := 0; i < f.NumArgs; i++ {
		rootArg[i] = i
	}
	for changed := true; changed; {
		changed = false
		for _, bid := range f.Blocks {
			blk := prog.Block(bid)
			for i := range blk.Code {
				in := &blk.Code[i]
				if !in.Op.WritesDst() || in.Dst == isa.NoReg {
					continue
				}
				switch in.Op {
				case isa.Add, isa.Sub, isa.Mov:
					root := -1
					if in.A != isa.NoReg && int(in.A) < len(rootArg) {
						root = rootArg[in.A]
					}
					if root < 0 && in.Op != isa.Mov && in.B != isa.NoReg && int(in.B) < len(rootArg) {
						root = rootArg[in.B]
					}
					if root >= 0 && rootArg[in.Dst] != root {
						rootArg[in.Dst] = root
						changed = true
					}
				}
			}
		}
	}

	// Pointer-table mutation detection for the P reason: a register
	// holding a value loaded (inside a loop) from a table that the same
	// function also stores through is a base pointer that is not loop
	// invariant (e.g. ping-pong row pointers swapped between steps).
	storedBase := map[isa.Reg]bool{}
	ptrSrcBase := map[isa.Reg]isa.Reg{}
	for _, bid := range f.Blocks {
		blk := prog.Block(bid)
		for i := range blk.Code {
			in := &blk.Code[i]
			switch in.Op {
			case isa.Store, isa.FStore:
				storedBase[in.A] = true
			case isa.Load, isa.FLoad:
				if in.Dst != isa.NoReg {
					ptrSrcBase[in.Dst] = in.A
				}
			}
		}
	}

	// Per-loop / per-instruction modelability checks.
	type baseRec struct {
		write bool
	}
	paramBases := map[isa.Reg]*baseRec{}
	retCount := 0

	for _, bid := range f.Blocks {
		blk := prog.Block(bid)
		l := loops[bid]
		inLoop := l != nil
		for i := range blk.Code {
			in := &blk.Code[i]
			switch in.Op {
			case isa.Load, isa.FLoad, isa.Store, isa.FStore:
				if !inLoop {
					continue
				}
				base := classOf(in.A)
				switch base {
				case vMemStructured:
					// Structured pointer-table indirection: modelable only
					// under alias assumptions Polly will not make.
					fr.Reasons[A] = true
					if src, ok := ptrSrcBase[in.A]; ok && storedBase[src] && loadInLoop[in.A] {
						// The pointer table itself is rewritten by this
						// function: the base is not loop invariant.
						fr.Reasons[P] = true
					}
				case vMemLoad:
					fr.Reasons[F] = true // opaque pointer indirection
					if loadInLoop[in.A] {
						fr.Reasons[P] = true // base reloaded inside the loop
					}
				case vParam, vIV:
					// Count accesses whose base derives from an argument,
					// keyed by the root argument (pointer arithmetic on a
					// parameter still aliases through it).
					root := -1
					if int(in.A) < len(rootArg) {
						root = rootArg[in.A]
					}
					if root < 0 {
						break
					}
					rec := paramBases[isa.Reg(root)]
					if rec == nil {
						rec = &baseRec{}
						paramBases[isa.Reg(root)] = rec
					}
					if in.Op.IsMemWrite() {
						rec.write = true
					}
				case vNonAffine:
					fr.Reasons[F] = true
				}
				if in.Index != isa.NoReg {
					switch classOf(in.Index) {
					case vNonAffine, vMemLoad, vMemStructured:
						// Subscripts loaded from memory (index arrays,
						// worklists) are non-affine access functions.
						fr.Reasons[F] = true
					}
				}
			case isa.Br:
				if !inLoop {
					continue
				}
				if isLoopHeaderTest(forest, bid) {
					// Loop bound: each operand of the header compare must be
					// an induction variable or affine in parameters.
					if !headerBoundAffine(prog, blk, ivRegs, classOf) {
						fr.Reasons[B] = true
						debugReason(f, "B", "header bound", blk)
					}
					continue
				}
				// Conditional inside the loop body.  Branches whose targets
				// contain only register computation are if-converted to
				// selects by the vectorizing compiler, so only conditionals
				// guarding stores/calls/control count.
				if c := classOf(in.A); c > vIV && !selectLike(prog, in) {
					fr.Reasons[B] = true
					debugReason(f, "B", "conditional", blk)
				}
				// Branch leaving more than one loop level = complex CFG.
				if exitsMultipleLoops(forest, bid, in) {
					fr.Reasons[C] = true
				}
			case isa.Ret:
				if inLoop {
					fr.Reasons[C] = true // early return from inside a loop
				}
				retCount++
			case isa.Call:
				if !inLoop {
					continue
				}
				callee := prog.Func(in.Callee)
				if isOpaque(callee) {
					fr.Reasons[R] = true
				} else if recursive[in.Callee] || in.Callee == f.ID {
					fr.Reasons[R] = true
					fr.Reasons[C] = true
				}
			}
		}
	}

	// Aliasing: two or more distinct pointer-typed parameters used as
	// access bases, at least one written — Polly would need runtime
	// alias checks it gives up on.
	writes := 0
	bases := 0
	for _, rec := range paramBases {
		bases++
		if rec.write {
			writes++
		}
	}
	if bases >= 2 && writes >= 1 {
		fr.Reasons[A] = true
	}
	// More than one return statement means the structured region has
	// early exits (breaks compiled to returns): complex CFG.
	if retCount > 1 && fr.HasLoops {
		fr.Reasons[C] = true
	}
	return fr
}

// opClass returns the effective class of an operand, honoring detected
// induction variables.
func opClass(cls []valClass, r isa.Reg, ivRegs map[isa.Reg]bool) valClass {
	if r == isa.NoReg || int(r) >= len(cls) {
		return vNonAffine
	}
	if ivRegs[r] {
		return vIV
	}
	return cls[r]
}

func affineAdd(a, b valClass) valClass {
	v := joinClass(a, b)
	if v <= vIV {
		return v
	}
	return v
}

func affineMul(a, b valClass) valClass {
	hi, lo := a, b
	if lo > hi {
		hi, lo = lo, hi
	}
	switch {
	case hi <= vConst:
		return vConst
	case hi <= vParam && lo <= vParam:
		if hi == vParam && lo == vParam {
			return vInvariant // param*param: invariant, not param-affine
		}
		return vParam
	case hi == vIV && lo <= vConst:
		return vIV // const coefficient
	case hi == vIV:
		return vNonAffine // IV times a symbolic value: not affine
	case hi <= vInvariant:
		return vInvariant
	default:
		return vNonAffine
	}
}

func nonAffineCombine(a, b valClass) valClass {
	v := joinClass(a, b)
	if v <= vConst {
		return vConst
	}
	if v <= vParam {
		return vInvariant // e.g. param % const: invariant but opaque
	}
	return vNonAffine
}

// detectIVs finds canonical induction variables per loop: a register is
// the IV of loop L when every definition it has *inside L's region* is
// a constant-step advance (r = r +/- c) and there is at least one.  The
// initializing move sits outside L (possibly inside an enclosing loop),
// so detection is per-loop rather than per-function.
func detectIVs(prog *isa.Program, f *isa.Func, forest *cfg.Forest) map[isa.Reg]bool {
	constRegs := map[isa.Reg]bool{}
	for _, bid := range f.Blocks {
		blk := prog.Block(bid)
		for i := range blk.Code {
			if blk.Code[i].Op == isa.ConstI && blk.Code[i].Dst != isa.NoReg {
				constRegs[blk.Code[i].Dst] = true
			}
		}
	}
	out := map[isa.Reg]bool{}
	for _, l := range forest.Loops {
		if l.Fn != f.ID {
			continue
		}
		advance := map[isa.Reg]int{}
		other := map[isa.Reg]int{}
		for bid := range l.Blocks {
			blk := prog.Block(bid)
			for i := range blk.Code {
				in := &blk.Code[i]
				if !in.Op.WritesDst() || in.Dst == isa.NoReg {
					continue
				}
				if (in.Op == isa.Add || in.Op == isa.Sub) && in.A == in.Dst && constRegs[in.B] {
					advance[in.Dst]++
				} else {
					other[in.Dst]++
				}
			}
		}
		for r, n := range advance {
			if n >= 1 && other[r] == 0 {
				out[r] = true
			}
		}
	}
	return out
}

// isLoopHeaderTest reports whether the block is a loop header (its
// branch is the loop's exit test).
func isLoopHeaderTest(forest *cfg.Forest, bid isa.BlockID) bool {
	return forest.HeaderLoop(bid) != nil
}

// headerBoundAffine reports whether the loop's exit test compares an
// induction variable against a parameter-affine bound.  While-loops
// over worklists (no IV) and clamped/loaded bounds fail this.
func headerBoundAffine(prog *isa.Program, blk *isa.Block, ivRegs map[isa.Reg]bool, classOf func(isa.Reg) valClass) bool {
	sawIV := false
	for i := range blk.Code {
		in := &blk.Code[i]
		switch in.Op {
		case isa.CmpLT, isa.CmpLE, isa.CmpGT, isa.CmpGE, isa.CmpNE, isa.CmpEQ:
			for _, r := range []isa.Reg{in.A, in.B} {
				if ivRegs[r] {
					sawIV = true
					continue
				}
				if c := classOf(r); c > vParam {
					return false
				}
			}
		}
	}
	return sawIV
}

// selectLike reports whether a data-dependent branch only guards
// register moves (an if-convertible pattern).
func selectLike(prog *isa.Program, in *isa.Instr) bool {
	for _, t := range []isa.BlockID{in.Then, in.Else} {
		if t == isa.NoBlock {
			continue
		}
		blk := prog.Block(t)
		for i := range blk.Code {
			bi := &blk.Code[i]
			switch {
			case bi.Op.IsMem() && bi.Op.IsMemWrite():
				return false
			case bi.Op == isa.Call, bi.Op == isa.Ret:
				return false
			}
		}
	}
	return true
}

// exitsMultipleLoops reports whether a branch target leaves more than
// one loop level at once.
func exitsMultipleLoops(forest *cfg.Forest, bid isa.BlockID, in *isa.Instr) bool {
	from := forest.LoopOf(bid)
	if from == nil {
		return false
	}
	count := func(dst isa.BlockID) int {
		exited := 0
		for l := from; l != nil; l = l.Parent {
			if !l.Contains(dst) {
				exited++
			}
		}
		return exited
	}
	worst := 0
	for _, t := range []isa.BlockID{in.Then, in.Else} {
		if t != isa.NoBlock {
			if n := count(t); n > worst {
				worst = n
			}
		}
	}
	return worst > 1
}
