package staticpoly_test

import (
	"testing"

	"polyprof/internal/isa"
	"polyprof/internal/staticpoly"
	"polyprof/internal/workloads"
)

func reasonsOf(t *testing.T, prog *isa.Program, fn string) staticpoly.ReasonSet {
	t.Helper()
	res := staticpoly.Analyze(prog)
	f := prog.FuncByName(fn)
	if f == nil {
		t.Fatalf("function %q not found", fn)
	}
	return res.Funcs[f.ID].Reasons
}

// TestAffineKernelModeled: a clean constant-bound affine kernel is a
// valid static affine region (the baseline CAN model textbook code —
// only the realistic benchmarks defeat it).
func TestAffineKernelModeled(t *testing.T) {
	pb := isa.NewProgram("clean")
	g := pb.Global("A", 64)
	f := pb.Func("kernel", 0)
	base := f.IConst(g.Base)
	f.Loop("Li", f.IConst(0), f.IConst(8), 1, func(i isa.Reg) {
		f.Loop("Lj", f.IConst(0), f.IConst(8), 1, func(j isa.Reg) {
			idx := f.Add(f.Mul(i, f.IConst(8)), j)
			f.FStoreIdx(base, idx, 0, f.FConst(1))
		})
	})
	f.RetVoid()
	m := pb.Func("main", 0)
	m.Call(f.ID())
	m.Halt()
	pb.SetMain(m)
	prog := pb.MustBuild()

	res := staticpoly.Analyze(prog)
	fr := res.Funcs[prog.FuncByName("kernel").ID]
	if !fr.Modeled || len(fr.Reasons) != 0 {
		t.Errorf("clean affine kernel not modeled: %v", fr.Reasons)
	}
}

// TestParametricBoundsModeled: bounds affine in function parameters are
// fine (Polly handles symbolic parameters).
func TestParametricBoundsModeled(t *testing.T) {
	pb := isa.NewProgram("param")
	g := pb.Global("A", 64)
	f := pb.Func("kernel", 1)
	n := f.Arg(0)
	base := f.IConst(g.Base)
	f.Loop("L", f.IConst(0), f.Add(n, f.IConst(1)), 1, func(i isa.Reg) {
		f.FStoreIdx(base, i, 0, f.FConst(1))
	})
	f.RetVoid()
	m := pb.Func("main", 0)
	m.Call(f.ID(), m.IConst(32))
	m.Halt()
	pb.SetMain(m)
	rs := reasonsOf(t, pb.MustBuild(), "kernel")
	if rs[staticpoly.B] {
		t.Errorf("parametric bound flagged B: %v", rs)
	}
}

// TestLoadedBoundIsB: a trip count loaded from memory is a non-affine
// bound.
func TestLoadedBoundIsB(t *testing.T) {
	pb := isa.NewProgram("loaded-bound")
	g := pb.Global("A", 64)
	f := pb.Func("kernel", 0)
	base := f.IConst(g.Base)
	n := f.Load(base, 0)
	f.Loop("L", f.IConst(0), n, 1, func(i isa.Reg) {
		f.StoreIdx(base, i, 1, i)
	})
	f.RetVoid()
	m := pb.Func("main", 0)
	m.Call(f.ID())
	m.Halt()
	pb.SetMain(m)
	rs := reasonsOf(t, pb.MustBuild(), "kernel")
	if !rs[staticpoly.B] {
		t.Errorf("loaded bound must be B: %v", rs)
	}
}

// TestOpaqueCallIsR and recursion handling.
func TestOpaqueCallIsR(t *testing.T) {
	pb := isa.NewProgram("opaque")
	seed := pb.Global("seed", 1)
	rnd := pb.Func("libc_rand", 0)
	rnd.Ret(rnd.Load(rnd.IConst(seed.Base), 0))
	f := pb.Func("kernel", 0)
	base := f.IConst(seed.Base)
	f.Loop("L", f.IConst(0), f.IConst(4), 1, func(i isa.Reg) {
		f.StoreIdx(base, f.IConst(0), 0, f.Call(rnd.ID()))
	})
	f.RetVoid()
	m := pb.Func("main", 0)
	m.Call(f.ID())
	m.Halt()
	pb.SetMain(m)
	rs := reasonsOf(t, pb.MustBuild(), "kernel")
	if !rs[staticpoly.R] {
		t.Errorf("opaque libc call must be R: %v", rs)
	}
}

// TestEarlyReturnIsC: multiple returns mean early exits.
func TestEarlyReturnIsC(t *testing.T) {
	pb := isa.NewProgram("earlyret")
	g := pb.Global("A", 16)
	f := pb.Func("kernel", 0)
	base := f.IConst(g.Base)
	f.Loop("L", f.IConst(0), f.IConst(8), 1, func(i isa.Reg) {
		bad := f.CmpGT(f.LoadIdx(base, i, 0), f.IConst(100))
		f.If(bad, func() { f.Ret(f.IConst(0)) }, nil)
	})
	f.Ret(f.IConst(1))
	m := pb.Func("main", 0)
	m.Call(f.ID())
	m.Halt()
	pb.SetMain(m)
	rs := reasonsOf(t, pb.MustBuild(), "kernel")
	if !rs[staticpoly.C] {
		t.Errorf("early return must be C: %v", rs)
	}
}

// TestIndirectIndexIsF: subscripts loaded from memory.
func TestIndirectIndexIsF(t *testing.T) {
	pb := isa.NewProgram("indirect")
	a := pb.Global("A", 32)
	idx := pb.Global("idx", 32)
	f := pb.Func("kernel", 0)
	aB := f.IConst(a.Base)
	iB := f.IConst(idx.Base)
	f.Loop("L", f.IConst(0), f.IConst(16), 1, func(i isa.Reg) {
		j := f.LoadIdx(iB, i, 0)
		f.StoreIdx(aB, j, 0, i)
	})
	f.RetVoid()
	m := pb.Func("main", 0)
	m.Call(f.ID())
	m.Halt()
	pb.SetMain(m)
	rs := reasonsOf(t, pb.MustBuild(), "kernel")
	if !rs[staticpoly.F] {
		t.Errorf("indirect subscript must be F: %v", rs)
	}
}

// TestPointerParamAliasingIsA: two pointer params, one written.
func TestPointerParamAliasingIsA(t *testing.T) {
	pb := isa.NewProgram("alias")
	g := pb.Global("mem", 64)
	f := pb.Func("kernel", 2)
	src, dst := f.Arg(0), f.Arg(1)
	f.Loop("L", f.IConst(0), f.IConst(16), 1, func(i isa.Reg) {
		f.FStoreIdx(dst, i, 0, f.FLoadIdx(src, i, 0))
	})
	f.RetVoid()
	m := pb.Func("main", 0)
	m.Call(f.ID(), m.IConst(g.Base), m.IConst(g.Base+32))
	m.Halt()
	pb.SetMain(m)
	rs := reasonsOf(t, pb.MustBuild(), "kernel")
	if !rs[staticpoly.A] {
		t.Errorf("aliasing pointer params must be A: %v", rs)
	}
}

// TestRegionReasonsMatchPaper pins the per-benchmark verdicts.
func TestRegionReasonsMatchPaper(t *testing.T) {
	exact := map[string]bool{
		"bfs": true, "b+tree": true, "cfd": true, "heartwall": true,
		"hotspot": true, "kmeans": true, "lavaMD": true, "leukocyte": true,
		"lud": true, "myocyte": true, "nn": true, "nw": true,
		"srad_v1": true, "srad_v2": true, "streamcluster": true,
	}
	for _, spec := range workloads.Rodinia() {
		prog := spec.Build()
		res := staticpoly.Analyze(prog)
		if res.RegionModeled(prog, spec.RegionFuncs...) {
			t.Errorf("%s: region modeled; the paper's Experiment II has Polly failing on all 19", spec.Name)
		}
		if exact[spec.Name] {
			if got := res.RegionReasons(prog, spec.RegionFuncs...).String(); got != spec.PaperReasons {
				t.Errorf("%s: reasons %q, want the paper's %q", spec.Name, got, spec.PaperReasons)
			}
		}
	}
}
