package isa_test

import (
	"strings"
	"testing"

	"polyprof/internal/isa"
	"polyprof/internal/workloads"
)

// TestEncodeDecodeRoundTrip: every bundled workload survives the wire
// encoding with an identical disassembly (and still validates).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	names := []string{"example1", "example2", "backprop", "nw", "hotspot", "gemsfdtd"}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			prog := workloads.ByName(name).Build()
			data, err := isa.EncodeJSON(prog)
			if err != nil {
				t.Fatal(err)
			}
			got, err := isa.DecodeJSON(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("decoded program fails validation: %v", err)
			}
			if got.Disasm() != prog.Disasm() {
				t.Fatalf("round trip changed the program:\n--- original ---\n%.2000s\n--- decoded ---\n%.2000s",
					prog.Disasm(), got.Disasm())
			}
			if got.MemWords != prog.MemWords || len(got.Globals) != len(prog.Globals) {
				t.Fatalf("round trip changed memory/globals: %d/%d vs %d/%d",
					got.MemWords, len(got.Globals), prog.MemWords, len(prog.Globals))
			}
		})
	}
}

// TestDecodeHandWritten: omitted operand fields default to their unused
// sentinels, so a minimal hand-written program decodes and runs.
func TestDecodeHandWritten(t *testing.T) {
	src := `{
	 "name": "tiny", "main": 0, "mem_words": 8,
	 "funcs": [{"name": "main", "entry": 0, "blocks": [0], "num_args": 0, "num_regs": 4}],
	 "blocks": [{"fn": 0, "name": "entry", "code": [
	   {"op": "consti", "dst": 0, "imm": 7},
	   {"op": "store", "a": 1, "b": 0},
	   {"op": "halt"}
	 ]}]
	}`
	p, err := isa.DecodeJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	// "store" has no index register: omitted means NoReg, not register 0.
	in := p.Blocks[0].Code[1]
	if in.Index != isa.NoReg {
		t.Fatalf("omitted index decoded as %d, want NoReg", in.Index)
	}
	if in.A != 1 || in.B != 0 {
		t.Fatalf("store operands = a%d b%d", in.A, in.B)
	}
	// Register frame too small for register 1: Validate is the gate.
	p.Funcs[0].NumRegs = 1
	if err := p.Validate(); err == nil {
		t.Fatal("validation accepted an out-of-frame register")
	}
}

// TestDecodeRejects: syntactic garbage gets structured errors, never a
// panic.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"not json", `{{{`, "decode"},
		{"no functions", `{"name":"x","blocks":[]}`, "no functions"},
		{"unknown opcode", `{"name":"x","funcs":[{"name":"main","blocks":[0],"num_regs":1}],
		  "blocks":[{"fn":0,"code":[{"op":"frobnicate"}]}]}`, "unknown opcode"},
		{"block names missing function", `{"name":"x","funcs":[{"name":"main","blocks":[0],"num_regs":1}],
		  "blocks":[{"fn":9,"code":[{"op":"halt"}]}]}`, "names function 9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := isa.DecodeJSON([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
