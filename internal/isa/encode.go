package isa

// JSON program encoding: the wire form user-submitted programs arrive
// in (POST /v1/jobs) and the bundled workloads can be exported to.  The
// schema mirrors the in-memory representation directly — a program is a
// list of functions plus a flat, globally-indexed block array — with
// opcodes spelled as their assembler mnemonics:
//
//	{
//	  "name": "saxpy",
//	  "main": 0,
//	  "mem_words": 2048,
//	  "globals": {"x": {"base": 0, "size": 1024}},
//	  "funcs":  [{"name": "main", "entry": 0, "blocks": [0, 1],
//	              "num_args": 0, "num_regs": 8}],
//	  "blocks": [{"fn": 0, "name": "entry", "code": [
//	              {"op": "consti", "dst": 0, "imm": 5},
//	              {"op": "jmp", "then": 1}]}, ...]
//	}
//
// Block ids are positions in the top-level "blocks" array; function ids
// are positions in "funcs".  Register and control operands default to
// "unused" (NoReg / NoBlock / NoFunc) when omitted, so hand-written
// programs only spell the operands an instruction actually has.
//
// DecodeJSON builds the Program structure but performs no semantic
// validation beyond resolving mnemonics and bounds-checking the id
// spaces — Program.Validate (enforced by the VM before execution)
// remains the single gatekeeper for structural soundness, so hostile
// images fail there with the same structured errors a corrupt in-memory
// program would.

import (
	"encoding/json"
	"fmt"
	"sort"
)

// opcodeByName is the mnemonic → opcode reverse of opNames.
var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, name := range opNames {
		if name != "" {
			m[name] = Opcode(op)
		}
	}
	return m
}()

// OpcodeByName resolves an assembler mnemonic ("add", "fstore", ...).
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opcodeByName[name]
	return op, ok
}

type jsonProgram struct {
	Name     string                `json:"name"`
	Main     int32                 `json:"main"`
	MemWords int64                 `json:"mem_words"`
	Globals  map[string]jsonGlobal `json:"globals,omitempty"`
	Funcs    []jsonFunc            `json:"funcs"`
	Blocks   []jsonBlock           `json:"blocks"`
}

type jsonGlobal struct {
	Base int64 `json:"base"`
	Size int64 `json:"size"`
}

type jsonFunc struct {
	Name     string  `json:"name"`
	Entry    int32   `json:"entry"`
	Blocks   []int32 `json:"blocks"`
	NumArgs  int     `json:"num_args"`
	NumRegs  int     `json:"num_regs"`
	SrcDepth int     `json:"src_depth,omitempty"`
}

type jsonBlock struct {
	Fn   int32       `json:"fn"`
	Name string      `json:"name,omitempty"`
	Code []jsonInstr `json:"code"`
}

type jsonInstr struct {
	Op    string  `json:"op"`
	Dst   int32   `json:"dst,omitempty"`
	A     int32   `json:"a,omitempty"`
	B     int32   `json:"b,omitempty"`
	Index int32   `json:"index,omitempty"`
	Imm   int64   `json:"imm,omitempty"`
	FImm  float64 `json:"fimm,omitempty"`
	Then  int32   `json:"then,omitempty"`
	Else  int32   `json:"else,omitempty"`
	Call  int32   `json:"call,omitempty"`
	Args  []int32 `json:"args,omitempty"`
	File  string  `json:"file,omitempty"`
	Line  int     `json:"line,omitempty"`
}

// UnmarshalJSON defaults every operand to its "unused" sentinel before
// decoding, so omitted fields mean NoReg/NoBlock/NoFunc rather than 0.
func (ji *jsonInstr) UnmarshalJSON(data []byte) error {
	ji.Dst, ji.A, ji.B, ji.Index = -1, -1, -1, -1
	ji.Then, ji.Else, ji.Call = -1, -1, -1
	type alias jsonInstr
	return json.Unmarshal(data, (*alias)(ji))
}

// MarshalJSON omits only sentinel (-1) operands — a register 0 is a
// real operand and must survive the round trip, so struct omitempty
// (which drops zeros) cannot be used for the operand fields.
func (ji jsonInstr) MarshalJSON() ([]byte, error) {
	m := map[string]any{"op": ji.Op}
	reg := func(key string, v int32) {
		if v != -1 {
			m[key] = v
		}
	}
	reg("dst", ji.Dst)
	reg("a", ji.A)
	reg("b", ji.B)
	reg("index", ji.Index)
	reg("then", ji.Then)
	reg("else", ji.Else)
	reg("call", ji.Call)
	if ji.Imm != 0 {
		m["imm"] = ji.Imm
	}
	if ji.FImm != 0 {
		m["fimm"] = ji.FImm
	}
	if len(ji.Args) > 0 {
		m["args"] = ji.Args
	}
	if ji.File != "" {
		m["file"] = ji.File
	}
	if ji.Line != 0 {
		m["line"] = ji.Line
	}
	return json.Marshal(m)
}

// EncodeJSON renders the program in the wire encoding DecodeJSON reads.
func EncodeJSON(p *Program) ([]byte, error) {
	jp := jsonProgram{
		Name:     p.Name,
		Main:     int32(p.Main),
		MemWords: p.MemWords,
	}
	if len(p.Globals) > 0 {
		jp.Globals = make(map[string]jsonGlobal, len(p.Globals))
		for name, g := range p.Globals {
			jp.Globals[name] = jsonGlobal{Base: g.Base, Size: g.Size}
		}
	}
	for _, f := range p.Funcs {
		jf := jsonFunc{
			Name: f.Name, Entry: int32(f.Entry),
			NumArgs: f.NumArgs, NumRegs: f.NumRegs, SrcDepth: f.SrcDepth,
		}
		for _, bid := range f.Blocks {
			jf.Blocks = append(jf.Blocks, int32(bid))
		}
		jp.Funcs = append(jp.Funcs, jf)
	}
	for i, b := range p.Blocks {
		if b == nil || BlockID(i) != b.ID {
			return nil, fmt.Errorf("isa: encode: block %d is %v; programs must use dense global block ids", i, b)
		}
		jb := jsonBlock{Fn: int32(b.Fn), Name: b.Name}
		for k := range b.Code {
			in := &b.Code[k]
			ji := jsonInstr{
				Op:  in.Op.String(),
				Dst: int32(in.Dst), A: int32(in.A), B: int32(in.B), Index: int32(in.Index),
				Imm: in.Imm, FImm: in.FImm,
				Then: int32(in.Then), Else: int32(in.Else), Call: int32(in.Callee),
				File: in.Loc.File, Line: in.Loc.Line,
			}
			for _, r := range in.Args {
				ji.Args = append(ji.Args, int32(r))
			}
			jb.Code = append(jb.Code, ji)
		}
		jp.Blocks = append(jp.Blocks, jb)
	}
	return json.MarshalIndent(jp, "", " ")
}

// Decode limits: a hostile submission cannot demand unbounded structure
// no matter what its (already size-capped) JSON says.
const (
	maxDecodeFuncs  = 1 << 12
	maxDecodeBlocks = 1 << 16
)

// DecodeJSON parses the wire encoding into a Program.  It resolves
// mnemonics and rejects out-of-range id spaces; everything else —
// terminators, register frames, branch targets — is left to
// Program.Validate so decode errors stay purely syntactic.
func DecodeJSON(data []byte) (*Program, error) {
	var jp jsonProgram
	if err := json.Unmarshal(data, &jp); err != nil {
		return nil, fmt.Errorf("isa: decode: %w", err)
	}
	if len(jp.Funcs) == 0 {
		return nil, fmt.Errorf("isa: decode: program %q has no functions", jp.Name)
	}
	if len(jp.Funcs) > maxDecodeFuncs {
		return nil, fmt.Errorf("isa: decode: %d functions exceed the limit %d", len(jp.Funcs), maxDecodeFuncs)
	}
	if len(jp.Blocks) > maxDecodeBlocks {
		return nil, fmt.Errorf("isa: decode: %d blocks exceed the limit %d", len(jp.Blocks), maxDecodeBlocks)
	}
	p := &Program{Name: jp.Name, Main: FuncID(jp.Main), MemWords: jp.MemWords}
	if len(jp.Globals) > 0 {
		p.Globals = make(map[string]Global, len(jp.Globals))
		for name, g := range jp.Globals {
			p.Globals[name] = Global{Base: g.Base, Size: g.Size}
		}
	}
	for i, jf := range jp.Funcs {
		f := &Func{
			ID: FuncID(i), Name: jf.Name, Entry: BlockID(jf.Entry),
			NumArgs: jf.NumArgs, NumRegs: jf.NumRegs, SrcDepth: jf.SrcDepth,
		}
		for _, bid := range jf.Blocks {
			f.Blocks = append(f.Blocks, BlockID(bid))
		}
		p.Funcs = append(p.Funcs, f)
	}
	for i, jb := range jp.Blocks {
		if jb.Fn < 0 || int(jb.Fn) >= len(p.Funcs) {
			return nil, fmt.Errorf("isa: decode: block %d names function %d (have %d)", i, jb.Fn, len(p.Funcs))
		}
		b := &Block{ID: BlockID(i), Fn: FuncID(jb.Fn), Name: jb.Name}
		for k, ji := range jb.Code {
			op, ok := OpcodeByName(ji.Op)
			if !ok {
				return nil, fmt.Errorf("isa: decode: block %d instruction %d: unknown opcode %q", i, k, ji.Op)
			}
			in := Instr{
				Op:  op,
				Dst: Reg(ji.Dst), A: Reg(ji.A), B: Reg(ji.B), Index: Reg(ji.Index),
				Imm: ji.Imm, FImm: ji.FImm,
				Then: BlockID(ji.Then), Else: BlockID(ji.Else), Callee: FuncID(ji.Call),
				Loc: SrcLoc{File: ji.File, Line: ji.Line},
			}
			for _, r := range ji.Args {
				in.Args = append(in.Args, Reg(r))
			}
			b.Code = append(b.Code, in)
		}
		p.Blocks = append(p.Blocks, b)
	}
	// Derive each block's position within its owning function; blocks no
	// function lists keep Index 0, which Validate will reject anyway.
	for _, f := range p.Funcs {
		for idx, bid := range f.Blocks {
			if bid >= 0 && int(bid) < len(p.Blocks) && p.Blocks[bid].Fn == f.ID {
				p.Blocks[bid].Index = idx
			}
		}
	}
	return p, nil
}

// GlobalNames lists the program's globals sorted by name (deterministic
// listings for reports and tests).
func (p *Program) GlobalNames() []string {
	out := make([]string, 0, len(p.Globals))
	for name := range p.Globals {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
