package isa

import (
	"fmt"
	"strings"
)

// DisasmInstr renders one instruction in a compact pseudo-assembler
// syntax close to the paper's Fig. 6 listing.
func (p *Program) DisasmInstr(in *Instr) string {
	var sb strings.Builder
	reg := func(r Reg) string {
		if r == NoReg {
			return "_"
		}
		return fmt.Sprintf("r%d", r)
	}
	switch in.Op {
	case Nop:
		sb.WriteString("nop")
	case ConstI:
		fmt.Fprintf(&sb, "%s = %d", reg(in.Dst), in.Imm)
	case ConstF:
		fmt.Fprintf(&sb, "%s = %g", reg(in.Dst), in.FImm)
	case Mov, FMov:
		fmt.Fprintf(&sb, "%s = %s", reg(in.Dst), reg(in.A))
	case FNeg, FAbs, FSqrt, FExp, FLog, I2F, F2I:
		fmt.Fprintf(&sb, "%s = %v(%s)", reg(in.Dst), in.Op, reg(in.A))
	case Load, FLoad:
		fmt.Fprintf(&sb, "%s = %v(&%s%s + %d)", reg(in.Dst), in.Op, reg(in.A), idxStr(in), in.Imm)
	case Store, FStore:
		fmt.Fprintf(&sb, "%v(&%s%s + %d) = %s", in.Op, reg(in.A), idxStr(in), in.Imm, reg(in.B))
	case Jmp:
		fmt.Fprintf(&sb, "jmp %s", p.Blocks[in.Then].Name)
	case Br:
		fmt.Fprintf(&sb, "br %s, %s, %s", reg(in.A), p.Blocks[in.Then].Name, p.Blocks[in.Else].Name)
	case Call:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = reg(a)
		}
		fmt.Fprintf(&sb, "%s = call %s(%s) -> %s", reg(in.Dst),
			p.Funcs[in.Callee].Name, strings.Join(args, ", "), p.Blocks[in.Then].Name)
	case Ret:
		if in.A == NoReg {
			sb.WriteString("ret")
		} else {
			fmt.Fprintf(&sb, "ret %s", reg(in.A))
		}
	case Halt:
		sb.WriteString("halt")
	default:
		fmt.Fprintf(&sb, "%s = %v %s, %s", reg(in.Dst), in.Op, reg(in.A), reg(in.B))
	}
	return sb.String()
}

func idxStr(in *Instr) string {
	if in.Index == NoReg {
		return ""
	}
	return fmt.Sprintf(" + r%d", in.Index)
}

// DisasmFunc renders a whole function, one block per paragraph.
func (p *Program) DisasmFunc(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d args, %d regs):\n", f.Name, f.NumArgs, f.NumRegs)
	for _, bid := range f.Blocks {
		b := p.Blocks[bid]
		fmt.Fprintf(&sb, "%s:  ; block %d\n", b.Name, b.ID)
		for i := range b.Code {
			in := &b.Code[i]
			loc := ""
			if in.Loc.File != "" {
				loc = "  ; " + in.Loc.String()
			}
			fmt.Fprintf(&sb, "    %s%s\n", p.DisasmInstr(in), loc)
		}
	}
	return sb.String()
}

// Disasm renders the entire program.
func (p *Program) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s (main=%s, %d words of memory)\n",
		p.Name, p.Funcs[p.Main].Name, p.MemWords)
	for _, f := range p.Funcs {
		sb.WriteString(p.DisasmFunc(f))
	}
	return sb.String()
}

// Successors returns the static control-flow successors of a block
// within its function (call continuations included, callee entries not:
// those are call-graph edges, not CFG edges).
func (p *Program) Successors(id BlockID) []BlockID {
	t := p.Blocks[id].Terminator()
	switch t.Op {
	case Jmp:
		return []BlockID{t.Then}
	case Br:
		if t.Then == t.Else {
			return []BlockID{t.Then}
		}
		return []BlockID{t.Then, t.Else}
	case Call:
		return []BlockID{t.Then}
	}
	return nil
}

// Callees returns the functions a block may call (zero or one in this
// ISA: calls are block terminators).
func (p *Program) Callees(id BlockID) []FuncID {
	t := p.Blocks[id].Terminator()
	if t.Op == Call {
		return []FuncID{t.Callee}
	}
	return nil
}

// NumDynOpsHint returns a crude static instruction count, used only for
// sizing diagnostics.
func (p *Program) NumDynOpsHint() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Code)
	}
	return n
}
