package isa

import (
	"strings"
	"testing"
)

func TestOpcodeClassification(t *testing.T) {
	cases := []struct {
		op                                 Opcode
		term, mem, write, fp, alu, prodInt bool
	}{
		{Add, false, false, false, false, true, true},
		{FAdd, false, false, false, true, false, false},
		{Load, false, true, false, false, false, true},
		{FLoad, false, true, false, true, false, false},
		{Store, false, true, true, false, false, false},
		{FStore, false, true, true, true, false, false},
		{Jmp, true, false, false, false, false, false},
		{Br, true, false, false, false, false, false},
		{Call, true, false, false, false, false, false},
		{Ret, true, false, false, false, false, false},
		{Halt, true, false, false, false, false, false},
		{CmpLT, false, false, false, false, true, true},
		{FCmpLT, false, false, false, true, false, true},
		{F2I, false, false, false, false, true, true},
		{I2F, false, false, false, true, false, false},
	}
	for _, c := range cases {
		if c.op.IsTerminator() != c.term {
			t.Errorf("%v IsTerminator = %v", c.op, !c.term)
		}
		if c.op.IsMem() != c.mem {
			t.Errorf("%v IsMem = %v", c.op, !c.mem)
		}
		if c.op.IsMemWrite() != c.write {
			t.Errorf("%v IsMemWrite = %v", c.op, !c.write)
		}
		if c.op.IsFP() != c.fp {
			t.Errorf("%v IsFP = %v", c.op, !c.fp)
		}
		if c.op.IsIntALU() != c.alu {
			t.Errorf("%v IsIntALU = %v", c.op, !c.alu)
		}
		if c.op.ProducesInt() != c.prodInt {
			t.Errorf("%v ProducesInt = %v", c.op, !c.prodInt)
		}
	}
	for _, op := range []Opcode{Jmp, Br, Ret, Halt, Store, FStore, Nop} {
		if op.WritesDst() {
			t.Errorf("%v must not write a destination register", op)
		}
	}
}

func TestUses(t *testing.T) {
	var buf []Reg
	cases := []struct {
		in   Instr
		want []Reg
	}{
		{Instr{Op: Add, A: 1, B: 2}, []Reg{1, 2}},
		{Instr{Op: Mov, A: 3}, []Reg{3}},
		{Instr{Op: Load, A: 4, Index: NoReg}, []Reg{4}},
		{Instr{Op: Load, A: 4, Index: 7}, []Reg{4, 7}},
		{Instr{Op: Store, A: 4, B: 5, Index: 6}, []Reg{4, 5, 6}},
		{Instr{Op: Ret, A: NoReg}, nil},
		{Instr{Op: Ret, A: 2}, []Reg{2}},
		{Instr{Op: Call, Args: []Reg{8, 9}}, []Reg{8, 9}},
		{Instr{Op: ConstI}, nil},
		{Instr{Op: Jmp}, nil},
	}
	for _, c := range cases {
		got := c.in.Uses(buf)
		if len(got) != len(c.want) {
			t.Errorf("%v Uses = %v, want %v", c.in.Op, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v Uses = %v, want %v", c.in.Op, got, c.want)
			}
		}
	}
}

func TestBuilderStructure(t *testing.T) {
	pb := NewProgram("structure")
	g := pb.Global("a", 8)
	f := pb.Func("main", 0)
	base := f.IConst(g.Base)
	f.Loop("L", f.IConst(0), f.IConst(4), 1, func(i Reg) {
		cond := f.CmpEQ(f.Mod(i, f.IConst(2)), f.IConst(0))
		f.If(cond, func() {
			f.StoreIdx(base, i, 0, i)
		}, func() {
			f.StoreIdx(base, i, 0, f.IConst(0))
		})
	})
	f.Halt()
	pb.SetMain(f)
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Every block ends in exactly one terminator (Validate enforces it,
	// but double check the builder emitted sane structure).
	for _, b := range p.Blocks {
		for i := range b.Code {
			isLast := i == len(b.Code)-1
			if b.Code[i].Op.IsTerminator() != isLast {
				t.Fatalf("block %q: instr %d terminator misplaced", b.Name, i)
			}
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	// Call with wrong arity.
	pb := NewProgram("bad-arity")
	callee := pb.Func("g", 2)
	callee.RetVoid()
	f := pb.Func("main", 0)
	f.Call(callee.ID(), f.IConst(1)) // one arg, needs two
	f.Halt()
	pb.SetMain(f)
	if _, err := pb.Build(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("arity error not caught: %v", err)
	}

	// Duplicate global.
	pb2 := NewProgram("dup")
	pb2.Global("x", 1)
	pb2.Global("x", 1)
	f2 := pb2.Func("main", 0)
	f2.Halt()
	pb2.SetMain(f2)
	if _, err := pb2.Build(); err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Errorf("duplicate global not caught: %v", err)
	}

	// Non-positive global size.
	pb3 := NewProgram("zero")
	pb3.Global("x", 0)
	f3 := pb3.Func("main", 0)
	f3.Halt()
	pb3.SetMain(f3)
	if _, err := pb3.Build(); err == nil {
		t.Error("zero-size global not caught")
	}

	// Cross-function jump.
	pb4 := NewProgram("cross")
	g4 := pb4.Func("g", 0)
	g4.RetVoid()
	f4 := pb4.Func("main", 0)
	f4.Halt()
	pb4.SetMain(f4)
	p4, err := pb4.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: point main's terminator into g's block.
	mainFn := p4.FuncByName("main")
	blk := p4.Block(mainFn.Entry)
	blk.Code[len(blk.Code)-1] = Instr{Op: Jmp, Dst: NoReg, Then: p4.FuncByName("g").Entry}
	if err := p4.Validate(); err == nil || !strings.Contains(err.Error(), "crosses functions") {
		t.Errorf("cross-function jump not caught: %v", err)
	}
}

func TestDisasmRoundTrip(t *testing.T) {
	pb := NewProgram("dis")
	g := pb.Global("a", 4)
	f := pb.Func("main", 0)
	base := f.IConst(g.Base)
	f.Loop("L", f.IConst(0), f.IConst(2), 1, func(i Reg) {
		f.FStoreIdx(base, i, 0, f.FAdd(f.FConst(1), f.FConst(2)))
	})
	f.Halt()
	pb.SetMain(f)
	p := pb.MustBuild()
	out := p.Disasm()
	for _, want := range []string{"program dis", "func main", "fadd", "fstore", "br ", "jmp ", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestSuccessorsAndCallees(t *testing.T) {
	pb := NewProgram("succ")
	callee := pb.Func("g", 0)
	callee.RetVoid()
	f := pb.Func("main", 0)
	cond := f.IConst(1)
	f.If(cond, func() { f.Call(callee.ID()) }, func() {})
	f.Halt()
	pb.SetMain(f)
	p := pb.MustBuild()

	mainFn := p.FuncByName("main")
	entry := p.Block(mainFn.Entry)
	succs := p.Successors(entry.ID)
	if len(succs) != 2 {
		t.Errorf("branch successors = %v, want 2", succs)
	}
	foundCall := false
	for _, bid := range mainFn.Blocks {
		if cs := p.Callees(bid); len(cs) == 1 && cs[0] == callee.ID() {
			foundCall = true
			if n := p.Successors(bid); len(n) != 1 {
				t.Errorf("call continuation successors = %v, want 1", n)
			}
		}
	}
	if !foundCall {
		t.Error("call block not found")
	}
}

func TestSrcLocString(t *testing.T) {
	if (SrcLoc{}).String() != "?" {
		t.Error("empty loc must render as ?")
	}
	if (SrcLoc{File: "a.c", Line: 5}).String() != "a.c:5" {
		t.Error("loc render wrong")
	}
}
