package isa

import "fmt"

// ProgramBuilder incrementally assembles a Program.  Workloads use it as
// a tiny structured "compiler": loops, conditionals and calls are emitted
// as ordinary basic blocks with explicit jumps, so the finished image
// looks like optimized binary code to the analyses.
type ProgramBuilder struct {
	prog    *Program
	nextMem int64
	err     error
}

// NewProgram starts building a program with the given name.
func NewProgram(name string) *ProgramBuilder {
	return &ProgramBuilder{prog: &Program{
		Name:    name,
		Globals: map[string]Global{},
	}}
}

// Global allocates size words of memory under a symbolic name and
// returns the region descriptor.
func (pb *ProgramBuilder) Global(name string, size int64) Global {
	if size <= 0 {
		pb.fail(fmt.Errorf("global %q: non-positive size %d", name, size))
		size = 1
	}
	if _, dup := pb.prog.Globals[name]; dup {
		pb.fail(fmt.Errorf("global %q redeclared", name))
	}
	g := Global{Base: pb.nextMem, Size: size}
	pb.prog.Globals[name] = g
	pb.nextMem += size
	return g
}

// Func declares a new function and returns its builder.  The returned
// builder's ID is valid immediately, so mutually recursive functions can
// be declared first and filled in later.
func (pb *ProgramBuilder) Func(name string, numArgs int) *FuncBuilder {
	id := FuncID(len(pb.prog.Funcs))
	f := &Func{ID: id, Name: name, NumArgs: numArgs, NumRegs: numArgs, Entry: NoBlock}
	pb.prog.Funcs = append(pb.prog.Funcs, f)
	fb := &FuncBuilder{pb: pb, fn: f}
	fb.cur = fb.newBlock("entry")
	f.Entry = fb.cur.ID
	return fb
}

// SetMain selects the program entry point.
func (pb *ProgramBuilder) SetMain(f *FuncBuilder) { pb.prog.Main = f.fn.ID }

func (pb *ProgramBuilder) fail(err error) {
	if pb.err == nil {
		pb.err = err
	}
}

// Build finalizes and validates the program.
func (pb *ProgramBuilder) Build() (*Program, error) {
	if pb.err != nil {
		return nil, pb.err
	}
	pb.prog.MemWords = pb.nextMem
	if err := pb.prog.Validate(); err != nil {
		return nil, err
	}
	return pb.prog, nil
}

// MustBuild is Build that panics on error; workloads are static so a
// construction bug is a programming error.
func (pb *ProgramBuilder) MustBuild() *Program {
	p, err := pb.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// FuncBuilder emits code into one function.  It maintains a current
// block; structured statements (Loop, While, If, Call) split the block
// stream as needed.
type FuncBuilder struct {
	pb   *ProgramBuilder
	fn   *Func
	cur  *Block // nil after a terminator until a new block starts
	file string
	line int
}

// ID returns the function's identifier for use as a call target.
func (fb *FuncBuilder) ID() FuncID { return fb.fn.ID }

// SetFile sets the pseudo source file recorded on subsequent
// instructions.
func (fb *FuncBuilder) SetFile(file string) { fb.file = file }

// At sets the pseudo source line recorded on subsequent instructions.
func (fb *FuncBuilder) At(line int) { fb.line = line }

// SetSrcDepth declares the source-level loop depth of the function's
// main nest (the paper's ld-src column).
func (fb *FuncBuilder) SetSrcDepth(d int) { fb.fn.SrcDepth = d }

// Arg returns the register holding the i-th argument.
func (fb *FuncBuilder) Arg(i int) Reg {
	if i < 0 || i >= fb.fn.NumArgs {
		fb.pb.fail(fmt.Errorf("%s: arg %d out of range", fb.fn.Name, i))
		return 0
	}
	return Reg(i)
}

// NewReg allocates a fresh register.
func (fb *FuncBuilder) NewReg() Reg {
	r := Reg(fb.fn.NumRegs)
	fb.fn.NumRegs++
	return r
}

func (fb *FuncBuilder) newBlock(name string) *Block {
	b := &Block{
		ID:    BlockID(len(fb.pb.prog.Blocks)),
		Fn:    fb.fn.ID,
		Name:  fmt.Sprintf("%s.%s", fb.fn.Name, name),
		Index: len(fb.fn.Blocks),
	}
	fb.pb.prog.Blocks = append(fb.pb.prog.Blocks, b)
	fb.fn.Blocks = append(fb.fn.Blocks, b.ID)
	return b
}

// startBlock begins a new current block (after a terminator).
func (fb *FuncBuilder) startBlock(name string) *Block {
	b := fb.newBlock(name)
	fb.cur = b
	return b
}

func (fb *FuncBuilder) emit(in Instr) {
	if fb.cur == nil {
		// Code after Ret/Halt with no label: unreachable; give it a block
		// anyway so builders stay composable.
		fb.startBlock("dead")
	}
	in.Loc = SrcLoc{File: fb.file, Line: fb.line}
	fb.cur.Code = append(fb.cur.Code, in)
	if in.Op.IsTerminator() {
		fb.cur = nil
	}
}

// --- value helpers -------------------------------------------------------

// IConst materializes an integer constant into a fresh register.
func (fb *FuncBuilder) IConst(v int64) Reg {
	d := fb.NewReg()
	fb.emit(Instr{Op: ConstI, Dst: d, Imm: v})
	return d
}

// FConst materializes a float constant into a fresh register.
func (fb *FuncBuilder) FConst(v float64) Reg {
	d := fb.NewReg()
	fb.emit(Instr{Op: ConstF, Dst: d, FImm: v})
	return d
}

func (fb *FuncBuilder) bin(op Opcode, a, b Reg) Reg {
	d := fb.NewReg()
	fb.emit(Instr{Op: op, Dst: d, A: a, B: b})
	return d
}

func (fb *FuncBuilder) un(op Opcode, a Reg) Reg {
	d := fb.NewReg()
	fb.emit(Instr{Op: op, Dst: d, A: a})
	return d
}

// Integer arithmetic helpers; each returns a fresh destination register.

func (fb *FuncBuilder) Add(a, b Reg) Reg   { return fb.bin(Add, a, b) }
func (fb *FuncBuilder) Sub(a, b Reg) Reg   { return fb.bin(Sub, a, b) }
func (fb *FuncBuilder) Mul(a, b Reg) Reg   { return fb.bin(Mul, a, b) }
func (fb *FuncBuilder) Div(a, b Reg) Reg   { return fb.bin(Div, a, b) }
func (fb *FuncBuilder) Mod(a, b Reg) Reg   { return fb.bin(Mod, a, b) }
func (fb *FuncBuilder) And(a, b Reg) Reg   { return fb.bin(And, a, b) }
func (fb *FuncBuilder) Or(a, b Reg) Reg    { return fb.bin(Or, a, b) }
func (fb *FuncBuilder) Xor(a, b Reg) Reg   { return fb.bin(Xor, a, b) }
func (fb *FuncBuilder) Shl(a, b Reg) Reg   { return fb.bin(Shl, a, b) }
func (fb *FuncBuilder) Shr(a, b Reg) Reg   { return fb.bin(Shr, a, b) }
func (fb *FuncBuilder) MinI(a, b Reg) Reg  { return fb.bin(MinI, a, b) }
func (fb *FuncBuilder) MaxI(a, b Reg) Reg  { return fb.bin(MaxI, a, b) }
func (fb *FuncBuilder) CmpEQ(a, b Reg) Reg { return fb.bin(CmpEQ, a, b) }
func (fb *FuncBuilder) CmpNE(a, b Reg) Reg { return fb.bin(CmpNE, a, b) }
func (fb *FuncBuilder) CmpLT(a, b Reg) Reg { return fb.bin(CmpLT, a, b) }
func (fb *FuncBuilder) CmpLE(a, b Reg) Reg { return fb.bin(CmpLE, a, b) }
func (fb *FuncBuilder) CmpGT(a, b Reg) Reg { return fb.bin(CmpGT, a, b) }
func (fb *FuncBuilder) CmpGE(a, b Reg) Reg { return fb.bin(CmpGE, a, b) }

// AddImm returns a + imm, materializing the immediate.
func (fb *FuncBuilder) AddImm(a Reg, imm int64) Reg { return fb.Add(a, fb.IConst(imm)) }

// MulImm returns a * imm, materializing the immediate.
func (fb *FuncBuilder) MulImm(a Reg, imm int64) Reg { return fb.Mul(a, fb.IConst(imm)) }

// Float arithmetic helpers.

func (fb *FuncBuilder) FAdd(a, b Reg) Reg   { return fb.bin(FAdd, a, b) }
func (fb *FuncBuilder) FSub(a, b Reg) Reg   { return fb.bin(FSub, a, b) }
func (fb *FuncBuilder) FMul(a, b Reg) Reg   { return fb.bin(FMul, a, b) }
func (fb *FuncBuilder) FDiv(a, b Reg) Reg   { return fb.bin(FDiv, a, b) }
func (fb *FuncBuilder) FMin(a, b Reg) Reg   { return fb.bin(FMin, a, b) }
func (fb *FuncBuilder) FMax(a, b Reg) Reg   { return fb.bin(FMax, a, b) }
func (fb *FuncBuilder) FNeg(a Reg) Reg      { return fb.un(FNeg, a) }
func (fb *FuncBuilder) FAbs(a Reg) Reg      { return fb.un(FAbs, a) }
func (fb *FuncBuilder) FSqrt(a Reg) Reg     { return fb.un(FSqrt, a) }
func (fb *FuncBuilder) FExp(a Reg) Reg      { return fb.un(FExp, a) }
func (fb *FuncBuilder) FLog(a Reg) Reg      { return fb.un(FLog, a) }
func (fb *FuncBuilder) FCmpEQ(a, b Reg) Reg { return fb.bin(FCmpEQ, a, b) }
func (fb *FuncBuilder) FCmpLT(a, b Reg) Reg { return fb.bin(FCmpLT, a, b) }
func (fb *FuncBuilder) FCmpLE(a, b Reg) Reg { return fb.bin(FCmpLE, a, b) }
func (fb *FuncBuilder) I2F(a Reg) Reg       { return fb.un(I2F, a) }
func (fb *FuncBuilder) F2I(a Reg) Reg       { return fb.un(F2I, a) }

// Mov copies an integer register into dst (an explicit destination is
// needed for accumulators that live across loop iterations).
func (fb *FuncBuilder) Mov(dst, a Reg) { fb.emit(Instr{Op: Mov, Dst: dst, A: a}) }

// FMovTo copies a float register into dst.
func (fb *FuncBuilder) FMovTo(dst, a Reg) { fb.emit(Instr{Op: FMov, Dst: dst, A: a}) }

// SetI assigns an integer constant to an existing register.
func (fb *FuncBuilder) SetI(dst Reg, v int64) { fb.emit(Instr{Op: ConstI, Dst: dst, Imm: v}) }

// SetF assigns a float constant to an existing register.
func (fb *FuncBuilder) SetF(dst Reg, v float64) { fb.emit(Instr{Op: ConstF, Dst: dst, FImm: v}) }

// AddTo emits dst := a + b with an explicit destination.
func (fb *FuncBuilder) AddTo(dst, a, b Reg) { fb.emit(Instr{Op: Add, Dst: dst, A: a, B: b}) }

// FAddTo emits dst := a + b (float) with an explicit destination.
func (fb *FuncBuilder) FAddTo(dst, a, b Reg) { fb.emit(Instr{Op: FAdd, Dst: dst, A: a, B: b}) }

// Memory helpers.  addr is a register holding a word index; off a
// constant displacement.

func (fb *FuncBuilder) Load(addr Reg, off int64) Reg {
	d := fb.NewReg()
	fb.emit(Instr{Op: Load, Dst: d, A: addr, Imm: off, Index: NoReg})
	return d
}

func (fb *FuncBuilder) FLoad(addr Reg, off int64) Reg {
	d := fb.NewReg()
	fb.emit(Instr{Op: FLoad, Dst: d, A: addr, Imm: off, Index: NoReg})
	return d
}

func (fb *FuncBuilder) Store(addr Reg, off int64, val Reg) {
	fb.emit(Instr{Op: Store, A: addr, Imm: off, B: val, Dst: NoReg, Index: NoReg})
}

func (fb *FuncBuilder) FStore(addr Reg, off int64, val Reg) {
	fb.emit(Instr{Op: FStore, A: addr, Imm: off, B: val, Dst: NoReg, Index: NoReg})
}

// Indexed addressing variants: the effective address is base + idx +
// off, computed by the memory unit itself so the subscript does not
// enter the register dependence chains (like x86 base+index operands).

func (fb *FuncBuilder) LoadIdx(base, idx Reg, off int64) Reg {
	d := fb.NewReg()
	fb.emit(Instr{Op: Load, Dst: d, A: base, Index: idx, Imm: off})
	return d
}

func (fb *FuncBuilder) FLoadIdx(base, idx Reg, off int64) Reg {
	d := fb.NewReg()
	fb.emit(Instr{Op: FLoad, Dst: d, A: base, Index: idx, Imm: off})
	return d
}

func (fb *FuncBuilder) StoreIdx(base, idx Reg, off int64, val Reg) {
	fb.emit(Instr{Op: Store, A: base, Index: idx, Imm: off, B: val, Dst: NoReg})
}

func (fb *FuncBuilder) FStoreIdx(base, idx Reg, off int64, val Reg) {
	fb.emit(Instr{Op: FStore, A: base, Index: idx, Imm: off, B: val, Dst: NoReg})
}

// AddrOf computes the address of g[idx].
func (fb *FuncBuilder) AddrOf(g Global, idx Reg) Reg {
	return fb.Add(fb.IConst(g.Base), idx)
}

// Addr2 computes the address of g[i][j] for a row-major array with
// rowLen words per row.
func (fb *FuncBuilder) Addr2(g Global, i, j Reg, rowLen int64) Reg {
	row := fb.Mul(i, fb.IConst(rowLen))
	return fb.Add(fb.Add(fb.IConst(g.Base), row), j)
}

// --- control flow --------------------------------------------------------

// Loop emits a counted loop `for iv := lo; iv < hi; iv += step` around
// body.  lo and hi are registers (materialize constants with IConst);
// step must be positive.  The induction variable register is passed to
// the body callback.  The generated shape is the classic rotated-free
// while loop: preheader -> header(test) -> body... -> latch -> header,
// with a single exit from the header.
func (fb *FuncBuilder) Loop(name string, lo, hi Reg, step int64, body func(iv Reg)) {
	if step <= 0 {
		fb.pb.fail(fmt.Errorf("%s: loop %q with non-positive step %d", fb.fn.Name, name, step))
		step = 1
	}
	iv := fb.NewReg()
	fb.Mov(iv, lo)
	header := fb.newBlock(name + ".header")
	fb.emit(Instr{Op: Jmp, Dst: NoReg, Then: header.ID})

	fb.cur = header
	cond := fb.CmpLT(iv, hi)
	bodyBlk := fb.newBlock(name + ".body")
	exitBlk := fb.newBlock(name + ".exit")
	fb.emit(Instr{Op: Br, Dst: NoReg, A: cond, Then: bodyBlk.ID, Else: exitBlk.ID})

	fb.cur = bodyBlk
	body(iv)
	// Latch: advance and jump back.  body may have ended mid-block after
	// inner control flow; emit into whatever the current block is.
	stepReg := fb.IConst(step)
	fb.AddTo(iv, iv, stepReg)
	fb.emit(Instr{Op: Jmp, Dst: NoReg, Then: header.ID})

	fb.cur = exitBlk
}

// LoopDown emits `for iv := hi-1; iv >= lo; iv--` around body.
func (fb *FuncBuilder) LoopDown(name string, lo, hi Reg, body func(iv Reg)) {
	iv := fb.NewReg()
	fb.Mov(iv, fb.Sub(hi, fb.IConst(1)))
	header := fb.newBlock(name + ".header")
	fb.emit(Instr{Op: Jmp, Dst: NoReg, Then: header.ID})

	fb.cur = header
	cond := fb.CmpGE(iv, lo)
	bodyBlk := fb.newBlock(name + ".body")
	exitBlk := fb.newBlock(name + ".exit")
	fb.emit(Instr{Op: Br, Dst: NoReg, A: cond, Then: bodyBlk.ID, Else: exitBlk.ID})

	fb.cur = bodyBlk
	body(iv)
	fb.emit(Instr{Op: Sub, Dst: iv, A: iv, B: fb.mustConstInBlock(1)})
	fb.emit(Instr{Op: Jmp, Dst: NoReg, Then: header.ID})

	fb.cur = exitBlk
}

// mustConstInBlock materializes a constant without disturbing fb.cur
// bookkeeping (plain IConst already works; this exists for symmetry and
// clarity inside terminator-adjacent code).
func (fb *FuncBuilder) mustConstInBlock(v int64) Reg { return fb.IConst(v) }

// While emits a general while loop.  cond is called with the builder
// positioned in the header block and must return the condition register;
// body is emitted in the body block.  Use it for irregular loops whose
// bounds are not affine (worklists, convergence tests).
func (fb *FuncBuilder) While(name string, cond func() Reg, body func()) {
	header := fb.newBlock(name + ".header")
	fb.emit(Instr{Op: Jmp, Dst: NoReg, Then: header.ID})

	fb.cur = header
	c := cond()
	bodyBlk := fb.newBlock(name + ".body")
	exitBlk := fb.newBlock(name + ".exit")
	fb.emit(Instr{Op: Br, Dst: NoReg, A: c, Then: bodyBlk.ID, Else: exitBlk.ID})

	fb.cur = bodyBlk
	body()
	fb.emit(Instr{Op: Jmp, Dst: NoReg, Then: header.ID})

	fb.cur = exitBlk
}

// If emits a conditional with optional else branch (pass nil to omit).
func (fb *FuncBuilder) If(cond Reg, then func(), els func()) {
	thenBlk := fb.newBlock("if.then")
	joinBlk := fb.newBlock("if.join")
	elseID := joinBlk.ID
	var elseBlk *Block
	if els != nil {
		elseBlk = fb.newBlock("if.else")
		elseID = elseBlk.ID
	}
	fb.emit(Instr{Op: Br, Dst: NoReg, A: cond, Then: thenBlk.ID, Else: elseID})

	fb.cur = thenBlk
	then()
	if fb.cur != nil {
		fb.emit(Instr{Op: Jmp, Dst: NoReg, Then: joinBlk.ID})
	}
	if els != nil {
		fb.cur = elseBlk
		els()
		if fb.cur != nil {
			fb.emit(Instr{Op: Jmp, Dst: NoReg, Then: joinBlk.ID})
		}
	}
	fb.cur = joinBlk
}

// Call emits a call terminator and continues in a fresh continuation
// block; the callee's return value lands in the returned register.
func (fb *FuncBuilder) Call(callee FuncID, args ...Reg) Reg {
	d := fb.NewReg()
	cont := fb.newBlock("cont")
	fb.emit(Instr{Op: Call, Dst: d, Callee: callee, Args: append([]Reg(nil), args...), Then: cont.ID})
	fb.cur = cont
	return d
}

// Ret emits a return of the given register.
func (fb *FuncBuilder) Ret(v Reg) { fb.emit(Instr{Op: Ret, A: v, Dst: NoReg}) }

// RetVoid emits a return with no value.
func (fb *FuncBuilder) RetVoid() { fb.emit(Instr{Op: Ret, A: NoReg, Dst: NoReg}) }

// Halt stops the machine (only meaningful in main).
func (fb *FuncBuilder) Halt() { fb.emit(Instr{Op: Halt, Dst: NoReg}) }
