// Package isa defines the instruction set, program representation and
// construction API for the small register machine that polyprof analyzes.
//
// The machine substitutes for the x86/ARM binaries the paper instruments
// through QEMU: it is deliberately "binary like".  Programs are flat lists
// of functions made of basic blocks; control transfers are explicit jump,
// branch, call and return terminators; data lives in an untyped register
// file and a flat word-addressed memory.  Nothing above this level (loop
// structure, induction variables, array shapes) is represented — polyprof
// must rediscover all of it dynamically, exactly as the paper's tool does.
package isa

import "fmt"

// Reg names a virtual register inside a function frame.  Registers are
// untyped 64-bit words; opcodes decide whether to interpret the bits as
// int64 or float64.  Register 0..NumArgs-1 receive the call arguments.
type Reg int32

// NoReg marks an unused register operand.
const NoReg Reg = -1

// FuncID identifies a function within a Program.
type FuncID int32

// NoFunc marks an unused function reference.
const NoFunc FuncID = -1

// BlockID identifies a basic block globally (across all functions) within
// a Program.  Global identifiers keep trace events and CFG algorithms free
// of (function, index) pairs.
type BlockID int32

// NoBlock marks an unused block reference.
const NoBlock BlockID = -1

// Opcode enumerates the machine's instructions.
type Opcode uint8

// Instruction opcodes.  The machine is a load/store architecture: only
// Load/Store/FLoad/FStore touch memory, every other operation works on
// registers.  Jmp, Br, Call, Ret and Halt are block terminators and may
// only appear as the last instruction of a block.
const (
	Nop Opcode = iota

	// Integer constants and moves.
	ConstI // dst := Imm
	Mov    // dst := a

	// Integer arithmetic, dst := a op b.
	Add
	Sub
	Mul
	Div // quotient, traps on b == 0
	Mod // remainder, traps on b == 0
	And
	Or
	Xor
	Shl
	Shr
	MinI
	MaxI

	// Integer comparisons, dst := a op b ? 1 : 0.
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	// Floating point constants and moves.
	ConstF // dst := FImm
	FMov   // dst := a

	// Floating point arithmetic, dst := a op b (FNeg/FAbs/FSqrt/FExp/FLog
	// are unary on a).
	FAdd
	FSub
	FMul
	FDiv
	FMin
	FMax
	FNeg
	FAbs
	FSqrt
	FExp
	FLog

	// Floating point comparisons, dst := a op b ? 1 : 0 (integer result).
	FCmpEQ
	FCmpLT
	FCmpLE

	// Conversions.
	I2F // dst := float64(int64(a))
	F2I // dst := int64(float64(a))

	// Memory.  Addresses are word indices into the flat memory; the
	// effective address is a + Index + Imm (Index is an optional index
	// register, NoReg when absent — the base+index addressing mode of
	// real ISAs, which keeps array subscripts out of the dependence
	// chains the way hardware addressing does).
	Load   // dst := mem[a + Index + Imm] (integer bits)
	Store  // mem[a + Index + Imm] := b   (integer bits)
	FLoad  // dst := mem[a + Index + Imm] (float bits)
	FStore // mem[a + Index + Imm] := b   (float bits)

	// Terminators.
	Jmp  // continue at block Then
	Br   // if a != 0 continue at Then else at Else
	Call // call Callee(Args...); on return dst := result, continue at Then
	Ret  // return a (or nothing if a == NoReg) to the caller
	Halt // stop the machine
)

var opNames = [...]string{
	Nop: "nop", ConstI: "consti", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	MinI: "mini", MaxI: "maxi",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	ConstF: "constf", FMov: "fmov",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	FMin: "fmin", FMax: "fmax", FNeg: "fneg", FAbs: "fabs",
	FSqrt: "fsqrt", FExp: "fexp", FLog: "flog",
	FCmpEQ: "fcmpeq", FCmpLT: "fcmplt", FCmpLE: "fcmple",
	I2F: "i2f", F2I: "f2i",
	Load: "load", Store: "store", FLoad: "fload", FStore: "fstore",
	Jmp: "jmp", Br: "br", Call: "call", Ret: "ret", Halt: "halt",
}

// String returns the assembler mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether the opcode may only end a basic block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case Jmp, Br, Call, Ret, Halt:
		return true
	}
	return false
}

// IsMem reports whether the opcode accesses memory.
func (op Opcode) IsMem() bool {
	switch op {
	case Load, Store, FLoad, FStore:
		return true
	}
	return false
}

// IsMemWrite reports whether the opcode writes memory.
func (op Opcode) IsMemWrite() bool { return op == Store || op == FStore }

// IsFP reports whether the opcode is a floating point operation (the
// paper's %FPops metric counts these).
func (op Opcode) IsFP() bool {
	switch op {
	case ConstF, FMov, FAdd, FSub, FMul, FDiv, FMin, FMax, FNeg, FAbs,
		FSqrt, FExp, FLog, FCmpEQ, FCmpLT, FCmpLE, I2F, FLoad, FStore:
		return true
	}
	return false
}

// IsCompare reports whether the opcode is a comparison.  Comparisons
// almost always feed branches: they are loop control rather than data,
// so affinity metrics treat them like the SCEV loop-counter chains.
func (op Opcode) IsCompare() bool {
	switch op {
	case CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, FCmpEQ, FCmpLT, FCmpLE:
		return true
	}
	return false
}

// IsIntALU reports whether the opcode is pure integer register
// arithmetic.  Only these are candidates for SCEV elimination: they are
// the "unimportant" loop-counter and address computations the paper
// removes from the DDG once recognized as scalar evolutions.
func (op Opcode) IsIntALU() bool {
	switch op {
	case ConstI, Mov, Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
		MinI, MaxI, CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, F2I:
		return true
	}
	return false
}

// producesInt reports whether the instruction writes an integer value to
// Dst that is meaningful as a folding label (integer or pointer value).
func (op Opcode) producesInt() bool {
	switch op {
	case ConstI, Mov, Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
		MinI, MaxI, CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE,
		FCmpEQ, FCmpLT, FCmpLE, F2I, Load:
		return true
	}
	return false
}

// ProducesInt reports whether the instruction's destination holds an
// integer (rather than float) value.
func (op Opcode) ProducesInt() bool { return op.producesInt() }

// WritesDst reports whether the opcode writes a destination register.
// Control transfers (except Call, whose destination receives the return
// value) and stores do not.
func (op Opcode) WritesDst() bool {
	switch op {
	case Nop, Store, FStore, Jmp, Br, Ret, Halt:
		return false
	}
	return true
}

// SrcLoc is a pseudo source location, mimicking the DWARF debug
// information the paper's tool maps feedback onto ("backprop.c:254").
type SrcLoc struct {
	File string
	Line int
}

// String renders the location as file:line, or "?" when unknown.
func (l SrcLoc) String() string {
	if l.File == "" {
		return "?"
	}
	return fmt.Sprintf("%s:%d", l.File, l.Line)
}

// Instr is a single machine instruction.
type Instr struct {
	Op  Opcode
	Dst Reg // destination register (NoReg when none)
	A   Reg // first operand
	B   Reg // second operand

	Imm  int64   // integer immediate (ConstI, memory displacement)
	FImm float64 // float immediate (ConstF)

	// Index is the optional index register of memory operations (NoReg
	// when unused).
	Index Reg

	// Terminator fields.
	Then   BlockID // Jmp target, Br then-target, Call continuation
	Else   BlockID // Br else-target
	Callee FuncID  // Call target
	Args   []Reg   // Call arguments, copied to callee registers 0..n-1

	Loc SrcLoc // pseudo debug info
}

// Uses returns the registers read by the instruction (at most two plus
// call arguments).  The buf slice is reused to avoid allocation.
func (in *Instr) Uses(buf []Reg) []Reg {
	buf = buf[:0]
	switch in.Op {
	case Nop, ConstI, ConstF, Jmp, Halt:
	case Mov, FMov, FNeg, FAbs, FSqrt, FExp, FLog, I2F, F2I, Br:
		buf = append(buf, in.A)
	case Load, FLoad:
		buf = append(buf, in.A)
		if in.Index != NoReg {
			buf = append(buf, in.Index)
		}
	case Store, FStore:
		buf = append(buf, in.A, in.B)
		if in.Index != NoReg {
			buf = append(buf, in.Index)
		}
	case Ret:
		if in.A != NoReg {
			buf = append(buf, in.A)
		}
	case Call:
		buf = append(buf, in.Args...)
	default: // binary ALU
		buf = append(buf, in.A, in.B)
	}
	return buf
}

// Block is a basic block: a straight-line instruction sequence ending in
// exactly one terminator.
type Block struct {
	ID    BlockID
	Fn    FuncID
	Name  string // diagnostic name, e.g. "L1.header"
	Code  []Instr
	Index int // position within the owning function
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr { return &b.Code[len(b.Code)-1] }

// Func is a machine function.
type Func struct {
	ID      FuncID
	Name    string
	Entry   BlockID
	Blocks  []BlockID // all blocks, entry first
	NumArgs int
	NumRegs int // frame size; registers 0..NumArgs-1 hold arguments

	// SrcDepth declares the loop depth of the function's hottest nest as
	// written in pseudo "source" form.  Workloads set it so feedback can
	// report the paper's ld-src column even when the "compiled" form has
	// a different depth (e.g. an unrolled dimension).
	SrcDepth int
}

// Program is a complete executable image.
type Program struct {
	Name   string
	Funcs  []*Func
	Blocks []*Block // indexed by BlockID
	Main   FuncID

	// MemWords is the memory size in 8-byte words the program needs.
	MemWords int64

	// Globals maps symbolic array names to their base word address and
	// extent; workloads register their arrays here so tests and the
	// static baseline can reason about storage without parsing code.
	Globals map[string]Global
}

// Global describes a named region of the flat memory.
type Global struct {
	Base int64 // first word
	Size int64 // extent in words
}

// Func returns the function with the given id.
func (p *Program) Func(id FuncID) *Func { return p.Funcs[id] }

// Block returns the block with the given id.
func (p *Program) Block(id BlockID) *Block { return p.Blocks[id] }

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// MaxRegsPerFunc caps a function's register frame.  The VM allocates
// NumRegs words per call frame, so an unchecked hostile program could
// request absurd frames; no generated workload comes near this.
const MaxRegsPerFunc = 1 << 16

// Validate checks structural invariants: every block ends in exactly one
// terminator, no terminator appears mid-block, all control-flow targets
// exist and stay within the owning function (calls excepted), and every
// register operand fits the owning function's frame.  The VM refuses to
// run programs that fail validation, so hostile images trap here
// instead of panicking mid-interpretation.
func (p *Program) Validate() error {
	if p.Main < 0 || int(p.Main) >= len(p.Funcs) {
		return fmt.Errorf("program %q: invalid main function %d", p.Name, p.Main)
	}
	if p.MemWords < 0 {
		return fmt.Errorf("program %q: negative memory size %d", p.Name, p.MemWords)
	}
	var buf []Reg
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("function %q has no blocks", f.Name)
		}
		if f.NumRegs < 0 || f.NumRegs > MaxRegsPerFunc {
			return fmt.Errorf("function %q: register frame %d out of range [0, %d]",
				f.Name, f.NumRegs, MaxRegsPerFunc)
		}
		if f.NumArgs < 0 || f.NumArgs > f.NumRegs {
			return fmt.Errorf("function %q: %d args exceed %d registers", f.Name, f.NumArgs, f.NumRegs)
		}
		for _, bid := range f.Blocks {
			if bid < 0 || int(bid) >= len(p.Blocks) {
				return fmt.Errorf("function %q references unknown block %d", f.Name, bid)
			}
			b := p.Blocks[bid]
			if b.Fn != f.ID {
				return fmt.Errorf("block %d listed in %q but owned by function %d", bid, f.Name, b.Fn)
			}
			if len(b.Code) == 0 {
				return fmt.Errorf("block %q (%d) in %q is empty", b.Name, bid, f.Name)
			}
			for i := range b.Code {
				in := &b.Code[i]
				isLast := i == len(b.Code)-1
				if in.Op.IsTerminator() != isLast {
					return fmt.Errorf("block %q (%d) in %q: instruction %d (%v) misplaced terminator",
						b.Name, bid, f.Name, i, in.Op)
				}
				if int(in.Op) >= len(opNames) || opNames[in.Op] == "" {
					return fmt.Errorf("block %q (%d) in %q: instruction %d has unknown opcode %d",
						b.Name, bid, f.Name, i, uint8(in.Op))
				}
				badReg := func(r Reg) bool { return r < 0 || int(r) >= f.NumRegs }
				buf = in.Uses(buf)
				for _, r := range buf {
					if badReg(r) {
						return fmt.Errorf("block %q (%d) in %q: instruction %d (%v) reads register %d (frame %d)",
							b.Name, bid, f.Name, i, in.Op, r, f.NumRegs)
					}
				}
				if in.Op.WritesDst() {
					// Call may discard its result (Dst == NoReg); every
					// other writer needs a real destination.
					if badReg(in.Dst) && !(in.Op == Call && in.Dst == NoReg) {
						return fmt.Errorf("block %q (%d) in %q: instruction %d (%v) writes register %d (frame %d)",
							b.Name, bid, f.Name, i, in.Op, in.Dst, f.NumRegs)
					}
				}
			}
			if err := p.validateTerminator(f, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateTerminator(f *Func, b *Block) error {
	t := b.Terminator()
	checkTarget := func(id BlockID, what string) error {
		if id < 0 || int(id) >= len(p.Blocks) {
			return fmt.Errorf("block %q in %q: %s target %d out of range", b.Name, f.Name, what, id)
		}
		if p.Blocks[id].Fn != f.ID {
			return fmt.Errorf("block %q in %q: %s target %d crosses functions", b.Name, f.Name, what, id)
		}
		return nil
	}
	switch t.Op {
	case Jmp:
		return checkTarget(t.Then, "jmp")
	case Br:
		if err := checkTarget(t.Then, "br-then"); err != nil {
			return err
		}
		return checkTarget(t.Else, "br-else")
	case Call:
		if t.Callee < 0 || int(t.Callee) >= len(p.Funcs) {
			return fmt.Errorf("block %q in %q: call to unknown function %d", b.Name, f.Name, t.Callee)
		}
		callee := p.Funcs[t.Callee]
		if len(t.Args) != callee.NumArgs {
			return fmt.Errorf("block %q in %q: call to %q with %d args, want %d",
				b.Name, f.Name, callee.Name, len(t.Args), callee.NumArgs)
		}
		return checkTarget(t.Then, "call continuation")
	case Ret, Halt:
		return nil
	}
	return fmt.Errorf("block %q in %q: bad terminator %v", b.Name, f.Name, t.Op)
}
