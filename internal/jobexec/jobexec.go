// Package jobexec executes one attempt of one durable job: materialize
// the program, run the pipeline under a budget with its own span tree
// and registry, and fold the outcome into a jobstore.Result.  It is the
// shared attempt runner behind both the in-process worker pool (the
// serve daemon's default) and remote lease-holding workers
// (`polyprof work`), so an attempt behaves identically — budgets,
// degradation, error classification, span naming — no matter which
// process runs it.
package jobexec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/faultinject"
	"polyprof/internal/feedback"
	"polyprof/internal/isa"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/progress"
	"polyprof/internal/transform"
	"polyprof/internal/workloads"
)

// attemptFault injects at the top of each attempt, before the program
// is materialized — the chaos hook for a worker that wedges (delay) or
// fails (error/budget/panic) mid-attempt.  checkpointFault injects at
// the checkpoint-persist boundary of a streaming attempt: the attempt
// dies mid-epoch and the retry must resume from the last epoch whose
// checkpoint committed.
var (
	attemptFault    = faultinject.Point("jobexec.attempt")
	checkpointFault = faultinject.Point("jobexec.checkpoint")
)

// CheckpointStore persists and recalls epoch checkpoints for one job.
// The serve daemon backs it with jobstore (WAL-committed); remote
// workers back it with the coordinator's lease-fenced checkpoint
// endpoint.  Save returning nil means the epoch is committed.
type CheckpointStore interface {
	Save(epoch, events uint64, data []byte) error
	// Load returns the latest committed checkpoint, or ok == false when
	// the attempt must start from event zero.
	Load() (data []byte, ok bool)
}

// Provisional is the rendered per-epoch report of a streaming attempt,
// pushed to Options.OnProvisional for live progress streaming.  Its
// dependence set only ever grows in later epochs.
type Provisional struct {
	Epoch  uint64          `json:"epoch"`
	Events uint64          `json:"events"`
	Report json.RawMessage `json:"report"`
}

// Options tunes one attempt.
type Options struct {
	// Limits are the attempt's resource budgets (zero fields
	// unlimited).
	Limits budget.Limits
	// Timeout bounds the attempt's wall clock (<= 0 disables).
	Timeout time.Duration
	// ParallelDDG selects the sharded parallel dependence engine with
	// that many shard workers; 0 keeps the sequential builder.
	ParallelDDG int
	// Tracker receives stage transitions when non-nil; the caller owns
	// it (wiring OnStage to its own persistence or trace shipping).
	Tracker *progress.Tracker

	// Optimize runs the schedule-application engine after analysis:
	// suggested schedules are applied, re-measured under the VM
	// cycle/cache model, and the verified results land in the report's
	// "optimization" section.  Measurement re-executions charge the same
	// budget as the profiled run.
	Optimize bool
	// TileSize is the rectangular tile edge for Optimize
	// (transform.DefaultTileSize when 0).
	TileSize int

	// EpochEvents, when positive, runs the attempt in streaming mode:
	// pass 2 pauses every EpochEvents dynamic instructions, renders a
	// provisional report, and commits a resume checkpoint.
	EpochEvents uint64
	// Checkpoints persists epoch checkpoints and supplies the one a
	// resumed attempt restores from (nil: stream without durability).
	Checkpoints CheckpointStore
	// OnProvisional receives the rendered report after each epoch (nil
	// skips the per-epoch render entirely).
	OnProvisional func(Provisional)
	// OnResume is told when the attempt restored from a committed
	// checkpoint instead of starting at event zero (for lifecycle
	// tracing).
	OnResume func(epoch, events uint64)
}

// Program materializes the program a job profiles.  Errors here are
// terminal by construction (never ErrRetryable, never budget timeouts):
// an unknown workload, an undecodable body, or a structurally invalid
// program fails identically on every attempt.
func Program(job *jobstore.Job) (*isa.Program, error) {
	switch job.Kind {
	case jobstore.KindWorkload:
		spec := workloads.ByName(job.Workload)
		if spec == nil {
			return nil, fmt.Errorf("unknown workload %q", job.Workload)
		}
		return spec.Build(), nil
	case jobstore.KindProgram:
		prog, err := isa.DecodeJSON(job.Program)
		if err != nil {
			return nil, err
		}
		// Validate eagerly for a precise error; the VM re-validates
		// before execution regardless.
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("program rejected: %w", err)
		}
		return prog, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q", job.Kind)
	}
}

// Run executes one attempt.  The returned registry holds the attempt's
// span tree ("job:<name>#<attempt>" root) and metric deltas for the
// caller to merge or ship; the Result is always non-nil with Status
// already classified.  The error is the pipeline error (nil on
// success) for the caller's retry/quarantine decision.
func Run(ctx context.Context, job *jobstore.Job, attempt int, opts Options) (*jobstore.Result, *obs.Registry, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	root := reg.Scope().StartSpan(fmt.Sprintf("job:%s#%d", job.Name(), attempt))
	sc := reg.Scope().WithSpan(root)
	res := &jobstore.Result{Status: "ok", SpanID: root.ID()}
	start := time.Now()

	bud := budget.New(ctx, opts.Limits)
	err := func() error {
		if err := attemptFault.Hit(); err != nil {
			return err
		}
		prog, err := Program(job)
		if err != nil {
			return err
		}
		ro := core.DefaultRunOptions()
		ro.Obs = sc
		ro.Budget = bud
		ro.ParallelDDG = opts.ParallelDDG
		ro.Progress = opts.Tracker
		if opts.EpochEvents > 0 {
			ro.EpochEvents = opts.EpochEvents
			ro.OnEpoch = epochHook(opts)
			if opts.Checkpoints != nil {
				if data, ok := opts.Checkpoints.Load(); ok {
					ck, derr := core.DecodeCheckpoint(data)
					if derr != nil {
						// Resuming is an optimization; a fresh start is
						// always sound.  Record the corruption and run
						// from event zero.
						flight.Log("stream", "resume-rejected",
							fmt.Sprintf("job %s: %v; starting from event zero", job.ID, derr))
					} else {
						ro.Resume = ck
						if opts.OnResume != nil {
							opts.OnResume(ck.Epoch, ck.Events)
						}
					}
				}
			}
		}
		if opts.ParallelDDG > 0 {
			// Parallel attempts carry the utilization sampler; its
			// headline gauges land in the attempt registry for the caller
			// to merge (the polyprof_ddg_* families on /metrics).
			smp := sampler.New()
			smp.SetEnabled(true)
			ro.Sampler = smp
		}
		p, err := core.Run(prog, ro)
		if err != nil {
			return err
		}
		opts.Tracker.StartStage("feedback", 0)
		rep, err := feedback.AnalyzeChecked(p)
		if err != nil {
			return err
		}
		var optJSON json.RawMessage
		if opts.Optimize {
			optJSON, err = runOptimize(sc, p, rep, bud, opts)
			if err != nil {
				return err
			}
		}
		cm := feedback.DefaultCostModel()
		data, err := rep.JSONWith(&cm, optJSON)
		if err != nil {
			return err
		}
		res.Report = data
		res.Ops = p.DDG.TotalOps
		if d := p.DDG.Degraded; d != nil {
			res.Degraded = true
			res.Budget = d.Budgets
		}
		root.AddEvents(p.DDG.TotalOps)
		return nil
	}()
	if err != nil {
		root.Fail(err)
		res.Status = Classify(err)
	}
	root.End()
	res.WallNS = int64(time.Since(start))
	return res, reg, err
}

// runOptimize is the optional transform stage: apply the suggested
// schedules, re-measure, verify, and marshal the engine's report for
// embedding.  A panic inside the engine is contained here exactly like
// a pipeline-stage panic (stage-panic flight bundle, attempt fails,
// daemon survives).
func runOptimize(sc obs.Scope, p *core.Profile, rep *feedback.Report, bud *budget.Budget, opts Options) (data json.RawMessage, err error) {
	opts.Tracker.StartStage("transform", 0)
	sp := sc.StartSpan("transform")
	defer sp.End()
	defer core.RecoverStage("transform", sp, &err)
	opt, err := transform.Optimize(p, rep.Model, rep.AllTransforms(), transform.Options{
		TileSize: opts.TileSize,
		Obs:      sc.WithSpan(sp),
		Budget:   bud,
	})
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	return json.Marshal(opt)
}

// epochHook builds the per-boundary callback of a streaming attempt:
// render the provisional report (only when someone is listening), then
// commit the checkpoint.  In that order — a checkpoint must never
// outrun what has been reported — and any failure aborts the attempt
// as retryable: the retry resumes from the last epoch whose checkpoint
// actually committed.
func epochHook(opts Options) func(*core.Epoch) error {
	return func(ep *core.Epoch) error {
		if opts.OnProvisional != nil && ep.Provisional != nil {
			prov := ep.Provisional
			// Detached disabled registry: per-epoch analysis must not
			// pollute the attempt's span tree or the global metrics.
			prov.Obs = obs.NewRegistry().Scope()
			rep, err := feedback.AnalyzeChecked(prov)
			if err != nil {
				return fmt.Errorf("provisional analysis at epoch %d: %w", ep.N, err)
			}
			cm := feedback.DefaultCostModel()
			data, err := rep.JSON(&cm)
			if err != nil {
				return fmt.Errorf("provisional report at epoch %d: %w", ep.N, err)
			}
			opts.OnProvisional(Provisional{Epoch: ep.N, Events: ep.Events, Report: data})
		}
		if opts.Checkpoints != nil && len(ep.Checkpoint) > 0 {
			if err := checkpointFault.Hit(); err != nil {
				return fmt.Errorf("checkpoint at epoch %d: %w", ep.N, errors.Join(err, jobstore.ErrRetryable))
			}
			if err := opts.Checkpoints.Save(ep.N, ep.Events, ep.Checkpoint); err != nil {
				return fmt.Errorf("checkpoint at epoch %d: %w", ep.N, errors.Join(err, jobstore.ErrRetryable))
			}
		}
		return nil
	}
}

// Classify maps a pipeline error to a result status: budget aborts
// split into timeout/canceled/budget, anything else is a plain error.
func Classify(err error) string {
	be, ok := budget.AsError(err)
	switch {
	case !ok:
		return "error"
	case be.Timeout():
		return "timeout"
	case be.Canceled():
		return "canceled"
	default:
		return "budget"
	}
}
