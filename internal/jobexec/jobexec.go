// Package jobexec executes one attempt of one durable job: materialize
// the program, run the pipeline under a budget with its own span tree
// and registry, and fold the outcome into a jobstore.Result.  It is the
// shared attempt runner behind both the in-process worker pool (the
// serve daemon's default) and remote lease-holding workers
// (`polyprof work`), so an attempt behaves identically — budgets,
// degradation, error classification, span naming — no matter which
// process runs it.
package jobexec

import (
	"context"
	"fmt"
	"time"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/faultinject"
	"polyprof/internal/feedback"
	"polyprof/internal/isa"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/progress"
	"polyprof/internal/workloads"
)

// attemptFault injects at the top of each attempt, before the program
// is materialized — the chaos hook for a worker that wedges (delay) or
// fails (error/budget/panic) mid-attempt.
var attemptFault = faultinject.Point("jobexec.attempt")

// Options tunes one attempt.
type Options struct {
	// Limits are the attempt's resource budgets (zero fields
	// unlimited).
	Limits budget.Limits
	// Timeout bounds the attempt's wall clock (<= 0 disables).
	Timeout time.Duration
	// ParallelDDG selects the sharded parallel dependence engine with
	// that many shard workers; 0 keeps the sequential builder.
	ParallelDDG int
	// Tracker receives stage transitions when non-nil; the caller owns
	// it (wiring OnStage to its own persistence or trace shipping).
	Tracker *progress.Tracker
}

// Program materializes the program a job profiles.  Errors here are
// terminal by construction (never ErrRetryable, never budget timeouts):
// an unknown workload, an undecodable body, or a structurally invalid
// program fails identically on every attempt.
func Program(job *jobstore.Job) (*isa.Program, error) {
	switch job.Kind {
	case jobstore.KindWorkload:
		spec := workloads.ByName(job.Workload)
		if spec == nil {
			return nil, fmt.Errorf("unknown workload %q", job.Workload)
		}
		return spec.Build(), nil
	case jobstore.KindProgram:
		prog, err := isa.DecodeJSON(job.Program)
		if err != nil {
			return nil, err
		}
		// Validate eagerly for a precise error; the VM re-validates
		// before execution regardless.
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("program rejected: %w", err)
		}
		return prog, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q", job.Kind)
	}
}

// Run executes one attempt.  The returned registry holds the attempt's
// span tree ("job:<name>#<attempt>" root) and metric deltas for the
// caller to merge or ship; the Result is always non-nil with Status
// already classified.  The error is the pipeline error (nil on
// success) for the caller's retry/quarantine decision.
func Run(ctx context.Context, job *jobstore.Job, attempt int, opts Options) (*jobstore.Result, *obs.Registry, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	root := reg.Scope().StartSpan(fmt.Sprintf("job:%s#%d", job.Name(), attempt))
	sc := reg.Scope().WithSpan(root)
	res := &jobstore.Result{Status: "ok", SpanID: root.ID()}
	start := time.Now()

	bud := budget.New(ctx, opts.Limits)
	err := func() error {
		if err := attemptFault.Hit(); err != nil {
			return err
		}
		prog, err := Program(job)
		if err != nil {
			return err
		}
		ro := core.DefaultRunOptions()
		ro.Obs = sc
		ro.Budget = bud
		ro.ParallelDDG = opts.ParallelDDG
		ro.Progress = opts.Tracker
		if opts.ParallelDDG > 0 {
			// Parallel attempts carry the utilization sampler; its
			// headline gauges land in the attempt registry for the caller
			// to merge (the polyprof_ddg_* families on /metrics).
			smp := sampler.New()
			smp.SetEnabled(true)
			ro.Sampler = smp
		}
		p, err := core.Run(prog, ro)
		if err != nil {
			return err
		}
		opts.Tracker.StartStage("feedback", 0)
		rep, err := feedback.AnalyzeChecked(p)
		if err != nil {
			return err
		}
		cm := feedback.DefaultCostModel()
		data, err := rep.JSON(&cm)
		if err != nil {
			return err
		}
		res.Report = data
		res.Ops = p.DDG.TotalOps
		if d := p.DDG.Degraded; d != nil {
			res.Degraded = true
			res.Budget = d.Budgets
		}
		root.AddEvents(p.DDG.TotalOps)
		return nil
	}()
	if err != nil {
		root.Fail(err)
		res.Status = Classify(err)
	}
	root.End()
	res.WallNS = int64(time.Since(start))
	return res, reg, err
}

// Classify maps a pipeline error to a result status: budget aborts
// split into timeout/canceled/budget, anything else is a plain error.
func Classify(err error) string {
	be, ok := budget.AsError(err)
	switch {
	case !ok:
		return "error"
	case be.Timeout():
		return "timeout"
	case be.Canceled():
		return "canceled"
	default:
		return "budget"
	}
}
