package trace_test

import (
	"testing"

	"polyprof/internal/isa"
	"polyprof/internal/trace"
)

func TestControlKindString(t *testing.T) {
	cases := map[trace.ControlKind]string{
		trace.Jump:   "jump",
		trace.Call:   "call",
		trace.Return: "return",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if trace.ControlKind(99).String() == "" {
		t.Error("unknown kinds must render something")
	}
}

// TestControlOnlyAdapter: the pass-1 adapter forwards control events
// and swallows instruction events.
func TestControlOnlyAdapter(t *testing.T) {
	var got []trace.ControlEvent
	var hook trace.Hook = trace.ControlOnly(func(ev trace.ControlEvent) {
		got = append(got, ev)
	})
	hook.Control(trace.ControlEvent{Kind: trace.Call, Src: 1, Dst: 2})
	hook.Instr(trace.InstrEvent{}, &isa.Instr{Op: isa.Add}) // must be a no-op
	if len(got) != 1 || got[0].Kind != trace.Call || got[0].Dst != 2 {
		t.Errorf("adapter forwarded %v", got)
	}
}
