// Package trace defines the raw event stream produced by the
// instrumented virtual machine.  These events are the only interface
// between execution and analysis: everything polyprof reconstructs
// (CFGs, call graph, loops, iteration vectors, dependencies) is derived
// from this stream, exactly as the paper's QEMU-plugin instrumentation
// exposes jump/call/return events plus memory addresses and integer
// values to its analyses.
package trace

import "polyprof/internal/isa"

// ControlKind discriminates control-transfer events.
type ControlKind uint8

// Control event kinds.
const (
	// Jump is a local (intraprocedural) transfer: fall-through of a Jmp
	// or a taken Br edge, plus the synthetic initial entry into main.
	Jump ControlKind = iota
	// Call is a function call; Dst is the callee's entry block.
	Call
	// Return is a function return; Dst is the continuation block in the
	// caller.
	Return
)

func (k ControlKind) String() string {
	switch k {
	case Jump:
		return "jump"
	case Call:
		return "call"
	case Return:
		return "return"
	}
	return "control(?)"
}

// ControlEvent is one dynamic control transfer.
type ControlEvent struct {
	Kind ControlKind
	// Src is the block the transfer leaves (NoBlock for program entry).
	Src isa.BlockID
	// Dst is the block the transfer reaches: the jump target, the callee
	// entry, or the return continuation.
	Dst isa.BlockID
	// Callee is the function being entered (Call) or left (Return);
	// NoFunc for jumps.
	Callee isa.FuncID
	// Caller is the function containing Src for calls, or the function
	// being returned into for returns; NoFunc for jumps.
	Caller isa.FuncID
}

// InstrRef statically identifies an instruction as (block, index).
type InstrRef struct {
	Block isa.BlockID
	Index int32
}

// InstrEvent is one executed instruction.  Static properties (opcode,
// registers) are read from the program via Ref; the event carries only
// the dynamic facts instrumentation observes.
type InstrEvent struct {
	Ref InstrRef
	// Value is the produced integer value when the instruction's opcode
	// ProducesInt(); undefined otherwise.
	Value int64
	// Addr is the effective word address for memory operations, -1
	// otherwise.
	Addr int64
}

// Hook receives the instrumentation stream.  Control events are
// delivered *before* execution continues at Dst; instruction events are
// delivered after the instruction executes (so produced values are
// available), in program order.
type Hook interface {
	Control(ev ControlEvent)
	Instr(ev InstrEvent, in *isa.Instr)
}

// BatchHook is an optional Hook extension: a hook that also implements
// InstrBatch receives instruction events in batches instead of one
// Instr call per event, amortizing the per-event dispatch cost.  The
// VM enables batching only when it drives exactly one hook and that
// hook implements BatchHook (batching would reorder events *between*
// hooks otherwise).
//
// The contract is the sequential one, deferred: evs[i] corresponds to
// ins[i], events appear in program order, and a batch never spans a
// control event — every pending batch is flushed before a Control call
// and before Run returns (on error paths too).  Between two control
// events the dynamic iteration vector is constant, which is what lets
// batch consumers compute per-batch context once.  Both slices are
// only valid for the duration of the call.
type BatchHook interface {
	Hook
	InstrBatch(evs []InstrEvent, ins []*isa.Instr)
}

// ControlOnly adapts a function to a Hook that ignores instructions.
// Pass 1 of polyprof (dynamic CFG/CG recovery) uses it: the paper's
// "Instrumentation I" also only instruments control transfers.
type ControlOnly func(ev ControlEvent)

// Control implements Hook.
func (f ControlOnly) Control(ev ControlEvent) { f(ev) }

// Instr implements Hook as a no-op.
func (ControlOnly) Instr(InstrEvent, *isa.Instr) {}
