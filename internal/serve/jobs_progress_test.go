package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"polyprof/internal/jobstore"
)

// slowLoopProgram returns an isa-JSON program spinning a counted loop
// long enough for GET /v1/jobs/{id} polls to catch it mid-flight.
func slowLoopProgram(iters int) string {
	return fmt.Sprintf(`{
	 "name": "slow-loop", "main": 0, "mem_words": 64,
	 "globals": {"a": {"base": 0, "size": 64}},
	 "funcs": [{"name": "main", "entry": 0, "blocks": [0, 1, 2], "num_args": 0, "num_regs": 8}],
	 "blocks": [
	  {"fn": 0, "name": "entry", "code": [
	    {"op": "consti", "dst": 0, "imm": 0},
	    {"op": "consti", "dst": 1, "imm": 1},
	    {"op": "consti", "dst": 2, "imm": %d},
	    {"op": "consti", "dst": 4, "imm": 0},
	    {"op": "jmp", "then": 1}]},
	  {"fn": 0, "name": "loop", "code": [
	    {"op": "store", "a": 4, "b": 0},
	    {"op": "add", "dst": 0, "a": 0, "b": 1},
	    {"op": "cmplt", "dst": 3, "a": 0, "b": 2},
	    {"op": "br", "a": 3, "then": 1, "else": 2}]},
	  {"fn": 0, "name": "exit", "code": [{"op": "halt"}]}
	 ]
	}`, iters)
}

// TestJobProgressLive is the live-progress acceptance check: while a
// slow job runs, GET /v1/jobs/{id} reports a progress object whose
// stage is named and whose event counter moves forward, and the field
// disappears once the job is terminal.
func TestJobProgressLive(t *testing.T) {
	iters := 1_000_000
	if testing.Short() {
		iters = 200_000
	}
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})
	resp, body := postJob(t, ts, "", []byte(slowLoopProgram(iters)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}

	// Poll while running: progress must appear, with monotone events
	// within each stage.
	var (
		sawProgress bool
		sawEvents   bool
		lastStage   string
		lastEvents  uint64
	)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, ts, "/v1/jobs/"+sum.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job = %d: %s", resp.StatusCode, body)
		}
		var j jobstore.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatalf("job does not parse: %v: %s", err, body)
		}
		if j.State.Terminal() {
			if j.State != jobstore.StateSucceeded {
				t.Fatalf("job ended %s: %+v", j.State, j.Error)
			}
			if j.Progress != nil {
				t.Fatalf("terminal job still reports progress %+v", j.Progress)
			}
			if !sawProgress {
				t.Fatal("never observed progress on a running job — workload too fast or progress not wired")
			}
			if !sawEvents {
				t.Fatal("progress stages observed but the event counter never moved")
			}
			return
		}
		if j.State == jobstore.StateRunning && j.Progress != nil {
			sawProgress = true
			p := j.Progress
			if p.Stage == "" {
				t.Fatalf("running progress without a stage: %+v", p)
			}
			if p.Stage == lastStage && p.Events < lastEvents {
				t.Fatalf("events went backwards within stage %s: %d -> %d", p.Stage, lastEvents, p.Events)
			}
			if p.Events > 0 {
				sawEvents = true
				if p.Total > 0 && p.Events > p.Total {
					t.Fatalf("events %d above stage total %d", p.Events, p.Total)
				}
			}
			lastStage, lastEvents = p.Stage, p.Events
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never finished")
}
