package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
)

// handleFlightList serves GET /v1/flight: the on-disk incident bundles,
// newest first.  503 while the recorder is disabled (no -data-dir).
func (s *Server) handleFlightList(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "GET /v1/flight lists incident bundles", http.StatusMethodNotAllowed)
		return
	}
	if !flight.Default.Enabled() {
		http.Error(w, "flight recorder is disabled; restart the daemon with -data-dir", http.StatusServiceUnavailable)
		return
	}
	infos, err := flight.Default.List()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"bundles": infos})
}

// handleFlightGet serves GET /v1/flight/{id} (one bundle, verbatim)
// and DELETE /v1/flight/{id} (prune an incident bundle that has been
// triaged — the recorder's retention gc only runs on new triggers, so
// deletion is the operator's lever).
func (s *Server) handleFlightGet(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodDelete {
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "GET /v1/flight/<id> returns one bundle; DELETE prunes it", http.StatusMethodNotAllowed)
		return
	}
	if !flight.Default.Enabled() {
		http.Error(w, "flight recorder is disabled; restart the daemon with -data-dir", http.StatusServiceUnavailable)
		return
	}
	id := strings.TrimPrefix(req.URL.Path, "/v1/flight/")
	if req.Method == http.MethodDelete {
		if err := flight.Default.Remove(id); err != nil {
			http.Error(w, fmt.Sprintf("bundle %q: %v", id, err), http.StatusNotFound)
			return
		}
		s.reg.Add("serve.flight.deletes", 1)
		writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
		return
	}
	b, err := flight.Default.Read(id)
	if err != nil {
		http.Error(w, fmt.Sprintf("bundle %q: %v", id, err), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

// logMetricsDelta records a request/attempt registry's summary into the
// flight ring just before it merges into the process registry — the
// per-request registry is exactly that request's metric delta.  One
// atomic load and a return while the recorder is disabled.
func logMetricsDelta(name, trace string, reg *obs.Registry) {
	if !flight.Enabled() {
		return
	}
	snap := reg.Snapshot()
	var top string
	var topVal uint64
	for _, c := range snap.Counters {
		if c.Value >= topVal {
			top, topVal = c.Name, c.Value
		}
	}
	detail := fmt.Sprintf("%d counters, %d gauges, %d histograms",
		len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	if top != "" {
		detail += fmt.Sprintf("; top %s=%d", top, topVal)
	}
	flight.LogEvent(flight.Event{Kind: "metrics", Name: name, Trace: trace, Detail: detail})
}

// lifecycleSpans converts a job's persisted lifecycle trace into span
// records for the Chrome-trace export: queue wait, per-attempt leases,
// and pipeline stages each get a track, with instantaneous transitions
// (intake, retry, quarantine, the terminal event) as zero-width marks.
func lifecycleSpans(j *jobstore.Job) []obs.SpanRecord {
	var out []obs.SpanRecord
	var id uint64
	add := func(sp obs.SpanRecord) {
		id++
		sp.ID = id
		out = append(out, sp)
	}
	evs := j.Trace
	// endOf finds when the span opened by evs[i] closes: the next event
	// among the given kinds, else the last event of the trace.
	endOf := func(i int, kinds ...string) time.Time {
		for k := i + 1; k < len(evs); k++ {
			for _, kind := range kinds {
				if evs[k].Event == kind {
					return evs[k].At
				}
			}
		}
		return evs[len(evs)-1].At
	}
	width := func(start, end time.Time) time.Duration {
		if end.After(start) {
			return end.Sub(start)
		}
		return 0
	}
	for i, ev := range evs {
		switch ev.Event {
		case jobstore.TraceQueueWait:
			// The event is stamped when the wait ends and carries its
			// duration, so the span extends backward.
			add(obs.SpanRecord{
				Name: "queue-wait", Track: "job/queue",
				Start: ev.At.Add(-time.Duration(ev.WallNS)),
				Wall:  time.Duration(ev.WallNS), Status: "ok",
			})
		case jobstore.TraceLease:
			end := endOf(i, jobstore.TraceComplete, jobstore.TraceRetry,
				jobstore.TraceQuarantine, jobstore.TraceCrashRecovered, jobstore.TraceLease)
			add(obs.SpanRecord{
				Name: fmt.Sprintf("attempt-%d", ev.Attempt), Track: "job/attempts",
				Start: ev.At, Wall: width(ev.At, end), Status: "ok",
			})
		case jobstore.TraceStage:
			end := endOf(i, jobstore.TraceStage, jobstore.TraceComplete, jobstore.TraceRetry,
				jobstore.TraceQuarantine, jobstore.TraceCrashRecovered, jobstore.TraceLease)
			add(obs.SpanRecord{
				Name: ev.Stage, Track: "job/stages",
				Start: ev.At, Wall: width(ev.At, end), Status: "ok",
			})
		default:
			status := "ok"
			if ev.Event == jobstore.TraceQuarantine || ev.Event == jobstore.TraceCrashRecovered {
				status = "error"
			}
			add(obs.SpanRecord{
				Name: ev.Event, Track: "job/lifecycle",
				Start: ev.At, Status: status, Err: ev.Detail,
			})
		}
	}
	return out
}
