// Package serve is polyprof's profiling-as-a-service daemon: an HTTP
// server that runs the full pipeline per request with per-request span
// trees and metrics, keeps a ring of recent request summaries, and
// exposes the process registry in both Prometheus and JSON form.
//
// Endpoints:
//
//	POST /v1/profile?workload=<name>   run the pipeline, return the report
//	POST /v1/jobs                      submit a durable async job (workload
//	                                   name or isa-JSON program body);
//	                                   ?epoch-events=N streams it on that
//	                                   epoch grid (checkpointed, resumable)
//	GET  /v1/jobs?state=<s>            list jobs, optionally by state, with
//	                                   ?limit/?offset pagination
//	GET  /v1/jobs/{id}                 one job, with its persisted report
//	GET  /v1/jobs/{id}?stream=1        live SSE: per-epoch provisional
//	                                   reports, then the terminal result
//	DELETE /v1/jobs/{id}               delete a terminal job (409 while
//	                                   queued/running); WAL-logged
//	POST /v1/leases                    claim a ready job (remote worker);
//	                                   the grant carries the job's latest
//	                                   committed epoch checkpoint
//	PUT  /v1/leases/{id}               heartbeat a lease (fencing token)
//	POST /v1/leases/{id}/checkpoint    commit a streaming epoch checkpoint
//	                                   under the fencing token
//	POST /v1/leases/{id}/result        report a leased attempt's outcome
//	GET  /v1/flight                    list incident bundles
//	GET  /v1/flight/{id}               one incident bundle, verbatim
//	DELETE /v1/flight/{id}             prune a triaged incident bundle
//	GET  /v1/requests                  recent request summaries (persisted
//	                                   across restarts when -data-dir set)
//	GET  /v1/workloads                 names the daemon can profile
//	GET  /healthz                      liveness + in-flight gauge
//	GET  /readyz                       readiness (503 until WAL replay +
//	                                   pool/reclaimer startup finish)
//	GET  /metrics                      process registry (Prometheus/JSON)
//	GET  /debug/vars                   process registry (always JSON)
//	GET  /debug/pprof/                 net/http/pprof
//
// With a data directory configured (-data-dir), the daemon also runs a
// durable job subsystem (internal/jobstore): submitted jobs are
// WAL-persisted before they are acknowledged, executed by a bounded
// worker pool with retry/backoff/quarantine, and survive kill -9 —
// completed results and request history are served from disk after a
// restart.
//
// Every profile request runs against its own enabled obs.Registry with
// a "request:<workload>" root span; the pipeline stages nest under the
// root via the obs.Scope threaded through core.Run.  On completion the
// request registry's counters, gauges, and histograms merge into the
// process registry, while the span tree stays with the request summary
// — concurrent requests never bleed into each other.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/faultinject"
	"polyprof/internal/feedback"
	"polyprof/internal/jobexec"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/workloads"
)

// handlerFault injects at the top of each profile request, inside the
// handler's recovery scope; its panics exercise the 500-JSON path.
var handlerFault = faultinject.Point("serve.handler")

// DefaultRequestTimeout bounds a profile request's wall clock when
// Options.RequestTimeout is zero.
const DefaultRequestTimeout = 60 * time.Second

// StatusClientClosedRequest is the (nginx-convention) status reported
// when the client disconnected before the pipeline finished.
const StatusClientClosedRequest = 499

// Options tunes the daemon.
type Options struct {
	// MaxInFlight bounds concurrently running profile requests; excess
	// requests are rejected with 429 + Retry-After.  Default 2 — the
	// pipeline is CPU-bound, so admission control beats queueing.
	MaxInFlight int
	// RingSize is how many finished request summaries /v1/requests
	// keeps (default 64).
	RingSize int
	// Registry is the process-wide registry request metrics merge into
	// and /metrics serves (default obs.Default, which the daemon
	// enables).
	Registry *obs.Registry
	// Logf receives one line per request (nil to disable).
	Logf func(format string, args ...any)
	// RequestTimeout bounds each profile request's wall clock (default
	// DefaultRequestTimeout; negative disables).  The request budget
	// also cancels when the client disconnects.
	RequestTimeout time.Duration
	// Limits are the per-request resource budgets (zero fields
	// unlimited).  Hard limits abort the request with a budget status;
	// degrading limits (shadow bytes, DDG edges) coarsen the DDG and
	// mark the response degraded.
	Limits budget.Limits
	// DataDir enables the durable job subsystem: jobs and request
	// history are WAL-persisted here and survive restarts.  Empty
	// disables /v1/jobs (503) and keeps history in the volatile ring.
	DataDir string
	// Workers bounds concurrent job executions (default 2).
	Workers int
	// MaxAttempts quarantines a job after this many started attempts
	// (default 3).
	MaxAttempts int
	// MaxProgramBytes caps a user-submitted program body (default
	// DefaultMaxProgramBytes).
	MaxProgramBytes int64
	// JobTTL garbage-collects terminal jobs this long after they
	// finish (WAL-logged deletions; zero keeps jobs forever).
	JobTTL time.Duration
	// ParallelDDG selects the sharded parallel dependence engine with
	// that many shard workers for every profile request and job; 0
	// keeps the sequential builder.  Reports are bit-for-bit identical
	// either way.
	ParallelDDG int
	// EpochEvents streams every job by default: attempts pause each
	// EpochEvents dynamic instructions to render a provisional report
	// (GET /v1/jobs/{id}?stream=1) and commit a WAL-fsynced resume
	// checkpoint.  Per-job ?epoch-events=N overrides (an explicit 0
	// opts out); 0 here leaves jobs buffered unless they opt in.
	// Reports are byte-identical either way.
	EpochEvents uint64
	// SlowJobThreshold arms a per-attempt watchdog: a job attempt still
	// running after this long freezes the flight recorder into a
	// "slow-job" bundle (once per job within the dedupe window).  Zero
	// defaults to half the request timeout; negative disables.
	SlowJobThreshold time.Duration
	// LeaseTTL is the default lease duration granted to remote workers
	// (clamped to [jobstore.MinLeaseTTL, jobstore.MaxLeaseTTL]; default
	// 30s).  Workers may request their own TTL per claim, also clamped.
	LeaseTTL time.Duration
	// DeferOpen makes New return before the job store replays its WAL;
	// the caller must invoke Open.  Until then the daemon answers
	// /healthz, /readyz (503), and /metrics but rejects work — the
	// load-balancer contract for a still-recovering coordinator.
	DeferOpen bool
}

// Server is the daemon state.
type Server struct {
	opts   Options
	reg    *obs.Registry
	sem    chan struct{}
	reqSeq atomic.Uint64

	// ready flips once Open has finished WAL replay and started the
	// pool/reclaimer.  It is the happens-before barrier for store/pool:
	// handlers must observe ready before touching either (the
	// middleware's not-ready 503 enforces this for every route that can
	// reach them).
	ready atomic.Bool

	// store/pool are non-nil when Options.DataDir is set (after Open).
	store *jobstore.Store
	pool  *jobstore.Pool

	// streams fans streaming jobs' per-epoch provisional reports out to
	// GET /v1/jobs/{id}?stream=1 subscribers.
	streams *streamHub

	mu   sync.Mutex
	ring []RequestSummary
}

// New creates a daemon.  With Options.DataDir set it opens (replaying)
// the durable job store and starts the worker pool, re-enqueueing jobs
// that were queued or running when the previous process died; with
// Options.DeferOpen it returns immediately and the caller runs Open —
// typically after the listener is up, so /readyz can answer 503 while
// replay proceeds.
func New(opts Options) (*Server, error) {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 64
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.SlowJobThreshold == 0 {
		if opts.RequestTimeout > 0 {
			opts.SlowJobThreshold = opts.RequestTimeout / 2
		} else {
			opts.SlowJobThreshold = DefaultRequestTimeout / 2
		}
	}
	opts.Registry.SetEnabled(true)
	s := &Server{
		opts:    opts,
		reg:     opts.Registry,
		sem:     make(chan struct{}, opts.MaxInFlight),
		streams: newStreamHub(),
	}
	if opts.DeferOpen {
		return s, nil
	}
	if err := s.Open(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open replays the WAL, starts the worker pool and lease reclaimer,
// and marks the daemon ready.  Idempotent; New calls it unless
// Options.DeferOpen.
func (s *Server) Open() error {
	if s.ready.Load() {
		return nil
	}
	if s.opts.DataDir != "" {
		// The flight recorder goes live before the store opens, so crash
		// recovery itself is ring history and recovered jobs can trigger
		// bundles.  A recorder failure degrades diagnostics, never
		// serving.
		if err := flight.Default.Enable(filepath.Join(s.opts.DataDir, "flightrec"), flight.Options{
			Registry: s.opts.Registry,
			Logf:     s.opts.Logf,
		}); err != nil {
			s.logf("polyprof: flight recorder disabled: %v", err)
		}
		store, recovered, err := jobstore.Open(s.opts.DataDir, jobstore.Options{
			Registry: s.opts.Registry,
			Logf:     s.opts.Logf,
		})
		if err != nil {
			return fmt.Errorf("serve: opening job store: %w", err)
		}
		s.store = store
		// Each job interrupted by the previous process's death gets a
		// bundle naming the stage it died in — the crash's black box,
		// written by the process that found the wreckage.
		for _, j := range recovered {
			if ev, ok := j.CrashRecovered(); ok {
				flight.Trigger("crash-recovery", flight.TriggerInfo{
					Trace: j.TraceID, Job: j.ID, Stage: j.InterruptedStage(),
					Detail: ev.Detail, Extra: j,
				})
			}
		}
		s.pool = jobstore.NewPool(store, s.runJob, jobstore.PoolOptions{
			Workers:         s.opts.Workers,
			MaxAttempts:     s.opts.MaxAttempts,
			TTL:             s.opts.JobTTL,
			DefaultLeaseTTL: s.opts.LeaseTTL,
			Registry:        s.opts.Registry,
			Logf:            s.opts.Logf,
		})
		s.pool.Start(recovered)
		if n := len(recovered); n > 0 {
			s.logf("polyprof: job store recovered %d pending job(s) from %s", n, s.opts.DataDir)
		}
	}
	s.ready.Store(true)
	return nil
}

// Close stops the worker pool (canceling in-flight attempts) and
// compacts + closes the job store.  Safe on a store-less server.
func (s *Server) Close() error {
	if s.pool != nil {
		s.pool.Stop()
	}
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// ProfileResponse is the body of a /v1/profile call.  Status is one of
// "ok", "timeout" (408), "canceled" (499), "budget"/"error" (422), or
// "panic" (500).
type ProfileResponse struct {
	RequestID string `json:"request_id"`
	Workload  string `json:"workload"`
	Status    string `json:"status"`
	Error     string `json:"error,omitempty"`
	// SpanID is the id of the request's root span within Spans, so a
	// 500 can be correlated with its trace.
	SpanID uint64 `json:"span_id,omitempty"`
	// Degraded is true when a resource budget coarsened the DDG;
	// Budget names the tripped budgets.  The report is still sound —
	// it may only contain MORE dependences than a full run.
	Degraded bool            `json:"degraded,omitempty"`
	Budget   []string        `json:"budget,omitempty"`
	WallNS   int64           `json:"wall_ns"`
	Ops      uint64          `json:"ops,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
	// Spans is the request's span tree: the "request:<name>" root plus
	// every pipeline stage, linked by id/parent.
	Spans []obs.SpanRecord `json:"spans"`
	// Metrics is the request-scoped registry snapshot (only this
	// request's counters; spans excluded — see Spans).
	Metrics *MetricsBody `json:"metrics,omitempty"`
}

// MetricsBody is the request-scoped metric section of a response.
type MetricsBody struct {
	Counters   []obs.NamedUint         `json:"counters,omitempty"`
	Gauges     []obs.NamedInt          `json:"gauges,omitempty"`
	Histograms []obs.HistogramSnapshot `json:"histograms,omitempty"`
}

// RequestSummary is one entry of the /v1/requests ring.
type RequestSummary struct {
	ID       string           `json:"id"`
	Workload string           `json:"workload"`
	Status   string           `json:"status"`
	Error    string           `json:"error,omitempty"`
	Degraded bool             `json:"degraded,omitempty"`
	Start    time.Time        `json:"start"`
	WallNS   int64            `json:"wall_ns"`
	Ops      uint64           `json:"ops,omitempty"`
	Spans    []obs.SpanRecord `json:"spans"`
}

// Handler returns the daemon's HTTP mux, wrapped in the request-ID /
// flight middleware: every response (including 4xx/5xx error paths)
// carries an X-Request-ID header, and 5xx responses freeze the flight
// recorder.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/profile", s.handleProfile)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobGet)
	mux.HandleFunc("/v1/leases", s.handleLeases)
	mux.HandleFunc("/v1/leases/", s.handleLease)
	mux.HandleFunc("/v1/flight", s.handleFlightList)
	mux.HandleFunc("/v1/flight/", s.handleFlightGet)
	mux.HandleFunc("/v1/requests", s.handleRequests)
	mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/vars", s.reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.middleware(mux)
}

// ctxKey keys middleware values on the request context.
type ctxKey int

const requestIDKey ctxKey = iota

// requestID returns the middleware-assigned request/trace ID ("" when
// the handler runs without the middleware, e.g. unit tests hitting a
// handler directly).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter records the status a handler wrote, so the middleware
// can observe 5xx outcomes after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// maxInboundRequestID bounds the client-chosen trace ID so a hostile
// header cannot bloat logs, traces, and flight bundles.
const maxInboundRequestID = 128

// middleware assigns every request its trace ID — the inbound
// X-Request-ID when the client sent a plausible one, a fresh "req-N"
// otherwise — echoes it on the response (error paths included, since
// the header is set before the handler runs), and turns any 5xx into a
// flight-recorder trigger carrying that ID.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.Header.Get("X-Request-ID")
		if id == "" || len(id) > maxInboundRequestID {
			id = fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		// Not ready (WAL replay / pool startup still running): only
		// liveness, readiness, and metrics answer.  The ready check also
		// orders this request after Open's store/pool writes, so no
		// handler ever observes a half-initialized daemon.
		if !s.ready.Load() {
			switch {
			case req.URL.Path == "/healthz" || req.URL.Path == "/readyz" ||
				req.URL.Path == "/metrics" || strings.HasPrefix(req.URL.Path, "/debug/"):
			default:
				w.Header().Set("Retry-After", "1")
				http.Error(w, "starting: job store replay in progress; poll /readyz", http.StatusServiceUnavailable)
				return
			}
		}
		sw := &statusWriter{ResponseWriter: w}
		req = req.WithContext(context.WithValue(req.Context(), requestIDKey, id))
		start := time.Now()
		// The deferred tail still observes the status when a handler
		// panic unwinds through here (recoverJSON may have aborted the
		// connection; sw.status is 0 then and no trigger fires).
		defer func() {
			if flight.Enabled() {
				flight.LogEvent(flight.Event{
					Kind: "request", Name: req.Method + " " + req.URL.Path,
					Trace: id, Detail: fmt.Sprintf("status=%d", sw.status),
					WallNS: int64(time.Since(start)),
				})
			}
			if sw.status >= 500 {
				flight.Trigger("serve-5xx", flight.TriggerInfo{
					Trace:  id,
					Detail: fmt.Sprintf("%s %s -> %d", req.Method, req.URL.Path, sw.status),
				})
			}
		}()
		next.ServeHTTP(sw, req)
	})
}

func (s *Server) handleProfile(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost && req.Method != http.MethodGet {
		// RFC 9110 §15.5.6: a 405 must name the allowed methods.
		w.Header().Set("Allow", "POST, GET")
		http.Error(w, "POST /v1/profile?workload=<name>", http.StatusMethodNotAllowed)
		return
	}
	name := req.URL.Query().Get("workload")
	if name == "" {
		http.Error(w, "missing workload parameter", http.StatusBadRequest)
		return
	}
	spec := workloads.ByName(name)
	if spec == nil {
		http.Error(w, fmt.Sprintf("unknown workload %q", name), http.StatusNotFound)
		return
	}

	// Admission control: non-blocking slot grab; a full daemon sheds
	// load instead of queueing CPU-bound work.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.reg.Add("serve.rejected", 1)
		// Jittered Retry-After so a burst of shed clients does not
		// return in lockstep and collide again.
		w.Header().Set("Retry-After", strconv.Itoa(1+rand.Intn(3)))
		http.Error(w, "too many profile requests in flight", http.StatusTooManyRequests)
		return
	}

	// The request context cancels the pipeline when the client
	// disconnects; the timeout turns a runaway workload into a 408
	// instead of a stuck slot.
	ctx := req.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}

	// The middleware assigned the trace ID; fall back to a fresh one
	// when the handler is exercised directly (unit tests).
	id := requestID(ctx)
	if id == "" {
		id = fmt.Sprintf("req-%d", s.reqSeq.Add(1))
	}
	wantTrace := req.URL.Query().Get("trace") == "1"
	resp := s.runProfile(ctx, id, *spec, req.URL.Query().Get("metrics") == "1", wantTrace)

	w.Header().Set("X-Request-ID", id)
	if wantTrace {
		// Chrome trace of this request's span tree instead of the JSON
		// report — curl straight into Perfetto.
		data, err := obs.ChromeTrace(resp.Spans)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(data)
		w.Write([]byte("\n"))
		return
	}
	writeJSON(w, httpStatus(resp.Status), resp)
}

// httpStatus maps a profile status to its HTTP code.
func httpStatus(status string) int {
	switch status {
	case "ok":
		return http.StatusOK
	case "timeout":
		return http.StatusRequestTimeout
	case "canceled":
		return StatusClientClosedRequest
	case "panic":
		return http.StatusInternalServerError
	default: // "budget", "error"
		return http.StatusUnprocessableEntity
	}
}

// runProfile executes the pipeline for one request under its own
// registry and budget and returns the response; the summary lands in
// the ring and the request metrics merge into the process registry.
func (s *Server) runProfile(ctx context.Context, id string, spec workloads.Spec, wantMetrics, wantTrace bool) *ProfileResponse {
	reqReg := obs.NewRegistry()
	reqReg.SetEnabled(true)
	root := reqReg.Scope().StartSpan("request:" + spec.Name)
	sc := reqReg.Scope().WithSpan(root)

	resp := &ProfileResponse{RequestID: id, Workload: spec.Name, Status: "ok", SpanID: root.ID()}
	start := time.Now()

	// Parallel runs carry the utilization sampler: its headline gauges
	// land in the request registry (merged into /metrics below), and a
	// ?trace=1 request additionally gets the per-actor state timelines
	// as Perfetto tracks.
	var smp *sampler.Sampler
	if s.opts.ParallelDDG > 0 {
		smp = sampler.New()
		smp.SetEnabled(true)
	}

	flight.LogEvent(flight.Event{Kind: "request", Name: "profile:" + spec.Name, Trace: id, Detail: "start"})
	bud := budget.New(ctx, s.opts.Limits)
	if err := s.runPipeline(bud, sc, root, spec, smp, resp); err != nil {
		resp.Error = err.Error()
		root.Fail(err)
		if resp.Status == "ok" { // not already "panic"
			resp.Status = classifyError(err)
		}
	}
	root.End()
	resp.WallNS = int64(time.Since(start))
	resp.Spans = reqReg.Spans()
	if smp != nil {
		// The sampler's diagnosis rides along in any later flight bundle,
		// and its headline lands in the ring.
		rep := smp.Report()
		if data, err := json.Marshal(rep); err == nil {
			flight.Default.SetDiagnosis(data)
		}
		flight.LogEvent(flight.Event{
			Kind: "sampler", Name: "parddg", Trace: id,
			Detail: fmt.Sprintf("serial_frac=%.2f dominant=%s", rep.SerialFrac, rep.Dominant),
			WallNS: rep.CriticalPathNS,
		})
	}
	if smp != nil && wantTrace {
		resp.Spans = append(resp.Spans, smp.TimelineSpans()...)
	}
	if wantMetrics {
		snap := reqReg.Snapshot()
		resp.Metrics = &MetricsBody{
			Counters: snap.Counters, Gauges: snap.Gauges, Histograms: snap.Histograms,
		}
	}

	// Fold the request registry into the process one (spans stay with
	// the request) and record the daemon's own serving metrics.  The
	// request registry is exactly this request's metric delta, so its
	// summary enters the flight ring before it dissolves into the
	// process totals.
	logMetricsDelta("profile:"+spec.Name, id, reqReg)
	s.reg.Merge(reqReg)
	s.reg.Add("serve.requests", 1)
	if resp.Status != "ok" {
		s.reg.Add("serve.requests.errors", 1)
	}
	switch resp.Status {
	case "timeout":
		s.reg.Add("serve.requests.timeouts", 1)
	case "canceled":
		s.reg.Add("serve.requests.canceled", 1)
	}
	if resp.Degraded {
		s.reg.Add("serve.requests.degraded", 1)
	}
	s.reg.Observe("serve.request.wall_ns", uint64(resp.WallNS))
	if resp.Status == "budget" || resp.Status == "timeout" {
		// A hard budget abort is an anomaly worth a black box: the ring
		// holds the stages and budget decisions leading up to it.
		flight.Trigger("budget-exhausted", flight.TriggerInfo{
			Trace:  id,
			Detail: fmt.Sprintf("workload %s: %s", spec.Name, resp.Error),
			Extra:  map[string]any{"status": resp.Status, "budget": resp.Budget, "wall_ns": resp.WallNS},
		})
	}
	flight.LogEvent(flight.Event{
		Kind: "request", Name: "profile:" + spec.Name, Trace: id,
		Detail: "status=" + resp.Status, WallNS: resp.WallNS,
	})

	summary := RequestSummary{
		ID: id, Workload: spec.Name, Status: resp.Status, Error: resp.Error,
		Degraded: resp.Degraded,
		Start:    start, WallNS: resp.WallNS, Ops: resp.Ops, Spans: resp.Spans,
	}
	s.mu.Lock()
	s.ring = append(s.ring, summary)
	if len(s.ring) > s.opts.RingSize {
		s.ring = s.ring[len(s.ring)-s.opts.RingSize:]
	}
	s.mu.Unlock()
	if s.store != nil {
		// Persist the summary (minus the span tree, which can be large
		// and is only useful with the live process) so /v1/requests
		// survives restarts.
		compact := summary
		compact.Spans = nil
		if data, err := json.Marshal(&compact); err == nil {
			if err := s.store.AppendHistory(data); err != nil {
				s.logf("polyprof: request history not persisted: %v", err)
			}
		}
	}

	s.logf("polyprof: %s workload=%s status=%s wall=%s ops=%d",
		id, spec.Name, resp.Status, time.Duration(resp.WallNS), resp.Ops)
	return resp
}

// runPipeline is the recovered body of one profile request: any panic
// here — the injected serve.handler fault, a hostile workload slipping
// past a stage's own recovery — becomes a "panic" response instead of
// killing the daemon.
func (s *Server) runPipeline(bud *budget.Budget, sc obs.Scope, root *obs.Span, spec workloads.Spec, smp *sampler.Sampler, resp *ProfileResponse) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.reg.Add("serve.panics", 1)
		resp.Status = "panic"
		if e, ok := r.(error); ok {
			err = fmt.Errorf("handler panic: %w", e)
		} else {
			err = fmt.Errorf("handler panic: %v", r)
		}
	}()
	if err := handlerFault.Hit(); err != nil {
		return err
	}
	prog := spec.Build()
	opts := core.DefaultRunOptions()
	opts.Obs = sc
	opts.Budget = bud
	opts.ParallelDDG = s.opts.ParallelDDG
	opts.Sampler = smp
	p, err := core.Run(prog, opts)
	if err != nil {
		return err
	}
	rep, err := feedback.AnalyzeChecked(p)
	if err != nil {
		return err
	}
	cm := feedback.DefaultCostModel()
	data, err := rep.JSON(&cm)
	if err != nil {
		return err
	}
	resp.Report = data
	resp.Ops = p.DDG.TotalOps
	if d := p.DDG.Degraded; d != nil {
		resp.Degraded = true
		resp.Budget = d.Budgets
	}
	root.AddEvents(p.DDG.TotalOps)
	return nil
}

// classifyError maps a pipeline error to a response status: budget
// aborts split into timeout/canceled/budget, anything else is a plain
// error.  The mapping is jobexec's, so sync requests and job attempts
// classify identically.
func classifyError(err error) string { return jobexec.Classify(err) }

func (s *Server) handleRequests(w http.ResponseWriter, req *http.Request) {
	limit := 0
	if v := req.URL.Query().Get("limit"); v != "" {
		limit, _ = strconv.Atoi(v)
	}
	var out []RequestSummary
	if s.store != nil {
		// Durable history: summaries persisted through the job store's
		// WAL, so the listing survives restarts (span trees are only
		// available for requests served by this process, via the ring).
		blobs := s.store.History()
		out = make([]RequestSummary, 0, len(blobs))
		for i := len(blobs) - 1; i >= 0; i-- { // newest first
			var rs RequestSummary
			if err := json.Unmarshal(blobs[i], &rs); err == nil {
				out = append(out, rs)
			}
		}
	} else {
		s.mu.Lock()
		out = make([]RequestSummary, 0, len(s.ring))
		for i := len(s.ring) - 1; i >= 0; i-- { // newest first
			out = append(out, s.ring[i])
		}
		s.mu.Unlock()
	}
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{"requests": out})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workloads": workloads.Names()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"in_flight": len(s.sem),
		"capacity":  cap(s.sem),
	})
}

// handleReadyz is the load-balancer signal, distinct from /healthz
// liveness: 503 until Open has finished WAL replay and started the
// pool/reclaimer, 200 after.  A restarting coordinator is alive long
// before it is ready; routing to it early would 503 real traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting",
			"reason": "job store replay / worker pool startup in progress",
		})
		return
	}
	body := map[string]any{"status": "ready", "durable": s.store != nil}
	if s.store != nil {
		body["leases"] = s.store.Leases()
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
}
