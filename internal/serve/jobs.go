package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"polyprof/internal/isa"
	"polyprof/internal/jobexec"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
	"polyprof/internal/progress"
	"polyprof/internal/workloads"
)

// DefaultMaxProgramBytes caps a user-submitted program body; well under
// jobstore.MaxWALRecord so the submit record always frames.
const DefaultMaxProgramBytes = 8 << 20

// responseTracker wraps a ResponseWriter and records whether the
// handler has started writing, so the panic recovery knows whether a
// structured error response is still possible.
type responseTracker struct {
	http.ResponseWriter
	started bool
}

func (t *responseTracker) WriteHeader(code int) {
	t.started = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *responseTracker) Write(b []byte) (int, error) {
	t.started = true
	return t.ResponseWriter.Write(b)
}

// recoverJSON keeps a panic in a store operation (e.g. an injected
// jobstore.wal.* fault in panic mode) from tearing the daemon down: the
// client gets a structured 500 and the daemon keeps serving.  If the
// response was already started, appending JSON would corrupt a 2xx
// body, so the connection is aborted instead — the client sees a broken
// transfer, never a bogus success.
func (s *Server) recoverJSON(w *responseTracker) {
	if r := recover(); r != nil {
		s.reg.Add("serve.panics", 1)
		if w.started {
			s.logf("polyprof: panic after response started: %v", r)
			panic(http.ErrAbortHandler)
		}
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"status": "panic",
			"error":  fmt.Sprint(r),
		})
	}
}

// handleJobs serves the /v1/jobs collection: POST submits, GET lists.
func (s *Server) handleJobs(rw http.ResponseWriter, req *http.Request) {
	w := &responseTracker{ResponseWriter: rw}
	defer s.recoverJSON(w)
	if s.store == nil {
		http.Error(w, "durable jobs are disabled; restart the daemon with -data-dir", http.StatusServiceUnavailable)
		return
	}
	switch req.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, req)
	case http.MethodGet:
		s.handleJobList(w, req)
	default:
		w.Header().Set("Allow", "POST, GET")
		http.Error(w, "POST submits a job, GET lists jobs", http.StatusMethodNotAllowed)
	}
}

// handleJobSubmit accepts either ?workload=<name> or a request body in
// the internal/isa JSON encoding.  Submission is intentionally lax for
// program bodies: any non-empty body is acknowledged and decoded by the
// worker, so a hostile or malformed program ends as a `failed` job with
// a structured terminal error rather than a lost 400 — the submission
// record is the audit trail.
func (s *Server) handleJobSubmit(w http.ResponseWriter, req *http.Request) {
	job := &jobstore.Job{}
	if name := req.URL.Query().Get("workload"); name != "" {
		if workloads.ByName(name) == nil {
			http.Error(w, fmt.Sprintf("unknown workload %q", name), http.StatusNotFound)
			return
		}
		job.Kind = jobstore.KindWorkload
		job.Workload = name
	} else {
		maxBytes := s.opts.MaxProgramBytes
		if maxBytes <= 0 {
			maxBytes = DefaultMaxProgramBytes
		}
		body, err := io.ReadAll(io.LimitReader(req.Body, maxBytes+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("reading program body: %v", err), http.StatusBadRequest)
			return
		}
		if len(body) == 0 {
			http.Error(w, "submit with ?workload=<name> or a program body in the isa JSON encoding", http.StatusBadRequest)
			return
		}
		if int64(len(body)) > maxBytes {
			http.Error(w, fmt.Sprintf("program body exceeds the %d-byte limit", maxBytes), http.StatusRequestEntityTooLarge)
			return
		}
		job.Kind = jobstore.KindProgram
		job.Program = body
	}
	// Streaming epoch grid: ?epoch-events=N pins the job's epoch length.
	// It is part of the job spec — every attempt, local or leased,
	// pauses on the same boundaries, so a resumed attempt lands exactly
	// on the grid its checkpoint was cut on.  Absent, the daemon default
	// applies; an explicit 0 opts the job out of streaming.
	job.EpochEvents = s.opts.EpochEvents
	if v := req.URL.Query().Get("epoch-events"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("invalid epoch-events %q: %v", v, err), http.StatusBadRequest)
			return
		}
		job.EpochEvents = n
	}
	// ?optimize=1 closes the PGO loop for this job: after analysis the
	// attempt applies the suggested schedules, re-measures them under
	// the cycle/cache model, and the report gains an "optimization"
	// section with verified measured speedups.
	job.Optimize = req.URL.Query().Get("optimize") == "1"
	// Content-addressed dedup: identical submissions (canonical program
	// + budgets) resolve to the cached report in O(1) instead of
	// re-profiling — the pipeline is deterministic, so the cached report
	// is bit-for-bit what a re-run would produce.  ?nocache=1 forces a
	// fresh run (benchmarking, cache-busting tests).
	if key := s.cacheKey(job); key != "" && req.URL.Query().Get("nocache") == "" {
		if hit := s.store.LookupCache(key); hit != nil {
			s.reg.Add("jobs.cache_hits", 1)
			// The hit job's lifecycle trace records that it answered a
			// duplicate submission — without this, ?trace=1 on the cached
			// job cannot explain where the extra reads came from.
			s.store.NoteCacheHit(hit.ID, fmt.Sprintf("answered duplicate submission (trace %s, key %s)",
				requestID(req.Context()), key[:12]))
			flight.LogEvent(flight.Event{
				Kind: "job", Name: "cache-hit", Trace: requestID(req.Context()),
				Detail: fmt.Sprintf("%s (%s) key %s", hit.ID, hit.Name(), key[:12]),
			})
			w.Header().Set("Location", "/v1/jobs/"+hit.ID)
			writeJSON(w, http.StatusOK, map[string]any{
				"cached": true,
				"job":    hit.Summary(),
				"report": hit.Result.Report,
			})
			return
		}
		job.CacheKey = key
	}
	// The middleware's request ID becomes the job's trace ID (the
	// client's own X-Request-ID when it sent one), correlating intake,
	// WAL records, attempts, and flight bundles end to end.
	job.TraceID = requestID(req.Context())
	if err := s.store.Submit(job); err != nil {
		// Not acknowledged: the WAL write failed, so the client must not
		// believe the job is durable.
		http.Error(w, fmt.Sprintf("job not persisted: %v", err), http.StatusInternalServerError)
		return
	}
	s.pool.Enqueue(job.ID, time.Time{})
	flight.LogEvent(flight.Event{
		Kind: "job", Name: "submit", Trace: job.TraceID,
		Detail: fmt.Sprintf("%s (%s)", job.ID, job.Name()),
	})
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Summary())
}

// cacheKey computes the job's content address: the canonical SHA-256
// of (kind, canonical program bytes, budget limits).  Program bodies
// are canonicalized through a decode/re-encode round trip so two
// submissions differing only in JSON whitespace or key order share a
// key; bodies that do not decode are not canonicalizable and return ""
// (never cached — they fail terminally anyway).  The daemon's budget
// limits are folded in because they shape the report (degradation).
func (s *Server) cacheKey(job *jobstore.Job) string {
	var prog []byte
	switch job.Kind {
	case jobstore.KindWorkload:
		prog = []byte("workload\x00" + job.Workload)
	case jobstore.KindProgram:
		p, err := isa.DecodeJSON(job.Program)
		if err != nil {
			return ""
		}
		canon, err := isa.EncodeJSON(p)
		if err != nil {
			return ""
		}
		prog = canon
	default:
		return ""
	}
	limits, err := json.Marshal(s.opts.Limits)
	if err != nil {
		return ""
	}
	h := sha256.New()
	h.Write([]byte(job.Kind))
	h.Write([]byte{0})
	h.Write(prog)
	h.Write([]byte{0})
	h.Write(limits)
	if job.EpochEvents > 0 {
		// The epoch grid shapes the report under degrading limits (a
		// streaming run folds-and-releases instead of degrading), so a
		// streamed job never answers a buffered submission or vice versa.
		// Buffered jobs keep the historical key.
		fmt.Fprintf(h, "\x00epoch=%d", job.EpochEvents)
	}
	if job.Optimize {
		// An optimized report embeds the transform engine's measurements;
		// it must never answer a plain profiling submission (or vice
		// versa).  Unoptimized jobs keep the historical key.
		fmt.Fprintf(h, "\x00optimize=1")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultJobListLimit caps GET /v1/jobs when the client sends no
// ?limit= — a store holding millions of terminal jobs must not build an
// unbounded response.  MaxJobListLimit bounds an explicit ?limit=.
const (
	DefaultJobListLimit = 100
	MaxJobListLimit     = 1000
)

func (s *Server) handleJobList(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	var state jobstore.State
	if v := q.Get("state"); v != "" {
		st, err := jobstore.ParseState(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		state = st
	}
	limit := DefaultJobListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("invalid limit %q: want a positive integer", v), http.StatusBadRequest)
			return
		}
		limit = min(n, MaxJobListLimit)
	}
	offset := 0
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("invalid offset %q: want a non-negative integer", v), http.StatusBadRequest)
			return
		}
		offset = n
	}
	page, total := s.store.ListPage(state, offset, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":   page,
		"total":  total,
		"offset": offset,
		"limit":  limit,
	})
}

// handleJobGet serves one job: GET /v1/jobs/{id} returns the full job
// including the persisted report once succeeded; DELETE /v1/jobs/{id}
// removes a terminal job (WAL-logged, survives restarts).  Deleting a
// queued or running job is a 409 — it would race the worker pool's
// claim; wait for a terminal state (or let the TTL sweeper collect it).
func (s *Server) handleJobGet(rw http.ResponseWriter, req *http.Request) {
	w := &responseTracker{ResponseWriter: rw}
	defer s.recoverJSON(w)
	if s.store == nil {
		http.Error(w, "durable jobs are disabled; restart the daemon with -data-dir", http.StatusServiceUnavailable)
		return
	}
	id := strings.TrimPrefix(req.URL.Path, "/v1/jobs/")
	switch req.Method {
	case http.MethodGet:
		job := s.store.Get(id)
		if job == nil {
			http.Error(w, fmt.Sprintf("unknown job %q", id), http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("stream") == "1" {
			// Live progress: SSE of per-epoch provisional reports until
			// the job reaches a terminal state (see stream.go).
			s.streamJob(w, req, job)
			return
		}
		switch req.URL.Query().Get("trace") {
		case "1":
			// Full job including the persisted lifecycle trace — durable,
			// so it answers "what happened to this job" after a restart.
			writeJSON(w, http.StatusOK, job)
		case "chrome":
			// The lifecycle as a Chrome/Perfetto trace: queue wait,
			// attempts, and pipeline stages on their own tracks.
			data, err := obs.ChromeTrace(lifecycleSpans(job))
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(data)
			w.Write([]byte("\n"))
		default:
			// The trace can be hundreds of events; elide it from the plain
			// view (opt back in with ?trace=1).
			job.Trace = nil
			writeJSON(w, http.StatusOK, job)
		}
	case http.MethodDelete:
		switch err := s.store.Delete(id); {
		case err == nil:
			s.reg.Add("serve.jobs.deleted", 1)
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, jobstore.ErrUnknownJob):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, jobstore.ErrJobActive):
			http.Error(w, err.Error(), http.StatusConflict)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "GET or DELETE /v1/jobs/<id>", http.StatusMethodNotAllowed)
	}
}

// runJob is the pool's Runner: one attempt of one job, executed by the
// shared attempt runner (internal/jobexec) under the daemon's budget
// limits with its own span tree and registry, like a synchronous
// /v1/profile request.  The returned Result is persisted on success; on
// error the pool classifies it (program materialization and
// deterministic budget exhaustion are terminal; wall-clock timeouts and
// shutdown cancellation retry).
func (s *Server) runJob(ctx context.Context, job *jobstore.Job, attempt int) (*jobstore.Result, error) {
	start := time.Now()

	// Live progress: the tracker is attached to the store for the
	// duration of the attempt, so GET /v1/jobs/{id} reports the running
	// stage and event counts.  Detach on every exit path — terminal
	// transitions also clear it, but a retried attempt must not leave a
	// stale tracker behind.
	tr := &progress.Tracker{}
	// Every stage transition is persisted into the job's lifecycle
	// trace (unsynced WAL record — survives kill -9, cheap) and mirrored
	// into the flight ring, so a crash or a bundle can name the stage.
	tr.OnStage(func(stage string, total uint64) {
		s.store.NoteStage(job.ID, stage)
		flight.LogEvent(flight.Event{
			Kind: "stage", Name: stage, Trace: job.TraceID, Detail: "job " + job.ID,
		})
	})
	s.store.AttachProgress(job.ID, tr)
	defer s.store.DetachProgress(job.ID)

	// Slow-job watchdog: an attempt outliving the threshold freezes the
	// recorder while the job is still stuck — the bundle shows what it
	// is doing, not what it did.
	if th := s.opts.SlowJobThreshold; th > 0 {
		slow := func(detail string) {
			flight.Trigger("slow-job", flight.TriggerInfo{
				Trace: job.TraceID, Job: job.ID,
				Detail: detail,
				Extra:  s.store.Get(job.ID),
			})
		}
		watchdog := time.AfterFunc(th, func() {
			slow(fmt.Sprintf("attempt %d of job %s (%s) still running after %s",
				attempt, job.ID, job.Name(), th))
		})
		defer func() {
			// Stop() == true means the timer never fired; if the attempt
			// still overran the threshold the anomaly must not be lost to
			// the cancellation race, so trigger synchronously.  Dedupe in
			// the recorder keeps one bundle per (reason, job) either way.
			if watchdog.Stop() && time.Since(start) >= th {
				slow(fmt.Sprintf("attempt %d of job %s (%s) exceeded threshold %s (wall %s)",
					attempt, job.ID, job.Name(), th, time.Since(start).Round(time.Microsecond)))
			}
		}()
	}

	flight.LogEvent(flight.Event{
		Kind: "job", Name: "attempt", Trace: job.TraceID,
		Detail: fmt.Sprintf("%s attempt %d", job.ID, attempt),
	})
	exOpts := jobexec.Options{
		Limits:      s.opts.Limits,
		Timeout:     s.opts.RequestTimeout,
		ParallelDDG: s.opts.ParallelDDG,
		Tracker:     tr,
		Optimize:    job.Optimize,
	}
	if job.EpochEvents > 0 {
		// Streaming attempt: checkpoints commit through the job store's
		// WAL (so a SIGKILL'd attempt resumes from the last committed
		// epoch), provisionals fan out to ?stream=1 subscribers, and a
		// resume is recorded in the job's lifecycle trace.
		exOpts.EpochEvents = job.EpochEvents
		exOpts.Checkpoints = storeCheckpoints{store: s.store, jobID: job.ID, attempt: attempt}
		exOpts.OnProvisional = func(p jobexec.Provisional) {
			s.reg.Add("serve.jobs.provisionals", 1)
			s.streams.publish(job.ID, p)
		}
		exOpts.OnResume = func(epoch, events uint64) {
			s.reg.Add("serve.jobs.resumes", 1)
			s.store.NoteResume(job.ID, attempt, epoch, events)
			flight.LogEvent(flight.Event{
				Kind: "job", Name: "checkpoint-resume", Trace: job.TraceID,
				Detail: fmt.Sprintf("%s attempt %d resumes from committed epoch %d (%d events)",
					job.ID, attempt, epoch, events),
			})
		}
	}
	res, reqReg, err := jobexec.Run(ctx, job, attempt, exOpts)
	if err == nil && job.EpochEvents > 0 {
		// The job is about to complete; drop its cached provisional (the
		// final report supersedes it, and terminal jobs answer ?stream=1
		// with a single done event).
		defer s.streams.clear(job.ID)
	}

	logMetricsDelta(fmt.Sprintf("job:%s#%d", job.Name(), attempt), job.TraceID, reqReg)
	s.reg.Merge(reqReg)
	s.reg.Add("serve.jobs.runs", 1)
	if err != nil {
		s.reg.Add("serve.jobs.errors", 1)
	}
	s.reg.Observe("serve.job.wall_ns", uint64(res.WallNS))
	if res.Status == "budget" || res.Status == "timeout" {
		flight.Trigger("budget-exhausted", flight.TriggerInfo{
			Trace: job.TraceID, Job: job.ID,
			Detail: fmt.Sprintf("job %s attempt %d: %s", job.ID, attempt, err),
			Extra:  map[string]any{"status": res.Status, "wall_ns": res.WallNS},
		})
	}
	flight.LogEvent(flight.Event{
		Kind: "job", Name: "finish", Trace: job.TraceID,
		Detail: fmt.Sprintf("%s attempt %d status=%s", job.ID, attempt, res.Status),
		WallNS: res.WallNS,
	})
	s.logf("polyprof: job %s attempt=%d name=%s status=%s wall=%s ops=%d",
		job.ID, attempt, job.Name(), res.Status, time.Duration(res.WallNS), res.Ops)
	return res, err
}
