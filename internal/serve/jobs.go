package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/feedback"
	"polyprof/internal/isa"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/progress"
	"polyprof/internal/workloads"
)

// DefaultMaxProgramBytes caps a user-submitted program body; well under
// jobstore.MaxWALRecord so the submit record always frames.
const DefaultMaxProgramBytes = 8 << 20

// responseTracker wraps a ResponseWriter and records whether the
// handler has started writing, so the panic recovery knows whether a
// structured error response is still possible.
type responseTracker struct {
	http.ResponseWriter
	started bool
}

func (t *responseTracker) WriteHeader(code int) {
	t.started = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *responseTracker) Write(b []byte) (int, error) {
	t.started = true
	return t.ResponseWriter.Write(b)
}

// recoverJSON keeps a panic in a store operation (e.g. an injected
// jobstore.wal.* fault in panic mode) from tearing the daemon down: the
// client gets a structured 500 and the daemon keeps serving.  If the
// response was already started, appending JSON would corrupt a 2xx
// body, so the connection is aborted instead — the client sees a broken
// transfer, never a bogus success.
func (s *Server) recoverJSON(w *responseTracker) {
	if r := recover(); r != nil {
		s.reg.Add("serve.panics", 1)
		if w.started {
			s.logf("polyprof: panic after response started: %v", r)
			panic(http.ErrAbortHandler)
		}
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"status": "panic",
			"error":  fmt.Sprint(r),
		})
	}
}

// handleJobs serves the /v1/jobs collection: POST submits, GET lists.
func (s *Server) handleJobs(rw http.ResponseWriter, req *http.Request) {
	w := &responseTracker{ResponseWriter: rw}
	defer s.recoverJSON(w)
	if s.store == nil {
		http.Error(w, "durable jobs are disabled; restart the daemon with -data-dir", http.StatusServiceUnavailable)
		return
	}
	switch req.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, req)
	case http.MethodGet:
		s.handleJobList(w, req)
	default:
		w.Header().Set("Allow", "POST, GET")
		http.Error(w, "POST submits a job, GET lists jobs", http.StatusMethodNotAllowed)
	}
}

// handleJobSubmit accepts either ?workload=<name> or a request body in
// the internal/isa JSON encoding.  Submission is intentionally lax for
// program bodies: any non-empty body is acknowledged and decoded by the
// worker, so a hostile or malformed program ends as a `failed` job with
// a structured terminal error rather than a lost 400 — the submission
// record is the audit trail.
func (s *Server) handleJobSubmit(w http.ResponseWriter, req *http.Request) {
	job := &jobstore.Job{}
	if name := req.URL.Query().Get("workload"); name != "" {
		if workloads.ByName(name) == nil {
			http.Error(w, fmt.Sprintf("unknown workload %q", name), http.StatusNotFound)
			return
		}
		job.Kind = jobstore.KindWorkload
		job.Workload = name
	} else {
		maxBytes := s.opts.MaxProgramBytes
		if maxBytes <= 0 {
			maxBytes = DefaultMaxProgramBytes
		}
		body, err := io.ReadAll(io.LimitReader(req.Body, maxBytes+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("reading program body: %v", err), http.StatusBadRequest)
			return
		}
		if len(body) == 0 {
			http.Error(w, "submit with ?workload=<name> or a program body in the isa JSON encoding", http.StatusBadRequest)
			return
		}
		if int64(len(body)) > maxBytes {
			http.Error(w, fmt.Sprintf("program body exceeds the %d-byte limit", maxBytes), http.StatusRequestEntityTooLarge)
			return
		}
		job.Kind = jobstore.KindProgram
		job.Program = body
	}
	// The middleware's request ID becomes the job's trace ID (the
	// client's own X-Request-ID when it sent one), correlating intake,
	// WAL records, attempts, and flight bundles end to end.
	job.TraceID = requestID(req.Context())
	if err := s.store.Submit(job); err != nil {
		// Not acknowledged: the WAL write failed, so the client must not
		// believe the job is durable.
		http.Error(w, fmt.Sprintf("job not persisted: %v", err), http.StatusInternalServerError)
		return
	}
	s.pool.Enqueue(job.ID, time.Time{})
	flight.LogEvent(flight.Event{
		Kind: "job", Name: "submit", Trace: job.TraceID,
		Detail: fmt.Sprintf("%s (%s)", job.ID, job.Name()),
	})
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Summary())
}

func (s *Server) handleJobList(w http.ResponseWriter, req *http.Request) {
	var state jobstore.State
	if v := req.URL.Query().Get("state"); v != "" {
		st, err := jobstore.ParseState(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		state = st
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.List(state)})
}

// handleJobGet serves one job: GET /v1/jobs/{id} returns the full job
// including the persisted report once succeeded; DELETE /v1/jobs/{id}
// removes a terminal job (WAL-logged, survives restarts).  Deleting a
// queued or running job is a 409 — it would race the worker pool's
// claim; wait for a terminal state (or let the TTL sweeper collect it).
func (s *Server) handleJobGet(rw http.ResponseWriter, req *http.Request) {
	w := &responseTracker{ResponseWriter: rw}
	defer s.recoverJSON(w)
	if s.store == nil {
		http.Error(w, "durable jobs are disabled; restart the daemon with -data-dir", http.StatusServiceUnavailable)
		return
	}
	id := strings.TrimPrefix(req.URL.Path, "/v1/jobs/")
	switch req.Method {
	case http.MethodGet:
		job := s.store.Get(id)
		if job == nil {
			http.Error(w, fmt.Sprintf("unknown job %q", id), http.StatusNotFound)
			return
		}
		switch req.URL.Query().Get("trace") {
		case "1":
			// Full job including the persisted lifecycle trace — durable,
			// so it answers "what happened to this job" after a restart.
			writeJSON(w, http.StatusOK, job)
		case "chrome":
			// The lifecycle as a Chrome/Perfetto trace: queue wait,
			// attempts, and pipeline stages on their own tracks.
			data, err := obs.ChromeTrace(lifecycleSpans(job))
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(data)
			w.Write([]byte("\n"))
		default:
			// The trace can be hundreds of events; elide it from the plain
			// view (opt back in with ?trace=1).
			job.Trace = nil
			writeJSON(w, http.StatusOK, job)
		}
	case http.MethodDelete:
		switch err := s.store.Delete(id); {
		case err == nil:
			s.reg.Add("serve.jobs.deleted", 1)
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, jobstore.ErrUnknownJob):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, jobstore.ErrJobActive):
			http.Error(w, err.Error(), http.StatusConflict)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "GET or DELETE /v1/jobs/<id>", http.StatusMethodNotAllowed)
	}
}

// jobProgram materializes the program a job profiles.  Errors here are
// terminal by construction (never ErrRetryable, never budget timeouts):
// an unknown workload, an undecodable body, or a structurally invalid
// program fails identically on every attempt.
func (s *Server) jobProgram(job *jobstore.Job) (*isa.Program, error) {
	switch job.Kind {
	case jobstore.KindWorkload:
		spec := workloads.ByName(job.Workload)
		if spec == nil {
			return nil, fmt.Errorf("unknown workload %q", job.Workload)
		}
		return spec.Build(), nil
	case jobstore.KindProgram:
		prog, err := isa.DecodeJSON(job.Program)
		if err != nil {
			return nil, err
		}
		// Validate eagerly for a precise error; the VM re-validates
		// before execution regardless.
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("program rejected: %w", err)
		}
		return prog, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q", job.Kind)
	}
}

// runJob is the pool's Runner: one attempt of one job, executed under
// the daemon's budget limits with its own span tree and registry, like
// a synchronous /v1/profile request.  The returned Result is persisted
// on success; on error the pool classifies it (jobProgram and
// deterministic budget exhaustion are terminal; wall-clock timeouts and
// shutdown cancellation retry).
func (s *Server) runJob(ctx context.Context, job *jobstore.Job, attempt int) (*jobstore.Result, error) {
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}

	reqReg := obs.NewRegistry()
	reqReg.SetEnabled(true)
	root := reqReg.Scope().StartSpan(fmt.Sprintf("job:%s#%d", job.Name(), attempt))
	sc := reqReg.Scope().WithSpan(root)
	res := &jobstore.Result{Status: "ok", SpanID: root.ID()}
	start := time.Now()

	// Live progress: the tracker is attached to the store for the
	// duration of the attempt, so GET /v1/jobs/{id} reports the running
	// stage and event counts.  Detach on every exit path — terminal
	// transitions also clear it, but a retried attempt must not leave a
	// stale tracker behind.
	tr := &progress.Tracker{}
	// Every stage transition is persisted into the job's lifecycle
	// trace (unsynced WAL record — survives kill -9, cheap) and mirrored
	// into the flight ring, so a crash or a bundle can name the stage.
	tr.OnStage(func(stage string, total uint64) {
		s.store.NoteStage(job.ID, stage)
		flight.LogEvent(flight.Event{
			Kind: "stage", Name: stage, Trace: job.TraceID, Detail: "job " + job.ID,
		})
	})
	s.store.AttachProgress(job.ID, tr)
	defer s.store.DetachProgress(job.ID)

	// Slow-job watchdog: an attempt outliving the threshold freezes the
	// recorder while the job is still stuck — the bundle shows what it
	// is doing, not what it did.
	if th := s.opts.SlowJobThreshold; th > 0 {
		slow := func(detail string) {
			flight.Trigger("slow-job", flight.TriggerInfo{
				Trace: job.TraceID, Job: job.ID,
				Detail: detail,
				Extra:  s.store.Get(job.ID),
			})
		}
		watchdog := time.AfterFunc(th, func() {
			slow(fmt.Sprintf("attempt %d of job %s (%s) still running after %s",
				attempt, job.ID, job.Name(), th))
		})
		defer func() {
			// Stop() == true means the timer never fired; if the attempt
			// still overran the threshold the anomaly must not be lost to
			// the cancellation race, so trigger synchronously.  Dedupe in
			// the recorder keeps one bundle per (reason, job) either way.
			if watchdog.Stop() && time.Since(start) >= th {
				slow(fmt.Sprintf("attempt %d of job %s (%s) exceeded threshold %s (wall %s)",
					attempt, job.ID, job.Name(), th, time.Since(start).Round(time.Microsecond)))
			}
		}()
	}

	flight.LogEvent(flight.Event{
		Kind: "job", Name: "attempt", Trace: job.TraceID,
		Detail: fmt.Sprintf("%s attempt %d", job.ID, attempt),
	})
	bud := budget.New(ctx, s.opts.Limits)
	err := func() error {
		prog, err := s.jobProgram(job)
		if err != nil {
			return err
		}
		opts := core.DefaultRunOptions()
		opts.Obs = sc
		opts.Budget = bud
		opts.ParallelDDG = s.opts.ParallelDDG
		opts.Progress = tr
		if s.opts.ParallelDDG > 0 {
			// Parallel jobs carry the utilization sampler; its headline
			// gauges merge into the process registry below and surface on
			// /metrics as the polyprof_ddg_* families.
			smp := sampler.New()
			smp.SetEnabled(true)
			opts.Sampler = smp
		}
		p, err := core.Run(prog, opts)
		if err != nil {
			return err
		}
		tr.StartStage("feedback", 0)
		rep, err := feedback.AnalyzeChecked(p)
		if err != nil {
			return err
		}
		cm := feedback.DefaultCostModel()
		data, err := rep.JSON(&cm)
		if err != nil {
			return err
		}
		res.Report = data
		res.Ops = p.DDG.TotalOps
		if d := p.DDG.Degraded; d != nil {
			res.Degraded = true
			res.Budget = d.Budgets
		}
		root.AddEvents(p.DDG.TotalOps)
		return nil
	}()
	if err != nil {
		root.Fail(err)
		res.Status = classifyError(err)
	}
	root.End()
	res.WallNS = int64(time.Since(start))

	logMetricsDelta(fmt.Sprintf("job:%s#%d", job.Name(), attempt), job.TraceID, reqReg)
	s.reg.Merge(reqReg)
	s.reg.Add("serve.jobs.runs", 1)
	if err != nil {
		s.reg.Add("serve.jobs.errors", 1)
	}
	s.reg.Observe("serve.job.wall_ns", uint64(res.WallNS))
	if res.Status == "budget" || res.Status == "timeout" {
		flight.Trigger("budget-exhausted", flight.TriggerInfo{
			Trace: job.TraceID, Job: job.ID,
			Detail: fmt.Sprintf("job %s attempt %d: %s", job.ID, attempt, err),
			Extra:  map[string]any{"status": res.Status, "wall_ns": res.WallNS},
		})
	}
	flight.LogEvent(flight.Event{
		Kind: "job", Name: "finish", Trace: job.TraceID,
		Detail: fmt.Sprintf("%s attempt %d status=%s", job.ID, attempt, res.Status),
		WallNS: res.WallNS,
	})
	s.logf("polyprof: job %s attempt=%d name=%s status=%s wall=%s ops=%d",
		job.ID, attempt, job.Name(), res.Status, time.Duration(res.WallNS), res.Ops)
	return res, err
}
