package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"polyprof/internal/budget"
	"polyprof/internal/faultinject"
	"polyprof/internal/jobstore"
	"polyprof/internal/workloads"
)

// chaosCheckAlive asserts the daemon still answers /healthz and then
// serves a clean profile — the core liveness property every injected
// fault must preserve.
func chaosCheckAlive(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after fault: /healthz = %d: %s", resp.StatusCode, body)
	}
	resp, body = postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean profile after fault = %d: %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil || pr.Status != "ok" {
		t.Fatalf("clean profile after fault: status %q err %v", pr.Status, err)
	}
}

// TestChaosEveryFaultPoint walks every registered fault point with
// every fatal injection mode: the request must fail with a structured
// JSON error (4xx/5xx, never a dropped connection) and the daemon must
// keep serving afterwards.
func TestChaosEveryFaultPoint(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	_, ts := newTestServer(t, Options{})

	points := faultinject.Names()
	if len(points) < 5 {
		t.Fatalf("expected at least 5 registered fault points, got %v", points)
	}
	for _, point := range points {
		if strings.HasPrefix(point, "jobstore.") {
			// The job-store persistence points never fire on the
			// synchronous /v1/profile path; their chaos suite (crash,
			// reopen, no-loss invariants) lives in internal/jobstore.
			continue
		}
		if strings.HasPrefix(point, "jobexec.") || strings.HasPrefix(point, "jobapi.") {
			// The attempt-runner and lease-protocol points fire on the
			// async job path, not on synchronous /v1/profile; their chaos
			// suites live with the lease tests and the multi-process
			// cluster suite (cmd/polyprof).
			continue
		}
		if strings.HasPrefix(point, "transform.") {
			// The schedule-application points fire only on the optimize
			// job path (?optimize=1), never on synchronous /v1/profile.
			// TestChaosMidOptimizePanic covers them.
			continue
		}
		if point == "fold.epoch.merge" {
			// Fires only while a streaming epoch boundary captures folder
			// state — never on a buffered /v1/profile run.
			// TestChaosStreamingEpochFaults covers it below.
			continue
		}
		if strings.HasPrefix(point, "parddg.") {
			// The parallel-engine points never fire on a sequential
			// daemon; TestChaosParallelEngineFaults walks them against a
			// -parallel-ddg server below.
			continue
		}
		for _, mode := range []string{"panic", "error", "budget"} {
			t.Run(point+"/"+mode, func(t *testing.T) {
				if err := faultinject.ArmString(fmt.Sprintf("%s=%s:chaos:1", point, mode)); err != nil {
					t.Fatal(err)
				}
				defer faultinject.DisarmAll()
				resp, body := postProfile(t, ts, "workload=example1")
				if resp.StatusCode < 400 {
					t.Fatalf("injected %s at %s: status %d, want >= 400: %s",
						mode, point, resp.StatusCode, body)
				}
				var pr ProfileResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					t.Fatalf("fault response is not JSON: %v: %s", err, body)
				}
				if pr.Status == "ok" || pr.Error == "" {
					t.Fatalf("fault response = status %q error %q", pr.Status, pr.Error)
				}
				chaosCheckAlive(t, ts)
			})
		}
	}
}

// TestChaosStreamingEpochFaults arms the streaming-mode fault points
// against a store-backed daemon running streaming jobs.
//
// jobexec.checkpoint is the kill-9-shaped fault: the attempt dies at
// the second epoch's checkpoint persist, after epoch 1 committed.  The
// failure must classify retryable, and the retried attempt must resume
// from the committed epoch — not event zero — and still produce a final
// report byte-identical to a fault-free buffered run.
//
// fold.epoch.merge fires inside the epoch state capture itself; there
// is no committed state to fall back to mid-capture, so the attempt
// fails structurally and the daemon keeps serving.
func TestChaosStreamingEpochFaults(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})

	runJob := func(t *testing.T, query string) *jobstore.Job {
		t.Helper()
		resp, body := postJob(t, ts, query, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %q = %d: %s", query, resp.StatusCode, body)
		}
		var sum jobstore.JobSummary
		if err := json.Unmarshal(body, &sum); err != nil {
			t.Fatal(err)
		}
		return waitJob(t, ts, sum.ID)
	}

	// Fault-free buffered reference for the byte-equality assertion.
	want := runJob(t, "workload=backprop")
	if want.State != jobstore.StateSucceeded {
		t.Fatalf("reference job = %s", want.State)
	}

	t.Run("jobexec.checkpoint/resume", func(t *testing.T) {
		if err := faultinject.ArmString("jobexec.checkpoint=error:chaos:2"); err != nil {
			t.Fatal(err)
		}
		defer faultinject.DisarmAll()
		j := runJob(t, "workload=backprop&epoch-events=2000&nocache=1")
		if j.State != jobstore.StateSucceeded {
			t.Fatalf("streaming job after checkpoint fault = %s: %+v", j.State, j.Error)
		}
		if j.Attempts < 2 {
			t.Fatalf("attempts = %d, want >= 2 (fault must have killed attempt 1)", j.Attempts)
		}
		// The plain GET elides the lifecycle trace; re-read with ?trace=1
		// for the resume assertion.
		resp, body := get(t, ts, "/v1/jobs/"+j.ID+"?trace=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET ?trace=1 = %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, j); err != nil {
			t.Fatal(err)
		}
		resumed := false
		for _, ev := range j.Trace {
			if ev.Event == jobstore.TraceResume {
				resumed = true
				if !strings.Contains(ev.Detail, "epoch 1") {
					t.Fatalf("resume event = %q, want resume from committed epoch 1", ev.Detail)
				}
			}
		}
		if !resumed {
			t.Fatalf("no %s event in trace: %+v", jobstore.TraceResume, j.Trace)
		}
		if string(j.Result.Report) != string(want.Result.Report) {
			t.Fatal("resumed streaming report differs from buffered reference")
		}
		chaosCheckAlive(t, ts)
	})

	t.Run("fold.epoch.merge/contained", func(t *testing.T) {
		if err := faultinject.ArmString("fold.epoch.merge=error:chaos:1"); err != nil {
			t.Fatal(err)
		}
		defer faultinject.DisarmAll()
		j := runJob(t, "workload=example1&epoch-events=20&nocache=1")
		if !j.State.Terminal() {
			t.Fatalf("job state = %s, want terminal", j.State)
		}
		if j.State == jobstore.StateFailed && (j.Error == nil || j.Error.Message == "") {
			t.Fatalf("failed without a structured error: %+v", j)
		}
		chaosCheckAlive(t, ts)

		// Clean streaming run after the contained fault still matches the
		// buffered reference byte for byte.
		clean := runJob(t, "workload=backprop&epoch-events=2000&nocache=1")
		if clean.State != jobstore.StateSucceeded {
			t.Fatalf("clean streaming job = %s: %+v", clean.State, clean.Error)
		}
		if string(clean.Result.Report) != string(want.Result.Report) {
			t.Fatal("clean streaming report differs from buffered reference")
		}
	})
}

// TestChaosHandlerPanic500: a panic in the handler body becomes a 500
// with an error and a span id in the body, bumps serve.panics, and the
// daemon survives.
func TestChaosHandlerPanic500(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	s, ts := newTestServer(t, Options{})
	if err := faultinject.ArmString("serve.handler=panic:boom:1"); err != nil {
		t.Fatal(err)
	}
	resp, body := postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Status != "panic" || pr.Error == "" || pr.SpanID == 0 {
		t.Fatalf("panic response = %+v", pr)
	}
	if got := s.reg.Counter("serve.panics").Value(); got != 1 {
		t.Fatalf("serve.panics = %d, want 1", got)
	}
	chaosCheckAlive(t, ts)
}

// TestChaosRequestTimeout408: an expired request budget maps to 408
// with status "timeout" and bumps the timeout counter.
func TestChaosRequestTimeout408(t *testing.T) {
	s, ts := newTestServer(t, Options{RequestTimeout: time.Nanosecond})
	resp, body := postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408: %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Status != "timeout" {
		t.Fatalf("status = %q, want timeout (%s)", pr.Status, pr.Error)
	}
	if got := s.reg.Counter("serve.requests.timeouts").Value(); got != 1 {
		t.Fatalf("serve.requests.timeouts = %d, want 1", got)
	}
	// Every request on this server times out by construction, so only
	// liveness — not a clean profile — can be checked here.
	if resp, body := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after timeout: %d: %s", resp.StatusCode, body)
	}
}

// TestChaosClientDisconnectCancels: a request whose context is already
// canceled (the client hung up) aborts with status "canceled", which
// the handler maps to 499.
func TestChaosClientDisconnectCancels(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := workloads.ByName("example1")
	resp := s.runProfile(ctx, "req-cancel", *spec, false, false)
	if resp.Status != "canceled" {
		t.Fatalf("status = %q (%s), want canceled", resp.Status, resp.Error)
	}
	if got := httpStatus(resp.Status); got != StatusClientClosedRequest {
		t.Fatalf("httpStatus(canceled) = %d, want %d", got, StatusClientClosedRequest)
	}
	if got := s.reg.Counter("serve.requests.canceled").Value(); got != 1 {
		t.Fatalf("serve.requests.canceled = %d, want 1", got)
	}
}

// TestChaosShadowBudgetDegrades200: a request under a tiny shadow
// budget still succeeds — the report is degraded, not denied.
func TestChaosShadowBudgetDegrades200(t *testing.T) {
	s, ts := newTestServer(t, Options{Limits: budget.Limits{MaxShadowBytes: 4096}})
	resp, body := postProfile(t, ts, "workload=nn")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200: %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Degraded {
		t.Fatal("response not marked degraded")
	}
	found := false
	for _, b := range pr.Budget {
		if b == budget.ResourceShadowBytes {
			found = true
		}
	}
	if !found {
		t.Fatalf("budget list = %v, want %s", pr.Budget, budget.ResourceShadowBytes)
	}
	// The embedded report carries the degradation section.
	var rep struct {
		Degraded    bool `json:"degraded"`
		Degradation *struct {
			Budgets []string `json:"budgets"`
		} `json:"degradation"`
	}
	if err := json.Unmarshal(pr.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.Degradation == nil || len(rep.Degradation.Budgets) == 0 {
		t.Fatalf("report degradation section = %+v", rep)
	}
	if got := s.reg.Counter("serve.requests.degraded").Value(); got != 1 {
		t.Fatalf("serve.requests.degraded = %d, want 1", got)
	}
}

// TestChaosParallelEngineFaults walks the parallel-engine fault points
// against a daemon tracking dependences on the sharded engine: every
// fatal injection must surface as a structured JSON error while the
// daemon keeps serving — no worker deadlock, no leaked batch barrier.
func TestChaosParallelEngineFaults(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	_, ts := newTestServer(t, Options{ParallelDDG: 2})
	for _, point := range []string{"parddg.batch.dispatch", "parddg.shard.insert", "parddg.merge"} {
		for _, mode := range []string{"panic", "error", "budget"} {
			t.Run(point+"/"+mode, func(t *testing.T) {
				if err := faultinject.ArmString(fmt.Sprintf("%s=%s:chaos:1", point, mode)); err != nil {
					t.Fatal(err)
				}
				defer faultinject.DisarmAll()
				resp, body := postProfile(t, ts, "workload=example1")
				if resp.StatusCode < 400 {
					t.Fatalf("injected %s at %s: status %d, want >= 400: %s",
						mode, point, resp.StatusCode, body)
				}
				var pr ProfileResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					t.Fatalf("fault response is not JSON: %v: %s", err, body)
				}
				if pr.Status == "ok" || pr.Error == "" {
					t.Fatalf("fault response = status %q error %q", pr.Status, pr.Error)
				}
				// chaosCheckAlive profiles sequentially; this daemon is
				// parallel, so the clean profile also re-exercises the
				// engine end to end after the contained fault.
				chaosCheckAlive(t, ts)
			})
		}
	}
}

// TestChaosInjectedShadowBudgetDegradesParallel: the parallel engine's
// shard-insert point under injected shadow exhaustion degrades exactly
// like the sequential engine — a 200 with the degradation section, not
// an error.
func TestChaosInjectedShadowBudgetDegradesParallel(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	_, ts := newTestServer(t, Options{ParallelDDG: 2})
	if err := faultinject.ArmString("parddg.shard.insert=budget:shadow-bytes:1"); err != nil {
		t.Fatal(err)
	}
	resp, body := postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want degraded 200: %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Status != "ok" || !pr.Degraded {
		t.Fatalf("response = status %q degraded %v", pr.Status, pr.Degraded)
	}
	chaosCheckAlive(t, ts)
}

// TestChaosInjectedShadowBudgetDegrades: injecting shadow exhaustion
// at the shadow-insert fault point behaves exactly like the organic
// trip — degraded 200, daemon alive.
func TestChaosInjectedShadowBudgetDegrades(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	_, ts := newTestServer(t, Options{})
	if err := faultinject.ArmString("ddg.shadow.insert=budget:shadow-bytes:1"); err != nil {
		t.Fatal(err)
	}
	resp, body := postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want degraded 200: %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Status != "ok" || !pr.Degraded {
		t.Fatalf("response = status %q degraded %v", pr.Status, pr.Degraded)
	}
	chaosCheckAlive(t, ts)
}
