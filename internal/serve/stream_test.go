package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"polyprof/internal/jobstore"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Event string
	Data  []byte
}

// readSSE consumes a text/event-stream body until EOF (the server ends
// the stream after the done event) and returns the events in order.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	var (
		out []sseEvent
		cur sseEvent
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Event != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return out
}

// TestJobStreamSSE is the live-progress acceptance check for streaming
// jobs: GET /v1/jobs/{id}?stream=1 on a running streaming job delivers
// monotone per-epoch provisional reports and ends with a done event
// whose report matches the persisted final one.
func TestJobStreamSSE(t *testing.T) {
	iters := 300_000
	epochEvents := 120_000
	if testing.Short() {
		iters, epochEvents = 100_000, 40_000
	}
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})
	resp, body := postJob(t, ts, fmt.Sprintf("epoch-events=%d", epochEvents), []byte(slowLoopProgram(iters)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + sum.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, sresp)
	if len(events) < 2 || events[0].Event != "job" || events[len(events)-1].Event != "done" {
		t.Fatalf("stream shape: %d events, first %q last %q",
			len(events), events[0].Event, events[len(events)-1].Event)
	}

	var lastEpoch uint64
	provisionals := 0
	for _, ev := range events[1 : len(events)-1] {
		if ev.Event != "provisional" {
			t.Fatalf("unexpected mid-stream event %q", ev.Event)
		}
		var p struct {
			Epoch  uint64          `json:"epoch"`
			Events uint64          `json:"events"`
			Report json.RawMessage `json:"report"`
		}
		if err := json.Unmarshal(ev.Data, &p); err != nil {
			t.Fatalf("provisional does not parse: %v: %s", err, ev.Data)
		}
		if p.Epoch <= lastEpoch {
			t.Fatalf("epochs not strictly increasing: %d after %d", p.Epoch, lastEpoch)
		}
		if want := p.Epoch * uint64(epochEvents); p.Events != want {
			t.Fatalf("epoch %d reports %d events, want %d", p.Epoch, p.Events, want)
		}
		if len(p.Report) == 0 {
			t.Fatalf("epoch %d provisional has no report", p.Epoch)
		}
		lastEpoch = p.Epoch
		provisionals++
	}
	if provisionals == 0 {
		t.Fatal("no provisional events observed — streaming job too fast or hub not wired")
	}

	var done struct {
		State  jobstore.State  `json:"state"`
		Status string          `json:"status"`
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(events[len(events)-1].Data, &done); err != nil {
		t.Fatal(err)
	}
	if done.State != jobstore.StateSucceeded || done.Status != "ok" {
		t.Fatalf("done = %+v", done)
	}
	final := waitJob(t, ts, sum.ID)
	if compactJSON(t, done.Report) != compactJSON(t, final.Result.Report) {
		t.Fatal("done event report differs from the persisted final report")
	}

	// A terminal job answers a late subscriber with job + done only.
	sresp, err = http.Get(ts.URL + "/v1/jobs/" + sum.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	events = readSSE(t, sresp)
	if len(events) != 2 || events[0].Event != "job" || events[1].Event != "done" {
		t.Fatalf("terminal-job stream = %+v", events)
	}
}

// TestJobStreamedReportMatchesBuffered: the same workload submitted
// buffered and streamed produces byte-identical persisted reports —
// the service-level face of the core equivalence guarantee.
func TestJobStreamedReportMatchesBuffered(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})

	runOne := func(query string) *jobstore.Job {
		resp, body := postJob(t, ts, query, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %q = %d: %s", query, resp.StatusCode, body)
		}
		var sum jobstore.JobSummary
		if err := json.Unmarshal(body, &sum); err != nil {
			t.Fatal(err)
		}
		j := waitJob(t, ts, sum.ID)
		if j.State != jobstore.StateSucceeded {
			t.Fatalf("job %q = %s: %+v", query, j.State, j.Error)
		}
		return j
	}
	buffered := runOne("workload=backprop")
	streamed := runOne("workload=backprop&epoch-events=2000")
	if buffered.ID == streamed.ID {
		t.Fatal("streamed submission hit the buffered cache entry — epoch grid not in the cache key")
	}
	if string(buffered.Result.Report) != string(streamed.Result.Report) {
		t.Fatal("streamed final report differs from buffered")
	}
	if streamed.EpochEvents != 2000 {
		t.Fatalf("job spec epoch_events = %d", streamed.EpochEvents)
	}
}

// TestJobListPagination: limit/offset over GET /v1/jobs with the
// default cap and the total of the filtered set.
func TestJobListPagination(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})
	var ids []string
	for i := 0; i < 5; i++ {
		resp, body := postJob(t, ts, "workload=example1&nocache=1", nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d: %s", resp.StatusCode, body)
		}
		var sum jobstore.JobSummary
		if err := json.Unmarshal(body, &sum); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sum.ID)
	}
	for _, id := range ids {
		waitJob(t, ts, id)
	}

	var list struct {
		Jobs   []jobstore.JobSummary `json:"jobs"`
		Total  int                   `json:"total"`
		Offset int                   `json:"offset"`
		Limit  int                   `json:"limit"`
	}
	resp, body := get(t, ts, "/v1/jobs?limit=2&offset=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 5 || list.Limit != 2 || list.Offset != 1 || len(list.Jobs) != 2 {
		t.Fatalf("page = total %d limit %d offset %d len %d", list.Total, list.Limit, list.Offset, len(list.Jobs))
	}
	// Newest first: offset 1 of 5 submissions is the 4th.
	if list.Jobs[0].ID != ids[3] || list.Jobs[1].ID != ids[2] {
		t.Fatalf("page ids = %s, %s; want %s, %s", list.Jobs[0].ID, list.Jobs[1].ID, ids[3], ids[2])
	}

	// Unspecified limit applies the default cap (not unbounded).
	resp, body = get(t, ts, "/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Limit != DefaultJobListLimit || list.Total != 5 || len(list.Jobs) != 5 {
		t.Fatalf("default page = limit %d total %d len %d", list.Limit, list.Total, len(list.Jobs))
	}

	// Malformed paging parameters are structured 400s.
	if resp, _ := get(t, ts, "/v1/jobs?limit=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=bogus = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/jobs?offset=-3"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("offset=-3 = %d, want 400", resp.StatusCode)
	}
}
