package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polyprof/internal/budget"
	"polyprof/internal/faultinject"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
)

// newFlightServer builds a test daemon with the durable subsystem (and
// therefore the flight recorder) enabled, returning the bundle dir.
// The global Default recorder is disabled again at cleanup so later
// tests in the package start from the quiescent state.
func newFlightServer(t *testing.T, opts Options) (*Server, *httptest.Server, string) {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	s, ts := newTestServer(t, opts)
	t.Cleanup(flight.Default.Disable)
	return s, ts, filepath.Join(opts.DataDir, "flightrec")
}

func countBundles(t *testing.T, dir string) int {
	t.Helper()
	infos, err := flight.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(infos)
}

// waitBundles polls until the bundle dir holds want bundles (triggers
// may fire from watchdog or worker goroutines).
func waitBundles(t *testing.T, dir string, want int) []flight.BundleInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		infos, err := flight.List(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) >= want {
			return infos
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("bundle dir %s never reached %d bundles", dir, want)
	return nil
}

// TestInboundRequestIDSeedsTrace: a client-chosen X-Request-ID is
// echoed on the response and becomes the job's trace ID, visible in
// the summary and threaded into the persisted lifecycle trace.
func TestInboundRequestIDSeedsTrace(t *testing.T) {
	_, ts, _ := newFlightServer(t, Options{})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?workload=example1", nil)
	req.Header.Set("X-Request-ID", "client-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-trace-7" {
		t.Fatalf("X-Request-ID = %q, want the inbound id echoed", got)
	}
	var sum jobstore.JobSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.TraceID != "client-trace-7" {
		t.Fatalf("job TraceID = %q, want client-trace-7", sum.TraceID)
	}

	j := waitJob(t, ts, sum.ID)
	if j.State != jobstore.StateSucceeded {
		t.Fatalf("job state = %s", j.State)
	}
	// Default view elides the trace; ?trace=1 returns it.
	if j.Trace != nil {
		t.Fatalf("plain GET leaked the trace: %d events", len(j.Trace))
	}
	resp2, body := get(t, ts, "/v1/jobs/"+sum.ID+"?trace=1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("?trace=1 = %d: %s", resp2.StatusCode, body)
	}
	var traced jobstore.Job
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatal(err)
	}
	if traced.TraceID != "client-trace-7" || len(traced.Trace) == 0 {
		t.Fatalf("traced job = id %q, %d events", traced.TraceID, len(traced.Trace))
	}
	seen := map[string]bool{}
	for _, ev := range traced.Trace {
		seen[ev.Event] = true
	}
	for _, want := range []string{
		jobstore.TraceIntake, jobstore.TraceWALAppend, jobstore.TraceQueueWait,
		jobstore.TraceLease, jobstore.TraceStage, jobstore.TraceComplete,
	} {
		if !seen[want] {
			t.Fatalf("lifecycle trace missing %q: %+v", want, traced.Trace)
		}
	}

	// ?trace=chrome renders the lifecycle as a Perfetto document with a
	// queue-wait track.
	resp3, body := get(t, ts, "/v1/jobs/"+sum.ID+"?trace=chrome")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("?trace=chrome = %d: %s", resp3.StatusCode, body)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	var sawQueue, sawStage bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "queue-wait" {
			sawQueue = true
		}
		if ev.Name == "pass2-ddg" {
			sawStage = true
		}
	}
	if !sawQueue || !sawStage {
		t.Fatalf("chrome trace missing queue-wait/stage tracks (queue=%v stage=%v)", sawQueue, sawStage)
	}
}

// TestOversizedInboundRequestIDIgnored: a hostile X-Request-ID is
// replaced with a generated one instead of being threaded through logs
// and bundles.
func TestOversizedInboundRequestIDIgnored(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", 500))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "req-") {
		t.Fatalf("X-Request-ID = %q, want a generated req-N", got)
	}
}

// TestFlightEndpointsDisabledWithoutDataDir: without a data dir there
// is no recorder; the API says so with 503 rather than 404.
func TestFlightEndpointsDisabledWithoutDataDir(t *testing.T) {
	flight.Default.Disable()
	_, ts := newTestServer(t, Options{})
	if resp, _ := get(t, ts, "/v1/flight"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/flight = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/flight/fr-x"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/flight/{id} = %d, want 503", resp.StatusCode)
	}
}

// TestServe5xxWritesBundleAndFlightAPI: a handler panic (500) freezes
// the recorder; the bundle is listable and readable over the API.
func TestServe5xxWritesBundleAndFlightAPI(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	_, ts, dir := newFlightServer(t, Options{})
	if err := faultinject.ArmString("serve.handler=panic:boom:1"); err != nil {
		t.Fatal(err)
	}
	resp, body := postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", resp.StatusCode, body)
	}
	infos := waitBundles(t, dir, 1)
	if infos[0].Reason != "serve-5xx" {
		t.Fatalf("bundle reason = %q, want serve-5xx", infos[0].Reason)
	}
	if infos[0].Trace == "" {
		t.Fatal("serve-5xx bundle without a trace id")
	}

	resp, body = get(t, ts, "/v1/flight")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/flight = %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Bundles []flight.BundleInfo `json:"bundles"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Bundles) != 1 || list.Bundles[0].ID != infos[0].ID {
		t.Fatalf("API list = %+v, want %s", list.Bundles, infos[0].ID)
	}

	resp, body = get(t, ts, "/v1/flight/"+infos[0].ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/flight/{id} = %d: %s", resp.StatusCode, body)
	}
	var b flight.Bundle
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatalf("bundle body does not parse: %v", err)
	}
	if b.Reason != "serve-5xx" || len(b.Events) == 0 || b.Goroutines == "" {
		t.Fatalf("bundle = reason %q, %d events, %d profile bytes",
			b.Reason, len(b.Events), len(b.Goroutines))
	}
	if resp, _ := get(t, ts, "/v1/flight/fr-does-not-exist"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown bundle = %d, want 404", resp.StatusCode)
	}

	// DELETE prunes the triaged bundle; a second delete is a 404.
	del := func(id string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/flight/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(infos[0].ID); code != http.StatusOK {
		t.Fatalf("DELETE /v1/flight/{id} = %d, want 200", code)
	}
	resp, body = get(t, ts, "/v1/flight")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/flight after delete = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Bundles) != 0 {
		t.Fatalf("bundles after delete = %+v, want none", list.Bundles)
	}
	if code := del(infos[0].ID); code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", code)
	}
	if code := del("../escape"); code != http.StatusNotFound {
		t.Fatalf("DELETE with traversal id = %d, want 404", code)
	}
}

// TestChaosFaultPointsOneBundleEach: every reachable armed fault point
// in panic mode yields exactly one flight bundle — panics contained in
// a stage trigger via RecoverStage, persistence panics via the 500
// path, parallel-engine panics via the engine's failure latch.
func TestChaosFaultPointsOneBundleEach(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	cases := []struct {
		point    string
		parallel int
		reason   string
		viaJob   bool
	}{
		{point: "vm.step", reason: "stage-panic"},
		{point: "ddg.shadow.insert", reason: "stage-panic"},
		{point: "fold.finish", reason: "stage-panic"},
		{point: "sched.build", reason: "stage-panic"},
		{point: "serve.handler", reason: "serve-5xx"},
		{point: "jobstore.wal.append", reason: "serve-5xx", viaJob: true},
		// A shard-goroutine panic is caught by the engine's fail latch
		// (parddg-failure); a merge panic unwinds the calling goroutine
		// and is caught by the stage recovery wrapper (stage-panic).
		{point: "parddg.shard.insert", parallel: 2, reason: "parddg-failure"},
		{point: "parddg.merge", parallel: 2, reason: "stage-panic"},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			_, ts, dir := newFlightServer(t, Options{ParallelDDG: tc.parallel})
			before := countBundles(t, dir)
			if err := faultinject.ArmString(fmt.Sprintf("%s=panic:chaos:1", tc.point)); err != nil {
				t.Fatal(err)
			}
			defer faultinject.DisarmAll()
			if tc.viaJob {
				resp, body := postJob(t, ts, "workload=example1", nil)
				if resp.StatusCode != http.StatusInternalServerError {
					t.Fatalf("faulted submit = %d, want 500: %s", resp.StatusCode, body)
				}
			} else {
				resp, _ := postProfile(t, ts, "workload=example1")
				if resp.StatusCode < 400 {
					t.Fatalf("faulted profile = %d, want an error", resp.StatusCode)
				}
			}
			infos := waitBundles(t, dir, before+1)
			// Exactly one: give any stray second trigger a moment, then
			// recount.
			time.Sleep(50 * time.Millisecond)
			if got := countBundles(t, dir); got != before+1 {
				all, _ := flight.List(dir)
				t.Fatalf("bundles = %d, want exactly %d: %+v", got, before+1, all)
			}
			if infos[0].Reason != tc.reason {
				t.Fatalf("bundle reason = %q, want %q", infos[0].Reason, tc.reason)
			}
		})
	}
}

// TestBudgetExhaustionWritesBundle: a deterministic hard-budget abort
// (422 "budget") freezes the recorder with the budget events in the
// ring.
func TestBudgetExhaustionWritesBundle(t *testing.T) {
	_, ts, dir := newFlightServer(t, Options{
		Limits: budget.Limits{MaxSteps: 10},
	})
	resp, body := postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", resp.StatusCode, body)
	}
	infos := waitBundles(t, dir, 1)
	if infos[0].Reason != "budget-exhausted" {
		t.Fatalf("bundle reason = %q, want budget-exhausted", infos[0].Reason)
	}
	b, err := flight.ReadBundle(dir, infos[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var sawBudget bool
	for _, ev := range b.Events {
		if ev.Kind == "budget" {
			sawBudget = true
		}
	}
	if !sawBudget {
		t.Fatalf("bundle ring has no budget event: %+v", b.Events)
	}
}

// TestSlowJobWatchdogWritesBundle: an attempt outliving the threshold
// triggers a slow-job bundle while the job still completes normally.
func TestSlowJobWatchdogWritesBundle(t *testing.T) {
	_, ts, dir := newFlightServer(t, Options{SlowJobThreshold: time.Nanosecond})
	resp, body := postJob(t, ts, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	j := waitJob(t, ts, sum.ID)
	if j.State != jobstore.StateSucceeded {
		t.Fatalf("job state = %s", j.State)
	}
	infos := waitBundles(t, dir, 1)
	var slow *flight.BundleInfo
	for i := range infos {
		if infos[i].Reason == "slow-job" {
			slow = &infos[i]
		}
	}
	if slow == nil {
		t.Fatalf("no slow-job bundle: %+v", infos)
	}
	if slow.Job != sum.ID {
		t.Fatalf("slow-job bundle names job %q, want %q", slow.Job, sum.ID)
	}
}
