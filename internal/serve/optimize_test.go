package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"polyprof/internal/faultinject"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs/flight"
	"polyprof/internal/transform"
)

// optimizedReport is the slice of the job report the optimize tests
// care about.
type optimizedReport struct {
	Program      string            `json:"program"`
	Optimization *transform.Report `json:"optimization"`
}

// TestJobsOptimize: a job submitted with ?optimize=1 runs the
// schedule-application engine after analysis and its report carries the
// "optimization" section with verified measured speedups; a plain job
// does not.
func TestJobsOptimize(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})

	resp, body := postJob(t, ts, "workload=backprop&optimize=1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	j := waitJob(t, ts, sum.ID)
	if j.State != jobstore.StateSucceeded || j.Result == nil {
		t.Fatalf("optimize job = state %s error %+v", j.State, j.Error)
	}
	var rep optimizedReport
	if err := json.Unmarshal(j.Result.Report, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	opt := rep.Optimization
	if opt == nil {
		t.Fatalf("optimize job report has no optimization section: %s", j.Result.Report)
	}
	if opt.Refused != nil {
		t.Fatalf("whole run refused: %s", opt.Refused)
	}
	if opt.BestSpeedup <= 1.0 {
		t.Errorf("backprop best measured speedup = %.3f, want > 1.0", opt.BestSpeedup)
	}
	for _, c := range opt.Candidates {
		for _, v := range c.Variants {
			if v.Applied && !v.Verified {
				t.Errorf("%s %s: applied but not verified", c.Nest, v.Kind)
			}
		}
	}

	// A plain job of the same workload must not carry the section.
	resp, body = postJob(t, ts, "workload=backprop", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plain submit = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	j = waitJob(t, ts, sum.ID)
	if j.State != jobstore.StateSucceeded {
		t.Fatalf("plain job = %s", j.State)
	}
	var plain optimizedReport
	if err := json.Unmarshal(j.Result.Report, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Optimization != nil {
		t.Fatalf("plain job report carries an optimization section")
	}
}

// TestOptimizeCacheKeyDistinct: the optimize flag is part of the
// content-addressed cache key, so an optimized and an unoptimized run
// of the same workload never answer each other's submissions — while
// each still answers its own duplicates.
func TestOptimizeCacheKeyDistinct(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})

	submit := func(query string) jobstore.JobSummary {
		t.Helper()
		resp, body := postJob(t, ts, query, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %q = %d, want 202 (no false cache hit): %s", query, resp.StatusCode, body)
		}
		var sum jobstore.JobSummary
		if err := json.Unmarshal(body, &sum); err != nil {
			t.Fatal(err)
		}
		waitJob(t, ts, sum.ID)
		return sum
	}
	hit := func(query string) jobstore.JobSummary {
		t.Helper()
		resp, body := postJob(t, ts, query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("duplicate %q = %d, want 200 cache hit: %s", query, resp.StatusCode, body)
		}
		var h struct {
			Cached bool                `json:"cached"`
			Job    jobstore.JobSummary `json:"job"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		if !h.Cached {
			t.Fatalf("duplicate %q not served from cache: %s", query, body)
		}
		return h.Job
	}

	plain := submit("workload=example1")
	optimized := submit("workload=example1&optimize=1")
	if plain.ID == optimized.ID {
		t.Fatalf("optimized submission answered by the plain job")
	}
	if h := hit("workload=example1"); h.ID != plain.ID {
		t.Fatalf("plain duplicate answered by %s, want %s", h.ID, plain.ID)
	}
	if h := hit("workload=example1&optimize=1"); h.ID != optimized.ID {
		t.Fatalf("optimized duplicate answered by %s, want %s", h.ID, optimized.ID)
	}
}

// TestChaosMidOptimizePanic: a panic injected inside the transform
// engine's apply step (the paper-machinery equivalent of a codegen bug)
// must be contained by the stage recovery: the attempt fails, a
// stage-panic flight bundle freezes, the retry succeeds, and the daemon
// keeps serving throughout.
func TestChaosMidOptimizePanic(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	_, ts, dir := newFlightServer(t, Options{})

	before := countBundles(t, dir)
	if err := faultinject.ArmString("transform.apply=panic:chaos:1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.DisarmAll()

	resp, body := postJob(t, ts, "workload=backprop&optimize=1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	j := waitJob(t, ts, sum.ID)
	// The panic is contained by the stage recovery and classified like
	// any deterministic pipeline failure: the job fails terminally (the
	// pipeline is deterministic, retrying cannot help) — but the daemon
	// survives and the panic is auditable in a flight bundle.
	if j.State != jobstore.StateFailed || j.Error == nil {
		t.Fatalf("job after mid-optimize panic = state %s error %+v, want failed", j.State, j.Error)
	}
	if !strings.Contains(j.Error.Message, "panic in transform") {
		t.Errorf("terminal error %q does not name the contained panic", j.Error.Message)
	}

	infos := waitBundles(t, dir, before+1)
	found := false
	for _, in := range infos {
		if in.Reason == "stage-panic" {
			found = true
			b, err := flight.ReadBundle(dir, in.ID)
			if err != nil {
				t.Fatal(err)
			}
			if b.Stage != "transform" {
				t.Errorf("bundle stage = %q, want transform", b.Stage)
			}
		}
	}
	if !found {
		t.Fatalf("no stage-panic bundle after mid-optimize panic: %+v", infos)
	}
	chaosCheckAlive(t, ts)
}

// TestChaosOptimizeVerifyFault: an error injected at the verification
// gate fails the attempt — a result whose oracle step did not run must
// never be reported — and the daemon keeps serving.
func TestChaosOptimizeVerifyFault(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	_, ts := newTestServer(t, Options{DataDir: t.TempDir(), MaxAttempts: 1})

	if err := faultinject.ArmString("transform.verify=error:chaos:1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.DisarmAll()

	resp, body := postJob(t, ts, "workload=backprop&optimize=1&nocache=1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	j := waitJob(t, ts, sum.ID)
	if j.State != jobstore.StateFailed || j.Error == nil {
		t.Fatalf("job with verify fault = state %s error %+v, want failed", j.State, j.Error)
	}
	if !strings.Contains(j.Error.Message, "transform") {
		t.Errorf("terminal error %q does not mention the transform stage", j.Error.Message)
	}
	chaosCheckAlive(t, ts)
}
