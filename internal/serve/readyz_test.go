package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"polyprof/internal/obs"
)

// TestReadyzGate: a DeferOpen server answers /healthz but holds
// everything else behind 503 until Open finishes WAL replay and
// starts the pool; /readyz flips to 200 exactly then.
func TestReadyzGate(t *testing.T) {
	s, err := New(Options{DataDir: t.TempDir(), Registry: obs.NewRegistry(), DeferOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while starting = %d, want 200 (liveness != readiness)", resp.StatusCode)
	}
	resp, body := get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while starting = %d: %s", resp.StatusCode, body)
	}
	var rz struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &rz); err != nil || rz.Status != "starting" {
		t.Fatalf("readyz body = %s (err %v)", body, err)
	}

	// Work is rejected with a Retry-After while replay is in flight.
	resp, _ = postJob(t, ts, "workload=example1", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job submit while starting = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("not-ready 503 missing Retry-After")
	}
	if resp, _ := postProfile(t, ts, "workload=example1"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("profile while starting = %d, want 503", resp.StatusCode)
	}

	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after open = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &rz); err != nil || rz.Status != "ready" {
		t.Fatalf("readyz body after open = %s (err %v)", body, err)
	}
	// Open is idempotent.
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}

	resp, _ = postJob(t, ts, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit after open = %d", resp.StatusCode)
	}
}

// TestReadyzImmediateWhenNotDeferred: the default construction path
// (no DeferOpen) comes up ready.
func TestReadyzImmediateWhenNotDeferred(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}
	// Stateless servers (no data dir) are ready too.
	_, ts2 := newTestServer(t, Options{})
	if resp, _ := get(t, ts2, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("stateless readyz = %d, want 200", resp.StatusCode)
	}
}
