package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"polyprof/internal/budget"
	"polyprof/internal/jobstore"
)

func postJob(t *testing.T, ts *httptest.Server, query string, body []byte) (*http.Response, []byte) {
	t.Helper()
	url := ts.URL + "/v1/jobs"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitJob polls GET /v1/jobs/{id} until the job is terminal.
func waitJob(t *testing.T, ts *httptest.Server, id string) *jobstore.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, ts, "/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d: %s", id, resp.StatusCode, body)
		}
		var j jobstore.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatalf("job does not parse: %v: %s", err, body)
		}
		if j.State.Terminal() {
			return &j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// TestJobsDisabledWithoutDataDir: no -data-dir, no durable jobs — the
// endpoints answer 503, not 404.
func TestJobsDisabledWithoutDataDir(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if resp, _ := postJob(t, ts, "workload=example1", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /v1/jobs without data dir = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/jobs/job-1"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/jobs/{id} without data dir = %d, want 503", resp.StatusCode)
	}
}

// TestJobsWorkloadLifecycle: submit a bundled workload, poll it to
// success, and read it back — including through list filters.
func TestJobsWorkloadLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})

	resp, body := postJob(t, ts, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.ID == "" || sum.State != jobstore.StateQueued {
		t.Fatalf("submit response = %+v", sum)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sum.ID {
		t.Fatalf("Location = %q", loc)
	}

	j := waitJob(t, ts, sum.ID)
	if j.State != jobstore.StateSucceeded || j.Result == nil || len(j.Result.Report) == 0 {
		t.Fatalf("job = state %s result %+v", j.State, j.Result)
	}
	if j.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", j.Attempts)
	}

	resp, body = get(t, ts, "/v1/jobs?state=succeeded")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Jobs []jobstore.JobSummary `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sum.ID {
		t.Fatalf("list(succeeded) = %+v", list.Jobs)
	}
	if resp, _ := get(t, ts, "/v1/jobs?state=exploded"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad state filter = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, "workload=no-such-workload", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload = %d, want 404", resp.StatusCode)
	}
}

// TestJobsUserProgram: a well-formed user-submitted program in the isa
// JSON encoding runs through the full pipeline to a succeeded job.
func TestJobsUserProgram(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})
	// A tiny two-iteration loop writing memory: enough for the pipeline
	// to produce a report.
	prog := `{
	 "name": "user-loop", "main": 0, "mem_words": 64,
	 "globals": {"a": {"base": 0, "size": 64}},
	 "funcs": [{"name": "main", "entry": 0, "blocks": [0, 1, 2], "num_args": 0, "num_regs": 8}],
	 "blocks": [
	  {"fn": 0, "name": "entry", "code": [
	    {"op": "consti", "dst": 0, "imm": 0},
	    {"op": "jmp", "then": 1}]},
	  {"fn": 0, "name": "loop", "code": [
	    {"op": "consti", "dst": 1, "imm": 1},
	    {"op": "store", "a": 0, "b": 0},
	    {"op": "add", "dst": 0, "a": 0, "b": 1},
	    {"op": "consti", "dst": 2, "imm": 8},
	    {"op": "cmplt", "dst": 3, "a": 0, "b": 2},
	    {"op": "br", "a": 3, "then": 1, "else": 2}]},
	  {"fn": 0, "name": "exit", "code": [{"op": "halt"}]}
	 ]
	}`
	resp, body := postJob(t, ts, "", []byte(prog))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit program = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Kind != jobstore.KindProgram || sum.Name != "user-loop" {
		t.Fatalf("summary = %+v", sum)
	}
	j := waitJob(t, ts, sum.ID)
	if j.State != jobstore.StateSucceeded || len(j.Result.Report) == 0 {
		t.Fatalf("user program job = state %s err %+v", j.State, j.Error)
	}
}

// TestJobsHostileSubmissions is the hostile-intake acceptance check:
// invalid encodings, runaway loops, and oversized memory all end as
// `failed` jobs with a structured terminal error — exactly one attempt,
// no retries — and the daemon keeps serving.
func TestJobsHostileSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Options{
		DataDir: t.TempDir(),
		// A deterministic step budget turns a runaway loop into a
		// terminal budget exhaustion instead of a retryable timeout.
		Limits: budget.Limits{MaxSteps: 100_000},
	})

	hostiles := []struct {
		name string
		body string
	}{
		{"not json at all", `this is not a program`},
		{"wrong structure", `{"funcs": "nope"}`},
		{"unknown opcode", `{"name":"x","funcs":[{"name":"main","blocks":[0],"num_regs":1}],
		  "blocks":[{"fn":0,"code":[{"op":"melt_cpu"}]}]}`},
		{"out of frame register", `{"name":"x","funcs":[{"name":"main","blocks":[0],"num_regs":1}],
		  "blocks":[{"fn":0,"code":[{"op":"consti","dst":99,"imm":1},{"op":"halt"}]}]}`},
		{"runaway loop", `{"name":"spin","main":0,"mem_words":8,
		  "funcs":[{"name":"main","entry":0,"blocks":[0],"num_args":0,"num_regs":2}],
		  "blocks":[{"fn":0,"name":"entry","code":[{"op":"jmp","then":0}]}]}`},
		{"oversized memory", `{"name":"huge","main":0,"mem_words":1099511627776,
		  "funcs":[{"name":"main","entry":0,"blocks":[0],"num_args":0,"num_regs":2}],
		  "blocks":[{"fn":0,"name":"entry","code":[{"op":"halt"}]}]}`},
	}
	for _, h := range hostiles {
		t.Run(h.name, func(t *testing.T) {
			resp, body := postJob(t, ts, "", []byte(h.body))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("hostile submit = %d: %s", resp.StatusCode, body)
			}
			var sum jobstore.JobSummary
			if err := json.Unmarshal(body, &sum); err != nil {
				t.Fatal(err)
			}
			j := waitJob(t, ts, sum.ID)
			if j.State != jobstore.StateFailed {
				t.Fatalf("hostile job ended %s, want failed", j.State)
			}
			if j.Error == nil || !j.Error.Terminal || j.Error.Message == "" {
				t.Fatalf("hostile job error = %+v, want structured terminal", j.Error)
			}
			if j.Attempts != 1 {
				t.Fatalf("hostile job retried: attempts = %d, want 1", j.Attempts)
			}
			// The daemon is unharmed: a clean synchronous profile works.
			resp, body = postProfile(t, ts, "workload=example1")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("daemon wedged after hostile job: %d: %s", resp.StatusCode, body)
			}
		})
	}
}

// TestJobsOversizedBody: a body past the limit is rejected with 413 at
// the door (it could not even be WAL-framed).
func TestJobsOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir(), MaxProgramBytes: 1024})
	resp, _ := postJob(t, ts, "", bytes.Repeat([]byte("x"), 2048))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body = %d, want 400", resp.StatusCode)
	}
}

// TestJobsSurviveRestart: a completed job's report and the request
// history are served from disk by a fresh server on the same data dir.
func TestJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{DataDir: dir})
	resp, body := postJob(t, ts1, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	first := waitJob(t, ts1, sum.ID)
	if first.State != jobstore.StateSucceeded {
		t.Fatalf("job = %s", first.State)
	}
	// One synchronous request for the history.
	if resp, body := postProfile(t, ts1, "workload=example2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("profile = %d: %s", resp.StatusCode, body)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Options{DataDir: dir})
	j := waitJob(t, ts2, sum.ID)
	if j.State != jobstore.StateSucceeded {
		t.Fatalf("job after restart = %s", j.State)
	}
	if !bytes.Equal(j.Result.Report, first.Result.Report) {
		t.Fatal("persisted report changed across restart")
	}
	if j.Attempts != first.Attempts {
		t.Fatalf("attempts changed across restart: %d -> %d (job re-ran?)", first.Attempts, j.Attempts)
	}
	resp, body = get(t, ts2, "/v1/requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("requests after restart = %d", resp.StatusCode)
	}
	var hist struct {
		Requests []RequestSummary `json:"requests"`
	}
	if err := json.Unmarshal(body, &hist); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range hist.Requests {
		if r.Workload == "example2" && r.Status == "ok" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pre-restart request missing from history: %+v", hist.Requests)
	}
}

// del issues DELETE against the test server.
func del(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestJobDelete: DELETE removes a terminal job (204, then 404 on GET),
// refuses active jobs with 409, answers 404 for unknown ids, and the
// deletion survives a restart.
func TestJobDelete(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{DataDir: dir})

	resp, body := postJob(t, ts1, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts1, sum.ID)

	// An always-queued job (submitted directly, never enqueued on the
	// pool) pins the 409 path without racing the workers.
	stuck := &jobstore.Job{Kind: jobstore.KindWorkload, Workload: "example2"}
	if err := s1.store.Submit(stuck); err != nil {
		t.Fatal(err)
	}
	if resp := del(t, ts1, "/v1/jobs/"+stuck.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE queued job = %d, want 409", resp.StatusCode)
	}
	if resp := del(t, ts1, "/v1/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d, want 404", resp.StatusCode)
	}
	if resp := del(t, ts1, "/v1/jobs/"+sum.ID); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE terminal job = %d, want 204", resp.StatusCode)
	}
	if resp, _ := get(t, ts1, "/v1/jobs/"+sum.ID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d, want 404", resp.StatusCode)
	}

	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Options{DataDir: dir})
	if resp, _ := get(t, ts2, "/v1/jobs/"+sum.ID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job resurrected after restart: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts2, "/v1/jobs/"+stuck.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("undeleted job lost after restart: %d", resp.StatusCode)
	}
}

// TestJobDeleteDisabledWithoutDataDir: DELETE on a store-less daemon is
// a 503 like the other job endpoints.
func TestJobDeleteDisabledWithoutDataDir(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if resp := del(t, ts, "/v1/jobs/job-1"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("DELETE without data dir = %d, want 503", resp.StatusCode)
	}
}

// TestJobTTLExpiry: with -job-ttl set, a terminal job that outlives the
// TTL is garbage-collected by the pool's sweeper (which ticks at least
// once a second).
func TestJobTTLExpiry(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir(), JobTTL: time.Second})
	resp, body := postJob(t, ts, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts, sum.ID)

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if resp, _ := get(t, ts, "/v1/jobs/"+sum.ID); resp.StatusCode == http.StatusNotFound {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("TTL sweeper never collected the aged-out job")
}

// TestProfileMethodNotAllowedHasAllow: RFC 9110 — the 405 names the
// allowed methods, POST first.
func TestProfileMethodNotAllowedHasAllow(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/profile?workload=example1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/profile = %d, want 405", resp.StatusCode)
	}
	allow := resp.Header.Get("Allow")
	if !strings.Contains(allow, http.MethodPost) {
		t.Fatalf("Allow = %q, want POST listed", allow)
	}
	// Same contract on the job endpoints.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Allow") == "" && resp.StatusCode == http.StatusMethodNotAllowed {
		t.Fatal("405 on /v1/jobs without Allow header")
	}
}

// TestRetryAfterJittered: the 429 Retry-After is a small positive
// number of seconds, not a constant — shed clients spread out.
func TestRetryAfterJittered(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxInFlight: 1})
	// Saturate the semaphore directly, then hit the handler.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	for i := 0; i < 8; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/profile?workload=example1", nil)
		s.handleProfile(rec, req)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("saturated request = %d, want 429", rec.Code)
		}
		ra := rec.Header().Get("Retry-After")
		n, err := strconv.Atoi(ra)
		if err != nil || n < 1 || n > 3 {
			t.Fatalf("Retry-After = %q, want integer in [1,3]", ra)
		}
	}
}
