package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"polyprof/internal/obs"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Registry == nil {
		r := obs.NewRegistry()
		opts.Registry = r
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postProfile(t *testing.T, ts *httptest.Server, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/profile?"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestProfileRequestSpanTree(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postProfile(t, ts, "workload=example1&metrics=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got == "" {
		t.Fatal("missing X-Request-ID header")
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("response does not parse: %v", err)
	}
	if pr.Status != "ok" || pr.Ops == 0 || len(pr.Report) == 0 {
		t.Fatalf("response = status %q ops %d report %d bytes", pr.Status, pr.Ops, len(pr.Report))
	}

	// The span tree: one request root, every stage a child of it.
	var root *obs.SpanRecord
	byName := map[string]obs.SpanRecord{}
	for i := range pr.Spans {
		sp := pr.Spans[i]
		byName[sp.Name] = sp
		if sp.Name == "request:example1" {
			root = &pr.Spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no request root span; got %v", names(pr.Spans))
	}
	for _, stage := range []string{"pass1-structure", "pass2-ddg", "fold-finish", "sched-build", "feedback-analyze"} {
		sp, ok := byName[stage]
		if !ok {
			t.Fatalf("missing stage span %q; got %v", stage, names(pr.Spans))
		}
		if sp.Parent != root.ID {
			t.Errorf("stage %q parent = %d, want request root %d", stage, sp.Parent, root.ID)
		}
		if sp.Status != "ok" {
			t.Errorf("stage %q status = %q", stage, sp.Status)
		}
	}
	if pr.Metrics == nil || len(pr.Metrics.Counters) == 0 {
		t.Fatal("metrics=1 returned no request-scoped counters")
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// counterMap extracts the request-scoped counters of a response.
func counterMap(t *testing.T, body []byte) map[string]uint64 {
	t.Helper()
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Metrics == nil {
		t.Fatal("response missing metrics section")
	}
	out := map[string]uint64{}
	for _, c := range pr.Metrics.Counters {
		out[c.Name] = c.Value
	}
	return out
}

// TestConcurrentRequestsIsolated is the acceptance test for per-request
// isolation: two different workloads profiled in parallel must report
// exactly the request-scoped counters a solo run reports — no bleed
// between the concurrent registries.  Run under -race this also
// validates the scope threading through the pipeline.
func TestConcurrentRequestsIsolated(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInFlight: 4})

	// Solo baselines (workload builds are deterministic).
	_, b1 := postProfile(t, ts, "workload=example1&metrics=1")
	_, b2 := postProfile(t, ts, "workload=example2&metrics=1")
	want1 := counterMap(t, b1)
	want2 := counterMap(t, b2)
	if want1["ddg.events.instr"] == 0 || want2["ddg.events.instr"] == 0 {
		t.Fatalf("baselines lack instruction counters: %v / %v", want1, want2)
	}
	if want1["ddg.events.instr"] == want2["ddg.events.instr"] {
		t.Fatal("baseline workloads indistinguishable; test cannot detect bleed")
	}

	const rounds = 3
	var wg sync.WaitGroup
	bodies := make([][]byte, 2*rounds)
	for i := 0; i < rounds; i++ {
		for j, wl := range []string{"example1", "example2"} {
			wg.Add(1)
			go func(slot int, wl string) {
				defer wg.Done()
				_, body := postProfile(t, ts, "workload="+wl+"&metrics=1")
				bodies[slot] = body
			}(2*i+j, wl)
		}
	}
	wg.Wait()

	for i, body := range bodies {
		want := want1
		if i%2 == 1 {
			want = want2
		}
		got := counterMap(t, body)
		for _, key := range []string{"ddg.events.instr", "vm.instructions", "fold.streams", "sched.deps"} {
			if got[key] != want[key] {
				t.Errorf("request %d counter %s = %d, want %d (per-request metrics bled)",
					i, key, got[key], want[key])
			}
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInFlight: 1})
	// Fill the only slot so the next request is shed.
	s.sem <- struct{}{}
	resp, body := postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-s.sem
	if got := s.reg.Counter("serve.rejected").Value(); got != 1 {
		t.Fatalf("serve.rejected = %d, want 1", got)
	}
	// Slot free again: the request succeeds.
	resp, body = postProfile(t, ts, "workload=example1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after drain = %d: %s", resp.StatusCode, body)
	}
}

func TestRequestRingAndErrors(t *testing.T) {
	s, ts := newTestServer(t, Options{RingSize: 2})
	resp, body := postProfile(t, ts, "workload=nosuch")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload status = %d: %s", resp.StatusCode, body)
	}
	// Error paths carry a request ID too: the middleware assigns one
	// before the handler runs.
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("404 response without X-Request-ID")
	}
	resp, _ = postProfile(t, ts, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing workload status = %d", resp.StatusCode)
	}
	for i := 0; i < 3; i++ {
		postProfile(t, ts, "workload=example1")
	}
	resp, body = get(t, ts, "/v1/requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/requests status = %d", resp.StatusCode)
	}
	var ring struct {
		Requests []RequestSummary `json:"requests"`
	}
	if err := json.Unmarshal(body, &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Requests) != 2 {
		t.Fatalf("ring holds %d summaries, want RingSize=2", len(ring.Requests))
	}
	// Newest first.  Every request (including the 404 and 400 above)
	// consumed an ID from the middleware, so the successful profiles are
	// req-3..req-5.
	if ring.Requests[0].ID != "req-5" || ring.Requests[1].ID != "req-4" {
		t.Fatalf("ring order = %s, %s", ring.Requests[0].ID, ring.Requests[1].ID)
	}
	if got := s.reg.Counter("serve.requests").Value(); got != 3 {
		t.Fatalf("serve.requests = %d, want 3", got)
	}
}

func TestTraceAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postProfile(t, ts, "workload=example1&trace=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace body does not parse: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "request:example1" {
			found = true
		}
	}
	if !found {
		t.Fatal("trace missing the request root complete event")
	}

	// Process /metrics: Prometheus by default, JSON on request; the
	// merged per-request counters must be visible.
	resp, body = get(t, ts, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(string(body), "polyprof_serve_requests") ||
		!strings.Contains(string(body), "polyprof_vm_instructions") {
		t.Fatalf("prometheus exposition missing merged counters:\n%s", body)
	}
	resp, body = get(t, ts, "/metrics?format=json")
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics?format=json does not parse: %v", err)
	}
	for _, h := range snap.Histograms {
		if h.Name == "serve.request.wall_ns" && h.P50 > 0 {
			return
		}
	}
	t.Fatalf("JSON metrics missing serve.request.wall_ns percentiles: %+v", snap.Histograms)
}

func TestWorkloadsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, body := get(t, ts, "/v1/workloads")
	var wl struct {
		Workloads []string `json:"workloads"`
	}
	if err := json.Unmarshal(body, &wl); err != nil {
		t.Fatal(err)
	}
	has := map[string]bool{}
	for _, name := range wl.Workloads {
		has[name] = true
	}
	for _, want := range []string{"backprop", "example1", "gemsfdtd"} {
		if !has[want] {
			t.Fatalf("workload list missing %q: %v", want, wl.Workloads)
		}
	}
	_, body = get(t, ts, "/healthz")
	var hz struct {
		Status   string `json:"status"`
		Capacity int    `json:"capacity"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Capacity != 2 {
		t.Fatalf("healthz = %+v", hz)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}
