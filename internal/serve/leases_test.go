package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"polyprof/internal/jobapi"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
)

// coordinatorServer builds a serve.Server with no local pool workers:
// jobs only make progress when something claims them over the lease
// API, exactly like a `polyprof serve -workers 0` coordinator.
func coordinatorServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	opts.Workers = -1
	return newTestServer(t, opts)
}

func leaseJSON(t *testing.T, ts *httptest.Server, method, path string, v any) (*http.Response, []byte) {
	t.Helper()
	var body io.Reader
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// compactJSON normalizes a report for comparison: writeJSON re-indents
// raw messages, so byte-for-byte equality only holds after compaction.
func compactJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("report does not compact: %v: %s", err, raw)
	}
	return buf.String()
}

func acquireLease(t *testing.T, ts *httptest.Server, worker string, ttl time.Duration) (*http.Response, *jobapi.Grant) {
	t.Helper()
	resp, body := leaseJSON(t, ts, http.MethodPost, "/v1/leases",
		jobapi.AcquireRequest{Worker: worker, TTLNS: int64(ttl)})
	if resp.StatusCode == http.StatusNoContent {
		return resp, nil
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/leases = %d: %s", resp.StatusCode, body)
	}
	var g jobapi.Grant
	if err := json.Unmarshal(body, &g); err != nil {
		t.Fatalf("grant does not parse: %v: %s", err, body)
	}
	return resp, &g
}

// TestLeaseHTTPLifecycle drives the full wire protocol by hand:
// claim, heartbeat, result — and reads the finished job back through
// the normal jobs API.
func TestLeaseHTTPLifecycle(t *testing.T) {
	_, ts := coordinatorServer(t, Options{})

	resp, _ := postJob(t, ts, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	resp, grant := acquireLease(t, ts, "w1", time.Second)
	if grant == nil {
		t.Fatalf("no grant: %d", resp.StatusCode)
	}
	if grant.Lease == nil || grant.Job == nil || grant.Lease.Token == 0 || grant.Lease.Attempt != 1 {
		t.Fatalf("grant = %+v", grant)
	}
	id := grant.Lease.JobID

	// The queue is now empty: a second claim gets 204, not a grant.
	if resp, g := acquireLease(t, ts, "w2", time.Second); g != nil {
		t.Fatalf("second claim got a grant (%d): %+v", resp.StatusCode, g)
	}

	resp, body := leaseJSON(t, ts, http.MethodPut, "/v1/leases/"+id,
		jobapi.HeartbeatRequest{Token: grant.Lease.Token, TTLNS: int64(2 * time.Second)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat = %d: %s", resp.StatusCode, body)
	}
	var renewed jobstore.Lease
	if err := json.Unmarshal(body, &renewed); err != nil {
		t.Fatal(err)
	}
	if !renewed.ExpiresAt.After(grant.Lease.ExpiresAt) {
		t.Fatalf("heartbeat did not extend lease: %v -> %v", grant.Lease.ExpiresAt, renewed.ExpiresAt)
	}

	resp, body = leaseJSON(t, ts, http.MethodPost, "/v1/leases/"+id+"/result", jobapi.ResultRequest{
		Token:  grant.Lease.Token,
		Result: &jobstore.Result{Status: "ok", Report: json.RawMessage(`{"remote":true}`)},
		TraceEvents: []jobstore.TraceEvent{
			{At: time.Now().UTC(), Event: jobstore.TraceStage, Stage: "vm", Attempt: 1, Detail: "worker w1"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result post = %d: %s", resp.StatusCode, body)
	}
	var rr jobapi.ResultResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.State != jobstore.StateSucceeded {
		t.Fatalf("result response state = %s", rr.State)
	}

	j := waitJob(t, ts, id)
	if j.State != jobstore.StateSucceeded || compactJSON(t, j.Result.Report) != `{"remote":true}` {
		t.Fatalf("job = %+v", j)
	}
	// The durable trace (opt-in via ?trace=1) carries the lease grant
	// and the worker's shipped stage event.
	resp, body = get(t, ts, "/v1/jobs/"+id+"?trace=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch = %d", resp.StatusCode)
	}
	var traced jobstore.Job
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatal(err)
	}
	var foundLease, foundRemoteStage bool
	for _, ev := range traced.Trace {
		if ev.Event == jobstore.TraceLease {
			foundLease = true
		}
		if ev.Event == jobstore.TraceStage && ev.Detail == "worker w1" {
			foundRemoteStage = true
		}
	}
	if !foundLease || !foundRemoteStage {
		t.Fatalf("trace missing lease/remote-stage events: %+v", traced.Trace)
	}
}

// TestLeaseHTTPZombieFenced: a worker that stops heartbeating loses
// its lease to the reclaimer; every call it makes afterwards is a
// structured 409, and the re-queued job is untouched by them.
func TestLeaseHTTPZombieFenced(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := coordinatorServer(t, Options{Registry: reg, LeaseTTL: jobstore.MinLeaseTTL})

	if resp, _ := postJob(t, ts, "workload=example1", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	_, grant := acquireLease(t, ts, "zombie", 0) // 0 => coordinator default (the tiny TTL)
	if grant == nil {
		t.Fatal("no grant")
	}
	id := grant.Lease.JobID

	// No heartbeats: the pool reclaimer must take the lease back and
	// re-queue the job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := s.store.Get(id)
		if j != nil && j.State == jobstore.StateQueued && j.Lease == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never reclaimed; job = %+v", j)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Zombie heartbeat: 409.
	resp, body := leaseJSON(t, ts, http.MethodPut, "/v1/leases/"+id,
		jobapi.HeartbeatRequest{Token: grant.Lease.Token, TTLNS: int64(time.Second)})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("zombie heartbeat = %d: %s", resp.StatusCode, body)
	}
	// Zombie result post: 409, job not completed by it.
	resp, body = leaseJSON(t, ts, http.MethodPost, "/v1/leases/"+id+"/result", jobapi.ResultRequest{
		Token:  grant.Lease.Token,
		Result: &jobstore.Result{Status: "ok", Report: json.RawMessage(`{"zombie":true}`)},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("zombie result = %d: %s", resp.StatusCode, body)
	}
	if j := s.store.Get(id); j.State != jobstore.StateQueued || j.Result != nil {
		t.Fatalf("zombie post mutated job: %+v", j)
	}
	if n := reg.Counter("jobs.leases.reclaimed").Value(); n == 0 {
		t.Fatal("jobs.leases.reclaimed not bumped")
	}

	// A fresh worker claims the re-queued job at attempt 2 and
	// completes it for real.
	_, fresh := acquireLease(t, ts, "w2", time.Second)
	if fresh == nil {
		t.Fatal("re-queued job not claimable")
	}
	if fresh.Lease.Attempt != 2 || fresh.Lease.Token <= grant.Lease.Token {
		t.Fatalf("fresh lease = %+v after zombie token %d", fresh.Lease, grant.Lease.Token)
	}
	resp, body = leaseJSON(t, ts, http.MethodPost, "/v1/leases/"+id+"/result", jobapi.ResultRequest{
		Token:  fresh.Lease.Token,
		Result: &jobstore.Result{Status: "ok", Report: json.RawMessage(`{"real":true}`)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh result = %d: %s", resp.StatusCode, body)
	}
	if j := s.store.Get(id); j.State != jobstore.StateSucceeded || string(j.Result.Report) != `{"real":true}` {
		t.Fatalf("job after fresh completion = %+v", j)
	}
}

// TestLeaseHTTPFailureRequeues: a worker-reported retryable failure
// re-queues the job with backoff; a terminal one fails it.
func TestLeaseHTTPFailureRequeues(t *testing.T) {
	s, ts := coordinatorServer(t, Options{})
	if resp, _ := postJob(t, ts, "workload=example1", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	_, grant := acquireLease(t, ts, "w1", time.Second)
	if grant == nil {
		t.Fatal("no grant")
	}
	id := grant.Lease.JobID

	resp, body := leaseJSON(t, ts, http.MethodPost, "/v1/leases/"+id+"/result", jobapi.ResultRequest{
		Token: grant.Lease.Token,
		Error: &jobstore.JobError{Message: "transient blip", Attempt: 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failure post = %d: %s", resp.StatusCode, body)
	}
	var rr jobapi.ResultResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.State != jobstore.StateQueued {
		t.Fatalf("retryable failure state = %s, want queued", rr.State)
	}
	if j := s.store.Get(id); j.State != jobstore.StateQueued || j.Error == nil {
		t.Fatalf("job after retryable failure = %+v", j)
	}

	// Claim again (backoff gates via NextRunAt; poll until claimable).
	var second *jobapi.Grant
	deadline := time.Now().Add(30 * time.Second)
	for second == nil && time.Now().Before(deadline) {
		_, second = acquireLease(t, ts, "w1", time.Second)
		if second == nil {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if second == nil {
		t.Fatal("job never became claimable after backoff")
	}
	resp, body = leaseJSON(t, ts, http.MethodPost, "/v1/leases/"+id+"/result", jobapi.ResultRequest{
		Token: second.Lease.Token,
		Error: &jobstore.JobError{Message: "bad program", Terminal: true, Attempt: 2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("terminal failure post = %d: %s", resp.StatusCode, body)
	}
	if j := s.store.Get(id); j.State != jobstore.StateFailed || !j.Error.Terminal {
		t.Fatalf("job after terminal failure = %+v", j)
	}
}

// TestLeaseHTTPValidation pins the edge responses: method matrix,
// unknown jobs, malformed and oversized bodies, exactly-one-of result
// payloads.
func TestLeaseHTTPValidation(t *testing.T) {
	_, ts := coordinatorServer(t, Options{})

	if resp, _ := get(t, ts, "/v1/leases"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/leases = %d, want 405", resp.StatusCode)
	}
	resp, _ := leaseJSON(t, ts, http.MethodPost, "/v1/leases/job-1", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/leases/{id} (no sub) = %d, want 405", resp.StatusCode)
	}
	resp, _ = leaseJSON(t, ts, http.MethodPut, "/v1/leases/job-999",
		jobapi.HeartbeatRequest{Token: 1, TTLNS: int64(time.Second)})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("heartbeat unknown job = %d, want 410", resp.StatusCode)
	}
	resp, _ = leaseJSON(t, ts, http.MethodPost, "/v1/leases/job-999/result",
		jobapi.ResultRequest{Token: 1, Result: &jobstore.Result{Status: "ok"}})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("result unknown job = %d, want 410", resp.StatusCode)
	}

	// Malformed JSON is a structured 400, not a panic or a 500.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/leases", strings.NewReader("{not json"))
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed acquire = %d, want 400", raw.StatusCode)
	}

	// Oversized control body: 413.
	big := bytes.Repeat([]byte("a"), maxLeaseControlBody+1)
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/leases/job-1", bytes.NewReader(big))
	raw, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized heartbeat = %d, want 413", raw.StatusCode)
	}

	// Result payload must carry exactly one of result/error.
	if resp, _ := postJob(t, ts, "workload=example1", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	_, grant := acquireLease(t, ts, "w1", time.Second)
	if grant == nil {
		t.Fatal("no grant")
	}
	id := grant.Lease.JobID
	resp, body := leaseJSON(t, ts, http.MethodPost, "/v1/leases/"+id+"/result",
		jobapi.ResultRequest{Token: grant.Lease.Token})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("result with neither payload = %d: %s", resp.StatusCode, body)
	}
	resp, body = leaseJSON(t, ts, http.MethodPost, "/v1/leases/"+id+"/result", jobapi.ResultRequest{
		Token:  grant.Lease.Token,
		Result: &jobstore.Result{Status: "ok"},
		Error:  &jobstore.JobError{Message: "both"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("result with both payloads = %d: %s", resp.StatusCode, body)
	}
	// The rejected posts must not have consumed the lease.
	resp, _ = leaseJSON(t, ts, http.MethodPost, "/v1/leases/"+id+"/result", jobapi.ResultRequest{
		Token:  grant.Lease.Token,
		Result: &jobstore.Result{Status: "ok"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid result after rejected ones = %d", resp.StatusCode)
	}
}

// FuzzLeaseAPI throws hostile bodies at every lease endpoint and
// demands the server keep answering structured sub-500 responses.
func FuzzLeaseAPI(f *testing.F) {
	opts := Options{DataDir: f.TempDir(), Workers: -1, Registry: obs.NewRegistry()}
	s, err := New(opts)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(ts.Close)

	// Keep one real job around so ids sometimes resolve.
	resp, err := http.Post(ts.URL+"/v1/jobs?workload=example1", "", nil)
	if err != nil {
		f.Fatal(err)
	}
	resp.Body.Close()

	f.Add("/v1/leases", "POST", `{"worker":"w","ttl_ns":1000000000}`)
	f.Add("/v1/leases/job-1", "PUT", `{"token":1,"ttl_ns":-5}`)
	f.Add("/v1/leases/job-1/result", "POST", `{"token":0,"result":{"status":"ok"}}`)
	f.Add("/v1/leases/job-1/result", "POST", `{"token":18446744073709551615,"error":{"message":"x"}}`)
	f.Add("/v1/leases/../../etc", "PUT", "")
	f.Add("/v1/leases/job-1", "PUT", `{"token":`)

	f.Fuzz(func(t *testing.T, path, method, body string) {
		if !strings.HasPrefix(path, "/v1/leases") || strings.ContainsAny(path, " \t\r\n#?%") {
			t.Skip()
		}
		switch method {
		case http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete:
		default:
			t.Skip()
		}
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Skip()
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: transport error: %v", method, path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("%s %s with %q = %d, want sub-500", method, path, body, resp.StatusCode)
		}
	})
}
