package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
)

// TestJobsCacheHit: resubmitting an identical workload after it
// succeeded returns the cached report in O(1) — 200 with cached:true,
// no new job, counter bumped.
func TestJobsCacheHit(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Options{DataDir: t.TempDir(), Registry: reg})

	resp, body := postJob(t, ts, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, body)
	}
	var first jobstore.JobSummary
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, ts, first.ID)
	if done.State != jobstore.StateSucceeded {
		t.Fatalf("first job = %s", done.State)
	}

	resp, body = postJob(t, ts, "workload=example1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200: %s", resp.StatusCode, body)
	}
	var hit struct {
		Cached bool                `json:"cached"`
		Job    jobstore.JobSummary `json:"job"`
		Report json.RawMessage     `json:"report"`
	}
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Job.ID != first.ID || len(hit.Report) == 0 {
		t.Fatalf("cache response = %+v", hit)
	}
	if compactJSON(t, hit.Report) != compactJSON(t, done.Result.Report) {
		t.Fatal("cached report differs from the original run")
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+first.ID {
		t.Fatalf("cache hit Location = %q", loc)
	}
	if n := reg.Counter("jobs.cache_hits").Value(); n != 1 {
		t.Fatalf("jobs.cache_hits = %d", n)
	}

	// The hit lands in the answering job's lifecycle trace, so ?trace=1
	// explains why the job served more reads than it has attempts.
	resp, body = get(t, ts, "/v1/jobs/"+first.ID+"?trace=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET ?trace=1 = %d: %s", resp.StatusCode, body)
	}
	var traced jobstore.Job
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatal(err)
	}
	sawHit := false
	for _, ev := range traced.Trace {
		sawHit = sawHit || ev.Event == jobstore.TraceCacheHit
	}
	if !sawHit {
		t.Fatalf("no %s event in trace after duplicate submit: %+v", jobstore.TraceCacheHit, traced.Trace)
	}

	// nocache=1 opts out: a fresh job is enqueued.
	resp, body = postJob(t, ts, "workload=example1&nocache=1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("nocache submit = %d: %s", resp.StatusCode, body)
	}
	var fresh jobstore.JobSummary
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.ID == first.ID {
		t.Fatal("nocache submit reused the cached job")
	}
	waitJob(t, ts, fresh.ID)

	// A different workload must not hit the cache.
	resp, _ = postJob(t, ts, "workload=example2", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("different workload = %d, want 202 (no false cache hit)", resp.StatusCode)
	}
	_ = s
}

// TestJobsCacheSurvivesRestart: the cache index is rebuilt from the
// WAL on open, so a restarted coordinator still answers duplicates
// from cache.
func TestJobsCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{DataDir: dir})
	resp, body := postJob(t, ts1, "workload=example1", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts1, sum.ID)
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, ts2 := newTestServer(t, Options{DataDir: dir, Registry: reg})
	resp, body = postJob(t, ts2, "workload=example1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart duplicate = %d, want 200 cache hit: %s", resp.StatusCode, body)
	}
	var hit struct {
		Cached bool                `json:"cached"`
		Job    jobstore.JobSummary `json:"job"`
	}
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Job.ID != sum.ID {
		t.Fatalf("post-restart cache response = %+v", hit)
	}
	if n := reg.Counter("jobs.cache_hits").Value(); n != 1 {
		t.Fatalf("jobs.cache_hits after restart = %d", n)
	}
}
