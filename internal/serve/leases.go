package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"polyprof/internal/jobapi"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs/flight"
)

// Lease-protocol body caps.  The API is auth-less like the rest of the
// daemon, so every inbound body is bounded and structurally validated
// before it touches the store: control bodies are tiny, result bodies
// carry a report but must stay well under the WAL's record frame.
const (
	maxLeaseControlBody = 1 << 20
	maxLeaseResultBody  = 12 << 20
)

// decodeLeaseBody reads a capped JSON body into v, mapping oversized
// and malformed inputs to structured 400s.  An empty body decodes the
// zero value (claims without preferences are legal).
func decodeLeaseBody(w http.ResponseWriter, req *http.Request, maxBytes int64, v any) bool {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBytes+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return false
	}
	if int64(len(body)) > maxBytes {
		http.Error(w, fmt.Sprintf("body exceeds the %d-byte limit", maxBytes), http.StatusRequestEntityTooLarge)
		return false
	}
	if len(body) == 0 {
		return true
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, fmt.Sprintf("malformed body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// leaseStoreReady answers whether the lease API can serve, writing the
// 503 if not.  The middleware's ready gate already ordered us after
// Open; this is the durable-subsystem check.
func (s *Server) leaseStoreReady(w http.ResponseWriter) bool {
	if s.store == nil || s.pool == nil {
		http.Error(w, "durable jobs are disabled; restart the coordinator with -data-dir", http.StatusServiceUnavailable)
		return false
	}
	return true
}

// handleLeases serves POST /v1/leases: a remote worker claims the
// oldest ready job.  201 with the grant (lease + job), 204 when no job
// is ready — the worker's signal to poll again later.
func (s *Server) handleLeases(rw http.ResponseWriter, req *http.Request) {
	w := &responseTracker{ResponseWriter: rw}
	defer s.recoverJSON(w)
	if !s.leaseStoreReady(w) {
		return
	}
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "POST /v1/leases claims a ready job", http.StatusMethodNotAllowed)
		return
	}
	var ar jobapi.AcquireRequest
	if !decodeLeaseBody(w, req, maxLeaseControlBody, &ar) {
		return
	}
	worker := ar.Worker
	if worker == "" {
		worker = "remote"
	}
	if len(worker) > 128 {
		worker = worker[:128]
	}
	ttl := jobstore.ClampLeaseTTL(time.Duration(ar.TTLNS), s.pool.DefaultLeaseTTL())
	lease, job, err := s.store.AcquireLease(worker, ttl, s.pool.MaxAttempts())
	if err != nil {
		if errors.Is(err, jobstore.ErrNoReadyJob) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	flight.LogEvent(flight.Event{
		Kind: "lease", Name: "grant", Trace: job.TraceID,
		Detail: fmt.Sprintf("%s -> worker %s attempt %d token %d ttl %s",
			job.ID, worker, lease.Attempt, lease.Token, ttl),
	})
	// A streaming job's committed checkpoint rides along with the grant:
	// the worker resumes from it instead of replaying from event zero.
	ck := s.store.LoadCheckpoint(job.ID)
	writeJSON(w, http.StatusCreated, jobapi.Grant{Lease: lease, Job: job, Checkpoint: ck})
}

// handleLease serves the per-lease calls:
//
//	PUT  /v1/leases/{id}             heartbeat: extend the TTL under the token
//	POST /v1/leases/{id}/checkpoint  commit a streaming epoch checkpoint
//	POST /v1/leases/{id}/result      report the attempt's terminal outcome
//
// Fencing failures are 409 (the token no longer owns the job), deleted
// or unknown jobs 410 — structured verdicts a zombie worker can act on.
func (s *Server) handleLease(rw http.ResponseWriter, req *http.Request) {
	w := &responseTracker{ResponseWriter: rw}
	defer s.recoverJSON(w)
	if !s.leaseStoreReady(w) {
		return
	}
	rest := strings.TrimPrefix(req.URL.Path, "/v1/leases/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		http.Error(w, "missing job id", http.StatusBadRequest)
		return
	}
	switch {
	case sub == "" && req.Method == http.MethodPut:
		s.handleLeaseHeartbeat(w, req, id)
	case sub == "checkpoint" && req.Method == http.MethodPost:
		s.handleLeaseCheckpoint(w, req, id)
	case sub == "result" && req.Method == http.MethodPost:
		s.handleLeaseResult(w, req, id)
	default:
		w.Header().Set("Allow", "PUT, POST")
		http.Error(w, "PUT /v1/leases/{id} heartbeats; POST /v1/leases/{id}/checkpoint commits an epoch; POST /v1/leases/{id}/result reports", http.StatusMethodNotAllowed)
	}
}

// handleLeaseCheckpoint commits a remote streaming attempt's epoch
// checkpoint under its fencing token.  The 200 is only written after
// the store fsynced the WAL record — to the worker, 200 means the
// epoch is committed and it may run past the boundary.
func (s *Server) handleLeaseCheckpoint(w http.ResponseWriter, req *http.Request, id string) {
	var cr jobapi.CheckpointRequest
	if !decodeLeaseBody(w, req, maxLeaseResultBody, &cr) {
		return
	}
	if len(cr.Data) == 0 {
		http.Error(w, "checkpoint without data", http.StatusBadRequest)
		return
	}
	err := s.store.SaveLeasedCheckpoint(id, cr.Token, &jobstore.JobCheckpoint{
		JobID: id, Epoch: cr.Epoch, Events: cr.Events, Attempt: cr.Attempt, Data: cr.Data,
	})
	if err != nil {
		s.writeLeaseError(w, err)
		return
	}
	s.reg.Add("jobs.leases.checkpoints", 1)
	writeJSON(w, http.StatusOK, map[string]any{"committed": true, "epoch": cr.Epoch})
}

func (s *Server) handleLeaseHeartbeat(w http.ResponseWriter, req *http.Request, id string) {
	var hr jobapi.HeartbeatRequest
	if !decodeLeaseBody(w, req, maxLeaseControlBody, &hr) {
		return
	}
	ttl := jobstore.ClampLeaseTTL(time.Duration(hr.TTLNS), s.pool.DefaultLeaseTTL())
	lease, err := s.store.RenewLease(id, hr.Token, ttl)
	if err != nil {
		s.writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (s *Server) handleLeaseResult(w http.ResponseWriter, req *http.Request, id string) {
	var rr jobapi.ResultRequest
	if !decodeLeaseBody(w, req, maxLeaseResultBody, &rr) {
		return
	}
	if (rr.Result == nil) == (rr.Error == nil) {
		http.Error(w, "exactly one of result or error must be set", http.StatusBadRequest)
		return
	}
	var (
		state jobstore.State
		err   error
	)
	if rr.Result != nil {
		err = s.store.CompleteLease(id, rr.Token, rr.Result, rr.TraceEvents)
		state = jobstore.StateSucceeded
	} else {
		nextRun := time.Now().UTC().Add(s.pool.Backoff(rr.Error.Attempt))
		var requeued bool
		requeued, err = s.store.FailLease(id, rr.Token, rr.Error, rr.TraceEvents, s.pool.MaxAttempts(), nextRun)
		if requeued {
			// Wake the local pool too: with local workers enabled the
			// retry may run in-process before any remote claim.
			s.pool.Enqueue(id, nextRun)
			state = jobstore.StateQueued
		} else {
			state = jobstore.StateFailed
		}
	}
	if err != nil {
		if errors.Is(err, jobstore.ErrFenced) {
			// The dangerous race, made safe: a zombie worker (reclaimed
			// lease, coordinator restart, duplicate post) tried to land a
			// terminal result.  The store fenced it; record the incident.
			job := s.store.Get(id)
			var trace string
			if job != nil {
				trace = job.TraceID
			}
			flight.Trigger("zombie-fenced", flight.TriggerInfo{
				Trace: trace, Job: id,
				Detail: fmt.Sprintf("fenced result post for %s (token %d): %v", id, rr.Token, err),
				Extra:  job,
			})
		}
		s.writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobapi.ResultResponse{State: state})
}

// writeLeaseError maps the store's lease error taxonomy onto the
// protocol statuses: fenced → 409, gone → 410, anything else (a WAL
// append failure — the worker should retry the post) → 500.
func (s *Server) writeLeaseError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobstore.ErrFenced):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, jobstore.ErrLeaseGone):
		http.Error(w, err.Error(), http.StatusGone)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
