package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"polyprof/internal/jobexec"
	"polyprof/internal/jobstore"
)

// storeCheckpoints backs jobexec's CheckpointStore with the daemon's
// job store: Save is a WAL-committed (fsynced) checkpoint record, Load
// the latest committed one.  This is the local-pool durability path;
// remote workers persist through the coordinator's lease-fenced
// checkpoint endpoint instead.
type storeCheckpoints struct {
	store   *jobstore.Store
	jobID   string
	attempt int
}

func (c storeCheckpoints) Save(epoch, events uint64, data []byte) error {
	return c.store.SaveCheckpoint(&jobstore.JobCheckpoint{
		JobID: c.jobID, Epoch: epoch, Events: events, Attempt: c.attempt, Data: data,
	})
}

func (c storeCheckpoints) Load() ([]byte, bool) {
	ck := c.store.LoadCheckpoint(c.jobID)
	if ck == nil {
		return nil, false
	}
	return ck.Data, true
}

// streamJobPollInterval is how often an SSE subscriber re-checks the
// store for the job's terminal transition.  Polling (rather than a
// completion hook) also catches jobs finished by remote lease-holding
// workers, whose results arrive over HTTP.
const streamJobPollInterval = 150 * time.Millisecond

// streamHub fans per-epoch provisional reports out to the SSE
// subscribers of GET /v1/jobs/{id}?stream=1.  It retains only the
// latest provisional per running job (epoch N's report supersedes
// N-1's — the dependence set only grows), replayed to late subscribers
// so they see the current state immediately.
type streamHub struct {
	mu   sync.Mutex
	subs map[string]map[chan jobexec.Provisional]struct{}
	last map[string]*jobexec.Provisional
}

func newStreamHub() *streamHub {
	return &streamHub{
		subs: make(map[string]map[chan jobexec.Provisional]struct{}),
		last: make(map[string]*jobexec.Provisional),
	}
}

// publish records the job's newest provisional and offers it to every
// subscriber.  A subscriber too slow to drain its buffer is skipped,
// not blocked on: it will catch up at the next epoch (or the terminal
// poll), and the profiling attempt never stalls on a reader.
func (h *streamHub) publish(id string, p jobexec.Provisional) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last[id] = &p
	for ch := range h.subs[id] {
		select {
		case ch <- p:
		default:
		}
	}
}

// subscribe registers a new subscriber and returns its channel, the
// latest provisional to replay (nil if none yet), and the
// unsubscribe func.
func (h *streamHub) subscribe(id string) (chan jobexec.Provisional, *jobexec.Provisional, func()) {
	ch := make(chan jobexec.Provisional, 8)
	h.mu.Lock()
	if h.subs[id] == nil {
		h.subs[id] = make(map[chan jobexec.Provisional]struct{})
	}
	h.subs[id][ch] = struct{}{}
	last := h.last[id]
	h.mu.Unlock()
	return ch, last, func() {
		h.mu.Lock()
		delete(h.subs[id], ch)
		if len(h.subs[id]) == 0 {
			delete(h.subs, id)
		}
		h.mu.Unlock()
	}
}

// clear drops the job's retained provisional (called when the job goes
// terminal — the persisted final report supersedes it).
func (h *streamHub) clear(id string) {
	h.mu.Lock()
	delete(h.last, id)
	h.mu.Unlock()
}

// Flush forwards to the underlying writer so SSE chunks leave the
// process at epoch boundaries instead of pooling in a buffer.
func (t *responseTracker) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// streamJob serves GET /v1/jobs/{id}?stream=1: a Server-Sent-Events
// stream of the job's live progress.  Events, in order:
//
//	event: job           the job summary at subscribe time
//	event: provisional   {"epoch":N,"events":E,"report":{...}} per epoch
//	event: done          terminal state + final report, then EOF
//
// Each provisional report is sound and monotone — it may only gain
// dependences in later epochs — so a client can act on it immediately.
// A job that is already terminal answers with job + done.  Buffered
// (non-streaming) jobs produce no provisionals; the stream still ends
// with their done event.
func (s *Server) streamJob(w http.ResponseWriter, req *http.Request, job *jobstore.Job) {
	ch, last, unsubscribe := s.streams.subscribe(job.ID)
	defer unsubscribe()

	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}

	if !send("job", job.Summary()) {
		return
	}
	lastEpoch := uint64(0)
	if last != nil {
		if !send("provisional", *last) {
			return
		}
		lastEpoch = last.Epoch
	}

	tick := time.NewTicker(streamJobPollInterval)
	defer tick.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case p := <-ch:
			// A retried attempt replays the epoch grid from its resume
			// point; suppress re-sent epochs so subscribers see a monotone
			// sequence.
			if p.Epoch <= lastEpoch {
				continue
			}
			lastEpoch = p.Epoch
			if !send("provisional", p) {
				return
			}
		case <-tick.C:
			cur := s.store.Get(job.ID)
			if cur == nil {
				send("done", map[string]any{"state": "deleted"})
				return
			}
			if !cur.State.Terminal() {
				continue
			}
			// Drain provisionals that raced the terminal transition, then
			// close with the persisted final result.
			for drained := false; !drained; {
				select {
				case p := <-ch:
					if p.Epoch > lastEpoch {
						lastEpoch = p.Epoch
						if !send("provisional", p) {
							return
						}
					}
				default:
					drained = true
				}
			}
			body := map[string]any{"state": cur.State}
			if cur.Result != nil {
				body["status"] = cur.Result.Status
				body["report"] = cur.Result.Report
			}
			send("done", body)
			return
		}
	}
}
