package loopevents

import (
	"fmt"
	"sort"

	"polyprof/internal/cfg"
	"polyprof/internal/cg"
	"polyprof/internal/isa"
)

// Epoch-checkpoint serialization for the translator: the live-loop
// stack and the per-component counters, with loops and components
// referenced by ID (pass 1 re-derives the same structure on resume, so
// IDs are stable).

// StackEntryState serializes one live-loop stack entry.
type StackEntryState struct {
	// Kind is "l" for a CFG loop, "r" for a recursive component.
	Kind string `json:"k"`
	ID   int    `json:"id"`
}

// CompStateData serializes one component's Alg. 2 counters.
type CompStateData struct {
	Comp       int        `json:"comp"`
	Entry      isa.FuncID `json:"entry"`
	StackCount int        `json:"stack"`
}

// TranslatorState is the serializable form of a Translator.
type TranslatorState struct {
	InLoops []StackEntryState `json:"inloops,omitempty"`
	Comps   []CompStateData   `json:"comps,omitempty"`
}

// State captures the translator for checkpointing.
func (t *Translator) State() TranslatorState {
	var s TranslatorState
	for _, e := range t.inLoops {
		if e.isCFG() {
			s.InLoops = append(s.InLoops, StackEntryState{Kind: "l", ID: e.loop.ID})
		} else {
			s.InLoops = append(s.InLoops, StackEntryState{Kind: "r", ID: e.comp.ID})
		}
	}
	for c, st := range t.state {
		s.Comps = append(s.Comps, CompStateData{Comp: c.ID, Entry: st.entry, StackCount: st.stackCount})
	}
	sort.Slice(s.Comps, func(i, j int) bool { return s.Comps[i].Comp < s.Comps[j].Comp })
	return s
}

// RestoreTranslator rebuilds a translator from its checkpointed state
// against a freshly re-derived forest and component set.
func RestoreTranslator(prog *isa.Program, forest *cfg.Forest, comps *cg.ComponentSet, emit func(Event), s TranslatorState) (*Translator, error) {
	t := NewTranslator(prog, forest, comps, emit)
	loops := map[int]*cfg.Loop{}
	for _, l := range forest.Loops {
		loops[l.ID] = l
	}
	byID := map[int]*cg.Component{}
	for _, c := range comps.Components {
		byID[c.ID] = c
	}
	for _, e := range s.InLoops {
		switch e.Kind {
		case "l":
			l := loops[e.ID]
			if l == nil {
				return nil, fmt.Errorf("loopevents: unknown loop L%d in checkpoint", e.ID)
			}
			t.inLoops = append(t.inLoops, stackEntry{loop: l})
		case "r":
			c := byID[e.ID]
			if c == nil {
				return nil, fmt.Errorf("loopevents: unknown component R%d in checkpoint", e.ID)
			}
			t.inLoops = append(t.inLoops, stackEntry{comp: c})
		default:
			return nil, fmt.Errorf("loopevents: bad stack entry kind %q in checkpoint", e.Kind)
		}
	}
	for _, cs := range s.Comps {
		c := byID[cs.Comp]
		if c == nil {
			return nil, fmt.Errorf("loopevents: unknown component R%d in checkpoint", cs.Comp)
		}
		t.state[c] = &compState{entry: cs.Entry, stackCount: cs.StackCount}
	}
	return t, nil
}
