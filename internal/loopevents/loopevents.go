// Package loopevents turns the raw control-event stream
// (jump/call/return) into loop events (entry/iterate/exit), implementing
// Algorithms 1 and 2 of the paper.  CFG loops are driven by jump events
// against the loop-nesting forest; recursive loops are driven by call
// and return events against the recursive-component-set, with the
// component's stack counter deciding when the loop is finally exited.
package loopevents

import (
	"fmt"

	"polyprof/internal/cfg"
	"polyprof/internal/cg"
	"polyprof/internal/isa"
	"polyprof/internal/trace"
)

// Kind enumerates loop events.  Names follow the paper: E/I/X for CFG
// loops, N for local jumps, C/R for ordinary calls and returns, and the
// subscripted Ec/Ic/Ir/Xr family for recursive components.
type Kind uint8

// Loop event kinds.
const (
	EnterLoop   Kind = iota // E(L,H): entry into CFG loop L at header H
	IterateLoop             // I(L,H): new iteration of CFG loop L
	ExitLoop                // X(L,B): exit of CFG loop L, jumping to B
	LocalJump               // N(B): local jump to block B
	CallFn                  // C(F,B): ordinary call to F, B = callee entry
	ReturnFn                // R(B): ordinary return, B = continuation
	EnterRec                // Ec(L,B): call to an entry of component L
	IterCallRec             // Ic(L,B): call to a header of component L
	IterRetRec              // Ir(L,B): return from a header of component L
	ExitRec                 // Xr(L,B): final unstacking, loop exit
)

func (k Kind) String() string {
	switch k {
	case EnterLoop:
		return "E"
	case IterateLoop:
		return "I"
	case ExitLoop:
		return "X"
	case LocalJump:
		return "N"
	case CallFn:
		return "C"
	case ReturnFn:
		return "R"
	case EnterRec:
		return "Ec"
	case IterCallRec:
		return "Ic"
	case IterRetRec:
		return "Ir"
	case ExitRec:
		return "Xr"
	}
	return "?"
}

// Event is one loop event.
type Event struct {
	Kind  Kind
	Loop  *cfg.Loop     // E/I/X events
	Comp  *cg.Component // Ec/Ic/Ir/Xr events
	Block isa.BlockID   // the B argument (dst block / header / continuation)
	Fn    isa.FuncID    // C events: the callee
}

// String renders the event in the paper's notation.
func (e Event) String() string {
	switch e.Kind {
	case EnterLoop, IterateLoop, ExitLoop:
		return fmt.Sprintf("%v(L%d,%d)", e.Kind, e.Loop.ID, e.Block)
	case EnterRec, IterCallRec, IterRetRec, ExitRec:
		return fmt.Sprintf("%v(R%d,%d)", e.Kind, e.Comp.ID, e.Block)
	case CallFn:
		return fmt.Sprintf("C(f%d,%d)", e.Fn, e.Block)
	default:
		return fmt.Sprintf("%v(%d)", e.Kind, e.Block)
	}
}

// stackEntry is one live loop: either a CFG loop or a recursive
// component.
type stackEntry struct {
	loop *cfg.Loop
	comp *cg.Component
}

func (s stackEntry) isCFG() bool { return s.loop != nil }

type compState struct {
	entry      isa.FuncID // function through which the component was entered
	stackCount int        // calls-to minus returns-from headers
}

// Translator converts control events to loop events.  Create one per
// profiled run with NewTranslator and feed it as a trace.Hook (it
// forwards nothing; callers receive events through the Emit callback).
type Translator struct {
	prog   *isa.Program
	forest *cfg.Forest
	comps  *cg.ComponentSet

	// Emit receives each generated loop event in order.
	Emit func(Event)

	inLoops []stackEntry
	state   map[*cg.Component]*compState
}

// NewTranslator creates a translator for one execution.
func NewTranslator(prog *isa.Program, forest *cfg.Forest, comps *cg.ComponentSet, emit func(Event)) *Translator {
	return &Translator{
		prog:   prog,
		forest: forest,
		comps:  comps,
		Emit:   emit,
		state:  map[*cg.Component]*compState{},
	}
}

// Instr implements trace.Hook as a no-op.
func (t *Translator) Instr(trace.InstrEvent, *isa.Instr) {}

// Control implements trace.Hook, dispatching to Alg. 1 or Alg. 2.
func (t *Translator) Control(ev trace.ControlEvent) {
	switch ev.Kind {
	case trace.Jump:
		t.onJump(ev)
	case trace.Call:
		t.onCall(ev)
	case trace.Return:
		t.onReturn(ev)
	}
}

func (t *Translator) peek() (stackEntry, bool) {
	if len(t.inLoops) == 0 {
		return stackEntry{}, false
	}
	return t.inLoops[len(t.inLoops)-1], true
}

func (t *Translator) pop() { t.inLoops = t.inLoops[:len(t.inLoops)-1] }

func (t *Translator) compStateOf(c *cg.Component) *compState {
	s := t.state[c]
	if s == nil {
		s = &compState{entry: isa.NoFunc}
		t.state[c] = s
	}
	return s
}

// onStack reports whether the CFG loop is currently live (this is the
// paper's L.visiting flag; a loop is "visiting" exactly while it is on
// the inLoops stack).
func (t *Translator) onStack(l *cfg.Loop) bool {
	for _, e := range t.inLoops {
		if e.loop == l {
			return true
		}
	}
	return false
}

// onJump is Alg. 1: CFG-loop events from a local jump to B.
func (t *Translator) onJump(ev trace.ControlEvent) {
	b := ev.Dst
	fn := t.prog.Block(b).Fn
	// Exit live CFG loops that do not contain B.  Only loops of the
	// current function are candidates: a local jump cannot exit a loop
	// of a caller whose frame is still on the call stack (the paper's
	// "B not in L" test is implicitly intraprocedural).
	for {
		top, ok := t.peek()
		if !ok || !top.isCFG() || top.loop.Fn != fn || top.loop.Contains(b) {
			break
		}
		t.pop()
		t.Emit(Event{Kind: ExitLoop, Loop: top.loop, Block: b})
	}
	if l := t.forest.HeaderLoop(b); l != nil {
		if !t.onStack(l) {
			t.inLoops = append(t.inLoops, stackEntry{loop: l})
			t.Emit(Event{Kind: EnterLoop, Loop: l, Block: b})
		} else {
			t.Emit(Event{Kind: IterateLoop, Loop: l, Block: b})
		}
	}
	t.Emit(Event{Kind: LocalJump, Block: b})
}

// onCall is the call half of Alg. 2.
func (t *Translator) onCall(ev trace.ControlEvent) {
	f := ev.Callee
	b := ev.Dst // callee entry block
	comp := t.comps.ComponentOf(f)
	if comp != nil {
		st := t.compStateOf(comp)
		switch {
		case comp.Entries[f] && st.entry == isa.NoFunc:
			st.entry = f
			t.inLoops = append(t.inLoops, stackEntry{comp: comp})
			t.Emit(Event{Kind: EnterRec, Comp: comp, Block: b})
			return
		case comp.Headers[f]:
			// A new iteration starts: all CFG loops live inside the
			// component are exited first.
			for {
				top, ok := t.peek()
				if !ok || !top.isCFG() || !comp.Funcs[t.loopFn(top.loop)] {
					break
				}
				t.pop()
				t.Emit(Event{Kind: ExitLoop, Loop: top.loop, Block: b})
			}
			st.stackCount++
			t.Emit(Event{Kind: IterCallRec, Comp: comp, Block: b})
			return
		}
	}
	t.Emit(Event{Kind: CallFn, Fn: f, Block: b})
}

func (t *Translator) loopFn(l *cfg.Loop) isa.FuncID { return l.Fn }

// onReturn is the return half of Alg. 2 (with Alg. 1's fallback R
// event).
func (t *Translator) onReturn(ev trace.ControlEvent) {
	f := ev.Callee // function being returned from
	b := ev.Dst    // continuation block in the caller
	// Exit CFG loops of F that are still live (early returns).
	for {
		top, ok := t.peek()
		if !ok || !top.isCFG() || top.loop.Fn != f {
			break
		}
		t.pop()
		t.Emit(Event{Kind: ExitLoop, Loop: top.loop, Block: b})
	}
	comp := t.comps.ComponentOf(f)
	if comp != nil {
		st := t.compStateOf(comp)
		switch {
		case comp.Entries[f] && st.stackCount == 0 && st.entry == f:
			st.entry = isa.NoFunc
			// Pop the component entry (and any stale CFG loops above it,
			// which cannot exist by construction).
			if top, ok := t.peek(); ok && top.comp == comp {
				t.pop()
			}
			t.Emit(Event{Kind: ExitRec, Comp: comp, Block: b})
			return
		case comp.Headers[f]:
			st.stackCount--
			t.Emit(Event{Kind: IterRetRec, Comp: comp, Block: b})
			return
		}
	}
	t.Emit(Event{Kind: ReturnFn, Block: b})
}
