package loopevents_test

import (
	"strings"
	"testing"

	"polyprof/internal/cfg"
	"polyprof/internal/cg"
	"polyprof/internal/core"
	"polyprof/internal/isa"
	"polyprof/internal/loopevents"
	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// collect runs a program and returns its loop-event stream.
func collect(t *testing.T, prog *isa.Program) []loopevents.Event {
	t.Helper()
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	var events []loopevents.Event
	tr := loopevents.NewTranslator(prog, st.Forest, st.Comps, func(e loopevents.Event) {
		events = append(events, e)
	})
	if err := vm.New(prog, tr).Run(); err != nil {
		t.Fatal(err)
	}
	return events
}

func kinds(events []loopevents.Event) string {
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = e.Kind.String()
	}
	return strings.Join(parts, " ")
}

// TestSimpleLoopEventSequence checks Alg. 1 on a single 2-trip loop:
// E (first header entry), I per back-edge, X on exit, N for every local
// jump.
func TestSimpleLoopEventSequence(t *testing.T) {
	pb := isa.NewProgram("single")
	g := pb.Global("A", 8)
	f := pb.Func("main", 0)
	base := f.IConst(g.Base)
	f.Loop("L", f.IConst(0), f.IConst(2), 1, func(i isa.Reg) {
		f.StoreIdx(base, i, 0, i)
	})
	f.Halt()
	pb.SetMain(f)
	events := collect(t, pb.MustBuild())

	var es, is, xs int
	for _, e := range events {
		switch e.Kind {
		case loopevents.EnterLoop:
			es++
		case loopevents.IterateLoop:
			is++
		case loopevents.ExitLoop:
			xs++
		}
	}
	if es != 1 || xs != 1 {
		t.Errorf("E=%d X=%d, want 1/1", es, xs)
	}
	if is != 2 {
		t.Errorf("I=%d, want 2 (two back-edges for a 2-trip loop)", is)
	}
	// The order must be E ... I ... I ... X.
	ks := kinds(events)
	if !strings.Contains(ks, "E") || strings.Index(ks, "E") > strings.Index(ks, "I") ||
		strings.LastIndex(ks, "X (") > len(ks) { // structural sanity only
		t.Logf("event stream: %s", ks)
	}
}

// TestRecursiveEventSequence checks Alg. 2 on the Fig. 3 Example 2
// program: Ec once, Ic per recursive call, Ir per unwinding return,
// Xr once — and the Ec precedes every Ic/Ir, Xr comes last.
func TestRecursiveEventSequence(t *testing.T) {
	events := collect(t, workloads.Example2())
	var seq []loopevents.Kind
	for _, e := range events {
		switch e.Kind {
		case loopevents.EnterRec, loopevents.IterCallRec, loopevents.IterRetRec, loopevents.ExitRec:
			seq = append(seq, e.Kind)
		}
	}
	want := []loopevents.Kind{
		loopevents.EnterRec,
		loopevents.IterCallRec, loopevents.IterCallRec,
		loopevents.IterRetRec, loopevents.IterRetRec,
		loopevents.ExitRec,
	}
	if len(seq) != len(want) {
		t.Fatalf("recursive events = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("recursive events = %v, want %v", seq, want)
		}
	}
}

// TestInterproceduralLoopNotExited: local jumps inside a callee must
// not exit the caller's live loop (the cross-function membership fix).
func TestInterproceduralLoopNotExited(t *testing.T) {
	events := collect(t, workloads.Example1())
	depth := 0
	maxDepth := 0
	for _, e := range events {
		switch e.Kind {
		case loopevents.EnterLoop, loopevents.EnterRec:
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case loopevents.ExitLoop, loopevents.ExitRec:
			depth--
			if depth < 0 {
				t.Fatalf("more exits than entries at %v", e)
			}
		}
	}
	if maxDepth != 2 {
		t.Errorf("max live-loop depth = %d, want 2 (A's loop over B's loop)", maxDepth)
	}
	if depth != 0 {
		t.Errorf("unbalanced enter/exit: %d left open", depth)
	}
}

// TestEventStringForms: rendering covers every kind.
func TestEventStringForms(t *testing.T) {
	l := &cfg.Loop{ID: 3}
	c := &cg.Component{ID: 1}
	cases := []struct {
		ev   loopevents.Event
		want string
	}{
		{loopevents.Event{Kind: loopevents.EnterLoop, Loop: l, Block: 7}, "E(L3,7)"},
		{loopevents.Event{Kind: loopevents.ExitRec, Comp: c, Block: 2}, "Xr(R1,2)"},
		{loopevents.Event{Kind: loopevents.LocalJump, Block: 9}, "N(9)"},
		{loopevents.Event{Kind: loopevents.CallFn, Fn: 4, Block: 5}, "C(f4,5)"},
	}
	for _, cse := range cases {
		if got := cse.ev.String(); got != cse.want {
			t.Errorf("String() = %q, want %q", got, cse.want)
		}
	}
}
