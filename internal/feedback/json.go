package feedback

import (
	"encoding/json"
	"fmt"

	"polyprof/internal/ddg"
)

// JSONReport is the machine-readable form of a feedback report, for
// editor integrations and CI tooling (the paper's SVG flame graphs are
// clickable; this is the structured equivalent).
type JSONReport struct {
	Program   string  `json:"program"`
	TotalOps  uint64  `json:"total_ops"`
	MemOps    uint64  `json:"mem_ops"`
	FPOps     uint64  `json:"fp_ops"`
	PctAffine float64 `json:"pct_affine"`

	// Degraded is true when resource budgets forced the DDG into
	// coarse over-approximated tracking; Degradation details which
	// budgets tripped and which address regions were coarsened.  A
	// degraded report is still sound in one direction: it may only
	// report MORE dependences than a full run, never fewer.
	Degraded    bool             `json:"degraded,omitempty"`
	Degradation *ddg.Degradation `json:"degradation,omitempty"`

	Region *JSONRegion `json:"region,omitempty"`

	// Optimization is the schedule-application engine's report
	// (internal/transform), present when the run was submitted with
	// the optimize stage enabled.  It is carried opaquely so feedback
	// does not depend on the transform package.
	Optimization json.RawMessage `json:"optimization,omitempty"`
}

// JSONRegion describes the selected region of interest.
type JSONRegion struct {
	CodeRef         string     `json:"code_ref"`
	PctOps          float64    `json:"pct_ops"`
	Interprocedural bool       `json:"interprocedural"`
	Components      int        `json:"components"`
	FusedComponents int        `json:"fused_components"`
	Fusion          string     `json:"fusion"`
	Metrics         JSONMetric `json:"metrics"`
	Nests           []JSONNest `json:"nests"`
}

// JSONMetric carries the Table 5 style percentages.
type JSONMetric struct {
	PctParallelOps float64 `json:"pct_parallel_ops"`
	PctSIMDOps     float64 `json:"pct_simd_ops"`
	PctReuse       float64 `json:"pct_reuse"`
	PctPReuse      float64 `json:"pct_preuse"`
	LoopDepthSrc   int     `json:"loop_depth_src"`
	LoopDepthBin   int     `json:"loop_depth_bin"`
	TileDepth      int     `json:"tile_depth"`
	PctTileOps     float64 `json:"pct_tile_ops"`
	Skew           bool    `json:"skew"`
}

// JSONNest is one nest's suggested transformation.
type JSONNest struct {
	Depth       int       `json:"depth"`
	PctOps      float64   `json:"pct_ops"`
	Transform   string    `json:"transform"`
	Parallel    []bool    `json:"parallel"`
	Stride01    []float64 `json:"stride01"`
	TileDepth   int       `json:"tile_depth"`
	Permutable  bool      `json:"fully_permutable"`
	SkewUsed    bool      `json:"skew_used"`
	SpeedupEst  float64   `json:"speedup_estimate,omitempty"`
	SpeedupNote string    `json:"speedup_note,omitempty"`
}

// JSON serializes the report (pretty-printed).  When cm is non-nil,
// per-nest speedups are estimated with it.
func (r *Report) JSON(cm *CostModel) ([]byte, error) {
	return r.JSONWith(cm, nil)
}

// JSONWith is JSON with an opaque optimization section (the
// schedule-application engine's marshaled report) attached; nil omits
// the section and is equivalent to JSON.
func (r *Report) JSONWith(cm *CostModel, optimization json.RawMessage) ([]byte, error) {
	out := JSONReport{
		Program:   r.Profile.Prog.Name,
		TotalOps:  r.Profile.DDG.TotalOps,
		MemOps:    r.Profile.DDG.MemOps,
		FPOps:     r.Profile.DDG.FPOps,
		PctAffine: r.PctAffine,
	}
	if d := r.Profile.DDG.Degraded; d != nil {
		out.Degraded = true
		out.Degradation = d
	}
	if reg := r.Best; reg != nil {
		met := r.ComputeMetrics(reg)
		jr := &JSONRegion{
			CodeRef:         reg.CodeRef,
			PctOps:          reg.PctOps,
			Interprocedural: reg.Interproc,
			Components:      reg.Components,
			FusedComponents: reg.FusedComponents,
			Fusion:          reg.Fusion.String(),
			Metrics: JSONMetric{
				PctParallelOps: met.PctParallelOps,
				PctSIMDOps:     met.PctSIMDOps,
				PctReuse:       met.PctReuse,
				PctPReuse:      met.PctPReuse,
				LoopDepthSrc:   met.LdSrc,
				LoopDepthBin:   met.LdBin,
				TileDepth:      met.TileD,
				PctTileOps:     met.PctTileOps,
				Skew:           met.Skew,
			},
		}
		for _, t := range reg.Transforms {
			nestOps := t.Nest.Loops[len(t.Nest.Loops)-1].TotalOps
			if nestOps*50 < reg.Ops || t.Describe() == "none" {
				continue
			}
			n := JSONNest{
				Depth:      t.Nest.Depth(),
				PctOps:     float64(nestOps) / float64(r.Profile.DDG.TotalOps),
				Transform:  t.Describe(),
				Parallel:   t.Parallel,
				Stride01:   t.Stride01,
				TileDepth:  t.TileDepth(),
				Permutable: t.FullyPermutable(),
				SkewUsed:   t.SkewUsed,
			}
			if cm != nil {
				if sp, err := r.EstimateSpeedup(t, *cm); err == nil {
					n.SpeedupEst = sp.Factor
					n.SpeedupNote = sp.String()
				} else {
					n.SpeedupNote = fmt.Sprintf("estimation failed: %v", err)
				}
			}
			jr.Nests = append(jr.Nests, n)
		}
		out.Region = jr
	}
	out.Optimization = optimization
	return json.MarshalIndent(out, "", "  ")
}
