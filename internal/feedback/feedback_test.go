package feedback_test

import (
	"encoding/json"
	"strings"
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/feedback"
	"polyprof/internal/isa"
	"polyprof/internal/workloads"
)

func analyze(t *testing.T, prog *isa.Program) *feedback.Report {
	t.Helper()
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	return feedback.Analyze(p)
}

// TestBackpropReportShape: the full feedback bundle for the paper's
// running example.
func TestBackpropReportShape(t *testing.T) {
	rep := analyze(t, workloads.Backprop(workloads.DefaultBackpropParams()))

	if rep.Best == nil {
		t.Fatal("no region of interest")
	}
	if rep.Best.CodeRef != "facetrain.c:25" {
		t.Errorf("region = %s, want facetrain.c:25", rep.Best.CodeRef)
	}
	if !rep.Best.Interproc {
		t.Error("backprop region must be interprocedural")
	}
	if rep.Best.Components < 2 {
		t.Errorf("components = %d, want >= 2 (several kernels)", rep.Best.Components)
	}
	met := rep.ComputeMetrics(rep.Best)
	if met.TileD != 2 {
		t.Errorf("TileD = %d, want 2", met.TileD)
	}
	if met.PctPReuse < met.PctReuse {
		t.Errorf("%%Preuse (%.2f) must be >= %%reuse (%.2f)", met.PctPReuse, met.PctReuse)
	}
	if met.PctPReuse < 0.99 {
		t.Errorf("%%Preuse = %.2f, want ~100%% after interchange", met.PctPReuse)
	}
	if met.Skew {
		t.Error("backprop needs no skew")
	}

	sum := rep.Summary()
	for _, want := range []string{"backprop", "facetrain.c:25", "tile=2D"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestFlameGraphSVG: the Fig. 7 artifact is well-formed and highlights
// the kernels.
func TestFlameGraphSVG(t *testing.T) {
	rep := analyze(t, workloads.Backprop(workloads.DefaultBackpropParams()))
	svg := rep.FlameGraph(1000, 16)
	for _, want := range []string{
		"<svg", "</svg>", "<rect", "<title>",
		"bpnn_layerforward", // hot kernels must be wide enough to label
		"#ff",               // warm color marks the region of interest
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("flame graph missing %q", want)
		}
	}
	if strings.Count(svg, "<rect") < 20 {
		t.Errorf("flame graph has only %d boxes; tree rendering degenerated", strings.Count(svg, "<rect"))
	}
}

// TestAnnotatedAST: the simplified post-transformation code structure.
func TestAnnotatedAST(t *testing.T) {
	rep := analyze(t, workloads.Backprop(workloads.DefaultBackpropParams()))
	ast := rep.AnnotatedAST(rep.Best)
	for _, want := range []string{"for i", "simd", "tiles(", "backprop.c:"} {
		if !strings.Contains(ast, want) {
			t.Errorf("annotated AST missing %q:\n%s", want, ast)
		}
	}
}

// TestDomainReportParameterization: large constants become parameters
// in the Sec. 6 rendering.
func TestDomainReportParameterization(t *testing.T) {
	// A kernel with a big extent so parameterization triggers.
	pb := isa.NewProgram("bigdom")
	g := pb.Global("A", 1100)
	f := pb.Func("main", 0)
	base := f.IConst(g.Base)
	f.Loop("L", f.IConst(0), f.IConst(1024), 1, func(i isa.Reg) {
		f.FStoreIdx(base, i, 0, f.FConst(1))
	})
	f.Halt()
	pb.SetMain(f)
	rep := analyze(t, pb.MustBuild())
	if rep.Best == nil {
		t.Fatal("no region")
	}
	out := rep.DomainReport(rep.Best, 0, -1)
	for _, want := range []string{"[n0] -> ", "n0 = 1023", "parameters introduced"} {
		if !strings.Contains(out, want) {
			t.Errorf("domain report missing %q:\n%s", want, out)
		}
	}
}

// TestDDGReport lists folded dependencies with their pieces.
func TestDDGReport(t *testing.T) {
	rep := analyze(t, workloads.Backprop(workloads.DefaultBackpropParams()))
	out := rep.DDGReport(rep.Best)
	for _, want := range []string{"folded DDG", "reg:", "->", "{ ["} {
		if !strings.Contains(out, want) {
			t.Errorf("DDG report missing %q", want)
		}
	}
}

// TestSpeedupEstimatorMonotonic: a nest with a strided inner loop must
// gain from the suggested interchange-based transformation.
func TestSpeedupEstimatorMonotonic(t *testing.T) {
	rep := analyze(t, workloads.Backprop(workloads.DefaultBackpropParams()))
	found := false
	for _, tr := range rep.Best.Transforms {
		if tr.Nest.Depth() != 2 || !tr.SIMD {
			continue
		}
		sp, err := rep.EstimateSpeedup(tr, feedback.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		found = true
		if sp.Factor <= 1.5 {
			t.Errorf("speedup %.2fx, want > 1.5x for parallel+simd nests", sp.Factor)
		}
		if !sp.Parallel || !sp.SIMD {
			t.Errorf("discount flags wrong: %+v", sp)
		}
	}
	if !found {
		t.Fatal("no SIMD nest found")
	}
}

// TestMetricsClamped: percentages never exceed 100%.
func TestMetricsClamped(t *testing.T) {
	for _, name := range []string{"backprop", "gemm", "pathfinder"} {
		rep := analyze(t, workloads.ByName(name).Build())
		if rep.Best == nil {
			continue
		}
		met := rep.ComputeMetrics(rep.Best)
		for what, v := range map[string]float64{
			"par": met.PctParallelOps, "simd": met.PctSIMDOps,
			"tile": met.PctTileOps, "reuse": met.PctReuse, "preuse": met.PctPReuse,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: %%%s = %f out of [0,1]", name, what, v)
			}
		}
	}
}

// TestJSONExport round-trips the machine-readable report.
func TestJSONExport(t *testing.T) {
	rep := analyze(t, workloads.Backprop(workloads.DefaultBackpropParams()))
	cm := feedback.DefaultCostModel()
	data, err := rep.JSON(&cm)
	if err != nil {
		t.Fatal(err)
	}
	var back feedback.JSONReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if back.Program != "backprop" || back.Region == nil {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Region.CodeRef != "facetrain.c:25" || back.Region.Metrics.TileDepth != 2 {
		t.Errorf("region fields wrong: %+v", back.Region)
	}
	if len(back.Region.Nests) == 0 || back.Region.Nests[0].SpeedupEst <= 1 {
		t.Errorf("nest speedups missing: %+v", back.Region.Nests)
	}
}
