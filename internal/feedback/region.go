// Package feedback is polyprof's reporting back-end (paper Sec. 6): it
// selects regions of interest on the dynamic schedule tree, attaches
// the scheduler's proposed structured transformations, computes the
// PolyFeat-style metrics of the paper's Table 5 (%Aff, %ops, %Mops,
// %FPops, parallel/SIMD/tiling percentages, reuse, components and
// fusion structure), renders annotated flame graphs (Fig. 7) and a
// simplified post-transformation AST, and estimates case-study
// speedups by replaying folded access streams through a cache model.
package feedback

import (
	"fmt"
	"sort"
	"strings"

	"polyprof/internal/core"
	"polyprof/internal/iiv"
	"polyprof/internal/isa"
	"polyprof/internal/sched"
)

// Region is a subtree of the dynamic schedule tree selected for
// feedback.
type Region struct {
	Node *iiv.TreeNode
	// CodeRef is the pseudo source reference of the region (dominant
	// file, smallest line), e.g. "backprop.c:253".
	CodeRef string

	Ops    uint64
	MemOps uint64
	FPOps  uint64

	// PctOps is the share of the whole execution's operations.
	PctOps float64
	// Interproc: the region spans several functions.
	Interproc bool

	Stmts      []*sched.Stmt
	Transforms []*sched.NestTransform

	// Components before (C) and after (Comp.) the fusion heuristic.
	Components      int
	FusedComponents int
	Fusion          sched.FusionHeuristic
}

// Report is the complete feedback for one profiled execution.
type Report struct {
	Profile *core.Profile
	Model   *sched.Model

	// PctAffine is the fraction of dynamic operations inside exactly
	// folded statements (Table 5 %Aff).
	PctAffine float64

	// Regions are candidate regions sorted by operation count; Best is
	// the biggest region with a suggested transformation (the paper's
	// hand-selected "Region" column, automated).
	Regions []*Region
	Best    *Region

	allTransforms []*sched.NestTransform
}

// Analyze builds the feedback report from a profile.  It panics if a
// stage fails (injected fault, exhausted budget); servers and the CLI
// use AnalyzeChecked instead.
func Analyze(p *core.Profile) *Report {
	r, err := AnalyzeChecked(p)
	if err != nil {
		panic(err)
	}
	return r
}

// AnalyzeChecked is Analyze returning stage failures — budget aborts
// between stages and recovered stage panics — as errors.
func AnalyzeChecked(p *core.Profile) (*Report, error) {
	m, err := buildModel(p)
	if err != nil {
		return nil, err
	}
	return analyzeModelChecked(p, m)
}

// buildModel runs the sched-build stage under its span with budget
// polling and panic recovery.
func buildModel(p *core.Profile) (m *sched.Model, err error) {
	if err := p.Budget.Check("sched-build"); err != nil {
		return nil, err
	}
	sp := p.Obs.StartSpan("sched-build")
	defer sp.End()
	defer core.RecoverStage("sched-build", sp, &err)
	m = sched.Build(p)
	sp.AddEvents(uint64(len(m.Deps)))
	return m, nil
}

// AnalyzeModel builds the feedback report from a profile and a
// prebuilt scheduling model; Analyze is the one-shot wrapper.  The
// split lets the overhead harness time the scheduler and feedback
// stages separately (the paper's Experiment I cost breakdown).
func AnalyzeModel(p *core.Profile, m *sched.Model) *Report {
	r, err := analyzeModelChecked(p, m)
	if err != nil {
		panic(err)
	}
	return r
}

// analyzeModelChecked runs the feedback-analyze stage under its span
// with budget polling and panic recovery.
func analyzeModelChecked(p *core.Profile, m *sched.Model) (r *Report, err error) {
	if err := p.Budget.Check("feedback-analyze"); err != nil {
		return nil, err
	}
	sp := p.Obs.StartSpan("feedback-analyze")
	defer sp.End()
	defer core.RecoverStage("feedback-analyze", sp, &err)
	r = &Report{Profile: p, Model: m}

	// %Aff at instruction granularity: an instruction is fully affine
	// when its statement's iteration domain folded exactly, its memory
	// access (if any) has an affine address function, and — for integer
	// arithmetic — its values are a recognized scalar evolution.  This
	// is what makes the hand-linearized/modulo benchmarks (heartwall,
	// lud, hotspot) report low affine fractions even though their loop
	// structures are regular.
	var affOps uint64
	for _, in := range p.DDG.Instrs {
		if !in.Stmt.Domain.Exact {
			continue
		}
		if in.HasAccess() && in.Access.Fn == nil {
			continue
		}
		if in.Op.IsIntALU() && !in.Op.IsCompare() && in.HasValue() && !in.IsSCEV {
			continue
		}
		affOps += in.Count
	}
	if p.DDG.TotalOps > 0 {
		r.PctAffine = float64(affOps) / float64(p.DDG.TotalOps)
	}

	// All nest transformations, computed once over the whole tree (loop
	// paths are absolute, so per-region views are filtered subsets).
	r.allTransforms = m.Transform(p.Tree.Root)

	r.Regions = r.candidateRegions()
	for _, reg := range r.Regions {
		if len(reg.Transforms) > 0 && reg.hasInterestingTransform() {
			if r.Best == nil || reg.Ops > r.Best.Ops {
				r.Best = reg
			}
		}
	}
	sp.AddEvents(uint64(len(r.allTransforms)))
	return r, nil
}

// TransformCount returns the number of nest transformations derived
// over the whole schedule tree (the feedback stage's event count).
func (r *Report) TransformCount() int { return len(r.allTransforms) }

// AllTransforms returns every nest transformation derived over the
// whole schedule tree, in discovery order.  The schedule-application
// engine (internal/transform) consumes these as its suggestions.
func (r *Report) AllTransforms() []*sched.NestTransform { return r.allTransforms }

func (reg *Region) hasInterestingTransform() bool {
	for _, t := range reg.Transforms {
		if t.OuterParallel() || t.SIMD || t.Tilable() || t.Interchange {
			return true
		}
	}
	return false
}

// minRegionShare is the minimum share of program operations for a
// region candidate.
const minRegionShare = 0.05

// transformableShare is the minimum fraction of a region's operations
// that must sit inside nests with a proposed transformation.
const transformableShare = 0.5

// transformsUnder filters the global transforms to nests whose
// innermost loop lies in the subtree of n.
func (r *Report) transformsUnder(n *iiv.TreeNode) []*sched.NestTransform {
	var out []*sched.NestTransform
	for _, t := range r.allTransforms {
		inner := t.Nest.Loops[len(t.Nest.Loops)-1]
		if underTree(inner, n) {
			out = append(out, t)
		}
	}
	return out
}

func underTree(node, root *iiv.TreeNode) bool {
	for cur := node; cur != nil; cur = cur.Parent {
		if cur == root {
			return true
		}
	}
	return false
}

// transformableOps totals the operations of interesting nests under n.
func (r *Report) transformableOps(n *iiv.TreeNode) uint64 {
	var tOps uint64
	for _, t := range r.transformsUnder(n) {
		if t.OuterParallel() || t.SIMD || t.Tilable() || t.Interchange {
			tOps += t.Nest.Loops[len(t.Nest.Loops)-1].TotalOps
		}
	}
	return tOps
}

// candidateRegions walks the schedule tree top-down, collects the
// maximal subtrees dominated by transformable nests, and then drills
// into a child that concentrates (almost) all of the transformable
// work — matching how the paper's authors hand-select the region of
// interest from the flame graph.
func (r *Report) candidateRegions() []*Region {
	total := r.Profile.DDG.TotalOps
	var out []*Region
	var walk func(n *iiv.TreeNode)
	walk = func(n *iiv.TreeNode) {
		if n.TotalOps == 0 || float64(n.TotalOps) < minRegionShare*float64(total) {
			return
		}
		tOps := r.transformableOps(n)
		if tOps > 0 && float64(tOps) >= transformableShare*float64(n.TotalOps) {
			// Peel off trivial wrappers: while a single context child
			// holds essentially all of the region's work, descend into
			// it (main → the training call, etc.), but never into loops.
			node := n
			for {
				var next *iiv.TreeNode
				for _, c := range node.Children {
					if !c.Elem.IsLoop() && float64(c.TotalOps) >= 0.95*float64(node.TotalOps) {
						next = c
						break
					}
				}
				if next == nil {
					break
				}
				node = next
			}
			if reg := r.buildRegion(node); reg != nil {
				out = append(out, reg)
			}
			return // maximal: do not descend further
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(r.Profile.Tree.Root)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ops > out[j].Ops })

	// Fallback for irregular programs: no dominated subtree exists, but
	// individual transformable nests may still be worth reporting (the
	// paper reports a region for every benchmark).  The region becomes
	// the enclosing context (function body) of the hottest such nest,
	// like the hand-picked kernel regions of the paper.
	if len(out) == 0 {
		var bestNest *sched.NestTransform
		var bestOps uint64
		for _, t := range r.allTransforms {
			if !(t.OuterParallel() || t.SIMD || t.Tilable() || t.Interchange) {
				continue
			}
			inner := t.Nest.Loops[len(t.Nest.Loops)-1]
			if inner.TotalOps > bestOps {
				bestNest, bestOps = t, inner.TotalOps
			}
		}
		if bestNest != nil {
			node := bestNest.Nest.Loops[0]
			for node.Parent != nil && node.Elem.IsLoop() {
				node = node.Parent
			}
			if reg := r.buildRegion(node); reg != nil {
				out = append(out, reg)
			}
		}
	}
	return out
}

// buildRegion assembles region facts for a subtree.
func (r *Report) buildRegion(n *iiv.TreeNode) *Region {
	stmts := r.Model.StmtsUnder(n)
	if len(stmts) == 0 {
		return nil
	}
	reg := &Region{Node: n, Stmts: stmts}
	funcs := map[isa.FuncID]bool{}
	type refCand struct {
		loc  isa.SrcLoc
		ops  uint64
		line int
	}
	fileOps := map[string]uint64{}
	minLine := map[string]int{}
	for _, s := range stmts {
		reg.Ops += s.Ops
		reg.MemOps += s.MemOps
		reg.FPOps += s.FPOps
		blk := r.Profile.Prog.Block(s.S.Block)
		funcs[blk.Fn] = true
		for _, in := range s.Instrs {
			if in.Loc.File == "" {
				continue
			}
			fileOps[in.Loc.File] += in.Count
			if l, ok := minLine[in.Loc.File]; !ok || in.Loc.Line < l {
				minLine[in.Loc.File] = in.Loc.Line
			}
		}
	}
	// Prefer the region's own entry point (the call site / block that
	// roots the subtree), falling back to the dominant file's smallest
	// line — mirroring the paper's "Region" column (e.g. facetrain.c:25).
	if n.Elem.Block != isa.NoBlock && n.Elem.Loop == nil && n.Elem.Comp == nil {
		blk := r.Profile.Prog.Block(n.Elem.Block)
		if len(blk.Code) > 0 && blk.Code[0].Loc.File != "" {
			reg.CodeRef = blk.Code[0].Loc.String()
		}
	}
	if reg.CodeRef == "" {
		bestFile, bestOps := "", uint64(0)
		for f, o := range fileOps {
			if o > bestOps || (o == bestOps && f < bestFile) {
				bestFile, bestOps = f, o
			}
		}
		if bestFile != "" {
			reg.CodeRef = fmt.Sprintf("%s:%d", bestFile, minLine[bestFile])
		}
	}
	reg.Interproc = len(funcs) > 1
	if total := r.Profile.DDG.TotalOps; total > 0 {
		reg.PctOps = float64(reg.Ops) / float64(total)
	}
	reg.Transforms = r.transformsUnder(n)

	comps := r.Model.Components(n)
	reg.Components = len(comps)
	smart := r.Model.FuseComponents(comps, sched.SmartFuse)
	max := r.Model.FuseComponents(comps, sched.MaxFuse)
	// Report the heuristic the tool would pick: smartfuse unless it
	// leaves everything apart while maxfuse can merge.
	if smart == reg.Components && max < smart {
		reg.Fusion = sched.MaxFuse
		reg.FusedComponents = max
	} else {
		reg.Fusion = sched.SmartFuse
		reg.FusedComponents = smart
	}
	return reg
}

// Metrics are the per-region Table 5 numbers.
type Metrics struct {
	PctParallelOps float64 // %||ops
	PctSIMDOps     float64 // %simdops
	PctReuse       float64 // %reuse: stride-0/1 along current innermost
	PctPReuse      float64 // %Preuse: best reachable via permutation
	LdBin          int     // max observed nest depth
	LdSrc          int     // max declared source nest depth
	TileD          int     // max tilable band depth
	PctTileOps     float64 // %Tilops
	Skew           bool
}

// ComputeMetrics derives the Table 5 metrics of a region.
func (r *Report) ComputeMetrics(reg *Region) Metrics {
	var m Metrics
	var parOps, simdOps, tileOps uint64
	var reuseNum, reuseDen, preuseNum uint64
	for _, t := range reg.Transforms {
		nestOps := t.Nest.Loops[0].TotalOps
		if t.OuterParallel() {
			parOps += nestOps
		}
		if t.SIMD {
			simdOps += nestOps
		}
		if t.Tilable() {
			tileOps += nestOps
			if t.TileDepth() > m.TileD {
				m.TileD = t.TileDepth()
			}
		}
		if t.SkewUsed {
			m.Skew = true
		}
		// A tilable band with no parallel dimension only yields
		// coarse-grain parallelism through the wavefront schedule, which
		// is a skewed schedule: report it in the skew column (the
		// paper's skew=Y rows — hotspot, nw, pathfinder — are exactly
		// these DP/stencil wavefronts).
		if t.BandLen >= 2 && !anyParallel(t) {
			m.Skew = true
		}
		if d := t.Nest.Depth(); d > m.LdBin {
			m.LdBin = d
		}
		// Access-weighted reuse profile.
		num, den, pnum := nestReuse(t)
		reuseNum += num
		reuseDen += den
		preuseNum += pnum
	}
	// Several nests can share outer loops; clamp percentages at 1.
	if reg.Ops > 0 {
		m.PctParallelOps = clamp01(float64(parOps) / float64(reg.Ops))
		m.PctSIMDOps = clamp01(float64(simdOps) / float64(reg.Ops))
		m.PctTileOps = clamp01(float64(tileOps) / float64(reg.Ops))
	}
	if reuseDen > 0 {
		m.PctReuse = float64(reuseNum) / float64(reuseDen)
		m.PctPReuse = float64(preuseNum) / float64(reuseDen)
	}
	funcs := map[isa.FuncID]bool{}
	for _, s := range reg.Stmts {
		funcs[r.Profile.Prog.Block(s.S.Block).Fn] = true
	}
	for f := range funcs {
		if d := r.Profile.Prog.Func(f).SrcDepth; d > m.LdSrc {
			m.LdSrc = d
		}
	}
	if m.LdSrc < m.LdBin {
		m.LdSrc = m.LdBin
	}
	return m
}

// nestReuse returns (stride-0/1 accesses along the current innermost
// dim, total accesses, stride-0/1 accesses along the best dim).
func nestReuse(t *sched.NestTransform) (num, den, pnum uint64) {
	d := t.Nest.Depth()
	for _, s := range t.Nest.Stmts {
		for _, in := range s.Instrs {
			if !in.HasAccess() {
				continue
			}
			den += in.Count
			if in.Access.Fn == nil {
				continue
			}
			addr := in.Access.Fn.Rows[0]
			best := bestDim(t)
			for k := 0; k < d && k < len(addr.C); k++ {
				c := addr.C[k]
				ok := c == 0 || c == 1 || c == -1
				if k == d-1 && ok {
					num += in.Count
				}
				if k == best && ok {
					pnum += in.Count
				}
			}
		}
	}
	return num, den, pnum
}

// bestDim is the dimension the permutation-based reuse metric assumes
// innermost: the nest-wide best stride-profile dimension.
func bestDim(t *sched.NestTransform) int {
	best, bestV := len(t.Stride01)-1, -1.0
	for k, v := range t.Stride01 {
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}

func anyParallel(t *sched.NestTransform) bool {
	for _, p := range t.Parallel {
		if p {
			return true
		}
	}
	return false
}

func clamp01(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// Summary renders a human-readable report header.
func (r *Report) Summary() string {
	var sb strings.Builder
	p := r.Profile
	fmt.Fprintf(&sb, "program %s: %d ops (%d mem, %d fp), %.0f%% affine\n",
		p.Prog.Name, p.DDG.TotalOps, p.DDG.MemOps, p.DDG.FPOps, 100*r.PctAffine)
	if r.Best != nil {
		met := r.ComputeMetrics(r.Best)
		fmt.Fprintf(&sb, "region %s: %.0f%% ops, interproc=%v, C=%d Comp=%d fusion=%v\n",
			r.Best.CodeRef, 100*r.Best.PctOps, r.Best.Interproc,
			r.Best.Components, r.Best.FusedComponents, r.Best.Fusion)
		fmt.Fprintf(&sb, "  parallel=%.0f%% simd=%.0f%% reuse=%.0f%%->%.0f%% tile=%dD(%.0f%%) skew=%v depth(bin)=%d\n",
			100*met.PctParallelOps, 100*met.PctSIMDOps, 100*met.PctReuse, 100*met.PctPReuse,
			met.TileD, 100*met.PctTileOps, met.Skew, met.LdBin)
		for _, t := range r.Best.Transforms {
			if t.Nest.Loops[0].TotalOps*20 >= r.Best.Ops {
				fmt.Fprintf(&sb, "  nest depth %d: %s\n", t.Nest.Depth(), t.Describe())
			}
		}
	} else {
		sb.WriteString("no transformable region found\n")
	}
	return sb.String()
}
