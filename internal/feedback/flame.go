package feedback

import (
	"fmt"
	"strings"

	"polyprof/internal/iiv"
)

// FlameGraph renders the dynamic schedule tree as an SVG flame graph
// (paper Fig. 7): node width is proportional to the subtree's dynamic
// operation count, loop/call nodes are labeled, regions of interest
// (subtrees with a proposed transformation) are highlighted in warm
// colors while non-affine or uninteresting regions are grayed out.
// Every box carries a <title> tooltip with path, operation counts and
// iteration counts, like the clickable SVGs the paper ships.
func (r *Report) FlameGraph(width, rowHeight int) string {
	if width <= 0 {
		width = 1200
	}
	if rowHeight <= 0 {
		rowHeight = 18
	}
	tree := r.Profile.Tree
	total := float64(tree.TotalOps())
	if total == 0 {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>"
	}
	namer := iiv.ProgramNamer(r.Profile.Prog)

	interesting := map[*iiv.TreeNode]bool{}
	for _, reg := range r.Regions {
		if reg.hasInterestingTransform() {
			markSubtree(reg.Node, interesting)
		}
	}
	affine := map[*iiv.TreeNode]bool{}
	for _, s := range r.Model.Stmts {
		if s.Affine && s.Leaf != nil {
			affine[s.Leaf] = true
		}
	}

	maxDepth := 0
	tree.Walk(func(n *iiv.TreeNode, d int) {
		if d > maxDepth {
			maxDepth = d
		}
	})

	var sb strings.Builder
	height := (maxDepth + 1) * rowHeight
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height+rowHeight)
	fmt.Fprintf(&sb, `<rect width="100%%" height="100%%" fill="#f8f8f8"/>`+"\n")

	var emit func(n *iiv.TreeNode, depth int, x0, x1 float64)
	emit = func(n *iiv.TreeNode, depth int, x0, x1 float64) {
		w := x1 - x0
		if w < 0.5 {
			return
		}
		y := height - (depth+1)*rowHeight
		label := "all"
		kind := "root"
		if !n.IsRoot() {
			label = namer(n.Elem)
			switch {
			case n.Elem.Loop != nil:
				kind = "loop"
			case n.Elem.Comp != nil:
				kind = "rec"
			default:
				kind = "call"
			}
		}
		fill := "#cccccc" // gray: not interesting / not affine
		if interesting[n] {
			fill = "#ff9a45" // orange: region of interest
			if kind == "loop" || kind == "rec" {
				fill = "#ff6a3c"
			}
		} else if affine[n] {
			fill = "#e8c97a"
		}
		fmt.Fprintf(&sb, `<g><rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#ffffff"/>`,
			x0, y, w, rowHeight-1, fill)
		fmt.Fprintf(&sb, `<title>%s [%s] ops=%d (%.1f%%)`, escapeXML(n.Path(namer)), kind, n.TotalOps,
			100*float64(n.TotalOps)/total)
		if n.Elem.IsLoop() {
			fmt.Fprintf(&sb, ` iters=%d`, n.Iters)
		}
		sb.WriteString("</title>")
		if w > 40 {
			text := label
			if kind == "loop" || kind == "rec" {
				text += " (" + kind + ")"
			}
			maxChars := int(w / 7)
			if len(text) > maxChars && maxChars > 1 {
				text = text[:maxChars-1] + "…"
			}
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" fill="#222222">%s</text>`, x0+3, y+rowHeight-6, escapeXML(text))
		}
		sb.WriteString("</g>\n")

		x := x0
		for _, c := range n.Children {
			cw := w * float64(c.TotalOps) / float64(maxU(n.TotalOps, 1))
			emit(c, depth+1, x, x+cw)
			x += cw
		}
	}
	emit(tree.Root, 0, 0, float64(width))
	sb.WriteString("</svg>\n")
	return sb.String()
}

func markSubtree(n *iiv.TreeNode, set map[*iiv.TreeNode]bool) {
	set[n] = true
	for _, c := range n.Children {
		markSubtree(c, set)
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func escapeXML(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
