package feedback

import (
	"fmt"

	"polyprof/internal/cachesim"
	"polyprof/internal/isa"
	"polyprof/internal/poly"
	"polyprof/internal/sched"
)

// CostModel parameterizes the replay-based speedup estimator.  The
// paper measures case-study speedups on a 2x6-core Xeon; we replay the
// folded access streams of a nest through a cache simulator in both the
// original and the transformed iteration order and model parallel and
// SIMD execution by discounting the serial cycle classes.  Only the
// shape of the resulting ratios is meaningful.
type CostModel struct {
	Cache cachesim.Config

	// Cores and ParallelEff model OpenMP scaling of compute and
	// cache-hit cycles.
	Cores       int
	ParallelEff float64
	// MemPorts caps the parallel scaling of cache-miss (bandwidth
	// bound) cycles.
	MemPorts float64
	// VectorWidth and VectorEff model SIMD execution of the innermost
	// parallel loop.
	VectorWidth float64
	VectorEff   float64
	// TileSize used when replaying a tiled band.
	TileSize int64
	// MaxPoints caps replay work.
	MaxPoints int64
}

// DefaultCostModel mirrors the paper's testbed: 12 cores, SSE-width
// vectors, 32 KiB L1.
func DefaultCostModel() CostModel {
	return CostModel{
		Cache:       cachesim.DefaultL1(),
		Cores:       12,
		ParallelEff: 0.5,
		MemPorts:    3,
		VectorWidth: 4,
		VectorEff:   0.7,
		TileSize:    32,
		MaxPoints:   4 << 20,
	}
}

// Cycles decomposes a replay into cycle classes.
type Cycles struct {
	Compute uint64
	Hit     uint64
	Miss    uint64
}

// Total returns the serial cycle count.
func (c Cycles) Total() uint64 { return c.Compute + c.Hit + c.Miss }

// baseCost is the compute cost table of the model.
func baseCost(op isa.Opcode) uint64 {
	switch {
	case op == isa.FDiv, op == isa.FSqrt, op == isa.FExp, op == isa.FLog, op == isa.Div, op == isa.Mod:
		return 12
	case op.IsFP():
		return 3
	case op.IsMem():
		return 0 // accounted by the cache
	default:
		return 1
	}
}

// Speedup is the estimator's verdict for one nest.
type Speedup struct {
	Original    Cycles
	Transformed Cycles
	// Factor is original serial cycles over modeled transformed cycles.
	Factor float64
	// Parallel/SIMD record which discounts were applied.
	Parallel bool
	SIMD     bool
	Tiled    bool
}

func (s Speedup) String() string {
	return fmt.Sprintf("%.1fx (orig %d cycles, transformed %d serial; parallel=%v simd=%v tiled=%v)",
		s.Factor, s.Original.Total(), s.Transformed.Total(), s.Parallel, s.SIMD, s.Tiled)
}

// EstimateSpeedup replays one nest in original and transformed order
// and applies the parallel/SIMD discounts of the proposed
// transformation.
func (r *Report) EstimateSpeedup(t *sched.NestTransform, cm CostModel) (Speedup, error) {
	stmts := replayStmts(t)
	if len(stmts) == 0 {
		return Speedup{}, fmt.Errorf("nest has no exactly folded full-depth statements to replay")
	}
	orig, err := r.replay(stmts, t, cm, false)
	if err != nil {
		return Speedup{}, err
	}
	trans, err := r.replay(stmts, t, cm, true)
	if err != nil {
		return Speedup{}, err
	}

	s := Speedup{Original: orig, Transformed: trans, Tiled: t.BandLen >= 2}
	c := float64(trans.Compute)
	h := float64(trans.Hit)
	m := float64(trans.Miss)
	if t.SIMD {
		s.SIMD = true
		vw := cm.VectorWidth * cm.VectorEff
		c /= vw
		f := t.InnerStride01After
		h = h * (f/vw + (1 - f))
	}
	if t.OuterParallel() {
		s.Parallel = true
		p := float64(cm.Cores) * cm.ParallelEff
		c /= p
		h /= p
		m /= minF(p, cm.MemPorts)
	}
	modeled := c + h + m
	if modeled < 1 {
		modeled = 1
	}
	s.Factor = float64(orig.Total()) / modeled
	return s, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// replayStmt is one statement prepared for replay.
type replayStmt struct {
	dom    *poly.Poly
	access []poly.Expr // affine address functions
	comp   uint64      // compute cycles per point
}

func replayStmts(t *sched.NestTransform) []*replayStmt {
	d := t.Nest.Depth()
	var out []*replayStmt
	for _, s := range t.Nest.Stmts {
		if s.S.Depth != d || !s.S.Domain.Exact {
			continue
		}
		rs := &replayStmt{dom: s.S.Domain.Dom, comp: 2} // loop overhead
		for _, in := range s.Instrs {
			rs.comp += baseCost(in.Op)
			if in.HasAccess() && in.Access.Fn != nil {
				rs.access = append(rs.access, in.Access.Fn.Rows[0])
			}
		}
		out = append(out, rs)
	}
	return out
}

// replay enumerates the nest's iteration space in original or
// transformed (permuted + tiled) order, feeding every affine access to
// the cache.
func (r *Report) replay(stmts []*replayStmt, t *sched.NestTransform, cm CostModel, transformed bool) (Cycles, error) {
	cache := cachesim.New(cm.Cache)
	hitLat, missLat := cm.Cache.HitLatency, cm.Cache.MissLatency
	var cyc Cycles
	visit := func(pt []int64) bool {
		for _, s := range stmts {
			if !s.dom.Contains(pt) {
				continue
			}
			cyc.Compute += s.comp
			for _, a := range s.access {
				if lat := cache.Access(a.Eval(pt)); lat >= missLat {
					cyc.Miss += lat
				} else {
					cyc.Hit += hitLat
				}
			}
		}
		return true
	}

	d := t.Nest.Depth()
	// Bounding box over all statements.
	lo := make([]int64, d)
	hi := make([]int64, d)
	first := true
	for _, s := range stmts {
		for k := 0; k < d; k++ {
			l, h, lok, hok := s.dom.IntBounds(poly.Var(d, k))
			if !lok || !hok {
				return cyc, fmt.Errorf("unbounded replay domain")
			}
			if first {
				lo[k], hi[k] = l, h
			} else {
				if l < lo[k] {
					lo[k] = l
				}
				if h > hi[k] {
					hi[k] = h
				}
			}
		}
		first = false
	}
	var points int64 = 1
	for k := 0; k < d; k++ {
		points *= hi[k] - lo[k] + 1
		if points > cm.MaxPoints {
			return cyc, fmt.Errorf("replay domain too large (%d points)", points)
		}
	}

	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	tile := int64(0)
	if transformed {
		copy(order, t.Perm)
		if t.BandLen >= 2 {
			tile = cm.TileSize
		}
	}

	pt := make([]int64, d)
	if tile > 0 {
		// Tile loops over the band dims (in permuted order), then point
		// loops.
		bandSet := make([]bool, d)
		for i := t.BandStart; i < t.BandStart+t.BandLen; i++ {
			bandSet[t.Perm[i]] = true
		}
		var tileLoop func(i int, base []int64)
		var pointLoop func(i int, base []int64)
		pointLoop = func(i int, base []int64) {
			if i == d {
				visit(pt)
				return
			}
			k := order[i]
			l, h := lo[k], hi[k]
			if bandSet[k] {
				l = base[k]
				h = minI(h, base[k]+tile-1)
			}
			for v := l; v <= h; v++ {
				pt[k] = v
				pointLoop(i+1, base)
			}
		}
		tileLoop = func(i int, base []int64) {
			if i == d {
				pointLoop(0, base)
				return
			}
			k := order[i]
			if !bandSet[k] {
				tileLoop(i+1, base)
				return
			}
			for v := lo[k]; v <= hi[k]; v += tile {
				base[k] = v
				tileLoop(i+1, base)
			}
		}
		tileLoop(0, make([]int64, d))
		return cyc, nil
	}

	var loop func(i int)
	loop = func(i int) {
		if i == d {
			visit(pt)
			return
		}
		k := order[i]
		for v := lo[k]; v <= hi[k]; v++ {
			pt[k] = v
			loop(i + 1)
		}
	}
	loop(0)
	return cyc, nil
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
