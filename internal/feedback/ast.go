package feedback

import (
	"fmt"
	"strings"

	"polyprof/internal/sched"
)

// AnnotatedAST renders the simplified post-transformation code
// structure of a region (paper Sec. 6): the loop skeleton after
// applying the suggested schedule, decorated with parallelism, tiling
// and SIMD markers plus the statements each loop surrounds.  The paper
// exposes this so the user can judge the manual rewriting effort.
func (r *Report) AnnotatedAST(reg *Region) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "region %s (%.0f%% of program ops, %d components -> %d after %v fusion)\n",
		reg.CodeRef, 100*reg.PctOps, reg.Components, reg.FusedComponents, reg.Fusion)
	for _, t := range reg.Transforms {
		if t.Nest.Loops[0].TotalOps*50 < reg.Ops {
			continue // omit insignificant nests, as the simplified AST does
		}
		r.renderNest(&sb, t)
	}
	return sb.String()
}

func (r *Report) renderNest(sb *strings.Builder, t *sched.NestTransform) {
	d := t.Nest.Depth()
	fmt.Fprintf(sb, "// nest: %s\n", t.Describe())
	indent := 0
	write := func(format string, args ...interface{}) {
		sb.WriteString(strings.Repeat("  ", indent))
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}
	// Tile loops first when a band of depth >= 2 exists.
	if t.BandLen >= 2 {
		for i := t.BandStart; i < t.BandStart+t.BandLen; i++ {
			k := t.Perm[i]
			tag := ""
			if i == t.BandStart && t.OuterParallel() {
				tag = "  // omp parallel for (wavefront)"
			}
			write("for iT%d in tiles(i%d, 32) {%s", k, k, tag)
			indent++
		}
	}
	for i := 0; i < d; i++ {
		k := t.Perm[i]
		var tags []string
		if t.Parallel[k] {
			if i == d-1 {
				tags = append(tags, "simd")
			} else {
				tags = append(tags, "parallel")
			}
		}
		for _, st := range t.Skews[k] {
			tags = append(tags, fmt.Sprintf("skewed by %d*i%d", st.Factor, st.Base))
		}
		tag := ""
		if len(tags) > 0 {
			tag = "  // " + strings.Join(tags, ", ")
		}
		write("for i%d {%s", k, tag)
		indent++
	}
	// Statements: group by pseudo source location.
	locs := map[string]uint64{}
	for _, s := range t.Nest.Stmts {
		for _, in := range s.Instrs {
			if in.Loc.File != "" {
				locs[in.Loc.String()] += in.Count
			}
		}
	}
	for _, kv := range sortedKV(locs) {
		write("S: %s  // %d dynamic ops", kv.k, kv.v)
	}
	for indent > 0 {
		indent--
		write("}")
	}
}

type kv struct {
	k string
	v uint64
}

func sortedKV(m map[string]uint64) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].v > out[j-1].v || (out[j].v == out[j-1].v && out[j].k < out[j-1].k)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
