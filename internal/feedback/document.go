package feedback

import (
	"fmt"
	"strings"
)

// Document renders the complete textual feedback bundle for one
// profiled program — the paper ships this as its "extensive textual
// feedback" alongside the flame graph: program statistics, the region
// of interest, per-nest transformation suggestions with their metrics,
// the simplified post-transformation AST, the parameterized statement
// domains, the folded dependence listing, and replay-based speedup
// estimates.
func (r *Report) Document(cm CostModel) string {
	var sb strings.Builder
	line := strings.Repeat("=", 72)

	fmt.Fprintf(&sb, "%s\npolyprof feedback: %s\n%s\n\n", line, r.Profile.Prog.Name, line)
	p := r.Profile
	fmt.Fprintf(&sb, "dynamic operations : %d (%d memory, %d floating point)\n",
		p.DDG.TotalOps, p.DDG.MemOps, p.DDG.FPOps)
	fmt.Fprintf(&sb, "fully affine       : %.1f%% of dynamic operations\n", 100*r.PctAffine)
	fmt.Fprintf(&sb, "statements (folded): %d     dependence bundles: %d\n",
		len(p.DDG.Stmts), len(p.DDG.Deps))
	scevs := 0
	for _, in := range p.DDG.Instrs {
		if in.IsSCEV {
			scevs++
		}
	}
	fmt.Fprintf(&sb, "SCEV instructions  : %d (removed from the DDG)\n\n", scevs)

	if r.Best == nil {
		sb.WriteString("no transformable region of interest found\n")
		return sb.String()
	}
	reg := r.Best
	met := r.ComputeMetrics(reg)
	fmt.Fprintf(&sb, "--- region of interest: %s ---\n", reg.CodeRef)
	fmt.Fprintf(&sb, "share of program   : %.1f%% ops   (%.0f%% memory, %.0f%% fp within region)\n",
		100*reg.PctOps, 100*safeDiv(reg.MemOps, reg.Ops), 100*safeDiv(reg.FPOps, reg.Ops))
	fmt.Fprintf(&sb, "interprocedural    : %v\n", reg.Interproc)
	fmt.Fprintf(&sb, "parallel ops       : %.0f%%   simd ops: %.0f%%   tilable ops: %.0f%% (depth %dD)\n",
		100*met.PctParallelOps, 100*met.PctSIMDOps, 100*met.PctTileOps, met.TileD)
	fmt.Fprintf(&sb, "spatial reuse      : %.0f%% now -> %.0f%% after permutation\n",
		100*met.PctReuse, 100*met.PctPReuse)
	fmt.Fprintf(&sb, "skewing needed     : %v\n", met.Skew)
	fmt.Fprintf(&sb, "fusion structure   : %d components -> %d after %v fusion\n\n",
		reg.Components, reg.FusedComponents, reg.Fusion)

	sb.WriteString("--- suggested transformations per nest ---\n")
	for _, t := range reg.Transforms {
		nestOps := t.Nest.Loops[len(t.Nest.Loops)-1].TotalOps
		if nestOps*50 < reg.Ops {
			continue
		}
		desc := t.Describe()
		if desc == "none" {
			continue
		}
		fmt.Fprintf(&sb, "depth-%d nest (%.0f%% of region): %s\n",
			t.Nest.Depth(), 100*safeDiv(nestOps, reg.Ops), desc)
		if sp, err := r.EstimateSpeedup(t, cm); err == nil {
			fmt.Fprintf(&sb, "    estimated speedup: %s\n", sp)
		}
	}
	sb.WriteString("\n--- simplified AST after transformation ---\n")
	sb.WriteString(r.AnnotatedAST(reg))
	sb.WriteString("\n")
	sb.WriteString(r.DomainReport(reg, 0, -1))
	sb.WriteString("\n")
	sb.WriteString(r.DDGReport(reg))
	return sb.String()
}

func safeDiv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
