package feedback

import (
	"fmt"
	"sort"
	"strings"

	"polyprof/internal/poly"
)

// DomainReport lists a region's folded statement domains in the
// parameterized form the paper's back-end feeds its scheduler (Sec. 6):
// large constants become parameters annotated with their profiled
// values, one parameter per ±slack window.
func (r *Report) DomainReport(reg *Region, threshold, slack int64) string {
	if threshold <= 0 {
		threshold = poly.DefaultParamThreshold
	}
	if slack < 0 {
		slack = poly.DefaultParamSlack
	}
	type row struct {
		name string
		ops  uint64
		dom  string
	}
	var rows []row
	params := 0
	for _, s := range reg.Stmts {
		if s.S.Domain.Dom == nil || s.Ops == 0 {
			continue
		}
		pp := poly.ParameterizeConstants(s.S.Domain.Dom, threshold, slack)
		params += pp.NumParams
		tag := ""
		if !s.S.Domain.Exact {
			tag = " (approx)"
		}
		rows = append(rows, row{
			name: r.Profile.Prog.Block(s.S.Block).Name,
			ops:  s.Ops,
			dom:  pp.String() + tag,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ops != rows[j].ops {
			return rows[i].ops > rows[j].ops
		}
		return rows[i].name < rows[j].name
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "folded statement domains for region %s (%d statements, %d parameters introduced):\n",
		reg.CodeRef, len(rows), params)
	for _, rw := range rows {
		fmt.Fprintf(&sb, "  %-34s %8d ops  %s\n", rw.name, rw.ops, rw.dom)
	}
	return sb.String()
}

// DDGReport dumps the folded dynamic dependence graph of a region: the
// statements with their domains and, per dependence, the folded pieces
// (domain plus producer map) — the "complete AST / extensive textual
// feedback" the paper ships alongside the flame graph.
func (r *Report) DDGReport(reg *Region) string {
	var sb strings.Builder
	inRegion := map[int]bool{}
	for _, s := range reg.Stmts {
		inRegion[s.S.ID] = true
	}
	fmt.Fprintf(&sb, "folded DDG for region %s\n", reg.CodeRef)
	fmt.Fprintf(&sb, "statements: %d   dependencies:", len(reg.Stmts))
	deps := 0
	for _, d := range r.Profile.DDG.Deps {
		if inRegion[d.Src.Stmt.ID] && inRegion[d.Dst.Stmt.ID] {
			deps++
		}
	}
	fmt.Fprintf(&sb, " %d\n\n", deps)
	for _, d := range r.Profile.DDG.Deps {
		if !inRegion[d.Src.Stmt.ID] || !inRegion[d.Dst.Stmt.ID] {
			continue
		}
		srcBlk := r.Profile.Prog.Block(d.Src.Ref.Block)
		dstBlk := r.Profile.Prog.Block(d.Dst.Ref.Block)
		fmt.Fprintf(&sb, "%v: %s#%d -> %s#%d  (%d instances)\n",
			d.Kind, srcBlk.Name, d.Src.Ref.Index, dstBlk.Name, d.Dst.Ref.Index, d.Count)
		for _, piece := range d.Pieces {
			fmt.Fprintf(&sb, "    %s\n", piece)
		}
	}
	return sb.String()
}
