package poly

import (
	"errors"
	"fmt"
)

// ErrUnbounded is returned by Enumerate when a dimension has no finite
// bound.
var ErrUnbounded = errors.New("poly: unbounded dimension")

// Enumerate visits the polyhedron's integer points in lexicographic
// order.  The yield callback returns false to stop early (Enumerate
// then returns nil).
//
// Bounds for dimension k are derived from the constraints whose last
// referenced variable is k (the triangular form the folding stage
// produces); constraints mentioning later variables are re-checked at
// the leaves, so enumeration is exact for any polyhedron whose
// dimensions are bounded in triangular form.
func (p *Poly) Enumerate(yield func(pt []int64) bool) error {
	if p.Dim == 0 {
		// Zero-dimensional: one point if feasible.
		if p.Contains(nil) {
			yield(nil)
		}
		return nil
	}
	// Group constraints by the level at which they become fully
	// instantiated.
	byLevel := make([][]Constraint, p.Dim)
	for _, c := range p.Cs {
		lv := c.E.LastVar()
		if lv < 0 {
			// Constant constraint: feasibility test.
			if (c.Eq && c.E.K != 0) || (!c.Eq && c.E.K < 0) {
				return nil // trivially empty
			}
			continue
		}
		byLevel[lv] = append(byLevel[lv], c)
	}
	pt := make([]int64, p.Dim)
	stopped := false
	var rec func(k int) error
	rec = func(k int) error {
		if k == p.Dim {
			if !yield(pt) {
				stopped = true
			}
			return nil
		}
		lo, hi, loOK, hiOK := levelBounds(byLevel[k], k, pt)
		if !loOK || !hiOK {
			return fmt.Errorf("%w: x%d", ErrUnbounded, k)
		}
		step, base := p.strideFor(k, pt)
		for v := alignUp(lo, base, step); v <= hi && !stopped; v += step {
			pt[k] = v
			if !levelFeasible(byLevel[k], k, pt) {
				continue
			}
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// levelBounds computes [lo, hi] for x_k from constraints whose last
// variable is k, given the fixed prefix pt[0:k].
func levelBounds(cs []Constraint, k int, pt []int64) (lo, hi int64, loOK, hiOK bool) {
	for _, c := range cs {
		a := c.E.C[k]
		// rest = evaluation of the constraint with x_k = 0.
		rest := c.E.K
		for i := 0; i < k; i++ {
			rest += c.E.C[i] * pt[i]
		}
		if c.Eq {
			// a*x + rest == 0 -> x = -rest/a when divisible.
			if rest%a != 0 {
				return 0, -1, true, true // empty range
			}
			v := -rest / a
			if !loOK || v > lo {
				lo, loOK = v, true
			}
			if !hiOK || v < hi {
				hi, hiOK = v, true
			}
			continue
		}
		if a > 0 { // x >= ceil(-rest/a)
			b := ceilDiv(-rest, a)
			if !loOK || b > lo {
				lo, loOK = b, true
			}
		} else { // a < 0: x <= floor(rest/-a)
			b := floorDiv(rest, -a)
			if !hiOK || b < hi {
				hi, hiOK = b, true
			}
		}
	}
	return lo, hi, loOK, hiOK
}

// levelFeasible re-checks the level's equality constraints at the
// chosen value (inequalities are honored by construction of the range,
// but equalities with several solutions per level need the exact
// check).
func levelFeasible(cs []Constraint, k int, pt []int64) bool {
	for _, c := range cs {
		v := c.E.K
		for i := 0; i <= k; i++ {
			v += c.E.C[i] * pt[i]
		}
		if c.Eq && v != 0 {
			return false
		}
		if !c.Eq && v < 0 {
			return false
		}
	}
	return true
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 { return -floorDiv(-a, b) }
