// Package poly is the integer linear-algebra substrate of polyprof: a
// compact replacement for the subset of ISL the paper's tool-chain
// relies on.  It provides affine expressions and maps over iteration
// coordinates, polyhedra defined by affine equalities/inequalities,
// emptiness testing and bound queries via Fourier–Motzkin elimination,
// and lexicographic enumeration of integer points for the replay-based
// cost model.
package poly

import (
	"fmt"
	"math/big"
	"strings"
)

// Expr is an affine expression  C[0]*x0 + ... + C[d-1]*x_{d-1} + K.
type Expr struct {
	C []int64
	K int64
}

// NewExpr returns the zero expression of the given dimensionality.
func NewExpr(dim int) Expr { return Expr{C: make([]int64, dim)} }

// Const returns a constant expression of the given dimensionality.
func Const(dim int, k int64) Expr {
	e := NewExpr(dim)
	e.K = k
	return e
}

// Var returns the expression x_i in dim dimensions.
func Var(dim, i int) Expr {
	e := NewExpr(dim)
	e.C[i] = 1
	return e
}

// Dim returns the expression's dimensionality.
func (e Expr) Dim() int { return len(e.C) }

// Clone returns a deep copy.
func (e Expr) Clone() Expr {
	return Expr{C: append([]int64(nil), e.C...), K: e.K}
}

// Eval evaluates the expression at an integer point.
func (e Expr) Eval(pt []int64) int64 {
	v := e.K
	for i, c := range e.C {
		v += c * pt[i]
	}
	return v
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	r := e.Clone()
	for i := range r.C {
		r.C[i] += o.C[i]
	}
	r.K += o.K
	return r
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr {
	r := e.Clone()
	for i := range r.C {
		r.C[i] -= o.C[i]
	}
	r.K -= o.K
	return r
}

// Scale returns s*e.
func (e Expr) Scale(s int64) Expr {
	r := e.Clone()
	for i := range r.C {
		r.C[i] *= s
	}
	r.K *= s
	return r
}

// Neg returns -e.
func (e Expr) Neg() Expr { return e.Scale(-1) }

// IsConst reports whether every variable coefficient is zero.
func (e Expr) IsConst() bool {
	for _, c := range e.C {
		if c != 0 {
			return false
		}
	}
	return true
}

// LastVar returns the highest index with a nonzero coefficient, or -1.
func (e Expr) LastVar() int {
	for i := len(e.C) - 1; i >= 0; i-- {
		if e.C[i] != 0 {
			return i
		}
	}
	return -1
}

// Equal reports structural equality.
func (e Expr) Equal(o Expr) bool {
	if e.K != o.K || len(e.C) != len(o.C) {
		return false
	}
	for i := range e.C {
		if e.C[i] != o.C[i] {
			return false
		}
	}
	return true
}

// String renders the expression over variables named by names (default
// i0, i1, ...).
func (e Expr) String() string { return e.Render(nil) }

// Render renders the expression with custom variable names.
func (e Expr) Render(names []string) string {
	var sb strings.Builder
	first := true
	for i, c := range e.C {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("i%d", i)
		if names != nil && i < len(names) {
			name = names[i]
		}
		switch {
		case first && c == 1:
			sb.WriteString(name)
		case first && c == -1:
			sb.WriteString("-" + name)
		case first:
			fmt.Fprintf(&sb, "%d%s", c, name)
		case c == 1:
			sb.WriteString(" + " + name)
		case c == -1:
			sb.WriteString(" - " + name)
		case c > 0:
			fmt.Fprintf(&sb, " + %d%s", c, name)
		default:
			fmt.Fprintf(&sb, " - %d%s", -c, name)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&sb, "%d", e.K)
	case e.K > 0:
		fmt.Fprintf(&sb, " + %d", e.K)
	case e.K < 0:
		fmt.Fprintf(&sb, " - %d", -e.K)
	}
	return sb.String()
}

// Map is an affine function from InDim coordinates to len(Rows)
// coordinates.
type Map struct {
	InDim int
	Rows  []Expr
}

// NewMap creates a zero map.
func NewMap(inDim, outDim int) Map {
	m := Map{InDim: inDim, Rows: make([]Expr, outDim)}
	for i := range m.Rows {
		m.Rows[i] = NewExpr(inDim)
	}
	return m
}

// Identity returns the identity map in dim dimensions.
func Identity(dim int) Map {
	m := NewMap(dim, dim)
	for i := range m.Rows {
		m.Rows[i].C[i] = 1
	}
	return m
}

// OutDim returns the output dimensionality.
func (m Map) OutDim() int { return len(m.Rows) }

// Apply evaluates the map at a point, appending to buf.
func (m Map) Apply(pt []int64, buf []int64) []int64 {
	for _, r := range m.Rows {
		buf = append(buf, r.Eval(pt))
	}
	return buf
}

// Equal reports structural equality.
func (m Map) Equal(o Map) bool {
	if m.InDim != o.InDim || len(m.Rows) != len(o.Rows) {
		return false
	}
	for i := range m.Rows {
		if !m.Rows[i].Equal(o.Rows[i]) {
			return false
		}
	}
	return true
}

// String renders the map, e.g. "(i0, i1) -> (i0, i1 - 1)".
func (m Map) String() string {
	ins := make([]string, m.InDim)
	for i := range ins {
		ins[i] = fmt.Sprintf("i%d", i)
	}
	outs := make([]string, len(m.Rows))
	for i, r := range m.Rows {
		outs[i] = r.String()
	}
	return "(" + strings.Join(ins, ",") + ") -> (" + strings.Join(outs, ",") + ")"
}

// rat is a convenience wrapper around big.Rat used by the elimination
// routines (exact arithmetic keeps Fourier–Motzkin sound regardless of
// coefficient growth).
func ratFromInt(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }
