package poly

import (
	"fmt"
	"strings"
)

// Parameterized is a polyhedron whose leading dimensions are symbolic
// parameters with known (profiled) values — the paper's Sec. 6
// scalability device: large integer constants cause combinatorial
// blow-up in ILP-based schedulers, so domains like {[i] : 0 <= i < 1024}
// are rewritten as [n] -> {[i] : 0 <= i < n ∧ n = 1024} before
// scheduling, reusing one parameter for every constant within a slack
// window around its value.
type Parameterized struct {
	// NumParams leading dimensions of P are parameters; the remaining
	// dimensions are the original iterators.
	NumParams int
	// Values holds the profiled constant bound to each parameter.
	Values []int64
	// P is the lifted polyhedron over (params..., iterators...).
	P *Poly
}

// DefaultParamThreshold is the constant magnitude above which
// parameterization kicks in.
const DefaultParamThreshold = 64

// DefaultParamSlack is the paper's s: constants within ±s of an
// existing parameter's value reuse it (they set s = 20).
const DefaultParamSlack = 20

// ParameterizeConstants lifts every constraint constant of magnitude
// >= threshold into a parameter dimension, reusing parameters for
// constants within ±slack of an existing parameter's value.
func ParameterizeConstants(p *Poly, threshold, slack int64) *Parameterized {
	pp := &Parameterized{}
	var paramOf func(k int64) (idx int, delta int64)
	paramOf = func(k int64) (int, int64) {
		for i, v := range pp.Values {
			d := k - v
			if d >= -slack && d <= slack {
				return i, d
			}
		}
		pp.Values = append(pp.Values, k)
		return len(pp.Values) - 1, 0
	}

	type lifted struct {
		paramIdx  int
		paramSign int64
		delta     int64
		c         Constraint
	}
	var rows []lifted
	for _, c := range p.Cs {
		l := lifted{paramIdx: -1, c: c}
		k := c.E.K
		mag := k
		if mag < 0 {
			mag = -mag
		}
		if mag >= threshold {
			sign := int64(1)
			if k < 0 {
				sign = -1
			}
			idx, delta := paramOf(mag)
			l.paramIdx, l.paramSign, l.delta = idx, sign, sign*delta
		}
		rows = append(rows, l)
	}

	np := len(pp.Values)
	pp.NumParams = np
	dim := np + p.Dim
	q := NewPoly(dim)
	q.Approx = p.Approx
	for _, l := range rows {
		e := NewExpr(dim)
		copy(e.C[np:], l.c.E.C)
		if l.paramIdx >= 0 {
			e.C[l.paramIdx] = l.paramSign
			e.K = l.delta
		} else {
			e.K = l.c.E.K
		}
		q.Cs = append(q.Cs, Constraint{E: e, Eq: l.c.Eq})
	}
	pp.P = q
	return pp
}

// Substitute plugs the profiled parameter values back in, recovering a
// polyhedron over the original iterators (inverse of the lifting).
func (pp *Parameterized) Substitute() *Poly {
	iter := pp.P.Dim - pp.NumParams
	out := NewPoly(iter)
	out.Approx = pp.P.Approx
	for _, c := range pp.P.Cs {
		e := NewExpr(iter)
		copy(e.C, c.E.C[pp.NumParams:])
		e.K = c.E.K
		for i := 0; i < pp.NumParams; i++ {
			e.K += c.E.C[i] * pp.Values[i]
		}
		out.Cs = append(out.Cs, Constraint{E: e, Eq: c.Eq})
	}
	return out
}

// String renders the parameterized domain in the paper's notation, e.g.
// "[n0] -> { [i0] : i0 >= 0 and n0 - i0 - 1 >= 0 and n0 = 1024 }".
func (pp *Parameterized) String() string {
	np := pp.NumParams
	iter := pp.P.Dim - np
	names := make([]string, pp.P.Dim)
	params := make([]string, np)
	for i := 0; i < np; i++ {
		names[i] = fmt.Sprintf("n%d", i)
		params[i] = names[i]
	}
	vars := make([]string, iter)
	for i := 0; i < iter; i++ {
		names[np+i] = fmt.Sprintf("i%d", i)
		vars[i] = names[np+i]
	}
	var parts []string
	for _, c := range pp.P.Cs {
		op := ">="
		if c.Eq {
			op = "=="
		}
		parts = append(parts, fmt.Sprintf("%s %s 0", c.E.Render(names), op))
	}
	for i, v := range pp.Values {
		parts = append(parts, fmt.Sprintf("n%d = %d", i, v))
	}
	prefix := ""
	if np > 0 {
		prefix = "[" + strings.Join(params, ",") + "] -> "
	}
	return fmt.Sprintf("%s{ [%s] : %s }", prefix, strings.Join(vars, ","), strings.Join(parts, " and "))
}
