package poly

import (
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"
)

// Constraint is an affine constraint: E >= 0, or E == 0 when Eq.
type Constraint struct {
	E  Expr
	Eq bool
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.Eq {
		return c.E.String() + " == 0"
	}
	return c.E.String() + " >= 0"
}

// Poly is a convex integer polyhedron: the integer points satisfying a
// conjunction of affine constraints.
type Poly struct {
	Dim int
	Cs  []Constraint

	// StrideCs are optional lattice constraints (stride extension; see
	// stride.go).
	StrideCs []StrideConstraint

	// Approx marks polyhedra produced by over-approximation (bounding
	// boxes around irregular point sets); dependence analysis treats
	// their affine maps as unreliable.
	Approx bool
}

// NewPoly creates an unconstrained polyhedron (the whole Z^dim).
func NewPoly(dim int) *Poly { return &Poly{Dim: dim} }

// Clone returns a deep copy.
func (p *Poly) Clone() *Poly {
	q := &Poly{Dim: p.Dim, Approx: p.Approx, Cs: make([]Constraint, len(p.Cs))}
	for i, c := range p.Cs {
		q.Cs[i] = Constraint{E: c.E.Clone(), Eq: c.Eq}
	}
	for _, sc := range p.StrideCs {
		q.StrideCs = append(q.StrideCs, StrideConstraint{Var: sc.Var, Step: sc.Step, Base: sc.Base.Clone()})
	}
	return q
}

// Add appends a constraint E >= 0.
func (p *Poly) Add(e Expr) *Poly {
	p.Cs = append(p.Cs, Constraint{E: e})
	return p
}

// AddEq appends a constraint E == 0.
func (p *Poly) AddEq(e Expr) *Poly {
	p.Cs = append(p.Cs, Constraint{E: e, Eq: true})
	return p
}

// AddRange constrains lo <= x_i <= hi with constant bounds.
func (p *Poly) AddRange(i int, lo, hi int64) *Poly {
	e := Var(p.Dim, i)
	p.Add(e.Sub(Const(p.Dim, lo))) // x_i - lo >= 0
	p.Add(Const(p.Dim, hi).Sub(e)) // hi - x_i >= 0
	return p
}

// AddLowerExpr constrains x_i >= e.
func (p *Poly) AddLowerExpr(i int, e Expr) *Poly {
	return p.Add(Var(p.Dim, i).Sub(e))
}

// AddUpperExpr constrains x_i <= e.
func (p *Poly) AddUpperExpr(i int, e Expr) *Poly {
	return p.Add(e.Sub(Var(p.Dim, i)))
}

// Contains reports whether the point satisfies every affine and
// lattice constraint.
func (p *Poly) Contains(pt []int64) bool {
	for _, c := range p.Cs {
		v := c.E.Eval(pt)
		if c.Eq && v != 0 {
			return false
		}
		if !c.Eq && v < 0 {
			return false
		}
	}
	return p.strideOK(pt)
}

// ratConstraint is a constraint over rationals used during elimination.
type ratConstraint struct {
	c  []*big.Rat // coefficients
	k  *big.Rat
	eq bool
}

func (p *Poly) ratConstraints() []ratConstraint {
	out := make([]ratConstraint, 0, len(p.Cs))
	for _, c := range p.Cs {
		rc := ratConstraint{c: make([]*big.Rat, p.Dim), k: ratFromInt(c.E.K), eq: c.Eq}
		for i, v := range c.E.C {
			rc.c[i] = ratFromInt(v)
		}
		out = append(out, rc)
	}
	return out
}

// eliminate removes variable v from the rational system by
// Fourier–Motzkin (equalities are used for substitution first).
func eliminate(cs []ratConstraint, v int) []ratConstraint {
	// Substitution via an equality that mentions v, if any.
	for idx, c := range cs {
		if !c.eq || c.c[v].Sign() == 0 {
			continue
		}
		// v = -(k + sum_{j!=v} cj xj) / cv
		out := make([]ratConstraint, 0, len(cs)-1)
		cv := c.c[v]
		for j, o := range cs {
			if j == idx {
				continue
			}
			if o.c[v].Sign() == 0 {
				out = append(out, o)
				continue
			}
			// o' = o - (o_v / c_v) * c
			f := new(big.Rat).Quo(o.c[v], cv)
			n := ratConstraint{c: make([]*big.Rat, len(o.c)), k: new(big.Rat), eq: o.eq}
			for i := range o.c {
				n.c[i] = new(big.Rat).Sub(o.c[i], new(big.Rat).Mul(f, c.c[i]))
			}
			n.k.Sub(o.k, new(big.Rat).Mul(f, c.k))
			out = append(out, n)
		}
		return out
	}

	var lower, upper, rest []ratConstraint // lower: c_v > 0 (v >= ...), upper: c_v < 0
	for _, c := range cs {
		switch c.c[v].Sign() {
		case 0:
			rest = append(rest, c)
		case 1:
			lower = append(lower, c)
		default:
			upper = append(upper, c)
		}
	}
	for _, lo := range lower {
		for _, hi := range upper {
			// lo: a*v + L >= 0  (v >= -L/a, a>0)
			// hi: -b*v + U >= 0 (v <= U/b, b>0 where hi.c[v] = -b)
			// combine: b*L + a*U >= 0  i.e. (-hi.c[v])*lo + lo.c[v]*hi
			a := lo.c[v]
			b := new(big.Rat).Neg(hi.c[v])
			n := ratConstraint{c: make([]*big.Rat, len(lo.c)), k: new(big.Rat)}
			for i := range lo.c {
				n.c[i] = new(big.Rat).Add(
					new(big.Rat).Mul(b, lo.c[i]),
					new(big.Rat).Mul(a, hi.c[i]),
				)
			}
			n.k.Add(new(big.Rat).Mul(b, lo.k), new(big.Rat).Mul(a, hi.k))
			rest = append(rest, n)
		}
	}
	return rest
}

// IsEmpty reports whether the polyhedron has no rational points (a
// sound, slightly conservative stand-in for integer emptiness; the
// polyhedra polyprof folds are dense, so the two coincide in practice).
func (p *Poly) IsEmpty() bool {
	cs := p.ratConstraints()
	for v := 0; v < p.Dim; v++ {
		cs = eliminate(cs, v)
	}
	for _, c := range cs {
		s := c.k.Sign()
		if c.eq && s != 0 {
			return true
		}
		if !c.eq && s < 0 {
			return true
		}
	}
	return false
}

// Bounds returns the rational minimum and maximum of e over the
// polyhedron.  loOK/hiOK are false when the respective side is
// unbounded (or the polyhedron is empty, in which case both are false).
func (p *Poly) Bounds(e Expr) (lo, hi *big.Rat, loOK, hiOK bool) {
	if p.IsEmpty() {
		return nil, nil, false, false
	}
	// Add t - e == 0 with t as an extra variable, then eliminate all
	// original variables; the remaining constraints bound t.
	dim := p.Dim
	cs := make([]ratConstraint, 0, len(p.Cs)+1)
	for _, c := range p.Cs {
		rc := ratConstraint{c: make([]*big.Rat, dim+1), k: ratFromInt(c.E.K), eq: c.Eq}
		for i, v := range c.E.C {
			rc.c[i] = ratFromInt(v)
		}
		rc.c[dim] = new(big.Rat)
		cs = append(cs, rc)
	}
	teq := ratConstraint{c: make([]*big.Rat, dim+1), k: ratFromInt(-e.K), eq: true}
	for i := 0; i < dim; i++ {
		teq.c[i] = ratFromInt(-e.C[i])
	}
	teq.c[dim] = ratFromInt(1)
	cs = append(cs, teq)

	for v := 0; v < dim; v++ {
		cs = eliminate(cs, v)
	}
	for _, c := range cs {
		cv := c.c[dim]
		s := cv.Sign()
		switch {
		case c.eq && s != 0:
			// t == -k/cv exactly.
			val := new(big.Rat).Quo(new(big.Rat).Neg(c.k), cv)
			return val, new(big.Rat).Set(val), true, true
		case s > 0: // cv*t + k >= 0 -> t >= -k/cv
			b := new(big.Rat).Quo(new(big.Rat).Neg(c.k), cv)
			if !loOK || b.Cmp(lo) > 0 {
				lo, loOK = b, true
			}
		case s < 0: // t <= -k/cv
			b := new(big.Rat).Quo(new(big.Rat).Neg(c.k), cv)
			if !hiOK || b.Cmp(hi) < 0 {
				hi, hiOK = b, true
			}
		}
	}
	return lo, hi, loOK, hiOK
}

// IntBounds returns integer (floor/ceil) bounds of e over the
// polyhedron, with ok flags as in Bounds.
func (p *Poly) IntBounds(e Expr) (lo, hi int64, loOK, hiOK bool) {
	rlo, rhi, lok, hok := p.Bounds(e)
	if lok {
		lo = ceilRat(rlo)
	}
	if hok {
		hi = floorRat(rhi)
	}
	return lo, hi, lok, hok
}

func floorRat(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && new(big.Int).Mul(q, r.Denom()).Cmp(r.Num()) != 0 {
		q.Sub(q, big.NewInt(1))
	}
	return q.Int64()
}

func ceilRat(r *big.Rat) int64 {
	return -floorRat(new(big.Rat).Neg(r))
}

// PointCount returns the exact number of integer points when the
// polyhedron can be enumerated, capped at limit (returns limit and
// false if the cap is hit or enumeration fails).
func (p *Poly) PointCount(limit int64) (int64, bool) {
	var n int64
	err := p.Enumerate(func([]int64) bool {
		n++
		return n < limit
	})
	if err != nil || n >= limit {
		return n, false
	}
	return n, true
}

// String renders the polyhedron in ISL-like syntax:
// "{ [i0,i1] : 0 <= i0 and ... }".
func (p *Poly) String() string {
	vars := make([]string, p.Dim)
	for i := range vars {
		vars[i] = fmt.Sprintf("i%d", i)
	}
	parts := make([]string, len(p.Cs))
	for i, c := range p.Cs {
		op := ">="
		if c.Eq {
			op = "=="
		}
		parts[i] = fmt.Sprintf("%s %s 0", c.E.Render(vars), op)
	}
	for _, sc := range p.StrideCs {
		parts = append(parts, sc.String())
	}
	tag := ""
	if p.Approx {
		tag = " approx"
	}
	return fmt.Sprintf("{ [%s]%s : %s }", strings.Join(vars, ","), tag, strings.Join(parts, " and "))
}

// SortConstraints orders constraints deterministically (useful for
// golden tests).
func (p *Poly) SortConstraints() {
	sort.SliceStable(p.Cs, func(i, j int) bool {
		return p.Cs[i].String() < p.Cs[j].String()
	})
}

// BoxVolume returns the product of per-dimension extents using integer
// bounds; it over-estimates the point count for non-box polyhedra and
// returns false when any dimension is unbounded.
func (p *Poly) BoxVolume() (int64, bool) {
	vol := int64(1)
	for i := 0; i < p.Dim; i++ {
		lo, hi, lok, hok := p.IntBounds(Var(p.Dim, i))
		if !lok || !hok || hi < lo {
			return 0, false
		}
		ext := hi - lo + 1
		if vol > math.MaxInt64/max64(ext, 1) {
			return math.MaxInt64, true
		}
		vol *= ext
	}
	return vol, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
