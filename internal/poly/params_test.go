package poly

import (
	"strings"
	"testing"
)

func TestParameterizeConstants(t *testing.T) {
	// { [i] : 0 <= i < 1024 }
	p := NewPoly(1)
	p.AddRange(0, 0, 1023)
	pp := ParameterizeConstants(p, 64, 20)
	if pp.NumParams != 1 || pp.Values[0] != 1023 {
		t.Fatalf("params = %v, want one parameter valued 1023", pp.Values)
	}
	s := pp.String()
	for _, want := range []string{"[n0] -> ", "n0 = 1023"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
	// Substituting the profiled values must recover the original set.
	back := pp.Substitute()
	if !back.IsSubsetOf(p) || !p.IsSubsetOf(back) {
		t.Errorf("substitution does not round-trip: %v vs %v", back, p)
	}
}

// TestParameterReuseWithinSlack: constants within ±s share a parameter
// (the paper sets s = 20 to bound the parameter count).
func TestParameterReuseWithinSlack(t *testing.T) {
	p := NewPoly(2)
	p.AddRange(0, 0, 1023)
	p.AddRange(1, 0, 1040) // within 20 of 1023: reuses n0
	pp := ParameterizeConstants(p, 64, 20)
	if pp.NumParams != 1 {
		t.Fatalf("got %d parameters, want 1 (reuse within slack): %v", pp.NumParams, pp.Values)
	}
	back := pp.Substitute()
	if !back.IsSubsetOf(p) || !p.IsSubsetOf(back) {
		t.Errorf("substitution does not round-trip after reuse")
	}
}

func TestParameterizeDistantConstants(t *testing.T) {
	p := NewPoly(2)
	p.AddRange(0, 0, 1023)
	p.AddRange(1, 0, 4096) // far from 1023: new parameter
	pp := ParameterizeConstants(p, 64, 20)
	if pp.NumParams != 2 {
		t.Fatalf("got %d parameters, want 2: %v", pp.NumParams, pp.Values)
	}
}

func TestSmallConstantsStayInline(t *testing.T) {
	p := NewPoly(1)
	p.AddRange(0, 0, 15)
	pp := ParameterizeConstants(p, 64, 20)
	if pp.NumParams != 0 {
		t.Fatalf("small constants must not be parameterized: %v", pp.Values)
	}
	if strings.Contains(pp.String(), "->") {
		t.Errorf("parameter-free set must render without a prefix: %s", pp.String())
	}
}

func TestParameterizeNegativeConstant(t *testing.T) {
	// i >= -2048 (constant appears with K = +2048 in i + 2048 >= 0, and
	// i <= -100 gives K = -100).
	p := NewPoly(1)
	p.Add(Var(1, 0).Add(Const(1, 2048)))      // i >= -2048
	p.Add(Var(1, 0).Neg().Sub(Const(1, 100))) // -i - 100 >= 0, i.e. i <= -100
	pp := ParameterizeConstants(p, 64, 20)
	back := pp.Substitute()
	if !back.IsSubsetOf(p) || !p.IsSubsetOf(back) {
		t.Errorf("negative-constant round trip failed:\n  orig %v\n  back %v", p, back)
	}
}
