package poly

import (
	"testing"
	"testing/quick"
)

func box(lo0, hi0, lo1, hi1 int64) *Poly {
	p := NewPoly(2)
	p.AddRange(0, lo0, hi0)
	p.AddRange(1, lo1, hi1)
	return p
}

func TestIntersect(t *testing.T) {
	a := box(0, 10, 0, 10)
	b := box(5, 15, 5, 15)
	i := a.Intersect(b)
	if !i.Contains([]int64{7, 7}) || i.Contains([]int64{2, 2}) || i.Contains([]int64{12, 12}) {
		t.Errorf("intersection wrong: %v", i)
	}
	if n, _ := i.PointCount(1000); n != 36 {
		t.Errorf("intersection has %d points, want 36", n)
	}
}

func TestIsSubsetOf(t *testing.T) {
	inner := box(2, 4, 2, 4)
	outer := box(0, 10, 0, 10)
	if !inner.IsSubsetOf(outer) {
		t.Error("inner box must be a subset")
	}
	if outer.IsSubsetOf(inner) {
		t.Error("outer box must not be a subset of inner")
	}
	if !inner.IsSubsetOf(inner) {
		t.Error("subset must be reflexive")
	}
	// Triangle inside its bounding box.
	tri := NewPoly(2)
	tri.AddRange(0, 0, 5)
	tri.Add(Var(2, 1))
	tri.Add(Var(2, 0).Sub(Var(2, 1)))
	if !tri.IsSubsetOf(box(0, 5, 0, 5)) {
		t.Error("triangle must be inside its bounding box")
	}
	if box(0, 5, 0, 5).IsSubsetOf(tri) {
		t.Error("box is not inside the triangle")
	}
	// Empty set is a subset of anything.
	empty := box(5, 1, 0, 0)
	if !empty.IsSubsetOf(tri) {
		t.Error("empty set must be a subset")
	}
}

func TestDisjointFrom(t *testing.T) {
	a := box(0, 3, 0, 3)
	b := box(5, 8, 5, 8)
	if !a.DisjointFrom(b) {
		t.Error("separated boxes must be disjoint")
	}
	if a.DisjointFrom(box(3, 5, 3, 5)) {
		t.Error("touching boxes share a point")
	}
}

func TestTranslate(t *testing.T) {
	a := box(0, 3, 0, 3)
	b := a.Translate([]int64{10, -2})
	if !b.Contains([]int64{10, -2}) || !b.Contains([]int64{13, 1}) || b.Contains([]int64{0, 0}) {
		t.Errorf("translate wrong: %v", b)
	}
}

func TestImage(t *testing.T) {
	a := box(0, 3, 0, 3)
	m := NewMap(2, 1)
	m.Rows[0] = Var(2, 0).Add(Var(2, 1)) // i+j
	img := a.Image(m)
	lo, hi, lok, hok := img.IntBounds(Var(1, 0))
	if !lok || !hok || lo != 0 || hi != 6 {
		t.Errorf("image bounds [%d,%d], want [0,6]", lo, hi)
	}
}

func TestCompose(t *testing.T) {
	// g: (i,j) -> (j, i+1); m: (a,b) -> (a+b)
	g := NewMap(2, 2)
	g.Rows[0] = Var(2, 1)
	g.Rows[1] = Var(2, 0).Add(Const(2, 1))
	m := NewMap(2, 1)
	m.Rows[0] = Var(2, 0).Add(Var(2, 1))
	comp := m.Compose(g)
	// (i,j) -> j + i + 1
	got := comp.Rows[0]
	if got.C[0] != 1 || got.C[1] != 1 || got.K != 1 {
		t.Errorf("composition = %v, want i + j + 1", got)
	}
}

// TestSubsetMatchesEnumeration: property test against brute force.
func TestSubsetMatchesEnumeration(t *testing.T) {
	f := func(alo, aext, blo, bext uint8) bool {
		a := box(int64(alo%6), int64(alo%6)+int64(aext%5), 0, 3)
		b := box(int64(blo%6), int64(blo%6)+int64(bext%5), 0, 3)
		want := true
		_ = a.Enumerate(func(pt []int64) bool {
			if !b.Contains(pt) {
				want = false
				return false
			}
			return true
		})
		return a.IsSubsetOf(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
