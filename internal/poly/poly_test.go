package poly

import (
	"math/big"
	"reflect"
	"testing"
	"testing/quick"
)

func TestExprEvalAndArith(t *testing.T) {
	e := NewExpr(2)
	e.C[0], e.C[1], e.K = 2, -1, 3 // 2i - j + 3
	if got := e.Eval([]int64{4, 5}); got != 6 {
		t.Errorf("Eval = %d, want 6", got)
	}
	f := Var(2, 1) // j
	sum := e.Add(f)
	if got := sum.Eval([]int64{4, 5}); got != 11 {
		t.Errorf("Add.Eval = %d, want 11", got)
	}
	if got := e.Sub(f).Eval([]int64{4, 5}); got != 1 {
		t.Errorf("Sub.Eval = %d, want 1", got)
	}
	if got := e.Scale(-2).Eval([]int64{4, 5}); got != -12 {
		t.Errorf("Scale.Eval = %d, want -12", got)
	}
	if e.IsConst() || !Const(2, 7).IsConst() {
		t.Errorf("IsConst wrong")
	}
	if e.LastVar() != 1 || Const(2, 7).LastVar() != -1 {
		t.Errorf("LastVar wrong")
	}
}

func TestPolyContains(t *testing.T) {
	// Triangle 0 <= j <= i <= 3.
	p := NewPoly(2)
	p.AddRange(0, 0, 3)
	p.Add(Var(2, 1))                // j >= 0
	p.Add(Var(2, 0).Sub(Var(2, 1))) // i - j >= 0
	cases := []struct {
		pt []int64
		in bool
	}{
		{[]int64{0, 0}, true},
		{[]int64{3, 3}, true},
		{[]int64{3, 4}, false},
		{[]int64{-1, 0}, false},
		{[]int64{2, 1}, true},
		{[]int64{4, 0}, false},
	}
	for _, c := range cases {
		if got := p.Contains(c.pt); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.pt, got, c.in)
		}
	}
}

func TestIsEmpty(t *testing.T) {
	p := NewPoly(1)
	p.AddRange(0, 5, 3) // 5 <= x <= 3: empty
	if !p.IsEmpty() {
		t.Errorf("want empty")
	}
	q := NewPoly(1)
	q.AddRange(0, 3, 5)
	if q.IsEmpty() {
		t.Errorf("want non-empty")
	}
	// x == 2 and x >= 3: empty via equality substitution.
	r := NewPoly(1)
	r.AddEq(Var(1, 0).Sub(Const(1, 2)))
	r.Add(Var(1, 0).Sub(Const(1, 3)))
	if !r.IsEmpty() {
		t.Errorf("want empty with equality")
	}
	// 2D projection case: 0<=i<=10, j == i, j >= 11: empty.
	s := NewPoly(2)
	s.AddRange(0, 0, 10)
	s.AddEq(Var(2, 1).Sub(Var(2, 0)))
	s.Add(Var(2, 1).Sub(Const(2, 11)))
	if !s.IsEmpty() {
		t.Errorf("want empty 2D")
	}
}

func TestBounds(t *testing.T) {
	// Triangle 0 <= j <= i <= 7: bounds of i - j over it are [0, 7];
	// bounds of i + j are [0, 14].
	p := NewPoly(2)
	p.AddRange(0, 0, 7)
	p.Add(Var(2, 1))
	p.Add(Var(2, 0).Sub(Var(2, 1)))

	lo, hi, lok, hok := p.IntBounds(Var(2, 0).Sub(Var(2, 1)))
	if !lok || !hok || lo != 0 || hi != 7 {
		t.Errorf("i-j bounds = [%d,%d] ok=%v/%v, want [0,7]", lo, hi, lok, hok)
	}
	lo, hi, lok, hok = p.IntBounds(Var(2, 0).Add(Var(2, 1)))
	if !lok || !hok || lo != 0 || hi != 14 {
		t.Errorf("i+j bounds = [%d,%d], want [0,14]", lo, hi)
	}
	// Unbounded direction.
	q := NewPoly(1)
	q.Add(Var(1, 0)) // x >= 0
	_, _, lok, hok = q.IntBounds(Var(1, 0))
	if !lok || hok {
		t.Errorf("x >= 0: lower ok=%v upper ok=%v, want true/false", lok, hok)
	}
}

func TestEnumerateTriangle(t *testing.T) {
	p := NewPoly(2)
	p.AddRange(0, 0, 2)
	p.Add(Var(2, 1))
	p.Add(Var(2, 0).Sub(Var(2, 1)))
	var pts [][]int64
	if err := p.Enumerate(func(pt []int64) bool {
		pts = append(pts, append([]int64(nil), pt...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{0, 0}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {2, 2}}
	if !reflect.DeepEqual(pts, want) {
		t.Errorf("points = %v, want %v", pts, want)
	}
	if n, exact := p.PointCount(100); n != 6 || !exact {
		t.Errorf("PointCount = %d exact=%v, want 6 true", n, exact)
	}
}

func TestEnumerateWithEquality(t *testing.T) {
	// Diagonal of a 4x4 box.
	p := NewPoly(2)
	p.AddRange(0, 0, 3)
	p.AddRange(1, 0, 3)
	p.AddEq(Var(2, 1).Sub(Var(2, 0)))
	var n int
	if err := p.Enumerate(func(pt []int64) bool {
		if pt[0] != pt[1] {
			t.Errorf("off-diagonal point %v", pt)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("got %d diagonal points, want 4", n)
	}
}

func TestEnumerateUnbounded(t *testing.T) {
	p := NewPoly(1)
	p.Add(Var(1, 0))
	err := p.Enumerate(func([]int64) bool { return true })
	if err == nil {
		t.Fatal("want ErrUnbounded")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	p := NewPoly(1)
	p.AddRange(0, 0, 1000)
	n := 0
	if err := p.Enumerate(func([]int64) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("visited %d, want 5", n)
	}
}

func TestMapApply(t *testing.T) {
	m := NewMap(2, 2)
	m.Rows[0] = Var(2, 0)
	m.Rows[1] = Var(2, 1).Sub(Const(2, 1))
	got := m.Apply([]int64{3, 5}, nil)
	if !reflect.DeepEqual(got, []int64{3, 4}) {
		t.Errorf("Apply = %v, want [3 4]", got)
	}
	if !Identity(2).Equal(Identity(2)) || Identity(2).Equal(m) {
		t.Errorf("Map.Equal wrong")
	}
}

// TestBoundsMatchEnumeration is a property test: for random triangular
// polyhedra, the FM bounds of a random expression must equal the
// min/max over enumerated points.
func TestBoundsMatchEnumeration(t *testing.T) {
	f := func(a, b, c int8, lo0, ext0, ext1 uint8) bool {
		p := NewPoly(2)
		l0 := int64(lo0 % 8)
		p.AddRange(0, l0, l0+int64(ext0%6))
		p.AddRange(1, 0, int64(ext1%6))
		e := NewExpr(2)
		e.C[0], e.C[1], e.K = int64(a%5), int64(b%5), int64(c)

		minV, maxV := int64(1<<62), int64(-1<<62)
		if err := p.Enumerate(func(pt []int64) bool {
			v := e.Eval(pt)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			return true
		}); err != nil {
			return false
		}
		lo, hi, lok, hok := p.IntBounds(e)
		return lok && hok && lo == minV && hi == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRatRounding(t *testing.T) {
	cases := []struct {
		num, den int64
		fl, ce   int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
	}
	for _, c := range cases {
		r := big.NewRat(c.num, c.den)
		if got := floorRat(r); got != c.fl {
			t.Errorf("floor(%d/%d) = %d, want %d", c.num, c.den, got, c.fl)
		}
		if got := ceilRat(r); got != c.ce {
			t.Errorf("ceil(%d/%d) = %d, want %d", c.num, c.den, got, c.ce)
		}
	}
	if floorDiv(-7, 2) != -4 || floorDiv(7, 2) != 3 || ceilDiv(-7, 2) != -3 || ceilDiv(7, 2) != 4 {
		t.Errorf("integer floor/ceil division wrong")
	}
}

func TestPolyString(t *testing.T) {
	p := NewPoly(2)
	p.AddRange(0, 0, 15)
	s := p.String()
	if s == "" || s[0] != '{' {
		t.Errorf("bad rendering: %q", s)
	}
}
