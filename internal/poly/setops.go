package poly

// Intersect returns the conjunction of two polyhedra of equal
// dimensionality.
func (p *Poly) Intersect(q *Poly) *Poly {
	if p.Dim != q.Dim {
		panic("poly: Intersect dimension mismatch")
	}
	r := p.Clone()
	r.Approx = p.Approx || q.Approx
	for _, c := range q.Cs {
		r.Cs = append(r.Cs, Constraint{E: c.E.Clone(), Eq: c.Eq})
	}
	return r
}

// IsSubsetOf reports whether every rational point of p satisfies q's
// constraints (sound for the dense integer polyhedra the folder
// produces).  For each constraint c of q it checks that p ∧ ¬c is
// empty; equalities are split into two inequalities.
func (p *Poly) IsSubsetOf(q *Poly) bool {
	if p.Dim != q.Dim {
		return false
	}
	if p.IsEmpty() {
		return true
	}
	for _, c := range q.Cs {
		if c.Eq {
			// p must satisfy c.E == 0 everywhere: both strict violations
			// must be infeasible.
			if !p.violationEmpty(c.E) || !p.violationEmpty(c.E.Neg()) {
				return false
			}
			continue
		}
		if !p.violationEmpty(c.E) {
			return false
		}
	}
	return true
}

// violationEmpty checks that p ∧ (e < 0) is empty, using the integer
// tightening e <= -1.
func (p *Poly) violationEmpty(e Expr) bool {
	viol := p.Clone()
	// e < 0 over integers: e <= -1, i.e. -e - 1 >= 0.
	viol.Add(e.Neg().Sub(Const(p.Dim, 1)))
	return viol.IsEmpty()
}

// DisjointFrom reports whether the two polyhedra share no rational
// point.
func (p *Poly) DisjointFrom(q *Poly) bool {
	return p.Intersect(q).IsEmpty()
}

// Translate returns the polyhedron shifted by the integer vector off
// (every point x becomes x + off).
func (p *Poly) Translate(off []int64) *Poly {
	r := p.Clone()
	for i := range r.Cs {
		// c(x - off) >= 0 for the shifted set.
		for k, o := range off {
			r.Cs[i].E.K -= r.Cs[i].E.C[k] * o
		}
	}
	return r
}

// Image computes a bounding polyhedron of the affine image m(p): exact
// when m is invertible over the rationals is not required — the result
// constrains each output coordinate by the FM bounds of its defining
// expression, which suffices for the reporting uses in this package.
func (p *Poly) Image(m Map) *Poly {
	out := NewPoly(m.OutDim())
	out.Approx = p.Approx
	for i, row := range m.Rows {
		lo, hi, lok, hok := p.Bounds(row)
		if lok {
			e := Var(out.Dim, i)
			e.K = -ceilRat(lo)
			out.Add(e) // x_i >= ceil(lo)
		}
		if hok {
			e := Var(out.Dim, i).Neg()
			e.K = floorRat(hi)
			out.Add(e) // x_i <= floor(hi)
		}
	}
	return out
}

// Compose returns m ∘ g (apply g first, then m).
func (m Map) Compose(g Map) Map {
	if m.InDim != g.OutDim() {
		panic("poly: Compose dimension mismatch")
	}
	out := NewMap(g.InDim, m.OutDim())
	for i, row := range m.Rows {
		e := Const(g.InDim, row.K)
		for j, c := range row.C {
			if c != 0 {
				e = e.Add(g.Rows[j].Scale(c))
			}
		}
		out.Rows[i] = e
	}
	return out
}
