package poly

import "fmt"

// StrideConstraint restricts a dimension to a lattice:
// (x_Var - Base(x)) ≡ 0 (mod Step), with Base an affine expression of
// the outer dimensions (typically the dimension's lower bound).  This
// is the "lattice" support the paper lists as a folding limitation
// (Sec. 8: hand-linearized loops with non-unit steps are not recognized
// as fully affine); polyprof implements it as an extension.
type StrideConstraint struct {
	Var  int
	Step int64
	Base Expr
}

// AddStride attaches a lattice constraint to dimension v.
func (p *Poly) AddStride(v int, step int64, base Expr) *Poly {
	if step <= 1 {
		return p
	}
	p.StrideCs = append(p.StrideCs, StrideConstraint{Var: v, Step: step, Base: base.Clone()})
	return p
}

// strideOK checks the lattice constraints at a full point.
func (p *Poly) strideOK(pt []int64) bool {
	for _, sc := range p.StrideCs {
		d := pt[sc.Var] - sc.Base.Eval(pt)
		if d%sc.Step != 0 {
			return false
		}
	}
	return true
}

// strideFor returns the lattice step and base value for dimension k
// given the fixed prefix (1 when dense).  Lattice bases only reference
// outer dimensions, so the prefix suffices.
func (p *Poly) strideFor(k int, pt []int64) (step int64, base int64) {
	for _, sc := range p.StrideCs {
		if sc.Var == k {
			return sc.Step, sc.Base.Eval(pt)
		}
	}
	return 1, 0
}

// alignUp returns the smallest v >= lo with v ≡ base (mod step).
func alignUp(lo, base, step int64) int64 {
	if step <= 1 {
		return lo
	}
	d := (lo - base) % step
	if d < 0 {
		d += step
	}
	if d == 0 {
		return lo
	}
	return lo + step - d
}

// LatticePointCount counts integer points honoring strides (same
// contract as PointCount).
func (p *Poly) LatticePointCount(limit int64) (int64, bool) {
	return p.PointCount(limit)
}

// String rendering of stride constraints.
func (sc StrideConstraint) String() string {
	return fmt.Sprintf("(i%d - (%s)) mod %d == 0", sc.Var, sc.Base, sc.Step)
}
