package cachesim

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{LineWords: 4, Sets: 2, Ways: 2, HitLatency: 1, MissLatency: 10}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(small())
	if lat := c.Access(0); lat != 10 {
		t.Errorf("first access latency %d, want miss (10)", lat)
	}
	if lat := c.Access(1); lat != 1 {
		t.Errorf("same-line access latency %d, want hit (1)", lat)
	}
	if lat := c.Access(3); lat != 1 {
		t.Errorf("line covers 4 words; latency %d, want hit", lat)
	}
	if lat := c.Access(4); lat != 10 {
		t.Errorf("next line must miss, got %d", lat)
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small())
	// Three distinct lines mapping to set 0 (line numbers 0, 2, 4 with 2
	// sets: set = line & 1, so lines 0, 2, 4 all hit set 0) in a 2-way
	// set: the third evicts the least recently used (line 0).
	c.Access(0)  // line 0 -> set 0
	c.Access(8)  // line 2 -> set 0
	c.Access(16) // line 4 -> set 0, evicts line 0
	if lat := c.Access(8); lat != 1 {
		t.Errorf("line 2 should still be cached")
	}
	if lat := c.Access(0); lat != 10 {
		t.Errorf("line 0 should have been evicted")
	}
}

func TestReset(t *testing.T) {
	c := New(small())
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("counters survive reset")
	}
	if lat := c.Access(0); lat != 10 {
		t.Error("contents survive reset")
	}
}

func TestMissRate(t *testing.T) {
	c := New(small())
	if c.MissRate() != 0 {
		t.Error("empty cache must report 0 miss rate")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate %g, want 0.5", got)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{LineWords: 0, Sets: 2, Ways: 1},
		{LineWords: 3, Sets: 2, Ways: 1},
		{LineWords: 4, Sets: 3, Ways: 1},
		{LineWords: 4, Sets: 2, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// TestSequentialScanMissRate: a long sequential scan misses exactly once
// per line.
func TestSequentialScanMissRate(t *testing.T) {
	c := New(DefaultL1())
	words := int64(c.Config().LineWords * 1000)
	for a := int64(0); a < words; a++ {
		c.Access(a)
	}
	if c.Misses() != 1000 {
		t.Errorf("misses = %d, want 1000 (one per line)", c.Misses())
	}
}

// TestAccessAlwaysReturnsConfiguredLatency is a property test.
func TestAccessAlwaysReturnsConfiguredLatency(t *testing.T) {
	c := New(small())
	f := func(addr uint16) bool {
		lat := c.Access(int64(addr))
		return lat == 1 || lat == 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
