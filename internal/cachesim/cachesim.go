// Package cachesim provides a small set-associative cache simulator.
//
// The paper measures case-study speedups on a Xeon testbed; we have no
// hardware, so polyprof's feedback stage estimates cycle counts by
// replaying memory access streams (original and transformed iteration
// order) through this model.  Only the *shape* of the resulting speedups
// matters (who wins, roughly by how much), which a classic LRU cache
// plus flat miss latency reproduces for locality transformations.
package cachesim

// Config parameterizes a cache level.  Addresses are word indices (one
// word = 8 bytes), matching the VM's memory model.
type Config struct {
	LineWords int // words per cache line (power of two)
	Sets      int // number of sets (power of two)
	Ways      int // associativity

	HitLatency  uint64 // cycles for a hit
	MissLatency uint64 // cycles for a miss (memory access)
}

// DefaultL1 models a small L1-like cache: 8-word (64 B) lines, 64 sets,
// 8 ways = 32 KiB.
func DefaultL1() Config {
	return Config{LineWords: 8, Sets: 64, Ways: 8, HitLatency: 4, MissLatency: 60}
}

// Cache is a set-associative LRU cache.
type Cache struct {
	cfg      Config
	lineBits uint
	setMask  int64

	// tags[set*ways+way] holds the line tag; order[set*ways+way] holds
	// LRU ranks (smaller = more recently used).
	tags  []int64
	stamp []uint64
	clock uint64

	hits, misses uint64
}

// New creates a cache; panics on non-positive or non-power-of-two
// geometry (configuration is static, so this is a programming error).
func New(cfg Config) *Cache {
	if cfg.LineWords <= 0 || cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("cachesim: non-positive geometry")
	}
	if cfg.LineWords&(cfg.LineWords-1) != 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("cachesim: LineWords and Sets must be powers of two")
	}
	c := &Cache{cfg: cfg, setMask: int64(cfg.Sets - 1)}
	for w := cfg.LineWords; w > 1; w >>= 1 {
		c.lineBits++
	}
	n := cfg.Sets * cfg.Ways
	c.tags = make([]int64, n)
	c.stamp = make([]uint64, n)
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Reset empties the cache and clears counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
		c.stamp[i] = 0
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}

// Access simulates one access to the given word address and returns the
// latency in cycles.
func (c *Cache) Access(addr int64) uint64 {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	c.clock++

	victim, oldest := base, c.stamp[base]
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.tags[i] == line {
			c.stamp[i] = c.clock
			c.hits++
			return c.cfg.HitLatency
		}
		if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.misses++
	c.tags[victim] = line
	c.stamp[victim] = c.clock
	return c.cfg.MissLatency
}

// Hits returns the number of hits since the last Reset.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses since the last Reset.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses / accesses (0 when no accesses happened).
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
