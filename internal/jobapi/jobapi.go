// Package jobapi is the lease protocol between a polyprof coordinator
// (the serve daemon owning the WAL-backed job store) and stateless
// remote workers (`polyprof work`).  The coordinator stays the sole
// source of truth; workers only ever hold a lease — job id, attempt,
// fencing token, TTL — and everything they send back is validated
// against the store's current lease under the token, so a worker
// killed, partitioned, or resurrected as a zombie can never corrupt
// job state (see internal/jobstore's lease invariants and DESIGN.md).
//
// Wire surface (all JSON):
//
//	POST /v1/leases                  claim a ready job   → 201 Grant | 204
//	PUT  /v1/leases/{id}             heartbeat/extend    → 200 Lease | 409 | 410
//	POST /v1/leases/{id}/checkpoint  commit a streaming
//	                                 epoch checkpoint    → 200 | 409 | 410
//	POST /v1/leases/{id}/result      report the attempt  → 200 | 409 | 410
//
// 409 means fenced — the presented token no longer owns the job (the
// lease expired and was reclaimed, the coordinator restarted, or the
// job already reached a terminal state); 410 means the job is gone
// (deleted or never existed).  Both are terminal for the worker's
// attempt: drop the work and acquire a fresh lease.
package jobapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"polyprof/internal/faultinject"
	"polyprof/internal/jobstore"
)

// Network-shaped fault points, hit on the worker side before each
// request leaves: partition fires for every call (arm sticky with
// count -1 to hold the partition), the per-call points target one
// protocol step.
var (
	partitionFault = faultinject.Point("jobapi.partition")
	acquireFault   = faultinject.Point("jobapi.acquire")
	heartbeatFault = faultinject.Point("jobapi.heartbeat")
	resultFault    = faultinject.Point("jobapi.result")
)

// AcquireRequest is the body of POST /v1/leases.
type AcquireRequest struct {
	// Worker names the claiming worker (diagnostics; shows up in the
	// job's lease view, trace, and reclaim logs).
	Worker string `json:"worker"`
	// TTLNS requests a lease TTL in nanoseconds; zero takes the
	// coordinator's default.  The coordinator clamps either way.
	TTLNS int64 `json:"ttl_ns,omitempty"`
}

// Grant is the 201 body of a successful claim: the lease (token
// included — it travels only to the granted worker) and the full job
// to execute.  For a streaming job with a committed epoch checkpoint,
// the checkpoint rides along so the worker resumes from it instead of
// starting at event zero.
type Grant struct {
	Lease      *jobstore.Lease         `json:"lease"`
	Job        *jobstore.Job           `json:"job"`
	Checkpoint *jobstore.JobCheckpoint `json:"checkpoint,omitempty"`
}

// HeartbeatRequest is the body of PUT /v1/leases/{id}.
type HeartbeatRequest struct {
	Token uint64 `json:"token"`
	// TTLNS extends the lease by this much (zero keeps the granted
	// TTL).
	TTLNS int64 `json:"ttl_ns,omitempty"`
}

// CheckpointRequest is the body of POST /v1/leases/{id}/checkpoint:
// a streaming attempt commits one epoch checkpoint under its fencing
// token.  A 200 means the coordinator fsynced it — the epoch is
// committed and any later attempt (local or remote) resumes from it.
type CheckpointRequest struct {
	Token   uint64 `json:"token"`
	Attempt int    `json:"attempt,omitempty"`
	Epoch   uint64 `json:"epoch"`
	Events  uint64 `json:"events"`
	// Data is the serialized core.Checkpoint (opaque to the protocol).
	Data []byte `json:"data"`
}

// ResultRequest is the body of POST /v1/leases/{id}/result: exactly
// one of Result (the attempt produced a report) or Error (it failed)
// is set, plus the lifecycle trace events the attempt generated
// remotely so the coordinator's persisted trace stays complete.
type ResultRequest struct {
	Token       uint64                `json:"token"`
	Result      *jobstore.Result      `json:"result,omitempty"`
	Error       *jobstore.JobError    `json:"error,omitempty"`
	TraceEvents []jobstore.TraceEvent `json:"trace_events,omitempty"`
}

// ResultResponse acknowledges a result post with the job's new state.
type ResultResponse struct {
	State jobstore.State `json:"state"`
}

// Client-side error taxonomy, mirroring the coordinator's HTTP
// semantics.
var (
	// ErrNoJob: the coordinator had no ready job (204).
	ErrNoJob = errors.New("jobapi: no ready job")
	// ErrFenced: the token no longer owns the job (409) — reclaimed,
	// coordinator restarted, or the job is already terminal.
	ErrFenced = errors.New("jobapi: fenced")
	// ErrGone: the job was deleted or never existed (410).
	ErrGone = errors.New("jobapi: job gone")
)

// StatusError is any other non-2xx coordinator response.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("jobapi: coordinator returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// Transient reports whether the error is worth retrying against the
// coordinator: network failures and 5xx/429 are; fencing, gone, and
// client errors are not.
func Transient(err error) bool {
	if errors.Is(err, ErrFenced) || errors.Is(err, ErrGone) || errors.Is(err, ErrNoJob) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == http.StatusTooManyRequests
	}
	return true // transport-level failure
}

// Client speaks the lease protocol to one coordinator.
type Client struct {
	// Base is the coordinator's base URL (e.g. http://host:8080).
	Base string
	// Worker names this worker on every claim.
	Worker string
	// HTTP is the underlying client (default http.DefaultClient with a
	// 30s timeout guard per call supplied by the caller's context).
	HTTP *http.Client
}

// Acquire claims a ready job.  ErrNoJob when the queue is empty.
func (c *Client) Acquire(ctx context.Context, ttl time.Duration) (*Grant, error) {
	if err := acquireFault.Hit(); err != nil {
		return nil, err
	}
	var g Grant
	err := c.do(ctx, http.MethodPost, "/v1/leases", &AcquireRequest{
		Worker: c.Worker, TTLNS: int64(ttl),
	}, &g)
	if err != nil {
		return nil, err
	}
	if g.Lease == nil || g.Job == nil {
		return nil, &StatusError{Code: http.StatusOK, Body: "grant missing lease or job"}
	}
	return &g, nil
}

// Heartbeat extends the lease.  ErrFenced/ErrGone mean the worker no
// longer owns the job and must abandon the attempt.
func (c *Client) Heartbeat(ctx context.Context, jobID string, token uint64, ttl time.Duration) (*jobstore.Lease, error) {
	if err := heartbeatFault.Hit(); err != nil {
		return nil, err
	}
	var ls jobstore.Lease
	err := c.do(ctx, http.MethodPut, "/v1/leases/"+jobID, &HeartbeatRequest{
		Token: token, TTLNS: int64(ttl),
	}, &ls)
	if err != nil {
		return nil, err
	}
	return &ls, nil
}

// Checkpoint commits one streaming epoch checkpoint under the fencing
// token.  Returning nil means the coordinator committed (fsynced) it.
func (c *Client) Checkpoint(ctx context.Context, jobID string, req *CheckpointRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+jobID+"/checkpoint", req, nil)
}

// Report posts the attempt's terminal outcome under the fencing token.
func (c *Client) Report(ctx context.Context, jobID string, req *ResultRequest) (*ResultResponse, error) {
	if err := resultFault.Hit(); err != nil {
		return nil, err
	}
	var rr ResultResponse
	if err := c.do(ctx, http.MethodPost, "/v1/leases/"+jobID+"/result", req, &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// do sends one JSON request and decodes the JSON response, mapping the
// protocol statuses onto the error taxonomy.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	if err := partitionFault.Hit(); err != nil {
		// The partition swallows the request before it reaches the wire —
		// to the worker this is a transport failure, not a protocol error.
		return fmt.Errorf("jobapi: partitioned: %w", err)
	}
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("jobapi: encoding %s %s: %w", method, path, err)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.Base, "/")+path, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("jobapi: %s %s: %w", method, path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Protocol bodies are small (the largest is a Grant carrying a
	// program); a hostile coordinator still cannot balloon the worker.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return fmt.Errorf("jobapi: reading %s %s response: %w", method, path, err)
	}
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return ErrNoJob
	case resp.StatusCode == http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrFenced, strings.TrimSpace(string(raw)))
	case resp.StatusCode == http.StatusGone:
		return fmt.Errorf("%w: %s", ErrGone, strings.TrimSpace(string(raw)))
	case resp.StatusCode < 200 || resp.StatusCode >= 300:
		return &StatusError{Code: resp.StatusCode, Body: string(raw)}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("jobapi: decoding %s %s response: %w", method, path, err)
	}
	return nil
}
