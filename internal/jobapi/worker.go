package jobapi

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"polyprof/internal/jobexec"
	"polyprof/internal/jobstore"
	"polyprof/internal/progress"
)

// WorkerOptions tunes a remote worker process.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Name identifies this worker on claims (default "<host>:<pid>").
	Name string
	// Slots bounds concurrently leased attempts (default 2).
	Slots int
	// LeaseTTL is the requested lease TTL; zero takes the
	// coordinator's default.  Heartbeats fire every TTL/3.
	LeaseTTL time.Duration
	// Poll is the idle sleep between claim attempts when the queue is
	// empty (default 500ms, jittered).
	Poll time.Duration
	// Exec configures each attempt (budgets, timeout, parallel engine);
	// Exec.Tracker is ignored — the worker wires its own.
	Exec jobexec.Options
	// Logf receives one line per lifecycle event (nil to disable).
	Logf func(format string, args ...any)
}

// Worker claims jobs from a coordinator and runs them with the shared
// attempt runner.  It holds no durable state: killing it at any point
// loses nothing — the coordinator reclaims its leases after TTL and
// re-queues the jobs.
type Worker struct {
	opts   WorkerOptions
	client *Client
}

// NewWorker builds a worker; Run starts it.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Slots <= 0 {
		opts.Slots = 2
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	return &Worker{
		opts:   opts,
		client: &Client{Base: opts.Coordinator, Worker: opts.Name},
	}
}

// Name returns the worker's claim identity.
func (w *Worker) Name() string { return w.opts.Name }

// Run claims and executes jobs until ctx cancels, then drains: leased
// attempts are canceled (context cancellation classifies as retryable,
// so the coordinator re-queues them) and their failure results are
// still posted on a short grace context so the coordinator learns
// immediately instead of waiting out the TTL.
func (w *Worker) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for i := 0; i < w.opts.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.loop(ctx, slot)
		}(i)
	}
	wg.Wait()
}

// loop is one claim slot: acquire, execute, report, repeat.
func (w *Worker) loop(ctx context.Context, slot int) {
	idleBackoff := w.opts.Poll
	for ctx.Err() == nil {
		grant, err := w.client.Acquire(ctx, w.opts.LeaseTTL)
		switch {
		case err == nil:
			idleBackoff = w.opts.Poll
			w.runAttempt(ctx, grant)
			continue
		case errors.Is(err, ErrNoJob):
			idleBackoff = w.opts.Poll
		case ctx.Err() != nil:
			return
		default:
			// Coordinator unreachable (restarting, partitioned): back off
			// up to 5s and keep polling — workers outlive coordinator
			// restarts by construction.
			w.logf("jobapi: worker %s: acquire failed: %v (retrying in %s)", w.opts.Name, err, idleBackoff)
			if idleBackoff < 5*time.Second {
				idleBackoff *= 2
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(jitter(idleBackoff)):
		}
	}
}

// runAttempt executes one leased job: heartbeats keep the lease alive
// while the attempt runs, stage transitions accumulate as trace events
// to ship with the result, and the terminal outcome is posted under
// the fencing token.
func (w *Worker) runAttempt(ctx context.Context, grant *Grant) {
	job, lease := grant.Job, grant.Lease
	w.logf("jobapi: worker %s: leased %s (%s) attempt %d token %d ttl %s",
		w.opts.Name, job.ID, job.Name(), lease.Attempt, lease.Token, lease.TTL)

	// attemptCtx cancels the pipeline when the worker shuts down or —
	// via the heartbeat loop — when the coordinator fences us: a worker
	// that lost its lease must stop burning CPU on a job someone else
	// now owns.
	attemptCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		evMu   sync.Mutex
		events []jobstore.TraceEvent
	)
	tr := &progress.Tracker{}
	tr.OnStage(func(stage string, total uint64) {
		evMu.Lock()
		events = append(events, jobstore.TraceEvent{
			At: time.Now().UTC(), Event: jobstore.TraceStage, Stage: stage,
			Attempt: lease.Attempt, Detail: "worker " + w.opts.Name,
		})
		evMu.Unlock()
	})

	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeat(attemptCtx, cancel, job.ID, lease)
	}()

	exec := w.opts.Exec
	exec.Tracker = tr
	// Streaming wiring is the worker's own (caller-supplied hooks are
	// ignored like Exec.Tracker): the epoch grid comes from the job
	// spec, checkpoints commit through the coordinator's lease-fenced
	// endpoint, and a resume is shipped home as a trace event.  No
	// provisional hook — remote attempts skip the per-epoch render;
	// live subscribers are served by the coordinator.
	exec.EpochEvents = job.EpochEvents
	// The optimize stage is part of the job spec, so a leased attempt
	// runs it exactly like a local one.
	exec.Optimize = job.Optimize
	exec.Checkpoints = nil
	exec.OnProvisional = nil
	exec.OnResume = nil
	if job.EpochEvents > 0 {
		exec.Checkpoints = &remoteCheckpoints{
			worker: w, ctx: attemptCtx, jobID: job.ID, lease: lease, grant: grant.Checkpoint,
		}
		exec.OnResume = func(epoch, epochEvents uint64) {
			w.logf("jobapi: worker %s: %s attempt %d resumes from committed epoch %d (%d events)",
				w.opts.Name, job.ID, lease.Attempt, epoch, epochEvents)
			evMu.Lock()
			events = append(events, jobstore.TraceEvent{
				At: time.Now().UTC(), Event: jobstore.TraceResume, Attempt: lease.Attempt,
				Detail: fmt.Sprintf("worker %s resumed from committed epoch %d (%d events)",
					w.opts.Name, epoch, epochEvents),
			})
			evMu.Unlock()
		}
	}
	res, _, runErr := jobexec.Run(attemptCtx, job, lease.Attempt, exec)
	cancel() // stop heartbeating before the result post races a renewal
	hbWG.Wait()

	req := &ResultRequest{Token: lease.Token}
	if runErr != nil {
		req.Error = jobstore.NewJobError(runErr, lease.Attempt, res.SpanID)
	} else {
		req.Result = res
	}
	evMu.Lock()
	req.TraceEvents = events
	evMu.Unlock()
	w.report(ctx, job.ID, lease, req)
}

// heartbeat renews the lease every TTL/3 until the attempt ends.  A
// fenced or gone response cancels the attempt — the coordinator
// reclaimed the job and this worker is now a zombie for it.  Transport
// errors are tolerated: the next tick retries, and if the partition
// outlives the TTL the coordinator reclaims (which the worker then
// learns from the fenced response).
func (w *Worker) heartbeat(ctx context.Context, cancel context.CancelFunc, jobID string, lease *jobstore.Lease) {
	ttl := lease.TTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		_, err := w.client.Heartbeat(ctx, jobID, lease.Token, ttl)
		switch {
		case err == nil:
		case errors.Is(err, ErrFenced), errors.Is(err, ErrGone):
			w.logf("jobapi: worker %s: fenced on heartbeat for %s (token %d): %v — abandoning attempt",
				w.opts.Name, jobID, lease.Token, err)
			cancel()
			return
		case ctx.Err() != nil:
			return
		default:
			w.logf("jobapi: worker %s: heartbeat for %s failed: %v (lease expires %s)",
				w.opts.Name, jobID, err, lease.ExpiresAt.Format(time.RFC3339))
		}
	}
}

// report posts the attempt outcome, retrying transient failures —
// the coordinator keeps the lease alive on its side if its WAL append
// failed, so a retried post is safe.  Fenced/gone end the retries: the
// job moved on without us.  The post survives worker shutdown via a
// grace context so a drained worker still reports its canceled
// attempts promptly.
func (w *Worker) report(ctx context.Context, jobID string, lease *jobstore.Lease, req *ResultRequest) {
	postCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 15*time.Second)
	defer cancel()
	backoff := 200 * time.Millisecond
	for {
		rr, err := w.client.Report(postCtx, jobID, req)
		switch {
		case err == nil:
			status := "failed attempt"
			if req.Result != nil {
				status = "result"
			}
			w.logf("jobapi: worker %s: posted %s for %s (token %d) -> %s",
				w.opts.Name, status, jobID, req.Token, rr.State)
			return
		case errors.Is(err, ErrFenced), errors.Is(err, ErrGone):
			w.logf("jobapi: worker %s: result for %s fenced (token %d): %v — dropping (another attempt owns it)",
				w.opts.Name, jobID, req.Token, err)
			return
		case !Transient(err), postCtx.Err() != nil:
			w.logf("jobapi: worker %s: result for %s not delivered: %v — coordinator will reclaim after TTL",
				w.opts.Name, jobID, err)
			return
		default:
			w.logf("jobapi: worker %s: result post for %s failed: %v (retrying in %s)",
				w.opts.Name, jobID, err, backoff)
			select {
			case <-postCtx.Done():
				return
			case <-time.After(jitter(backoff)):
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// remoteCheckpoints backs jobexec's CheckpointStore over the lease
// protocol: Save is a fenced POST to the coordinator (200 = the epoch
// is fsynced there), Load replays the checkpoint that rode along with
// the grant.  Transport blips are retried briefly; a fenced or gone
// response fails the save — the attempt no longer owns the job, and
// failing the epoch is what stops it from burning CPU for a dead
// lease.
type remoteCheckpoints struct {
	worker *Worker
	ctx    context.Context
	jobID  string
	lease  *jobstore.Lease
	grant  *jobstore.JobCheckpoint
}

func (rc *remoteCheckpoints) Save(epoch, events uint64, data []byte) error {
	req := &CheckpointRequest{
		Token: rc.lease.Token, Attempt: rc.lease.Attempt,
		Epoch: epoch, Events: events, Data: data,
	}
	backoff := 200 * time.Millisecond
	for tries := 0; ; tries++ {
		err := rc.worker.client.Checkpoint(rc.ctx, rc.jobID, req)
		switch {
		case err == nil:
			return nil
		case !Transient(err), rc.ctx.Err() != nil, tries >= 2:
			return fmt.Errorf("committing epoch %d for %s: %w", epoch, rc.jobID, err)
		}
		rc.worker.logf("jobapi: worker %s: checkpoint post for %s failed: %v (retrying in %s)",
			rc.worker.opts.Name, rc.jobID, err, backoff)
		select {
		case <-rc.ctx.Done():
			return rc.ctx.Err()
		case <-time.After(jitter(backoff)):
		}
		backoff *= 2
	}
}

func (rc *remoteCheckpoints) Load() ([]byte, bool) {
	if rc.grant == nil || len(rc.grant.Data) == 0 {
		return nil, false
	}
	return rc.grant.Data, true
}

// jitter spreads a delay ±25% so a fleet of workers does not poll in
// lockstep.
func jitter(d time.Duration) time.Duration {
	return d*3/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}
