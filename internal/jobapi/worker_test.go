package jobapi_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"polyprof/internal/faultinject"
	"polyprof/internal/jobapi"
	"polyprof/internal/jobexec"
	"polyprof/internal/jobstore"
	"polyprof/internal/obs"
	"polyprof/internal/serve"
)

// startCoordinator runs a serve.Server with zero local pool workers —
// jobs only complete through the lease API.
func startCoordinator(t *testing.T, opts serve.Options) *httptest.Server {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	opts.Workers = -1
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func submitWorkload(t *testing.T, ts *httptest.Server, query string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %q = %d: %s", query, resp.StatusCode, body)
	}
	var sum jobstore.JobSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	return sum.ID
}

func getJob(t *testing.T, ts *httptest.Server, id string) *jobstore.Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s = %d: %s", id, resp.StatusCode, body)
	}
	var j jobstore.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	return &j
}

func waitState(t *testing.T, ts *httptest.Server, id string, want jobstore.State, timeout time.Duration) *jobstore.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := getJob(t, ts, id)
		if j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s): %+v", id, j.State, want, j)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerEndToEnd: a remote worker drains a coordinator's queue and
// two runs of the same workload produce byte-identical reports — the
// remote path preserves the pipeline's determinism.
func TestWorkerEndToEnd(t *testing.T) {
	ts := startCoordinator(t, serve.Options{})
	a := submitWorkload(t, ts, "workload=example1")
	b := submitWorkload(t, ts, "workload=example1&nocache=1")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := jobapi.NewWorker(jobapi.WorkerOptions{
		Coordinator: ts.URL,
		Name:        "e2e",
		Slots:       2,
		Poll:        25 * time.Millisecond,
		Exec:        jobexec.Options{Timeout: 30 * time.Second},
		Logf:        t.Logf,
	})
	done := make(chan struct{})
	go func() { w.Run(ctx); close(done) }()

	ja := waitState(t, ts, a, jobstore.StateSucceeded, 30*time.Second)
	jb := waitState(t, ts, b, jobstore.StateSucceeded, 30*time.Second)
	cancel()
	<-done

	if ja.Attempts != 1 || jb.Attempts != 1 {
		t.Fatalf("attempts = %d, %d; want 1, 1", ja.Attempts, jb.Attempts)
	}
	if len(ja.Result.Report) == 0 || string(ja.Result.Report) != string(jb.Result.Report) {
		t.Fatalf("reports differ across identical remote runs:\n%s\nvs\n%s", ja.Result.Report, jb.Result.Report)
	}
	// The trace records the grant and the worker's shipped stage events.
	var sawLease, sawWorkerStage bool
	for _, ev := range ja.Trace {
		if ev.Event == jobstore.TraceLease {
			sawLease = true
		}
		if ev.Event == jobstore.TraceStage && ev.Detail == "worker e2e" {
			sawWorkerStage = true
		}
	}
	if !sawLease || !sawWorkerStage {
		t.Fatalf("trace missing lease/worker-stage events: %+v", ja.Trace)
	}
}

// TestWorkerHeartbeatPartitionZombie: a worker whose heartbeats are
// partitioned loses its lease to the reclaimer mid-attempt; its late
// result post is fenced (no double-completion), and the re-queued job
// completes on the next attempt once the partition heals.
func TestWorkerHeartbeatPartitionZombie(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	// Slow attempts (sticky) so the lease TTL expires mid-run, and a
	// sticky heartbeat partition so the worker can't keep it alive.
	if err := faultinject.ArmString("jobexec.attempt=delay:1s:-1"); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.ArmString("jobapi.heartbeat=error:partition:-1"); err != nil {
		t.Fatal(err)
	}

	ts := startCoordinator(t, serve.Options{LeaseTTL: jobstore.MinLeaseTTL})
	id := submitWorkload(t, ts, "workload=example1")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := jobapi.NewWorker(jobapi.WorkerOptions{
		Coordinator: ts.URL,
		Name:        "flaky",
		Slots:       1,
		Poll:        25 * time.Millisecond,
		Exec:        jobexec.Options{Timeout: 30 * time.Second},
		Logf:        t.Logf,
	})
	done := make(chan struct{})
	go func() { w.Run(ctx); close(done) }()

	// The 200ms lease dies under the 1s attempt: wait for the reclaim.
	deadline := time.Now().Add(15 * time.Second)
	for {
		j := getJob(t, ts, id)
		if j.State == jobstore.StateQueued && j.Attempts >= 1 && j.Lease == nil {
			break
		}
		if j.State == jobstore.StateSucceeded {
			t.Fatalf("job completed before the lease expired — partition did not bite: %+v", j)
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never reclaimed: %+v", j)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Heal the partition: the next attempt heartbeats normally (the
	// attempt delay stays armed — heartbeats now outlive it).
	faultinject.Point("jobapi.heartbeat").Disarm()

	j := waitState(t, ts, id, jobstore.StateSucceeded, 30*time.Second)
	cancel()
	<-done

	if j.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (reclaim must have re-queued)", j.Attempts)
	}
	if len(j.Result.Report) == 0 {
		t.Fatal("no report after recovery")
	}
	// Exactly one terminal transition: the zombie's post was fenced.
	completes := 0
	reclaims := 0
	for _, ev := range j.Trace {
		if ev.Event == jobstore.TraceComplete {
			completes++
		}
		if ev.Event == jobstore.TraceReclaim {
			reclaims++
		}
	}
	if completes != 1 {
		t.Fatalf("job completed %d times, want exactly 1: %+v", completes, j.Trace)
	}
	if reclaims == 0 {
		t.Fatalf("no reclaim event in trace: %+v", j.Trace)
	}
}

// TestWorkerStreamingCheckpointResume: a remote streaming attempt
// commits its epoch checkpoints through the lease-fenced endpoint; when
// the attempt dies mid-stream, the next grant carries the committed
// checkpoint and the retry resumes past event zero — with a final
// report byte-identical to a buffered run of the same workload.
func TestWorkerStreamingCheckpointResume(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	// Epoch 1's checkpoint commits; epoch 2's dies (retryable), killing
	// attempt 1 mid-stream.  The fault self-disarms, so attempt 2 runs
	// clean — and must resume from the committed epoch 1.
	if err := faultinject.ArmString("jobexec.checkpoint=error:chaos:2"); err != nil {
		t.Fatal(err)
	}

	ts := startCoordinator(t, serve.Options{})
	buffered := submitWorkload(t, ts, "workload=backprop")
	streamed := submitWorkload(t, ts, "workload=backprop&epoch-events=2000&nocache=1")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := jobapi.NewWorker(jobapi.WorkerOptions{
		Coordinator: ts.URL,
		Name:        "streamer",
		Slots:       1,
		Poll:        25 * time.Millisecond,
		Exec:        jobexec.Options{Timeout: 30 * time.Second},
		Logf:        t.Logf,
	})
	done := make(chan struct{})
	go func() { w.Run(ctx); close(done) }()

	jb := waitState(t, ts, buffered, jobstore.StateSucceeded, 30*time.Second)
	js := waitState(t, ts, streamed, jobstore.StateSucceeded, 30*time.Second)
	cancel()
	<-done

	if js.Attempts < 2 {
		t.Fatalf("streaming job attempts = %d, want >= 2 (checkpoint fault must have killed attempt 1)", js.Attempts)
	}
	// The worker shipped the resume home as a trace event, proving the
	// retry restored the grant's checkpoint instead of starting over.
	var resume *jobstore.TraceEvent
	for i, ev := range js.Trace {
		if ev.Event == jobstore.TraceResume {
			resume = &js.Trace[i]
		}
	}
	if resume == nil {
		t.Fatalf("no %s event in trace: %+v", jobstore.TraceResume, js.Trace)
	}
	if !strings.Contains(resume.Detail, "worker streamer") || !strings.Contains(resume.Detail, "epoch 1") {
		t.Fatalf("resume detail = %q, want worker streamer resuming from epoch 1", resume.Detail)
	}
	if len(js.Result.Report) == 0 || string(js.Result.Report) != string(jb.Result.Report) {
		t.Fatal("resumed streamed report differs from the buffered run")
	}
}

// TestWorkerCoordinatorRestart: workers outlive a coordinator restart
// — claims fail while it is down, back off, and resume when a new
// coordinator (same data dir) comes up and re-queues the leased job.
func TestWorkerCoordinatorRestart(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s1, err := serve.New(serve.Options{DataDir: dir, Workers: -1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	id := func() string {
		resp, err := http.Post(ts1.URL+"/v1/jobs?workload=example1", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var sum jobstore.JobSummary
		if err := json.Unmarshal(body, &sum); err != nil {
			t.Fatalf("%v: %s", err, body)
		}
		return sum.ID
	}()
	// Claim the job, then kill the coordinator with the lease live.
	client := &jobapi.Client{Base: ts1.URL, Worker: "doomed"}
	grant, err := client.Acquire(context.Background(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Same data dir, new coordinator: replay re-queues the leased job
	// and fences every pre-restart token.
	s2, err := serve.New(serve.Options{DataDir: dir, Workers: -1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	client2 := &jobapi.Client{Base: ts2.URL, Worker: "doomed"}
	_, err = client2.Report(context.Background(), id, &jobapi.ResultRequest{
		Token:  grant.Lease.Token,
		Result: &jobstore.Result{Status: "ok", Report: json.RawMessage(`{"stale":true}`)},
	})
	if !errors.Is(err, jobapi.ErrFenced) {
		t.Fatalf("pre-restart token post = %v, want ErrFenced", err)
	}

	// A real worker pointed at the new coordinator finishes the job.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := jobapi.NewWorker(jobapi.WorkerOptions{
		Coordinator: ts2.URL,
		Name:        "survivor",
		Slots:       1,
		Poll:        25 * time.Millisecond,
		Exec:        jobexec.Options{Timeout: 30 * time.Second},
		Logf:        t.Logf,
	})
	done := make(chan struct{})
	go func() { w.Run(ctx); close(done) }()
	j := waitState(t, ts2, id, jobstore.StateSucceeded, 30*time.Second)
	cancel()
	<-done
	if string(j.Result.Report) == `{"stale":true}` {
		t.Fatal("zombie result survived the restart fence")
	}
}
