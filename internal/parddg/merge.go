package parddg

import (
	"fmt"
	"sort"
	"sync"

	"polyprof/internal/ddg"
	"polyprof/internal/fold"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/poly"
)

// coordBox, coarseRange and coarseState transcribe the sequential
// builder's degradation state (internal/ddg/degrade.go) for shard-local
// use; keeping the arithmetic identical is what makes a degraded
// parallel run's coarse regions pair into the same superset shape.

type coordBox struct {
	lo, hi []int64
	n      uint64
}

func (c *coordBox) extend(coords []int64) {
	c.n++
	if c.lo == nil {
		c.lo = append([]int64(nil), coords...)
		c.hi = append([]int64(nil), coords...)
		return
	}
	for i, v := range coords {
		if i >= len(c.lo) {
			break
		}
		if v < c.lo[i] {
			c.lo[i] = v
		}
		if v > c.hi[i] {
			c.hi[i] = v
		}
	}
}

func (c *coordBox) union(o *coordBox) {
	c.n += o.n
	if c.lo == nil {
		c.lo = append([]int64(nil), o.lo...)
		c.hi = append([]int64(nil), o.hi...)
		return
	}
	for i := range c.lo {
		if i >= len(o.lo) {
			break
		}
		if o.lo[i] < c.lo[i] {
			c.lo[i] = o.lo[i]
		}
		if o.hi[i] > c.hi[i] {
			c.hi[i] = o.hi[i]
		}
	}
}

func (c *coordBox) piece() fold.Piece {
	dom := poly.NewPoly(len(c.lo))
	dom.Approx = true
	for k := range c.lo {
		dom.AddRange(k, c.lo[k], c.hi[k])
	}
	return fold.Piece{Dom: dom, Exact: false, Points: c.n}
}

type coarseRange struct {
	writers map[*ddg.Instr]*coordBox
	readers map[*ddg.Instr]*coordBox
}

type coarseState struct {
	ranges map[int64]*coarseRange
	events uint64
}

func sortedByID(m map[*ddg.Instr]*coordBox) []*ddg.Instr {
	out := make([]*ddg.Instr, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FinishChecked drains the pipeline and merges the shard-local results
// into the folded graph, byte-identical to the sequential builder's
// FinishChecked on non-degraded runs.  The merge itself is parallel
// again (one goroutine per shard finishing the folders that shard
// owns), with the same amortized hard-budget polling as the sequential
// path.
func (e *Engine) FinishChecked() (*ddg.Graph, error) {
	if e.finished {
		return nil, fmt.Errorf("parddg: engine already finished")
	}
	e.drain()
	e.mergeAct.Transition(sampler.Running)
	if err := mergeFault.Hit(); err != nil {
		e.fail(fmt.Errorf("parddg: merge: %w", err))
	}
	if e.failed.Load() {
		return nil, e.finishFail(e.failure())
	}
	bud := e.opts.Budget

	// Union the shard dependence maps: keys are disjoint by stream
	// ownership, so this is a plain relabeling, not a conflict merge.
	deps := map[depKey]*depEntry{}
	var all []*depEntry
	for _, w := range e.workers {
		for k, de := range w.deps {
			deps[k] = de
			all = append(all, de)
		}
	}

	// Pair coarse ranges first, exactly like the sequential
	// finishCoarse: shard range maps are disjoint (shardOf partitions on
	// range boundaries), so their union walks the same sorted ranges.
	ranges := map[int64]*coarseRange{}
	var coarseEvents uint64
	anyCoarse := false
	for _, w := range e.workers {
		if w.coarse == nil {
			continue
		}
		anyCoarse = true
		coarseEvents += w.coarse.events
		for k, rg := range w.coarse.ranges {
			ranges[k] = rg
		}
	}
	addCoarse := func(src, dst *ddg.Instr, kind ddg.Kind, consumer *coordBox) {
		key := depKey{src: src.ID, dst: dst.ID, kind: kind}
		de, ok := deps[key]
		if !ok {
			bud.GrantEdges(1)
			de = &depEntry{d: &ddg.Dep{Src: src, Dst: dst, Kind: kind}}
			deps[key] = de
			all = append(all, de)
		}
		de.d.Degraded = true
		if de.box == nil {
			de.box = &coordBox{}
		}
		de.box.union(consumer)
	}
	rangeKeys := make([]int64, 0, len(ranges))
	for k := range ranges {
		rangeKeys = append(rangeKeys, k)
	}
	sort.Slice(rangeKeys, func(i, j int) bool { return rangeKeys[i] < rangeKeys[j] })
	for _, k := range rangeKeys {
		rg := ranges[k]
		writers := sortedByID(rg.writers)
		readers := sortedByID(rg.readers)
		for _, wi := range writers {
			for _, r := range readers {
				addCoarse(wi, r, ddg.FlowMem, rg.readers[r])
				if e.opts.TrackAnti {
					addCoarse(r, wi, ddg.Anti, rg.writers[wi])
				}
			}
			if e.opts.TrackOutput {
				for _, w2 := range writers {
					addCoarse(wi, w2, ddg.Output, rg.writers[w2])
				}
			}
		}
	}

	g := &ddg.Graph{
		Stmts:    e.allStmts,
		Instrs:   e.allInst,
		TotalOps: e.totalOps,
		MemOps:   e.memOps,
		FPOps:    e.fpOps,
	}

	// Merge phase 1: statement domains and instruction value/access
	// pieces, one goroutine per shard over the streams it owns.  A
	// stream the shard never saw a point for still gets a fresh folder
	// finished, matching the sequential builder (which creates folders
	// eagerly and finishes them empty).
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.fail(panicErr("parddg merge fold", r))
				}
			}()
			cnt := 0
			check := func() bool {
				cnt++
				if cnt&4095 == 0 {
					if err := bud.Check("fold"); err != nil {
						e.fail(err)
						return false
					}
				}
				return true
			}
			for _, s := range e.allStmts {
				if s.ID%e.n != w.id {
					continue
				}
				f := w.stmtF[s]
				if f == nil {
					f = w.newFolder(s.Depth, 0)
				}
				s.Domain = f.Finish()
				if !check() {
					return
				}
			}
			for _, i := range e.allInst {
				if i.ID%e.n != w.id {
					continue
				}
				if i.HasValue() {
					f := w.valF[i]
					if f == nil {
						f = w.newFolder(i.Depth, 1)
					}
					i.Value = f.Finish()
				}
				if i.HasAccess() {
					f := w.accF[i]
					if f == nil {
						f = w.newFolder(i.Depth, 1)
					}
					i.Access = f.Finish()
				}
				// Assignment (not a latch) so finishing a provisional
				// snapshot's clones recomputes the flag from scratch.
				i.IsSCEV = i.Op.IsIntALU() && i.Value.Fn != nil
				if !check() {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if e.failed.Load() {
		return nil, e.finishFail(e.failure())
	}

	// Merge phase 2 (after the SCEV barrier): fold dependence bundles,
	// skipping chains into SCEV instructions without finishing their
	// folders — the sequential builder skips them the same way, which
	// keeps the fold.streams census identical.
	emitted := make([][]*ddg.Dep, e.n)
	for gi := 0; gi < e.n; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.fail(panicErr("parddg merge deps", r))
				}
			}()
			cnt := 0
			var out []*ddg.Dep
			for idx := gi; idx < len(all); idx += e.n {
				de := all[idx]
				d := de.d
				if d.Src.IsSCEV || d.Dst.IsSCEV {
					continue
				}
				if de.folder != nil {
					d.Pieces = de.folder.Finish()
				}
				if de.box != nil {
					d.Pieces = append(d.Pieces, de.box.piece())
					if d.Count == 0 {
						d.Count = de.box.n
					}
				}
				out = append(out, d)
				cnt++
				if cnt&4095 == 0 {
					if err := bud.Check("fold"); err != nil {
						e.fail(err)
						return
					}
				}
			}
			emitted[gi] = out
		}(gi)
	}
	wg.Wait()
	if e.failed.Load() {
		return nil, e.finishFail(e.failure())
	}
	for _, out := range emitted {
		g.Deps = append(g.Deps, out...)
	}
	sort.Slice(g.Deps, func(i, j int) bool {
		a, c := g.Deps[i], g.Deps[j]
		if a.Src.ID != c.Src.ID {
			return a.Src.ID < c.Src.ID
		}
		if a.Dst.ID != c.Dst.ID {
			return a.Dst.ID < c.Dst.ID
		}
		return a.Kind < c.Kind
	})

	tripped := bud.Tripped()
	if anyCoarse || len(tripped) > 0 {
		deg := &ddg.Degradation{Budgets: tripped}
		if anyCoarse {
			deg.CoarseEvents = coarseEvents
			deg.Regions = e.coarseRegions(rangeKeys)
		}
		for _, d := range g.Deps {
			if d.Degraded {
				deg.CoarseDeps++
			}
		}
		g.Degraded = deg
	}

	e.mergeAct.Transition(sampler.Idle)
	e.finishSampling()
	e.publishMetrics(g, len(all))
	e.root.AddEvents(e.totalOps)
	e.root.End()
	e.finished = true
	return g, nil
}

func (e *Engine) finishFail(err error) error {
	e.finishSampling()
	e.root.Fail(err)
	e.root.End()
	e.finished = true
	return err
}

// coarseRegions merges the sorted union of shard coarse ranges into
// address regions, exactly like the sequential builder.
func (e *Engine) coarseRegions(keys []int64) []ddg.DegradedRegion {
	var out []ddg.DegradedRegion
	for _, k := range keys {
		lo := k << ddg.CoarseRangeShift
		hi := lo + (1 << ddg.CoarseRangeShift) - 1
		if hi >= e.prog.MemWords {
			hi = e.prog.MemWords - 1
		}
		if n := len(out); n > 0 && out[n-1].Hi+1 >= lo {
			out[n-1].Hi = hi
			continue
		}
		out = append(out, ddg.DegradedRegion{Lo: lo, Hi: hi})
	}
	for i := range out {
		r := &out[i]
		var names []string
		for name, gl := range e.prog.Globals {
			if gl.Base <= r.Hi && gl.Base+gl.Size > r.Lo {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		r.Globals = names
	}
	return out
}

// publishMetrics records the same ddg.* metrics as the sequential
// builder plus the shard-level counters (ddg.shard.*).
func (e *Engine) publishMetrics(g *ddg.Graph, folded int) {
	sc := e.opts.Obs
	if !sc.Enabled() {
		return
	}
	sc.MaxGauge("ddg.shadow.words", int64(len(e.shadow)+len(e.lastRead)))
	sc.MaxGauge("ddg.regtable.peak_words", int64(e.peakRegWords))
	sc.Add("ddg.stmts", uint64(len(g.Stmts)))
	sc.Add("ddg.instrs", uint64(len(g.Instrs)))
	sc.Add("ddg.deps.folded", uint64(folded))
	sc.Add("ddg.deps.emitted", uint64(len(g.Deps)))
	sc.Add("ddg.deps.scev_elided", uint64(folded-len(g.Deps)))
	sc.Add("ddg.events.instr", e.totalOps)
	sc.Add("ddg.events.mem", e.memOps)
	var depPoints uint64
	for _, d := range g.Deps {
		depPoints += d.Count
		sc.Observe("ddg.dep.points", d.Count)
	}
	sc.Add("ddg.dep.points.total", depPoints)
	if deg := g.Degraded; deg != nil {
		sc.Add("ddg.degraded.runs", 1)
		sc.Add("ddg.degraded.coarse_deps", uint64(deg.CoarseDeps))
		sc.Add("ddg.degraded.coarse_events", deg.CoarseEvents)
		sc.Add("ddg.degraded.regions", uint64(len(deg.Regions)))
	}
	sc.SetGauge("ddg.shard.count", int64(e.n))
	var maxPts uint64
	for _, w := range e.workers {
		sc.Add("ddg.shard.mem_events", w.memEvents)
		sc.Add("ddg.shard.points", w.points)
		if w.points > maxPts {
			maxPts = w.points
		}
	}
	sc.MaxGauge("ddg.shard.points.max", int64(maxPts))
}
