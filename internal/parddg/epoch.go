// Epoch support for the sharded engine: a non-terminal pipeline
// barrier (Flush) and a deep snapshot (Snapshot) that a streaming run
// finishes for a provisional epoch report while the live pipeline keeps
// going.
//
// Epoch checkpoints, by contrast, are sequential-engine-only: the shard
// workers' fold streams interleave with in-flight batches, so the only
// cut the parallel engine can serialize cheaply is the post-Flush state
// — and at that point the sequential builder's checkpoint format
// (ddg.BuilderState) cannot express per-shard stream ownership.  The
// core driver therefore takes provisionals from either engine but
// checkpoints only sequential runs; a -parallel-ddg job that resumes
// does so from the last sequential-format checkpoint written before the
// engine switch, or from event zero.
package parddg

import (
	"polyprof/internal/ddg"
	"polyprof/internal/fold"
	"polyprof/internal/obs"
	"polyprof/internal/obs/sampler"
)

// Flush is a non-terminal pipeline barrier: it ships the partial batch
// and blocks until every in-flight batch has been fully processed and
// recycled.  On return the shard workers are idle (blocked on their
// channels) and their fold state reflects every event added so far —
// receiving the idle batches from the free list is the happens-before
// edge — so a snapshot taken now is a consistent cut.  The pipeline
// accepts new events immediately afterwards.
func (e *Engine) Flush() {
	if e.drained {
		return
	}
	e.dispatch()
	// The sequencer holds exactly one allocated batch (e.cur); the other
	// allocated-1 are in flight or idle.  Draining them from the free
	// list waits for the in-flight ones; pushing them back restores the
	// pool untouched.
	n := e.allocated - 1
	if n <= 0 {
		return
	}
	hold := make([]*batch, 0, n)
	e.seqAct.Transition(sampler.BlockedRecv)
	for i := 0; i < n; i++ {
		hold = append(hold, <-e.free)
	}
	e.seqAct.Transition(sampler.Running)
	for _, b := range hold {
		e.free <- b
	}
}

// Snapshot deep-copies the engine's merge inputs — vertices, per-shard
// folder maps, dependence entries, coarse summaries, counters — into a
// detached engine whose FinishChecked produces the provisional graph
// without disturbing the live run.  Call only with the pipeline
// quiescent (immediately after Flush, on the sequencer goroutine).  The
// snapshot carries no budget (its merge must not re-charge edge
// accounting) and publishes into a detached disabled registry.
func (e *Engine) Snapshot() *Engine {
	opts := e.opts
	opts.Budget = nil
	opts.Obs = obs.NewRegistry().Scope()
	s := &Engine{
		prog:         e.prog,
		opts:         opts,
		n:            e.n,
		totalOps:     e.totalOps,
		memOps:       e.memOps,
		fpOps:        e.fpOps,
		curRegWords:  e.curRegWords,
		peakRegWords: e.peakRegWords,
		drained:      true, // merge spawns fresh goroutines; no live workers
	}
	s.root = opts.Obs.StartSpan("ddg-shards-snapshot")
	s.sc = opts.Obs.WithSpan(s.root)

	sm := make(map[*ddg.Stmt]*ddg.Stmt, len(e.allStmts))
	for _, st := range e.allStmts {
		cs := new(ddg.Stmt)
		*cs = *st
		sm[st] = cs
		s.allStmts = append(s.allStmts, cs)
	}
	im := make(map[*ddg.Instr]*ddg.Instr, len(e.allInst))
	for _, i := range e.allInst {
		ci := new(ddg.Instr)
		*ci = *i
		ci.Stmt = sm[i.Stmt]
		im[i] = ci
		s.allInst = append(s.allInst, ci)
	}
	for _, w := range e.workers {
		cw := &worker{
			e:         s,
			id:        w.id,
			stmtF:     make(map[*ddg.Stmt]*fold.Folder, len(w.stmtF)),
			valF:      make(map[*ddg.Instr]*fold.Folder, len(w.valF)),
			accF:      make(map[*ddg.Instr]*fold.Folder, len(w.accF)),
			deps:      make(map[depKey]*depEntry, len(w.deps)),
			sp:        s.sc.StartSpan("snapshot-shard"),
			memEvents: w.memEvents,
			points:    w.points,
		}
		for st, f := range w.stmtF {
			cf := f.Clone()
			cf.Obs = opts.Obs
			cw.stmtF[sm[st]] = cf
		}
		for i, f := range w.valF {
			cf := f.Clone()
			cf.Obs = opts.Obs
			cw.valF[im[i]] = cf
		}
		for i, f := range w.accF {
			cf := f.Clone()
			cf.Obs = opts.Obs
			cw.accF[im[i]] = cf
		}
		for k, de := range w.deps {
			d := new(ddg.Dep)
			*d = *de.d
			d.Src = im[de.d.Src]
			d.Dst = im[de.d.Dst]
			cde := &depEntry{d: d}
			if de.folder != nil {
				cde.folder = de.folder.Clone()
				cde.folder.Obs = opts.Obs
			}
			if de.box != nil {
				cde.box = &coordBox{
					lo: append([]int64(nil), de.box.lo...),
					hi: append([]int64(nil), de.box.hi...),
					n:  de.box.n,
				}
			}
			cw.deps[k] = cde
		}
		if w.coarse != nil {
			cw.coarse = &coarseState{ranges: map[int64]*coarseRange{}, events: w.coarse.events}
			for k, rg := range w.coarse.ranges {
				crg := &coarseRange{writers: map[*ddg.Instr]*coordBox{}, readers: map[*ddg.Instr]*coordBox{}}
				for i, box := range rg.writers {
					crg.writers[im[i]] = &coordBox{lo: append([]int64(nil), box.lo...), hi: append([]int64(nil), box.hi...), n: box.n}
				}
				for i, box := range rg.readers {
					crg.readers[im[i]] = &coordBox{lo: append([]int64(nil), box.lo...), hi: append([]int64(nil), box.hi...), n: box.n}
				}
				cw.coarse.ranges[k] = crg
			}
		}
		s.workers = append(s.workers, cw)
	}
	return s
}
