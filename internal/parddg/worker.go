package parddg

import (
	"fmt"

	"polyprof/internal/budget"
	"polyprof/internal/ddg"
	"polyprof/internal/fold"
	"polyprof/internal/obs"
	"polyprof/internal/obs/sampler"
)

// depEntry pairs a dependence bundle with the folding state the
// sequential builder keeps in unexported Dep fields.  Exactly one
// worker owns each entry until the merge.
type depEntry struct {
	d      *ddg.Dep
	folder *fold.MultiFolder
	box    *coordBox
}

// worker is one shard: it owns a disjoint address slice of the shadow
// tables (stage 1) and a disjoint set of fold streams (stage 2).
type worker struct {
	e  *Engine
	id int
	ch chan *batch
	sp *obs.Span

	// coarse is the shard-local degradation state; non-nil once this
	// shard's shadow budget tripped.  Range keys never collide across
	// shards because shardOf partitions on coarse-range boundaries.
	coarse *coarseState

	stmtF map[*ddg.Stmt]*fold.Folder
	valF  map[*ddg.Instr]*fold.Folder
	accF  map[*ddg.Instr]*fold.Folder
	deps  map[depKey]*depEntry

	lblBuf []int64

	memEvents uint64 // stage-1 memory events owned by this shard
	points    uint64 // stage-2 fold points consumed by this shard

	// Utilization sampling handles (nil without an attached sampler).
	act    *sampler.Actor
	depthQ *sampler.Queue
}

func newWorker(e *Engine, id int) *worker {
	w := &worker{
		e:     e,
		id:    id,
		ch:    make(chan *batch, maxInflight),
		stmtF: map[*ddg.Stmt]*fold.Folder{},
		valF:  map[*ddg.Instr]*fold.Folder{},
		accF:  map[*ddg.Instr]*fold.Folder{},
		deps:  map[depKey]*depEntry{},
		sp:    e.sc.StartSpan(fmt.Sprintf("ddg.shard.%d", id)),
	}
	if e.smp != nil {
		w.act = e.smp.Actor(fmt.Sprintf("shard-%d", id), sampler.RoleShard)
		w.depthQ = e.smp.Queue(fmt.Sprintf("parddg.shard.%d.backlog", id))
	}
	if e.baseDenied {
		w.trip()
	}
	return w
}

func (w *worker) end() {
	w.sp.AddEvents(w.points)
	w.sp.End()
}

// process runs both stages of one batch.  Every worker calls Done
// exactly once per batch — even in drain mode — so no worker's barrier
// Wait can hang after a failure.
func (w *worker) process(b *batch) {
	if w.e.failed.Load() {
		b.wg.Done()
		w.e.recycle(b)
		return
	}
	w.runStage1(b)
	b.wg.Done()
	// The stage barrier is upstream waiting: this shard cannot fold
	// until every shard has resolved its stage-1 sources.
	w.act.Transition(sampler.BlockedRecv)
	b.wg.Wait()
	w.act.Transition(sampler.Running)
	if !w.e.failed.Load() {
		w.runStage2(b)
	}
	w.e.recycle(b)
}

func panicErr(stage string, r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("panic in %s: %w", stage, err)
	}
	return fmt.Errorf("panic in %s: %v", stage, r)
}

// runStage1 resolves dependence sources for this shard's addresses:
// the exact transcription of the sequential builder's shadow-memory
// hot path, with addDep calls replaced by slot writes (folding belongs
// to the stream owner, which may be another shard).  Source coordinates
// are copied into the batch's per-worker arena because set() reuses
// record memory.
func (w *worker) runStage1(b *batch) {
	defer func() {
		if r := recover(); r != nil {
			w.e.fail(panicErr(fmt.Sprintf("parddg shard %d stage 1", w.id), r))
		}
	}()
	e := w.e
	arena := b.wArena[w.id][:0]
	for i := range b.events {
		be := &b.events[i]
		if be.memIdx < 0 || e.shardOf(be.addr) != w.id {
			continue
		}
		w.memEvents++
		s0 := &b.slots[2*be.memIdx]
		s1 := &b.slots[2*be.memIdx+1]
		if w.coarse != nil {
			arena = w.coarseEvent(be, s0, s1, arena)
		} else if be.isWrite {
			wr := &e.shadow[be.addr]
			if wr.instr == nil && !w.grantRec(len(be.coords)) {
				arena = w.coarseEvent(be, s0, s1, arena)
			} else {
				if wr.instr != nil && e.opts.TrackOutput {
					arena = setSlot(s0, wr, ddg.Output, arena)
				}
				if rd := &e.lastRead[be.addr]; rd.instr != nil && e.opts.TrackAnti {
					arena = setSlot(s1, rd, ddg.Anti, arena)
				}
				wr.set(be.instr, be.coords)
			}
		} else {
			rd := &e.lastRead[be.addr]
			if rd.instr == nil && !w.grantRec(len(be.coords)) {
				arena = w.coarseEvent(be, s0, s1, arena)
			} else {
				if wr := &e.shadow[be.addr]; wr.instr != nil {
					arena = setSlot(s0, wr, ddg.FlowMem, arena)
				}
				rd.set(be.instr, be.coords)
			}
		}
	}
	b.wArena[w.id] = arena
}

// setSlot records one resolved dependence source, copying the source
// record's coordinates into the arena before a later event in the
// batch can overwrite them.
func setSlot(s *memSlot, r *rec, kind ddg.Kind, arena []int64) []int64 {
	off := len(arena)
	arena = append(arena, r.coords...)
	s.src = r.instr
	s.kind = kind
	s.srcCoords = arena[off:]
	return arena
}

// grantRec mirrors the sequential builder's grantRec: ask the budget
// for one live record, degrading this shard on a real denial.  The
// fault point injects exactly here, like ddg.shadow.insert does for
// the sequential engine.
func (w *worker) grantRec(dim int) bool {
	if err := insertFault.Hit(); err != nil {
		if be, ok := budget.AsError(err); ok && be.Resource == budget.ResourceShadowBytes {
			return false
		}
		w.e.fail(fmt.Errorf("parddg: shard %d insert: %w", w.id, err))
	}
	if w.e.opts.Budget.GrantShadow(ddg.ShadowRecBytes(dim)) {
		return true
	}
	w.trip()
	return false
}

func (w *worker) trip() {
	if w.coarse == nil {
		w.coarse = &coarseState{ranges: map[int64]*coarseRange{}}
	}
}

// coarseEvent transcribes the sequential builder's degraded memory
// path: live records keep exact tracking, events whose counterpart
// lacks a record are noted in this shard's range summary.
func (w *worker) coarseEvent(be *event, s0, s1 *memSlot, arena []int64) []int64 {
	e := w.e
	wr := &e.shadow[be.addr]
	rd := &e.lastRead[be.addr]
	note := false
	if be.isWrite {
		if wr.instr != nil {
			if e.opts.TrackOutput {
				arena = setSlot(s0, wr, ddg.Output, arena)
			}
			wr.set(be.instr, be.coords)
		} else {
			note = true
		}
		if rd.instr != nil {
			if e.opts.TrackAnti {
				arena = setSlot(s1, rd, ddg.Anti, arena)
			}
		} else if e.opts.TrackAnti {
			note = true
		}
	} else {
		if wr.instr != nil {
			arena = setSlot(s0, wr, ddg.FlowMem, arena)
		} else {
			note = true
		}
		if rd.instr != nil {
			rd.set(be.instr, be.coords)
		} else if e.opts.TrackAnti {
			note = true
		}
	}
	if note {
		w.noteCoarse(be.addr, be.instr, be.coords, be.isWrite)
	}
	return arena
}

func (w *worker) noteCoarse(addr int64, instr *ddg.Instr, coords []int64, write bool) {
	w.trip()
	w.coarse.events++
	key := addr >> ddg.CoarseRangeShift
	rg := w.coarse.ranges[key]
	if rg == nil {
		rg = &coarseRange{writers: map[*ddg.Instr]*coordBox{}, readers: map[*ddg.Instr]*coordBox{}}
		w.coarse.ranges[key] = rg
	}
	tab := rg.readers
	if write {
		tab = rg.writers
	}
	box := tab[instr]
	if box == nil {
		box = &coordBox{}
		tab[instr] = box
	}
	box.extend(coords)
}

// runStage2 folds this worker's streams, scanning the whole batch in
// order: statement domains, register-flow points (resolved by the
// sequencer), access streams and memory-dependence slots (resolved in
// stage 1), and value streams.  Every stream is filtered by ownership,
// so each folder sees its points in exact global order.
func (w *worker) runStage2(b *batch) {
	defer func() {
		if r := recover(); r != nil {
			w.e.fail(panicErr(fmt.Sprintf("parddg shard %d stage 2", w.id), r))
		}
	}()
	e := w.e
	n := e.n
	ri := 0
	for i := range b.events {
		be := &b.events[i]
		if be.instr.Ref.Index == 0 {
			if s := be.instr.Stmt; s.ID%n == w.id {
				w.stmtFolder(s).Add(be.coords, nil)
				w.points++
			}
		}
		for ri < len(b.regPts) && b.regPts[ri].ev == int32(i) {
			rp := &b.regPts[ri]
			ri++
			if ownerOfDep(rp.src.ID, be.instr.ID, ddg.FlowReg, n) == w.id {
				w.addDep(rp.src, rp.srcCoords, be.instr, be.coords, ddg.FlowReg)
			}
		}
		if be.memIdx >= 0 {
			if be.instr.ID%n == w.id {
				w.lblBuf = append(w.lblBuf[:0], be.addr)
				w.accFolder(be.instr).Add(be.coords, w.lblBuf)
				w.points++
			}
			for s := 0; s < 2; s++ {
				sl := &b.slots[2*int(be.memIdx)+s]
				if sl.src != nil && ownerOfDep(sl.src.ID, be.instr.ID, sl.kind, n) == w.id {
					w.addDep(sl.src, sl.srcCoords, be.instr, be.coords, sl.kind)
				}
			}
		}
		if be.needValue && be.instr.ID%n == w.id {
			w.lblBuf = append(w.lblBuf[:0], be.value)
			w.valFolder(be.instr).Add(be.coords, w.lblBuf)
			w.points++
		}
	}
}

// newFolder matches the sequential builder's folder construction.
func (w *worker) newFolder(dim, labelW int) *fold.Folder {
	f := fold.NewFolder(dim, labelW)
	f.Obs = w.e.opts.Obs
	if w.e.opts.NoStrideDetection {
		f.DetectStrides = false
	}
	return f
}

func (w *worker) stmtFolder(s *ddg.Stmt) *fold.Folder {
	f := w.stmtF[s]
	if f == nil {
		f = w.newFolder(s.Depth, 0)
		w.stmtF[s] = f
	}
	return f
}

func (w *worker) valFolder(i *ddg.Instr) *fold.Folder {
	f := w.valF[i]
	if f == nil {
		f = w.newFolder(i.Depth, 1)
		w.valF[i] = f
	}
	return f
}

func (w *worker) accFolder(i *ddg.Instr) *fold.Folder {
	f := w.accF[i]
	if f == nil {
		f = w.newFolder(i.Depth, 1)
		w.accF[i] = f
	}
	return f
}

// addDep mirrors the sequential builder's addDep.
func (w *worker) addDep(src *ddg.Instr, srcCoords []int64, dst *ddg.Instr, dstCoords []int64, kind ddg.Kind) {
	key := depKey{src: src.ID, dst: dst.ID, kind: kind}
	de, ok := w.deps[key]
	if !ok {
		de = &depEntry{d: &ddg.Dep{Src: src, Dst: dst, Kind: kind}}
		if w.e.opts.Budget.GrantEdges(1) {
			mf := fold.NewMultiFolder(dst.Depth, src.Depth, fold.DefaultMaxPieces)
			mf.Obs = w.e.opts.Obs
			de.folder = mf
		} else {
			de.d.Degraded = true
			de.box = &coordBox{}
		}
		w.deps[key] = de
	}
	de.d.Count++
	w.points++
	if de.folder != nil {
		de.folder.Add(dstCoords, srcCoords)
	} else {
		de.box.extend(dstCoords)
	}
}
