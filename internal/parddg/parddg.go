// Package parddg is the sharded, pipelined dependence-tracking engine:
// a drop-in replacement for the sequential internal/ddg builder that
// consumes the pass-2 event stream in batches and fans the expensive
// work — shadow-memory lookups and stream folding — out to N
// address-partitioned shard workers, while everything order-sensitive
// that assigns identity (statement/instruction interning, dynamic
// counts, the register/frame mirror) stays on the sequencing
// goroutine.
//
// The engine's contract is bit-for-bit equivalence with the sequential
// builder on non-degraded runs: the folded graph it returns — IDs,
// counts, domains, pieces, dependence order — is byte-identical in the
// report JSON.  The equivalence argument rests on three invariants:
//
//  1. Identity is sequential.  Stmt/Instr IDs are assigned on the
//     sequencing goroutine in first-appearance order, exactly like the
//     sequential builder.
//  2. Streams have exactly one owner.  Every fold stream (statement
//     domain, value, access, dependence bundle) is consumed by exactly
//     one shard worker, chosen by a deterministic hash of the stream's
//     identity, and every worker scans batches in dispatch order — so
//     each stream sees its points in the global sequential order, which
//     is what the folder's greedy run recognition is sensitive to.
//  3. Shadow state is partitioned.  Each worker owns a disjoint
//     address slice of the last-writer/prev-writer/last-reader tables
//     (partitioned on coarse-range boundaries so a degraded range never
//     spans shards), and resolves dependence sources for its addresses
//     in stage 1 of each batch; a per-batch barrier then lets every
//     worker fold the sources the others resolved.
//
// At Finish, shard-local results merge deterministically (dependences
// sort by (src, dst, kind), like the sequential builder), so the same
// report falls out regardless of N.  Degraded runs (shadow/edge budget
// exhaustion) are the one exemption from bit-identity — grant ordering
// is racy by nature — but degradation stays shard-local and the union
// of coarse regions remains a superset of the exact dependences, the
// same soundness direction the sequential builder guarantees.
package parddg

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polyprof/internal/ddg"
	"polyprof/internal/faultinject"
	"polyprof/internal/isa"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/trace"
)

// Fault points for chaos testing the three concurrency boundaries.
var (
	dispatchFault = faultinject.Point("parddg.batch.dispatch")
	insertFault   = faultinject.Point("parddg.shard.insert")
	mergeFault    = faultinject.Point("parddg.merge")
)

// batchSize is the dispatch threshold: events accumulate on the
// sequencer until a batch this large ships to the shard workers.
const batchSize = 4096

// maxInflight bounds allocated batches; a full pipeline blocks the
// sequencer on the free list (backpressure) instead of growing memory.
const maxInflight = 8

// Options tunes the engine.
type Options struct {
	// Shards is the worker count (>= 1).
	Shards int
	// DDG carries the sequential builder's options (tracked kinds,
	// stride detection, obs scope, budget); the engine honors them
	// identically.
	DDG ddg.Options
	// Sampler, when non-nil and enabled, collects per-actor utilization
	// timelines (sequencer/shards/merge) and queue-depth samples for
	// the parallel diagnosis report.  Nil costs the hot paths a single
	// nil check per transition site.
	Sampler *sampler.Sampler
}

// pollInterval is the queue-depth sampling period while the sampler is
// enabled.
const pollInterval = 250 * time.Microsecond

// rec mirrors the sequential builder's writer record: the producing
// instruction and its retained iteration coordinates.  set reuses the
// coordinate memory, which is why batch events carry copies.
type rec struct {
	instr  *ddg.Instr
	coords []int64
}

func (r *rec) set(instr *ddg.Instr, coords []int64) {
	r.instr = instr
	r.coords = append(r.coords[:0], coords...)
}

type frame struct {
	regw   []rec
	retDst isa.Reg
}

type depKey struct {
	src, dst int
	kind     ddg.Kind
}

// event is one instruction event as the shard workers see it.  coords
// points into the batch's coordinate arena (shared by every event of
// the same context run); addr is -1 for non-memory instructions.
type event struct {
	instr     *ddg.Instr
	coords    []int64
	addr      int64
	value     int64
	memIdx    int32 // index among this batch's memory events, -1 otherwise
	isWrite   bool
	needValue bool
}

// regPoint is one register-flow dependence point, resolved on the
// sequencer (the register mirror lives there); srcCoords is a copy in
// the batch arena, taken before a later event in the same batch can
// overwrite the producer's record.
type regPoint struct {
	ev        int32
	src       *ddg.Instr
	srcCoords []int64
}

// memSlot is one memory-dependence point resolved by a stage-1 shard
// worker; slots 2i and 2i+1 belong to memory event i (write: output
// then anti; read: flow).  src == nil means no dependence.
type memSlot struct {
	src       *ddg.Instr
	kind      ddg.Kind
	srcCoords []int64
}

// batch is one dispatch unit.  The same pointer goes to every worker:
// stage 1 writes disjoint slot indices and per-worker arenas, the
// WaitGroup is the stage-1/stage-2 barrier, and the done counter
// recycles the batch to the free list after the last worker finishes.
type batch struct {
	events []event
	coords []int64 // sequencer arena: context coords + regPoint sources
	regPts []regPoint
	slots  []memSlot
	wArena [][]int64 // per-worker stage-1 coordinate arenas
	memN   int

	wg   sync.WaitGroup
	done atomic.Int32
}

// Engine is the sharded dependence engine.  It implements
// core.InstrSink and core.BatchSink; all sink methods must be called
// from one goroutine (the pass-2 VM goroutine), like the sequential
// builder.
type Engine struct {
	prog *isa.Program
	opts ddg.Options
	n    int

	// Interning state (sequencer-owned); IDs are first-appearance
	// ordinals, identical to the sequential builder's.
	stmts      map[string]map[isa.BlockID]*ddg.Stmt
	instrs     map[string]map[trace.InstrRef]*ddg.Instr
	allStmts   []*ddg.Stmt
	allInst    []*ddg.Instr
	cacheCtx   string
	stmtCache  map[isa.BlockID]*ddg.Stmt
	instrCache map[trace.InstrRef]*ddg.Instr

	// Register/frame mirror (sequencer-owned).
	frames      []frame
	pendingArgs []rec
	pendingDst  isa.Reg
	pendingRet  rec
	usesBuf     []isa.Reg

	totalOps, memOps, fpOps   uint64
	curRegWords, peakRegWords int

	// Shared shadow tables, index-partitioned across workers by
	// shardOf; no two workers ever touch the same element.
	shadow   []rec
	lastRead []rec

	workers    []*worker
	chans      []chan *batch
	free       chan *batch
	allocated  int
	cur        *batch
	workerJoin sync.WaitGroup

	// baseDenied records that the up-front table grant failed: every
	// shard starts coarse, like the sequential builder.
	baseDenied bool

	failMu  sync.Mutex
	failErr error
	failed  atomic.Bool

	sc       obs.Scope // scope under the engine root span
	root     *obs.Span
	drained  bool
	finished bool
	closed   bool

	// Utilization sampling (nil when no sampler is attached).
	smp      *sampler.Sampler
	seqAct   *sampler.Actor
	mergeAct *sampler.Actor
	inflight *sampler.Queue
}

// NewEngine creates a sharded engine for one execution of prog and
// starts its workers.  Callers must eventually call FinishChecked or
// Close.
func NewEngine(prog *isa.Program, opt Options) *Engine {
	n := opt.Shards
	if n < 1 {
		n = 1
	}
	e := &Engine{
		prog:     prog,
		opts:     opt.DDG,
		n:        n,
		stmts:    map[string]map[isa.BlockID]*ddg.Stmt{},
		instrs:   map[string]map[trace.InstrRef]*ddg.Instr{},
		shadow:   make([]rec, prog.MemWords),
		lastRead: make([]rec, prog.MemWords),
		free:     make(chan *batch, maxInflight),
	}
	main := prog.Func(prog.Main)
	e.frames = append(e.frames, frame{regw: make([]rec, main.NumRegs), retDst: isa.NoReg})
	e.curRegWords = main.NumRegs
	e.peakRegWords = e.curRegWords
	// Charge the fixed record tables up front, exactly like the
	// sequential builder; a denial degrades every shard from the start.
	if !e.opts.Budget.GrantShadow(ddg.BaseShadowBytes(prog.MemWords)) {
		e.baseDenied = true
	}
	e.root = e.opts.Obs.StartSpan("ddg-shards")
	e.sc = e.opts.Obs.WithSpan(e.root)
	flight.Log("parddg", "engine-start", fmt.Sprintf("%d shards, %d mem words", n, prog.MemWords))
	e.cur = e.newBatch()
	e.allocated = 1
	if e.smp = opt.Sampler; e.smp != nil {
		e.seqAct = e.smp.Actor("sequencer", sampler.RoleSequencer)
		e.mergeAct = e.smp.Actor("merge", sampler.RoleMerge)
		e.inflight = e.smp.Queue("parddg.inflight")
		// The sequencer actor is the whole pass-2 serial thread — VM
		// execution plus event sequencing — not just time inside the sink:
		// that thread is the pipeline's serial stage, and its occupancy is
		// what bounds speedup.  It runs from engine creation until drain,
		// minus the explicitly sampled blocking intervals.
		e.seqAct.Transition(sampler.Running)
	}
	for i := 0; i < n; i++ {
		w := newWorker(e, i)
		e.workers = append(e.workers, w)
		e.chans = append(e.chans, w.ch)
		e.workerJoin.Add(1)
		go func(w *worker) {
			defer e.workerJoin.Done()
			for {
				w.act.Transition(sampler.BlockedRecv)
				b, ok := <-w.ch
				if !ok {
					w.act.Transition(sampler.Idle)
					return
				}
				w.act.Transition(sampler.Running)
				w.process(b)
			}
		}(w)
	}
	// Channel length reads are safe concurrently, so the poller can
	// sample shard backlogs from outside the pipeline; the in-flight
	// batch count is sequencer state and is sampled at dispatch instead.
	if e.smp != nil {
		workers := e.workers
		e.smp.StartPoll(pollInterval, func() {
			for _, w := range workers {
				w.depthQ.Observe(int64(len(w.ch)))
			}
		})
	}
	return e
}

func (e *Engine) newBatch() *batch {
	return &batch{wArena: make([][]int64, e.n)}
}

// shardOf partitions addresses on coarse-range boundaries, so one
// degraded range is always summarized by a single shard.
func (e *Engine) shardOf(addr int64) int {
	return int((addr >> ddg.CoarseRangeShift) % int64(e.n))
}

// ownerOfDep deterministically assigns a dependence stream to a shard.
// Bundles are hashed by endpoint identity, not address: one bundle can
// span addresses owned by many shards, but must have a single folding
// owner.
func ownerOfDep(src, dst int, kind ddg.Kind, n int) int {
	h := uint64(src)*0x9E3779B97F4A7C15 ^ uint64(dst)*0xC2B2AE3D27D4EB4F ^ (uint64(kind)+1)*0x165667B19E3779F9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return int(h % uint64(n))
}

func (e *Engine) fail(err error) {
	if err == nil {
		return
	}
	e.failMu.Lock()
	first := e.failErr == nil
	if first {
		e.failErr = err
	}
	e.failMu.Unlock()
	e.failed.Store(true)
	if first {
		// The fail latch fires once per engine; a parallel-engine failure
		// (contained shard panic, injected fault, dispatch error) is an
		// anomaly worth a bundle — the merged error string the caller sees
		// no longer says which shard or protocol step died, the ring does.
		flight.Trigger("parddg-failure", flight.TriggerInfo{
			Stage:  "pass2-ddg",
			Detail: fmt.Sprintf("parallel engine failed (%d shards): %v", e.n, err),
		})
	}
}

func (e *Engine) failure() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

func (e *Engine) curFrame() *frame { return &e.frames[len(e.frames)-1] }

// OnControl implements core.InstrSink: the register/frame mirror,
// identical to the sequential builder's.
func (e *Engine) OnControl(ev trace.ControlEvent) {
	switch ev.Kind {
	case trace.Call:
		callee := e.prog.Func(ev.Callee)
		f := frame{regw: make([]rec, callee.NumRegs), retDst: e.pendingDst}
		for i, w := range e.pendingArgs {
			if i < len(f.regw) {
				f.regw[i] = rec{instr: w.instr, coords: append([]int64(nil), w.coords...)}
			}
		}
		e.frames = append(e.frames, f)
		e.curRegWords += len(f.regw)
		if e.curRegWords > e.peakRegWords {
			e.peakRegWords = e.curRegWords
		}
	case trace.Return:
		top := e.frames[len(e.frames)-1]
		e.frames = e.frames[:len(e.frames)-1]
		e.curRegWords -= len(top.regw)
		if len(e.frames) > 0 && top.retDst != isa.NoReg && e.pendingRet.instr != nil {
			e.curFrame().regw[top.retDst].set(e.pendingRet.instr, e.pendingRet.coords)
		}
		e.pendingRet = rec{}
	}
}

// ctxCoords copies the current context coordinates into the current
// batch's arena; every event of the run shares the copy.
func (e *Engine) ctxCoords(coords []int64) []int64 {
	b := e.cur
	off := len(b.coords)
	b.coords = append(b.coords, coords...)
	return b.coords[off : off+len(coords)]
}

// OnInstrBatch implements core.BatchSink.  No sampler transitions here:
// the sequencer actor stays "running" across sink calls (VM execution
// between batches is serial-stage work too) and only the blocking
// points in dispatch/drain transition, keeping the sampled path far off
// the per-event hot loop.
func (e *Engine) OnInstrBatch(ctxKey string, coords []int64, evs []trace.InstrEvent, ins []*isa.Instr) {
	cc := e.ctxCoords(coords)
	for i := range evs {
		if cc == nil {
			cc = e.ctxCoords(coords)
		}
		cc = e.addEvent(ctxKey, cc, evs[i], ins[i])
	}
}

// OnInstr implements core.InstrSink (the unbatched path).
func (e *Engine) OnInstr(ctxKey string, coords []int64, ev trace.InstrEvent, in *isa.Instr) {
	e.addEvent(ctxKey, e.ctxCoords(coords), ev, in)
}

func (e *Engine) stmtFor(ctx string, blk isa.BlockID, depth int) *ddg.Stmt {
	if ctx != e.cacheCtx {
		e.cacheCtx = ctx
		e.stmtCache = map[isa.BlockID]*ddg.Stmt{}
		e.instrCache = map[trace.InstrRef]*ddg.Instr{}
	}
	if s, ok := e.stmtCache[blk]; ok {
		return s
	}
	byBlk := e.stmts[ctx]
	if byBlk == nil {
		byBlk = map[isa.BlockID]*ddg.Stmt{}
		e.stmts[ctx] = byBlk
	}
	s, ok := byBlk[blk]
	if !ok {
		s = &ddg.Stmt{ID: len(e.allStmts), Block: blk, Ctx: ctx, Depth: depth}
		byBlk[blk] = s
		e.allStmts = append(e.allStmts, s)
	}
	e.stmtCache[blk] = s
	return s
}

func (e *Engine) instrFor(ctx string, ref trace.InstrRef, in *isa.Instr, stmt *ddg.Stmt) *ddg.Instr {
	if i, ok := e.instrCache[ref]; ok {
		return i
	}
	byRef := e.instrs[ctx]
	if byRef == nil {
		byRef = map[trace.InstrRef]*ddg.Instr{}
		e.instrs[ctx] = byRef
	}
	i, ok := byRef[ref]
	if !ok {
		i = ddg.NewInstr(len(e.allInst), ref, ctx, in, stmt)
		byRef[ref] = i
		e.allInst = append(e.allInst, i)
	}
	e.instrCache[ref] = i
	return i
}

// addEvent is the sequencer's per-event path: everything the
// sequential builder does per event except shadow lookups and folding,
// which ship to the workers.  Returns the context-coordinate slice to
// use for the next event of the same run (nil after a dispatch, so the
// caller re-copies into the fresh batch).
func (e *Engine) addEvent(ctxKey string, cc []int64, ev trace.InstrEvent, in *isa.Instr) []int64 {
	e.totalOps++
	if in.Op.IsFP() {
		e.fpOps++
	}
	stmt := e.stmtFor(ctxKey, ev.Ref.Block, len(cc))
	if ev.Ref.Index == 0 {
		stmt.Count++
	}
	instr := e.instrFor(ctxKey, ev.Ref, in, stmt)
	instr.Count++

	b := e.cur
	evIdx := int32(len(b.events))
	fr := e.curFrame()

	// Register flow points: resolved here (the register mirror is
	// sequencer state), folded by the owning worker.  Source coords are
	// copied into the arena because a later event in this same batch
	// may overwrite the producer's record before the worker reads it.
	if e.opts.TrackReg {
		e.usesBuf = in.Uses(e.usesBuf)
		for _, r := range e.usesBuf {
			if int(r) < len(fr.regw) {
				if w := &fr.regw[r]; w.instr != nil {
					off := len(b.coords)
					b.coords = append(b.coords, w.coords...)
					b.regPts = append(b.regPts, regPoint{ev: evIdx, src: w.instr, srcCoords: b.coords[off:]})
				}
			}
		}
	}

	be := event{instr: instr, coords: cc, addr: -1, memIdx: -1}
	if ev.Addr >= 0 {
		e.memOps++
		be.addr = ev.Addr
		be.isWrite = in.Op.IsMemWrite()
		be.memIdx = int32(b.memN)
		b.memN++
	}

	if in.Op.WritesDst() && in.Dst != isa.NoReg && in.Op != isa.Call {
		if instr.HasValue() {
			be.needValue = true
			be.value = ev.Value
		}
		if int(in.Dst) < len(fr.regw) {
			fr.regw[in.Dst].set(instr, cc)
		}
	}

	switch in.Op {
	case isa.Call:
		e.pendingArgs = e.pendingArgs[:0]
		for _, a := range in.Args {
			if int(a) < len(fr.regw) {
				e.pendingArgs = append(e.pendingArgs, fr.regw[a])
			} else {
				e.pendingArgs = append(e.pendingArgs, rec{})
			}
		}
		e.pendingDst = in.Dst
	case isa.Ret:
		if in.A != isa.NoReg && int(in.A) < len(fr.regw) {
			e.pendingRet = fr.regw[in.A]
		} else {
			e.pendingRet = rec{}
		}
	}

	b.events = append(b.events, be)
	if len(b.events) >= batchSize {
		e.dispatch()
		return nil
	}
	return cc
}

// dispatch ships the current batch to every worker and takes a fresh
// one from the free list (blocking there is the pipeline's
// backpressure).
func (e *Engine) dispatch() {
	b := e.cur
	if len(b.events) == 0 {
		return
	}
	if err := dispatchFault.Hit(); err != nil {
		e.fail(fmt.Errorf("parddg: batch dispatch: %w", err))
	}
	n := 2 * b.memN
	if cap(b.slots) < n {
		b.slots = make([]memSlot, n)
	} else {
		b.slots = b.slots[:n]
		clear(b.slots)
	}
	b.done.Store(0)
	b.wg.Add(e.n)
	if sc := e.sc; sc.Enabled() {
		sc.Add("parddg.batches", 1)
		sc.Observe("parddg.batch.events", uint64(len(b.events)))
		// In-flight depth at dispatch: allocated batches minus the idle
		// ones (the freshly shipped batch counts).
		sc.Observe("parddg.batch.queue_depth", uint64(e.allocated-len(e.free)))
	}
	e.inflight.Observe(int64(e.allocated - len(e.free)))
	e.seqAct.Transition(sampler.BlockedSend)
	for _, ch := range e.chans {
		ch <- b
	}
	e.seqAct.Transition(sampler.Running)
	select {
	case nb := <-e.free:
		e.cur = nb
	default:
		if e.allocated < maxInflight {
			e.allocated++
			e.cur = e.newBatch()
		} else {
			// Pipeline backpressure: every allocated batch is still in
			// flight, so the sequencer stalls on the free list.
			e.seqAct.Transition(sampler.BlockedRecv)
			e.cur = <-e.free
			e.seqAct.Transition(sampler.Running)
		}
	}
}

// recycle returns a fully processed batch to the free list; the last
// worker to finish resets it.
func (e *Engine) recycle(b *batch) {
	if b.done.Add(1) == int32(e.n) {
		b.events = b.events[:0]
		b.coords = b.coords[:0]
		b.regPts = b.regPts[:0]
		b.memN = 0
		e.free <- b
	}
}

// drain flushes the partial batch, closes the worker channels and
// joins the workers.  Idempotent.
func (e *Engine) drain() {
	if e.drained {
		return
	}
	e.drained = true
	e.dispatch()
	for _, ch := range e.chans {
		close(ch)
	}
	e.seqAct.Transition(sampler.BlockedRecv)
	e.workerJoin.Wait()
	e.seqAct.Transition(sampler.Idle)
	e.smp.StopPoll()
	for _, w := range e.workers {
		w.end()
	}
}

// finishSampling closes the utilization timelines and publishes the
// diagnosis headline metrics; safe to call on every exit path.
func (e *Engine) finishSampling() {
	if e.smp == nil {
		return
	}
	e.smp.Finish()
	if rep := e.smp.Report(); rep != nil {
		rep.Publish(e.opts.Obs)
	}
}

// Close aborts the engine without merging (idempotent; safe after
// FinishChecked).  Run drivers defer it so an error between pass 2 and
// Finish cannot leak the worker goroutines.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.drain()
	if !e.finished {
		e.finishSampling()
		e.root.End()
	}
}
