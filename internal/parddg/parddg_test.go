package parddg_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/ddg"
	"polyprof/internal/faultinject"
	"polyprof/internal/fold"
	"polyprof/internal/isa"
	"polyprof/internal/obs"
	"polyprof/internal/parddg"
	"polyprof/internal/workloads"
)

func buildWorkload(t testing.TB, name string) *isa.Program {
	t.Helper()
	spec := workloads.ByName(name)
	if spec == nil {
		t.Fatalf("unknown workload %q", name)
	}
	return spec.Build()
}

// runGraph profiles prog through pass 2 with either the sequential
// builder (shards == 0) or the sharded engine, under an optional
// budget, and returns the finished graph.
func runGraph(t testing.TB, prog *isa.Program, shards int, limits budget.Limits) (*ddg.Graph, error) {
	t.Helper()
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	bud := budget.New(context.Background(), limits)
	opts := ddg.DefaultOptions()
	opts.Budget = bud
	var sink core.InstrSink
	var fin interface {
		FinishChecked() (*ddg.Graph, error)
	}
	if shards > 0 {
		eng := parddg.NewEngine(prog, parddg.Options{Shards: shards, DDG: opts})
		defer eng.Close()
		sink, fin = eng, eng
	} else {
		b := ddg.NewBuilder(prog, opts)
		sink, fin = b, b
	}
	// Panic containment mirrors core.Run's per-stage RecoverStage: a
	// panic-mode fault becomes an error here, as it does in the real
	// pipeline.
	var g *ddg.Graph
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("contained panic: %v", r)
			}
		}()
		if _, _, err := core.RunPass2Scoped(prog, st, sink, nil, obs.Scope{}, bud); err != nil {
			return err
		}
		g, err = fin.FinishChecked()
		return err
	}()
	if err != nil {
		return nil, err
	}
	return g, nil
}

// depKey identifies one dependence bundle for cross-run comparison
// (stmt/instr IDs are deterministic across runs of the same program).
func depKey(d *ddg.Dep) string {
	return fmt.Sprintf("%d->%d:%d", d.Src.ID, d.Dst.ID, d.Kind)
}

func depSet(g *ddg.Graph) map[string]*ddg.Dep {
	out := make(map[string]*ddg.Dep, len(g.Deps))
	for _, d := range g.Deps {
		out[depKey(d)] = d
	}
	return out
}

// TestEngineConcurrentRuns drives several engines at once — each with
// its own shard workers — and checks every one against the sequential
// graph.  Under -race this is the concurrency soundness test for the
// whole dispatch/barrier/merge protocol; folder ownership assertions
// catch any stream with two owners.
func TestEngineConcurrentRuns(t *testing.T) {
	defer fold.SetOwnershipChecks(fold.SetOwnershipChecks(true))
	prog := buildWorkload(t, "backprop")
	want, err := runGraph(t, prog, 0, budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	wantDeps := depSet(want)

	runs := 4
	if testing.Short() {
		runs = 2
	}
	var wg sync.WaitGroup
	errs := make([]error, runs)
	graphs := make([]*ddg.Graph, runs)
	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			graphs[i], errs[i] = runGraph(t, prog, 4, budget.Limits{})
		}()
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		g := graphs[i]
		if g.TotalOps != want.TotalOps || len(g.Deps) != len(want.Deps) {
			t.Fatalf("run %d: ops %d deps %d, want ops %d deps %d",
				i, g.TotalOps, len(g.Deps), want.TotalOps, len(want.Deps))
		}
		for k, d := range depSet(g) {
			w, ok := wantDeps[k]
			if !ok {
				t.Fatalf("run %d: dep %s not in sequential graph", i, k)
			}
			if d.Count != w.Count || len(d.Pieces) != len(w.Pieces) {
				t.Fatalf("run %d: dep %s count/pieces %d/%d, want %d/%d",
					i, k, d.Count, len(d.Pieces), w.Count, len(w.Pieces))
			}
		}
	}
}

// TestFaultPointsFailCleanly arms each parddg fault point in error mode
// and checks the failure is contained: the run returns an error (no
// panic escapes, no deadlock on the batch barriers) and a subsequent
// clean run on a fresh engine succeeds.
func TestFaultPointsFailCleanly(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	prog := buildWorkload(t, "example1")
	for _, point := range []string{"parddg.batch.dispatch", "parddg.shard.insert", "parddg.merge"} {
		for _, mode := range []string{"error", "panic"} {
			t.Run(point+"/"+mode, func(t *testing.T) {
				if err := faultinject.ArmString(fmt.Sprintf("%s=%s:chaos:1", point, mode)); err != nil {
					t.Fatal(err)
				}
				defer faultinject.DisarmAll()
				if _, err := runGraph(t, prog, 2, budget.Limits{}); err == nil {
					t.Fatalf("injected %s at %s: run succeeded, want error", mode, point)
				}
				// The engine must be fully reusable afterwards.
				if _, err := runGraph(t, prog, 2, budget.Limits{}); err != nil {
					t.Fatalf("clean run after %s fault: %v", point, err)
				}
			})
		}
	}
}

// TestShardInsertBudgetDegrades: an injected shadow-bytes exhaustion at
// the shard-insert point coarsens tracking — exactly like the
// sequential engine's ddg.shadow.insert — instead of failing the run.
func TestShardInsertBudgetDegrades(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	prog := buildWorkload(t, "backprop")
	if err := faultinject.ArmString("parddg.shard.insert=budget:" + budget.ResourceShadowBytes + ":1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.DisarmAll()
	g, err := runGraph(t, prog, 4, budget.Limits{})
	if err != nil {
		t.Fatalf("budget fault must degrade, not fail: %v", err)
	}
	if g.Degraded == nil || g.Degraded.CoarseEvents == 0 {
		t.Fatalf("graph not degraded after injected shadow exhaustion: %+v", g.Degraded)
	}
}

// TestDegradationSuperset: under a real shadow budget the parallel
// engine degrades soundly — it still reports a graph, marks it
// degraded, and every *exact* dependence bundle it keeps also exists
// in the unlimited run (degradation may only replace exact edges with
// coarse over-approximations, never invent exact ones).
func TestDegradationSuperset(t *testing.T) {
	prog := buildWorkload(t, "nn")
	exact, err := runGraph(t, prog, 4, budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Degraded != nil {
		t.Fatal("unlimited run must not degrade")
	}
	exactDeps := depSet(exact)

	deg, err := runGraph(t, prog, 4, budget.Limits{MaxShadowBytes: 4096})
	if err != nil {
		t.Fatalf("degrading limits must not fail the run: %v", err)
	}
	if deg.Degraded == nil || len(deg.Degraded.Budgets) == 0 {
		t.Fatal("shadow-limited run not marked degraded")
	}
	if deg.TotalOps != exact.TotalOps {
		t.Fatalf("degradation changed op counts: %d vs %d", deg.TotalOps, exact.TotalOps)
	}
	coarse := 0
	for k, d := range depSet(deg) {
		if d.Degraded {
			coarse++
			continue
		}
		if _, ok := exactDeps[k]; !ok {
			t.Fatalf("degraded run invented exact dep %s", k)
		}
	}
	if coarse == 0 {
		t.Fatal("degraded run has no coarse dependence bundles")
	}
	for _, r := range deg.Degraded.Regions {
		if r.Lo > r.Hi {
			t.Fatalf("coarse region [%d, %d] inverted", r.Lo, r.Hi)
		}
	}
}
