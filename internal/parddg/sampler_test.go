package parddg_test

import (
	"context"
	"fmt"
	"testing"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/ddg"
	"polyprof/internal/obs"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/parddg"
)

// runSampled profiles prog through the sharded engine with an enabled
// sampler attached and returns the graph plus the diagnosis report.
func runSampled(t testing.TB, shards int) (*ddg.Graph, *sampler.Report) {
	t.Helper()
	prog := buildWorkload(t, "example2")
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	bud := budget.New(context.Background(), budget.Limits{})
	opts := ddg.DefaultOptions()
	opts.Budget = bud
	smp := sampler.New()
	smp.SetEnabled(true)
	eng := parddg.NewEngine(prog, parddg.Options{Shards: shards, DDG: opts, Sampler: smp})
	defer eng.Close()
	if _, _, err := core.RunPass2Scoped(prog, st, eng, nil, obs.Scope{}, bud); err != nil {
		t.Fatal(err)
	}
	g, err := eng.FinishChecked()
	if err != nil {
		t.Fatal(err)
	}
	return g, smp.Report()
}

// TestEngineSamplerReport runs a real sharded profile with the sampler
// on and sanity-checks the derived diagnosis: all actors present, busy
// fractions within [0,1], queue depth sampled, and the graph still
// bit-identical to the sequential builder's.
func TestEngineSamplerReport(t *testing.T) {
	const shards = 2
	seqG, err := runGraph(t, buildWorkload(t, "example2"), 0, budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	g, rep := runSampled(t, shards)

	if rep == nil {
		t.Fatal("nil report from sampled run")
	}
	if rep.Shards != shards {
		t.Fatalf("report shards = %d, want %d", rep.Shards, shards)
	}
	if rep.WallNS <= 0 {
		t.Fatalf("wall = %d", rep.WallNS)
	}
	want := map[string]bool{"sequencer": false, "merge": false}
	for i := 0; i < shards; i++ {
		want[fmt.Sprintf("shard-%d", i)] = false
	}
	for _, a := range rep.Actors {
		if _, ok := want[a.Name]; !ok {
			t.Fatalf("unexpected actor %q", a.Name)
		}
		want[a.Name] = true
		if a.BusyFrac < 0 || a.BusyFrac > 1 {
			t.Fatalf("actor %s busy fraction %v out of [0,1]", a.Name, a.BusyFrac)
		}
		if a.Transitions == 0 {
			t.Fatalf("actor %s recorded no transitions", a.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("actor %q missing from report", name)
		}
	}
	if rep.SerialFrac < 0 || rep.SerialFrac > 1 {
		t.Fatalf("serial fraction %v out of [0,1]", rep.SerialFrac)
	}
	if rep.CriticalPathNS <= 0 {
		t.Fatalf("critical path = %d", rep.CriticalPathNS)
	}
	var sampled bool
	for _, q := range rep.Queues {
		if q.Samples > 0 {
			sampled = true
		}
	}
	if !sampled {
		t.Fatal("no queue depth samples recorded")
	}

	// Attaching the sampler must not perturb the graph.
	seq, got := depSet(seqG), depSet(g)
	if len(seq) != len(got) {
		t.Fatalf("dep count: sequential %d vs sampled %d", len(seq), len(got))
	}
	for k := range seq {
		if _, ok := got[k]; !ok {
			t.Fatalf("dep %s missing from sampled run", k)
		}
	}
}
