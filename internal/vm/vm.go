// Package vm executes isa programs under instrumentation.  It plays the
// role QEMU plays for the paper: a translator/interpreter whose plugin
// hooks expose control transfers, memory addresses and produced integer
// values to the profiling stages, without the profiler ever inspecting
// program semantics directly.
package vm

import (
	"fmt"
	"math"

	"polyprof/internal/budget"
	"polyprof/internal/faultinject"
	"polyprof/internal/isa"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
	"polyprof/internal/progress"
	"polyprof/internal/trace"
)

// DefaultMaxSteps bounds a run to catch accidentally non-terminating
// workloads; it is far above anything the bundled benchmarks need.
const DefaultMaxSteps = 500_000_000

// DefaultMaxDepth bounds the call stack so unbounded recursion traps
// instead of exhausting host memory.
const DefaultMaxDepth = 1 << 20

// MaxMemWords caps program memory (2 GiB of words); workloads declare
// far less, and hostile images must not drive host allocation.
const MaxMemWords = 1 << 28

// watchdogInterval is how many steps run between watchdog checkpoints
// (budget, deadline, fault injection).  The interpreter loop pays one
// integer comparison per step; everything else is amortized over this
// window.
const watchdogInterval = 1 << 16

// stepFault injects at the VM watchdog checkpoint.
var stepFault = faultinject.Point("vm.step")

// Stats aggregates the dynamic operation counters the paper reports
// (#Ops, #Mops and derived percentages).
type Stats struct {
	Ops    uint64 // all executed instructions
	MemOps uint64 // loads + stores
	FPOps  uint64 // floating point operations
	Calls  uint64 // call events
	Jumps  uint64 // local jump events
}

type frame struct {
	fn   *isa.Func
	regs []uint64
	blk  *isa.Block
	pc   int

	// Return linkage into the caller.
	retDst  isa.Reg
	retCont isa.BlockID
}

// Machine interprets one program.  The zero value is not usable; create
// machines with New.
type Machine struct {
	prog  *isa.Program
	mem   []uint64
	hooks []trace.Hook

	stack      []frame
	stats      Stats
	depthLimit int

	// MaxSteps overrides DefaultMaxSteps when non-zero.
	MaxSteps uint64

	// MaxDepth overrides DefaultMaxDepth when non-zero.
	MaxDepth int

	// Budget, when set, governs the run: its step limit tightens
	// MaxSteps, and the watchdog checkpoint polls it for cancellation,
	// deadline and trace-event exhaustion every watchdogInterval steps.
	Budget *budget.Budget

	// InitMem, when set, is invoked once before execution with the raw
	// memory so workloads can preload inputs (the paper's benchmarks read
	// input files; ours synthesize equivalent data).
	InitMem func(mem []uint64)

	// Obs is the span-context this run publishes its dynamic event
	// counters into; the zero Scope targets the process-wide default
	// registry, so standalone machines behave as before.
	Obs obs.Scope

	// Cost, when set, accumulates simulated cycles during execution
	// (base per-opcode costs plus cache-modeled memory latency).
	Cost *CycleModel

	// Progress, when set, receives the live executed-op count at every
	// watchdog checkpoint (once per 2^16 steps) and once at run end, so
	// long runs can be observed without touching the per-step hot path.
	Progress *progress.Tracker

	// EpochEvents, with OnEpoch, pauses the run every EpochEvents
	// executed instructions (exactly at multiples of EpochEvents, so
	// epoch boundaries are deterministic across runs and resumes) and
	// invokes OnEpoch with the machine quiescent: buffered instruction
	// events are flushed first, so downstream sinks have seen the whole
	// epoch.  The hot loop cost is folded into the existing watchdog
	// comparison.
	EpochEvents uint64
	// OnEpoch is called at each epoch boundary with the executed-op
	// count; a non-nil error aborts the run.
	OnEpoch func(events uint64) error

	// restored is non-nil when Restore loaded a checkpoint; Run then
	// continues mid-program instead of starting from main's entry.
	restored *State

	// batch is non-nil when the machine drives exactly one hook and it
	// implements trace.BatchHook: instruction events then buffer in
	// bufEv/bufIn and flush as one InstrBatch call before every control
	// event, at the buffer cap, and when Run returns.
	batch trace.BatchHook
	bufEv []trace.InstrEvent
	bufIn []*isa.Instr
}

// batchCap bounds the instruction-event buffer between flushes so a
// giant straight-line block cannot hold an unbounded batch.
const batchCap = 1024

// New creates a machine for prog with the given instrumentation hooks
// (nil hooks are dropped).
func New(prog *isa.Program, hooks ...trace.Hook) *Machine {
	m := &Machine{prog: prog}
	for _, h := range hooks {
		if h != nil {
			m.hooks = append(m.hooks, h)
		}
	}
	// Batching is only sound with a single hook: with several, deferring
	// one hook's instruction events past another's would reorder the
	// streams relative to each other.
	if len(m.hooks) == 1 {
		if bh, ok := m.hooks[0].(trace.BatchHook); ok {
			m.batch = bh
		}
	}
	return m
}

// Mem exposes the machine memory (valid after Run, or inside hooks).
func (m *Machine) Mem() []uint64 { return m.mem }

// Stats returns the dynamic operation counters of the last run.
func (m *Machine) Stats() Stats { return m.stats }

// F64 interprets a memory word as float64.
func F64(w uint64) float64 { return math.Float64frombits(w) }

// W64 encodes a float64 as a memory word.
func W64(f float64) uint64 { return math.Float64bits(f) }

func (m *Machine) emitControl(ev trace.ControlEvent) {
	if m.batch != nil {
		m.flushInstrs()
		m.batch.Control(ev)
		return
	}
	for _, h := range m.hooks {
		h.Control(ev)
	}
}

func (m *Machine) emitInstr(ev trace.InstrEvent, in *isa.Instr) {
	if m.batch != nil {
		m.bufEv = append(m.bufEv, ev)
		m.bufIn = append(m.bufIn, in)
		if len(m.bufEv) >= batchCap {
			m.flushInstrs()
		}
		return
	}
	for _, h := range m.hooks {
		h.Instr(ev, in)
	}
}

// flushInstrs delivers the buffered instruction events as one batch.
func (m *Machine) flushInstrs() {
	if len(m.bufEv) == 0 {
		return
	}
	m.batch.InstrBatch(m.bufEv, m.bufIn)
	m.bufEv = m.bufEv[:0]
	m.bufIn = m.bufIn[:0]
}

// publishStats records the run's dynamic event counters in the scoped
// metrics registry.  Counting happens in Stats during execution; this
// publishes once per run, so the interpreter loop carries no
// instrumentation cost.
func (m *Machine) publishStats() {
	m.Progress.SetEvents(m.stats.Ops)
	if !m.Obs.Enabled() {
		return
	}
	m.Obs.Add("vm.runs", 1)
	m.Obs.Add("vm.instructions", m.stats.Ops)
	m.Obs.Add("vm.mem_events", m.stats.MemOps)
	m.Obs.Add("vm.control_events", m.stats.Calls+m.stats.Jumps)
	m.Obs.Add("vm.fp_ops", m.stats.FPOps)
	m.Obs.Observe("vm.run.instructions", m.stats.Ops)
}

// Run executes the program from its main function until Halt, the final
// return from main, or an error (trap, step limit, budget exhaustion).
// The program is validated first so hostile images (bad targets,
// out-of-range registers) fail cleanly instead of panicking.
func (m *Machine) Run() error {
	if err := m.prog.Validate(); err != nil {
		return fmt.Errorf("vm: refusing invalid program: %w", err)
	}
	if m.prog.MemWords > MaxMemWords {
		return fmt.Errorf("vm: program %q wants %d memory words (max %d)",
			m.prog.Name, m.prog.MemWords, MaxMemWords)
	}
	defer m.publishStats()
	if m.batch != nil {
		// Every exit path — halt, trap, budget abort — delivers pending
		// buffered events first, so a batching hook sees the same prefix
		// of the stream a per-event hook would have seen.
		m.bufEv = m.bufEv[:0]
		m.bufIn = m.bufIn[:0]
		defer m.flushInstrs()
	}
	m.depthLimit = m.MaxDepth
	if m.depthLimit <= 0 {
		m.depthLimit = DefaultMaxDepth
	}
	if st := m.restored; st != nil {
		// Resume mid-program: memory, stack and counters come from the
		// checkpoint; the synthetic entry event was already delivered in
		// the original attempt, and the downstream sinks restore their
		// own state to match.
		m.restored = nil
		if err := m.applyState(st); err != nil {
			return err
		}
	} else {
		m.mem = make([]uint64, m.prog.MemWords)
		if m.InitMem != nil {
			m.InitMem(m.mem)
		}
		m.stats = Stats{}
		main := m.prog.Func(m.prog.Main)
		m.stack = m.stack[:0]
		m.push(main, nil, isa.NoReg, isa.NoBlock)

		// Synthetic entry event so the analyses see main's entry block
		// (Fig. 3d step 1 shows exactly this N(M0) event).
		m.emitControl(trace.ControlEvent{
			Kind: trace.Jump, Src: isa.NoBlock, Dst: main.Entry,
			Callee: isa.NoFunc, Caller: isa.NoFunc,
		})
	}

	limit := m.MaxSteps
	if limit == 0 {
		limit = DefaultMaxSteps
	}
	budgetSteps := false
	if bs := m.Budget.StepLimit(); bs > 0 && bs < limit {
		limit, budgetSteps = bs, true
	}

	// The hot loop pays a single comparison per step; the watchdog
	// (fault injection, step limit, deadline/cancellation, trace-event
	// budget) runs every watchdogInterval steps.  nextCheck starts at 0
	// so the first step always checkpoints — fault injection fires
	// deterministically even on tiny programs.
	var nextEpoch uint64
	if m.EpochEvents > 0 && m.OnEpoch != nil {
		nextEpoch = (m.stats.Ops/m.EpochEvents + 1) * m.EpochEvents
	}
	var nextCheck uint64
	counted := m.stats.Ops
	for len(m.stack) > 0 {
		if m.stats.Ops >= nextCheck {
			if err := m.checkpoint(limit, budgetSteps, &counted); err != nil {
				return err
			}
			if nextEpoch > 0 && m.stats.Ops >= nextEpoch {
				m.flushInstrs()
				if err := m.OnEpoch(m.stats.Ops); err != nil {
					return err
				}
				nextEpoch = (m.stats.Ops/m.EpochEvents + 1) * m.EpochEvents
			}
			nextCheck = m.stats.Ops + watchdogInterval
			if nextCheck > limit {
				nextCheck = limit
			}
			if nextEpoch > 0 && nextCheck > nextEpoch {
				nextCheck = nextEpoch
			}
		}
		halt, err := m.step()
		if err != nil {
			return err
		}
		if halt {
			return nil
		}
	}
	return nil
}

// checkpoint is the amortized watchdog body.
func (m *Machine) checkpoint(limit uint64, budgetSteps bool, counted *uint64) error {
	m.Progress.SetEvents(m.stats.Ops)
	if err := stepFault.Hit(); err != nil {
		return fmt.Errorf("vm %q: %w", m.prog.Name, err)
	}
	if m.stats.Ops >= limit {
		if budgetSteps {
			err := &budget.Error{
				Resource: budget.ResourceSteps, Stage: "vm",
				Limit: limit, Used: m.stats.Ops,
			}
			flight.Log("budget", err.Resource, err.Error())
			return err
		}
		return fmt.Errorf("vm: step limit %d exceeded in %q", limit, m.prog.Name)
	}
	if m.Budget != nil {
		if err := m.Budget.Check("vm"); err != nil {
			return err
		}
		if err := m.Budget.CountEvents(m.stats.Ops-*counted, "vm"); err != nil {
			return err
		}
		*counted = m.stats.Ops
	}
	return nil
}

func (m *Machine) push(fn *isa.Func, args []uint64, retDst isa.Reg, retCont isa.BlockID) {
	regs := make([]uint64, fn.NumRegs)
	copy(regs, args)
	m.stack = append(m.stack, frame{
		fn: fn, regs: regs, blk: m.prog.Block(fn.Entry),
		retDst: retDst, retCont: retCont,
	})
}

func (m *Machine) top() *frame { return &m.stack[len(m.stack)-1] }

func (m *Machine) trap(f *frame, format string, args ...interface{}) error {
	in := &f.blk.Code[f.pc]
	return fmt.Errorf("vm trap in %s, block %q, instr %d (%s at %s): %s",
		f.fn.Name, f.blk.Name, f.pc, m.prog.DisasmInstr(in), in.Loc, fmt.Sprintf(format, args...))
}

// step executes one instruction; returns halt=true on Halt.
func (m *Machine) step() (halt bool, err error) {
	f := m.top()
	in := &f.blk.Code[f.pc]
	r := f.regs
	m.stats.Ops++
	if in.Op.IsFP() {
		m.stats.FPOps++
	}

	ev := trace.InstrEvent{Ref: trace.InstrRef{Block: f.blk.ID, Index: int32(f.pc)}, Addr: -1}

	switch in.Op {
	case isa.Nop:
	case isa.ConstI:
		r[in.Dst] = uint64(in.Imm)
	case isa.Mov, isa.FMov:
		r[in.Dst] = r[in.A]
	case isa.Add:
		r[in.Dst] = uint64(int64(r[in.A]) + int64(r[in.B]))
	case isa.Sub:
		r[in.Dst] = uint64(int64(r[in.A]) - int64(r[in.B]))
	case isa.Mul:
		r[in.Dst] = uint64(int64(r[in.A]) * int64(r[in.B]))
	case isa.Div:
		if r[in.B] == 0 {
			return false, m.trap(f, "integer division by zero")
		}
		r[in.Dst] = uint64(int64(r[in.A]) / int64(r[in.B]))
	case isa.Mod:
		if r[in.B] == 0 {
			return false, m.trap(f, "integer modulo by zero")
		}
		r[in.Dst] = uint64(int64(r[in.A]) % int64(r[in.B]))
	case isa.And:
		r[in.Dst] = r[in.A] & r[in.B]
	case isa.Or:
		r[in.Dst] = r[in.A] | r[in.B]
	case isa.Xor:
		r[in.Dst] = r[in.A] ^ r[in.B]
	case isa.Shl:
		r[in.Dst] = uint64(int64(r[in.A]) << (r[in.B] & 63))
	case isa.Shr:
		r[in.Dst] = uint64(int64(r[in.A]) >> (r[in.B] & 63))
	case isa.MinI:
		r[in.Dst] = uint64(min(int64(r[in.A]), int64(r[in.B])))
	case isa.MaxI:
		r[in.Dst] = uint64(max(int64(r[in.A]), int64(r[in.B])))
	case isa.CmpEQ:
		r[in.Dst] = b2w(int64(r[in.A]) == int64(r[in.B]))
	case isa.CmpNE:
		r[in.Dst] = b2w(int64(r[in.A]) != int64(r[in.B]))
	case isa.CmpLT:
		r[in.Dst] = b2w(int64(r[in.A]) < int64(r[in.B]))
	case isa.CmpLE:
		r[in.Dst] = b2w(int64(r[in.A]) <= int64(r[in.B]))
	case isa.CmpGT:
		r[in.Dst] = b2w(int64(r[in.A]) > int64(r[in.B]))
	case isa.CmpGE:
		r[in.Dst] = b2w(int64(r[in.A]) >= int64(r[in.B]))
	case isa.ConstF:
		r[in.Dst] = W64(in.FImm)
	case isa.FAdd:
		r[in.Dst] = W64(F64(r[in.A]) + F64(r[in.B]))
	case isa.FSub:
		r[in.Dst] = W64(F64(r[in.A]) - F64(r[in.B]))
	case isa.FMul:
		r[in.Dst] = W64(F64(r[in.A]) * F64(r[in.B]))
	case isa.FDiv:
		r[in.Dst] = W64(F64(r[in.A]) / F64(r[in.B]))
	case isa.FMin:
		r[in.Dst] = W64(math.Min(F64(r[in.A]), F64(r[in.B])))
	case isa.FMax:
		r[in.Dst] = W64(math.Max(F64(r[in.A]), F64(r[in.B])))
	case isa.FNeg:
		r[in.Dst] = W64(-F64(r[in.A]))
	case isa.FAbs:
		r[in.Dst] = W64(math.Abs(F64(r[in.A])))
	case isa.FSqrt:
		r[in.Dst] = W64(math.Sqrt(F64(r[in.A])))
	case isa.FExp:
		r[in.Dst] = W64(math.Exp(F64(r[in.A])))
	case isa.FLog:
		r[in.Dst] = W64(math.Log(F64(r[in.A])))
	case isa.FCmpEQ:
		r[in.Dst] = b2w(F64(r[in.A]) == F64(r[in.B]))
	case isa.FCmpLT:
		r[in.Dst] = b2w(F64(r[in.A]) < F64(r[in.B]))
	case isa.FCmpLE:
		r[in.Dst] = b2w(F64(r[in.A]) <= F64(r[in.B]))
	case isa.I2F:
		r[in.Dst] = W64(float64(int64(r[in.A])))
	case isa.F2I:
		r[in.Dst] = uint64(int64(F64(r[in.A])))

	case isa.Load, isa.FLoad:
		addr := int64(r[in.A]) + in.Imm
		if in.Index != isa.NoReg {
			addr += int64(r[in.Index])
		}
		if addr < 0 || addr >= int64(len(m.mem)) {
			return false, m.trap(f, "load out of bounds: address %d (memory %d words)", addr, len(m.mem))
		}
		m.stats.MemOps++
		r[in.Dst] = m.mem[addr]
		ev.Addr = addr
	case isa.Store, isa.FStore:
		addr := int64(r[in.A]) + in.Imm
		if in.Index != isa.NoReg {
			addr += int64(r[in.Index])
		}
		if addr < 0 || addr >= int64(len(m.mem)) {
			return false, m.trap(f, "store out of bounds: address %d (memory %d words)", addr, len(m.mem))
		}
		m.stats.MemOps++
		m.mem[addr] = r[in.B]
		ev.Addr = addr

	case isa.Jmp:
		m.stats.Jumps++
		m.emitInstr(ev, in)
		m.emitControl(trace.ControlEvent{
			Kind: trace.Jump, Src: f.blk.ID, Dst: in.Then,
			Callee: isa.NoFunc, Caller: isa.NoFunc,
		})
		f.blk, f.pc = m.prog.Block(in.Then), 0
		return false, nil
	case isa.Br:
		m.stats.Jumps++
		dst := in.Else
		if r[in.A] != 0 {
			dst = in.Then
		}
		m.emitInstr(ev, in)
		m.emitControl(trace.ControlEvent{
			Kind: trace.Jump, Src: f.blk.ID, Dst: dst,
			Callee: isa.NoFunc, Caller: isa.NoFunc,
		})
		f.blk, f.pc = m.prog.Block(dst), 0
		return false, nil
	case isa.Call:
		if len(m.stack) >= m.depthLimit {
			return false, m.trap(f, "call stack overflow: depth %d", len(m.stack))
		}
		m.stats.Calls++
		callee := m.prog.Func(in.Callee)
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = r[a]
		}
		m.emitInstr(ev, in)
		m.emitControl(trace.ControlEvent{
			Kind: trace.Call, Src: f.blk.ID, Dst: callee.Entry,
			Callee: callee.ID, Caller: f.fn.ID,
		})
		m.push(callee, args, in.Dst, in.Then)
		return false, nil
	case isa.Ret:
		var val uint64
		if in.A != isa.NoReg {
			val = r[in.A]
		}
		m.emitInstr(ev, in)
		callee := f.fn
		retDst, retCont := f.retDst, f.retCont
		m.stack = m.stack[:len(m.stack)-1]
		if len(m.stack) == 0 {
			return true, nil // main returned
		}
		caller := m.top()
		if retDst != isa.NoReg {
			caller.regs[retDst] = val
		}
		m.emitControl(trace.ControlEvent{
			Kind: trace.Return, Src: f.blk.ID, Dst: retCont,
			Callee: callee.ID, Caller: caller.fn.ID,
		})
		caller.blk, caller.pc = m.prog.Block(retCont), 0
		return false, nil
	case isa.Halt:
		m.emitInstr(ev, in)
		return true, nil
	default:
		return false, m.trap(f, "unknown opcode %v", in.Op)
	}

	if in.Op.ProducesInt() {
		ev.Value = int64(r[in.Dst])
	}
	if m.Cost != nil {
		m.Cost.account(in.Op, ev.Addr)
	}
	m.emitInstr(ev, in)
	f.pc++
	return false, nil
}

func b2w(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
