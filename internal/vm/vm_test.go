package vm_test

import (
	"strings"
	"testing"

	"polyprof/internal/cachesim"
	"polyprof/internal/isa"
	"polyprof/internal/trace"
	"polyprof/internal/vm"
)

// buildAndRun builds a tiny program with the given body and returns the
// machine after running it.
func buildAndRun(t *testing.T, memWords int64, body func(f *isa.FuncBuilder)) *vm.Machine {
	t.Helper()
	pb := isa.NewProgram("t")
	if memWords > 0 {
		pb.Global("mem", memWords)
	}
	f := pb.Func("main", 0)
	body(f)
	f.Halt()
	pb.SetMain(f)
	m := vm.New(pb.MustBuild())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIntegerArithmetic(t *testing.T) {
	m := buildAndRun(t, 16, func(f *isa.FuncBuilder) {
		base := f.IConst(0)
		a := f.IConst(17)
		b := f.IConst(5)
		f.StoreIdx(base, f.IConst(0), 0, f.Add(a, b))            // 22
		f.StoreIdx(base, f.IConst(1), 0, f.Sub(a, b))            // 12
		f.StoreIdx(base, f.IConst(2), 0, f.Mul(a, b))            // 85
		f.StoreIdx(base, f.IConst(3), 0, f.Div(a, b))            // 3
		f.StoreIdx(base, f.IConst(4), 0, f.Mod(a, b))            // 2
		f.StoreIdx(base, f.IConst(5), 0, f.MinI(a, b))           // 5
		f.StoreIdx(base, f.IConst(6), 0, f.MaxI(a, b))           // 17
		f.StoreIdx(base, f.IConst(7), 0, f.CmpLT(b, a))          // 1
		f.StoreIdx(base, f.IConst(8), 0, f.CmpEQ(a, a))          // 1
		f.StoreIdx(base, f.IConst(9), 0, f.CmpGE(b, a))          // 0
		f.StoreIdx(base, f.IConst(10), 0, f.Shl(b, f.IConst(2))) // 20
		f.StoreIdx(base, f.IConst(11), 0, f.Xor(a, b))           // 20
	})
	want := []int64{22, 12, 85, 3, 2, 5, 17, 1, 1, 0, 20, 20}
	for i, w := range want {
		if got := int64(m.Mem()[i]); got != w {
			t.Errorf("mem[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	m := buildAndRun(t, 8, func(f *isa.FuncBuilder) {
		base := f.IConst(0)
		a := f.FConst(2.5)
		b := f.FConst(0.5)
		f.FStoreIdx(base, f.IConst(0), 0, f.FAdd(a, b))
		f.FStoreIdx(base, f.IConst(1), 0, f.FMul(a, b))
		f.FStoreIdx(base, f.IConst(2), 0, f.FSqrt(f.FConst(9)))
		f.FStoreIdx(base, f.IConst(3), 0, f.FAbs(f.FNeg(a)))
		f.StoreIdx(base, f.IConst(4), 0, f.FCmpLT(b, a))
		f.FStoreIdx(base, f.IConst(5), 0, f.I2F(f.IConst(7)))
		f.StoreIdx(base, f.IConst(6), 0, f.F2I(f.FConst(3.9)))
	})
	wantF := map[int]float64{0: 3.0, 1: 1.25, 2: 3.0, 3: 2.5, 5: 7.0}
	for i, w := range wantF {
		if got := vm.F64(m.Mem()[i]); got != w {
			t.Errorf("mem[%d] = %g, want %g", i, got, w)
		}
	}
	if m.Mem()[4] != 1 || int64(m.Mem()[6]) != 3 {
		t.Errorf("compare/convert results wrong: %v %v", m.Mem()[4], m.Mem()[6])
	}
}

func TestCallReturnValue(t *testing.T) {
	pb := isa.NewProgram("t")
	g := pb.Global("out", 1)
	callee := pb.Func("twice", 1)
	callee.Ret(callee.Add(callee.Arg(0), callee.Arg(0)))
	f := pb.Func("main", 0)
	v := f.Call(callee.ID(), f.IConst(21))
	f.Store(f.IConst(g.Base), 0, v)
	f.Halt()
	pb.SetMain(f)
	m := vm.New(pb.MustBuild())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := int64(m.Mem()[g.Base]); got != 42 {
		t.Errorf("return value = %d, want 42", got)
	}
	if m.Stats().Calls != 1 {
		t.Errorf("calls = %d, want 1", m.Stats().Calls)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	pb := isa.NewProgram("t")
	f := pb.Func("main", 0)
	f.Div(f.IConst(1), f.IConst(0))
	f.Halt()
	pb.SetMain(f)
	err := vm.New(pb.MustBuild()).Run()
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("want division-by-zero trap, got %v", err)
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	pb := isa.NewProgram("t")
	pb.Global("mem", 4)
	f := pb.Func("main", 0)
	f.Load(f.IConst(100), 0)
	f.Halt()
	pb.SetMain(f)
	err := vm.New(pb.MustBuild()).Run()
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("want out-of-bounds trap, got %v", err)
	}
	// Negative address too.
	pb2 := isa.NewProgram("t2")
	pb2.Global("mem", 4)
	f2 := pb2.Func("main", 0)
	f2.Store(f2.IConst(-1), 0, f2.IConst(0))
	f2.Halt()
	pb2.SetMain(f2)
	if err := vm.New(pb2.MustBuild()).Run(); err == nil {
		t.Fatal("negative store must trap")
	}
}

func TestStepLimit(t *testing.T) {
	pb := isa.NewProgram("t")
	f := pb.Func("main", 0)
	f.While("forever", func() isa.Reg { return f.IConst(1) }, func() {})
	f.Halt()
	pb.SetMain(f)
	m := vm.New(pb.MustBuild())
	m.MaxSteps = 1000
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestInitMem(t *testing.T) {
	pb := isa.NewProgram("t")
	g := pb.Global("data", 4)
	f := pb.Func("main", 0)
	v := f.Load(f.IConst(g.Base), 1)
	f.Store(f.IConst(g.Base), 0, f.Add(v, v))
	f.Halt()
	pb.SetMain(f)
	m := vm.New(pb.MustBuild())
	m.InitMem = func(mem []uint64) { mem[g.Base+1] = 21 }
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := int64(m.Mem()[g.Base]); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestIndexedAddressing(t *testing.T) {
	m := buildAndRun(t, 16, func(f *isa.FuncBuilder) {
		base := f.IConst(2)
		idx := f.IConst(3)
		f.StoreIdx(base, idx, 1, f.IConst(99)) // mem[2+3+1] = 99
	})
	if got := int64(m.Mem()[6]); got != 99 {
		t.Errorf("indexed store landed wrong: mem[6] = %d", got)
	}
}

// TestControlEventOrdering checks the invariant analyses rely on: the
// instruction event of a terminator precedes its control event, and
// call events carry the callee entry block.
func TestControlEventOrdering(t *testing.T) {
	pb := isa.NewProgram("t")
	callee := pb.Func("g", 0)
	callee.RetVoid()
	f := pb.Func("main", 0)
	f.Call(callee.ID())
	f.Halt()
	pb.SetMain(f)
	prog := pb.MustBuild()

	var events []string
	hook := recorderHook{
		onCtl: func(ev trace.ControlEvent) {
			events = append(events, "ctl:"+ev.Kind.String())
		},
		onIns: func(ev trace.InstrEvent, in *isa.Instr) {
			if in.Op.IsTerminator() {
				events = append(events, "ins:"+in.Op.String())
			}
		},
	}
	if err := vm.New(prog, hook).Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"ctl:jump", "ins:call", "ctl:call", "ins:ret", "ctl:return", "ins:halt"}
	if strings.Join(events, " ") != strings.Join(want, " ") {
		t.Errorf("event order = %v, want %v", events, want)
	}
}

type recorderHook struct {
	onCtl func(trace.ControlEvent)
	onIns func(trace.InstrEvent, *isa.Instr)
}

func (r recorderHook) Control(ev trace.ControlEvent)            { r.onCtl(ev) }
func (r recorderHook) Instr(ev trace.InstrEvent, in *isa.Instr) { r.onIns(ev, in) }

// TestStatsCounters checks the dynamic operation counters.
func TestStatsCounters(t *testing.T) {
	m := buildAndRun(t, 8, func(f *isa.FuncBuilder) {
		base := f.IConst(0)
		f.Loop("L", f.IConst(0), f.IConst(4), 1, func(i isa.Reg) {
			f.FStoreIdx(base, i, 0, f.FConst(1))
		})
	})
	st := m.Stats()
	if st.MemOps != 4 {
		t.Errorf("mem ops = %d, want 4", st.MemOps)
	}
	if st.FPOps < 8 { // 4 ConstF + 4 FStore
		t.Errorf("fp ops = %d, want >= 8", st.FPOps)
	}
	if st.Ops == 0 || st.Jumps == 0 {
		t.Errorf("counters empty: %+v", st)
	}
}

// TestCycleModel: cycles accumulate and reflect cache behavior (a
// repeated hot access costs less than cold misses).
func TestCycleModel(t *testing.T) {
	build := func(stride int64) *isa.Program {
		pb := isa.NewProgram("cycles")
		g := pb.Global("A", 4096)
		f := pb.Func("main", 0)
		base := f.IConst(g.Base)
		f.Loop("L", f.IConst(0), f.IConst(256), 1, func(i isa.Reg) {
			f.FLoadIdx(base, f.Mul(i, f.IConst(stride)), 0)
		})
		f.Halt()
		pb.SetMain(f)
		return pb.MustBuild()
	}

	run := func(stride int64) uint64 {
		m := vm.New(build(stride))
		m.Cost = vm.NewCycleModel(cachesim.Config{
			LineWords: 8, Sets: 8, Ways: 2, HitLatency: 1, MissLatency: 100,
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Cost.Cycles()
	}

	sequential := run(1) // one miss per 8 accesses
	strided := run(16)   // every access misses
	if sequential == 0 || strided == 0 {
		t.Fatal("cycle model accumulated nothing")
	}
	if strided < sequential*2 {
		t.Errorf("strided run (%d cycles) should cost far more than sequential (%d)", strided, sequential)
	}
}
