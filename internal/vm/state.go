package vm

import (
	"encoding/binary"
	"fmt"

	"polyprof/internal/isa"
)

// FrameState is one serialized interpreter frame: block and function by
// ID, so a restored machine re-binds them against its own program image
// (the pipeline re-materializes the identical program on resume).
type FrameState struct {
	Fn      isa.FuncID  `json:"fn"`
	Regs    []uint64    `json:"regs"`
	Blk     isa.BlockID `json:"blk"`
	PC      int         `json:"pc"`
	RetDst  isa.Reg     `json:"retdst"`
	RetCont isa.BlockID `json:"retcont"`
}

// State is a machine checkpoint taken at an epoch boundary (the VM is
// quiescent inside OnEpoch, so memory, stack and counters are a
// consistent cut of the execution).  Memory serializes as packed
// little-endian bytes — JSON renders that as one base64 string instead
// of millions of numbers.
type State struct {
	Mem    []byte       `json:"mem"`
	Stack  []FrameState `json:"stack"`
	Stats  Stats        `json:"stats"`
	MemLen int64        `json:"memlen"`
}

// Snapshot captures the machine state.  Only meaningful while the
// machine is paused (inside an OnEpoch callback) or after Run returned.
func (m *Machine) Snapshot() *State {
	st := &State{Stats: m.stats, MemLen: int64(len(m.mem))}
	st.Mem = make([]byte, 8*len(m.mem))
	for i, w := range m.mem {
		binary.LittleEndian.PutUint64(st.Mem[8*i:], w)
	}
	for i := range m.stack {
		f := &m.stack[i]
		st.Stack = append(st.Stack, FrameState{
			Fn: f.fn.ID, Regs: append([]uint64(nil), f.regs...),
			Blk: f.blk.ID, PC: f.pc, RetDst: f.retDst, RetCont: f.retCont,
		})
	}
	return st
}

// Restore arms the machine to continue from a checkpoint: the next Run
// call picks up mid-program instead of starting at main's entry.
func (m *Machine) Restore(st *State) {
	m.restored = st
}

// applyState rebinds a checkpoint against the validated program.
func (m *Machine) applyState(st *State) error {
	if int64(len(st.Mem)) != 8*st.MemLen || st.MemLen != m.prog.MemWords {
		return fmt.Errorf("vm: checkpoint memory is %d words, program %q declares %d",
			st.MemLen, m.prog.Name, m.prog.MemWords)
	}
	m.mem = make([]uint64, st.MemLen)
	for i := range m.mem {
		m.mem[i] = binary.LittleEndian.Uint64(st.Mem[8*i:])
	}
	m.stats = st.Stats
	m.stack = m.stack[:0]
	for _, fs := range st.Stack {
		if fs.Fn < 0 || int(fs.Fn) >= len(m.prog.Funcs) {
			return fmt.Errorf("vm: checkpoint frame names unknown function %d", fs.Fn)
		}
		fn := m.prog.Func(fs.Fn)
		if fs.Blk < 0 || int(fs.Blk) >= len(m.prog.Blocks) {
			return fmt.Errorf("vm: checkpoint frame names unknown block %d", fs.Blk)
		}
		blk := m.prog.Block(fs.Blk)
		if len(fs.Regs) != fn.NumRegs {
			return fmt.Errorf("vm: checkpoint frame for %s has %d regs, function declares %d",
				fn.Name, len(fs.Regs), fn.NumRegs)
		}
		if fs.PC < 0 || fs.PC >= len(blk.Code) {
			return fmt.Errorf("vm: checkpoint pc %d out of range in block %q", fs.PC, blk.Name)
		}
		m.stack = append(m.stack, frame{
			fn: fn, regs: append([]uint64(nil), fs.Regs...),
			blk: blk, pc: fs.PC, retDst: fs.RetDst, retCont: fs.RetCont,
		})
	}
	if len(m.stack) == 0 {
		return fmt.Errorf("vm: checkpoint has an empty stack")
	}
	return nil
}
