package vm

import (
	"polyprof/internal/cachesim"
	"polyprof/internal/isa"
)

// CycleModel makes the machine account simulated cycles while it
// executes: a base cost per instruction class plus cache-modeled memory
// latencies.  It gives workloads a "measured" serial cycle count that
// the feedback stage's replay-based estimates can be sanity-checked
// against.
type CycleModel struct {
	Cache *cachesim.Cache

	cycles uint64
}

// NewCycleModel creates a model around the given cache configuration.
func NewCycleModel(cfg cachesim.Config) *CycleModel {
	return &CycleModel{Cache: cachesim.New(cfg)}
}

// Cycles returns the accumulated cycle count.
func (c *CycleModel) Cycles() uint64 { return c.cycles }

// Reset clears the counter and the cache.
func (c *CycleModel) Reset() {
	c.cycles = 0
	c.Cache.Reset()
}

// instrCost is the base (non-memory) cost per opcode class, matching
// the feedback stage's replay table.
func instrCost(op isa.Opcode) uint64 {
	switch {
	case op == isa.FDiv, op == isa.FSqrt, op == isa.FExp, op == isa.FLog,
		op == isa.Div, op == isa.Mod:
		return 12
	case op.IsFP():
		return 3
	case op.IsMem():
		return 0 // accounted via the cache below
	default:
		return 1
	}
}

// account charges one executed instruction.
func (c *CycleModel) account(op isa.Opcode, addr int64) {
	c.cycles += instrCost(op)
	if addr >= 0 {
		c.cycles += c.Cache.Access(addr)
	}
}
