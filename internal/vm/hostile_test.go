package vm_test

import (
	"fmt"
	"strings"
	"testing"

	"polyprof/internal/isa"
	"polyprof/internal/vm"
)

// hostileProg hand-assembles a raw program, bypassing the builder's
// checks the way a corrupted or malicious image would.
func hostileProg(memWords int64, numRegs int, code ...[]isa.Instr) *isa.Program {
	f := &isa.Func{ID: 0, Name: "main", Entry: 0, NumArgs: 0, NumRegs: numRegs}
	p := &isa.Program{Name: "hostile", Funcs: []*isa.Func{f}, Main: 0, MemWords: memWords}
	for i, c := range code {
		b := &isa.Block{ID: isa.BlockID(i), Fn: 0, Name: fmt.Sprintf("b%d", i), Code: c, Index: i}
		p.Blocks = append(p.Blocks, b)
		f.Blocks = append(f.Blocks, b.ID)
	}
	return p
}

// TestHostileProgramsTrap feeds structurally broken images to the VM
// and requires a clean error — never a panic — from every one of them.
func TestHostileProgramsTrap(t *testing.T) {
	halt := isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg}
	tests := []struct {
		name string
		prog *isa.Program
		want string // substring of the error
	}{
		{
			name: "jump target out of range",
			prog: hostileProg(0, 4, []isa.Instr{
				{Op: isa.Jmp, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Then: 99},
			}),
			want: "target 99 out of range",
		},
		{
			name: "negative jump target",
			prog: hostileProg(0, 4, []isa.Instr{
				{Op: isa.Jmp, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Then: -3},
			}),
			want: "out of range",
		},
		{
			name: "branch else-target out of range",
			prog: hostileProg(0, 4, []isa.Instr{
				{Op: isa.ConstI, Dst: 0, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Imm: 1},
				{Op: isa.Br, Dst: isa.NoReg, A: 0, B: isa.NoReg, Index: isa.NoReg, Then: 0, Else: 77},
			}),
			want: "br-else target 77",
		},
		{
			name: "unknown opcode",
			prog: hostileProg(0, 4, []isa.Instr{
				{Op: isa.Opcode(200), Dst: 0, A: 0, B: 0, Index: isa.NoReg},
				halt,
			}),
			want: "unknown opcode",
		},
		{
			name: "register read out of frame",
			prog: hostileProg(0, 2, []isa.Instr{
				{Op: isa.Add, Dst: 0, A: 0, B: 50, Index: isa.NoReg},
				halt,
			}),
			want: "reads register 50",
		},
		{
			name: "negative register operand",
			prog: hostileProg(0, 2, []isa.Instr{
				{Op: isa.Mov, Dst: 0, A: -2, B: isa.NoReg, Index: isa.NoReg},
				halt,
			}),
			want: "reads register -2",
		},
		{
			name: "register write out of frame",
			prog: hostileProg(0, 2, []isa.Instr{
				{Op: isa.ConstI, Dst: 9, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Imm: 1},
				halt,
			}),
			want: "writes register 9",
		},
		{
			name: "terminator mid-block",
			prog: hostileProg(0, 2, []isa.Instr{
				halt,
				{Op: isa.Nop, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg},
			}),
			want: "misplaced terminator",
		},
		{
			name: "no terminator",
			prog: hostileProg(0, 2, []isa.Instr{
				{Op: isa.Nop, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg},
			}),
			want: "misplaced terminator",
		},
		{
			name: "empty block",
			prog: hostileProg(0, 2, []isa.Instr{}),
			want: "is empty",
		},
		{
			name: "call to unknown function",
			prog: hostileProg(0, 2, []isa.Instr{
				{Op: isa.Call, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Callee: 7, Then: 0},
			}),
			want: "call to unknown function 7",
		},
		{
			name: "call argument count mismatch",
			prog: hostileProg(0, 2, []isa.Instr{
				{Op: isa.Call, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg,
					Callee: 0, Then: 0, Args: []isa.Reg{0, 1}},
			}),
			want: "with 2 args, want 0",
		},
		{
			name: "negative memory size",
			prog: hostileProg(-5, 2, []isa.Instr{halt}),
			want: "negative memory size",
		},
		{
			name: "absurd register frame",
			prog: hostileProg(0, isa.MaxRegsPerFunc+1, []isa.Instr{halt}),
			want: "register frame",
		},
		{
			name: "invalid main",
			prog: &isa.Program{Name: "hostile", Main: 3},
			want: "invalid main function",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := vm.New(tc.prog).Run()
			if err == nil {
				t.Fatal("hostile program ran without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestHugeMemoryRefused: a program demanding more memory than
// MaxMemWords is refused before allocation.
func TestHugeMemoryRefused(t *testing.T) {
	p := hostileProg(vm.MaxMemWords+1, 2, []isa.Instr{
		{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg},
	})
	err := vm.New(p).Run()
	if err == nil || !strings.Contains(err.Error(), "memory words") {
		t.Fatalf("want memory refusal, got %v", err)
	}
}

// TestStackOverflowTraps: unbounded recursion hits the depth limit and
// traps instead of exhausting host memory.
func TestStackOverflowTraps(t *testing.T) {
	// main: block0 calls main again; the continuation never runs.
	p := hostileProg(0, 2,
		[]isa.Instr{
			{Op: isa.Call, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Callee: 0, Then: 1},
		},
		[]isa.Instr{
			{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg},
		},
	)
	m := vm.New(p)
	m.MaxDepth = 100
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "call stack overflow") {
		t.Fatalf("want stack-overflow trap, got %v", err)
	}
}

// decodeProgram turns fuzz bytes into a program image: one function,
// up to four blocks, eight bytes per instruction.  Field values are
// deliberately allowed to stray out of range (registers beyond the
// frame, unknown opcodes, wild branch targets) so the corpus covers
// both images the validator must refuse and images that run.
func decodeProgram(data []byte) *isa.Program {
	nb := 1
	memWords := int64(0)
	if len(data) > 0 {
		nb = 1 + int(data[0]&3)
		memWords = int64(data[0] >> 2)
	}
	const numRegs = 8
	code := make([][]isa.Instr, nb)
	bi := 0
	for pos := 1; pos+8 <= len(data); pos += 8 {
		c := data[pos : pos+8]
		in := isa.Instr{
			Op:    isa.Opcode(c[0] % 56), // a few values past Halt
			Dst:   isa.Reg(int8(c[1]) % 12),
			A:     isa.Reg(int8(c[2]) % 12),
			B:     isa.Reg(int8(c[3]) % 12),
			Imm:   int64(int8(c[4])),
			Index: isa.NoReg,
			Then:  isa.BlockID(int8(c[5]) % int8(nb+1)),
			Else:  isa.BlockID(int8(c[6]) % int8(nb+1)),
		}
		if in.Op == isa.Call {
			in.Callee = isa.FuncID(int8(c[7]) % 2)
		}
		code[bi] = append(code[bi], in)
		bi = (bi + 1) % nb
	}
	// Terminate every block so a fair share of inputs validate: reuse
	// the block's first instruction bytes to pick the terminator.
	for i := range code {
		term := isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg}
		if len(code[i]) > 0 {
			switch code[i][0].Imm & 3 {
			case 1:
				term = isa.Instr{Op: isa.Jmp, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg,
					Index: isa.NoReg, Then: isa.BlockID((i + 1) % nb)}
			case 2:
				term = isa.Instr{Op: isa.Ret, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg}
			}
		}
		// Strip misplaced terminators from the body, then append ours.
		body := code[i][:0]
		for _, in := range code[i] {
			if !in.Op.IsTerminator() && int(in.Op) < 56 {
				body = append(body, in)
			}
		}
		code[i] = append(body, term)
	}
	return hostileProgN(memWords, numRegs, code...)
}

// hostileProgN is hostileProg without the fixed name, for fuzzing.
func hostileProgN(memWords int64, numRegs int, code ...[]isa.Instr) *isa.Program {
	return hostileProg(memWords, numRegs, code...)
}

// FuzzVM runs arbitrary program encodings through validation and
// execution; any panic is a bug.  Runaway-but-valid images are bounded
// by tight step and depth limits.
func FuzzVM(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x07, 2, 0, 0, 0, 42, 0, 0, 0, 39, 0, 0, 1, 1, 0, 0, 0})
	f.Add([]byte{0xFF, 46, 1, 2, 3, 4, 5, 6, 7, 47, 0, 0, 0, 1, 2, 0, 0})
	seed := make([]byte, 65)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := decodeProgram(data)
		m := vm.New(prog)
		m.MaxSteps = 10_000
		m.MaxDepth = 64
		_ = m.Run() // errors are expected; panics are failures
	})
}
