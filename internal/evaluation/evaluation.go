// Package evaluation drives the paper's experiments end-to-end: it
// profiles each bundled workload through the full polyprof pipeline,
// runs the static baseline, and assembles the rows of the evaluation
// tables (Table 5 summary statistics, Table 3/4 case studies) and the
// annotated flame graphs.
package evaluation

import (
	"fmt"
	"strings"

	"polyprof/internal/core"
	"polyprof/internal/feedback"
	"polyprof/internal/obs"
	"polyprof/internal/sched"
	"polyprof/internal/staticpoly"
	"polyprof/internal/transform"
	"polyprof/internal/workloads"
)

// BenchResult bundles everything the harness derives for one workload.
type BenchResult struct {
	Spec    workloads.Spec
	Profile *core.Profile
	Report  *feedback.Report
	Static  *staticpoly.Result
	// Optimize is the schedule-application engine's result: applied
	// variants with verified measured speedups, or structured refusals.
	Optimize *transform.Report
	Row      Table5Row
}

// Table5Row is one line of the paper's Table 5.
type Table5Row struct {
	Name   string
	Ops    uint64
	MemOps uint64

	PctAff  float64
	Region  string
	PctOps  float64
	PctMops float64
	PctFPop float64

	Interproc    bool
	PollyReasons string
	PaperReasons string
	PollyModeled bool

	Skew                                 bool
	PctPar, PctSIMD, PctReuse, PctPReuse float64
	LdSrc, LdBin, TileD                  int
	PctTile                              float64
	Components, FusedComponents          int
	Fusion                               string
	HasTransform                         bool

	// MeasuredSpeedup is the best verified cycle-model speedup the
	// transform engine measured after actually applying a suggested
	// schedule (0 when nothing was applied), and MeasuredKind names the
	// winning variant ("interchange", "tile", "interchange+tile").
	MeasuredSpeedup float64
	MeasuredKind    string
}

// RunWorkload profiles one workload and assembles its row, recording
// into the default registry.
func RunWorkload(spec workloads.Spec) (*BenchResult, error) {
	return RunWorkloadScoped(spec, obs.Scope{})
}

// RunWorkloadScoped is RunWorkload recording its spans and metrics
// into sc's registry: a "workload:<name>" span nests under sc's parent
// span and every pipeline stage nests under the workload span.
func RunWorkloadScoped(spec workloads.Spec, sc obs.Scope) (*BenchResult, error) {
	sp := sc.StartSpan("workload:" + spec.Name)
	defer sp.End()
	wsc := sc.WithSpan(sp)
	prog := spec.Build()
	opts := core.DefaultRunOptions()
	opts.Obs = wsc
	p, err := core.Run(prog, opts)
	if err != nil {
		sp.Fail(err)
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	sp.AddEvents(p.DDG.TotalOps)
	rep := feedback.Analyze(p)
	stSp := wsc.StartSpan("static-baseline")
	st := staticpoly.Analyze(prog)
	stSp.End()

	row := Table5Row{
		Name:         spec.Name,
		Ops:          p.DDG.TotalOps,
		MemOps:       p.DDG.MemOps,
		PctAff:       rep.PctAffine,
		PaperReasons: spec.PaperReasons,
		PollyReasons: st.RegionReasons(prog, spec.RegionFuncs...).String(),
		PollyModeled: st.RegionModeled(prog, spec.RegionFuncs...),
	}
	if reg := rep.Best; reg != nil {
		row.HasTransform = true
		row.Region = reg.CodeRef
		row.PctOps = reg.PctOps
		if reg.Ops > 0 {
			row.PctMops = float64(reg.MemOps) / float64(reg.Ops)
			row.PctFPop = float64(reg.FPOps) / float64(reg.Ops)
		}
		row.Interproc = reg.Interproc
		met := rep.ComputeMetrics(reg)
		row.Skew = met.Skew
		row.PctPar = met.PctParallelOps
		row.PctSIMD = met.PctSIMDOps
		row.PctReuse = met.PctReuse
		row.PctPReuse = met.PctPReuse
		row.LdSrc = met.LdSrc
		row.LdBin = met.LdBin
		row.TileD = met.TileD
		row.PctTile = met.PctTileOps
		row.Components = reg.Components
		row.FusedComponents = reg.FusedComponents
		row.Fusion = reg.Fusion.String()
	}
	// Close the loop: apply the suggested schedules and measure them.
	// A hard failure here (oracle mismatch, VM error) fails the
	// workload — a transformation that breaks program outputs must
	// never be summarized away.
	opt, err := transform.Optimize(p, rep.Model, rep.AllTransforms(), transform.Options{Obs: wsc})
	if err != nil {
		sp.Fail(err)
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	row.MeasuredSpeedup = opt.BestSpeedup
	if opt.BestSpeedup > 0 {
		row.MeasuredKind = bestKind(opt)
	}
	return &BenchResult{Spec: spec, Profile: p, Report: rep, Static: st, Optimize: opt, Row: row}, nil
}

// bestKind names the variant behind Report.BestSpeedup.
func bestKind(opt *transform.Report) string {
	for _, c := range opt.Candidates {
		for _, v := range c.Variants {
			if v.Verified && v.MeasuredSpeedup == opt.BestSpeedup {
				return v.Kind
			}
		}
	}
	return ""
}

// RunRodinia profiles the whole suite (Experiment I + II).
func RunRodinia() ([]*BenchResult, error) {
	var out []*BenchResult
	for _, spec := range workloads.Rodinia() {
		r, err := RunWorkload(spec)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }

// RenderTable5 prints the suite summary in the layout of the paper's
// Table 5 (one line per benchmark).
func RenderTable5(rows []*BenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %9s %9s %5s  %-22s %5s %6s %7s %9s %6s %5s %5s %6s %7s %7s %3s %3s %3s %7s %2s %5s %6s %9s\n",
		"benchmark", "#Ops", "#Mops", "%Aff", "Region", "%ops", "%Mops", "%FPops",
		"interproc", "Polly", "skew", "%par", "%simd", "%reuse", "%Preuse",
		"lds", "ldb", "TlD", "%Tilops", "C", "Comp", "fusion", "measured")
	for _, r := range rows {
		row := r.Row
		if !row.HasTransform {
			fmt.Fprintf(&sb, "%-14s %9d %9d %5s  %-22s (no transformable region; Polly: %s)\n",
				row.Name, row.Ops, row.MemOps, pct(row.PctAff), "-", row.PollyReasons)
			continue
		}
		measured := "-"
		if row.MeasuredSpeedup > 0 {
			measured = fmt.Sprintf("%.2fx", row.MeasuredSpeedup)
		}
		fmt.Fprintf(&sb, "%-14s %9d %9d %5s  %-22s %5s %6s %7s %9s %6s %5s %5s %6s %7s %7s %3s %3s %3s %7s %2d %5d %6s %9s\n",
			row.Name, row.Ops, row.MemOps, pct(row.PctAff), row.Region,
			pct(row.PctOps), pct(row.PctMops), pct(row.PctFPop),
			yn(row.Interproc), row.PollyReasons, yn(row.Skew),
			pct(row.PctPar), pct(row.PctSIMD), pct(row.PctReuse), pct(row.PctPReuse),
			fmt.Sprintf("%dD", row.LdSrc), fmt.Sprintf("%dD", row.LdBin), fmt.Sprintf("%dD", row.TileD),
			pct(row.PctTile), row.Components, row.FusedComponents, row.Fusion, measured)
	}
	return sb.String()
}

// CaseStudyRow is one line of Table 3 (backprop) or Table 4 (GemsFDTD).
type CaseStudyRow struct {
	Region      string
	PctOps      float64
	Transform   string
	Parallel    []bool
	Permutable  bool
	Stride01    []float64
	TileD       int
	SpeedupEst  float64
	SpeedupNote string
}

// CaseStudy profiles a workload and extracts the case-study rows for
// its heaviest nests (at least minShare of region operations).
func CaseStudy(spec workloads.Spec, minShare float64) (*BenchResult, []CaseStudyRow, error) {
	r, err := RunWorkload(spec)
	if err != nil {
		return nil, nil, err
	}
	reg := r.Report.Best
	if reg == nil {
		return r, nil, nil
	}
	// The twins run at laptop scale, so the replay cache is scaled down
	// with them (8 KiB, 8-word lines) to preserve the paper's
	// working-set-to-cache ratios, and tiles are sized to fit it.
	cm := feedback.DefaultCostModel()
	cm.Cache.Sets = 16
	cm.Cache.Ways = 8
	cm.TileSize = 8
	var rows []CaseStudyRow
	for _, t := range reg.Transforms {
		nestOps := t.Nest.Loops[len(t.Nest.Loops)-1].TotalOps
		if float64(nestOps) < minShare*float64(reg.Ops) {
			continue
		}
		if t.Describe() == "none" {
			continue
		}
		row := CaseStudyRow{
			Region:     nestRef(r.Profile, t),
			PctOps:     float64(nestOps) / float64(r.Profile.DDG.TotalOps),
			Transform:  t.Describe(),
			Parallel:   t.Parallel,
			Permutable: t.FullyPermutable(),
			Stride01:   t.Stride01,
			TileD:      t.TileDepth(),
		}
		if sp, err := r.Report.EstimateSpeedup(t, cm); err == nil {
			row.SpeedupEst = sp.Factor
			row.SpeedupNote = sp.String()
		} else {
			row.SpeedupNote = err.Error()
		}
		rows = append(rows, row)
	}
	return r, rows, nil
}

// nestRef renders the source lines of a nest's dimensions in the
// *suggested* order, mirroring the paper's "backprop.c:(254,253)"
// permutation-of-code-lines notation.
func nestRef(p *core.Profile, t *sched.NestTransform) string {
	file := ""
	lines := make([]string, 0, len(t.Perm))
	for _, k := range t.Perm {
		node := t.Nest.Loops[k]
		line := 0
		if l := node.Elem.Loop; l != nil {
			blk := p.Prog.Block(l.Header)
			if len(blk.Code) > 0 {
				line = blk.Code[0].Loc.Line
				if file == "" {
					file = blk.Code[0].Loc.File
				}
			}
		}
		lines = append(lines, fmt.Sprintf("%d", line))
	}
	if file == "" {
		file = "?"
	}
	return fmt.Sprintf("%s:(%s)", file, strings.Join(lines, ","))
}
