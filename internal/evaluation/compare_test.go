package evaluation

import (
	"testing"
	"time"
)

func report(stages map[string]time.Duration) *OverheadReport {
	r := &OverheadReport{Workload: "test"}
	for _, st := range OverheadStages {
		r.Stages = append(r.Stages, StageCost{Stage: st, Wall: stages[st]})
	}
	return r
}

func TestLoadBaselineFormats(t *testing.T) {
	// Current bench emission: {meta, stages}.
	b, err := LoadBaseline([]byte(`{
		"meta": {"gomaxprocs": 4, "numcpu": 8, "go": "go1.24.0", "rev": "abc", "timestamp": "t"},
		"stages": {"pass2-full-ddg": 1000}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta == nil || b.Meta.GoMaxProcs != 4 || b.Stages["pass2-full-ddg"] != 1000 {
		t.Fatalf("bench emission parse = %+v", b)
	}

	// Legacy flat map.
	b, err = LoadBaseline([]byte(`{"pass1-structure": 42, "pass2-full-ddg": 500}`))
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta != nil || b.Stages["pass1-structure"] != 42 {
		t.Fatalf("flat map parse = %+v", b)
	}

	// An overhead -json report list: stage walls sum into bench names.
	b, err = LoadBaseline([]byte(`[{
		"workload": "w", "ops": 1,
		"stages": [
			{"stage": "pass1", "wall_ns": 10, "events": 1, "unit": "op"},
			{"stage": "ddg", "wall_ns": 300, "events": 1, "unit": "op"},
			{"stage": "fold", "wall_ns": 70, "events": 1, "unit": "op"}
		],
		"total_ns": 380
	}]`))
	if err != nil {
		t.Fatal(err)
	}
	if b.Stages["pass1-structure"] != 10 || b.Stages["pass2-full-ddg"] != 370 {
		t.Fatalf("report list parse = %+v", b.Stages)
	}

	if _, err := LoadBaseline([]byte(`"nope"`)); err == nil {
		t.Fatal("garbage baseline loaded without error")
	}
}

func TestCompareOverheadRegression(t *testing.T) {
	base := &BenchBaseline{Stages: map[string]int64{
		"pass1-structure": int64(2 * time.Millisecond),
		"pass2-full-ddg":  int64(2 * time.Second),
	}}

	// Unchanged run: no regressions, nil Err.
	c := CompareOverhead(report(map[string]time.Duration{
		"pass1": 2 * time.Millisecond,
		"ddg":   1900 * time.Millisecond,
		"fold":  100 * time.Millisecond,
	}), base, 0.10)
	if c.Regressions != 0 || c.Err() != nil {
		t.Fatalf("clean compare flagged regressions: %+v", c)
	}
	// Stages absent from the baseline are skipped, present ones compared.
	if len(c.Deltas) != 2 {
		t.Fatalf("deltas = %+v", c.Deltas)
	}

	// DDG 30% slower: past tolerance and far past the absolute floor.
	c = CompareOverhead(report(map[string]time.Duration{
		"pass1": 2 * time.Millisecond,
		"ddg":   2500 * time.Millisecond,
		"fold":  100 * time.Millisecond,
	}), base, 0.10)
	if c.Regressions != 1 || c.Err() == nil {
		t.Fatalf("ddg regression missed: %+v", c)
	}
	for _, d := range c.Deltas {
		if d.Stage == "pass2-full-ddg" && !d.Regressed {
			t.Fatalf("pass2-full-ddg not marked: %+v", d)
		}
	}

	// pass1 doubling (2ms -> 4ms) is 2.0x but under the absolute noise
	// floor — millisecond stages jitter that much run to run and must
	// not fail the gate.
	c = CompareOverhead(report(map[string]time.Duration{
		"pass1": 4 * time.Millisecond,
		"ddg":   2 * time.Second,
	}), base, 0.10)
	if c.Regressions != 0 {
		t.Fatalf("µs-scale jitter flagged as regression: %+v", c.Deltas)
	}

	if s := RenderCompare(c, &BenchMeta{Go: "go1.24.0", GoMaxProcs: 1, NumCPU: 1}); s == "" {
		t.Fatal("empty render")
	}
}
