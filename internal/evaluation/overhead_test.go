package evaluation

import (
	"encoding/json"
	"strings"
	"testing"

	"polyprof/internal/workloads"
)

// maskOverhead normalizes the nondeterministic columns of a rendered
// overhead table (wall time, %wall, events/s) so the deterministic
// structure — stage order, event counts, units — can be compared
// against a golden string.  Runs of spaces collapse to one because the
// masked tokens change column widths.
func maskOverhead(out string) string {
	isStage := map[string]bool{"total": true}
	for _, st := range OverheadStages {
		isStage[st] = true
	}
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 6 && isStage[fields[0]] {
			fields[1] = "<wall>"
			fields[2] = "<pct>"
			fields[4] = "<rate>"
		}
		lines = append(lines, strings.Join(fields, " "))
	}
	return strings.Join(lines, "\n")
}

const overheadGoldenExample1 = `profiling overhead — example1 (per-stage cost, Experiment I shape)

stage wall %wall events events/s unit
pass1 <wall> <pct> 83 <rate> instrs
pass2-iiv <wall> <pct> 83 <rate> instrs
ddg <wall> <pct> 83 <rate> instrs
fold <wall> <pct> 32 <rate> streams
sched <wall> <pct> 2 <rate> deps
feedback <wall> <pct> 1 <rate> nests
total <wall> <pct> 83 <rate> instrs (one full run)
note: fold times the terminal Finish() drain; per-event incremental folding is charged to ddg
`

func TestOverheadGoldenExample1(t *testing.T) {
	spec := workloads.ByName("example1")
	if spec == nil {
		t.Fatal("example1 workload not found")
	}
	r, err := Overhead(*spec)
	if err != nil {
		t.Fatal(err)
	}
	got := maskOverhead(RenderOverhead(r))
	if got != overheadGoldenExample1 {
		t.Errorf("masked overhead table mismatch\n--- got ---\n%s\n--- want ---\n%s", got, overheadGoldenExample1)
	}
}

func TestOverheadReportShape(t *testing.T) {
	spec := workloads.ByName("example1")
	if spec == nil {
		t.Fatal("example1 workload not found")
	}
	r, err := Overhead(*spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != len(OverheadStages) {
		t.Fatalf("got %d stages, want %d", len(r.Stages), len(OverheadStages))
	}
	var total int64
	for i, s := range r.Stages {
		if s.Stage != OverheadStages[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Stage, OverheadStages[i])
		}
		if s.Wall < 0 {
			t.Errorf("stage %q has negative wall time %v", s.Stage, s.Wall)
		}
		total += int64(s.Wall)
	}
	if int64(r.Total) != total {
		t.Errorf("Total %v != sum of stages %v", r.Total, total)
	}
	if r.Ops == 0 {
		t.Error("Ops = 0, want the pass-2 instruction count")
	}
	if got := r.Stage("ddg").Events; got != r.Ops {
		t.Errorf("ddg stage events = %d, want Ops = %d", got, r.Ops)
	}
	if r.Stage("nonexistent") != (StageCost{}) {
		t.Error("Stage of unknown name should be the zero value")
	}

	data, err := OverheadJSON([]*OverheadReport{r})
	if err != nil {
		t.Fatal(err)
	}
	var back []OverheadReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != 1 || back[0].Workload != "example1" || len(back[0].Stages) != len(OverheadStages) {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

func TestRenderOverheadSuite(t *testing.T) {
	spec := workloads.ByName("example1")
	if spec == nil {
		t.Fatal("example1 workload not found")
	}
	r, err := Overhead(*spec)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderOverheadSuite([]*OverheadReport{r, r})
	for _, want := range []string{"benchmark", "example1", "TOTAL", "stage share of total profiling cost:"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite table missing %q:\n%s", want, out)
		}
	}
	for _, st := range OverheadStages {
		if !strings.Contains(out, st) {
			t.Errorf("suite table missing stage column %q", st)
		}
	}
}
