package evaluation

import (
	"encoding/json"
	"strings"
	"testing"

	"polyprof/internal/obs"
	"polyprof/internal/workloads"
)

// diagGoldenPaths locks the `polyprof diag -json` output schema: every
// dotted key path below must be present in the serialized report.
// Dashboards and scripts consume this JSON; removing or renaming a key
// is a breaking change and must show up as a failure here, not in a
// consumer.  ("[]" descends into the first element of an array.)
var diagGoldenPaths = []string{
	"[].workload",
	"[].shards",
	"[].ops",
	"[].wall_ns",
	"[].parallel",
	"[].parallel.wall_ns",
	"[].parallel.shards",
	"[].parallel.actors",
	"[].parallel.actors.[].name",
	"[].parallel.actors.[].role",
	"[].parallel.actors.[].running_ns",
	"[].parallel.actors.[].blocked_send_ns",
	"[].parallel.actors.[].blocked_recv_ns",
	"[].parallel.actors.[].idle_ns",
	"[].parallel.actors.[].busy_frac",
	"[].parallel.actors.[].transitions",
	"[].parallel.sequencer_occupancy",
	"[].parallel.max_shard_busy",
	"[].parallel.backpressure_ns",
	"[].parallel.serial_frac",
	"[].parallel.critical_path_ns",
	"[].parallel.dominant",
	"[].parallel.amdahl",
	"[].parallel.amdahl.[].shards",
	"[].parallel.amdahl.[].projected_speedup",
}

// lookupPath walks a dotted key path through decoded JSON, descending
// into the first element at each "[]" segment.  Returns false when any
// segment is missing.
func lookupPath(v any, path string) bool {
	for _, seg := range strings.Split(path, ".") {
		if seg == "[]" {
			arr, ok := v.([]any)
			if !ok || len(arr) == 0 {
				return false
			}
			v = arr[0]
			continue
		}
		obj, ok := v.(map[string]any)
		if !ok {
			return false
		}
		v, ok = obj[seg]
		if !ok {
			return false
		}
	}
	return true
}

func TestDiagJSONSchemaGolden(t *testing.T) {
	spec := workloads.ByName("example1")
	if spec == nil {
		t.Fatal("example1 workload missing")
	}
	rep, err := Diagnose(*spec, 2, obs.NewRegistry().Scope())
	if err != nil {
		t.Fatal(err)
	}
	data, err := DiagJSON([]*DiagReport{rep})
	if err != nil {
		t.Fatal(err)
	}

	var decoded any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("diag JSON does not parse: %v", err)
	}
	for _, path := range diagGoldenPaths {
		if !lookupPath(decoded, path) {
			t.Errorf("diag -json output lost key path %q:\n%s", path, data)
		}
	}

	// The timeline is terminal/trace-export only; leaking it into the
	// JSON report would balloon every dashboard fetch.
	if strings.Contains(string(data), `"timeline"`) || strings.Contains(string(data), `"Timeline"`) {
		t.Fatalf("diag -json output leaked the timeline:\n%s", data)
	}
}
