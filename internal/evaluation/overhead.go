package evaluation

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"polyprof/internal/core"
	"polyprof/internal/ddg"
	"polyprof/internal/feedback"
	"polyprof/internal/obs"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/parddg"
	"polyprof/internal/sched"
	"polyprof/internal/workloads"
)

// StageCost is the measured cost of one pipeline stage: wall time, how
// many events the stage processed, and what one event is.
type StageCost struct {
	Stage  string        `json:"stage"`
	Wall   time.Duration `json:"wall_ns"`
	Events uint64        `json:"events"`
	Unit   string        `json:"unit"`
}

// EventsPerSec returns the stage throughput.
func (c StageCost) EventsPerSec() float64 {
	if c.Wall <= 0 || c.Events == 0 {
		return 0
	}
	return float64(c.Events) / c.Wall.Seconds()
}

// OverheadReport is the per-stage cost breakdown of profiling one
// workload — the shape of the paper's Experiment I, which reports the
// CPU cost of the profiling pipeline itself per stage.
type OverheadReport struct {
	Workload string `json:"workload"`
	// Shards is the parallel dependence engine's worker count used for
	// the ddg/fold stages (0 = sequential builder).
	Shards int           `json:"shards,omitempty"`
	Ops    uint64        `json:"ops"`
	Stages []StageCost   `json:"stages"`
	Total  time.Duration `json:"total_ns"`
	// Parallel is the utilization diagnosis of the sharded dependence
	// engine (per-actor busy fractions, sequencer occupancy, Amdahl
	// projection); nil on sequential runs.
	Parallel *sampler.Report `json:"parallel,omitempty"`
}

// OverheadStages is the fixed stage order of the report.
var OverheadStages = []string{"pass1", "pass2-iiv", "ddg", "fold", "sched", "feedback"}

// Overhead profiles one workload stage by stage and measures the cost
// of each: pass 1 (structure recovery), pass 2 with IIV tracking only,
// pass 2 with the full dependence builder attached, stream folding,
// scheduler model construction, and feedback extraction.  The stages
// are run separately (the IIV-only pass re-executes the program) so
// each wall time is attributable — the same decomposition the
// profiling-overhead benchmark uses.
//
// Attribution caveat: the "fold" row times only the terminal
// builder.Finish() drain.  Folding work that happens incrementally per
// event during the DDG pass is charged to the "ddg" row, so "fold" is
// a lower bound on total folding cost; comparing "ddg" against
// "pass2-iiv" bounds the combined dependence-builder + incremental
// folding overhead.
func Overhead(spec workloads.Spec) (*OverheadReport, error) {
	return OverheadScoped(spec, obs.Scope{})
}

// OverheadSharded is Overhead with the ddg/fold stages running on the
// sharded parallel dependence engine (shards > 0); shards == 0 keeps
// the sequential builder.  In parallel mode the "ddg" row includes the
// folding the shard workers pipeline behind the VM pass, and "fold"
// times the drain + merge.
func OverheadSharded(spec workloads.Spec, shards int) (*OverheadReport, error) {
	return OverheadShardedScoped(spec, shards, obs.Scope{})
}

// OverheadScoped is Overhead recording into sc's registry: an
// "overhead:<name>" root span encloses the per-stage spans, and every
// stage wall time is also observed into an
// "overhead.stage.<stage>.wall_ns" histogram, so suite sweeps report
// per-stage latency percentiles (p50/p90/p99) alongside the tables.
func OverheadScoped(spec workloads.Spec, sc obs.Scope) (*OverheadReport, error) {
	return OverheadShardedScoped(spec, 0, sc)
}

// OverheadShardedScoped combines OverheadSharded and OverheadScoped.
func OverheadShardedScoped(spec workloads.Spec, shards int, sc obs.Scope) (*OverheadReport, error) {
	root := sc.StartSpan("overhead:" + spec.Name)
	defer root.End()
	ssc := sc.WithSpan(root)

	prog := spec.Build()
	rep := &OverheadReport{Workload: spec.Name, Shards: shards}
	add := func(stage string, wall time.Duration, events uint64, unit string) {
		rep.Stages = append(rep.Stages, StageCost{Stage: stage, Wall: wall, Events: events, Unit: unit})
		rep.Total += wall
		if ssc.Enabled() && wall > 0 {
			ssc.Observe("overhead.stage."+stage+".wall_ns", uint64(wall))
		}
	}

	t0 := time.Now()
	st, err := core.AnalyzeStructureScoped(prog, nil, ssc, nil)
	if err != nil {
		root.Fail(err)
		return nil, fmt.Errorf("%s: pass1: %w", spec.Name, err)
	}
	add("pass1", time.Since(t0), st.Stats.Ops, "instrs")

	t0 = time.Now()
	_, iivStats, err := core.RunPass2Scoped(prog, st, nil, nil, ssc, nil)
	if err != nil {
		root.Fail(err)
		return nil, fmt.Errorf("%s: pass2-iiv: %w", spec.Name, err)
	}
	add("pass2-iiv", time.Since(t0), iivStats.Ops, "instrs")

	t0 = time.Now()
	ddgOpts := ddg.DefaultOptions()
	ddgOpts.Obs = ssc
	var sink core.InstrSink
	var fin interface {
		FinishChecked() (*ddg.Graph, error)
	}
	var smp *sampler.Sampler
	if shards > 0 {
		smp = sampler.New()
		smp.SetEnabled(true)
		eng := parddg.NewEngine(prog, parddg.Options{Shards: shards, DDG: ddgOpts, Sampler: smp})
		defer eng.Close()
		sink, fin = eng, eng
	} else {
		b := ddg.NewBuilder(prog, ddgOpts)
		sink, fin = b, b
	}
	p2, stats, err := core.RunPass2Scoped(prog, st, sink, nil, ssc, nil)
	if err != nil {
		root.Fail(err)
		return nil, fmt.Errorf("%s: ddg: %w", spec.Name, err)
	}
	add("ddg", time.Since(t0), stats.Ops, "instrs")
	rep.Ops = stats.Ops

	t0 = time.Now()
	foldSp := ssc.StartSpan("fold-finish")
	g, err := fin.FinishChecked()
	if err != nil {
		foldSp.Fail(err)
		foldSp.End()
		root.Fail(err)
		return nil, fmt.Errorf("%s: fold: %w", spec.Name, err)
	}
	foldSp.AddEvents(core.FoldedStreams(g))
	foldSp.End()
	add("fold", time.Since(t0), core.FoldedStreams(g), "streams")
	if smp != nil {
		rep.Parallel = smp.Report()
	}

	profile := &core.Profile{Prog: prog, Structure: st, Tree: p2.Tree, DDG: g, Stats: stats, Obs: ssc}
	t0 = time.Now()
	schedSp := ssc.StartSpan("sched-build")
	model := sched.Build(profile)
	schedSp.AddEvents(uint64(len(model.Deps)))
	schedSp.End()
	add("sched", time.Since(t0), uint64(len(model.Deps)), "deps")

	t0 = time.Now()
	fb := feedback.AnalyzeModel(profile, model)
	add("feedback", time.Since(t0), uint64(fb.TransformCount()), "nests")

	return rep, nil
}

// OverheadSuite measures the overhead of every Rodinia twin (the full
// Experiment I sweep).
func OverheadSuite() ([]*OverheadReport, error) {
	return OverheadSuiteSharded(0)
}

// OverheadSuiteSharded is OverheadSuite on the sharded dependence
// engine (0 = sequential).
func OverheadSuiteSharded(shards int) ([]*OverheadReport, error) {
	var out []*OverheadReport
	for _, spec := range workloads.Rodinia() {
		r, err := OverheadSharded(spec, shards)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Stage returns the named stage cost (zero value when absent).
func (r *OverheadReport) Stage(name string) StageCost {
	for _, s := range r.Stages {
		if s.Stage == name {
			return s
		}
	}
	return StageCost{}
}

// RenderOverhead prints one workload's per-stage cost table.
func RenderOverhead(r *OverheadReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profiling overhead — %s (per-stage cost, Experiment I shape)\n\n", r.Workload)
	fmt.Fprintf(&sb, "%-12s %10s %7s %12s %10s  %s\n", "stage", "wall", "%wall", "events", "events/s", "unit")
	for _, s := range r.Stages {
		share := 0.0
		if r.Total > 0 {
			share = 100 * float64(s.Wall) / float64(r.Total)
		}
		fmt.Fprintf(&sb, "%-12s %10s %6.1f%% %12d %10s  %s\n",
			s.Stage, obs.FormatDuration(s.Wall), share, s.Events,
			obs.FormatRate(s.EventsPerSec()), s.Unit)
	}
	fmt.Fprintf(&sb, "%-12s %10s %6.1f%% %12d %10s  %s\n",
		"total", obs.FormatDuration(r.Total), 100.0, r.Ops,
		obs.FormatRate(rate(r.Ops, r.Total)), "instrs (one full run)")
	sb.WriteString(foldCaveat)
	if r.Parallel != nil {
		sb.WriteString("\n")
		sb.WriteString(r.Parallel.Render())
	}
	return sb.String()
}

// foldCaveat is the attribution footnote printed under the cost
// tables (see the Overhead doc comment).
const foldCaveat = "note: fold times the terminal Finish() drain; per-event incremental folding is charged to ddg\n"

// RenderOverheadSuite prints the suite-wide cost table: one row per
// benchmark with the wall time of every stage, plus a TOTAL row — the
// layout of the paper's Experiment I, which sums the whole Rodinia
// suite to 3h06 of profiling CPU time.
func RenderOverheadSuite(rs []*OverheadReport) string {
	var sb strings.Builder
	sb.WriteString("profiling overhead — Rodinia suite (Experiment I)\n\n")
	fmt.Fprintf(&sb, "%-16s", "benchmark")
	for _, st := range OverheadStages {
		fmt.Fprintf(&sb, " %10s", st)
	}
	fmt.Fprintf(&sb, " %10s %12s %10s\n", "total", "instrs", "instrs/s")

	var grand OverheadReport
	grand.Workload = "TOTAL"
	stageTotals := map[string]time.Duration{}
	for _, r := range rs {
		fmt.Fprintf(&sb, "%-16s", r.Workload)
		for _, st := range OverheadStages {
			c := r.Stage(st)
			stageTotals[st] += c.Wall
			fmt.Fprintf(&sb, " %10s", obs.FormatDuration(c.Wall))
		}
		fmt.Fprintf(&sb, " %10s %12d %10s\n",
			obs.FormatDuration(r.Total), r.Ops, obs.FormatRate(rate(r.Ops, r.Total)))
		grand.Total += r.Total
		grand.Ops += r.Ops
	}
	fmt.Fprintf(&sb, "%-16s", "TOTAL")
	for _, st := range OverheadStages {
		fmt.Fprintf(&sb, " %10s", obs.FormatDuration(stageTotals[st]))
	}
	fmt.Fprintf(&sb, " %10s %12d %10s\n",
		obs.FormatDuration(grand.Total), grand.Ops, obs.FormatRate(rate(grand.Ops, grand.Total)))

	// Per-stage share of the suite, the paper's headline breakdown.
	sb.WriteString("\nstage share of total profiling cost:\n")
	for _, st := range OverheadStages {
		share := 0.0
		if grand.Total > 0 {
			share = 100 * float64(stageTotals[st]) / float64(grand.Total)
		}
		fmt.Fprintf(&sb, "  %-12s %10s %6.1f%%\n", st, obs.FormatDuration(stageTotals[st]), share)
	}
	sb.WriteString(foldCaveat)
	return sb.String()
}

// OverheadJSON serializes one or more overhead reports.
func OverheadJSON(rs []*OverheadReport) ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}

func rate(events uint64, wall time.Duration) float64 {
	if wall <= 0 || events == 0 {
		return 0
	}
	return float64(events) / wall.Seconds()
}
