package evaluation

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// BenchMeta describes the machine and revision that produced a
// BENCH_overhead.json baseline, so regression comparisons can flag
// apples-to-oranges runs instead of silently mixing them.
type BenchMeta struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Go         string `json:"go"`
	Rev        string `json:"rev,omitempty"`
	Timestamp  string `json:"timestamp"`
}

// BenchBaseline is a parsed per-stage ns/op baseline.  Three encodings
// load: the current {"meta": ..., "stages": {...}} bench emission, the
// legacy flat {"stage": ns} map, and an `overhead -json` report list
// (whose stage walls are summed into the bench stage names).
type BenchBaseline struct {
	Meta   *BenchMeta       `json:"meta,omitempty"`
	Stages map[string]int64 `json:"stages"`
}

// benchStageMap translates bench-harness stage names to the overhead
// report stages they cover.  The bench's pass2-full-ddg iteration runs
// the DDG pass and the terminal fold drain in one timed loop, so it
// compares against the sum of both rows; likewise scheduler-feedback.
var benchStageMap = []struct {
	Bench  string
	Stages []string
}{
	{"pass1-structure", []string{"pass1"}},
	{"pass2-iiv-only", []string{"pass2-iiv"}},
	{"pass2-full-ddg", []string{"ddg", "fold"}},
	{"scheduler-feedback", []string{"sched", "feedback"}},
}

// LoadBaseline parses any of the three supported baseline encodings.
func LoadBaseline(data []byte) (*BenchBaseline, error) {
	var b BenchBaseline
	if err := json.Unmarshal(data, &b); err == nil && len(b.Stages) > 0 {
		return &b, nil
	}
	var flat map[string]int64
	if err := json.Unmarshal(data, &flat); err == nil && len(flat) > 0 {
		return &BenchBaseline{Stages: flat}, nil
	}
	var reps []*OverheadReport
	if err := json.Unmarshal(data, &reps); err == nil && len(reps) > 0 {
		stages := map[string]int64{}
		for _, r := range reps {
			for _, m := range benchStageMap {
				for _, st := range m.Stages {
					stages[m.Bench] += int64(r.Stage(st).Wall)
				}
			}
		}
		return &BenchBaseline{Stages: stages}, nil
	}
	return nil, fmt.Errorf("baseline: not a bench emission, flat stage map, or overhead report list")
}

// StageDelta is one stage's baseline-vs-current comparison.
type StageDelta struct {
	Stage string `json:"stage"`
	// OldNS and NewNS are per-run wall nanoseconds.
	OldNS int64 `json:"old_ns"`
	NewNS int64 `json:"new_ns"`
	// Ratio is NewNS/OldNS (1.0 = unchanged).
	Ratio float64 `json:"ratio"`
	// Regressed marks Ratio > 1 + tolerance.
	Regressed bool `json:"regressed"`
}

// CompareResult is the outcome of an overhead regression check.
type CompareResult struct {
	Workload    string       `json:"workload"`
	Tolerance   float64      `json:"tolerance"`
	Deltas      []StageDelta `json:"deltas"`
	Regressions int          `json:"regressions"`
}

// Err returns a non-nil error when any stage regressed, for a nonzero
// CLI exit.
func (c *CompareResult) Err() error {
	if c.Regressions == 0 {
		return nil
	}
	return fmt.Errorf("overhead regression: %d stage(s) slower than baseline by more than %.0f%%",
		c.Regressions, 100*c.Tolerance)
}

// regressionFloorNS is the absolute slowdown a stage must additionally
// exceed to count as a regression: millisecond-scale stages (pass1,
// sched) jitter by 2x between runs, and a ratio threshold alone would
// flag them on every comparison.  Real regressions in the stages worth
// guarding (the multi-second DDG pass) clear this floor trivially.
const regressionFloorNS = 25_000_000

// CompareOverhead checks a fresh overhead report against a baseline:
// each bench stage with a baseline entry is compared to the matching
// report rows, and a stage regresses when it is more than tolerance
// slower (tolerance 0.10 = +10%) by at least regressionFloorNS.
// Stages absent from the baseline are skipped — old baselines stay
// usable after the pipeline grows stages.
func CompareOverhead(r *OverheadReport, base *BenchBaseline, tolerance float64) *CompareResult {
	res := &CompareResult{Workload: r.Workload, Tolerance: tolerance}
	for _, m := range benchStageMap {
		old, ok := base.Stages[m.Bench]
		if !ok || old <= 0 {
			continue
		}
		var cur time.Duration
		for _, st := range m.Stages {
			cur += r.Stage(st).Wall
		}
		d := StageDelta{Stage: m.Bench, OldNS: old, NewNS: int64(cur)}
		d.Ratio = float64(d.NewNS) / float64(old)
		d.Regressed = d.Ratio > 1+tolerance && d.NewNS-d.OldNS > regressionFloorNS
		if d.Regressed {
			res.Regressions++
		}
		res.Deltas = append(res.Deltas, d)
	}
	return res
}

// RenderCompare formats the comparison table.
func RenderCompare(c *CompareResult, meta *BenchMeta) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "overhead vs baseline — %s (tolerance +%.0f%%)\n\n", c.Workload, 100*c.Tolerance)
	if meta != nil {
		fmt.Fprintf(&sb, "baseline: %s rev=%s gomaxprocs=%d numcpu=%d %s\n\n",
			meta.Go, meta.Rev, meta.GoMaxProcs, meta.NumCPU, meta.Timestamp)
	}
	fmt.Fprintf(&sb, "%-20s %14s %14s %8s\n", "stage", "baseline", "current", "ratio")
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&sb, "%-20s %14s %14s %7.2fx%s\n", d.Stage,
			time.Duration(d.OldNS).String(), time.Duration(d.NewNS).String(), d.Ratio, mark)
	}
	if c.Regressions == 0 {
		sb.WriteString("\nno regressions\n")
	}
	return sb.String()
}
