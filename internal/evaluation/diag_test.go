package evaluation

import (
	"encoding/json"
	"testing"

	"polyprof/internal/obs"
	"polyprof/internal/workloads"
)

func TestDiagnoseRejectsSequential(t *testing.T) {
	if _, err := Diagnose(*workloads.ByName("example1"), 0, obs.Scope{}); err == nil {
		t.Fatal("Diagnose(shards=0) succeeded; want error")
	}
}

// TestDiagnoseLive runs a real diagnosis on a small workload and checks
// the report shape end to end, including the JSON encoding the CI leg
// and the golden acceptance command consume.
func TestDiagnoseLive(t *testing.T) {
	spec := workloads.ByName("example2")
	if spec == nil {
		t.Fatal("workload example2 missing")
	}
	r, err := Diagnose(*spec, 2, obs.Scope{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "example2" || r.Shards != 2 {
		t.Fatalf("header = %q/%d", r.Workload, r.Shards)
	}
	if r.Ops == 0 || r.WallNS <= 0 {
		t.Fatalf("ops=%d wall=%d", r.Ops, r.WallNS)
	}
	if r.Parallel == nil || len(r.Parallel.Actors) != 2+2 { // sequencer + 2 shards + merge
		t.Fatalf("parallel section = %+v", r.Parallel)
	}
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline spans recorded")
	}
	for _, sp := range r.Timeline {
		if sp.Track == "" || sp.Wall <= 0 {
			t.Fatalf("bad timeline span %+v", sp)
		}
	}

	// The JSON shape is the contract for CI artifacts: stable top-level
	// keys, no timeline (aggregates only), parallel section present.
	data, err := DiagJSON([]*DiagReport{r})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]json.RawMessage
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d reports", len(decoded))
	}
	for _, key := range []string{"workload", "shards", "ops", "wall_ns", "parallel"} {
		if _, ok := decoded[0][key]; !ok {
			t.Fatalf("diag JSON missing %q: %s", key, data)
		}
	}
	if _, ok := decoded[0]["Timeline"]; ok {
		t.Fatal("timeline leaked into diag JSON")
	}
	var par struct {
		SequencerOccupancy float64         `json:"sequencer_occupancy"`
		Dominant           string          `json:"dominant"`
		Amdahl             json.RawMessage `json:"amdahl"`
	}
	if err := json.Unmarshal(decoded[0]["parallel"], &par); err != nil {
		t.Fatal(err)
	}
	if par.Dominant == "" || par.SequencerOccupancy < 0 || par.SequencerOccupancy > 1 {
		t.Fatalf("parallel JSON = %+v", par)
	}
	if len(par.Amdahl) == 0 {
		t.Fatal("amdahl table missing from diag JSON")
	}
}
