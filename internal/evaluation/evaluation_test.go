package evaluation_test

import (
	"strings"
	"sync"
	"testing"

	"polyprof/internal/evaluation"
	"polyprof/internal/staticpoly"
	"polyprof/internal/workloads"
)

var (
	suiteOnce sync.Once
	suiteRows []*evaluation.BenchResult
	suiteErr  error
)

func suite(t *testing.T) []*evaluation.BenchResult {
	t.Helper()
	if testing.Short() {
		t.Skip("full-suite shape test skipped in -short mode")
	}
	suiteOnce.Do(func() { suiteRows, suiteErr = evaluation.RunRodinia() })
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteRows
}

func rowByName(t *testing.T, rows []*evaluation.BenchResult, name string) *evaluation.BenchResult {
	t.Helper()
	for _, r := range rows {
		if r.Row.Name == name {
			return r
		}
	}
	t.Fatalf("benchmark %q missing from suite results", name)
	return nil
}

// TestExperimentIIStaticBaselineFails asserts the paper's headline
// Experiment II result: the static baseline cannot model the whole
// region of interest for ANY of the 19 benchmarks, and the failure
// reasons overlap the paper's taxonomy for every row (exactly for most).
// This test runs without profiling, so it is fast.
func TestExperimentIIStaticBaselineFails(t *testing.T) {
	exact := 0
	for _, spec := range workloads.Rodinia() {
		prog := spec.Build()
		res := staticpoly.Analyze(prog)
		if res.RegionModeled(prog, spec.RegionFuncs...) {
			t.Errorf("%s: static baseline modeled the region of interest (paper: fails on all 19)", spec.Name)
		}
		ours := res.RegionReasons(prog, spec.RegionFuncs...).String()
		if ours == spec.PaperReasons {
			exact++
			continue
		}
		overlap := false
		for _, c := range spec.PaperReasons {
			if strings.ContainsRune(ours, c) {
				overlap = true
			}
		}
		if !overlap {
			t.Errorf("%s: reasons %q share nothing with the paper's %q", spec.Name, ours, spec.PaperReasons)
		}
	}
	if exact < 13 {
		t.Errorf("only %d/19 benchmarks match the paper's failure reasons exactly (want >= 13)", exact)
	}
}

// TestTable5Shape asserts the qualitative Table 5 invariants on the
// full profiled suite (who is affine, who skews, who tiles deeply).
func TestTable5Shape(t *testing.T) {
	rows := suite(t)
	if len(rows) != 19 {
		t.Fatalf("suite has %d rows, want 19", len(rows))
	}

	// Every benchmark must report a region with a transformation, as the
	// paper's Table 5 does.
	for _, r := range rows {
		if !r.Row.HasTransform {
			t.Errorf("%s: no transformable region reported", r.Row.Name)
		}
	}

	// Affine-fraction bands: hand-linearized/irregular benchmarks at the
	// bottom, clean affine kernels at the top (paper: heartwall/hotspot/
	// lud/lavaMD near 0%%; cfd/kmeans/srad/myocyte >= 89%%).
	for _, name := range []string{"lavaMD", "lud", "particlefilter", "leukocyte"} {
		if r := rowByName(t, rows, name); r.Row.PctAff > 0.55 {
			t.Errorf("%s: %%Aff = %.0f%%, want low (paper band L)", name, 100*r.Row.PctAff)
		}
	}
	for _, name := range []string{"backprop", "cfd", "kmeans", "myocyte", "streamcluster"} {
		if r := rowByName(t, rows, name); r.Row.PctAff < 0.70 {
			t.Errorf("%s: %%Aff = %.0f%%, want high (paper band H)", name, 100*r.Row.PctAff)
		}
	}
	// The bands must separate on average.
	var lo, hi float64
	var nLo, nHi int
	for _, r := range rows {
		switch r.Spec.PaperAffine {
		case "L":
			lo += r.Row.PctAff
			nLo++
		case "H":
			hi += r.Row.PctAff
			nHi++
		}
	}
	if nLo == 0 || nHi == 0 || hi/float64(nHi) <= lo/float64(nLo)+0.1 {
		t.Errorf("affine bands do not separate: L avg %.2f vs H avg %.2f", lo/float64(nLo), hi/float64(nHi))
	}

	// Skew column: the DP/stencil wavefront benchmarks need skewed
	// schedules; the embarrassingly parallel ones must not.
	for _, name := range []string{"hotspot", "nw", "pathfinder"} {
		if r := rowByName(t, rows, name); !r.Row.Skew {
			t.Errorf("%s: skew = N, paper reports Y (wavefront)", name)
		}
	}
	for _, name := range []string{"backprop", "cfd", "srad_v1", "srad_v2", "kmeans"} {
		if r := rowByName(t, rows, name); r.Row.Skew {
			t.Errorf("%s: skew = Y, paper reports N", name)
		}
	}

	// Tiling depth: multi-dimensional kernels tile multi-dimensionally.
	for name, minD := range map[string]int{
		"backprop": 2, "nw": 2, "srad_v1": 2, "srad_v2": 2,
		"hotspot3D": 3, "lavaMD": 3,
	} {
		if r := rowByName(t, rows, name); r.Row.TileD < minD {
			t.Errorf("%s: TileD = %d, want >= %d", name, r.Row.TileD, minD)
		}
	}

	// Interprocedural regions: the kernels spread across functions.
	for _, name := range []string{"backprop", "srad_v1", "streamcluster"} {
		if r := rowByName(t, rows, name); !r.Row.Interproc {
			t.Errorf("%s: region not interprocedural", name)
		}
	}

	// Parallelism: the fully-parallel suite members expose coarse-grain
	// parallelism over most of their region.
	for _, name := range []string{"srad_v1", "srad_v2", "hotspot", "myocyte", "pathfinder"} {
		if r := rowByName(t, rows, name); r.Row.PctPar < 0.6 {
			t.Errorf("%s: %%par = %.0f%%, want >= 60%%", name, 100*r.Row.PctPar)
		}
	}

	// Closing the loop: backprop's suggested interchange, actually
	// applied and verified, must measure faster than the original (the
	// case study's stride fix), and every measured number must come
	// from a verified variant.
	if r := rowByName(t, rows, "backprop"); r.Row.MeasuredSpeedup <= 1.0 {
		t.Errorf("backprop: measured speedup %.3f, want > 1.0", r.Row.MeasuredSpeedup)
	}
	for _, r := range rows {
		if r.Row.MeasuredSpeedup > 0 && r.Row.MeasuredKind == "" {
			t.Errorf("%s: measured speedup %.3f without a verified variant kind", r.Row.Name, r.Row.MeasuredSpeedup)
		}
	}
}

// TestTable3BackpropShape asserts the case-study-I feedback of Table 3.
func TestTable3BackpropShape(t *testing.T) {
	if testing.Short() {
		t.Skip("case study skipped in -short mode")
	}
	spec := workloads.ByName("backprop")
	res, rows, err := evaluation.CaseStudy(*spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Best == nil || res.Report.Best.CodeRef != "facetrain.c:25" {
		t.Fatalf("region = %v, want facetrain.c:25", res.Report.Best)
	}
	if len(rows) < 2 {
		t.Fatalf("got %d case-study nests, want >= 2 (L_layer and L_adjust)", len(rows))
	}
	var layer, adjust *evaluation.CaseStudyRow
	for i := range rows {
		switch {
		case strings.HasPrefix(rows[i].Region, "backprop.c:(254"):
			layer = &rows[i]
		case strings.HasPrefix(rows[i].Region, "backprop.c:(322") && (adjust == nil || rows[i].PctOps > adjust.PctOps):
			adjust = &rows[i]
		}
	}
	if layer == nil || adjust == nil {
		t.Fatalf("nests not found: layer=%v adjust=%v (rows %+v)", layer, adjust, rows)
	}
	// L_layer: fully permutable, parallel (yes, no), strides (100%, 67%),
	// interchange + SIMD suggested.
	if !layer.Permutable {
		t.Error("L_layer must be fully permutable")
	}
	if !layer.Parallel[0] || layer.Parallel[1] {
		t.Errorf("L_layer parallel = %v, want (yes,no)", layer.Parallel)
	}
	if layer.Stride01[0] < 0.99 || layer.Stride01[1] < 0.6 || layer.Stride01[1] > 0.75 {
		t.Errorf("L_layer stride01 = %v, want (100%%, ~67%%)", layer.Stride01)
	}
	if !strings.Contains(layer.Transform, "interchange") || !strings.Contains(layer.Transform, "simd") {
		t.Errorf("L_layer transform = %q, want interchange + simd", layer.Transform)
	}
	// L_adjust: both dims parallel, interchange + SIMD.
	if !adjust.Parallel[0] || !adjust.Parallel[1] {
		t.Errorf("L_adjust parallel = %v, want (yes,yes)", adjust.Parallel)
	}
	// Speedups: both well above 1x, in the paper's 5-8x band (we accept
	// 3-15x: the cost model is a simulator), with L_adjust >= L_layer as
	// in the paper (7.8x vs 5.3x).
	if layer.SpeedupEst < 3 || layer.SpeedupEst > 15 {
		t.Errorf("L_layer speedup %.1fx outside the plausible band", layer.SpeedupEst)
	}
	if adjust.SpeedupEst < layer.SpeedupEst*0.9 {
		t.Errorf("L_adjust (%.1fx) should not trail L_layer (%.1fx): paper order is adjust > layer",
			adjust.SpeedupEst, layer.SpeedupEst)
	}
}

// TestTable4GemsShape asserts the case-study-II feedback of Table 4.
func TestTable4GemsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("case study skipped in -short mode")
	}
	spec := workloads.ByName("gemsfdtd")
	_, rows, err := evaluation.CaseStudy(*spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d hot nests, want 2 (updateH, updateE)", len(rows))
	}
	for _, r := range rows {
		if r.TileD != 3 {
			t.Errorf("nest %s: tile depth %d, want 3D", r.Region, r.TileD)
		}
		par := 0
		for _, p := range r.Parallel {
			if p {
				par++
			}
		}
		if par != 3 {
			t.Errorf("nest %s: %d parallel dims, want all 3 spatial dims", r.Region, par)
		}
		// Paper: 2.6x / 1.9x; accept a 1.5-8x simulator band, and the
		// gems speedups must trail backprop's (bandwidth-bound).
		if r.SpeedupEst < 1.5 || r.SpeedupEst > 8 {
			t.Errorf("nest %s: speedup %.1fx outside the plausible band", r.Region, r.SpeedupEst)
		}
	}
	if !strings.Contains(rows[0].Region, "update.F90:(100,106,107,121)") {
		t.Errorf("updateH nest lines = %s, want update.F90 {106,107,121}", rows[0].Region)
	}
}

// TestRunWorkloadSingle is the fast sanity path: one small workload end
// to end.
func TestRunWorkloadSingle(t *testing.T) {
	spec := workloads.ByName("pathfinder")
	r, err := evaluation.RunWorkload(*spec)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Row.HasTransform {
		t.Fatal("pathfinder must report a region")
	}
	if !r.Row.Skew {
		t.Error("pathfinder region must need the wavefront (skew)")
	}
	if r.Row.PollyModeled {
		t.Error("static baseline must fail on pathfinder")
	}
	out := evaluation.RenderTable5([]*evaluation.BenchResult{r})
	if !strings.Contains(out, "pathfinder") {
		t.Error("table rendering lost the row")
	}
}
