package evaluation

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"polyprof/internal/core"
	"polyprof/internal/obs"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/workloads"
)

// DiagReport is the result of one parallel-engine diagnosis run: the
// full pipeline executed on the sharded dependence engine with the
// utilization sampler attached, plus the derived diagnosis.
type DiagReport struct {
	Workload string `json:"workload"`
	Shards   int    `json:"shards"`
	Ops      uint64 `json:"ops"`
	WallNS   int64  `json:"wall_ns"`
	// Parallel is the sampler's diagnosis: per-actor busy fractions,
	// sequencer occupancy, backpressure, critical path, Amdahl table.
	Parallel *sampler.Report `json:"parallel"`

	// Timeline carries the per-actor state timelines for Chrome-trace
	// export (`polyprof diag -trace`); omitted from JSON reports, which
	// only need the aggregates.
	Timeline []obs.SpanRecord `json:"-"`
}

// Diagnose profiles one workload end to end on the sharded dependence
// engine with the utilization sampler enabled and derives the parallel
// diagnosis.  shards must be positive — the diagnosis is about the
// parallel engine; there is nothing to sample on a sequential run.
func Diagnose(spec workloads.Spec, shards int, sc obs.Scope) (*DiagReport, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("diag: shards must be positive (got %d)", shards)
	}
	root := sc.StartSpan("diag:" + spec.Name)
	defer root.End()
	ssc := sc.WithSpan(root)

	smp := sampler.New()
	smp.SetEnabled(true)
	opts := core.DefaultRunOptions()
	opts.Obs = ssc
	opts.ParallelDDG = shards
	opts.Sampler = smp

	start := time.Now()
	p, err := core.Run(spec.Build(), opts)
	if err != nil {
		root.Fail(err)
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	return &DiagReport{
		Workload: spec.Name,
		Shards:   shards,
		Ops:      p.DDG.TotalOps,
		WallNS:   int64(time.Since(start)),
		Parallel: smp.Report(),
		Timeline: smp.TimelineSpans(),
	}, nil
}

// DiagnoseSuite diagnoses every Rodinia twin.
func DiagnoseSuite(shards int, sc obs.Scope) ([]*DiagReport, error) {
	var out []*DiagReport
	for _, spec := range workloads.Rodinia() {
		r, err := Diagnose(spec, shards, sc)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderDiag formats one diagnosis for the terminal.
func RenderDiag(r *DiagReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "parallel-engine diagnosis — %s (%d shards, %d ops, wall %s)\n\n",
		r.Workload, r.Shards, r.Ops, obs.FormatDuration(time.Duration(r.WallNS)))
	sb.WriteString(r.Parallel.Render())
	return sb.String()
}

// DiagJSON serializes one or more diagnosis reports.
func DiagJSON(rs []*DiagReport) ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}
