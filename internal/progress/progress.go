// Package progress is a dependency-free live-progress channel between
// a running profiling pipeline and whoever is watching it (the job
// store's GET /v1/jobs/{id}, primarily).  A Tracker is a handful of
// atomics: the VM bumps the event counter at its existing watchdog
// checkpoints (once per 2^16 steps — nothing is added to the per-step
// hot path) and the pipeline driver marks stage boundaries; concurrent
// snapshots are tear-free without locks.  All methods are nil-receiver
// safe, so unobserved runs pay a single nil check per update site.
package progress

import "sync/atomic"

// Tracker carries one run's live progress.  Events are relative to the
// current stage and reset at every StartStage; Total is the stage's
// expected event count (0 when unknown — pass 1 discovers it, pass 2
// re-executes the same deterministic program so pass 1's op count is
// its exact total).
type Tracker struct {
	stage   atomic.Pointer[string]
	events  atomic.Uint64
	total   atomic.Uint64
	onStage atomic.Pointer[func(stage string, total uint64)]
}

// Snapshot is one consistent-enough view of a tracker: stage, events
// and total are read independently (each tear-free), which is all a
// progress display needs.
type Snapshot struct {
	Stage  string `json:"stage"`
	Events uint64 `json:"events"`
	Total  uint64 `json:"total,omitempty"`
}

// StartStage begins a named stage, resetting the event counter.
func (t *Tracker) StartStage(stage string, total uint64) {
	if t == nil {
		return
	}
	t.events.Store(0)
	t.total.Store(total)
	t.stage.Store(&stage)
	if h := t.onStage.Load(); h != nil {
		(*h)(stage, total)
	}
}

// OnStage installs (nil removes) a callback invoked at every
// StartStage — the job runner uses it to persist crash-surviving
// stage-progress records.  Stage boundaries are rare (a handful per
// run), so the callback may do real work; the cost when no callback is
// installed is one atomic load.
func (t *Tracker) OnStage(f func(stage string, total uint64)) {
	if t == nil {
		return
	}
	if f == nil {
		t.onStage.Store(nil)
		return
	}
	t.onStage.Store(&f)
}

// SetEvents publishes the stage's processed-event count; within one
// stage callers only move it forward.
func (t *Tracker) SetEvents(n uint64) {
	if t == nil {
		return
	}
	t.events.Store(n)
}

// Snapshot returns the tracker's current state.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	s := Snapshot{Events: t.events.Load(), Total: t.total.Load()}
	if p := t.stage.Load(); p != nil {
		s.Stage = *p
	}
	return s
}
