// Package cct implements the classical calling-context tree of Ammons,
// Ball and Larus (the paper's [2]) as a comparison structure: it is
// enumerative, carries no loop indices, and — the paper's Sec. 3.2
// motivation for the recursive-component-set — its depth grows linearly
// with recursion depth, whereas the dynamic interprocedural iteration
// vector folds recursion into a single dimension.  The ablation
// benchmark contrasts the two on a recursion tower.
package cct

import (
	"fmt"
	"strings"

	"polyprof/internal/isa"
	"polyprof/internal/trace"
)

// Node is one calling context: a chain of (call site, callee) pairs.
type Node struct {
	Parent *Node
	// Site is the block that made the call (NoBlock for the root).
	Site isa.BlockID
	// Fn is the function executing in this context.
	Fn isa.FuncID

	Children map[childKey]*Node
	// Calls counts how many times this exact context was entered.
	Calls uint64
	// Ops counts dynamic instructions attributed to this context.
	Ops uint64

	depth int
}

type childKey struct {
	site isa.BlockID
	fn   isa.FuncID
}

// Depth returns the node's distance from the root.
func (n *Node) Depth() int { return n.depth }

// Path renders the context as main/f@B3/g@B7.
func (n *Node) Path(prog *isa.Program) string {
	var parts []string
	for cur := n; cur != nil && cur.Parent != nil; cur = cur.Parent {
		s := prog.Func(cur.Fn).Name
		if cur.Site != isa.NoBlock {
			s += "@" + prog.Block(cur.Site).Name
		}
		parts = append(parts, s)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// Tree is a calling-context tree under construction; it implements
// trace.Hook so it can be attached directly to a VM run.
type Tree struct {
	Root *Node
	cur  *Node

	// MaxDepth is the deepest context observed.
	MaxDepth int
	// Nodes counts distinct contexts.
	Nodes int
}

// New creates an empty CCT rooted at the program's main function.
func New(main isa.FuncID) *Tree {
	root := &Node{Site: isa.NoBlock, Fn: main, Children: map[childKey]*Node{}}
	return &Tree{Root: root, cur: root, Nodes: 1}
}

// Control implements trace.Hook.
func (t *Tree) Control(ev trace.ControlEvent) {
	switch ev.Kind {
	case trace.Call:
		key := childKey{site: ev.Src, fn: ev.Callee}
		child := t.cur.Children[key]
		if child == nil {
			child = &Node{
				Parent:   t.cur,
				Site:     ev.Src,
				Fn:       ev.Callee,
				Children: map[childKey]*Node{},
				depth:    t.cur.depth + 1,
			}
			t.cur.Children[key] = child
			t.Nodes++
			if child.depth > t.MaxDepth {
				t.MaxDepth = child.depth
			}
		}
		child.Calls++
		t.cur = child
	case trace.Return:
		if t.cur.Parent != nil {
			t.cur = t.cur.Parent
		}
	}
}

// Instr implements trace.Hook.
func (t *Tree) Instr(trace.InstrEvent, *isa.Instr) { t.cur.Ops++ }

// Walk visits every node depth-first.
func (t *Tree) Walk(f func(n *Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// Render prints the tree (diagnostics and the Fig. 3h reproduction).
func (t *Tree) Render(prog *isa.Program) string {
	var sb strings.Builder
	var rec func(n *Node, indent int)
	rec = func(n *Node, indent int) {
		name := prog.Func(n.Fn).Name
		site := ""
		if n.Site != isa.NoBlock {
			site = fmt.Sprintf(" (from %s)", prog.Block(n.Site).Name)
		}
		fmt.Fprintf(&sb, "%s%s%s calls=%d ops=%d\n", strings.Repeat("  ", indent), name, site, n.Calls, n.Ops)
		for _, c := range n.Children {
			rec(c, indent+1)
		}
	}
	rec(t.Root, 0)
	return sb.String()
}
