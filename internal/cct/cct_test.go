package cct_test

import (
	"strings"
	"testing"

	"polyprof/internal/cct"
	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// TestCCTDistinguishesContexts reproduces the paper's Fig. 3h point:
// the helper C called from D and from B gets distinct contexts, and
// recursive calls to B deepen the tree linearly (unlike the IIV, which
// stays one-dimensional — see iiv.TestFig3Example2Recursion).
func TestCCTDistinguishesContexts(t *testing.T) {
	prog := workloads.Example2()
	tree := cct.New(prog.Main)
	if err := vm.New(prog, tree).Run(); err != nil {
		t.Fatal(err)
	}

	cID := prog.FuncByName("C").ID
	bID := prog.FuncByName("B").ID
	var cContexts []string
	maxBDepth := 0
	tree.Walk(func(n *cct.Node) {
		if n.Fn == cID {
			cContexts = append(cContexts, n.Path(prog))
		}
		if n.Fn == bID && n.Depth() > maxBDepth {
			maxBDepth = n.Depth()
		}
	})
	// C appears under D once and under each level of B's recursion
	// (3 activations): 4 distinct contexts.
	if len(cContexts) != 4 {
		t.Fatalf("C has %d contexts, want 4: %v", len(cContexts), cContexts)
	}
	// B recursed twice beyond the initial call: depth grows to 3.
	if maxBDepth != 3 {
		t.Errorf("deepest B context = %d, want 3 (CCT depth tracks recursion depth)", maxBDepth)
	}
	if tree.MaxDepth < 3 {
		t.Errorf("MaxDepth = %d, want >= 3", tree.MaxDepth)
	}
	out := tree.Render(prog)
	if !strings.Contains(out, "C (from") {
		t.Errorf("rendering lacks call-site annotations:\n%s", out)
	}
}

// TestCCTOpsAccounting: instruction counts attach to the current
// context and sum to the run's total.
func TestCCTOpsAccounting(t *testing.T) {
	prog := workloads.Example1()
	tree := cct.New(prog.Main)
	m := vm.New(prog, tree)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	tree.Walk(func(n *cct.Node) { sum += n.Ops })
	if sum != m.Stats().Ops {
		t.Errorf("CCT ops %d != vm ops %d", sum, m.Stats().Ops)
	}
}

// TestCCTRepeatedContextsShared: calling the same function twice from
// the same site reuses one node with Calls == 2.
func TestCCTRepeatedContextsShared(t *testing.T) {
	prog := workloads.Example1() // A's loop calls B twice from one site
	tree := cct.New(prog.Main)
	if err := vm.New(prog, tree).Run(); err != nil {
		t.Fatal(err)
	}
	bID := prog.FuncByName("B").ID
	found := false
	tree.Walk(func(n *cct.Node) {
		if n.Fn == bID {
			found = true
			if n.Calls != 2 {
				t.Errorf("B context calls = %d, want 2 (shared node)", n.Calls)
			}
		}
	})
	if !found {
		t.Fatal("B context missing")
	}
}
