// Package budget is the resource-governance layer of the pipeline: a
// context.Context paired with hard and soft resource limits, threaded
// from cmd/polyprof and internal/serve through core.Run into the VM and
// the DDG builder.
//
// Two failure disciplines coexist, chosen per resource:
//
//   - Hard limits (wall clock, cancellation, VM steps, trace events)
//     abort the run promptly with a structured *Error.  The VM checks
//     them from an amortized watchdog so the hot interpreter loop pays
//     one integer comparison per step.
//
//   - Degrading limits (shadow-memory bytes, DDG edges) never abort.
//     Grant* calls answer false once the limit is exceeded and the DDG
//     builder switches the offending address ranges to coarse
//     over-approximated dependence summaries — the report is still
//     produced, marked degraded (see ddg.Degradation).
//
// All Budget methods are safe on a nil receiver, so unlimited callers
// simply pass nil and pay nothing.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"polyprof/internal/obs/flight"
)

// Resource names carried by Error.Resource and ddg degradation
// metadata.
const (
	ResourceCanceled    = "canceled"     // context canceled (e.g. client disconnect)
	ResourceWall        = "wall-clock"   // deadline exceeded
	ResourceSteps       = "vm-steps"     // MaxSteps exceeded
	ResourceTraceEvents = "trace-events" // MaxTraceEvents exceeded
	ResourceShadowBytes = "shadow-bytes" // MaxShadowBytes exceeded (degrading)
	ResourceDDGEdges    = "ddg-edges"    // MaxDDGEdges exceeded (degrading)
)

// Limits configures a Budget.  Zero values mean "unlimited" for every
// field, so the zero Limits is a no-op budget.
type Limits struct {
	// Wall bounds the wall-clock duration of the run.  It is combined
	// with any deadline already on the context; the earlier one wins.
	Wall time.Duration
	// MaxSteps bounds dynamic VM steps across all passes (a hard limit;
	// the VM also has its own per-run default).
	MaxSteps uint64
	// MaxTraceEvents bounds the dynamic instruction events streamed to
	// instrumentation sinks, cumulative across passes (hard limit).
	MaxTraceEvents uint64
	// MaxShadowBytes bounds the shadow-memory tables of the DDG builder
	// (degrading: excess address ranges are coarsened, not fatal).
	MaxShadowBytes uint64
	// MaxDDGEdges bounds distinct dependence edges in the DDG
	// (degrading: excess edges lose their exact folders and keep only a
	// bounding box).
	MaxDDGEdges uint64
}

// Unlimited reports whether no limit is set at all.
func (l Limits) Unlimited() bool {
	return l == Limits{}
}

// Budget is the live accounting state for one run.  Create with New;
// methods are nil-safe and safe for concurrent use.
type Budget struct {
	ctx         context.Context
	limits      Limits
	deadline    time.Time
	hasDeadline bool

	events atomic.Uint64 // trace events counted so far
	shadow atomic.Uint64 // shadow bytes granted so far
	edges  atomic.Uint64 // DDG edges granted so far

	shadowTripped atomic.Bool
	edgesTripped  atomic.Bool
}

// New builds a Budget from a context and limits.  A Limits.Wall
// duration is merged with any deadline already on ctx (earlier wins).
// nil is a valid *Budget meaning "unlimited"; New never returns nil so
// callers that did configure limits always get accounting.
func New(ctx context.Context, limits Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &Budget{ctx: ctx, limits: limits}
	if dl, ok := ctx.Deadline(); ok {
		b.deadline, b.hasDeadline = dl, true
	}
	if limits.Wall > 0 {
		dl := time.Now().Add(limits.Wall)
		if !b.hasDeadline || dl.Before(b.deadline) {
			b.deadline, b.hasDeadline = dl, true
		}
	}
	return b
}

// Context returns the context the budget was built from (Background
// for a nil budget).
func (b *Budget) Context() context.Context {
	if b == nil || b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}

// Check answers nil while the run may continue, or a *Error naming the
// tripped hard resource (cancellation or wall clock).  Stage names the
// pipeline stage performing the check, for the error message.
func (b *Budget) Check(stage string) error {
	if b == nil {
		return nil
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			res := ResourceCanceled
			if errors.Is(err, context.DeadlineExceeded) {
				res = ResourceWall
			}
			return &Error{Resource: res, Stage: stage}
		}
	}
	if b.hasDeadline && time.Now().After(b.deadline) {
		err := &Error{Resource: ResourceWall, Stage: stage, Limit: uint64(b.limits.Wall)}
		flight.Log("budget", err.Resource, err.Error())
		return err
	}
	return nil
}

// StepLimit returns MaxSteps, or 0 when unlimited.
func (b *Budget) StepLimit() uint64 {
	if b == nil {
		return 0
	}
	return b.limits.MaxSteps
}

// CountEvents adds n trace events to the running total and errors once
// the total exceeds MaxTraceEvents.
func (b *Budget) CountEvents(n uint64, stage string) error {
	if b == nil || b.limits.MaxTraceEvents == 0 {
		return nil
	}
	total := b.events.Add(n)
	if total > b.limits.MaxTraceEvents {
		err := &Error{
			Resource: ResourceTraceEvents, Stage: stage,
			Limit: b.limits.MaxTraceEvents, Used: total,
		}
		flight.Log("budget", err.Resource, err.Error())
		return err
	}
	return nil
}

// GrantShadow asks for n more bytes of shadow-memory accounting.  It
// answers false — permanently, the counter is monotone — once the
// total would exceed MaxShadowBytes.  Callers degrade on false; they
// never abort.
func (b *Budget) GrantShadow(n uint64) bool {
	if b == nil || b.limits.MaxShadowBytes == 0 {
		return true
	}
	if b.shadow.Add(n) > b.limits.MaxShadowBytes {
		// Swap (not Store) so only the first trip emits the flight
		// event: Grant* sites run per address range, the ring should
		// record the decision once.
		if !b.shadowTripped.Swap(true) {
			flight.Log("degrade", ResourceShadowBytes,
				fmt.Sprintf("shadow-memory budget exhausted (limit %d bytes); coarsening", b.limits.MaxShadowBytes))
		}
		return false
	}
	return true
}

// GrantEdges asks for n more DDG edges, with the same degrading
// discipline as GrantShadow.
func (b *Budget) GrantEdges(n uint64) bool {
	if b == nil || b.limits.MaxDDGEdges == 0 {
		return true
	}
	if b.edges.Add(n) > b.limits.MaxDDGEdges {
		if !b.edgesTripped.Swap(true) {
			flight.Log("degrade", ResourceDDGEdges,
				fmt.Sprintf("ddg-edge budget exhausted (limit %d edges); keeping bounding boxes", b.limits.MaxDDGEdges))
		}
		return false
	}
	return true
}

// ReleaseShadow returns n bytes of shadow accounting to the budget.
// Streaming epoch runs call it after folding-and-releasing per-record
// state at an epoch boundary, which is what lets a trace far larger
// than the ceiling run without ever tripping the degradation latch.
// Releases never un-trip a latch: once GrantShadow answered false the
// run is degraded for good, same as before.
func (b *Budget) ReleaseShadow(n uint64) {
	if b == nil || b.limits.MaxShadowBytes == 0 {
		return
	}
	for {
		cur := b.shadow.Load()
		next := uint64(0)
		if cur > n {
			next = cur - n
		}
		if b.shadow.CompareAndSwap(cur, next) {
			return
		}
	}
}

// ShadowLimit returns MaxShadowBytes, or 0 when unlimited; the core
// streaming driver uses it to decide whether fold-and-release is worth
// arming.
func (b *Budget) ShadowLimit() uint64 {
	if b == nil {
		return 0
	}
	return b.limits.MaxShadowBytes
}

// ShadowBytes returns the bytes granted so far.
func (b *Budget) ShadowBytes() uint64 {
	if b == nil {
		return 0
	}
	return b.shadow.Load()
}

// Tripped lists the degrading resources whose limits have been
// exceeded, in a fixed order.  Hard resources abort instead and never
// appear here.
func (b *Budget) Tripped() []string {
	if b == nil {
		return nil
	}
	var out []string
	if b.shadowTripped.Load() {
		out = append(out, ResourceShadowBytes)
	}
	if b.edgesTripped.Load() {
		out = append(out, ResourceDDGEdges)
	}
	return out
}

// Error is the structured budget-exhaustion error every stage
// surfaces.  It marshals directly into API responses.
type Error struct {
	// Resource is one of the Resource* constants.
	Resource string `json:"resource"`
	// Stage is the pipeline stage that observed the exhaustion.
	Stage string `json:"stage,omitempty"`
	// Limit is the configured cap (0 when not applicable, e.g.
	// cancellation).
	Limit uint64 `json:"limit,omitempty"`
	// Used is the amount consumed when the limit tripped.
	Used uint64 `json:"used,omitempty"`
}

func (e *Error) Error() string {
	msg := "budget: " + e.Resource + " exhausted"
	if e.Stage != "" {
		msg += " in " + e.Stage
	}
	if e.Limit > 0 {
		msg += fmt.Sprintf(" (limit %d", e.Limit)
		if e.Used > 0 {
			msg += fmt.Sprintf(", used %d", e.Used)
		}
		msg += ")"
	}
	return msg
}

// Timeout reports whether the error is deadline-shaped, so HTTP layers
// can map it to 408.
func (e *Error) Timeout() bool { return e.Resource == ResourceWall }

// Canceled reports whether the error came from context cancellation.
func (e *Error) Canceled() bool { return e.Resource == ResourceCanceled }

// AsError extracts a *Error from an error chain.
func AsError(err error) (*Error, bool) {
	var be *Error
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}
