package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Check("vm"); err != nil {
		t.Fatalf("nil Check = %v", err)
	}
	if err := b.CountEvents(1<<40, "vm"); err != nil {
		t.Fatalf("nil CountEvents = %v", err)
	}
	if !b.GrantShadow(1<<40) || !b.GrantEdges(1<<40) {
		t.Fatal("nil grants must always succeed")
	}
	if b.StepLimit() != 0 || len(b.Tripped()) != 0 {
		t.Fatal("nil budget reports limits")
	}
	if b.Context() == nil {
		t.Fatal("nil budget Context() = nil")
	}
}

func TestZeroLimitsAreUnlimited(t *testing.T) {
	b := New(context.Background(), Limits{})
	if err := b.Check("x"); err != nil {
		t.Fatalf("Check = %v", err)
	}
	if !b.GrantShadow(1 << 40) {
		t.Fatal("zero-limit grant refused")
	}
	if err := b.CountEvents(1<<40, "x"); err != nil {
		t.Fatalf("CountEvents = %v", err)
	}
	if !(Limits{}).Unlimited() {
		t.Fatal("zero Limits not Unlimited")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{})
	if err := b.Check("vm"); err != nil {
		t.Fatalf("pre-cancel Check = %v", err)
	}
	cancel()
	err := b.Check("vm")
	be, ok := AsError(err)
	if !ok || be.Resource != ResourceCanceled || be.Stage != "vm" {
		t.Fatalf("post-cancel Check = %v", err)
	}
	if !be.Canceled() || be.Timeout() {
		t.Fatalf("classification wrong: %+v", be)
	}
}

func TestWallDeadline(t *testing.T) {
	b := New(context.Background(), Limits{Wall: time.Nanosecond})
	time.Sleep(2 * time.Millisecond)
	err := b.Check("fold")
	be, ok := AsError(err)
	if !ok || be.Resource != ResourceWall {
		t.Fatalf("Check after deadline = %v", err)
	}
	if !be.Timeout() {
		t.Fatal("wall error not Timeout()")
	}
}

func TestContextDeadlineWins(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	b := New(ctx, Limits{Wall: time.Hour})
	time.Sleep(2 * time.Millisecond)
	err := b.Check("vm")
	be, ok := AsError(err)
	if !ok || be.Resource != ResourceWall {
		t.Fatalf("expired ctx must report wall-clock, got %v", err)
	}
}

func TestTraceEvents(t *testing.T) {
	b := New(context.Background(), Limits{MaxTraceEvents: 100})
	if err := b.CountEvents(100, "vm"); err != nil {
		t.Fatalf("within limit: %v", err)
	}
	err := b.CountEvents(1, "vm")
	be, ok := AsError(err)
	if !ok || be.Resource != ResourceTraceEvents || be.Limit != 100 || be.Used != 101 {
		t.Fatalf("over limit = %v", err)
	}
}

func TestDegradingGrantsAreMonotone(t *testing.T) {
	b := New(context.Background(), Limits{MaxShadowBytes: 100, MaxDDGEdges: 2})
	if !b.GrantShadow(60) || !b.GrantShadow(40) {
		t.Fatal("grants within limit refused")
	}
	if b.GrantShadow(1) {
		t.Fatal("grant over limit allowed")
	}
	// Once tripped, even tiny requests fail: degradation is permanent.
	if b.GrantShadow(0) {
		t.Fatal("post-trip grant allowed")
	}
	if !b.GrantEdges(1) || !b.GrantEdges(1) || b.GrantEdges(1) {
		t.Fatal("edge grant sequence wrong")
	}
	got := b.Tripped()
	if len(got) != 2 || got[0] != ResourceShadowBytes || got[1] != ResourceDDGEdges {
		t.Fatalf("Tripped() = %v", got)
	}
	// Hard Check is unaffected by degrading trips.
	if err := b.Check("ddg"); err != nil {
		t.Fatalf("Check after degrading trip = %v", err)
	}
}

func TestErrorFormattingAndAs(t *testing.T) {
	e := &Error{Resource: ResourceSteps, Stage: "vm", Limit: 1000, Used: 1001}
	msg := e.Error()
	for _, want := range []string{"vm-steps", "vm", "1000", "1001"} {
		if !contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	wrapped := errorsJoin(e)
	be, ok := AsError(wrapped)
	if !ok || be != e {
		t.Fatalf("AsError through wrap failed: %v", wrapped)
	}
}

func errorsJoin(e error) error { return errors.Join(errors.New("outer"), e) }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
